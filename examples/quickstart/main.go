// The quickstart example audits one account of the paper testbed with all
// four analytics and prints the verdicts side by side with the published
// Table III row — the fastest way to see the reproduction work.
package main

import (
	"fmt"
	"log"

	"fakeproject"
)

func main() {
	const target = "PC_Chiambretti" // the paper's most dramatic account

	fmt.Printf("building the @%s population (70,900 followers, 97%% inactive per FC)...\n", target)
	sim, err := fakeproject.NewSimulation(fakeproject.SimConfig{
		Only: []string{target},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %9s %8s %9s %8s %10s\n", "tool", "inactive", "fake", "genuine", "time", "API calls")
	for _, tool := range []string{
		fakeproject.ToolFC, fakeproject.ToolTA, fakeproject.ToolSP, fakeproject.ToolSB,
	} {
		report, err := sim.Auditor(tool).Audit(target)
		if err != nil {
			log.Fatal(err)
		}
		inactive := fmt.Sprintf("%8.1f%%", report.InactivePct)
		if !report.HasInactiveClass {
			inactive = "     n/a "
		}
		fmt.Printf("%-16s %s %7.1f%% %8.1f%% %7.0fs %10d\n",
			report.Tool, inactive, report.FakePct, report.GenuinePct,
			report.Elapsed.Seconds(), report.APICalls)
	}

	for _, acct := range sim.Testbed() {
		fmt.Printf("\npaper (Table III): FC %.1f/%.1f/%.1f  TA -/%.0f/%.0f  SP %.0f/%.0f/%.0f  SB %.0f/%.0f/%.0f\n",
			acct.FC.Inactive, acct.FC.Fake, acct.FC.Genuine,
			acct.TA.Fake, acct.TA.Genuine,
			acct.SP.Inactive, acct.SP.Fake, acct.SP.Genuine,
			acct.SB.Inactive, acct.SB.Fake, acct.SB.Genuine)
	}
	fmt.Println("\nonly FC sees the abandoned follower base beyond the newest pages;")
	fmt.Println("every window-limited tool reports a far healthier account than reality.")
}
