// The classifiertraining example reproduces the Section III methodology
// study end to end: build a gold standard of a-priori-known accounts, score
// the literature's single-rule classifiers against the spam-detection
// feature sets, compare model families, and show the crawl-cost trade-off
// behind the deployed "optimized" FC classifier.
package main

import (
	"fmt"
	"log"
	"os"

	"fakeproject"
	"fakeproject/internal/fc"
	"fakeproject/internal/report"
)

func main() {
	const perClass = 800
	fmt.Printf("building a gold standard: %d genuine + %d fake accounts, a priori known...\n\n", perClass, perClass)
	gold, err := fakeproject.BuildGoldStandard(perClass, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1) single classification rules from the literature [13][14][15]:")
	ruleResults, err := fc.EvaluateRuleSets(gold)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.MethodResults(os.Stdout, ruleResults); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n2) feature sets from spam-detection research [8][9] and the FC sets:")
	featResults, err := fc.EvaluateFeatureSets(gold, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.MethodResults(os.Stdout, featResults); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n3) model families on the deployed (lookup-cost) feature set:")
	clsResults, err := fc.EvaluateClassifiers(gold, 9)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.MethodResults(os.Stdout, clsResults); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfindings (mirroring Section III):")
	fmt.Println("  - rule lists are evaded by fakes that dodge individual criteria;")
	fmt.Println("  - spam-detection feature sets classify far better;")
	fmt.Println("  - the lookup-only feature set keeps nearly all the accuracy at a")
	fmt.Println("    hundredth of the crawl cost — that is the deployed FC classifier.")
}
