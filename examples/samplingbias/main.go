// The samplingbias example demonstrates the paper's central mechanism in
// isolation: an account with a large genuine base buys a batch of fake
// followers, and because the Twitter API returns followers newest-first,
// any tool that samples only the first pages sees almost nothing but the
// purchased batch. It also prints the positional-bias diagnostics
// (mean normalised rank, KS distance) for each sampling scheme.
package main

import (
	"fmt"
	"log"

	"fakeproject"
	"fakeproject/internal/drand"
	"fakeproject/internal/sampling"
)

func main() {
	const genuineBase = 100000
	const bought = 10000

	sim, err := fakeproject.NewSimulation(fakeproject.SimConfig{Only: []string{"davc"}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario (Section II-A): %d genuine followers, then %d bought\n", genuineBase, bought)
	res, err := sim.RunAnecdote(genuineBase, bought)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  true junk share:        %5.1f%%\n", res.TruePct)
	fmt.Printf("  Fakers (first pages):   %5.1f%%   <- \"could show a 100%% of fake\"\n", res.FakersJunkPct)
	fmt.Printf("  FC (whole-list sample): %5.1f%%   <- \"the right percentage\"\n", res.FCJunkPct)

	// Why: the positional geometry of each scheme.
	fmt.Println("\nsampling-scheme diagnostics over the same 110,000-follower list")
	fmt.Println("(rank 0 = newest; an unbiased scheme has mean rank 0.5 and KS ≈ 0):")
	src := drand.New(42)
	total := genuineBase + bought
	schemes := []sampling.Strategy{
		sampling.Uniform{},
		sampling.NewestWindow{Window: 35000},
		sampling.NewestWindow{Window: 5000},
		sampling.FirstN{},
	}
	fmt.Printf("  %-14s %10s %8s %10s\n", "scheme", "mean rank", "KS", "coverage")
	for _, s := range schemes {
		idx := s.Sample(total, 1000, src)
		b := sampling.Diagnose(idx, total)
		fmt.Printf("  %-14s %10.3f %8.3f %10.3f\n", s.Name(), b.MeanNormRank, b.KS, b.Coverage)
	}
	fmt.Println("\nthe newest-window schemes never see more than a sliver of the list —")
	fmt.Println("and after a purchase, that sliver is exactly the bought batch.")
}
