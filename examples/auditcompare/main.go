// The auditcompare example builds a custom account with a known ground
// truth, runs all four analytics on it, and scores every tool against the
// truth — including the FC engine's confidence intervals. This is the
// "downstream user" workflow: evaluating an analytics vendor before
// trusting its numbers.
//
// With -concurrency N (N > 1) the four audits run through the auditd
// scheduler's worker pool instead of the serial loop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fakeproject"
	"fakeproject/internal/experiments"
	"fakeproject/internal/population"
)

func main() {
	concurrency := flag.Int("concurrency", 1, "run the audits through the auditd scheduler with this many workers (1 = serial)")
	flag.Parse()
	// A mid-sized account whose old base went dormant and who bought
	// followers twice; ground truth: 52% inactive, 13% fake, 35% genuine
	// overall, with the junk unevenly distributed along the timeline.
	layout := population.Layout{
		{Width: 3000, Mix: population.Mix{Inactive: 0.10, Fake: 0.45, Genuine: 0.45}}, // recent purchase
		{Width: 20000, Mix: population.Mix{Inactive: 0.35, Fake: 0.10, Genuine: 0.55}},
		{Width: 0, Mix: population.Mix{Inactive: 0.80, Fake: 0.05, Genuine: 0.15}}, // abandoned era
	}
	const followers = 60000
	truth := layout.Truth(followers)

	sim, err := fakeproject.NewSimulation(fakeproject.SimConfig{Only: []string{"davc"}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Gen.BuildTarget(population.TargetSpec{
		ScreenName: "custom_subject",
		Followers:  followers,
		Layout:     layout,
		Statuses:   4000,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom account: %d followers, ground truth inactive %.1f%% fake %.1f%% genuine %.1f%%\n\n",
		followers, 100*truth.Inactive, 100*truth.Fake, 100*truth.Genuine)

	// With -concurrency, route the audits through the auditd worker pool:
	// one job, all four tools, fanned out across workers.
	var serviceReports map[string]fakeproject.Report
	if *concurrency > 1 {
		svc, err := fakeproject.NewAuditService(sim, *concurrency)
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Shutdown(context.Background())
		job, err := fakeproject.Audit(context.Background(), svc, "custom_subject")
		if err != nil {
			log.Fatal(err)
		}
		serviceReports = make(map[string]fakeproject.Report, len(job.Results))
		for tool, res := range job.Results {
			if res.Err != "" {
				log.Fatalf("%s: %s", tool, res.Err)
			}
			serviceReports[tool] = res.Report
		}
		fmt.Printf("audits scheduled on auditd (%d workers)\n\n", *concurrency)
	}

	fmt.Printf("%-16s %9s %8s %9s %16s\n", "tool", "inactive", "fake", "genuine", "|err| vs truth")
	for _, tool := range []string{
		fakeproject.ToolFC, fakeproject.ToolTA, fakeproject.ToolSP, fakeproject.ToolSB,
	} {
		var rep fakeproject.Report
		if serviceReports != nil {
			rep = serviceReports[tool]
		} else {
			var err error
			rep, err = sim.Auditor(tool).Audit("custom_subject")
			if err != nil {
				log.Fatal(err)
			}
		}
		errPts := absErr(rep, truth)
		inactive := fmt.Sprintf("%8.1f%%", rep.InactivePct)
		if !rep.HasInactiveClass {
			inactive = "     n/a "
		}
		fmt.Printf("%-16s %s %7.1f%% %8.1f%% %13.1f pts\n",
			rep.Tool, inactive, rep.FakePct, rep.GenuinePct, errPts)
		if tool == experiments.ToolFC {
			fmt.Printf("%-16s FC 95%% CIs: inactive [%.1f, %.1f]  fake [%.1f, %.1f]  genuine [%.1f, %.1f]\n", "",
				100*rep.InactiveCI.Lo, 100*rep.InactiveCI.Hi,
				100*rep.FakeCI.Lo, 100*rep.FakeCI.Hi,
				100*rep.GenuineCI.Lo, 100*rep.GenuineCI.Hi)
		}
	}
	fmt.Println("\n|err| is the mean absolute error across the three classes")
	fmt.Println("(for twitteraudit, its fake bucket is compared with inactive+fake).")
}

func absErr(rep fakeproject.Report, truth population.Mix) float64 {
	if !rep.HasInactiveClass {
		junk := 100 * (truth.Inactive + truth.Fake)
		return (abs(rep.FakePct-junk) + abs(rep.GenuinePct-100*truth.Genuine)) / 2
	}
	return (abs(rep.InactivePct-100*truth.Inactive) +
		abs(rep.FakePct-100*truth.Fake) +
		abs(rep.GenuinePct-100*truth.Genuine)) / 3
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
