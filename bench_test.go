// Benchmarks regenerating every table of the paper, one benchmark (family)
// per artefact, plus micro-benchmarks of the audit hot paths. Virtual
// (simulated) durations are reported as custom metrics — e.g.
// `virtual_s/op` on the Table II benchmarks is the value the paper's table
// reports — while ns/op measures the real compute cost of the simulation.
//
// Run with: go test -bench=. -benchmem
package fakeproject_test

import (
	"sync"
	"testing"

	"fakeproject"
	"fakeproject/internal/drand"
	"fakeproject/internal/experiments"
	"fakeproject/internal/fc"
	"fakeproject/internal/ratelimit"
	"fakeproject/internal/sampling"
	"fakeproject/internal/simclock"
	"fakeproject/internal/stats"
	"fakeproject/internal/twitterapi"
)

// benchSim is the shared simulation used by the table benchmarks; building
// it (population generation + classifier training) is excluded from every
// measurement via sync.Once.
var (
	benchSimOnce sync.Once
	benchSim     *experiments.Simulation
	benchSimErr  error
)

func sharedSim(b *testing.B) *experiments.Simulation {
	b.Helper()
	benchSimOnce.Do(func() {
		benchSim, benchSimErr = experiments.NewSimulation(experiments.SimConfig{
			Only: []string{
				"RobDWaller", "davc", "giovanniallevi", "PC_Chiambretti", "BarackObama",
			},
			ScaleCap:     60000,
			WithDeepDive: true,
		})
	})
	if benchSimErr != nil {
		b.Fatal(benchSimErr)
	}
	return benchSim
}

// BenchmarkTableI_RateLimitedPaging measures the Table I substrate: paging
// a 60K-follower list through the rate-limited followers/ids endpoint
// (12 pages per iteration).
func BenchmarkTableI_RateLimitedPaging(b *testing.B) {
	sim := sharedSim(b)
	id, err := sim.Store.LookupName("PC_Chiambretti")
	if err != nil {
		b.Fatal(err)
	}
	client := twitterapi.NewDirectClient(sim.Service, sim.Clock, twitterapi.ClientConfig{Tokens: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := twitterapi.AllFollowerIDs(client, id)
		if err != nil {
			b.Fatal(err)
		}
		if len(ids) == 0 {
			b.Fatal("empty page")
		}
	}
}

// benchAuditTool measures one tool's fresh (uncached) audit of one target,
// reporting the tool's virtual response time — the Table II quantity.
func benchAuditTool(b *testing.B, tool, target string) {
	sim := sharedSim(b)
	auditor := sim.Auditor(tool)
	var virtual float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auditor.Forget(target)
		report, err := auditor.Audit(target)
		if err != nil {
			b.Fatal(err)
		}
		virtual += report.Elapsed.Seconds()
	}
	b.ReportMetric(virtual/float64(b.N), "virtual_s/op")
}

// BenchmarkTableII_* regenerate the response-time rows for a mid-class
// account (giovanniallevi, 13.9K followers).
func BenchmarkTableII_FC(b *testing.B) { benchAuditTool(b, experiments.ToolFC, "giovanniallevi") }
func BenchmarkTableII_Twitteraudit(b *testing.B) {
	benchAuditTool(b, experiments.ToolTA, "giovanniallevi")
}
func BenchmarkTableII_StatusPeople(b *testing.B) {
	benchAuditTool(b, experiments.ToolSP, "giovanniallevi")
}
func BenchmarkTableII_Socialbakers(b *testing.B) {
	benchAuditTool(b, experiments.ToolSB, "giovanniallevi")
}

// BenchmarkTableII_CachedRepeat measures the <5s repeat-request path,
// using Twitteraudit's never-expiring cache (the "assessed 7 months ago"
// behaviour) so that the accumulated virtual time of large b.N runs cannot
// expire the entry mid-benchmark.
func BenchmarkTableII_CachedRepeat(b *testing.B) {
	sim := sharedSim(b)
	auditor := sim.Auditor(experiments.ToolTA)
	if _, err := auditor.Audit("davc"); err != nil {
		b.Fatal(err)
	}
	var virtual float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := auditor.Audit("davc")
		if err != nil {
			b.Fatal(err)
		}
		if !report.Cached {
			b.Fatal("expected cache hit")
		}
		virtual += report.Elapsed.Seconds()
	}
	b.ReportMetric(virtual/float64(b.N), "virtual_s/op")
}

// BenchmarkTableIII_* regenerate verdict rows on the paper's pathological
// account (@PC_Chiambretti, 97% inactive).
func BenchmarkTableIII_FC(b *testing.B) { benchAuditTool(b, experiments.ToolFC, "PC_Chiambretti") }
func BenchmarkTableIII_Twitteraudit(b *testing.B) {
	benchAuditTool(b, experiments.ToolTA, "PC_Chiambretti")
}
func BenchmarkTableIII_StatusPeople(b *testing.B) {
	benchAuditTool(b, experiments.ToolSP, "PC_Chiambretti")
}
func BenchmarkTableIII_Socialbakers(b *testing.B) {
	benchAuditTool(b, experiments.ToolSB, "PC_Chiambretti")
}

// BenchmarkFollowerOrder regenerates the Section IV-B snapshot experiment
// (2 accounts × 3 days per iteration).
func BenchmarkFollowerOrder(b *testing.B) {
	sim := sharedSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFollowerOrder(2, 3, 25)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Confirmed() {
			b.Fatal("order thesis not confirmed")
		}
	}
}

// BenchmarkCrawlCost_Analytic measures the closed-form crawl model across
// the high-class accounts (incl. Obama's 41M → ≈27 days).
func BenchmarkCrawlCost_Analytic(b *testing.B) {
	var days float64
	for i := 0; i < b.N; i++ {
		est := fakeproject.EstimateFullCrawl(41000000, 1)
		days = est.Days()
	}
	b.ReportMetric(days, "obama_days")
}

// BenchmarkCrawlCost_Simulated runs a real rate-limited crawl of a 20K
// account on the virtual clock per iteration.
func BenchmarkCrawlCost_Simulated(b *testing.B) {
	sim := sharedSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, err := sim.ValidateCrawlModel(20000)
		if err != nil {
			b.Fatal(err)
		}
		if val.RelativeErr > 0.05 {
			b.Fatalf("model error %.2f%%", val.RelativeErr*100)
		}
	}
}

// BenchmarkDeepDive regenerates the Section II-A Deep Dive comparison
// (one Fakers + one Deep Dive audit of a mega account per iteration).
func BenchmarkDeepDive(b *testing.B) {
	sim := sharedSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sim.RunDeepDive()
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 3 {
			b.Fatal("missing deep dive rows")
		}
	}
}

// BenchmarkAnecdote regenerates a scaled Section II-A bought-followers
// anecdote (11K fresh accounts per iteration).
func BenchmarkAnecdote(b *testing.B) {
	sim := sharedSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The bought batch covers the launch-era window (5,000), so the
		// Fakers verdict saturates while the truth stays at one third.
		res, err := sim.RunAnecdote(10000, 5000)
		if err != nil {
			b.Fatal(err)
		}
		if res.FakersJunkPct < 90 {
			b.Fatalf("anecdote lost its bite: %.1f%%", res.FakersJunkPct)
		}
	}
}

// BenchmarkGoldStandardTraining measures the Section III pipeline: gold
// standard synthesis + forest training (400 accounts per class).
func BenchmarkGoldStandardTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gold, err := fc.BuildGoldStandard(400, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(gold.Fakes) != 400 {
			b.Fatal("bad gold standard")
		}
	}
}

// --- micro-benchmarks of the audit hot paths ---

// BenchmarkUniformSample9604 draws the FC engine's 9,604-element sample
// from a million-follower list.
func BenchmarkUniformSample9604(b *testing.B) {
	src := drand.New(1)
	for i := 0; i < b.N; i++ {
		idx := sampling.Uniform{}.Sample(1000000, 9604, src)
		if len(idx) != 9604 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkProfileLookupBatch materialises one users/lookup batch (100
// procedural profiles).
func BenchmarkProfileLookupBatch(b *testing.B) {
	sim := sharedSim(b)
	id, err := sim.Store.LookupName("davc")
	if err != nil {
		b.Fatal(err)
	}
	ids, err := sim.Store.FollowersNewestFirst(id)
	if err != nil {
		b.Fatal(err)
	}
	batch := ids[:100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profiles := sim.Store.Profiles(batch)
		if len(profiles) != 100 {
			b.Fatal("bad batch")
		}
	}
}

// BenchmarkConfidenceInterval measures the estimator maths of Section II-D.
func BenchmarkConfidenceInterval(b *testing.B) {
	p, err := stats.EstimateProportion(2881, 9604)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		iv := p.ConfidenceInterval(0.95)
		if iv.Width() <= 0 {
			b.Fatal("degenerate interval")
		}
	}
}

// BenchmarkRateLimiterReserve measures the limiter on the hot path.
func BenchmarkRateLimiterReserve(b *testing.B) {
	clock := simclock.NewVirtualAtEpoch()
	limiter := ratelimit.New(clock, twitterapi.DefaultLimits())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Sleep(limiter.Reserve(twitterapi.EndpointUsersLookup))
	}
}
