module fakeproject

go 1.24
