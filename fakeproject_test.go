package fakeproject_test

import (
	"context"
	"math"
	"testing"
	"time"

	"fakeproject"
)

func TestPublicFacadeSampleSize(t *testing.T) {
	if n := fakeproject.SampleSize(0.95, 0.01); n != 9604 {
		t.Fatalf("SampleSize = %d, want the paper's 9604", n)
	}
}

func TestPublicFacadeCrawlEstimate(t *testing.T) {
	est := fakeproject.EstimateFullCrawl(41000000, 1)
	if d := est.Days(); math.Abs(d-29.4) > 1 {
		t.Fatalf("Obama crawl = %.1f days, want ≈29 (paper: \"around 27 days\")", d)
	}
}

func TestPublicFacadeTestbed(t *testing.T) {
	testbed := fakeproject.PaperTestbed()
	if len(testbed) != 20 {
		t.Fatalf("testbed = %d accounts", len(testbed))
	}
}

func TestPublicFacadeGoldStandard(t *testing.T) {
	gold, err := fakeproject.BuildGoldStandard(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gold.Humans) != 50 || len(gold.Fakes) != 50 {
		t.Fatalf("gold standard %d/%d", len(gold.Humans), len(gold.Fakes))
	}
}

// TestPublicFacadeEndToEnd is the README quick-start, as a test.
func TestPublicFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a population and trains a classifier")
	}
	sim, err := fakeproject.NewSimulation(fakeproject.SimConfig{
		Only: []string{"davc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.Auditor(fakeproject.ToolFC).Audit("davc")
	if err != nil {
		t.Fatal(err)
	}
	if report.Tool != fakeproject.ToolFC {
		t.Fatalf("tool = %q", report.Tool)
	}
	if report.SampleSize != 2971 { // whole base for a small account
		t.Fatalf("sample = %d", report.SampleSize)
	}
	sum := report.InactivePct + report.FakePct + report.GenuinePct
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("percentages sum to %v", sum)
	}
	if !report.InactiveCI.Contains(report.InactivePct / 100) {
		t.Fatal("CI excludes its own point estimate")
	}
}

func TestLayoutFacade(t *testing.T) {
	l := fakeproject.Layout{
		{Width: 100, Mix: fakeproject.Mix{Fake: 1}},
		{Width: 0, Mix: fakeproject.Mix{Genuine: 1}},
	}
	truth := l.Truth(1000)
	if math.Abs(truth.Fake-0.1) > 1e-9 {
		t.Fatalf("layout truth = %+v", truth)
	}
}

func TestPublicFacadeMonitoring(t *testing.T) {
	sim, err := fakeproject.NewSimulation(fakeproject.SimConfig{Only: []string{"davc"}})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := fakeproject.NewAuditService(sim, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())
	mon, err := fakeproject.NewMonitor(sim, svc)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	driver, err := fakeproject.NewChurnDriver(sim, "davc", fakeproject.ChurnScript{
		DailyGrowth: 50,
		Events: []fakeproject.ChurnEvent{
			{Day: 2, Kind: "purchase", Size: 1500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Watch(fakeproject.WatchSpec{
		Target:  "davc",
		Tools:   []string{fakeproject.ToolSB},
		Cadence: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		if day > 0 {
			sim.Clock.Advance(24 * time.Hour)
			if _, err := driver.AdvanceDay(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := mon.Tick(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	series, ok := mon.Series("davc")
	if !ok || len(series[fakeproject.ToolSB]) != 3 {
		t.Fatalf("series = %v, %v", series, ok)
	}
	// A 1500-account burst on a ~3K account trips the default rules.
	if len(mon.Alerts("davc")) == 0 {
		t.Fatal("burst raised no alerts")
	}
}
