// Command checkmetrics scrapes a /metrics endpoint, validates the payload
// with the repo's own exposition parser (internal/metrics.ParseText — the
// same validation the opsui dashboard depends on), and asserts simple
// expectations over the families it finds:
//
//	checkmetrics -url http://127.0.0.1:8080/metrics \
//	  'router_backend_healthy=2' 'http_requests_total>0' 'router_upstream_seconds'
//
// Each argument is one assertion: a bare family name requires the family
// to be present; NAME=V and NAME>V compare V against the sum of the
// family's samples (for histograms, the sum of the _count samples). The
// exit status is non-zero on any parse error or failed assertion, which
// makes the tool a one-line CI check for smoke scripts.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"fakeproject/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "checkmetrics:", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "", "metrics endpoint to scrape (required)")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout")
	flag.Parse()
	if *url == "" {
		return fmt.Errorf("-url is required")
	}

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(*url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", *url, resp.StatusCode)
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape failed validation: %w", err)
	}

	sums := make(map[string]float64, len(fams))
	for _, f := range fams {
		var total float64
		for _, s := range f.Samples {
			// For histograms the family total is the observation count;
			// plain families sum their sample values.
			if f.Type == "histogram" || f.Type == "summary" {
				if strings.HasSuffix(s.Name, "_count") {
					total += s.Value
				}
			} else {
				total += s.Value
			}
		}
		sums[f.Name] = total
	}

	var failed int
	for _, expr := range flag.Args() {
		if err := check(sums, expr); err != nil {
			fmt.Fprintln(os.Stderr, "checkmetrics: FAIL:", err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d assertions failed", failed, flag.NArg())
	}
	fmt.Printf("checkmetrics OK: %d families valid, %d assertions hold\n", len(fams), flag.NArg())
	return nil
}

// check evaluates one assertion expression against the family sums.
func check(sums map[string]float64, expr string) error {
	name, op, want := expr, "", 0.0
	for _, o := range []string{">=", "<=", "=", ">", "<"} {
		if i := strings.Index(expr, o); i > 0 {
			v, err := strconv.ParseFloat(expr[i+len(o):], 64)
			if err != nil {
				return fmt.Errorf("%s: bad value: %v", expr, err)
			}
			name, op, want = expr[:i], o, v
			break
		}
	}
	got, ok := sums[name]
	if !ok {
		return fmt.Errorf("%s: family %q absent from the scrape", expr, name)
	}
	holds := true
	switch op {
	case "":
	case "=":
		holds = got == want
	case ">":
		holds = got > want
	case "<":
		holds = got < want
	case ">=":
		holds = got >= want
	case "<=":
		holds = got <= want
	}
	if !holds {
		return fmt.Errorf("%s: sum(%s) = %v", expr, name, got)
	}
	return nil
}
