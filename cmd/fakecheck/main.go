// Command fakecheck audits one target account of the paper testbed with one
// or all of the four analytics engines, printing each tool's verdict,
// sample geometry, response time and API spend:
//
//	fakecheck -target PC_Chiambretti            # all four tools
//	fakecheck -target BarackObama -tool fc      # the FC engine only
//	fakecheck -list                             # show available targets
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"fakeproject/internal/core"
	"fakeproject/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fakecheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target = flag.String("target", "", "screen name to audit (from the paper testbed)")
		tool   = flag.String("tool", "all", "tool: all|fc|ta|sp|sb")
		seed   = flag.Uint64("seed", 20140301, "simulation seed")
		scale  = flag.Int("scale", 120000, "max materialised followers")
		list   = flag.Bool("list", false, "list available targets and exit")
	)
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "screen name\tfollowers\tclass")
		for _, a := range core.PaperTestbed() {
			fmt.Fprintf(tw, "%s\t%d\t%s\n", a.ScreenName, a.Followers, a.Class)
		}
		return tw.Flush()
	}
	if *target == "" {
		return fmt.Errorf("a -target is required (try -list)")
	}

	tools := map[string]string{
		"fc": experiments.ToolFC,
		"ta": experiments.ToolTA,
		"sp": experiments.ToolSP,
		"sb": experiments.ToolSB,
	}
	var selected []string
	if *tool == "all" {
		selected = experiments.ToolOrder
	} else {
		key, ok := tools[*tool]
		if !ok {
			return fmt.Errorf("unknown tool %q (want all|fc|ta|sp|sb)", *tool)
		}
		selected = []string{key}
	}

	fmt.Fprintf(os.Stderr, "building population for @%s...\n", *target)
	sim, err := experiments.NewSimulation(experiments.SimConfig{
		Seed:     *seed,
		ScaleCap: *scale,
		Only:     []string{*target},
	})
	if err != nil {
		return err
	}
	if len(sim.Testbed()) == 0 {
		return fmt.Errorf("unknown target %q (try -list)", *target)
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tool\tinactive\tfake\tgenuine\tsample\twindow\ttime\tAPI calls")
	for _, name := range selected {
		rep, err := sim.Auditor(name).Audit(*target)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		window := "whole list"
		if rep.Window > 0 {
			window = fmt.Sprintf("newest %d", rep.Window)
		}
		inactive := fmt.Sprintf("%.1f%%", rep.InactivePct)
		if !rep.HasInactiveClass {
			inactive = "n/a"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%.1f%%\t%d\t%s\t%.0fs\t%d\n",
			rep.Tool, inactive, rep.FakePct, rep.GenuinePct,
			rep.SampleSize, window, rep.Elapsed.Seconds(), rep.APICalls)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	for _, a := range sim.Testbed() {
		fmt.Printf("\npaper reports for @%s (%d followers): FC %.1f/%.1f/%.1f  TA -/%.1f/%.1f  SP %.0f/%.0f/%.0f  SB %.0f/%.0f/%.0f\n",
			a.ScreenName, a.Followers,
			a.FC.Inactive, a.FC.Fake, a.FC.Genuine,
			a.TA.Fake, a.TA.Genuine,
			a.SP.Inactive, a.SP.Fake, a.SP.Genuine,
			a.SB.Inactive, a.SB.Fake, a.SB.Genuine)
	}
	return nil
}
