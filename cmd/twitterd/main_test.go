package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/wal"
)

// TestMetricsSmoke boots the exact production handler assembly, drives a few
// API requests through it, and checks every observability surface: /metrics
// parses as valid Prometheus text and contains the per-endpoint histograms
// and store counters, /metrics.json is served, the dashboard assets are
// embedded, and pprof answers when enabled. CI runs this as its scrape
// smoke step.
func TestMetricsSmoke(t *testing.T) {
	clock := simclock.Real{}
	// Durable mode, exactly as `twitterd -wal-dir` boots it, so the WAL's
	// metric families are part of the scraped surface under test.
	store, wlog, _, err := wal.Open(wal.Config{
		Dir:    t.TempDir(),
		Policy: wal.PolicyInterval,
		Clock:  clock,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	gen := population.NewGenerator(store, 1)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "smoke",
		Followers:  300,
		Layout:     population.Layout{{Width: 0, Mix: population.FromPercentages(40, 20, 40)}},
		Statuses:   20,
		FollowSpan: 365 * 24 * time.Hour,
	}); err != nil {
		t.Fatalf("building population: %v", err)
	}
	if err := wlog.Compact(); err != nil {
		t.Fatalf("compacting: %v", err)
	}

	srv := httptest.NewServer(newRootHandler(store, clock, obsConfig{
		Metrics:   true,
		Dashboard: true,
		Pprof:     true,
	}, wlog.Observe))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp, string(body)
	}

	// Drive the API plane so the histograms have samples.
	for i := 0; i < 4; i++ {
		resp, body := get("/1.1/users/show.json?screen_name=smoke")
		if resp.StatusCode != 200 {
			t.Fatalf("users/show: HTTP %d: %s", resp.StatusCode, body)
		}
	}
	if resp, body := get("/1.1/followers/ids.json?screen_name=smoke&cursor=-1"); resp.StatusCode != 200 {
		t.Fatalf("followers/ids: HTTP %d: %s", resp.StatusCode, body)
	}

	// The Prometheus exposition must parse and cover the expected families.
	resp, body := get("/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q, want the 0.0.4 text format", ct)
	}
	fams, err := metrics.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	byName := map[string]metrics.ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"http_requests_total",
		"http_request_duration_seconds",
		"http_requests_in_flight",
		"ratelimit_throttled_total",
		"store_shard_ops_total",
		"wal_records_total",
		"wal_bytes_total",
		"wal_fsync_seconds",
		"wal_compactions_total",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if f := byName["http_request_duration_seconds"]; f.Type != "histogram" {
		t.Errorf("http_request_duration_seconds type %q, want histogram", f.Type)
	}
	if f := byName["wal_fsync_seconds"]; f.Type != "histogram" {
		t.Errorf("wal_fsync_seconds type %q, want histogram", f.Type)
	}
	// The population build ran through the log: the record counter must have
	// real traffic in it, and the post-build compaction must be visible.
	if !walCounterPositive(body, "wal_records_total") {
		t.Errorf("wal_records_total not positive:\n%s", grepLines(body, "wal_records_total"))
	}
	if !walCounterPositive(body, "wal_compactions_total") {
		t.Errorf("wal_compactions_total not positive:\n%s", grepLines(body, "wal_compactions_total"))
	}
	if !strings.Contains(body, `http_requests_total{code="2xx",endpoint="users/show",plane="api"} 4`) {
		t.Errorf("per-endpoint 2xx counter missing or wrong:\n%s", grepLines(body, "http_requests_total"))
	}

	// JSON exposition, dashboard assets and pprof ride on the same mux.
	if resp, body := get("/metrics.json"); resp.StatusCode != 200 || !strings.Contains(body, `"families"`) {
		t.Errorf("/metrics.json: HTTP %d, body %.80q", resp.StatusCode, body)
	}
	if resp, body := get("/dashboard/"); resp.StatusCode != 200 || !strings.Contains(body, "ops dashboard") {
		t.Errorf("/dashboard/: HTTP %d, body %.80q", resp.StatusCode, body)
	}
	if resp, _ := get("/dashboard/app.js"); resp.StatusCode != 200 {
		t.Errorf("/dashboard/app.js: HTTP %d", resp.StatusCode)
	}
	if resp, _ := get("/debug/pprof/cmdline"); resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline: HTTP %d", resp.StatusCode)
	}
}

// TestObservabilityOff checks the gating: with everything off the root
// handler is the bare API server and none of the extra surfaces exist.
func TestObservabilityOff(t *testing.T) {
	clock := simclock.Real{}
	store := twitter.NewStore(clock, 1)
	srv := httptest.NewServer(newRootHandler(store, clock, obsConfig{}))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/metrics.json", "/dashboard/", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Errorf("GET %s: served despite observability off", path)
		}
	}
}

// walCounterPositive reports whether the named sample appears in the
// exposition with a value greater than zero.
func walCounterPositive(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" && fields[1] != "0.0" {
			return true
		}
	}
	return false
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
