// Command twitterd serves the simulated Twitter API over HTTP on the real
// clock, with the paper testbed (or a subset) as its population — a live
// sandbox for exercising the rate-limited endpoints with curl or the
// HTTPClient:
//
//	twitterd -addr :8080 -accounts davc,PC_Chiambretti
//	curl -H 'Authorization: Bearer demo' \
//	  'http://localhost:8080/1.1/followers/ids.json?screen_name=davc&cursor=-1'
//
// Rate limits follow Table I per bearer token; exhausted budgets return 429
// with a Retry-After header, exactly like api.twitter.com/1.1.
//
// Observability (see docs/OPERATIONS.md): -metrics serves the registry at
// /metrics (Prometheus text) and /metrics.json, -dashboard mounts the
// embedded ops dashboard at /dashboard/, -pprof mounts net/http/pprof at
// /debug/pprof/.
//
// Durability: -wal-dir runs the store on a write-ahead log — every mutation
// is persisted before it is acknowledged (per the -fsync policy) and a
// restart recovers the population from the newest snapshot plus the log
// tail. -load seeds a fresh WAL directory from a genpop snapshot.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/metrics"
	"fakeproject/internal/opsui"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
	"fakeproject/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twitterd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		accounts = flag.String("accounts", "davc,grossnasty,janrezab", "comma-separated paper accounts to build")
		scale    = flag.Int("scale", 50000, "max materialised followers per account")
		seed     = flag.Uint64("seed", 20140301, "population seed")
		load     = flag.String("load", "", "serve a store snapshot (from genpop -out) instead of building accounts")

		metricsOn = flag.Bool("metrics", true, "serve /metrics (Prometheus text) and /metrics.json")
		dashboard = flag.Bool("dashboard", true, "serve the embedded ops dashboard at /dashboard/ (needs -metrics)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")

		walDir       = flag.String("wal-dir", "", "durable mode: write-ahead log directory (recovered on boot; see docs/OPERATIONS.md)")
		walFsync     = flag.String("fsync", "interval", "WAL fsync policy: always, interval, off (with -wal-dir)")
		compactEvery = flag.Uint64("compact-every", 100000, "compact the WAL every N records past the newest snapshot (0 = never; with -wal-dir)")
	)
	flag.Parse()
	obs := obsConfig{Metrics: *metricsOn, Dashboard: *dashboard, Pprof: *pprofOn}

	clock := simclock.Real{}

	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			return err
		}
		store, wlog, stats, err := wal.Open(wal.Config{
			Dir:          *walDir,
			Policy:       policy,
			CompactEvery: *compactEvery,
			SeedSnapshot: *load,
			Clock:        clock,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		defer wlog.Close()
		torn := ""
		if stats.TornTail {
			torn = "; torn tail truncated"
		}
		fmt.Fprintf(os.Stderr, "wal: %s recovered %d accounts (snapshot %q + %d records across %d segments%s) in %v\n",
			*walDir, stats.Users, stats.SnapshotPath, stats.RecordsReplayed, stats.SegmentsScanned, torn, stats.Elapsed.Round(time.Millisecond))
		if stats.Users == 0 && *load == "" {
			if err := buildAccounts(store, clock, *accounts, *scale, *seed); err != nil {
				return err
			}
		}
		return serve(*addr, store, clock, obs, wlog.Observe)
	}

	if *load != "" {
		store, err := twitter.LoadSnapshotFile(*load, clock)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded snapshot with %d accounts\n", store.UserCount())
		return serve(*addr, store, clock, obs)
	}

	store := twitter.NewStore(clock, *seed)
	if err := buildAccounts(store, clock, *accounts, *scale, *seed); err != nil {
		return err
	}
	return serve(*addr, store, clock, obs)
}

// buildAccounts materialises the requested paper-testbed accounts into the
// store (which may be WAL-backed — the build then doubles as the log's
// genesis records).
func buildAccounts(store *twitter.Store, clock simclock.Clock, accounts string, scale int, seed uint64) error {
	gen := population.NewGenerator(store, seed)
	want := map[string]bool{}
	for _, name := range strings.Split(accounts, ",") {
		want[strings.TrimSpace(name)] = true
	}
	built := 0
	for _, acct := range core.PaperTestbed() {
		if !want[acct.ScreenName] {
			continue
		}
		n := acct.Followers
		if n > scale {
			n = scale
		}
		layout := population.DeriveLayout(n, acct.FC.Mix(), acct.SB.Mix(), acct.SP.Mix())
		fmt.Fprintf(os.Stderr, "building @%s (%d followers)...\n", acct.ScreenName, n)
		if _, err := gen.BuildTarget(population.TargetSpec{
			ScreenName:       acct.ScreenName,
			Followers:        n,
			NominalFollowers: acct.Followers,
			Layout:           layout,
			Statuses:         1000,
			CreatedAt:        clock.Now().AddDate(-3, 0, 0),
			LastTweet:        clock.Now().Add(-24 * time.Hour),
			FollowSpan:       2 * 365 * 24 * time.Hour,
		}); err != nil {
			return fmt.Errorf("building %s: %w", acct.ScreenName, err)
		}
		built++
	}
	if built == 0 {
		return fmt.Errorf("no known accounts in %q (see the paper testbed)", accounts)
	}
	fmt.Fprintf(os.Stderr, "built %d accounts\n", built)
	return nil
}

// obsConfig selects the observability surfaces mounted next to the API.
type obsConfig struct {
	Metrics   bool
	Dashboard bool
	Pprof     bool
}

// newRootHandler assembles the daemon's full HTTP surface: the API plane at
// /1.1/, and — per flags — /metrics, /metrics.json, /dashboard/ and
// /debug/pprof/. Factored out of serve so the smoke test can boot the exact
// production handler on an httptest server. Extra observers (the WAL's, when
// durable mode is on) are hooked into the same registry the daemon serves.
func newRootHandler(store *twitter.Store, clock simclock.Clock, obs obsConfig, observers ...func(*metrics.Registry)) http.Handler {
	svc := twitterapi.NewService(store)
	if !obs.Metrics && !obs.Pprof {
		return twitterapi.NewServer(svc, clock)
	}
	mux := http.NewServeMux()
	if obs.Metrics {
		reg := metrics.NewRegistry()
		mux.Handle("/", twitterapi.NewServerObserved(svc, clock, twitterapi.DefaultLimits(), reg))
		twitterapi.ObserveStore(reg, store)
		for _, observe := range observers {
			observe(reg)
		}
		mux.Handle("GET /metrics", reg)
		mux.Handle("GET /metrics.json", reg)
		if obs.Dashboard {
			mux.Handle("/dashboard/", opsui.Handler("/dashboard/"))
		}
	} else {
		mux.Handle("/", twitterapi.NewServer(svc, clock))
	}
	if obs.Pprof {
		metrics.MountPprof(mux)
	}
	return mux
}

func serve(addr string, store *twitter.Store, clock simclock.Clock, obs obsConfig, observers ...func(*metrics.Registry)) error {
	fmt.Fprintf(os.Stderr, "serving on http://%s/1.1/ (try followers/ids.json, users/lookup.json, users/show.json, statuses/user_timeline.json)\n",
		addr)
	if obs.Metrics {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics", addr)
		if obs.Dashboard {
			fmt.Fprintf(os.Stderr, ", dashboard on http://%s/dashboard/", addr)
		}
		fmt.Fprintln(os.Stderr)
	}
	httpServer := &http.Server{
		Addr:         addr,
		Handler:      newRootHandler(store, clock, obs, observers...),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	return httpServer.ListenAndServe()
}
