// Command twitterd serves the simulated Twitter API over HTTP on the real
// clock, with the paper testbed (or a subset) as its population — a live
// sandbox for exercising the rate-limited endpoints with curl or the
// HTTPClient:
//
//	twitterd -addr :8080 -accounts davc,PC_Chiambretti
//	curl -H 'Authorization: Bearer demo' \
//	  'http://localhost:8080/1.1/followers/ids.json?screen_name=davc&cursor=-1'
//
// Rate limits follow Table I per bearer token; exhausted budgets return 429
// with a Retry-After header, exactly like api.twitter.com/1.1.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twitterd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		accounts = flag.String("accounts", "davc,grossnasty,janrezab", "comma-separated paper accounts to build")
		scale    = flag.Int("scale", 50000, "max materialised followers per account")
		seed     = flag.Uint64("seed", 20140301, "population seed")
		load     = flag.String("load", "", "serve a store snapshot (from genpop -out) instead of building accounts")
	)
	flag.Parse()

	clock := simclock.Real{}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return fmt.Errorf("opening snapshot: %w", err)
		}
		defer f.Close()
		store, err := twitter.ReadSnapshot(f, clock)
		if err != nil {
			return fmt.Errorf("loading snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "loaded snapshot with %d accounts\n", store.UserCount())
		return serve(*addr, store, clock)
	}

	store := twitter.NewStore(clock, *seed)
	gen := population.NewGenerator(store, *seed)

	want := map[string]bool{}
	for _, name := range strings.Split(*accounts, ",") {
		want[strings.TrimSpace(name)] = true
	}
	built := 0
	for _, acct := range core.PaperTestbed() {
		if !want[acct.ScreenName] {
			continue
		}
		n := acct.Followers
		if n > *scale {
			n = *scale
		}
		layout := population.DeriveLayout(n, acct.FC.Mix(), acct.SB.Mix(), acct.SP.Mix())
		fmt.Fprintf(os.Stderr, "building @%s (%d followers)...\n", acct.ScreenName, n)
		if _, err := gen.BuildTarget(population.TargetSpec{
			ScreenName:       acct.ScreenName,
			Followers:        n,
			NominalFollowers: acct.Followers,
			Layout:           layout,
			Statuses:         1000,
			CreatedAt:        time.Now().AddDate(-3, 0, 0),
			LastTweet:        time.Now().Add(-24 * time.Hour),
			FollowSpan:       2 * 365 * 24 * time.Hour,
		}); err != nil {
			return fmt.Errorf("building %s: %w", acct.ScreenName, err)
		}
		built++
	}
	if built == 0 {
		return fmt.Errorf("no known accounts in %q (see the paper testbed)", *accounts)
	}
	fmt.Fprintf(os.Stderr, "built %d accounts\n", built)
	return serve(*addr, store, clock)
}

func serve(addr string, store *twitter.Store, clock simclock.Clock) error {
	server := twitterapi.NewServer(twitterapi.NewService(store), clock)
	fmt.Fprintf(os.Stderr, "serving on http://%s/1.1/ (try followers/ids.json, users/lookup.json, users/show.json, statuses/user_timeline.json)\n",
		addr)
	httpServer := &http.Server{
		Addr:         addr,
		Handler:      server,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	return httpServer.ListenAndServe()
}
