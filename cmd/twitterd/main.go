// Command twitterd serves the simulated Twitter API over HTTP on the real
// clock, with the paper testbed (or a subset) as its population — a live
// sandbox for exercising the rate-limited endpoints with curl or the
// HTTPClient:
//
//	twitterd -addr :8080 -accounts davc,PC_Chiambretti
//	curl -H 'Authorization: Bearer demo' \
//	  'http://localhost:8080/1.1/followers/ids.json?screen_name=davc&cursor=-1'
//
// Rate limits follow Table I per bearer token; exhausted budgets return 429
// with a Retry-After header, exactly like api.twitter.com/1.1.
//
// Observability (see docs/OPERATIONS.md): -metrics serves the registry at
// /metrics (Prometheus text) and /metrics.json, -dashboard mounts the
// embedded ops dashboard at /dashboard/, -pprof mounts net/http/pprof at
// /debug/pprof/.
//
// Durability: -wal-dir runs the store on a write-ahead log — every mutation
// is persisted before it is acknowledged (per the -fsync policy) and a
// restart recovers the population from the newest snapshot plus the log
// tail. -load seeds a fresh WAL directory from a genpop snapshot.
//
// Multi-node: -ring-index/-ring-nodes/-ring-slots boot the daemon as one
// member of a partitioned ring behind routerd (see docs/OPERATIONS.md).
// The node loads every record and name from the -load snapshot but
// materialises heavy target state only for the slot ranges it owns or
// replicates; /healthz answers readiness probes and /admin/snapshot
// streams a canonical range snapshot for ownership transfer.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/metrics"
	"fakeproject/internal/opsui"
	"fakeproject/internal/population"
	"fakeproject/internal/router"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
	"fakeproject/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twitterd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		accounts = flag.String("accounts", "davc,grossnasty,janrezab", "comma-separated paper accounts to build")
		scale    = flag.Int("scale", 50000, "max materialised followers per account")
		seed     = flag.Uint64("seed", 20140301, "population seed")
		load     = flag.String("load", "", "serve a store snapshot (from genpop -out) instead of building accounts")

		metricsOn = flag.Bool("metrics", true, "serve /metrics (Prometheus text) and /metrics.json")
		dashboard = flag.Bool("dashboard", true, "serve the embedded ops dashboard at /dashboard/ (needs -metrics)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")

		walDir       = flag.String("wal-dir", "", "durable mode: write-ahead log directory (recovered on boot; see docs/OPERATIONS.md)")
		walFsync     = flag.String("fsync", "interval", "WAL fsync policy: always, interval, off (with -wal-dir)")
		compactEvery = flag.Uint64("compact-every", 100000, "compact the WAL every N records past the newest snapshot (0 = never; with -wal-dir)")

		ringIndex = flag.Int("ring-index", -1, "multi-node: this node's ring position (requires -ring-nodes and -load)")
		ringNodes = flag.Int("ring-nodes", 0, "multi-node: total nodes in the ring")
		ringSlots = flag.Int("ring-slots", router.DefaultSlots, "multi-node: ring slot count (must match routerd's)")
		noLimits  = flag.Bool("no-limits", false, "disable the Table I rate limits (load and smoke runs)")
	)
	flag.Parse()
	obs := obsConfig{Metrics: *metricsOn, Dashboard: *dashboard, Pprof: *pprofOn, NoLimits: *noLimits}

	clock := simclock.Real{}

	if *ringIndex >= 0 {
		if *ringNodes < 1 || *ringIndex >= *ringNodes {
			return fmt.Errorf("-ring-index %d needs -ring-nodes > it (got %d)", *ringIndex, *ringNodes)
		}
		if *load == "" {
			return fmt.Errorf("-ring-index requires -load (ring members boot from a canonical snapshot)")
		}
		if *walDir != "" {
			return fmt.Errorf("-ring-index is incompatible with -wal-dir (ring members are read-serving replicas)")
		}
		ring := router.NewRing(*ringSlots, *ringNodes)
		node := *ringIndex
		store, err := twitter.LoadSnapshotRangeFile(*load, clock, func(id twitter.UserID) bool {
			return ring.Keep(node, int64(id))
		})
		if err != nil {
			return err
		}
		olo, ohi := ring.OwnedRange(node)
		rlo, rhi := ring.ReplicatedRange(node)
		fmt.Fprintf(os.Stderr, "ring node %d/%d: %d accounts, owns slots [%d,%d), replicates [%d,%d) of %d\n",
			node, *ringNodes, store.UserCount(), olo, ohi, rlo, rhi, *ringSlots)
		obs.Ring, obs.RingNode = &ring, node
		return serve(*addr, store, clock, obs)
	}

	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			return err
		}
		store, wlog, stats, err := wal.Open(wal.Config{
			Dir:          *walDir,
			Policy:       policy,
			CompactEvery: *compactEvery,
			SeedSnapshot: *load,
			Clock:        clock,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		defer wlog.Close()
		torn := ""
		if stats.TornTail {
			torn = "; torn tail truncated"
		}
		fmt.Fprintf(os.Stderr, "wal: %s recovered %d accounts (snapshot %q + %d records across %d segments%s) in %v\n",
			*walDir, stats.Users, stats.SnapshotPath, stats.RecordsReplayed, stats.SegmentsScanned, torn, stats.Elapsed.Round(time.Millisecond))
		if stats.Users == 0 && *load == "" {
			if err := buildAccounts(store, clock, *accounts, *scale, *seed); err != nil {
				return err
			}
		}
		return serve(*addr, store, clock, obs, wlog.Observe)
	}

	if *load != "" {
		store, err := twitter.LoadSnapshotFile(*load, clock)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded snapshot with %d accounts\n", store.UserCount())
		return serve(*addr, store, clock, obs)
	}

	store := twitter.NewStore(clock, *seed)
	if err := buildAccounts(store, clock, *accounts, *scale, *seed); err != nil {
		return err
	}
	return serve(*addr, store, clock, obs)
}

// buildAccounts materialises the requested paper-testbed accounts into the
// store (which may be WAL-backed — the build then doubles as the log's
// genesis records).
func buildAccounts(store *twitter.Store, clock simclock.Clock, accounts string, scale int, seed uint64) error {
	gen := population.NewGenerator(store, seed)
	want := map[string]bool{}
	for _, name := range strings.Split(accounts, ",") {
		want[strings.TrimSpace(name)] = true
	}
	built := 0
	for _, acct := range core.PaperTestbed() {
		if !want[acct.ScreenName] {
			continue
		}
		n := acct.Followers
		if n > scale {
			n = scale
		}
		layout := population.DeriveLayout(n, acct.FC.Mix(), acct.SB.Mix(), acct.SP.Mix())
		fmt.Fprintf(os.Stderr, "building @%s (%d followers)...\n", acct.ScreenName, n)
		if _, err := gen.BuildTarget(population.TargetSpec{
			ScreenName:       acct.ScreenName,
			Followers:        n,
			NominalFollowers: acct.Followers,
			Layout:           layout,
			Statuses:         1000,
			CreatedAt:        clock.Now().AddDate(-3, 0, 0),
			LastTweet:        clock.Now().Add(-24 * time.Hour),
			FollowSpan:       2 * 365 * 24 * time.Hour,
		}); err != nil {
			return fmt.Errorf("building %s: %w", acct.ScreenName, err)
		}
		built++
	}
	if built == 0 {
		return fmt.Errorf("no known accounts in %q (see the paper testbed)", accounts)
	}
	fmt.Fprintf(os.Stderr, "built %d accounts\n", built)
	return nil
}

// obsConfig selects the observability surfaces mounted next to the API,
// plus the serving knobs that shape the handler assembly (rate limits off,
// ring membership for the admin snapshot-range export).
type obsConfig struct {
	Metrics   bool
	Dashboard bool
	Pprof     bool
	NoLimits  bool
	Ring      *router.Ring // non-nil when booted as a ring member
	RingNode  int
}

// newRootHandler assembles the daemon's full HTTP surface: the API plane at
// /1.1/, the always-on operational endpoints (/healthz for the router's
// probes, /admin/snapshot for range export), and — per flags — /metrics,
// /metrics.json, /dashboard/ and /debug/pprof/. Factored out of serve so
// the smoke test can boot the exact production handler on an httptest
// server. Extra observers (the WAL's, when durable mode is on) are hooked
// into the same registry the daemon serves.
func newRootHandler(store *twitter.Store, clock simclock.Clock, obs obsConfig, observers ...func(*metrics.Registry)) http.Handler {
	svc := twitterapi.NewService(store)
	limits := twitterapi.DefaultLimits()
	if obs.NoLimits {
		limits = nil
	}
	mux := http.NewServeMux()
	if obs.Metrics {
		reg := metrics.NewRegistry()
		mux.Handle("/", twitterapi.NewServerObserved(svc, clock, limits, reg))
		twitterapi.ObserveStore(reg, store)
		for _, observe := range observers {
			observe(reg)
		}
		mux.Handle("GET /metrics", reg)
		mux.Handle("GET /metrics.json", reg)
		if obs.Dashboard {
			mux.Handle("/dashboard/", opsui.Handler("/dashboard/"))
		}
	} else {
		mux.Handle("/", twitterapi.NewServerLimits(svc, clock, limits))
	}
	if obs.Pprof {
		metrics.MountPprof(mux)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshotExport(w, r, store, obs)
	})
	return mux
}

// handleSnapshotExport streams a canonical v5 range snapshot: by default
// the ranges this node holds (everything, for a non-ring daemon), or — with
// ?node=i&nodes=N[&slots=S] — the held set of an arbitrary ring position,
// which is how a joining node pulls its ranges from a current holder.
// Exports are canonical: any two holders of a range stream identical bytes
// for it, so ownership transfer is verifiable with a plain byte compare.
func handleSnapshotExport(w http.ResponseWriter, r *http.Request, store *twitter.Store, obs obsConfig) {
	keep := func(twitter.UserID) bool { return true }
	switch q := r.URL.Query(); {
	case q.Get("node") != "":
		node, err1 := strconv.Atoi(q.Get("node"))
		nodes, err2 := strconv.Atoi(q.Get("nodes"))
		if err1 != nil || err2 != nil || node < 0 || node >= nodes {
			http.Error(w, "need node=i&nodes=N with 0 <= i < N", http.StatusBadRequest)
			return
		}
		slots := router.DefaultSlots
		if obs.Ring != nil {
			slots = obs.Ring.Slots()
		}
		if raw := q.Get("slots"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 1 {
				http.Error(w, "bad slots", http.StatusBadRequest)
				return
			}
			slots = v
		}
		ring := router.NewRing(slots, nodes)
		keep = func(id twitter.UserID) bool { return ring.Keep(node, int64(id)) }
	case obs.Ring != nil:
		ring, node := obs.Ring, obs.RingNode
		keep = func(id twitter.UserID) bool { return ring.Keep(node, int64(id)) }
	default:
		keep = nil // full snapshot
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := store.WriteSnapshotRange(w, keep); err != nil {
		// Headers are gone; all we can do is cut the stream short so the
		// client's snapshot reader reports truncation.
		fmt.Fprintf(os.Stderr, "twitterd: snapshot export: %v\n", err)
	}
}

func serve(addr string, store *twitter.Store, clock simclock.Clock, obs obsConfig, observers ...func(*metrics.Registry)) error {
	fmt.Fprintf(os.Stderr, "serving on http://%s/1.1/ (try followers/ids.json, users/lookup.json, users/show.json, statuses/user_timeline.json)\n",
		addr)
	if obs.Metrics {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics", addr)
		if obs.Dashboard {
			fmt.Fprintf(os.Stderr, ", dashboard on http://%s/dashboard/", addr)
		}
		fmt.Fprintln(os.Stderr)
	}
	httpServer := &http.Server{
		Addr:         addr,
		Handler:      newRootHandler(store, clock, obs, observers...),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	return httpServer.ListenAndServe()
}
