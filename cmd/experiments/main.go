// Command experiments regenerates every table and figure of the paper:
//
//	experiments -all                 # everything (default)
//	experiments -table1              # Table I   (API limits)
//	experiments -table2              # Table II  (response times)
//	experiments -table3              # Table III (analysis results)
//	experiments -order               # §IV-B follower-order verification
//	experiments -crawl               # §IV-B crawl-cost estimates (Obama ≈27 days)
//	experiments -anecdote            # §II-A bought-followers anecdote
//	experiments -deepdive            # §II-A Deep Dive comparison
//	experiments -fceval              # §III  rule sets vs feature sets vs classifiers
//	experiments -monitor             # 27-day continuous watch over a churning target
//
// Use -scale to trade memory for fidelity on the high class (default
// 120000 materialised followers per account) and -csvdir to also export
// Tables II/III as CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fakeproject/internal/core"
	"fakeproject/internal/experiments"
	"fakeproject/internal/fc"
	"fakeproject/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "print Table I (API limits)")
		table2   = flag.Bool("table2", false, "run Table II (response times)")
		table3   = flag.Bool("table3", false, "run Table III (analysis results)")
		order    = flag.Bool("order", false, "run the follower-order experiment")
		crawl    = flag.Bool("crawl", false, "print crawl-cost estimates")
		anecdote = flag.Bool("anecdote", false, "run the bought-followers anecdote")
		deepdive = flag.Bool("deepdive", false, "run the Deep Dive comparison")
		fceval   = flag.Bool("fceval", false, "run the FC methodology evaluation")
		ablation = flag.Bool("ablation", false, "run the sampling-window ablation")
		coverage = flag.Bool("coverage", false, "run the FC confidence-interval coverage check")
		monitor  = flag.Bool("monitor", false, "replay a 27-day continuous watch over an Obama-scale churning target")
		seed        = flag.Uint64("seed", 20140301, "simulation seed")
		scale       = flag.Int("scale", 120000, "max materialised followers per account")
		csvdir      = flag.String("csvdir", "", "directory for CSV exports (optional)")
		concurrency = flag.Int("concurrency", 1, "run Table III audits through the auditd scheduler with this many workers (1 = serial)")
	)
	flag.Parse()

	selected := *table1 || *table2 || *table3 || *order || *crawl || *anecdote || *deepdive || *fceval || *ablation || *coverage || *monitor
	if *all || !selected {
		*table1, *table2, *table3 = true, true, true
		*order, *crawl, *anecdote, *deepdive, *fceval, *ablation, *coverage = true, true, true, true, true, true, true
		*monitor = true
	}

	needSim := *table2 || *table3 || *order || *anecdote || *deepdive || *crawl || *ablation || *coverage || *monitor
	var sim *experiments.Simulation
	if needSim {
		fmt.Fprintf(os.Stderr, "building simulation (seed %d, scale cap %d)...\n", *seed, *scale)
		var err error
		sim, err = experiments.NewSimulation(experiments.SimConfig{
			Seed:         *seed,
			ScaleCap:     *scale,
			WithDeepDive: *deepdive,
		})
		if err != nil {
			return fmt.Errorf("building simulation: %w", err)
		}
	}

	out := os.Stdout
	if *table1 {
		section(out, "Table I: Twitter APIs: type and limitations to API calls")
		if err := report.TableI(out); err != nil {
			return err
		}
	}
	if *table2 {
		section(out, "Table II: Response time to first analysis request")
		rows, err := sim.RunTableII()
		if err != nil {
			return err
		}
		if err := report.TableII(out, rows); err != nil {
			return err
		}
		if err := exportCSV(*csvdir, "table2.csv", func(f *os.File) error {
			return report.TableIICSV(f, rows)
		}); err != nil {
			return err
		}
	}
	if *table3 {
		section(out, "Table III: Fake follower analysis results")
		var (
			rows []experiments.TableIIIRow
			err  error
		)
		if *concurrency > 1 {
			fmt.Fprintf(os.Stderr, "running Table III through auditd (%d workers)...\n", *concurrency)
			rows, err = sim.RunTableIIIConcurrent(*concurrency)
		} else {
			rows, err = sim.RunTableIII()
		}
		if err != nil {
			return err
		}
		if err := report.TableIII(out, rows); err != nil {
			return err
		}
		if err := exportCSV(*csvdir, "table3.csv", func(f *os.File) error {
			return report.TableIIICSV(f, rows)
		}); err != nil {
			return err
		}
	}
	if *order {
		section(out, "Section IV-B: follower list ordering")
		res, err := sim.RunFollowerOrder(13, 7, 60)
		if err != nil {
			return err
		}
		if err := report.FollowerOrder(out, res); err != nil {
			return err
		}
	}
	if *crawl {
		section(out, "Section IV-B: full-crawl cost (one token)")
		var ests []experiments.CrawlEstimate
		for _, acct := range core.PaperTestbed() {
			if acct.Class == core.ClassHigh {
				ests = append(ests, experiments.EstimateFullCrawl(acct.Followers, 1))
			}
		}
		if err := report.CrawlEstimates(out, ests); err != nil {
			return err
		}
		val, err := sim.ValidateCrawlModel(30000)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "model validation at 30K followers: analytic %v vs simulated %v (err %.2f%%)\n",
			val.Analytic, val.Simulated, val.RelativeErr*100)
	}
	if *anecdote {
		section(out, "Section II-A: the bought-followers anecdote")
		res, err := sim.RunAnecdote(100000, 10000)
		if err != nil {
			return err
		}
		if err := report.Anecdote(out, res); err != nil {
			return err
		}
	}
	if *deepdive {
		section(out, "Section II-A: Fakers vs Deep Dive")
		results, err := sim.RunDeepDive()
		if err != nil {
			return err
		}
		if err := report.DeepDive(out, results); err != nil {
			return err
		}
	}
	if *ablation {
		section(out, "Ablation: the FC classifier behind the tools' sampling windows")
		const subject = "PC_Chiambretti"
		rows, err := sim.RunSamplingAblation(subject)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "subject: @%s\n", subject)
		if err := report.SamplingAblation(out, rows); err != nil {
			return err
		}
		points, err := sim.RunWindowSweep(subject, []int{1000, 2000, 5000, 10000, 35000, 0}, 2000)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\nwindow sweep (perfect detector, sampling error only):")
		if err := report.WindowSweep(out, points); err != nil {
			return err
		}
	}
	if *coverage {
		section(out, "Soundness: empirical coverage of the FC 95% intervals")
		res, err := sim.RunCoverage(30000, 40)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d independent audits of one population (truth: %.1f%% inactive)\n"+
			"  covered: %d/%d (%.0f%%, nominal 95%%)\n  max |error|: %.2f points (design margin ±1)\n",
			res.Trials, res.TruthInactive, res.Covered, res.Trials, 100*res.Rate(), res.MaxAbsError)
	}
	if *monitor {
		section(out, "Monitoring: a 27-day continuous watch over a churning target")
		fmt.Fprintln(os.Stderr, "replaying 27 simulated days of churn under continuous monitoring...")
		res, err := sim.RunMonitorWatch(experiments.MonitorConfig{
			Followers: min(*scale, 120000),
			ProbeDay:  12,
		})
		if err != nil {
			return err
		}
		if err := report.MonitorWatch(out, res); err != nil {
			return err
		}
	}
	if *fceval {
		section(out, "Section III: detection methodologies on the gold standard")
		gold, err := fc.BuildGoldStandard(800, *seed+100)
		if err != nil {
			return err
		}
		ruleResults, err := fc.EvaluateRuleSets(gold)
		if err != nil {
			return err
		}
		featResults, err := fc.EvaluateFeatureSets(gold, *seed+101)
		if err != nil {
			return err
		}
		clsResults, err := fc.EvaluateClassifiers(gold, *seed+102)
		if err != nil {
			return err
		}
		all := append(ruleResults, featResults...)
		all = append(all, clsResults...)
		if err := report.MethodResults(out, all); err != nil {
			return err
		}
	}
	return nil
}

func section(w *os.File, title string) {
	fmt.Fprintf(w, "\n===== %s =====\n", title)
}

func exportCSV(dir, name string, write func(*os.File) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating csv dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("creating %s: %w", name, err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		return fmt.Errorf("writing %s: %w", name, err)
	}
	return nil
}
