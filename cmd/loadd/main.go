// Command loadd is the end-to-end load generator for the HTTP plane: it
// assembles the full platform in-process (population, the simulated Twitter
// API and the audit service, each on its own loopback TCP port) or aims at
// externally running daemons, then drives one or more workload mixes with
// an open-loop (fixed-arrival-rate) schedule and reports per-endpoint
// latency percentiles, throughput and error counts.
//
//	loadd -mix all -duration 5s                  # the four standard mixes
//	loadd -mix churn-storm -rate 800 -duration 10s
//	loadd -mix crawl-heavy -api http://127.0.0.1:8080 -accounts davc
//
// Results are written as BENCH_e2e.json (-out, or $BENCH_JSON/BENCH_e2e.json
// when the variable is set), the artifact CI archives and diffs across
// commits. Mixes: crawl-heavy, audit-heavy, churn-storm, celebrity-hotspot;
// -duration is per mix. See docs/OPERATIONS.md for the full runbook.
//
// While a mix runs, a status line reports per-endpoint throughput and
// latency every -progress interval (suppress with -quiet), and -metrics
// starts an observability sidecar server on -obs-addr serving /metrics,
// /metrics.json and the live dashboard at /dashboard/ — the same surfaces
// the daemons expose, fed by both the in-process platform and the
// generator's own client-side histograms.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fakeproject/internal/benchjson"
	"fakeproject/internal/loadgen"
	"fakeproject/internal/metrics"
	"fakeproject/internal/opsui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mix        = flag.String("mix", "all", "workload mix to run: all, or a comma list of "+strings.Join(loadgen.MixNames(), ", "))
		duration   = flag.Duration("duration", 5*time.Second, "run length per mix")
		rate       = flag.Float64("rate", 300, "steady arrival rate, requests/second")
		burstRate  = flag.Float64("burst-rate", 0, "arrival rate during bursts (0 = steady only)")
		burstEvery = flag.Duration("burst-every", time.Second, "burst period, start to start")
		burstLen   = flag.Duration("burst-len", 200*time.Millisecond, "burst length")
		inflight   = flag.Int("inflight", 256, "max outstanding requests; arrivals beyond it are shed and reported")
		out        = flag.String("out", "", "write BENCH_e2e.json here (default ./BENCH_e2e.json, or $BENCH_JSON/BENCH_e2e.json)")
		progress   = flag.Duration("progress", 2*time.Second, "live status-line interval (0 disables)")
		quiet      = flag.Bool("quiet", false, "suppress the live status line")

		// Observability sidecar (same flag vocabulary as the daemons).
		metricsOn = flag.Bool("metrics", true, "serve /metrics and /metrics.json on -obs-addr during the run")
		dashboard = flag.Bool("dashboard", true, "serve the embedded ops dashboard at /dashboard/ on -obs-addr (needs -metrics)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof on -obs-addr")
		obsAddr   = flag.String("obs-addr", "127.0.0.1:8089", "observability server listen address")

		// In-process platform shape.
		seed      = flag.Uint64("seed", 20140301, "population and sampling seed")
		targets   = flag.Int("targets", 8, "audit targets to build (sizes follow a 1/k series)")
		followers = flag.Int("followers", 20000, "materialised followers of the largest target")
		workers   = flag.Int("workers", 4, "auditd worker pool size")
		tools     = flag.String("tools", "", "comma list of audit tools (default the three commercial engines; add fakeproject-fc to pay training once)")
		limits    = flag.Bool("table1-limits", false, "apply the paper's Table I budgets on the API server (429s become expected)")

		// External daemons instead of the in-process platform.
		api      = flag.String("api", "", "drive an external twitterd at this base URL instead of building in-process")
		audit    = flag.String("audit", "", "external auditd base URL (with -api; enables audit-heavy)")
		accounts = flag.String("accounts", "", "comma list of target screen names (required with -api)")

		// Durability plane: back the in-process store with a write-ahead log
		// so the mixes pay the real persistence cost.
		walDir       = flag.String("wal-dir", "", "back the in-process store with a WAL in this (fresh) directory")
		walFsync     = flag.String("fsync", "interval", "WAL fsync policy: always, interval, off (with -wal-dir)")
		compactEvery = flag.Uint64("compact-every", 0, "compact the WAL every N records past the newest snapshot (0 = never; with -wal-dir)")
		walCompare   = flag.Bool("wal-compare", false, "run each mix twice — plain store, then WAL-backed (mix rows suffixed +wal) — for a durability-tax comparison")
	)
	flag.Parse()

	mixes, err := resolveMixes(*mix)
	if err != nil {
		return err
	}

	var reg *metrics.Registry
	if *metricsOn {
		reg = metrics.NewRegistry()
	}
	if *metricsOn || *pprofOn {
		stopObs, err := serveObservability(reg, *obsAddr, *dashboard, *pprofOn)
		if err != nil {
			return err
		}
		defer stopObs()
	}

	if (*walDir != "" || *walCompare) && *api != "" {
		return fmt.Errorf("-wal-dir/-wal-compare back the in-process store and cannot be combined with -api")
	}

	baseCfg := loadgen.Config{
		Seed:         *seed,
		Targets:      *targets,
		Followers:    *followers,
		AuditWorkers: *workers,
		AuditTools:   splitList(*tools),
		TableILimits: *limits,
		Metrics:      reg,
	}

	// Each pass is one harness build plus a full sweep of the mixes; a
	// -wal-compare run adds a second, WAL-backed pass whose mix rows carry a
	// "+wal" suffix so both land side by side in one artifact.
	type pass struct {
		suffix string
		walDir string
	}
	passes := []pass{{walDir: *walDir}}
	if *walCompare {
		cmpDir := *walDir
		if cmpDir == "" {
			tmp, err := os.MkdirTemp("", "loadd-wal-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			cmpDir = tmp
		}
		passes = []pass{{}, {suffix: "+wal", walDir: cmpDir}}
	}

	pattern := loadgen.Pattern{
		Rate:       *rate,
		BurstRate:  *burstRate,
		BurstEvery: *burstEvery,
		BurstLen:   *burstLen,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var results []loadgen.Result
	for _, ps := range passes {
		cfg := baseCfg
		cfg.WALDir = ps.walDir
		cfg.WALFsync = *walFsync
		cfg.WALCompactEvery = *compactEvery
		if ps.walDir != "" {
			fmt.Fprintf(os.Stderr, "WAL in %s (fsync %s)\n", ps.walDir, *walFsync)
		}
		h, err := buildHarness(*api, *audit, *accounts, cfg)
		if err != nil {
			return err
		}
		if reg != nil {
			h.Observe(reg)
		}
		for _, name := range mixes {
			fmt.Fprintf(os.Stderr, "running %s%s for %v at %.0f/s...\n", name, ps.suffix, *duration, *rate)
			col := loadgen.NewCollector()
			if reg != nil {
				col.Publish(reg, metrics.L("mix", name+ps.suffix))
			}
			runCtx, stopProgress := context.WithCancel(ctx)
			if *progress > 0 && !*quiet {
				go progressLoop(runCtx, col, *progress)
			}
			res, err := h.RunMixWith(ctx, name, pattern, *duration, *inflight, col)
			stopProgress()
			if err != nil {
				h.Close()
				return fmt.Errorf("mix %s%s: %w", name, ps.suffix, err)
			}
			res.Mix += ps.suffix
			res.Format(os.Stdout)
			results = append(results, res)
			if ctx.Err() != nil {
				break
			}
		}
		h.Close()
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; emitting what completed")
			break
		}
	}

	runConfig := map[string]any{
		"mixes":             mixes,
		"duration_s":        duration.Seconds(),
		"rate":              *rate,
		"burst_rate":        *burstRate,
		"burst_every_s":     burstEvery.Seconds(),
		"burst_len_s":       burstLen.Seconds(),
		"inflight":          *inflight,
		"seed":              *seed,
		"targets":           *targets,
		"followers":         *followers,
		"audit_workers":     *workers,
		"audit_tools":       splitList(*tools),
		"table1_limits":     *limits,
		"api":               *api,
		"audit":             *audit,
		"accounts":          splitList(*accounts),
		"wal_dir":           *walDir,
		"wal_fsync":         *walFsync,
		"wal_compact_every": *compactEvery,
		"wal_compare":       *walCompare,
	}

	path := *out
	if path == "" {
		if dir := os.Getenv(benchjson.EnvVar); dir != "" {
			path = filepath.Join(dir, "BENCH_e2e.json")
		} else {
			path = "BENCH_e2e.json"
		}
	}
	if err := benchjson.WriteFile(path, loadgen.BenchFile(results, runConfig)); err != nil {
		return fmt.Errorf("writing results: %w", err)
	}
	fmt.Fprintf(os.Stderr, "results written to %s\n", path)

	var failures uint64
	for _, r := range results {
		failures += r.TotalErrors()
	}
	if failures > 0 {
		return fmt.Errorf("%d unexpected (non-429) errors across %d mixes", failures, len(results))
	}
	return nil
}

// serveObservability starts the sidecar HTTP server: /metrics and
// /metrics.json when reg is non-nil, the dashboard, and pprof. It returns a
// closer; a busy port is an error (the caller chose the address).
func serveObservability(reg *metrics.Registry, addr string, dashboard, pprofOn bool) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("observability server: %w", err)
	}
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("GET /metrics", reg)
		mux.Handle("GET /metrics.json", reg)
		if dashboard {
			mux.Handle("/dashboard/", opsui.Handler("/dashboard/"))
		}
	}
	if pprofOn {
		metrics.MountPprof(mux)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	if reg != nil {
		fmt.Fprintf(os.Stderr, "metrics on %s/metrics", base)
		if dashboard {
			fmt.Fprintf(os.Stderr, ", dashboard on %s/dashboard/", base)
		}
		fmt.Fprintln(os.Stderr)
	}
	return func() { _ = srv.Close() }, nil
}

// progressLoop prints one status line per interval while a mix runs:
// per-endpoint throughput over the last interval (not cumulative, so rate
// changes are visible immediately) plus cumulative p50/p99.
//
//fp:allow-file walltime the load harness drives and reports real wall-clock throughput
func progressLoop(ctx context.Context, col *loadgen.Collector, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	prev := map[string]uint64{}
	start := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			stats := col.Stats(time.Since(start))
			if len(stats) == 0 {
				continue
			}
			parts := make([]string, 0, len(stats))
			for _, s := range stats {
				delta := s.Count - prev[s.Endpoint]
				prev[s.Endpoint] = s.Count
				parts = append(parts, fmt.Sprintf("%s %.0f/s p50 %s p99 %s",
					s.Endpoint, float64(delta)/interval.Seconds(), fmtDur(s.P50), fmtDur(s.P99)))
			}
			fmt.Fprintf(os.Stderr, "  [%5.1fs] %s\n", time.Since(start).Seconds(), strings.Join(parts, " | "))
		}
	}
}

// fmtDur renders a latency compactly at the precision that matters for it.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func resolveMixes(spec string) ([]string, error) {
	if spec == "" || spec == "all" {
		return loadgen.MixNames(), nil
	}
	known := map[string]bool{}
	for _, m := range loadgen.MixNames() {
		known[m] = true
	}
	var out []string
	for _, name := range splitList(spec) {
		if !known[name] {
			return nil, fmt.Errorf("unknown mix %q (have: all, %s)", name, strings.Join(loadgen.MixNames(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no mixes in %q", spec)
	}
	return out, nil
}

func buildHarness(api, audit, accounts string, cfg loadgen.Config) (*loadgen.Harness, error) {
	if api == "" {
		if audit != "" || accounts != "" {
			return nil, fmt.Errorf("-audit/-accounts require -api")
		}
		fmt.Fprintf(os.Stderr, "building in-process platform (%d targets, %d followers at the head)...\n",
			cfg.Targets, cfg.Followers)
		h, err := loadgen.NewLocal(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "api on %s, auditd on %s\n", h.APIBase, h.AuditBase)
		return h, nil
	}
	names := splitList(accounts)
	if len(names) == 0 {
		return nil, fmt.Errorf("-api requires -accounts")
	}
	return loadgen.NewRemote(api, audit, names)
}

func splitList(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
