// Command routerd fronts a ring of twitterd nodes with the routing tier
// from internal/router: ownership-routed single-account endpoints,
// scatter-gathered users/lookup, per-backend health ejection with probe
// readmission, and hedged reads against each range's replica holder.
//
// A two-node ring on one machine (see docs/OPERATIONS.md for the full
// runbook):
//
//	genpop -followers 200000 -out snap.bin
//	twitterd -addr :8081 -load snap.bin -ring-index 0 -ring-nodes 2 &
//	twitterd -addr :8082 -load snap.bin -ring-index 1 -ring-nodes 2 &
//	routerd  -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	curl 'http://localhost:8080/1.1/followers/ids.json?user_id=1&cursor=-1'
//
// Clients talk to routerd exactly as they would to a single twitterd — the
// tier is invisible byte-for-byte (the cross-topology differential tests
// hold it to that).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/opsui"
	"fakeproject/internal/router"
	"fakeproject/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "routerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		backends = flag.String("backends", "", "comma-separated twitterd base URLs in ring order (required)")
		slots    = flag.Int("ring-slots", router.DefaultSlots, "ring slot count (must match the backends' -ring-slots)")

		hedgeDelay = flag.Duration("hedge-delay", 0, "fixed hedge delay; 0 = adaptive (upstream p99), negative = hedging off")
		hedgeMin   = flag.Duration("hedge-min", 2*time.Millisecond, "lower clamp of the adaptive hedge delay")
		hedgeMax   = flag.Duration("hedge-max", 100*time.Millisecond, "upper clamp of the adaptive hedge delay")

		failThreshold = flag.Int("fail-threshold", 3, "consecutive hard failures that eject a backend")
		probeInterval = flag.Duration("probe-interval", time.Second, "readmission probe period for ejected backends")

		metricsOn = flag.Bool("metrics", true, "serve /metrics (Prometheus text) and /metrics.json")
		dashboard = flag.Bool("dashboard", true, "serve the embedded ops dashboard at /dashboard/ (needs -metrics)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")
	)
	flag.Parse()

	var bases []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		return fmt.Errorf("-backends is required (comma-separated twitterd base URLs)")
	}

	var reg *metrics.Registry
	if *metricsOn {
		reg = metrics.NewRegistry()
	}
	rt, err := router.New(router.Config{
		Backends:      bases,
		Slots:         *slots,
		Clock:         simclock.Real{},
		Registry:      reg,
		HedgeDelay:    *hedgeDelay,
		HedgeMin:      *hedgeMin,
		HedgeMax:      *hedgeMax,
		FailThreshold: *failThreshold,
		ProbeInterval: *probeInterval,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	mux := http.NewServeMux()
	mux.Handle("/", rt)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	if reg != nil {
		mux.Handle("GET /metrics", reg)
		mux.Handle("GET /metrics.json", reg)
		if *dashboard {
			mux.Handle("/dashboard/", opsui.Handler("/dashboard/"))
		}
	}
	if *pprofOn {
		metrics.MountPprof(mux)
	}

	fmt.Fprintf(os.Stderr, "routing for %d backends on http://%s/1.1/\n", len(bases), *addr)
	if reg != nil {
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", *addr)
	}
	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	return httpServer.ListenAndServe()
}
