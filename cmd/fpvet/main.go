// Command fpvet runs the repository's invariant suite — the static
// analyzers in internal/analysis — over the tree and exits non-zero on any
// diagnostic. It is the machine-checked half of docs/INVARIANTS.md: the
// clock discipline, the import layering, the lock-hold rules, the hot-path
// allocation budget, the metric naming conventions, package docs and the
// no-clone rules all fail the build here instead of in review.
//
// Usage:
//
//	go run ./cmd/fpvet ./...
//	go run ./cmd/fpvet -list
//	go run ./cmd/fpvet ./internal/twitter ./internal/metrics
//
// Suppressions: //fp:allow <analyzer> <reason> silences the next line,
// //fp:allow-file <analyzer> <reason> a whole file. A directive without a
// reason is itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"

	"fakeproject/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fpvet [-list] [patterns...]\n\npatterns default to ./... ; ./dir loads one package directory\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.DefaultSuite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpvet:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(root, analysis.ModulePath, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpvet:", err)
		os.Exit(2)
	}
	res := analysis.Run(prog, suite)
	for _, d := range res.Diagnostics {
		fmt.Println(d.String())
	}
	if n := len(res.Diagnostics); n > 0 {
		fmt.Fprintf(os.Stderr, "fpvet: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}
