// Command auditd serves fake-follower audits as a service, the deployment
// shape of the analytics the paper studies: audit jobs are accepted over an
// HTTP JSON API, scheduled on a bounded worker pool, and repeated requests
// answer from a TTL'd result cache (the "cached" column of Table II).
//
// Three backends are supported:
//
//	auditd -accounts davc,grossnasty              # in-process simulation
//	auditd -load pop.gob                          # genpop store snapshot
//	auditd -twitterd http://127.0.0.1:8080        # remote twitterd API
//
// Submit and poll:
//
//	curl -s -X POST localhost:8081/v1/audits?wait=60s \
//	  -d '{"target":"davc","tools":["socialbakers"]}'
//	curl -s localhost:8081/v1/audits/j00000001
//	curl -s localhost:8081/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/core"
	"fakeproject/internal/experiments"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "auditd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8081", "listen address")
		workers  = flag.Int("workers", 4, "worker pool size")
		queueCap = flag.Int("queue", 256, "pending-queue capacity (backpressure bound)")
		cacheTTL = flag.Duration("cache-ttl", 24*time.Hour, "result cache TTL (0 = never expires, negative = disabled)")
		accounts = flag.String("accounts", "davc,grossnasty,janrezab", "paper accounts to build (simulation backend)")
		scale    = flag.Int("scale", 50000, "max materialised followers per account (simulation backend)")
		seed     = flag.Uint64("seed", 20140301, "simulation / engine seed")
		load     = flag.String("load", "", "serve a store snapshot (from genpop -out) instead of building accounts")
		remote   = flag.String("twitterd", "", "front a remote twitterd API at this base URL instead of an in-process store")
	)
	flag.Parse()

	svc, err := buildService(*accounts, *load, *remote, *scale, *seed, *workers, *queueCap, *cacheTTL)
	if err != nil {
		return err
	}

	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      auditd.NewHandler(svc),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Minute, // long-poll ?wait= support
	}

	// Graceful shutdown: stop intake, drain the pool, then exit.
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "auditd serving on http://%s/v1/ (tools: %s)\n",
			*addr, strings.Join(svc.Tools(), ", "))
		errc <- httpServer.ListenAndServe()
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "auditd: %v, draining...\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "auditd: http shutdown: %v\n", err)
	}
	return svc.Shutdown(ctx)
}

// buildService assembles the audit service over one of the three backends.
func buildService(accounts, load, remote string, scale int, seed uint64, workers, queueCap int, cacheTTL time.Duration) (*auditd.Service, error) {
	base := auditd.Config{
		Workers:   workers,
		QueueCap:  queueCap,
		CacheTTL:  cacheTTL,
		ToolOrder: auditd.StandardToolOrder,
	}

	switch {
	case remote != "":
		// Remote twitterd: engines crawl over HTTP, one bearer token per
		// (tool, worker) so budgets scale with the pool.
		clock := simclock.Real{}
		newClient := func(tool string, worker int) twitterapi.Client {
			token := fmt.Sprintf("auditd-%s-w%d", tool, worker)
			return twitterapi.NewHTTPClient(remote, token, clock)
		}
		base.Clock = clock
		base.Tools = auditd.StandardFactories(newClient, auditd.ToolSetConfig{Clock: clock, Seed: seed})
		fmt.Fprintf(os.Stderr, "backend: remote twitterd at %s\n", remote)
		return auditd.New(base)

	case load != "":
		// Snapshot: in-process store, latency-free direct clients (rate
		// limits still apply per worker token set). genpop builds its
		// populations on the virtual epoch clock, so the loaded store is
		// bound to the same epoch — otherwise every 2014-era account would
		// read as dormant against the real wall clock.
		clock := simclock.NewVirtualAtEpoch()
		f, err := os.Open(load)
		if err != nil {
			return nil, fmt.Errorf("opening snapshot: %w", err)
		}
		defer f.Close()
		store, err := twitter.ReadSnapshot(f, clock)
		if err != nil {
			return nil, fmt.Errorf("loading snapshot: %w", err)
		}
		apiSvc := twitterapi.NewService(store)
		newClient := func(tool string, worker int) twitterapi.Client {
			return twitterapi.NewDirectClient(apiSvc, clock, twitterapi.ClientConfig{
				Tokens: 50,
				Seed:   seed + uint64(worker),
			})
		}
		base.Clock = clock
		base.Tools = auditd.StandardFactories(newClient, auditd.ToolSetConfig{Clock: clock, Seed: seed})
		fmt.Fprintf(os.Stderr, "backend: snapshot %s (%d accounts)\n", load, store.UserCount())
		return auditd.New(base)

	default:
		// In-process simulation on the virtual clock: Table II latency
		// modelling stays virtual, so the service itself answers fast.
		want := splitAccounts(accounts)
		var only []string
		for _, acct := range core.PaperTestbed() {
			if want[acct.ScreenName] {
				only = append(only, acct.ScreenName)
			}
		}
		if len(only) == 0 {
			return nil, fmt.Errorf("no known accounts in %q (see the paper testbed)", accounts)
		}
		fmt.Fprintf(os.Stderr, "backend: building simulation for %s...\n", strings.Join(only, ", "))
		sim, err := experiments.NewSimulation(experiments.SimConfig{
			Seed:     seed,
			ScaleCap: scale,
			Only:     only,
		})
		if err != nil {
			return nil, fmt.Errorf("building simulation: %w", err)
		}
		return sim.NewAuditService(base)
	}
}

func splitAccounts(list string) map[string]bool {
	want := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	return want
}
