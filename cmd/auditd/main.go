// Command auditd serves fake-follower audits as a service, the deployment
// shape of the analytics the paper studies: audit jobs are accepted over an
// HTTP JSON API, scheduled on a bounded worker pool, and repeated requests
// answer from a TTL'd result cache (the "cached" column of Table II).
//
// Three backends are supported:
//
//	auditd -accounts davc,grossnasty              # in-process simulation
//	auditd -load pop.gob                          # genpop store snapshot
//	auditd -twitterd http://127.0.0.1:8080        # remote twitterd API
//
// Submit and poll:
//
//	curl -s -X POST localhost:8081/v1/audits?wait=60s \
//	  -d '{"target":"davc","tools":["socialbakers"]}'
//	curl -s localhost:8081/v1/audits/j00000001
//	curl -s localhost:8081/v1/stats
//
// With -monitor the daemon additionally runs the monitord subsystem:
// watched targets are re-audited continuously as low-priority background
// jobs (interactive requests preempt them) and their verdict series and
// alerts are served over /v1/watch, /v1/series/{target} and /v1/alerts:
//
//	auditd -accounts davc -monitor -watch davc:24h -churn
//	curl -s -X POST localhost:8081/v1/watch -d '{"target":"davc","cadence":"12h"}'
//	curl -s localhost:8081/v1/series/davc
//	curl -s localhost:8081/v1/alerts
//
// Observability (see docs/OPERATIONS.md): -metrics serves the registry at
// /metrics (Prometheus text) and /metrics.json — queue depth, cache
// outcomes, per-endpoint latency, and the monitord counters when -monitor
// is on — -dashboard mounts the embedded ops dashboard at /dashboard/
// (with a live alert feed when -monitor is on), and -pprof mounts
// net/http/pprof at /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/core"
	"fakeproject/internal/experiments"
	"fakeproject/internal/metrics"
	"fakeproject/internal/monitord"
	"fakeproject/internal/opsui"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "auditd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8081", "listen address")
		workers  = flag.Int("workers", 4, "worker pool size")
		queueCap = flag.Int("queue", 256, "pending-queue capacity (backpressure bound)")
		cacheTTL = flag.Duration("cache-ttl", 24*time.Hour, "result cache TTL (0 = never expires, negative = disabled)")
		accounts = flag.String("accounts", "davc,grossnasty,janrezab", "paper accounts to build (simulation backend)")
		scale    = flag.Int("scale", 50000, "max materialised followers per account (simulation backend)")
		seed     = flag.Uint64("seed", 20140301, "simulation / engine seed")
		load     = flag.String("load", "", "serve a store snapshot (from genpop -out) instead of building accounts")
		remote   = flag.String("twitterd", "", "front a remote twitterd API at this base URL instead of an in-process store")
		monitor  = flag.Bool("monitor", false, "run the continuous-monitoring subsystem (/v1/watch, /v1/series, /v1/alerts)")
		watch    = flag.String("watch", "", "comma-separated initial watches, name[:cadence] (requires -monitor)")
		pace     = flag.Duration("monitor-pace", 2*time.Second, "wall-clock interval between monitor scheduler rounds on virtual-clock backends")
		churn    = flag.Bool("churn", false, "evolve watched targets between re-audit rounds (organic growth + churn; in-process backends only)")

		metricsOn = flag.Bool("metrics", true, "serve /metrics (Prometheus text) and /metrics.json")
		dashboard = flag.Bool("dashboard", true, "serve the embedded ops dashboard at /dashboard/ (needs -metrics)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")
	)
	flag.Parse()
	if !*monitor && (*watch != "" || *churn) {
		// Flag-consistency errors must fire before the (potentially
		// minutes-long) backend build.
		return fmt.Errorf("-watch/-churn require -monitor")
	}

	svc, plat, err := buildService(*accounts, *load, *remote, *scale, *seed, *workers, *queueCap, *cacheTTL)
	if err != nil {
		return err
	}

	var reg *metrics.Registry
	if *metricsOn {
		reg = metrics.NewRegistry()
	}

	auditHandler := http.Handler(auditd.NewHandler(svc))
	if reg != nil {
		auditHandler = auditd.NewHandlerObserved(svc, reg)
		if plat.store != nil {
			twitterapi.ObserveStore(reg, plat.store)
		}
	}

	// The root mux is unconditional now: even a bare audit service carries
	// the observability surfaces next to /v1/.
	root := http.NewServeMux()
	root.Handle("/", auditHandler)

	var mon *monitord.Monitor
	monitorCtx, stopMonitor := context.WithCancel(context.Background())
	defer stopMonitor()
	if *monitor {
		mon, err = startMonitor(monitorCtx, svc, plat, *watch, *pace, *churn)
		if err != nil {
			return err
		}
		defer mon.Close()
		mh := http.Handler(monitord.NewHandler(mon))
		if reg != nil {
			mh = monitord.NewHandlerObserved(mon, reg)
		}
		root.Handle("/v1/watch", mh)
		root.Handle("/v1/watch/", mh)
		root.Handle("/v1/series/", mh)
		root.Handle("/v1/alerts", mh)
	}
	if reg != nil {
		root.Handle("GET /metrics", reg)
		root.Handle("GET /metrics.json", reg)
		if *dashboard {
			root.Handle("/dashboard/", opsui.Handler("/dashboard/"))
		}
	}
	if *pprofOn {
		metrics.MountPprof(root)
	}
	handler := http.Handler(root)

	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Minute, // long-poll ?wait= support
	}

	// Graceful shutdown: stop intake, drain the pool, then exit.
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "auditd serving on http://%s/v1/ (tools: %s)\n",
			*addr, strings.Join(svc.Tools(), ", "))
		if reg != nil {
			fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics", *addr)
			if *dashboard {
				fmt.Fprintf(os.Stderr, ", dashboard on http://%s/dashboard/", *addr)
			}
			fmt.Fprintln(os.Stderr)
		}
		errc <- httpServer.ListenAndServe()
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "auditd: %v, draining...\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "auditd: http shutdown: %v\n", err)
	}
	return svc.Shutdown(ctx)
}

// platform carries the in-process backend state behind a service: the
// monitor's dynamics driver mutates the store directly, which only exists
// for the simulation and snapshot backends (store and gen are nil when the
// platform lives behind a remote twitterd).
type platform struct {
	store *twitter.Store
	gen   *population.Generator
	clock simclock.Clock
}

// buildService assembles the audit service over one of the three backends.
func buildService(accounts, load, remote string, scale int, seed uint64, workers, queueCap int, cacheTTL time.Duration) (*auditd.Service, *platform, error) {
	base := auditd.Config{
		Workers:   workers,
		QueueCap:  queueCap,
		CacheTTL:  cacheTTL,
		ToolOrder: auditd.StandardToolOrder,
	}

	switch {
	case remote != "":
		// Remote twitterd: engines crawl over HTTP, one bearer token per
		// (tool, worker) so budgets scale with the pool.
		clock := simclock.Real{}
		newClient := func(tool string, worker int) twitterapi.Client {
			token := fmt.Sprintf("auditd-%s-w%d", tool, worker)
			return twitterapi.NewHTTPClient(remote, token, clock)
		}
		base.Clock = clock
		base.Tools = auditd.StandardFactories(newClient, auditd.ToolSetConfig{Clock: clock, Seed: seed})
		fmt.Fprintf(os.Stderr, "backend: remote twitterd at %s\n", remote)
		svc, err := auditd.New(base)
		return svc, &platform{clock: clock}, err

	case load != "":
		// Snapshot: in-process store, latency-free direct clients (rate
		// limits still apply per worker token set). genpop builds its
		// populations on the virtual epoch clock, so the loaded store is
		// bound to the same epoch — otherwise every 2014-era account would
		// read as dormant against the real wall clock.
		clock := simclock.NewVirtualAtEpoch()
		f, err := os.Open(load)
		if err != nil {
			return nil, nil, fmt.Errorf("opening snapshot: %w", err)
		}
		defer f.Close()
		store, err := twitter.ReadSnapshot(f, clock)
		if err != nil {
			return nil, nil, fmt.Errorf("loading snapshot: %w", err)
		}
		apiSvc := twitterapi.NewService(store)
		newClient := func(tool string, worker int) twitterapi.Client {
			return twitterapi.NewDirectClient(apiSvc, clock, twitterapi.ClientConfig{
				Tokens: 50,
				Seed:   seed + uint64(worker),
			})
		}
		base.Clock = clock
		base.Tools = auditd.StandardFactories(newClient, auditd.ToolSetConfig{Clock: clock, Seed: seed})
		fmt.Fprintf(os.Stderr, "backend: snapshot %s (%d accounts)\n", load, store.UserCount())
		svc, err := auditd.New(base)
		return svc, &platform{
			store: store,
			gen:   population.NewGenerator(store, seed+77),
			clock: clock,
		}, err

	default:
		// In-process simulation on the virtual clock: Table II latency
		// modelling stays virtual, so the service itself answers fast.
		want := splitAccounts(accounts)
		var only []string
		for _, acct := range core.PaperTestbed() {
			if want[acct.ScreenName] {
				only = append(only, acct.ScreenName)
			}
		}
		if len(only) == 0 {
			return nil, nil, fmt.Errorf("no known accounts in %q (see the paper testbed)", accounts)
		}
		fmt.Fprintf(os.Stderr, "backend: building simulation for %s...\n", strings.Join(only, ", "))
		sim, err := experiments.NewSimulation(experiments.SimConfig{
			Seed:     seed,
			ScaleCap: scale,
			Only:     only,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("building simulation: %w", err)
		}
		svc, err := sim.NewAuditService(base)
		return svc, &platform{store: sim.Store, gen: sim.Gen, clock: sim.Clock}, err
	}
}

// startMonitor assembles the monitord subsystem: initial watches from the
// -watch list, an optional churn hook evolving each watched target one
// simulated day per re-audit round, and the paced scheduler goroutine.
func startMonitor(ctx context.Context, svc *auditd.Service, plat *platform, watchList string, pace time.Duration, churn bool) (*monitord.Monitor, error) {
	cfg := monitord.Config{Service: svc, Clock: plat.clock}
	if churn {
		if plat.store == nil {
			return nil, fmt.Errorf("-churn needs an in-process backend (simulation or snapshot)")
		}
		drivers := map[string]*population.Driver{}
		// Churn runs in BeforeRound so the round's audits observe one
		// consistent post-churn list (OnRound would race the in-flight
		// re-audits against the day's mutations).
		cfg.BeforeRound = func(target string) {
			driver, ok := drivers[target]
			if !ok {
				id, err := plat.store.LookupName(target)
				if err != nil {
					return
				}
				count, _ := plat.store.FollowerCount(id)
				driver = population.NewDriver(plat.gen, id, population.DefaultChurnScript(count))
				drivers[target] = driver
			}
			if _, err := driver.AdvanceDay(); err != nil {
				fmt.Fprintf(os.Stderr, "auditd: churn on %s: %v\n", target, err)
			}
		}
	}
	mon, err := monitord.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, spec := range strings.Split(watchList, ",") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		name, cadence := spec, time.Duration(0)
		if base, rest, ok := strings.Cut(spec, ":"); ok {
			d, err := time.ParseDuration(rest)
			if err != nil {
				return nil, fmt.Errorf("bad -watch cadence in %q: %w", spec, err)
			}
			name, cadence = base, d
		}
		if err := mon.Watch(monitord.WatchSpec{Target: name, Cadence: cadence}); err != nil {
			return nil, fmt.Errorf("registering watch %q: %w", spec, err)
		}
	}
	go func() {
		if err := mon.Run(ctx, pace); err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "auditd: monitor loop: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "monitor: running (pace %v, churn %v)\n", pace, churn)
	return mon, nil
}

func splitAccounts(list string) map[string]bool {
	want := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	return want
}
