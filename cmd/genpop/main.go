// Command genpop generates a synthetic follower population and prints its
// statistics: overall class tallies, the positional class distribution by
// decile (the quantity the window-limited tools implicitly sample), and a
// few example profiles per archetype.
//
//	genpop -followers 50000 -inactive 40 -fake 15
//	genpop -followers 80000 -paper PC_Chiambretti   # use a paper account's layout
//
// With -days the population is additionally evolved through the dynamics
// driver before reporting — organic growth and churn every day, plus
// scheduled purchase bursts and purge sweeps:
//
//	genpop -followers 50000 -days 27 -daily-growth 200 \
//	  -burst 9:5000 -purge 18:0.5 -out pop.gob
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genpop:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		followers = flag.Int("followers", 20000, "population size")
		inactive  = flag.Float64("inactive", 30, "inactive percentage")
		fake      = flag.Float64("fake", 10, "fake percentage")
		paper     = flag.String("paper", "", "derive the layout from this paper account instead")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "write a store snapshot to this file (loadable by twitterd -load; streamed, so memory stays bounded at any population size)")
		memstats  = flag.Bool("memstats", false, "report heap usage after the build and after the snapshot write")
		days      = flag.Int("days", 0, "evolve the population this many simulated days before reporting")
		growth    = flag.Int("daily-growth", 200, "organic new followers per simulated day")
		churnRate = flag.Float64("churn-rate", 0.001, "fraction of followers organically unfollowing per day")
		bursts    = flag.String("burst", "", "comma-separated day:size fake-purchase bursts (e.g. 9:5000)")
		purges    = flag.String("purge", "", "comma-separated day:fraction purge sweeps (e.g. 18:0.5)")

		walDir       = flag.String("wal-dir", "", "build the population into a write-ahead log in this fresh directory (bootable by twitterd -wal-dir)")
		walFsync     = flag.String("fsync", "off", "WAL fsync policy during the build: always, interval, off (with -wal-dir)")
		compactEvery = flag.Uint64("compact-every", 0, "compact the WAL every N records during the build (0 = never; with -wal-dir)")
		walCompact   = flag.Bool("wal-compact", true, "compact the WAL once after the build so boots recover from one snapshot (with -wal-dir)")
	)
	flag.Parse()

	// Validate the churn plan before the (potentially minutes-long)
	// population build.
	events, err := parseChurnEvents(*bursts, *purges)
	if err != nil {
		return err
	}
	if *days <= 0 && len(events) > 0 {
		return fmt.Errorf("-burst/-purge require -days")
	}
	for _, ev := range events {
		if ev.Day > *days {
			return fmt.Errorf("%s event on day %d is beyond -days %d and would never fire",
				ev.Kind, ev.Day, *days)
		}
	}

	clock := simclock.NewVirtualAtEpoch()
	var store *twitter.Store
	var wlog *wal.Log
	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			return err
		}
		var stats wal.RecoveryStats
		store, wlog, stats, err = wal.Open(wal.Config{
			Dir:          *walDir,
			Policy:       policy,
			CompactEvery: *compactEvery,
			Clock:        clock,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		defer wlog.Close()
		if stats.Users > 0 {
			return fmt.Errorf("WAL dir %s already holds %d accounts; genpop builds from scratch and needs a fresh directory", *walDir, stats.Users)
		}
	} else {
		store = twitter.NewStore(clock, *seed)
	}
	gen := population.NewGenerator(store, *seed)

	var layout population.Layout
	n := *followers
	if *paper != "" {
		var acct *core.PaperAccount
		for _, a := range core.PaperTestbed() {
			if a.ScreenName == *paper {
				a := a
				acct = &a
				break
			}
		}
		if acct == nil {
			return fmt.Errorf("unknown paper account %q", *paper)
		}
		if n > acct.Followers {
			n = acct.Followers
		}
		layout = population.DeriveLayout(n, acct.FC.Mix(), acct.SB.Mix(), acct.SP.Mix())
		fmt.Printf("layout derived from @%s (Table III)\n", acct.ScreenName)
	} else {
		genuine := 100 - *inactive - *fake
		if genuine < 0 {
			return fmt.Errorf("percentages exceed 100")
		}
		layout = population.Layout{{Width: 0, Mix: population.FromPercentages(*inactive, *fake, genuine)}}
	}

	target, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "genpop_target",
		Followers:  n,
		Layout:     layout,
	})
	if err != nil {
		return err
	}
	if *days > 0 {
		driver := population.NewDriver(gen, target, population.ChurnScript{
			DailyGrowth:    *growth,
			DailyChurnRate: *churnRate,
			Events:         events,
		})
		for day := 1; day <= *days; day++ {
			clock.Advance(24 * time.Hour)
			if _, err := driver.AdvanceDay(); err != nil {
				return err
			}
		}
		added, removed := 0, 0
		for _, ev := range driver.Log() {
			added += ev.Added
			removed += ev.Removed
		}
		fmt.Printf("evolved %d days: +%d followers, -%d churned (%d events)\n",
			*days, added, removed, len(driver.Log()))
	}

	if *memstats {
		reportMemStats("after build")
	}

	chrono, err := store.FollowersChronological(target)
	if err != nil {
		return err
	}

	total := store.ClassCounts(chrono)
	fmt.Printf("\npopulation: %d followers\n", len(chrono))
	fmt.Printf("ground truth: inactive %.1f%%  fake %.1f%%  genuine %.1f%%\n",
		pct(total[twitter.ClassInactive], len(chrono)),
		pct(total[twitter.ClassFake], len(chrono)),
		pct(total[twitter.ClassGenuine], len(chrono)))

	fmt.Println("\nclass distribution by position decile (1 = oldest, 10 = newest):")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "decile\tinactive\tfake\tgenuine")
	for d := 0; d < 10; d++ {
		lo := d * len(chrono) / 10
		hi := (d + 1) * len(chrono) / 10
		counts := store.ClassCounts(chrono[lo:hi])
		size := hi - lo
		fmt.Fprintf(tw, "%d\t%.1f%%\t%.1f%%\t%.1f%%\n", d+1,
			pct(counts[twitter.ClassInactive], size),
			pct(counts[twitter.ClassFake], size),
			pct(counts[twitter.ClassGenuine], size))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating snapshot file: %w", err)
		}
		defer f.Close()
		if err := store.WriteSnapshot(f); err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			return err
		}
		fmt.Printf("\nsnapshot written to %s (%d bytes)\n", *out, info.Size())
		if *memstats {
			reportMemStats("after snapshot")
		}
	}
	if wlog != nil && *walCompact {
		if err := wlog.Compact(); err != nil {
			return fmt.Errorf("compacting WAL: %w", err)
		}
		fmt.Printf("\nWAL in %s compacted; boot it with twitterd -wal-dir %s\n", *walDir, *walDir)
	}

	fmt.Println("\nexample profiles:")
	shown := map[twitter.Class]bool{}
	for _, id := range chrono {
		class, err := store.TrueClass(id)
		if err != nil {
			return err
		}
		if shown[class] {
			continue
		}
		shown[class] = true
		p, err := store.Profile(id)
		if err != nil {
			return err
		}
		last := "never"
		if !p.LastTweetAt.IsZero() {
			last = p.LastTweetAt.Format("2006-01-02")
		}
		fmt.Printf("  [%s] @%s: %d followers, %d friends, %d tweets (last %s), egg=%v, spam=%.0f%%\n",
			class, p.ScreenName, p.FollowersCount, p.FriendsCount,
			p.StatusesCount, last, p.DefaultProfileImage, 100*p.Behavior.SpamRatio)
		if len(shown) == 3 {
			break
		}
	}
	return nil
}

// reportMemStats prints the live heap after a GC settles it, so successive
// reports are comparable. The snapshot writer streams record chunks and
// per-target edge segments instead of assembling one value in memory, so
// "after snapshot" should sit close to "after build" at any population size.
func reportMemStats(stage string) {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	fmt.Printf("\nmemstats %s: heap=%d MiB sys=%d MiB\n", stage, m.HeapAlloc>>20, m.Sys>>20)
}

// parseChurnEvents decodes the -burst day:size and -purge day:fraction
// lists into a dynamics script's event set.
func parseChurnEvents(bursts, purges string) ([]population.ChurnEvent, error) {
	var events []population.ChurnEvent
	for _, spec := range splitSpecs(bursts) {
		day, val, err := splitDaySpec(spec)
		if err != nil {
			return nil, fmt.Errorf("bad -burst %q: %w", spec, err)
		}
		events = append(events, population.ChurnEvent{
			Day: day, Kind: population.ChurnPurchase, Size: int(val),
		})
	}
	for _, spec := range splitSpecs(purges) {
		day, val, err := splitDaySpec(spec)
		if err != nil {
			return nil, fmt.Errorf("bad -purge %q: %w", spec, err)
		}
		events = append(events, population.ChurnEvent{
			Day: day, Kind: population.ChurnPurge, Fraction: val,
		})
	}
	return events, nil
}

func splitSpecs(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func splitDaySpec(spec string) (int, float64, error) {
	day, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want day:value")
	}
	d, err := strconv.Atoi(day)
	if err != nil || d < 1 {
		return 0, 0, fmt.Errorf("bad day %q", day)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil || v <= 0 {
		return 0, 0, fmt.Errorf("bad value %q", rest)
	}
	return d, v, nil
}

func pct(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
