// Command genpop generates a synthetic follower population and prints its
// statistics: overall class tallies, the positional class distribution by
// decile (the quantity the window-limited tools implicitly sample), and a
// few example profiles per archetype.
//
//	genpop -followers 50000 -inactive 40 -fake 15
//	genpop -followers 80000 -paper PC_Chiambretti   # use a paper account's layout
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"fakeproject/internal/core"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genpop:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		followers = flag.Int("followers", 20000, "population size")
		inactive  = flag.Float64("inactive", 30, "inactive percentage")
		fake      = flag.Float64("fake", 10, "fake percentage")
		paper     = flag.String("paper", "", "derive the layout from this paper account instead")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "write a store snapshot to this file (loadable by twitterd -load)")
	)
	flag.Parse()

	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, *seed)
	gen := population.NewGenerator(store, *seed)

	var layout population.Layout
	n := *followers
	if *paper != "" {
		var acct *core.PaperAccount
		for _, a := range core.PaperTestbed() {
			if a.ScreenName == *paper {
				a := a
				acct = &a
				break
			}
		}
		if acct == nil {
			return fmt.Errorf("unknown paper account %q", *paper)
		}
		if n > acct.Followers {
			n = acct.Followers
		}
		layout = population.DeriveLayout(n, acct.FC.Mix(), acct.SB.Mix(), acct.SP.Mix())
		fmt.Printf("layout derived from @%s (Table III)\n", acct.ScreenName)
	} else {
		genuine := 100 - *inactive - *fake
		if genuine < 0 {
			return fmt.Errorf("percentages exceed 100")
		}
		layout = population.Layout{{Width: 0, Mix: population.FromPercentages(*inactive, *fake, genuine)}}
	}

	target, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "genpop_target",
		Followers:  n,
		Layout:     layout,
	})
	if err != nil {
		return err
	}
	chrono, err := store.FollowersChronological(target)
	if err != nil {
		return err
	}

	total := store.ClassCounts(chrono)
	fmt.Printf("\npopulation: %d followers\n", len(chrono))
	fmt.Printf("ground truth: inactive %.1f%%  fake %.1f%%  genuine %.1f%%\n",
		pct(total[twitter.ClassInactive], len(chrono)),
		pct(total[twitter.ClassFake], len(chrono)),
		pct(total[twitter.ClassGenuine], len(chrono)))

	fmt.Println("\nclass distribution by position decile (1 = oldest, 10 = newest):")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "decile\tinactive\tfake\tgenuine")
	for d := 0; d < 10; d++ {
		lo := d * len(chrono) / 10
		hi := (d + 1) * len(chrono) / 10
		counts := store.ClassCounts(chrono[lo:hi])
		size := hi - lo
		fmt.Fprintf(tw, "%d\t%.1f%%\t%.1f%%\t%.1f%%\n", d+1,
			pct(counts[twitter.ClassInactive], size),
			pct(counts[twitter.ClassFake], size),
			pct(counts[twitter.ClassGenuine], size))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating snapshot file: %w", err)
		}
		defer f.Close()
		if err := store.WriteSnapshot(f); err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			return err
		}
		fmt.Printf("\nsnapshot written to %s (%d bytes)\n", *out, info.Size())
	}

	fmt.Println("\nexample profiles:")
	shown := map[twitter.Class]bool{}
	for _, id := range chrono {
		class, err := store.TrueClass(id)
		if err != nil {
			return err
		}
		if shown[class] {
			continue
		}
		shown[class] = true
		p, err := store.Profile(id)
		if err != nil {
			return err
		}
		last := "never"
		if !p.LastTweetAt.IsZero() {
			last = p.LastTweetAt.Format("2006-01-02")
		}
		fmt.Printf("  [%s] @%s: %d followers, %d friends, %d tweets (last %s), egg=%v, spam=%.0f%%\n",
			class, p.ScreenName, p.FollowersCount, p.FriendsCount,
			p.StatusesCount, last, p.DefaultProfileImage, 100*p.Behavior.SpamRatio)
		if len(shown) == 3 {
			break
		}
	}
	return nil
}

func pct(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
