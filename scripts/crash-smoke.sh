#!/usr/bin/env bash
# Crash-recovery smoke for the durability plane (CI step; runnable locally).
#
# 1. loadd churns a WAL-backed platform (churn-storm mix) and is SIGKILLed
#    mid-run — a real kill during real writes.
# 2. twitterd boots on the surviving WAL directory, recovers, and its served
#    state (users/show + a full follower-page walk) is captured.
# 3. twitterd itself is hard-killed and re-booted; the capture is repeated.
# 4. The two captures must be byte-identical: recovery is deterministic and
#    the hard kill lost nothing the first boot had acknowledged to clients.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$work"
  return 0
}
trap cleanup EXIT
waldir="$work/wal"
addr=127.0.0.1:18099

go build -o "$work/loadd" ./cmd/loadd
go build -o "$work/twitterd" ./cmd/twitterd

echo "==> churning a WAL-backed platform (to be killed mid-run)"
"$work/loadd" -mix churn-storm -duration 120s -rate 100 -inflight 64 \
  -targets 2 -followers 2000 -quiet -metrics=false \
  -wal-dir "$waldir" -fsync interval -compact-every 3000 \
  -out "$work/bench.json" >"$work/loadd.log" 2>&1 &
loadd_pid=$!
# Wait until the log shows real traffic (the population build plus churn),
# then strike while writes are in flight.
for _ in $(seq 1 240); do
  kill -0 "$loadd_pid" 2>/dev/null || { cat "$work/loadd.log"; echo "loadd exited before the kill"; exit 1; }
  # The || true keeps set -e/pipefail from aborting before loadd has
  # created the WAL directory (du fails on a missing path).
  size=$(du -sb "$waldir" 2>/dev/null | cut -f1 || true)
  [ "${size:-0}" -gt 300000 ] && break
  sleep 0.5
done
sleep 2
kill -9 "$loadd_pid" 2>/dev/null || { cat "$work/loadd.log"; echo "loadd exited before the kill"; exit 1; }
wait "$loadd_pid" 2>/dev/null || true
echo "    SIGKILLed loadd; WAL dir: $(ls "$waldir" | tr '\n' ' ')"

capture() { # $1 = output file
  python3 - "http://$addr" "$work/$1" <<'EOF'
import json, sys, urllib.request

base, out = sys.argv[1], sys.argv[2]
def get(path):
    req = urllib.request.Request(base + path, headers={"Authorization": "Bearer smoke"})
    with urllib.request.urlopen(req, timeout=10) as r:
        return json.load(r)

state = {}
for name in ("load_t0", "load_t1"):
    state[name] = {
        "user": get("/1.1/users/show.json?screen_name=" + name),
        "follower_pages": [],
    }
    cursor = -1
    while cursor != 0:
        page = get(f"/1.1/followers/ids.json?screen_name={name}&cursor={cursor}")
        state[name]["follower_pages"].append(page["ids"])
        cursor = page["next_cursor"]
with open(out, "w") as f:
    json.dump(state, f, indent=1, sort_keys=True)
EOF
}

boot_and_capture() { # $1 = capture file, $2 = boot log
  "$work/twitterd" -addr "$addr" -wal-dir "$waldir" -metrics=false \
    >"$work/$2" 2>&1 &
  daemon_pid=$!
  disown "$daemon_pid"
  up=""
  for _ in $(seq 1 150); do
    if curl -sf -H 'Authorization: Bearer probe' \
        "http://$addr/1.1/users/show.json?screen_name=load_t0" >/dev/null 2>&1; then
      up=1; break
    fi
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/$2"; echo "twitterd died during boot"; exit 1; }
    sleep 0.2
  done
  [ -n "$up" ] || { cat "$work/$2"; echo "twitterd never became ready"; exit 1; }
  capture "$1"
}

echo "==> boot 1: recover the acknowledged state, capture served views"
boot_and_capture pre.json boot1.log
grep -m1 '^wal:' "$work/boot1.log" || true

echo "==> SIGKILLing the daemon"
kill -9 "$daemon_pid"
while kill -0 "$daemon_pid" 2>/dev/null; do sleep 0.05; done
daemon_pid=""

echo "==> boot 2: recover again, capture again"
boot_and_capture post.json boot2.log
grep -m1 '^wal:' "$work/boot2.log" || true
kill -9 "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "==> diffing served state across the hard kill"
diff -u "$work/pre.json" "$work/post.json"
echo "crash-smoke OK: users/show and every follower page identical across SIGKILL + recovery"
