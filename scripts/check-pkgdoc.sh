#!/usr/bin/env bash
# check-pkgdoc.sh — fail when an internal package has no package-level godoc
# comment. Every internal/ package is expected to open with a "Package xyz
# ..." comment (docs/ARCHITECTURE.md leans on them as the per-subsystem
# source of truth). Run from the repo root; CI runs it after the build step.
set -euo pipefail

cd "$(dirname "$0")/.."

missing=0
for pkg in $(go list ./internal/...); do
    # `go doc` prints a "Package <name> ..." synopsis line only when the
    # package has a doc comment adjacent to its package clause.
    if ! go doc "$pkg" 2>/dev/null | grep -q '^Package '; then
        echo "missing package comment: $pkg" >&2
        missing=1
    fi
done

if [ "$missing" -ne 0 ]; then
    echo "add a package-level godoc comment (// Package xyz ...) to the packages above" >&2
    exit 1
fi
echo "package docs: ok"
