#!/usr/bin/env bash
# Multi-node smoke for the routing tier (CI step; runnable locally).
#
# 1. genpop writes one canonical snapshot.
# 2. Two twitterd ring members boot from it (-ring-index 0/1), each holding
#    its owned + replicated account ranges, rate limits off.
# 3. routerd fronts them; loadd drives the crawl mix through the router
#    exactly as it would a single node (the partition must be invisible —
#    loadd exits non-zero on any non-429 error).
# 4. The router's /metrics is scraped and validated with the repo's own
#    exposition parser (cmd/checkmetrics): both backends healthy, upstream
#    traffic recorded, no ejections on a healthy ring.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null; done
  rm -rf "$work"
  return 0
}
trap cleanup EXIT

node0=127.0.0.1:18110
node1=127.0.0.1:18111
router=127.0.0.1:18112

go build -o "$work/genpop" ./cmd/genpop
go build -o "$work/twitterd" ./cmd/twitterd
go build -o "$work/routerd" ./cmd/routerd
go build -o "$work/loadd" ./cmd/loadd
go build -o "$work/checkmetrics" ./cmd/checkmetrics

echo "==> building the canonical population"
"$work/genpop" -followers 4000 -out "$work/pop.gob" >"$work/genpop.log"

echo "==> booting the 2-node ring"
"$work/twitterd" -load "$work/pop.gob" -ring-index 0 -ring-nodes 2 \
  -no-limits -metrics=false -addr "$node0" >"$work/node0.log" 2>&1 &
pids+=($!); disown $!
"$work/twitterd" -load "$work/pop.gob" -ring-index 1 -ring-nodes 2 \
  -no-limits -metrics=false -addr "$node1" >"$work/node1.log" 2>&1 &
pids+=($!); disown $!

wait_ready() { # $1 = addr, $2 = log
  for _ in $(seq 1 150); do
    curl -sf "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  cat "$work/$2"
  echo "$1 never became ready"
  exit 1
}
wait_ready "$node0" node0.log
wait_ready "$node1" node1.log

echo "==> booting routerd in front of the ring"
"$work/routerd" -backends "http://$node0,http://$node1" -addr "$router" \
  >"$work/routerd.log" 2>&1 &
pids+=($!); disown $!
wait_ready "$router" routerd.log

echo "==> sanity: a scattered lookup through the router"
curl -sf "http://$router/1.1/users/lookup.json?user_id=1,2,3,4,5,6,7,8" >/dev/null

echo "==> driving the crawl mix through the router"
"$work/loadd" -mix crawl-heavy -duration 4s -rate 200 -inflight 64 \
  -api "http://$router" -accounts genpop_target -quiet -metrics=false \
  -out "$work/bench.json" || { cat "$work/routerd.log"; exit 1; }

echo "==> validating the router's scrape with the repo's own parser"
"$work/checkmetrics" -url "http://$router/metrics" \
  'router_backend_healthy=2' \
  'router_ejections_total=0' \
  'router_upstream_seconds>0' \
  'http_requests_total>100'

echo "multinode-smoke OK: 2-node ring behind routerd served the crawl mix clean"
