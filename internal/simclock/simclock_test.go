package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2014, 1, 2, 3, 4, 5, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtualAtEpoch()
	v.Sleep(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Sleep = %v, want %v", got, want)
	}
	if v.Sleeps() != 1 {
		t.Fatalf("Sleeps() = %d, want 1", v.Sleeps())
	}
	if v.Slept() != 90*time.Second {
		t.Fatalf("Slept() = %v, want 90s", v.Slept())
	}
}

func TestVirtualSleepNonPositiveIsNoop(t *testing.T) {
	v := NewVirtualAtEpoch()
	v.Sleep(0)
	v.Sleep(-time.Second)
	if got := v.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want unchanged %v", got, Epoch)
	}
	if v.Sleeps() != 0 {
		t.Fatalf("Sleeps() = %d, want 0", v.Sleeps())
	}
}

func TestVirtualAdvanceDoesNotCountAsSleep(t *testing.T) {
	v := NewVirtualAtEpoch()
	v.Advance(time.Hour)
	if v.Sleeps() != 0 {
		t.Fatalf("Advance must not count as a sleep")
	}
	if got := v.Now(); !got.Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("Now() = %v, want %v", got, Epoch.Add(time.Hour))
	}
}

func TestVirtualAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Advance(-1) should panic")
		}
	}()
	NewVirtualAtEpoch().Advance(-1)
}

func TestVirtualSetNowForwardOnly(t *testing.T) {
	v := NewVirtualAtEpoch()
	target := Epoch.Add(24 * time.Hour)
	v.SetNow(target)
	if got := v.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("SetNow backwards should panic")
		}
	}()
	v.SetNow(Epoch)
}

func TestVirtualConcurrentSleepsAccumulate(t *testing.T) {
	v := NewVirtualAtEpoch()
	const n = 50
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			v.Sleep(time.Second)
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(Epoch.Add(n * time.Second)) {
		t.Fatalf("Now() = %v, want %v", got, Epoch.Add(n*time.Second))
	}
	if v.Sleeps() != n {
		t.Fatalf("Sleeps() = %d, want %d", v.Sleeps(), n)
	}
}

func TestStopwatchOnVirtualClock(t *testing.T) {
	v := NewVirtualAtEpoch()
	sw := NewStopwatch(v)
	v.Sleep(3 * time.Minute)
	if got := sw.Elapsed(); got != 3*time.Minute {
		t.Fatalf("Elapsed() = %v, want 3m", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("Elapsed() after Restart = %v, want 0", got)
	}
	v.Advance(time.Second)
	if got := sw.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed() = %v, want 1s", got)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	c := Real{}
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

// The tests below pin the Virtual clock's guarantees under the shape the
// monitoring subsystem runs: one scheduler goroutine advancing/sleeping on
// the clock while several auditd workers sleep on it concurrently.

// TestVirtualConcurrentSleepLowerBound: when a goroutine's Sleep(d)
// returns, the clock has advanced by at least d past the instant it
// started sleeping (others may have pushed it further, never less).
func TestVirtualConcurrentSleepLowerBound(t *testing.T) {
	v := NewVirtualAtEpoch()
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		d := time.Duration(i+1) * time.Second
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				before := v.Now()
				v.Sleep(d)
				if after := v.Now(); after.Before(before.Add(d)) {
					errs <- "Sleep returned with clock short of its own duration"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestVirtualMonotonicUnderMixedLoad: with sleepers and an advancer racing
// (workers awaiting rate-limit windows while the scheduler jumps to the
// next cadence), every goroutine observes a non-decreasing clock, and the
// final time is exactly the sum of all advances — virtual time is never
// lost or double-counted.
func TestVirtualMonotonicUnderMixedLoad(t *testing.T) {
	v := NewVirtualAtEpoch()
	const (
		sleepers  = 8
		advancers = 2
		rounds    = 200
	)
	var wg sync.WaitGroup
	errs := make(chan string, sleepers+advancers)
	observe := func(last *time.Time) bool {
		now := v.Now()
		if now.Before(*last) {
			return false
		}
		*last = now
		return true
	}
	wg.Add(sleepers + advancers)
	for i := 0; i < sleepers; i++ {
		go func() {
			defer wg.Done()
			last := v.Now()
			for r := 0; r < rounds; r++ {
				v.Sleep(time.Millisecond)
				if !observe(&last) {
					errs <- "sleeper observed the clock going backwards"
					return
				}
			}
		}()
	}
	for i := 0; i < advancers; i++ {
		go func() {
			defer wg.Done()
			last := v.Now()
			for r := 0; r < rounds; r++ {
				v.Advance(time.Millisecond)
				if !observe(&last) {
					errs <- "advancer observed the clock going backwards"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	want := Epoch.Add((sleepers + advancers) * rounds * time.Millisecond)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("final time %v, want %v (virtual time lost or duplicated)", got, want)
	}
	if v.Sleeps() != sleepers*rounds {
		t.Fatalf("Sleeps() = %d, want %d (Advance must not count)", v.Sleeps(), sleepers*rounds)
	}
	if v.Slept() != sleepers*rounds*time.Millisecond {
		t.Fatalf("Slept() = %v", v.Slept())
	}
}

// TestVirtualSchedulerWorkerInterleaving models one monitord round
// explicitly: the scheduler advances to the next cadence, workers burn
// virtual crawl time concurrently, and the stopwatch-measured round never
// exceeds the sum of everything spent on the clock.
func TestVirtualSchedulerWorkerInterleaving(t *testing.T) {
	v := NewVirtualAtEpoch()
	const (
		cadence   = 24 * time.Hour
		workers   = 4
		crawlCost = 3 * time.Minute
		days      = 27
	)
	sw := NewStopwatch(v)
	for day := 0; day < days; day++ {
		v.Advance(cadence)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				v.Sleep(crawlCost)
			}()
		}
		wg.Wait()
	}
	want := days * (cadence + workers*crawlCost)
	if got := sw.Elapsed(); got != want {
		t.Fatalf("27-day watch consumed %v of virtual time, want %v", got, want)
	}
}
