package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2014, 1, 2, 3, 4, 5, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtualAtEpoch()
	v.Sleep(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Sleep = %v, want %v", got, want)
	}
	if v.Sleeps() != 1 {
		t.Fatalf("Sleeps() = %d, want 1", v.Sleeps())
	}
	if v.Slept() != 90*time.Second {
		t.Fatalf("Slept() = %v, want 90s", v.Slept())
	}
}

func TestVirtualSleepNonPositiveIsNoop(t *testing.T) {
	v := NewVirtualAtEpoch()
	v.Sleep(0)
	v.Sleep(-time.Second)
	if got := v.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want unchanged %v", got, Epoch)
	}
	if v.Sleeps() != 0 {
		t.Fatalf("Sleeps() = %d, want 0", v.Sleeps())
	}
}

func TestVirtualAdvanceDoesNotCountAsSleep(t *testing.T) {
	v := NewVirtualAtEpoch()
	v.Advance(time.Hour)
	if v.Sleeps() != 0 {
		t.Fatalf("Advance must not count as a sleep")
	}
	if got := v.Now(); !got.Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("Now() = %v, want %v", got, Epoch.Add(time.Hour))
	}
}

func TestVirtualAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Advance(-1) should panic")
		}
	}()
	NewVirtualAtEpoch().Advance(-1)
}

func TestVirtualSetNowForwardOnly(t *testing.T) {
	v := NewVirtualAtEpoch()
	target := Epoch.Add(24 * time.Hour)
	v.SetNow(target)
	if got := v.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("SetNow backwards should panic")
		}
	}()
	v.SetNow(Epoch)
}

func TestVirtualConcurrentSleepsAccumulate(t *testing.T) {
	v := NewVirtualAtEpoch()
	const n = 50
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			v.Sleep(time.Second)
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(Epoch.Add(n * time.Second)) {
		t.Fatalf("Now() = %v, want %v", got, Epoch.Add(n*time.Second))
	}
	if v.Sleeps() != n {
		t.Fatalf("Sleeps() = %d, want %d", v.Sleeps(), n)
	}
}

func TestStopwatchOnVirtualClock(t *testing.T) {
	v := NewVirtualAtEpoch()
	sw := NewStopwatch(v)
	v.Sleep(3 * time.Minute)
	if got := sw.Elapsed(); got != 3*time.Minute {
		t.Fatalf("Elapsed() = %v, want 3m", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("Elapsed() after Restart = %v, want 0", got)
	}
	v.Advance(time.Second)
	if got := sw.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed() = %v, want 1s", got)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	c := Real{}
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}
