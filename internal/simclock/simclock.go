// Package simclock provides a clock abstraction so that every time-dependent
// component of the system (rate limiters, crawlers, caches, response-time
// measurements) can run against either the real wall clock or a fully
// deterministic virtual clock.
//
// The virtual clock is the substrate that lets the reproduction measure
// multi-day crawls (the paper's 27-day crawl of Barack Obama's followers,
// Section IV-B) in milliseconds of real time: a component that "sleeps"
// on the virtual clock merely advances it.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the system.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Sleep blocks (or virtually advances) for duration d.
	// Negative or zero durations return immediately.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the operating system's wall clock.
// The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Virtual is a deterministic Clock whose time only moves when explicitly
// advanced, either by Advance or by a Sleep call. It is safe for concurrent
// use; concurrent sleepers each advance the clock by their own duration,
// which models sequential execution of the sleeping activities (adequate for
// the single-crawler pipelines in this system).
type Virtual struct {
	mu  sync.Mutex
	now time.Time

	// sleeps counts the Sleep invocations that actually advanced time,
	// which tests use to assert rate-limit waits happened.
	sleeps int
	// slept accumulates the total virtual time spent sleeping.
	slept time.Duration
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a Virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Epoch is the default start instant used across the reproduction: a fixed
// date in the paper's measurement period (early 2014) so that account ages,
// "last tweet more than 90 days ago" rules, and report timestamps are stable
// across runs.
var Epoch = time.Date(2014, time.March, 1, 12, 0, 0, 0, time.UTC)

// NewVirtualAtEpoch returns a Virtual clock starting at Epoch.
func NewVirtualAtEpoch() *Virtual { return NewVirtual(Epoch) }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the virtual time by d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
	v.sleeps++
	v.slept += d
}

// Advance moves the clock forward by d without recording a sleep.
// It panics if d is negative, since virtual time may never go backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: cannot advance virtual clock backwards")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

// SetNow jumps the clock to t. It panics if t is before the current time.
func (v *Virtual) SetNow(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		panic("simclock: cannot set virtual clock backwards")
	}
	v.now = t
}

// Sleeps reports how many Sleep calls advanced the clock.
func (v *Virtual) Sleeps() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sleeps
}

// Slept reports the total virtual duration spent in Sleep.
func (v *Virtual) Slept() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.slept
}

// Stopwatch measures elapsed time on an arbitrary Clock.
type Stopwatch struct {
	clock Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on the given clock.
func NewStopwatch(c Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the time elapsed since the stopwatch was started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now().Sub(s.start) }

// Restart resets the stopwatch start to the clock's current time.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }
