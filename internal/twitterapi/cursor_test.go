package twitterapi

import (
	"errors"
	"testing"
	"testing/quick"

	"fakeproject/internal/twitter"
)

func TestCursorRoundTrip(t *testing.T) {
	f := func(targetRaw uint32, seqRaw uint64) bool {
		target := twitter.UserID(targetRaw%1e6 + 1)
		seq := seqRaw&cursorSeqMask | 1 // non-zero, within the field
		c := encodeCursor(target, seq)
		if c <= 0 {
			return false // must never collide with the sentinels
		}
		got, err := decodeCursor(target, c)
		return err == nil && got == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCursorRejectsForgeries(t *testing.T) {
	const target = twitter.UserID(42)
	for _, c := range []int64{-7, 0, 1, 99999, 1 << 50} {
		if _, err := decodeCursor(target, c); !errors.Is(err, ErrBadCursor) {
			t.Fatalf("decodeCursor(%d) err = %v, want ErrBadCursor", c, err)
		}
	}
	// A genuine cursor presented for the wrong target fails its checksum.
	c := encodeCursor(target, 12345)
	if _, err := decodeCursor(target+1, c); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("cross-target decode err = %v, want ErrBadCursor", err)
	}
	// Flipping any low bit invalidates the token.
	if _, err := decodeCursor(target, c^2); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("bit-flipped decode err = %v, want ErrBadCursor", err)
	}
}

// TestFeistelIsPermutation: the synthetic-friends index mapping must be a
// bijection on its domain — that is the whole distinctness argument.
func TestFeistelIsPermutation(t *testing.T) {
	for _, domain := range []uint64{1, 2, 3, 7, 64, 1000, 4099} {
		perm := newFeistel(0xfeedface^domain, domain)
		seen := make(map[uint64]bool, domain)
		for i := uint64(0); i < domain; i++ {
			v := perm.at(i)
			if v >= domain {
				t.Fatalf("domain %d: at(%d) = %d escapes", domain, i, v)
			}
			if seen[v] {
				t.Fatalf("domain %d: at(%d) = %d repeats", domain, i, v)
			}
			seen[v] = true
		}
	}
}

// TestFeistelKeySensitivity: different accounts must get different friend
// orderings (different keys ⇒ different permutations, overwhelmingly).
func TestFeistelKeySensitivity(t *testing.T) {
	const domain = 1000
	a, b := newFeistel(1, domain), newFeistel(2, domain)
	same := 0
	for i := uint64(0); i < domain; i++ {
		if a.at(i) == b.at(i) {
			same++
		}
	}
	if same > domain/10 {
		t.Fatalf("%d/%d fixed points across keys — permutations too correlated", same, domain)
	}
}
