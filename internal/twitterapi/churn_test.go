package twitterapi

// Crawl-under-churn integration tests: the regime of the paper's 27-day
// Section IV-B crawl, where the follower list mutates faster than one rate-
// limited crawl can traverse it. The contract under test, end to end:
//
//   - no follower is ever served twice by one crawl (arrivals mid-crawl
//     land above the anchored cursor and shift nothing);
//   - every edge that survives the whole crawl is served exactly once
//     (purges cannot make the cursor skip stable edges);
//   - a purge racing the crawl — including one that shrinks the list below
//     the in-flight cursor, the case that used to hard-error with
//     ErrBadCursor — ends pagination with an empty or short final page.

import (
	"net/http/httptest"
	"testing"
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// churnRig is a target account under a scripted churn driver.
type churnRig struct {
	t      *testing.T
	clock  *simclock.Virtual
	store  *twitter.Store
	target twitter.UserID
	live   []twitter.UserID // current live followers, chronological
}

func newChurnRig(t *testing.T, initial int) *churnRig {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	store.Grow(initial + 1)
	r := &churnRig{t: t, clock: clock, store: store}
	r.target = store.MustCreateUser(twitter.UserParams{ScreenName: "watched"})
	r.burst(initial)
	return r
}

// burst adds n brand-new followers at the current instant.
func (r *churnRig) burst(n int) {
	r.t.Helper()
	for i := 0; i < n; i++ {
		id := r.store.MustCreateUser(twitter.UserParams{})
		if err := r.store.AddFollower(r.target, id, r.clock.Now()); err != nil {
			r.t.Fatal(err)
		}
		r.live = append(r.live, id)
	}
	r.clock.Advance(time.Minute)
}

// purge removes the live followers at the given chronological indices.
func (r *churnRig) purge(idx []int) {
	r.t.Helper()
	victims := make([]twitter.UserID, len(idx))
	kill := make(map[int]bool, len(idx))
	for i, j := range idx {
		victims[i] = r.live[j]
		kill[j] = true
	}
	if _, err := r.store.RemoveFollowers(r.target, victims, r.clock.Now()); err != nil {
		r.t.Fatal(err)
	}
	kept := r.live[:0]
	for j, id := range r.live {
		if !kill[j] {
			kept = append(kept, id)
		}
	}
	r.live = kept
	r.clock.Advance(time.Minute)
}

// snapshotSet copies the current live membership.
func (r *churnRig) snapshotSet() map[twitter.UserID]bool {
	out := make(map[twitter.UserID]bool, len(r.live))
	for _, id := range r.live {
		out[id] = true
	}
	return out
}

// crawlAssert pages through fetch, driving churn between pages, and checks
// the three-clause contract. baseline is membership at crawl start;
// betweenPages may mutate the rig and must record removals it causes.
func crawlAssert(t *testing.T, fetch func(twitter.UserID, int64) (IDPage, error),
	rig *churnRig, betweenPages func(pageNo int)) {
	t.Helper()
	baseline := rig.snapshotSet()
	removedDuring := make(map[twitter.UserID]bool)
	before := rig.snapshotSet()

	seen := make(map[twitter.UserID]bool)
	cursor := CursorFirst
	for pageNo := 0; ; pageNo++ {
		page, err := fetch(rig.target, cursor)
		if err != nil {
			t.Fatalf("page %d: crawl errored under churn: %v", pageNo, err)
		}
		for _, id := range page.IDs {
			if seen[id] {
				t.Fatalf("page %d: follower %d served twice", pageNo, id)
			}
			seen[id] = true
		}
		if page.NextCursor == CursorDone {
			break
		}
		cursor = page.NextCursor

		betweenPages(pageNo)
		// Record what this round of churn removed.
		now := rig.snapshotSet()
		for id := range before {
			if !now[id] {
				removedDuring[id] = true
			}
		}
		before = now
	}

	for id := range baseline {
		if !removedDuring[id] && !seen[id] {
			t.Fatalf("stable edge %d skipped by the crawl", id)
		}
	}
	for id := range seen {
		if !baseline[id] {
			t.Fatalf("mid-crawl arrival %d served (cursor not anchored)", id)
		}
	}
}

// TestCrawlUnderChurn interleaves purchase bursts and purge sweeps with a
// paged crawl through the in-process service.
func TestCrawlUnderChurn(t *testing.T) {
	rig := newChurnRig(t, 23000) // 5 pages
	svc := NewService(rig.store)
	src := drand.New(7)
	crawlAssert(t, svc.FollowerIDs, rig, func(int) {
		// A purchase burst lands new fakes above the crawl's anchor...
		rig.burst(1000 + src.Intn(2000))
		// ...and a purge sweep removes ~8% of the current list, mixing
		// already-served (newest) and not-yet-served (oldest) edges.
		var idx []int
		for j := range rig.live {
			if src.Intn(12) == 0 {
				idx = append(idx, j)
			}
		}
		rig.purge(idx)
	})
}

// TestCrawlSurvivesMassivePurge pins the exact bug of the old offset
// cursors: a purge that shrinks the list below the in-flight cursor made
// FollowerIDs hard-error with ErrBadCursor, killing the monitord crawls
// mid-flight. Anchored cursors finish the crawl and return exactly the
// survivors.
func TestCrawlSurvivesMassivePurge(t *testing.T) {
	rig := newChurnRig(t, 12000)
	svc := NewService(rig.store)

	first, err := svc.FollowerIDs(rig.target, CursorFirst)
	if err != nil || len(first.IDs) != FollowerIDsPageSize {
		t.Fatalf("first page = %d ids, %v", len(first.IDs), err)
	}
	// Purge 11,500 of the 12,000 — far below the cursor's 5,000 mark.
	// The 500 survivors are scattered across the whole chronology.
	var idx []int
	for j := range rig.live {
		if j%24 != 0 {
			idx = append(idx, j)
		}
	}
	rig.purge(idx)

	var rest []twitter.UserID
	for cursor := first.NextCursor; cursor != CursorDone; {
		page, err := svc.FollowerIDs(rig.target, cursor)
		if err != nil {
			t.Fatalf("post-purge page errored: %v", err)
		}
		rest = append(rest, page.IDs...)
		cursor = page.NextCursor
	}
	// Exactly the survivors older than the first page's anchor, no dupes.
	servedFirst := make(map[twitter.UserID]bool, len(first.IDs))
	for _, id := range first.IDs {
		servedFirst[id] = true
	}
	want := make(map[twitter.UserID]bool)
	for _, id := range rig.live {
		if !servedFirst[id] {
			want[id] = true
		}
	}
	if len(rest) != len(want) {
		t.Fatalf("resumed crawl returned %d ids, want %d survivors", len(rest), len(want))
	}
	for _, id := range rest {
		if !want[id] {
			t.Fatalf("resumed crawl returned %d, not an unserved survivor", id)
		}
	}

	// And a cursor stranded below *every* survivor yields one empty final
	// page rather than an error.
	rig.purge(func() []int {
		all := make([]int, len(rig.live))
		for i := range all {
			all[i] = i
		}
		return all
	}())
	page, err := svc.FollowerIDs(rig.target, first.NextCursor)
	if err != nil || len(page.IDs) != 0 || page.NextCursor != CursorDone {
		t.Fatalf("fully-purged resume = %+v, %v; want empty done page", page, err)
	}
}

// TestCrawlUnderChurnOverHTTP runs the same contract through the full wire
// stack: HTTP server, JSON codec, rate limiter and Retry-After backoff on a
// shared virtual clock.
func TestCrawlUnderChurnOverHTTP(t *testing.T) {
	rig := newChurnRig(t, 23000)
	srv := httptest.NewServer(NewServer(NewService(rig.store), rig.clock))
	defer srv.Close()
	client := NewHTTPClient(srv.URL, "crawler-token", rig.clock)
	src := drand.New(11)
	crawlAssert(t, client.FollowerIDs, rig, func(int) {
		rig.burst(500 + src.Intn(1000))
		var idx []int
		for j := range rig.live {
			if src.Intn(15) == 0 {
				idx = append(idx, j)
			}
		}
		rig.purge(idx)
	})
}

// TestAllFollowerIDsUnderConcurrentChurn drives the high-level helper while
// a goroutine churns the store concurrently — the monitord re-audit shape.
// With no quiescent point at all, the helper must still terminate without
// error or duplicates and cover every edge that was never removed.
func TestAllFollowerIDsUnderConcurrentChurn(t *testing.T) {
	rig := newChurnRig(t, 20000)
	baseline := rig.snapshotSet()
	svc := NewService(rig.store)
	client := NewDirectClient(svc, rig.clock, ClientConfig{})

	stop := make(chan struct{})
	done := make(chan struct{})
	everRemoved := make(chan map[twitter.UserID]bool, 1)
	go func() {
		defer close(done)
		src := drand.New(3)
		removed := make(map[twitter.UserID]bool)
		defer func() { everRemoved <- removed }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := rig.store.MustCreateUser(twitter.UserParams{})
			if err := rig.store.AddFollower(rig.target, id, rig.store.Now()); err != nil {
				t.Error(err)
				return
			}
			victim := rig.live[src.Intn(len(rig.live))]
			if _, err := rig.store.RemoveFollowers(rig.target, []twitter.UserID{victim}, rig.store.Now()); err != nil {
				t.Error(err)
				return
			}
			removed[victim] = true
		}
	}()

	ids, err := AllFollowerIDs(client, rig.target)
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("AllFollowerIDs under live churn: %v", err)
	}
	removed := <-everRemoved
	seen := make(map[twitter.UserID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("follower %d served twice", id)
		}
		seen[id] = true
	}
	for id := range baseline {
		if !removed[id] && !seen[id] {
			t.Fatalf("stable edge %d skipped", id)
		}
	}
}
