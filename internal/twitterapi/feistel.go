package twitterapi

// mix64 is the splitmix64 finaliser: a cheap bijective hash whose output
// avalanches every input bit. Shared by the cursor checksum and the
// friends-permutation key schedule — keep the constants in one place.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// feistel is a keyed pseudorandom permutation over [0, domain), built as a
// balanced Feistel network with cycle-walking. It lets the synthetic
// friend-list endpoint address position i of a never-materialised list in
// O(1): distinctness comes from bijectivity instead of a rejection-sampled
// dedup set, so serving a page costs O(page) no matter how long the list
// is.
//
// The network permutes an even-bit-width space just covering the domain
// (so at most 4× larger); values that land outside the domain are walked
// through the permutation again until they fall inside, which terminates
// in < 4 expected rounds.
type feistel struct {
	domain   uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

// newFeistel builds the permutation for the given key over [0, domain).
// domain 0 or 1 yields the identity-on-nothing/one permutation.
func newFeistel(key uint64, domain uint64) feistel {
	f := feistel{domain: domain, halfBits: 1}
	for 1<<(2*f.halfBits) < domain {
		f.halfBits++
	}
	f.halfMask = 1<<f.halfBits - 1
	for i := range f.keys {
		// splitmix64 stream over the key: independent round keys.
		key += 0x9e3779b97f4a7c15
		f.keys[i] = mix64(key)
	}
	return f
}

// round is the Feistel F-function: mixes one half with a round key down to
// halfBits bits.
func (f feistel) round(r, k uint64) uint64 {
	x := r*0x9e3779b97f4a7c15 + k
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	x ^= x >> 32
	return x & f.halfMask
}

// at returns the image of i under the permutation. i must be < domain.
func (f feistel) at(i uint64) uint64 {
	if f.domain < 2 {
		return i
	}
	for {
		l, r := i>>f.halfBits, i&f.halfMask
		for _, k := range f.keys {
			l, r = r, l^f.round(r, k)
		}
		i = l<<f.halfBits | r
		if i < f.domain {
			return i
		}
	}
}
