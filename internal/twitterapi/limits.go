// Package twitterapi implements the simulated Twitter REST API v1.1 surface
// the paper's analytics depend on: the four endpoints of Table I with their
// page sizes, cursor pagination, rate limits and the 3,200-tweet timeline
// cap, exposed both in-process and over HTTP (JSON), together with clients
// that account for API calls and model per-call latency on a virtual clock.
package twitterapi

import (
	"time"

	"fakeproject/internal/ratelimit"
)

// Endpoint names, used as rate-limit keys and HTTP routes.
const (
	EndpointFollowerIDs  = "followers/ids"
	EndpointFriendIDs    = "friends/ids"
	EndpointUsersLookup  = "users/lookup"
	EndpointUserTimeline = "statuses/user_timeline"
	EndpointUsersShow    = "users/show"
)

// Page-size and cap constants of API v1.1.
const (
	// FollowerIDsPageSize is the number of IDs per followers/ids request.
	FollowerIDsPageSize = 5000
	// FriendIDsPageSize is the number of IDs per friends/ids request.
	FriendIDsPageSize = 5000
	// UsersLookupBatchSize is the number of profiles per users/lookup call.
	UsersLookupBatchSize = 100
	// TimelinePageSize is the number of tweets per user_timeline request.
	TimelinePageSize = 200
	// TimelineCap is the hard limit on retrievable tweets per account
	// ("restricted however to the last 3200 tweets of an account").
	TimelineCap = 3200
	// RateWindow is the length of Twitter's rate-limit window.
	RateWindow = 15 * time.Minute
)

// EndpointLimit is one row of Table I.
type EndpointLimit struct {
	Endpoint string
	// ElementsPerRequest is the page/batch size of the endpoint.
	ElementsPerRequest int
	// RequestsPerMinute is the average request budget per minute.
	RequestsPerMinute int
}

// TableI returns the rows of Table I of the paper: "Twitter APIs: type and
// limitations to API calls".
func TableI() []EndpointLimit {
	return []EndpointLimit{
		{Endpoint: "GET " + EndpointFollowerIDs, ElementsPerRequest: FollowerIDsPageSize, RequestsPerMinute: 1},
		{Endpoint: "GET " + EndpointFriendIDs, ElementsPerRequest: FriendIDsPageSize, RequestsPerMinute: 1},
		{Endpoint: "GET " + EndpointUsersLookup, ElementsPerRequest: UsersLookupBatchSize, RequestsPerMinute: 12},
		{Endpoint: "GET " + EndpointUserTimeline, ElementsPerRequest: TimelinePageSize, RequestsPerMinute: 12},
	}
}

// DefaultLimits returns the per-endpoint budgets implementing Table I with
// Twitter's 15-minute window semantics (1/min average = 15 per window burst).
func DefaultLimits() map[string]ratelimit.Limit {
	out := make(map[string]ratelimit.Limit, 5)
	for _, row := range TableI() {
		key := row.Endpoint[len("GET "):]
		out[key] = ratelimit.Limit{
			Requests: row.RequestsPerMinute * int(RateWindow/time.Minute),
			Window:   RateWindow,
		}
	}
	// users/show shares the lookup budget class (180/15min on v1.1).
	out[EndpointUsersShow] = ratelimit.Limit{Requests: 180, Window: RateWindow}
	return out
}
