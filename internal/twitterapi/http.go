package twitterapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/ratelimit"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// timeFormat is Twitter's "created_at" wire format (Ruby date).
const timeFormat = "Mon Jan 02 15:04:05 -0700 2006"

// userJSON is the wire shape of a user object. The last_tweet_at and
// behavior fields are the extended payload documented in DESIGN.md §5.
type userJSON struct {
	ID                  int64         `json:"id"`
	ScreenName          string        `json:"screen_name"`
	Name                string        `json:"name"`
	CreatedAt           string        `json:"created_at"`
	Description         string        `json:"description"`
	Location            string        `json:"location"`
	URL                 string        `json:"url"`
	FollowersCount      int           `json:"followers_count"`
	FriendsCount        int           `json:"friends_count"`
	StatusesCount       int           `json:"statuses_count"`
	DefaultProfileImage bool          `json:"default_profile_image"`
	Protected           bool          `json:"protected"`
	Verified            bool          `json:"verified"`
	LastTweetAt         string        `json:"last_tweet_at,omitempty"`
	Behavior            *behaviorJSON `json:"behavior,omitempty"`
}

type behaviorJSON struct {
	RetweetRatio   float64 `json:"retweet_ratio"`
	LinkRatio      float64 `json:"link_ratio"`
	SpamRatio      float64 `json:"spam_ratio"`
	DuplicateRatio float64 `json:"duplicate_ratio"`
}

type tweetJSON struct {
	ID        int64  `json:"id"`
	AuthorID  int64  `json:"author_id"`
	CreatedAt string `json:"created_at"`
	Text      string `json:"text"`
	IsRetweet bool   `json:"is_retweet"`
	HasLink   bool   `json:"has_link"`
	IsReply   bool   `json:"is_reply"`
	Mentions  int    `json:"mentions"`
	Hashtags  int    `json:"hashtags"`
	Source    string `json:"source"`
}

type idPageJSON struct {
	IDs        []int64 `json:"ids"`
	NextCursor int64   `json:"next_cursor"`
}

type errorJSON struct {
	Errors []errorItemJSON `json:"errors"`
}

type errorItemJSON struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func encodeUser(p twitter.Profile) userJSON {
	u := userJSON{
		ID:                  int64(p.ID),
		ScreenName:          p.ScreenName,
		Name:                p.Name,
		CreatedAt:           p.CreatedAt.Format(timeFormat),
		Description:         p.Bio,
		Location:            p.Location,
		URL:                 p.URL,
		FollowersCount:      p.FollowersCount,
		FriendsCount:        p.FriendsCount,
		StatusesCount:       p.StatusesCount,
		DefaultProfileImage: p.DefaultProfileImage,
		Protected:           p.Protected,
		Verified:            p.Verified,
		Behavior: &behaviorJSON{
			RetweetRatio:   p.Behavior.RetweetRatio,
			LinkRatio:      p.Behavior.LinkRatio,
			SpamRatio:      p.Behavior.SpamRatio,
			DuplicateRatio: p.Behavior.DuplicateRatio,
		},
	}
	if !p.LastTweetAt.IsZero() {
		u.LastTweetAt = p.LastTweetAt.Format(timeFormat)
	}
	return u
}

func decodeUser(u userJSON) (twitter.Profile, error) {
	created, err := time.Parse(timeFormat, u.CreatedAt)
	if err != nil {
		return twitter.Profile{}, fmt.Errorf("parsing created_at: %w", err)
	}
	p := twitter.Profile{
		User: twitter.User{
			ID:                  twitter.UserID(u.ID),
			ScreenName:          u.ScreenName,
			Name:                u.Name,
			CreatedAt:           created,
			Bio:                 u.Description,
			Location:            u.Location,
			URL:                 u.URL,
			DefaultProfileImage: u.DefaultProfileImage,
			Protected:           u.Protected,
			Verified:            u.Verified,
		},
		FollowersCount: u.FollowersCount,
		FriendsCount:   u.FriendsCount,
		StatusesCount:  u.StatusesCount,
	}
	if u.LastTweetAt != "" {
		last, err := time.Parse(timeFormat, u.LastTweetAt)
		if err != nil {
			return twitter.Profile{}, fmt.Errorf("parsing last_tweet_at: %w", err)
		}
		p.LastTweetAt = last
	}
	if u.Behavior != nil {
		p.Behavior = twitter.Behavior{
			RetweetRatio:   u.Behavior.RetweetRatio,
			LinkRatio:      u.Behavior.LinkRatio,
			SpamRatio:      u.Behavior.SpamRatio,
			DuplicateRatio: u.Behavior.DuplicateRatio,
		}
	}
	return p, nil
}

func encodeTweet(tw twitter.Tweet) tweetJSON {
	return tweetJSON{
		ID:        int64(tw.ID),
		AuthorID:  int64(tw.Author),
		CreatedAt: tw.CreatedAt.Format(timeFormat),
		Text:      tw.Text,
		IsRetweet: tw.IsRetweet,
		HasLink:   tw.HasLink,
		IsReply:   tw.IsReply,
		Mentions:  tw.Mentions,
		Hashtags:  tw.Hashtags,
		Source:    tw.Source,
	}
}

func decodeTweet(t tweetJSON) (twitter.Tweet, error) {
	created, err := time.Parse(timeFormat, t.CreatedAt)
	if err != nil {
		return twitter.Tweet{}, fmt.Errorf("parsing tweet created_at: %w", err)
	}
	return twitter.Tweet{
		ID:        twitter.TweetID(t.ID),
		Author:    twitter.UserID(t.AuthorID),
		CreatedAt: created,
		Text:      t.Text,
		IsRetweet: t.IsRetweet,
		HasLink:   t.HasLink,
		IsReply:   t.IsReply,
		Mentions:  t.Mentions,
		Hashtags:  t.Hashtags,
		Source:    t.Source,
	}, nil
}

// Server serves the API over HTTP with per-token rate limiting, mimicking
// api.twitter.com/1.1 closely enough that the HTTP client and the in-process
// client are interchangeable.
type Server struct {
	svc     *Service
	clock   simclock.Clock
	limiter *ratelimit.Limiter
	limits  map[string]ratelimit.Limit
	mux     *http.ServeMux
	// throttled holds the per-endpoint 429 counters of an observed server
	// (nil on a plain one); pre-built at assembly so gate() stays cheap.
	throttled map[string]*metrics.Counter
}

// NewServer builds the HTTP front end with the Table I budgets. Rate-limit
// budgets are per (endpoint, bearer token) pair, as on the real platform.
func NewServer(svc *Service, clock simclock.Clock) *Server {
	return NewServerLimits(svc, clock, DefaultLimits())
}

// NewServerLimits builds the HTTP front end with an explicit per-endpoint
// budget table. Endpoints absent from the table are unlimited; a nil table
// disables rate limiting entirely — the configuration the load harness uses
// to measure the serving hot path rather than the limiter's rejections.
func NewServerLimits(svc *Service, clock simclock.Clock, limits map[string]ratelimit.Limit) *Server {
	s := &Server{
		svc:     svc,
		clock:   clock,
		limiter: ratelimit.New(clock, nil),
		limits:  limits,
		mux:     http.NewServeMux(),
	}
	for _, rt := range s.routes() {
		s.mux.HandleFunc(rt.path, rt.handler)
	}
	return s
}

// NewServerObserved is NewServerLimits with the shared HTTP instrumentation
// wrapped around every route (plane "api"): per-endpoint latency histograms
// and status-class counters in reg, plus 429 throttle counters fed from
// gate() and the limiter's rejection/backoff totals.
func NewServerObserved(svc *Service, clock simclock.Clock, limits map[string]ratelimit.Limit, reg *metrics.Registry) *Server {
	s := &Server{
		svc:       svc,
		clock:     clock,
		limiter:   ratelimit.New(clock, nil),
		limits:    limits,
		mux:       http.NewServeMux(),
		throttled: make(map[string]*metrics.Counter),
	}
	plane := metrics.NewHTTPPlane(reg, "api", clock)
	for _, rt := range s.routes() {
		s.mux.Handle(rt.path, plane.WrapFunc(rt.endpoint, rt.handler))
		s.throttled[rt.endpoint] = reg.Counter("ratelimit_throttled_total",
			"Requests rejected with 429 by the endpoint budget.",
			metrics.L("plane", "api"), metrics.L("endpoint", rt.endpoint))
	}
	reg.CounterFunc("ratelimit_backoffs_total",
		"Reserve calls that had to wait for a budget window.",
		func() float64 { return float64(s.limiter.Stats().Backoffs) },
		metrics.L("plane", "api"))
	return s
}

// route binds one API path to its endpoint label (the Table I name, also
// the rate-limit and metrics key) and handler.
type route struct {
	path     string
	endpoint string
	handler  http.HandlerFunc
}

func (s *Server) routes() []route {
	return []route{
		{"/1.1/followers/ids.json", EndpointFollowerIDs, s.handleFollowerIDs},
		{"/1.1/friends/ids.json", EndpointFriendIDs, s.handleFriendIDs},
		{"/1.1/users/lookup.json", EndpointUsersLookup, s.handleUsersLookup},
		{"/1.1/users/show.json", EndpointUsersShow, s.handleUsersShow},
		{"/1.1/statuses/user_timeline.json", EndpointUserTimeline, s.handleUserTimeline},
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func tokenOf(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimPrefix(auth, "Bearer ")
	}
	return "anonymous"
}

// gate applies the endpoint's rate limit for the request's token. It returns
// false after writing a 429 if the budget is exhausted.
func (s *Server) gate(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	key := endpoint + "|" + tokenOf(r)
	if _, ok := s.limiter.LimitFor(key); !ok {
		if lim, exists := s.limits[endpoint]; exists {
			s.limiter.SetLimit(key, lim)
		}
	}
	ok, retry := s.limiter.Allow(key)
	if ok {
		return true
	}
	if c := s.throttled[endpoint]; c != nil {
		c.Inc()
	}
	secs := int(retry / time.Second)
	if retry%time.Second != 0 {
		secs++
	}
	// Advertise both the relative back-off and the absolute window
	// boundary. The absolute form (epoch seconds, as on api.twitter.com)
	// is what concurrent clients need: a relative Retry-After is stamped
	// at rejection time and goes stale the moment the sleep starts late.
	// Rounded up so a client honouring it never wakes inside the window.
	reset := s.clock.Now().Add(retry)
	epoch := reset.Unix()
	if reset.Nanosecond() != 0 {
		epoch++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("X-Rate-Limit-Remaining", "0")
	w.Header().Set("X-Rate-Limit-Reset", strconv.FormatInt(epoch, 10))
	writeError(w, http.StatusTooManyRequests, 88, "Rate limit exceeded")
	return false
}

func writeError(w http.ResponseWriter, status, code int, msg string) {
	buf := responseBuffers.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(errorJSON{Errors: []errorItemJSON{{Code: code, Message: msg}}})
	writeBuffered(w, status, buf)
}

func writeJSON(w http.ResponseWriter, v any) {
	buf := responseBuffers.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, 131, err.Error())
		return
	}
	writeBuffered(w, http.StatusOK, buf)
}

// resolveUser supports both user_id and screen_name parameters.
func (s *Server) resolveUser(r *http.Request) (twitter.UserID, error) {
	q := r.URL.Query()
	if raw := q.Get("user_id"); raw != "" {
		id, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad user_id %q", raw)
		}
		return twitter.UserID(id), nil
	}
	if name := q.Get("screen_name"); name != "" {
		return s.svc.Store().LookupName(name)
	}
	return 0, fmt.Errorf("user_id or screen_name required")
}

func (s *Server) handleIDsEndpoint(w http.ResponseWriter, r *http.Request, endpoint string,
	fetch func(twitter.UserID, int64) (IDPage, error)) {
	if !s.gate(w, r, endpoint) {
		return
	}
	id, err := s.resolveUser(r)
	if err != nil {
		writeError(w, http.StatusNotFound, 34, err.Error())
		return
	}
	cursor := CursorFirst
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		cursor, err = strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, 44, "bad cursor")
			return
		}
	}
	page, err := fetch(id, cursor)
	if errors.Is(err, ErrBadCursor) {
		writeError(w, http.StatusBadRequest, 44, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusNotFound, 34, err.Error())
		return
	}
	writeIDPage(w, page)
}

func (s *Server) handleFollowerIDs(w http.ResponseWriter, r *http.Request) {
	s.handleIDsEndpoint(w, r, EndpointFollowerIDs, s.svc.FollowerIDs)
}

func (s *Server) handleFriendIDs(w http.ResponseWriter, r *http.Request) {
	s.handleIDsEndpoint(w, r, EndpointFriendIDs, s.svc.FriendIDs)
}

func (s *Server) handleUsersLookup(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w, r, EndpointUsersLookup) {
		return
	}
	raw := r.URL.Query().Get("user_id")
	if raw == "" {
		writeError(w, http.StatusBadRequest, 44, "user_id required")
		return
	}
	parts := strings.Split(raw, ",")
	if len(parts) > UsersLookupBatchSize {
		writeError(w, http.StatusBadRequest, 44, "too many ids")
		return
	}
	ids := make([]twitter.UserID, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, 44, "bad user_id list")
			return
		}
		ids = append(ids, twitter.UserID(v))
	}
	profiles, err := s.svc.UsersLookup(ids)
	if err != nil {
		writeError(w, http.StatusBadRequest, 44, err.Error())
		return
	}
	out := make([]userJSON, len(profiles))
	for i, p := range profiles {
		out[i] = encodeUser(p)
	}
	writeJSON(w, out)
}

func (s *Server) handleUsersShow(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w, r, EndpointUsersShow) {
		return
	}
	name := r.URL.Query().Get("screen_name")
	p, err := s.svc.UsersShow(name)
	if err != nil {
		writeError(w, http.StatusNotFound, 50, "User not found.")
		return
	}
	writeJSON(w, encodeUser(p))
}

func (s *Server) handleUserTimeline(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w, r, EndpointUserTimeline) {
		return
	}
	id, err := s.resolveUser(r)
	if err != nil {
		writeError(w, http.StatusNotFound, 34, err.Error())
		return
	}
	count := TimelinePageSize
	if raw := r.URL.Query().Get("count"); raw != "" {
		count, err = strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, 44, "bad count")
			return
		}
	}
	var maxID twitter.TweetID
	if raw := r.URL.Query().Get("max_id"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, 44, "bad max_id")
			return
		}
		maxID = twitter.TweetID(v)
	}
	tweets, err := s.svc.UserTimeline(id, count, maxID)
	if err != nil {
		writeError(w, http.StatusNotFound, 34, err.Error())
		return
	}
	out := make([]tweetJSON, len(tweets))
	for i, tw := range tweets {
		out[i] = encodeTweet(tw)
	}
	writeJSON(w, out)
}
