package twitterapi

import (
	"errors"
	"fmt"
	"sync"

	"fakeproject/internal/twitter"
)

// CursorFirst is the cursor value requesting the first page, and CursorDone
// is the next-cursor value signalling the end of pagination, mirroring the
// real API's -1 / 0 convention.
const (
	CursorFirst int64 = -1
	CursorDone  int64 = 0
)

// ErrBadCursor reports a cursor that does not belong to the paged list.
var ErrBadCursor = errors.New("twitterapi: invalid cursor")

// ErrBatchTooLarge reports a users/lookup batch above the 100-profile cap.
var ErrBatchTooLarge = errors.New("twitterapi: lookup batch exceeds 100 ids")

// Service exposes the endpoint logic over a twitter.Store. It performs no
// rate limiting or latency modelling — that is the transport clients' job —
// so that the same logic backs both the in-process client and the HTTP
// server.
type Service struct {
	store *twitter.Store

	mu sync.Mutex
	// friendDomains freezes the synthetic-friends permutation domain per
	// account the first time a *multi-page* friend list is served: the
	// permutation is keyed on the user-space size, so without freezing, a
	// user created between two pages would re-key the mapping and let
	// page 2 repeat IDs page 1 already served. Single-page lists (the
	// overwhelming majority) never enter the map, so it stays tiny.
	friendDomains map[twitter.UserID]int
}

// NewService wraps a store.
func NewService(store *twitter.Store) *Service {
	return &Service{store: store, friendDomains: make(map[twitter.UserID]int)}
}

// Store returns the underlying store (used by evaluation code, never by the
// simulated analytics).
func (s *Service) Store() *twitter.Store { return s.store }

// IDPage is one page of an ids endpoint.
type IDPage struct {
	IDs        []twitter.UserID
	NextCursor int64
}

// FollowerIDs returns one page of the target's follower IDs, newest follower
// first — the ordering property the paper verifies in Section IV-B. Pass
// CursorFirst to start and continue until NextCursor == CursorDone; every
// other cursor value is an opaque token minted by a previous page.
//
// Cursors are edge-anchored: the token names the next follow edge to serve
// by its append-time sequence number, so a crawl that pauses for hours of
// rate-limit sleeps resumes on the same edge no matter how many followers
// joined or were purged in between — the regime the Section IV-B 27-day
// crawl lives in. A cursor whose anchor (and everything older) has been
// purged returns an empty final page with CursorDone, never an error;
// ErrBadCursor is reserved for tokens this target never minted. Pages are
// read through Store.FollowersPage: O(log n + page) per call, copying only
// the page, served off the RCU-published edge-segment view without taking
// any shard lock — concurrent crawlers of one celebrity target scale with
// reader parallelism instead of serialising on its shard.
func (s *Service) FollowerIDs(target twitter.UserID, cursor int64) (IDPage, error) {
	fromSeq := twitter.SeqNewest
	if cursor != CursorFirst {
		seq, err := decodeCursor(target, cursor)
		if err != nil {
			return IDPage{}, err
		}
		fromSeq = seq
	}
	page, err := s.store.FollowersPage(target, fromSeq, FollowerIDsPageSize)
	if err != nil {
		return IDPage{}, err
	}
	next := CursorDone
	if page.NextSeq != 0 {
		next = encodeCursor(target, page.NextSeq)
	}
	return IDPage{IDs: page.IDs, NextCursor: next}, nil
}

// FriendIDs returns one page of the account's friend list (accounts it
// follows), newest first. Accounts without a materialised friend list get a
// deterministic synthetic list consistent with their friends counter (see
// DESIGN.md: the full follow graph is not materialised). Friend lists are
// immutable, so their cursors stay plain offsets.
func (s *Service) FriendIDs(id twitter.UserID, cursor int64) (IDPage, error) {
	if friends, ok := s.store.Friends(id); ok {
		return paginate(friends, cursor, FriendIDsPageSize)
	}
	count, err := s.store.FriendsCount(id)
	if err != nil {
		return IDPage{}, err
	}
	return s.synthFriendsPage(id, count, cursor)
}

// synthFriendsPage fabricates one page of a procedural account's friend
// list: `count` distinct existing user IDs, deterministic per id.
//
// The list is never materialised. Position i maps to a user through a
// keyed Feistel permutation of the index space, so serving a page costs
// O(page) regardless of count — a 100K-friend hub's first page no longer
// pays a 100K-element rejection-sampling build (and neither does every
// subsequent page, which the old code re-fabricated from scratch).
func (s *Service) synthFriendsPage(id twitter.UserID, count int, cursor int64) (IDPage, error) {
	n := s.store.UserCount()
	if count > FriendIDsPageSize {
		// Multi-page list: freeze the user-space size the permutation is
		// built over, so pages cut before and after a mid-crawl user burst
		// stay slices of one bijection. (Users are never deleted, so a
		// frozen n only ever under-samples newer accounts.) Each first
		// page re-freezes at the live count — the stability contract is
		// per crawl, and a permanently sticky domain would cap a hub
		// first crawled in a small user space forever.
		s.mu.Lock()
		if frozen, ok := s.friendDomains[id]; ok && cursor != CursorFirst {
			n = frozen
		} else {
			s.friendDomains[id] = n
		}
		s.mu.Unlock()
	}
	if count > n-1 {
		count = n - 1
	}
	if count < 0 {
		count = 0
	}
	start := int64(0)
	if cursor != CursorFirst {
		start = cursor
	}
	if start < 0 || start > int64(count) {
		return IDPage{}, fmt.Errorf("%w: %d over %d items", ErrBadCursor, cursor, count)
	}
	end := start + int64(FriendIDsPageSize)
	if end > int64(count) {
		end = int64(count)
	}
	// Keyed per account by a cheap hash, not a drand fork: seeding a
	// math/rand state on every page request is exactly the cost class the
	// profile-synthesis path already eliminated.
	perm := newFeistel(uint64(id)*2654435761, uint64(n-1))
	out := make([]twitter.UserID, 0, end-start)
	for i := start; i < end; i++ {
		// perm is a bijection on [0, n-1); lifting candidates past the
		// account's own id yields distinct IDs in [1, n] minus self.
		cand := twitter.UserID(perm.at(uint64(i))) + 1
		if cand >= id {
			cand++
		}
		out = append(out, cand)
	}
	next := CursorDone
	if end < int64(count) {
		next = end
	}
	return IDPage{IDs: out, NextCursor: next}, nil
}

func paginate(list []twitter.UserID, cursor int64, pageSize int) (IDPage, error) {
	start := int64(0)
	if cursor != CursorFirst {
		start = cursor
	}
	if start < 0 || start > int64(len(list)) {
		return IDPage{}, fmt.Errorf("%w: %d over %d items", ErrBadCursor, cursor, len(list))
	}
	end := start + int64(pageSize)
	if end > int64(len(list)) {
		end = int64(len(list))
	}
	page := append([]twitter.UserID(nil), list[start:end]...)
	next := CursorDone
	if end < int64(len(list)) {
		next = end
	}
	return IDPage{IDs: page, NextCursor: next}, nil
}

// UsersLookup returns the profiles of up to 100 accounts. Unknown IDs are
// silently dropped, as the real endpoint does.
func (s *Service) UsersLookup(ids []twitter.UserID) ([]twitter.Profile, error) {
	if len(ids) > UsersLookupBatchSize {
		return nil, fmt.Errorf("%w: %d", ErrBatchTooLarge, len(ids))
	}
	return s.store.Profiles(ids), nil
}

// UsersShow resolves a single account by screen name.
func (s *Service) UsersShow(screenName string) (twitter.Profile, error) {
	id, err := s.store.LookupName(screenName)
	if err != nil {
		return twitter.Profile{}, err
	}
	return s.store.Profile(id)
}

// UserTimeline returns up to count most-recent tweets of the account, newest
// first. count is capped at the 200-per-request page size. A non-zero maxID
// restricts the page to tweets with ID <= maxID (the real API's max_id
// pagination; per-author tweet IDs decrease with age). Across pages, at most
// the newest TimelineCap (3,200) tweets are reachable.
func (s *Service) UserTimeline(id twitter.UserID, count int, maxID twitter.TweetID) ([]twitter.Tweet, error) {
	if count <= 0 || count > TimelinePageSize {
		count = TimelinePageSize
	}
	all, err := s.store.Timeline(id, TimelineCap)
	if err != nil {
		return nil, err
	}
	out := make([]twitter.Tweet, 0, count)
	for _, tw := range all {
		if maxID != 0 && tw.ID > maxID {
			continue
		}
		out = append(out, tw)
		if len(out) == count {
			break
		}
	}
	return out, nil
}
