package twitterapi

import (
	"errors"
	"fmt"

	"fakeproject/internal/drand"
	"fakeproject/internal/twitter"
)

// CursorFirst is the cursor value requesting the first page, and CursorDone
// is the next-cursor value signalling the end of pagination, mirroring the
// real API's -1 / 0 convention.
const (
	CursorFirst int64 = -1
	CursorDone  int64 = 0
)

// ErrBadCursor reports a cursor that does not belong to the paged list.
var ErrBadCursor = errors.New("twitterapi: invalid cursor")

// ErrBatchTooLarge reports a users/lookup batch above the 100-profile cap.
var ErrBatchTooLarge = errors.New("twitterapi: lookup batch exceeds 100 ids")

// Service exposes the endpoint logic over a twitter.Store. It performs no
// rate limiting or latency modelling — that is the transport clients' job —
// so that the same logic backs both the in-process client and the HTTP
// server.
type Service struct {
	store *twitter.Store
}

// NewService wraps a store.
func NewService(store *twitter.Store) *Service {
	return &Service{store: store}
}

// Store returns the underlying store (used by evaluation code, never by the
// simulated analytics).
func (s *Service) Store() *twitter.Store { return s.store }

// IDPage is one page of an ids endpoint.
type IDPage struct {
	IDs        []twitter.UserID
	NextCursor int64
}

// FollowerIDs returns one page of the target's follower IDs, newest follower
// first — the ordering property the paper verifies in Section IV-B. The
// cursor encodes the offset from the newest follower; pass CursorFirst to
// start and continue until NextCursor == CursorDone.
//
// Pages are read through Store.FollowersPage, which copies only the
// requested page: a full crawl of an n-follower target costs O(n) total
// rather than the O(n) *per page* a full-list copy would. Page and total
// come from one locked snapshot, so a list churning between calls can
// shift a crawl's view but never silently truncate a page's continuation.
func (s *Service) FollowerIDs(target twitter.UserID, cursor int64) (IDPage, error) {
	start := int64(0)
	if cursor != CursorFirst {
		start = cursor
	}
	if start < 0 {
		return IDPage{}, fmt.Errorf("%w: %d", ErrBadCursor, cursor)
	}
	page, total, err := s.store.FollowersPage(target, int(start), FollowerIDsPageSize)
	if err != nil {
		return IDPage{}, err
	}
	if start > int64(total) {
		return IDPage{}, fmt.Errorf("%w: %d over %d items", ErrBadCursor, cursor, total)
	}
	next := CursorDone
	if end := start + int64(len(page)); end < int64(total) {
		next = end
	}
	return IDPage{IDs: page, NextCursor: next}, nil
}

// FriendIDs returns one page of the account's friend list (accounts it
// follows), newest first. Accounts without a materialised friend list get a
// deterministic synthetic list consistent with their friends counter (see
// DESIGN.md: the full follow graph is not materialised).
func (s *Service) FriendIDs(id twitter.UserID, cursor int64) (IDPage, error) {
	if friends, ok := s.store.Friends(id); ok {
		return paginate(friends, cursor, FriendIDsPageSize)
	}
	count, err := s.store.FriendsCount(id)
	if err != nil {
		return IDPage{}, err
	}
	return paginate(s.synthFriends(id, count), cursor, FriendIDsPageSize)
}

// synthFriends deterministically fabricates a friend list for a
// procedurally-stored account: `count` distinct existing user IDs drawn from
// the account's seed stream.
func (s *Service) synthFriends(id twitter.UserID, count int) []twitter.UserID {
	n := s.store.UserCount()
	if count <= 0 || n <= 1 {
		return nil
	}
	if count > n-1 {
		count = n - 1
	}
	src := drand.New(uint64(id) * 2654435761).Fork("friends")
	out := make([]twitter.UserID, 0, count)
	seen := make(map[twitter.UserID]struct{}, count)
	for len(out) < count {
		cand := twitter.UserID(src.Int63n(int64(n)) + 1)
		if cand == id {
			continue
		}
		if _, dup := seen[cand]; dup {
			continue
		}
		seen[cand] = struct{}{}
		out = append(out, cand)
	}
	return out
}

func paginate(list []twitter.UserID, cursor int64, pageSize int) (IDPage, error) {
	start := int64(0)
	if cursor != CursorFirst {
		start = cursor
	}
	if start < 0 || start > int64(len(list)) {
		return IDPage{}, fmt.Errorf("%w: %d over %d items", ErrBadCursor, cursor, len(list))
	}
	end := start + int64(pageSize)
	if end > int64(len(list)) {
		end = int64(len(list))
	}
	page := append([]twitter.UserID(nil), list[start:end]...)
	next := CursorDone
	if end < int64(len(list)) {
		next = end
	}
	return IDPage{IDs: page, NextCursor: next}, nil
}

// UsersLookup returns the profiles of up to 100 accounts. Unknown IDs are
// silently dropped, as the real endpoint does.
func (s *Service) UsersLookup(ids []twitter.UserID) ([]twitter.Profile, error) {
	if len(ids) > UsersLookupBatchSize {
		return nil, fmt.Errorf("%w: %d", ErrBatchTooLarge, len(ids))
	}
	return s.store.Profiles(ids), nil
}

// UsersShow resolves a single account by screen name.
func (s *Service) UsersShow(screenName string) (twitter.Profile, error) {
	id, err := s.store.LookupName(screenName)
	if err != nil {
		return twitter.Profile{}, err
	}
	return s.store.Profile(id)
}

// UserTimeline returns up to count most-recent tweets of the account, newest
// first. count is capped at the 200-per-request page size. A non-zero maxID
// restricts the page to tweets with ID <= maxID (the real API's max_id
// pagination; per-author tweet IDs decrease with age). Across pages, at most
// the newest TimelineCap (3,200) tweets are reachable.
func (s *Service) UserTimeline(id twitter.UserID, count int, maxID twitter.TweetID) ([]twitter.Tweet, error) {
	if count <= 0 || count > TimelinePageSize {
		count = TimelinePageSize
	}
	all, err := s.store.Timeline(id, TimelineCap)
	if err != nil {
		return nil, err
	}
	out := make([]twitter.Tweet, 0, count)
	for _, tw := range all {
		if maxID != 0 && tw.ID > maxID {
			continue
		}
		out = append(out, tw)
		if len(out) == count {
			break
		}
	}
	return out, nil
}
