package twitterapi

import (
	"strconv"

	"fakeproject/internal/metrics"
	"fakeproject/internal/twitter"
)

// ObserveStore exports the store's per-shard operation counters into reg as
// store_shard_ops_total{shard} — the shard-heat signal the dashboard draws.
// The store itself stays metrics-free; daemons opt in here at assembly time.
func ObserveStore(reg *metrics.Registry, store *twitter.Store) {
	for i := 0; i < store.Shards(); i++ {
		i := i
		reg.CounterFunc("store_shard_ops_total",
			"Operations routed to each store shard (shard heat).",
			func() float64 { return float64(store.ShardOps()[i]) },
			metrics.L("shard", strconv.Itoa(i)))
	}
}
