package twitterapi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// Cursor-codec fuzzing. The follower cursor is the one piece of wire input
// a client fully controls: fabricated, truncated, bit-flipped and
// cross-target tokens all arrive here. The invariants, for ANY (cursor,
// target) pair:
//
//  1. decodeCursor never panics;
//  2. rejection is always ErrBadCursor (callers map it to the API's
//     code-44 response; any other error class would leak a 5xx);
//  3. anything accepted is canonical — it re-encodes, for that target, to
//     exactly the token that was presented. Fabricated tokens therefore
//     cannot smuggle in an out-of-range seq or masquerade as another
//     target's anchor: a 15-bit-checksum collision IS that target's
//     canonical token for that seq, indistinguishable by construction and
//     resolving to a harmless (correct) page for the colliding target.

// FuzzDecodeCursor throws arbitrary token/target pairs at the decoder.
func FuzzDecodeCursor(f *testing.F) {
	f.Add(int64(0), int64(1))
	f.Add(int64(-1), int64(1))
	f.Add(int64(1), int64(1))
	f.Add(encodeCursor(42, 12345), int64(42))   // well-formed
	f.Add(encodeCursor(42, 12345), int64(43))   // foreign target
	f.Add(encodeCursor(42, 12345)+1, int64(42)) // bit-flipped
	f.Add(encodeCursor(7, 1)>>13, int64(7))     // truncated
	f.Add(int64(1)<<62, int64(9))
	f.Add(int64(cursorSeqMask), int64(-5))
	f.Fuzz(func(t *testing.T, cursor int64, target int64) {
		seq, err := decodeCursor(twitter.UserID(target), cursor)
		if err != nil {
			if !errors.Is(err, ErrBadCursor) {
				t.Fatalf("decodeCursor(%d, %d): rejection is %v, want ErrBadCursor", target, cursor, err)
			}
			return
		}
		if seq == 0 || seq > cursorSeqMask {
			t.Fatalf("decodeCursor(%d, %d) accepted out-of-range seq %d", target, cursor, seq)
		}
		if re := encodeCursor(twitter.UserID(target), seq); re != cursor {
			t.Fatalf("decodeCursor(%d, %d) accepted non-canonical token: seq %d re-encodes to %d",
				target, cursor, seq, re)
		}
	})
}

// FuzzCursorRoundTrip is the well-formed half: every mintable cursor must
// survive the round trip, never collide with the CursorFirst/CursorDone
// sentinels, and decode under a different target only if it happens to be
// that target's canonical token too.
func FuzzCursorRoundTrip(f *testing.F) {
	f.Add(int64(1), uint64(1))
	f.Add(int64(1), uint64(cursorSeqMask))
	f.Add(int64(1<<40), uint64(999999))
	f.Add(int64(-3), uint64(77)) // IDs are positive in practice; codec must still hold
	f.Fuzz(func(t *testing.T, target int64, rawSeq uint64) {
		seq := rawSeq%cursorSeqMask + 1 // [1, cursorSeqMask]
		tgt := twitter.UserID(target)
		cursor := encodeCursor(tgt, seq)
		if cursor <= 0 {
			t.Fatalf("encodeCursor(%d, %d) = %d collides with the sentinel space", target, seq, cursor)
		}
		got, err := decodeCursor(tgt, cursor)
		if err != nil || got != seq {
			t.Fatalf("round trip (%d, %d): got %d, %v", target, seq, got, err)
		}
		other := twitter.UserID(target + 1)
		oseq, err := decodeCursor(other, cursor)
		switch {
		case err == nil:
			if encodeCursor(other, oseq) != cursor {
				t.Fatalf("target %d accepted target %d's token non-canonically", other, tgt)
			}
		case !errors.Is(err, ErrBadCursor):
			t.Fatalf("foreign-target rejection is %v, want ErrBadCursor", err)
		}
	})
}

// fuzzFixture is a small service shared by fuzz workers: one target with
// live edges, a purged hole in the middle of the seq space (so stale-anchor
// resolution is reachable), and a second target for cross-target checks.
var fuzzFixture struct {
	once   sync.Once
	svc    *Service
	target twitter.UserID
}

func fuzzService(tb testing.TB) (*Service, twitter.UserID) {
	fuzzFixture.once.Do(func() {
		clock := simclock.NewVirtualAtEpoch()
		store := twitter.NewStore(clock, 17)
		target := store.MustCreateUser(twitter.UserParams{ScreenName: "t"})
		at := simclock.Epoch.AddDate(0, -6, 0)
		followers := make([]twitter.UserID, 0, 120)
		for i := 0; i < 120; i++ {
			id := store.MustCreateUser(twitter.UserParams{})
			if err := store.AddFollower(target, id, at); err != nil {
				panic(err)
			}
			followers = append(followers, id)
			at = at.Add(time.Minute)
		}
		// Purge a band in the middle: seqs 41..80 become stale anchors.
		if _, err := store.RemoveFollowers(target, followers[40:80], at); err != nil {
			panic(err)
		}
		fuzzFixture.svc = NewService(store)
		fuzzFixture.target = target
	})
	return fuzzFixture.svc, fuzzFixture.target
}

// FuzzFollowerIDsCursor drives the full endpoint with arbitrary wire
// cursors: any outcome other than ErrBadCursor or a page the store itself
// would serve for the decoded anchor (a genuine suffix of the live list —
// never a fabricated, overlapping or phantom page) is a bug.
func FuzzFollowerIDsCursor(f *testing.F) {
	f.Add(int64(-1))
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(123456789))
	f.Add(int64(1) << 48)
	f.Fuzz(func(t *testing.T, cursor int64) {
		svc, target := fuzzService(t)
		page, err := svc.FollowerIDs(target, cursor)
		if err != nil {
			if !errors.Is(err, ErrBadCursor) {
				t.Fatalf("FollowerIDs(%d): %v, want ErrBadCursor", cursor, err)
			}
			return
		}
		fromSeq := twitter.SeqNewest
		if cursor != CursorFirst {
			seq, derr := decodeCursor(target, cursor)
			if derr != nil {
				t.Fatalf("FollowerIDs accepted cursor %d the codec rejects: %v", cursor, derr)
			}
			fromSeq = seq
		}
		want, werr := svc.Store().FollowersPage(target, fromSeq, FollowerIDsPageSize)
		if werr != nil {
			t.Fatalf("store page: %v", werr)
		}
		if len(page.IDs) != len(want.IDs) {
			t.Fatalf("cursor %d: page of %d IDs, store serves %d", cursor, len(page.IDs), len(want.IDs))
		}
		for i := range page.IDs {
			if page.IDs[i] != want.IDs[i] {
				t.Fatalf("cursor %d: ID %d is %d, store serves %d", cursor, i, page.IDs[i], want.IDs[i])
			}
		}
		if want.NextSeq == 0 && page.NextCursor != CursorDone {
			t.Fatalf("cursor %d: exhausted page advertises cursor %d", cursor, page.NextCursor)
		}
	})
}
