package twitterapi

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// newHTTPFixture serves a 12K-follower target over a real HTTP server and
// returns a client wired to the same virtual clock.
func newHTTPFixture(t *testing.T) (*HTTPClient, twitter.UserID, []twitter.UserID, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	target, err := store.CreateUser(twitter.UserParams{
		ScreenName: "target",
		CreatedAt:  simclock.Epoch.AddDate(-2, 0, 0),
		LastTweet:  simclock.Epoch.AddDate(0, 0, -3),
		Statuses:   300,
	})
	if err != nil {
		t.Fatal(err)
	}
	chrono := make([]twitter.UserID, 0, 12000)
	at := simclock.Epoch.AddDate(-1, 0, 0)
	for i := 0; i < 12000; i++ {
		id := store.MustCreateUser(twitter.UserParams{
			Statuses: 5, LastTweet: at, Friends: 10, Bio: true,
		})
		if err := store.AddFollower(target, id, at); err != nil {
			t.Fatal(err)
		}
		chrono = append(chrono, id)
		at = at.Add(time.Minute)
	}
	srv := httptest.NewServer(NewServer(NewService(store), clock))
	t.Cleanup(srv.Close)
	return NewHTTPClient(srv.URL, "test-token", clock), target, chrono, clock
}

func TestHTTPFollowerIDsRoundTrip(t *testing.T) {
	client, target, chrono, _ := newHTTPFixture(t)
	ids, err := AllFollowerIDs(client, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(chrono) {
		t.Fatalf("got %d ids, want %d", len(ids), len(chrono))
	}
	for i := range ids {
		if ids[i] != chrono[len(chrono)-1-i] {
			t.Fatalf("newest-first order violated over HTTP at %d", i)
		}
	}
}

// TestHTTPBadCursorIs400: a fabricated cursor comes back as a 400 with the
// API's "bad cursor" error code, not as a 404 user miss — clients must be
// able to distinguish "your token is garbage" from "no such account".
func TestHTTPBadCursorIs400(t *testing.T) {
	client, target, _, _ := newHTTPFixture(t)
	_, err := client.FollowerIDs(target, 99999)
	if err == nil {
		t.Fatal("fabricated cursor accepted over HTTP")
	}
	if !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("err = %v, want an HTTP 400", err)
	}
	// Opaque cursors minted by the server round-trip through the wire
	// format and keep working.
	first, err := client.FollowerIDs(target, CursorFirst)
	if err != nil || first.NextCursor == CursorDone {
		t.Fatalf("first page = %+v, %v", first, err)
	}
	second, err := client.FollowerIDs(target, first.NextCursor)
	if err != nil || len(second.IDs) != FollowerIDsPageSize {
		t.Fatalf("second page via wire cursor = %d ids, %v", len(second.IDs), err)
	}
}

func TestHTTPUserByScreenName(t *testing.T) {
	client, _, _, _ := newHTTPFixture(t)
	p, err := client.UserByScreenName("target")
	if err != nil {
		t.Fatal(err)
	}
	if p.ScreenName != "target" || p.FollowersCount != 12000 || p.StatusesCount != 300 {
		t.Fatalf("profile = %+v", p)
	}
	if p.LastTweetAt.IsZero() {
		t.Fatal("last_tweet_at lost in transit")
	}
	if _, err := client.UserByScreenName("ghost"); err == nil {
		t.Fatal("expected error for unknown user")
	} else if !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "not found") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

func TestHTTPUsersLookupRoundTrip(t *testing.T) {
	client, _, chrono, _ := newHTTPFixture(t)
	profiles, err := client.UsersLookup(chrono[:100])
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 100 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	p := profiles[0]
	if p.ID != chrono[0] || p.StatusesCount != 5 || p.FriendsCount != 10 {
		t.Fatalf("profile fields lost in transit: %+v", p)
	}
	if p.Bio == "" {
		t.Fatal("bio lost in transit")
	}
	if p.LastTweetAt.IsZero() {
		t.Fatal("last tweet lost in transit")
	}
}

func TestHTTPTimelineRoundTrip(t *testing.T) {
	client, target, _, _ := newHTTPFixture(t)
	tweets, err := client.UserTimeline(target, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) != 50 {
		t.Fatalf("got %d tweets", len(tweets))
	}
	for i := 1; i < len(tweets); i++ {
		if tweets[i].CreatedAt.After(tweets[i-1].CreatedAt) {
			t.Fatal("timeline order lost in transit")
		}
	}
}

func TestHTTPRateLimit429AndRecovery(t *testing.T) {
	client, target, _, clock := newHTTPFixture(t)
	// Burn the followers/ids budget (15/window) plus one: the 16th call
	// must transparently back off using Retry-After on the shared virtual
	// clock and then succeed.
	start := clock.Now()
	for i := 0; i < 16; i++ {
		if _, err := client.FollowerIDs(target, CursorFirst); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if elapsed := clock.Now().Sub(start); elapsed < RateWindow {
		t.Fatalf("virtual clock advanced only %v, want >= %v", elapsed, RateWindow)
	}
	// The retried calls are also counted (one retry for call 16).
	if client.Calls() != 17 {
		t.Fatalf("Calls = %d, want 17 (16 + 1 retry)", client.Calls())
	}
}

func TestHTTPRateLimitPerToken(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	target, _ := store.CreateUser(twitter.UserParams{ScreenName: "t"})
	srv := httptest.NewServer(NewServer(NewService(store), clock))
	t.Cleanup(srv.Close)

	a := NewHTTPClient(srv.URL, "token-a", clock)
	b := NewHTTPClient(srv.URL, "token-b", clock)
	// Token A burns its window.
	for i := 0; i < 15; i++ {
		if _, err := a.FollowerIDs(target, CursorFirst); err != nil {
			t.Fatal(err)
		}
	}
	// Token B must still be free: no clock advance.
	start := clock.Now()
	if _, err := b.FollowerIDs(target, CursorFirst); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != start {
		t.Fatal("token B was throttled by token A's usage")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	client, _, _, _ := newHTTPFixture(t)
	if _, err := client.FollowerIDs(99999, CursorFirst); err == nil {
		t.Fatal("unknown target should error")
	}
	big := make([]twitter.UserID, 101)
	if _, err := client.UsersLookup(big); err == nil {
		t.Fatal("oversized lookup should error client-side")
	}
}
