package twitterapi

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"fakeproject/internal/metrics"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// nopWriter discards the response, so these benchmarks measure the serving
// path rather than a recorder's buffering.
type nopWriter struct{ h http.Header }

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopWriter) WriteHeader(int)             {}

// benchServers builds a plain and an observed API server over the same
// service, so the pair isolates the cost of the instrumentation.
func benchServers(tb testing.TB, followers int) (plain, observed *Server, target twitter.UserID) {
	tb.Helper()
	svc, target := benchService(tb, followers, followers+1)
	clock := simclock.Real{}
	plain = NewServerLimits(svc, clock, nil)
	observed = NewServerObserved(svc, clock, nil, metrics.NewRegistry())
	return plain, observed, target
}

func followerIDsReq(target twitter.UserID) *http.Request {
	return httptest.NewRequest("GET",
		"/1.1/followers/ids.json?user_id="+strconv.FormatInt(int64(target), 10)+"&cursor=-1", nil)
}

func benchmarkFollowerIDsHTTP(b *testing.B, server *Server, target twitter.UserID) {
	req := followerIDsReq(target)
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server.ServeHTTP(w, req)
	}
}

// BenchmarkFollowerIDsHTTP serves a full 5K follower page through the HTTP
// front end, plain versus observed: the delta is the per-request price of
// the instrumentation, which must be a handful of atomics and no
// allocations (see TestObservedOverheadZeroAlloc for the hard pin).
func BenchmarkFollowerIDsHTTP(b *testing.B) {
	plain, observed, target := benchServers(b, 20000)
	b.Run("plain", func(b *testing.B) { benchmarkFollowerIDsHTTP(b, plain, target) })
	b.Run("observed", func(b *testing.B) { benchmarkFollowerIDsHTTP(b, observed, target) })
}

// TestObservedOverheadZeroAlloc pins the acceptance bound: wrapping the
// followers/ids hot path in the metrics middleware adds zero allocations
// per request.
func TestObservedOverheadZeroAlloc(t *testing.T) {
	plain, observed, target := benchServers(t, 20000)
	measure := func(s *Server) float64 {
		req := followerIDsReq(target)
		w := &nopWriter{h: make(http.Header)}
		s.ServeHTTP(w, req) // warm pools and lazily-built state
		return testing.AllocsPerRun(300, func() { s.ServeHTTP(w, req) })
	}
	plainAllocs := measure(plain)
	observedAllocs := measure(observed)
	if observedAllocs > plainAllocs {
		t.Errorf("observed server allocates more per request: %.1f vs %.1f plain",
			observedAllocs, plainAllocs)
	}
	t.Logf("allocs/request: plain %.1f, observed %.1f", plainAllocs, observedAllocs)
}
