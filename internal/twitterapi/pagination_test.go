package twitterapi

import (
	"testing"
	"testing/quick"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// TestPaginationCompletenessProperty: for any follower count, paging with
// the returned cursors yields every follower exactly once, newest first.
func TestPaginationCompletenessProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw % 13000)
		clock := simclock.NewVirtualAtEpoch()
		store := twitter.NewStore(clock, 1)
		store.Grow(n + 1)
		target := store.MustCreateUser(twitter.UserParams{})
		at := simclock.Epoch.AddDate(-1, 0, 0)
		for i := 0; i < n; i++ {
			id := store.MustCreateUser(twitter.UserParams{})
			if err := store.AddFollower(target, id, at); err != nil {
				return false
			}
			at = at.Add(time.Second)
		}
		svc := NewService(store)
		seen := make(map[twitter.UserID]bool, n)
		cursor := CursorFirst
		prev := twitter.UserID(1 << 62)
		for {
			page, err := svc.FollowerIDs(target, cursor)
			if err != nil {
				return false
			}
			for _, id := range page.IDs {
				if seen[id] {
					return false // duplicate across pages
				}
				seen[id] = true
				// IDs were created in follow order, so newest-first means
				// strictly decreasing IDs in this construction.
				if id >= prev {
					return false
				}
				prev = id
			}
			if page.NextCursor == CursorDone {
				break
			}
			cursor = page.NextCursor
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRateLimitWaitEqualsAnalyticModel: the DirectClient's total virtual
// time for k page fetches must equal the closed-form window arithmetic the
// crawl-cost experiment relies on.
func TestRateLimitWaitEqualsAnalyticModel(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	target := store.MustCreateUser(twitter.UserParams{})
	svc := NewService(store)
	for _, calls := range []int{1, 15, 16, 30, 31, 100} {
		start := clock.Now()
		c := NewDirectClient(svc, clock, ClientConfig{})
		for i := 0; i < calls; i++ {
			if _, err := c.FollowerIDs(target, CursorFirst); err != nil {
				t.Fatal(err)
			}
		}
		windows := (calls+14)/15 - 1
		want := time.Duration(windows) * RateWindow
		if got := clock.Now().Sub(start); got != want {
			t.Fatalf("%d calls: elapsed %v, want %v", calls, got, want)
		}
	}
}
