package twitterapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// HTTPClient implements Client over a real HTTP connection to a Server,
// honouring 429 rate-limit back-offs on the supplied clock. When the server
// runs in-process on the same virtual clock (as in the test suite and
// cmd/twitterd demos), a rate-limit sleep advances the shared clock and the
// retry succeeds immediately in real time.
type HTTPClient struct {
	base   string
	token  string
	clock  simclock.Clock
	client *http.Client
	// maxRetries bounds consecutive 429 retries per logical call.
	maxRetries int

	mu    sync.Mutex
	calls map[string]int
	total int
}

var _ Client = (*HTTPClient)(nil)

// sharedTransport is the connection pool behind every HTTPClient. The
// default transport keeps only two idle connections per host, which under a
// worker pool (auditd's remote backend) or the open-loop load generator
// means most requests pay a fresh TCP handshake; a generous per-host idle
// pool keeps the connections alive instead.
var sharedTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 256,
	IdleConnTimeout:     90 * time.Second,
}

// NewHTTPClient creates a client for the API server at base (e.g.
// "http://127.0.0.1:8080"), authenticating with the given bearer token.
func NewHTTPClient(base, token string, clock simclock.Clock) *HTTPClient {
	return &HTTPClient{
		base:       strings.TrimSuffix(base, "/"),
		token:      token,
		clock:      clock,
		client:     &http.Client{Timeout: 30 * time.Second, Transport: sharedTransport},
		maxRetries: 100,
		calls:      make(map[string]int),
	}
}

// defaultRetryAfter is the back-off used when a 429 carries no usable
// rate-limit headers at all.
const defaultRetryAfter = 60 * time.Second

// resetSkewTolerance bounds how far from now an X-Rate-Limit-Reset stamp is
// still trusted. Within it, a past stamp means "the window boundary already
// passed, retry now" and a future stamp is slept to. Beyond it — in either
// direction — the server is on a different clock (a virtual-epoch server
// behind a real-clock client, or vice versa), absolute times are
// meaningless, and only the relative Retry-After can be honoured.
const resetSkewTolerance = time.Hour

// retryBackoff computes how long to wait before retrying a 429, preferring
// the absolute X-Rate-Limit-Reset stamp over the relative Retry-After.
//
// The absolute form is what makes concurrent callers back off to the window
// boundary instead of past it: a relative Retry-After is computed at
// rejection time, so a sleeper that starts late — or a second goroutine
// whose sibling already slept the shared virtual clock across the boundary
// — over-sleeps by up to a whole window per waiter. Against the reset
// stamp, every waiter sleeps exactly to the boundary, and one whose clock
// is already past it retries immediately.
func retryBackoff(h http.Header, now time.Time) time.Duration {
	if raw := h.Get("X-Rate-Limit-Reset"); raw != "" {
		if epoch, err := strconv.ParseInt(raw, 10, 64); err == nil {
			switch d := time.Unix(epoch, 0).Sub(now); {
			case d > 0 && d <= resetSkewTolerance:
				return d
			case d <= 0 && d > -resetSkewTolerance:
				return 0
			}
			// Stamp far from now in either direction: clock domains
			// differ, fall through to the relative header.
		}
	}
	if secs, err := strconv.Atoi(h.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return defaultRetryAfter
}

func (c *HTTPClient) count(endpoint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls[endpoint]++
	c.total++
}

// get performs a GET with 429 retry handling and decodes JSON into out.
func (c *HTTPClient) get(endpoint, path string, params url.Values, out any) error {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodGet, c.base+path+"?"+params.Encode(), nil)
		if err != nil {
			return fmt.Errorf("building request: %w", err)
		}
		req.Header.Set("Authorization", "Bearer "+c.token)
		resp, err := c.client.Do(req)
		if err != nil {
			return fmt.Errorf("%s: %w", endpoint, err)
		}
		body, err := io.ReadAll(resp.Body)
		closeErr := resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: reading body: %w", endpoint, err)
		}
		if closeErr != nil {
			return fmt.Errorf("%s: closing body: %w", endpoint, closeErr)
		}
		c.count(endpoint)
		switch {
		case resp.StatusCode == http.StatusOK:
			if err := json.Unmarshal(body, out); err != nil {
				return fmt.Errorf("%s: decoding response: %w", endpoint, err)
			}
			return nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < c.maxRetries:
			if wait := retryBackoff(resp.Header, c.clock.Now()); wait > 0 {
				c.clock.Sleep(wait)
			}
		default:
			var apiErr errorJSON
			if json.Unmarshal(body, &apiErr) == nil && len(apiErr.Errors) > 0 {
				return fmt.Errorf("%s: HTTP %d: %s", endpoint, resp.StatusCode, apiErr.Errors[0].Message)
			}
			return fmt.Errorf("%s: HTTP %d", endpoint, resp.StatusCode)
		}
	}
}

// UserByScreenName implements Client.
func (c *HTTPClient) UserByScreenName(name string) (twitter.Profile, error) {
	params := url.Values{"screen_name": {name}}
	var u userJSON
	if err := c.get(EndpointUsersShow, "/1.1/users/show.json", params, &u); err != nil {
		return twitter.Profile{}, err
	}
	return decodeUser(u)
}

// FollowerIDs implements Client.
func (c *HTTPClient) FollowerIDs(target twitter.UserID, cursor int64) (IDPage, error) {
	return c.idsCall(EndpointFollowerIDs, "/1.1/followers/ids.json", target, cursor)
}

// FriendIDs implements Client.
func (c *HTTPClient) FriendIDs(id twitter.UserID, cursor int64) (IDPage, error) {
	return c.idsCall(EndpointFriendIDs, "/1.1/friends/ids.json", id, cursor)
}

func (c *HTTPClient) idsCall(endpoint, path string, id twitter.UserID, cursor int64) (IDPage, error) {
	params := url.Values{
		"user_id": {strconv.FormatInt(int64(id), 10)},
		"cursor":  {strconv.FormatInt(cursor, 10)},
	}
	var page idPageJSON
	if err := c.get(endpoint, path, params, &page); err != nil {
		return IDPage{}, err
	}
	ids := make([]twitter.UserID, len(page.IDs))
	for i, v := range page.IDs {
		ids[i] = twitter.UserID(v)
	}
	return IDPage{IDs: ids, NextCursor: page.NextCursor}, nil
}

// UsersLookup implements Client.
func (c *HTTPClient) UsersLookup(ids []twitter.UserID) ([]twitter.Profile, error) {
	if len(ids) > UsersLookupBatchSize {
		return nil, fmt.Errorf("%w: %d", ErrBatchTooLarge, len(ids))
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatInt(int64(id), 10)
	}
	params := url.Values{"user_id": {strings.Join(parts, ",")}}
	var users []userJSON
	if err := c.get(EndpointUsersLookup, "/1.1/users/lookup.json", params, &users); err != nil {
		return nil, err
	}
	out := make([]twitter.Profile, 0, len(users))
	for _, u := range users {
		p, err := decodeUser(u)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// UserTimeline implements Client.
func (c *HTTPClient) UserTimeline(id twitter.UserID, count int, maxID twitter.TweetID) ([]twitter.Tweet, error) {
	params := url.Values{
		"user_id": {strconv.FormatInt(int64(id), 10)},
		"count":   {strconv.Itoa(count)},
	}
	if maxID != 0 {
		params.Set("max_id", strconv.FormatInt(int64(maxID), 10))
	}
	var tweets []tweetJSON
	if err := c.get(EndpointUserTimeline, "/1.1/statuses/user_timeline.json", params, &tweets); err != nil {
		return nil, err
	}
	out := make([]twitter.Tweet, 0, len(tweets))
	for _, t := range tweets {
		tw, err := decodeTweet(t)
		if err != nil {
			return nil, err
		}
		out = append(out, tw)
	}
	return out, nil
}

// Calls implements Client.
func (c *HTTPClient) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// CallsByEndpoint implements Client.
func (c *HTTPClient) CallsByEndpoint() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.calls))
	for k, v := range c.calls {
		out[k] = v
	}
	return out
}
