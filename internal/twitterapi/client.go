package twitterapi

import (
	"fmt"
	"sync"
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/ratelimit"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// Client is the API surface the analytics engines consume. Implementations
// account every API call and model its cost in (virtual) time, because the
// paper's Table II is precisely a measurement of that cost.
type Client interface {
	// UserByScreenName resolves a profile by screen name (users/show).
	UserByScreenName(name string) (twitter.Profile, error)
	// FollowerIDs fetches one newest-first page of follower IDs.
	FollowerIDs(target twitter.UserID, cursor int64) (IDPage, error)
	// FriendIDs fetches one page of the account's friend list.
	FriendIDs(id twitter.UserID, cursor int64) (IDPage, error)
	// UsersLookup fetches up to 100 profiles in one call.
	UsersLookup(ids []twitter.UserID) ([]twitter.Profile, error)
	// UserTimeline fetches up to count recent tweets in one call (≤200),
	// restricted to IDs <= maxID when maxID is non-zero.
	UserTimeline(id twitter.UserID, count int, maxID twitter.TweetID) ([]twitter.Tweet, error)
	// Calls reports the number of API calls performed so far.
	Calls() int
	// CallsByEndpoint reports per-endpoint call counts.
	CallsByEndpoint() map[string]int
}

// ClientConfig tunes a client's cost model.
type ClientConfig struct {
	// PerCallLatency is the mean simulated cost of one API call (network
	// round trip + the consumer's own processing). Zero means free calls.
	PerCallLatency time.Duration
	// LatencyJitter is the relative jitter applied to PerCallLatency,
	// e.g. 0.2 draws uniformly from [0.8L, 1.2L].
	LatencyJitter float64
	// Tokens is how many API tokens the consumer spreads calls over.
	// Twitter rate limits are per token, so budgets scale linearly.
	// Zero means one token.
	Tokens int
	// Seed drives the jitter stream.
	Seed uint64
}

func (c ClientConfig) tokens() int {
	if c.Tokens <= 0 {
		return 1
	}
	return c.Tokens
}

// DirectClient calls the Service in-process, enforcing Table I budgets and
// advancing its clock by the rate-limit waits and per-call latencies.
// It is safe for concurrent use, though the virtual-clock cost model assumes
// the caller issues calls sequentially (which all the paper's pipelines do).
type DirectClient struct {
	svc     *Service
	clock   simclock.Clock
	limiter *ratelimit.Limiter
	cfg     ClientConfig

	mu    sync.Mutex
	src   *drand.Source
	calls map[string]int
	total int
}

var _ Client = (*DirectClient)(nil)

// NewDirectClient builds a client over the service with its own rate-limit
// state (its own tokens), using Table I budgets scaled by cfg.Tokens.
func NewDirectClient(svc *Service, clock simclock.Clock, cfg ClientConfig) *DirectClient {
	limits := DefaultLimits()
	for k, lim := range limits {
		lim.Requests *= cfg.tokens()
		limits[k] = lim
	}
	return &DirectClient{
		svc:     svc,
		clock:   clock,
		limiter: ratelimit.New(clock, limits),
		cfg:     cfg,
		src:     drand.New(cfg.Seed),
		calls:   make(map[string]int),
	}
}

// pay books one rate-limit slot and simulates the call's latency.
func (c *DirectClient) pay(endpoint string) {
	wait := c.limiter.Reserve(endpoint)
	if wait > 0 {
		c.clock.Sleep(wait)
	}
	lat := c.cfg.PerCallLatency
	if lat > 0 && c.cfg.LatencyJitter > 0 {
		c.mu.Lock()
		f := 1 + c.cfg.LatencyJitter*(2*c.src.Float64()-1)
		c.mu.Unlock()
		lat = time.Duration(float64(lat) * f)
	}
	if lat > 0 {
		c.clock.Sleep(lat)
	}
	c.mu.Lock()
	c.calls[endpoint]++
	c.total++
	c.mu.Unlock()
}

// UserByScreenName implements Client.
func (c *DirectClient) UserByScreenName(name string) (twitter.Profile, error) {
	c.pay(EndpointUsersShow)
	return c.svc.UsersShow(name)
}

// FollowerIDs implements Client.
func (c *DirectClient) FollowerIDs(target twitter.UserID, cursor int64) (IDPage, error) {
	c.pay(EndpointFollowerIDs)
	return c.svc.FollowerIDs(target, cursor)
}

// FriendIDs implements Client.
func (c *DirectClient) FriendIDs(id twitter.UserID, cursor int64) (IDPage, error) {
	c.pay(EndpointFriendIDs)
	return c.svc.FriendIDs(id, cursor)
}

// UsersLookup implements Client.
func (c *DirectClient) UsersLookup(ids []twitter.UserID) ([]twitter.Profile, error) {
	c.pay(EndpointUsersLookup)
	return c.svc.UsersLookup(ids)
}

// UserTimeline implements Client.
func (c *DirectClient) UserTimeline(id twitter.UserID, count int, maxID twitter.TweetID) ([]twitter.Tweet, error) {
	c.pay(EndpointUserTimeline)
	return c.svc.UserTimeline(id, count, maxID)
}

// Calls implements Client.
func (c *DirectClient) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// CallsByEndpoint implements Client.
func (c *DirectClient) CallsByEndpoint() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.calls))
	for k, v := range c.calls {
		out[k] = v
	}
	return out
}

// Clock returns the clock driving this client's cost model.
func (c *DirectClient) Clock() simclock.Clock { return c.clock }

// --- High-level helpers shared by every consumer of a Client. ---

// AllFollowerIDs pages through the complete follower list of target,
// newest first — the Fake Project engine's first step ("it requests the
// complete list of followers").
//
// Cursors are edge-anchored, so the crawl is churn-proof: followers who
// join after a page was served are not revisited (no duplicates), edges
// that survive the whole crawl are never skipped, and a purge racing the
// crawl ends it with a short final page instead of an error. The result is
// a consistent newest-first sweep of the list as it stood when each page
// was cut — the only coherent answer a 27-day crawl of a moving list can
// give.
func AllFollowerIDs(c Client, target twitter.UserID) ([]twitter.UserID, error) {
	var out []twitter.UserID
	cursor := CursorFirst
	for {
		page, err := c.FollowerIDs(target, cursor)
		if err != nil {
			return nil, fmt.Errorf("paging followers: %w", err)
		}
		out = append(out, page.IDs...)
		if page.NextCursor == CursorDone {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// FollowerIDsUpTo pages through at most max newest follower IDs — the
// commercial tools' crawling scheme ("the followers taken into consideration
// are just the latest ones to have joined"). Like AllFollowerIDs, the
// anchored cursors make the window crawl churn-proof.
func FollowerIDsUpTo(c Client, target twitter.UserID, max int) ([]twitter.UserID, error) {
	var out []twitter.UserID
	cursor := CursorFirst
	for len(out) < max {
		page, err := c.FollowerIDs(target, cursor)
		if err != nil {
			return nil, fmt.Errorf("paging followers: %w", err)
		}
		out = append(out, page.IDs...)
		if page.NextCursor == CursorDone {
			break
		}
		cursor = page.NextCursor
	}
	if len(out) > max {
		out = out[:max]
	}
	return out, nil
}

// LookupMany fetches profiles for an arbitrary number of IDs in 100-sized
// users/lookup batches, preserving input order (minus unknown IDs).
func LookupMany(c Client, ids []twitter.UserID) ([]twitter.Profile, error) {
	out := make([]twitter.Profile, 0, len(ids))
	for start := 0; start < len(ids); start += UsersLookupBatchSize {
		end := start + UsersLookupBatchSize
		if end > len(ids) {
			end = len(ids)
		}
		batch, err := c.UsersLookup(ids[start:end])
		if err != nil {
			return nil, fmt.Errorf("users/lookup batch at %d: %w", start, err)
		}
		out = append(out, batch...)
	}
	return out, nil
}

// FullTimeline pages through up to the 3,200 retrievable tweets of an
// account (or fewer if max < 3200), using max_id pagination.
func FullTimeline(c Client, id twitter.UserID, max int) ([]twitter.Tweet, error) {
	if max <= 0 || max > TimelineCap {
		max = TimelineCap
	}
	var out []twitter.Tweet
	var maxID twitter.TweetID
	for len(out) < max {
		count := max - len(out)
		if count > TimelinePageSize {
			count = TimelinePageSize
		}
		page, err := c.UserTimeline(id, count, maxID)
		if err != nil {
			return nil, fmt.Errorf("user_timeline page: %w", err)
		}
		if len(page) == 0 {
			break
		}
		out = append(out, page...)
		maxID = page[len(page)-1].ID - 1
		if maxID <= 0 {
			break
		}
	}
	return out, nil
}
