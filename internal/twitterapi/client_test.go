package twitterapi

import (
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

func TestDirectClientAccountsCalls(t *testing.T) {
	store, target, _ := buildTarget(t, 12000)
	svc := NewService(store)
	clock := simclock.NewVirtualAtEpoch()
	client := NewDirectClient(svc, clock, ClientConfig{})

	ids, err := AllFollowerIDs(client, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 12000 {
		t.Fatalf("got %d ids", len(ids))
	}
	if client.Calls() != 3 {
		t.Fatalf("Calls = %d, want 3", client.Calls())
	}
	by := client.CallsByEndpoint()
	if by[EndpointFollowerIDs] != 3 {
		t.Fatalf("CallsByEndpoint = %v", by)
	}
}

func TestDirectClientLatencyModel(t *testing.T) {
	store, target, _ := buildTarget(t, 12000)
	svc := NewService(store)
	clock := simclock.NewVirtualAtEpoch()
	client := NewDirectClient(svc, clock, ClientConfig{PerCallLatency: 2 * time.Second})
	start := clock.Now()
	if _, err := AllFollowerIDs(client, target); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start)
	if elapsed != 6*time.Second {
		t.Fatalf("3 calls at 2s = %v, want 6s", elapsed)
	}
}

func TestDirectClientLatencyJitterBounded(t *testing.T) {
	store, target, _ := buildTarget(t, 100)
	svc := NewService(store)
	clock := simclock.NewVirtualAtEpoch()
	client := NewDirectClient(svc, clock, ClientConfig{
		PerCallLatency: time.Second, LatencyJitter: 0.25, Seed: 9,
	})
	start := clock.Now()
	for i := 0; i < 10; i++ {
		if _, err := client.FollowerIDs(target, CursorFirst); err != nil {
			t.Fatal(err)
		}
	}
	per := clock.Now().Sub(start) / 10
	if per < 750*time.Millisecond || per > 1250*time.Millisecond {
		t.Fatalf("mean per-call latency %v outside jitter bounds", per)
	}
}

func TestDirectClientRateLimitKicksIn(t *testing.T) {
	// 16 followers/ids calls exceed the 15-per-window budget: the 16th must
	// wait for the window to roll.
	store, target, _ := buildTarget(t, 80000) // 16 pages
	svc := NewService(store)
	clock := simclock.NewVirtualAtEpoch()
	client := NewDirectClient(svc, clock, ClientConfig{})
	start := clock.Now()
	ids, err := AllFollowerIDs(client, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 80000 {
		t.Fatalf("got %d ids", len(ids))
	}
	if elapsed := clock.Now().Sub(start); elapsed != RateWindow {
		t.Fatalf("elapsed = %v, want one window (%v)", elapsed, RateWindow)
	}
}

func TestDirectClientMultipleTokens(t *testing.T) {
	// With 2 tokens the 16-page crawl fits in the doubled burst budget.
	store, target, _ := buildTarget(t, 80000)
	svc := NewService(store)
	clock := simclock.NewVirtualAtEpoch()
	client := NewDirectClient(svc, clock, ClientConfig{Tokens: 2})
	start := clock.Now()
	if _, err := AllFollowerIDs(client, target); err != nil {
		t.Fatal(err)
	}
	if elapsed := clock.Now().Sub(start); elapsed != 0 {
		t.Fatalf("elapsed = %v, want 0 with doubled budget", elapsed)
	}
}

func TestFollowerIDsUpTo(t *testing.T) {
	store, target, chrono := buildTarget(t, 12000)
	svc := NewService(store)
	clock := simclock.NewVirtualAtEpoch()
	client := NewDirectClient(svc, clock, ClientConfig{})
	got, err := FollowerIDsUpTo(client, target, 7000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7000 {
		t.Fatalf("got %d ids, want 7000", len(got))
	}
	// Must be the NEWEST 7000.
	for i := 0; i < 7000; i++ {
		if got[i] != chrono[len(chrono)-1-i] {
			t.Fatalf("newest-window content wrong at %d", i)
		}
	}
	if client.Calls() != 2 {
		t.Fatalf("Calls = %d, want 2 pages", client.Calls())
	}
}

func TestFollowerIDsUpToShortList(t *testing.T) {
	store, target, _ := buildTarget(t, 100)
	svc := NewService(store)
	client := NewDirectClient(svc, simclock.NewVirtualAtEpoch(), ClientConfig{})
	got, err := FollowerIDsUpTo(client, target, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d, want all 100", len(got))
	}
}

func TestLookupManyBatches(t *testing.T) {
	store, _, chrono := buildTarget(t, 250)
	svc := NewService(store)
	client := NewDirectClient(svc, simclock.NewVirtualAtEpoch(), ClientConfig{})
	profiles, err := LookupMany(client, chrono)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 250 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	if client.CallsByEndpoint()[EndpointUsersLookup] != 3 {
		t.Fatalf("calls = %v, want 3 lookup batches", client.CallsByEndpoint())
	}
	for i, p := range profiles {
		if p.ID != chrono[i] {
			t.Fatalf("order not preserved at %d", i)
		}
	}
}

func TestUserByScreenName(t *testing.T) {
	store, _, _ := buildTarget(t, 5)
	svc := NewService(store)
	client := NewDirectClient(svc, simclock.NewVirtualAtEpoch(), ClientConfig{})
	p, err := client.UserByScreenName("target")
	if err != nil || p.ScreenName != "target" {
		t.Fatalf("UserByScreenName = %+v, %v", p, err)
	}
}

func TestObamaScaleCrawlTime(t *testing.T) {
	// Analytic sanity check behind the paper's "27 days" claim, exercised
	// through the real limiter at reduced scale: fetching 600K follower IDs
	// (120 pages) at 15 pages per 15-minute window takes 7 windows of
	// waiting = 105 minutes.
	store, target, _ := buildTarget(t, 0)
	_ = target
	svc := NewService(store)
	clock := simclock.NewVirtualAtEpoch()
	client := NewDirectClient(svc, clock, ClientConfig{})
	start := clock.Now()
	for i := 0; i < 120; i++ {
		// Empty target: each call is a page fetch of an empty list, but it
		// still burns a rate-limit slot, which is what we are measuring.
		if _, err := client.FollowerIDs(target, CursorFirst); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clock.Now().Sub(start)
	if want := 7 * RateWindow; elapsed != want {
		t.Fatalf("120 pages elapsed = %v, want %v", elapsed, want)
	}
}
