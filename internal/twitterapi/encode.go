package twitterapi

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
)

//fp:hotpath

// The serving hot path: followers/ids and friends/ids responses are staged
// in pooled buffers and hand-encoded with strconv so a 5,000-ID page (~60KB
// of JSON) costs no reflection and no intermediate []int64 copy. fpvet's
// hotpathalloc analyzer holds this file to that budget; reflective encoders
// (writeJSON, writeError) live in http.go, off the hot path, on purpose.

// responseBuffers recycles the per-response encode buffers. Responses are
// staged in a buffer and written in one shot so the server can set
// Content-Length (keeping keep-alive connections parseable without chunking)
// and so the hot endpoints do not allocate a fresh encoder state per call.
var responseBuffers = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuffer bounds what goes back in the pool: a celebrity follower
// page is ~60KB, so anything larger is an outlier not worth retaining.
const maxPooledBuffer = 1 << 18

func writeBuffered(w http.ResponseWriter, status int, buf *bytes.Buffer) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuffer {
		responseBuffers.Put(buf)
	}
}

// writeIDPage emits an ids page without reflection or an intermediate
// []int64 copy — followers/ids is the fattest response on the wire (5,000
// IDs ≈ 60KB of JSON) and the one the load harness leans on hardest.
func writeIDPage(w http.ResponseWriter, page IDPage) {
	buf := responseBuffers.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`{"ids":[`)
	scratch := make([]byte, 0, 20)
	for i, id := range page.IDs {
		if i > 0 {
			buf.WriteByte(',')
		}
		scratch = strconv.AppendInt(scratch[:0], int64(id), 10)
		buf.Write(scratch)
	}
	buf.WriteString(`],"next_cursor":`)
	buf.Write(strconv.AppendInt(scratch[:0], page.NextCursor, 10))
	buf.WriteString("}\n")
	writeBuffered(w, http.StatusOK, buf)
}
