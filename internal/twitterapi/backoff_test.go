package twitterapi

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

func headerWith(pairs ...string) http.Header {
	h := http.Header{}
	for i := 0; i < len(pairs); i += 2 {
		h.Set(pairs[i], pairs[i+1])
	}
	return h
}

func TestRetryBackoff(t *testing.T) {
	now := simclock.Epoch
	epoch := func(d time.Duration) string {
		return strconv.FormatInt(now.Add(d).Unix(), 10)
	}
	cases := []struct {
		name string
		h    http.Header
		want time.Duration
	}{
		{"reset in the future wins over Retry-After",
			headerWith("X-Rate-Limit-Reset", epoch(90*time.Second), "Retry-After", "900"),
			90 * time.Second},
		{"reset just passed means retry now, not another window",
			headerWith("X-Rate-Limit-Reset", epoch(-2*time.Second), "Retry-After", "900"),
			0},
		{"reset from a different clock domain falls back to Retry-After",
			headerWith("X-Rate-Limit-Reset", epoch(-2*365*24*time.Hour), "Retry-After", "30"),
			30 * time.Second},
		{"reset far in the future falls back too (server clock ahead)",
			headerWith("X-Rate-Limit-Reset", epoch(48*time.Hour), "Retry-After", "60"),
			60 * time.Second},
		{"unparseable reset falls back to Retry-After",
			headerWith("X-Rate-Limit-Reset", "soon", "Retry-After", "45"),
			45 * time.Second},
		{"no headers at all uses the conservative default",
			headerWith(),
			defaultRetryAfter},
		{"negative Retry-After uses the conservative default",
			headerWith("Retry-After", "-3"),
			defaultRetryAfter},
	}
	for _, tc := range cases {
		if got := retryBackoff(tc.h, now); got != tc.want {
			t.Errorf("%s: retryBackoff = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestStale429DoesNotOverSleep is the regression for the open-loop-generator
// failure mode: a 429 whose rate-limit headers were stamped before the
// window boundary passed. The old client honoured the relative Retry-After
// verbatim and slept a whole extra window; the fixed client sees from
// X-Rate-Limit-Reset that the boundary is already behind it and retries
// immediately.
func TestStale429DoesNotOverSleep(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	windowEnd := clock.Now().Add(15 * time.Minute)

	var mu sync.Mutex
	rejections := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if clock.Now().Before(windowEnd) {
			rejections++
			// Headers stamped for the window boundary, as the real server
			// does; Retry-After is relative to the stamping instant.
			w.Header().Set("Retry-After", "900")
			w.Header().Set("X-Rate-Limit-Reset", strconv.FormatInt(windowEnd.Unix(), 10))
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ids":[1],"next_cursor":0}`))
	}))
	defer srv.Close()

	client := NewHTTPClient(srv.URL, "tok", clock)

	// First call: rejected once, sleeps exactly to the boundary, succeeds.
	if _, err := client.FollowerIDs(1, CursorFirst); err != nil {
		t.Fatal(err)
	}
	if slept := clock.Slept(); slept != 15*time.Minute {
		t.Fatalf("slept %v to reach the boundary, want exactly %v", slept, 15*time.Minute)
	}

	// Second call: the boundary has passed. Even if a racing sibling's 429
	// were still in flight, its headers would be stale — simulate that by
	// pinning the clock past windowEnd and confirming no further sleep ever
	// happens (the old code would have slept Retry-After's full 900s here
	// on any rejection carrying stale headers).
	if _, err := client.FollowerIDs(1, CursorFirst); err != nil {
		t.Fatal(err)
	}
	if slept := clock.Slept(); slept != 15*time.Minute {
		t.Fatalf("total slept %v after boundary passed, want still %v", slept, 15*time.Minute)
	}
	if rejections != 1 {
		t.Fatalf("server rejected %d times, want 1 (no hammering, no redundant retries)", rejections)
	}
}

// TestServerAdvertisesReset pins the server half of the contract: a 429
// carries an X-Rate-Limit-Reset stamp that is never before the true window
// boundary.
func TestServerAdvertisesReset(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	target := store.MustCreateUser(twitter.UserParams{ScreenName: "t"})
	srv := httptest.NewServer(NewServer(NewService(store), clock))
	defer srv.Close()

	get := func() *http.Response {
		req, err := http.NewRequest(http.MethodGet,
			srv.URL+"/1.1/followers/ids.json?user_id="+strconv.FormatInt(int64(target), 10)+"&cursor=-1", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer reset-probe")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	start := clock.Now()
	for i := 0; i < 15; i++ {
		if resp := get(); resp.StatusCode != http.StatusOK {
			t.Fatalf("call %d: status %d", i, resp.StatusCode)
		}
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("16th call: status %d, want 429", resp.StatusCode)
	}
	raw := resp.Header.Get("X-Rate-Limit-Reset")
	if raw == "" {
		t.Fatal("429 carries no X-Rate-Limit-Reset")
	}
	epoch, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("bad reset stamp %q: %v", raw, err)
	}
	boundary := start.Add(RateWindow)
	reset := time.Unix(epoch, 0)
	if reset.Before(boundary) {
		t.Fatalf("reset %v is before the window boundary %v", reset, boundary)
	}
	if reset.After(boundary.Add(time.Second)) {
		t.Fatalf("reset %v overshoots the boundary %v by more than the ceil second", reset, boundary)
	}
}
