package twitterapi

import (
	"fmt"
	"testing"
	"time"

	"fakeproject/internal/benchjson"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// benchService builds a service over a store with one target carrying
// `followers` materialised edges and `users` total accounts.
func benchService(tb testing.TB, followers, users int) (*Service, twitter.UserID) {
	tb.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	store.Grow(users)
	target := store.MustCreateUser(twitter.UserParams{ScreenName: "t"})
	at := simclock.Epoch.AddDate(-1, 0, 0)
	for i := 0; i < followers; i++ {
		id := store.MustCreateUser(twitter.UserParams{})
		if err := store.AddFollower(target, id, at); err != nil {
			tb.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	for n := store.UserCount(); n < users; n++ {
		store.MustCreateUser(twitter.UserParams{Friends: 100})
	}
	return NewService(store), target
}

// BenchmarkFollowerIDsPage measures one 5K follower page served from a
// 100K list through the full cursor path: decode the opaque token, binary-
// search the seq anchor, copy the page, mint the next token. Anchors
// rotate through the list so the search depth is representative.
func BenchmarkFollowerIDsPage(b *testing.B) {
	svc, target := benchService(b, 100000, 100001)
	cursors := make([]int64, 19)
	for i := range cursors {
		cursors[i] = encodeCursor(target, uint64((i+1)*5000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := svc.FollowerIDs(target, cursors[i%len(cursors)])
		if err != nil || len(page.IDs) != FollowerIDsPageSize {
			b.Fatalf("page = %d ids, %v", len(page.IDs), err)
		}
	}
}

// benchmarkSynthFriends serves the first synthetic friends page of an
// account with the given friends counter. The point of the suite is the
// *flatness* across counts: each 5K page must cost the same whether the
// account follows 5K or 200K others — the old implementation fabricated
// (and re-fabricated, every call) the entire list first.
func benchmarkSynthFriends(b *testing.B, count int) {
	svc, _ := benchService(b, 0, 250001)
	id := svc.store.MustCreateUser(twitter.UserParams{Friends: count})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := svc.FriendIDs(id, CursorFirst)
		if err != nil || len(page.IDs) != FriendIDsPageSize {
			b.Fatalf("page = %d ids, %v", len(page.IDs), err)
		}
	}
}

func BenchmarkSynthFriendsPage(b *testing.B) {
	for _, count := range []int{5000, 50000, 200000} {
		b.Run(fmt.Sprintf("friends=%d", count), func(b *testing.B) {
			benchmarkSynthFriends(b, count)
		})
	}
}

// TestBenchJSON emits BENCH_twitterapi.json with the suite's representative
// numbers when BENCH_JSON=<dir> is set (the CI bench step):
//
//	BENCH_JSON=. go test ./internal/twitterapi -run BenchJSON
func TestBenchJSON(t *testing.T) {
	if !benchjson.Enabled() {
		t.Skipf("set %s=<dir> to emit benchmark JSON", benchjson.EnvVar)
	}
	results := []benchjson.Result{
		benchjson.Measure("FollowerIDsPage/followers=100000", BenchmarkFollowerIDsPage),
	}
	// The plain/observed HTTP pair pins the per-request cost of the metrics
	// middleware on the hot path; the delta between the two is the number
	// that must stay flat across commits.
	plainSrv, observedSrv, httpTarget := benchServers(t, 20000)
	results = append(results,
		benchjson.Measure("FollowerIDsHTTP/plain",
			func(b *testing.B) { benchmarkFollowerIDsHTTP(b, plainSrv, httpTarget) }),
		benchjson.Measure("FollowerIDsHTTP/observed",
			func(b *testing.B) { benchmarkFollowerIDsHTTP(b, observedSrv, httpTarget) }),
	)
	for _, count := range []int{5000, 50000, 200000} {
		count := count
		results = append(results, benchjson.Measure(
			fmt.Sprintf("SynthFriendsPage/friends=%d", count),
			func(b *testing.B) { benchmarkSynthFriends(b, count) },
		))
	}
	path, err := benchjson.Write("twitterapi", results)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
