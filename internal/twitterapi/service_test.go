package twitterapi

import (
	"errors"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// buildTarget creates a store with one target that has n followers, following
// in strict chronological order, and returns (store, target, chronological
// follower IDs).
func buildTarget(t *testing.T, n int) (*twitter.Store, twitter.UserID, []twitter.UserID) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	target, err := store.CreateUser(twitter.UserParams{ScreenName: "target"})
	if err != nil {
		t.Fatal(err)
	}
	chrono := make([]twitter.UserID, 0, n)
	for i := 0; i < n; i++ {
		id := store.MustCreateUser(twitter.UserParams{Statuses: 1, LastTweet: clock.Now()})
		if err := store.AddFollower(target, id, clock.Now()); err != nil {
			t.Fatal(err)
		}
		chrono = append(chrono, id)
		clock.Advance(time.Second)
	}
	return store, target, chrono
}

func TestTableIRows(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(rows))
	}
	want := map[string][2]int{
		"GET followers/ids":          {5000, 1},
		"GET friends/ids":            {5000, 1},
		"GET users/lookup":           {100, 12},
		"GET statuses/user_timeline": {200, 12},
	}
	for _, row := range rows {
		w, ok := want[row.Endpoint]
		if !ok {
			t.Fatalf("unexpected endpoint %q", row.Endpoint)
		}
		if row.ElementsPerRequest != w[0] || row.RequestsPerMinute != w[1] {
			t.Fatalf("row %q = %+v, want %v", row.Endpoint, row, w)
		}
	}
}

func TestDefaultLimitsMatchTableI(t *testing.T) {
	limits := DefaultLimits()
	for _, row := range TableI() {
		key := row.Endpoint[len("GET "):]
		lim, ok := limits[key]
		if !ok {
			t.Fatalf("no limit for %q", key)
		}
		if got := lim.PerMinute(); got != float64(row.RequestsPerMinute) {
			t.Fatalf("%s PerMinute = %v, want %d", key, got, row.RequestsPerMinute)
		}
	}
}

func TestFollowerIDsNewestFirstAcrossPages(t *testing.T) {
	store, target, chrono := buildTarget(t, 12000)
	svc := NewService(store)

	var got []twitter.UserID
	cursor := CursorFirst
	pages := 0
	for {
		page, err := svc.FollowerIDs(target, cursor)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.IDs...)
		pages++
		if page.NextCursor == CursorDone {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 {
		t.Fatalf("12000 followers should page in 3 calls, got %d", pages)
	}
	if len(got) != len(chrono) {
		t.Fatalf("got %d ids, want %d", len(got), len(chrono))
	}
	// The API must return the newest follower first (Section IV-B).
	for i, id := range got {
		if id != chrono[len(chrono)-1-i] {
			t.Fatalf("order violated at position %d", i)
		}
	}
}

func TestFollowerIDsPageSizes(t *testing.T) {
	store, target, _ := buildTarget(t, 12000)
	svc := NewService(store)
	page, err := svc.FollowerIDs(target, CursorFirst)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.IDs) != FollowerIDsPageSize {
		t.Fatalf("first page = %d ids, want %d", len(page.IDs), FollowerIDsPageSize)
	}
	second, err := svc.FollowerIDs(target, page.NextCursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.IDs) != FollowerIDsPageSize {
		t.Fatalf("second page = %d ids, want %d", len(second.IDs), FollowerIDsPageSize)
	}
	last, err := svc.FollowerIDs(target, second.NextCursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(last.IDs) != 2000 || last.NextCursor != CursorDone {
		t.Fatalf("last page = %d ids next=%d", len(last.IDs), last.NextCursor)
	}
}

func TestFollowerIDsBadCursor(t *testing.T) {
	store, target, _ := buildTarget(t, 10)
	svc := NewService(store)
	// Fabricated tokens the service never minted fail the checksum.
	if _, err := svc.FollowerIDs(target, 99999); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("err = %v, want ErrBadCursor", err)
	}
	if _, err := svc.FollowerIDs(target, -5); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("err = %v, want ErrBadCursor", err)
	}
	// The done sentinel is not a valid request cursor either.
	if _, err := svc.FollowerIDs(target, CursorDone); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("err = %v, want ErrBadCursor", err)
	}
}

// TestFollowerIDsCursorIsTargetBound: a cursor minted while paging one
// target is rejected when replayed against another instead of silently
// serving an unrelated page.
func TestFollowerIDsCursorIsTargetBound(t *testing.T) {
	store, target, chrono := buildTarget(t, 6000)
	other, err := store.CreateUser(twitter.UserParams{ScreenName: "other"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range chrono[:100] {
		if err := store.AddFollower(other, id, store.Now()); err != nil {
			t.Fatal(err)
		}
	}
	svc := NewService(store)
	page, err := svc.FollowerIDs(target, CursorFirst)
	if err != nil || page.NextCursor == CursorDone {
		t.Fatalf("first page = %+v, %v", page, err)
	}
	if _, err := svc.FollowerIDs(other, page.NextCursor); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("cross-target cursor err = %v, want ErrBadCursor", err)
	}
}

func TestFollowerIDsEmptyTarget(t *testing.T) {
	store, _, _ := buildTarget(t, 0)
	svc := NewService(store)
	page, err := svc.FollowerIDs(1, CursorFirst)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.IDs) != 0 || page.NextCursor != CursorDone {
		t.Fatalf("empty target page = %+v", page)
	}
}

func TestUsersLookupBatchLimit(t *testing.T) {
	store, _, chrono := buildTarget(t, 150)
	svc := NewService(store)
	if _, err := svc.UsersLookup(chrono); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
	got, err := svc.UsersLookup(chrono[:100])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("lookup returned %d, want 100", len(got))
	}
}

func TestUsersLookupDropsUnknown(t *testing.T) {
	store, _, chrono := buildTarget(t, 5)
	svc := NewService(store)
	got, err := svc.UsersLookup([]twitter.UserID{chrono[0], 99999})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("lookup returned %d, want 1", len(got))
	}
}

func TestUsersShow(t *testing.T) {
	store, _, _ := buildTarget(t, 3)
	svc := NewService(store)
	p, err := svc.UsersShow("target")
	if err != nil || p.ScreenName != "target" {
		t.Fatalf("UsersShow = %+v, %v", p, err)
	}
	if p.FollowersCount != 3 {
		t.Fatalf("FollowersCount = %d, want 3", p.FollowersCount)
	}
	if _, err := svc.UsersShow("missing"); err == nil {
		t.Fatal("UsersShow of unknown name should fail")
	}
}

func TestFriendIDsSynthetic(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	for i := 0; i < 500; i++ {
		store.MustCreateUser(twitter.UserParams{Friends: 120})
	}
	svc := NewService(store)
	page, err := svc.FriendIDs(7, CursorFirst)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.IDs) != 120 {
		t.Fatalf("synthetic friends = %d, want 120", len(page.IDs))
	}
	seen := make(map[twitter.UserID]bool)
	for _, id := range page.IDs {
		if id == 7 {
			t.Fatal("synthetic friend list contains self")
		}
		if id < 1 || int(id) > store.UserCount() {
			t.Fatalf("synthetic friend %d outside user space", id)
		}
		if seen[id] {
			t.Fatalf("duplicate synthetic friend %d", id)
		}
		seen[id] = true
	}
	// Deterministic.
	again, _ := svc.FriendIDs(7, CursorFirst)
	for i := range page.IDs {
		if page.IDs[i] != again.IDs[i] {
			t.Fatal("synthetic friend list not deterministic")
		}
	}
}

// TestFriendIDsSyntheticStableAcrossUserGrowth: the synthetic friends
// permutation is keyed on the user-space size, so the service freezes that
// size per multi-page account — users created between two pages (a
// purchase burst mid-crawl) must not re-key the mapping and let page 2
// repeat IDs page 1 already served.
func TestFriendIDsSyntheticStableAcrossUserGrowth(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	for i := 0; i < 20000; i++ {
		store.MustCreateUser(twitter.UserParams{})
	}
	hub := store.MustCreateUser(twitter.UserParams{Friends: 12000})
	svc := NewService(store)

	first, err := svc.FriendIDs(hub, CursorFirst)
	if err != nil || len(first.IDs) != FriendIDsPageSize || first.NextCursor == CursorDone {
		t.Fatalf("first page = %d ids next=%d, %v", len(first.IDs), first.NextCursor, err)
	}
	// A burst lands 5,000 new accounts between pages.
	for i := 0; i < 5000; i++ {
		store.MustCreateUser(twitter.UserParams{})
	}
	seen := make(map[twitter.UserID]bool, 12000)
	for _, id := range first.IDs {
		seen[id] = true
	}
	total := len(first.IDs)
	for cursor := first.NextCursor; cursor != CursorDone; {
		page, err := svc.FriendIDs(hub, cursor)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range page.IDs {
			if seen[id] {
				t.Fatalf("friend %d served twice after user-space growth", id)
			}
			if id == hub {
				t.Fatal("friend list contains self")
			}
			seen[id] = true
		}
		total += len(page.IDs)
		cursor = page.NextCursor
	}
	if total != 12000 {
		t.Fatalf("crawled %d friends, want 12000", total)
	}

	// The freeze is per crawl, not permanent: a *new* crawl (CursorFirst)
	// re-freezes at the live user count, so a hub first crawled in a
	// small user space isn't capped forever once the population grows.
	clock2 := simclock.NewVirtualAtEpoch()
	small := twitter.NewStore(clock2, 1)
	for i := 0; i < 4000; i++ {
		small.MustCreateUser(twitter.UserParams{})
	}
	hub2 := small.MustCreateUser(twitter.UserParams{Friends: 12000})
	svc2 := NewService(small)
	page, err := svc2.FriendIDs(hub2, CursorFirst)
	if err != nil || len(page.IDs) != 4000 { // 4001 users minus self
		t.Fatalf("clamped first crawl = %d ids, %v; want 4000", len(page.IDs), err)
	}
	for i := 0; i < 20000; i++ {
		small.MustCreateUser(twitter.UserParams{})
	}
	recount := 0
	for cursor := CursorFirst; ; {
		page, err := svc2.FriendIDs(hub2, cursor)
		if err != nil {
			t.Fatal(err)
		}
		recount += len(page.IDs)
		if page.NextCursor == CursorDone {
			break
		}
		cursor = page.NextCursor
	}
	if recount != 12000 {
		t.Fatalf("post-growth crawl = %d friends, want the full 12000", recount)
	}
}

func TestFriendIDsMaterialised(t *testing.T) {
	store, target, chrono := buildTarget(t, 5)
	if err := store.SetFriends(target, chrono[:3]); err != nil {
		t.Fatal(err)
	}
	svc := NewService(store)
	page, err := svc.FriendIDs(target, CursorFirst)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.IDs) != 3 {
		t.Fatalf("materialised friends = %d, want 3", len(page.IDs))
	}
}

func TestUserTimelinePagination(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	id := store.MustCreateUser(twitter.UserParams{
		CreatedAt: simclock.Epoch.AddDate(-2, 0, 0),
		LastTweet: simclock.Epoch.AddDate(0, 0, -1),
		Statuses:  450,
	})
	svc := NewService(store)
	first, err := svc.UserTimeline(id, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 200 {
		t.Fatalf("first page = %d, want 200", len(first))
	}
	second, err := svc.UserTimeline(id, 200, first[len(first)-1].ID-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 200 {
		t.Fatalf("second page = %d, want 200", len(second))
	}
	third, err := svc.UserTimeline(id, 200, second[len(second)-1].ID-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(third) != 50 {
		t.Fatalf("third page = %d, want 50", len(third))
	}
	// No overlap across pages.
	seen := make(map[twitter.TweetID]bool)
	for _, page := range [][]twitter.Tweet{first, second, third} {
		for _, tw := range page {
			if seen[tw.ID] {
				t.Fatalf("tweet %d appears twice across pages", tw.ID)
			}
			seen[tw.ID] = true
		}
	}
}

func TestUserTimelineCapAt3200(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1)
	id := store.MustCreateUser(twitter.UserParams{
		CreatedAt: simclock.Epoch.AddDate(-5, 0, 0),
		LastTweet: simclock.Epoch.AddDate(0, 0, -1),
		Statuses:  10000,
	})
	svc := NewService(store)
	client := NewDirectClient(svc, clock, ClientConfig{})
	all, err := FullTimeline(client, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != TimelineCap {
		t.Fatalf("FullTimeline = %d tweets, want cap %d", len(all), TimelineCap)
	}
}
