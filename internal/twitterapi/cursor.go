package twitterapi

import (
	"fmt"

	"fakeproject/internal/twitter"
)

// Follower cursors are opaque on the wire, exactly like the real API's:
// consumers must treat the int64 as a token to echo back, not an offset to
// do arithmetic on. Internally a cursor carries the sequence number of the
// next follow edge to serve (the anchor a resumed crawl lands on, immune
// to churn shifting positions) in its low bits, plus a short checksum
// keyed on the target in its high bits. The checksum turns fabricated or
// cross-target cursors into ErrBadCursor instead of silently serving an
// unrelated page; a *stale* cursor — one whose anchored edge has since
// been purged — still decodes fine and resolves to the next older
// surviving edge, which is what keeps long crawls alive under churn.
//
// Layout (63 usable bits; the sign bit stays 0 so encoded cursors never
// collide with the CursorFirst/CursorDone sentinels):
//
//	bits  0..47  edge sequence number (2^48 edges per target)
//	bits 48..62  checksum over (target, seq)
const (
	cursorSeqBits = 48
	cursorSeqMask = (uint64(1) << cursorSeqBits) - 1
	cursorSumMask = (uint64(1) << 15) - 1
)

// cursorSum mixes (target, seq) into the 15-bit checksum field.
func cursorSum(target twitter.UserID, seq uint64) uint64 {
	return mix64(seq^uint64(target)*0x9e3779b97f4a7c15) & cursorSumMask
}

// encodeCursor packs a follow-edge seq into an opaque wire cursor. seq must
// be non-zero (0 terminates pagination and is encoded as CursorDone by the
// caller) and fit the 48-bit field.
func encodeCursor(target twitter.UserID, seq uint64) int64 {
	return int64(cursorSum(target, seq)<<cursorSeqBits | seq&cursorSeqMask)
}

// decodeCursor validates an opaque wire cursor for target and recovers the
// anchored seq. Sentinels are handled by the caller; everything that is not
// a well-formed cursor minted for this target is ErrBadCursor.
func decodeCursor(target twitter.UserID, cursor int64) (uint64, error) {
	if cursor <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadCursor, cursor)
	}
	seq := uint64(cursor) & cursorSeqMask
	if seq == 0 || uint64(cursor)>>cursorSeqBits != cursorSum(target, seq) {
		return 0, fmt.Errorf("%w: %d", ErrBadCursor, cursor)
	}
	return seq, nil
}
