// Package opsui serves the embedded live operations dashboard: a static
// single-page app (no build step, no external assets) that polls the
// metrics registry's JSON exposition and renders per-endpoint latency
// quantiles, request rates, auditd queue depth, store shard heat and —
// when a monitord API is mounted on the same server — a live alert feed.
//
// The assets ship inside the daemon binaries via embed.FS, so `go build`
// fails if a referenced file goes missing and a deployed daemon has no
// runtime file dependencies. Mount with Handler:
//
//	mux.Handle("/dashboard/", opsui.Handler("/dashboard/"))
//
// The page expects /metrics.json (and optionally /v1/alerts) on the same
// origin.
package opsui

import (
	"embed"
	"io/fs"
	"net/http"
)

//go:embed static
var assets embed.FS

// Handler serves the dashboard under the given mount prefix (which must
// end in "/", e.g. "/dashboard/").
func Handler(prefix string) http.Handler {
	sub, err := fs.Sub(assets, "static")
	if err != nil {
		// The embed directive guarantees static/ exists; reaching this is a
		// build-system bug worth failing loudly over.
		panic("opsui: embedded assets missing: " + err.Error())
	}
	return http.StripPrefix(prefix, http.FileServerFS(sub))
}
