package opsui

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// The dashboard must ship all three assets inside the binary and serve them
// under the mount prefix; a broken embed path should fail here (and at build
// time) rather than in production.
func TestHandlerServesEmbeddedAssets(t *testing.T) {
	srv := httptest.NewServer(Handler("/dashboard/"))
	defer srv.Close()

	cases := []struct {
		path string
		want string
	}{
		{"/dashboard/", "<title>ops dashboard</title>"},
		{"/dashboard/index.html", "id=\"latency\""},
		{"/dashboard/app.js", "/metrics.json"},
		{"/dashboard/style.css", "--accent"},
	}
	for _, tc := range cases {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", tc.path, err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d, want 200", tc.path, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s: body missing %q", tc.path, tc.want)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/dashboard/nope.js")
	if err != nil {
		t.Fatalf("GET missing asset: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("missing asset: status %d, want 404", resp.StatusCode)
	}
}
