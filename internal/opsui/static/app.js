/* ops dashboard: polls /metrics.json (and /v1/alerts when present) and
   renders tiles, latency quantiles, shard heat and the alert feed.
   Counters are turned into rates by differencing consecutive polls. */
"use strict";

const POLL_MS = 2000;
const SPARK_POINTS = 150;

let prevFlat = null;
let prevAt = 0;
let rateHistory = [];
let alertsAvailable = true;

const $ = (sel) => document.querySelector(sel);

/* ---- helpers ---------------------------------------------------------- */

function seriesKey(name, labels) {
  const ls = Object.entries(labels || {}).sort().map(([k, v]) => k + "=" + v);
  return name + "{" + ls.join(",") + "}";
}

/* flatten a /metrics.json document into key -> {name, labels, type, ...} */
function flatten(doc) {
  const flat = new Map();
  for (const fam of doc.families || []) {
    for (const s of fam.series || []) {
      flat.set(seriesKey(fam.name, s.labels), {
        name: fam.name, type: fam.type, labels: s.labels || {}, ...s,
      });
    }
  }
  return flat;
}

function fmtDur(seconds) {
  if (seconds == null) return "–";
  if (seconds === 0) return "0";
  if (seconds < 1e-3) return (seconds * 1e6).toFixed(0) + "µs";
  if (seconds < 1) return (seconds * 1e3).toFixed(2) + "ms";
  return seconds.toFixed(2) + "s";
}

function fmtCount(n) {
  if (n == null) return "–";
  if (n >= 1e6) return (n / 1e6).toFixed(1) + "M";
  if (n >= 1e4) return (n / 1e3).toFixed(1) + "k";
  return String(Math.round(n));
}

function fmtBytes(n) {
  if (n == null) return "–";
  if (n >= 1 << 30) return (n / (1 << 30)).toFixed(1) + "GiB";
  if (n >= 1 << 20) return (n / (1 << 20)).toFixed(1) + "MiB";
  if (n >= 1 << 10) return (n / (1 << 10)).toFixed(1) + "KiB";
  return Math.round(n) + "B";
}

function fmtRate(r) {
  if (r == null) return "–";
  if (r >= 100) return r.toFixed(0) + "/s";
  if (r >= 1) return r.toFixed(1) + "/s";
  return r.toFixed(2) + "/s";
}

/* rate of a counter/histogram-count series between polls */
function rateOf(flat, key, dt) {
  if (!prevFlat || dt <= 0) return null;
  const cur = flat.get(key), prev = prevFlat.get(key);
  if (!cur || !prev) return null;
  const a = cur.count != null ? cur.count : cur.value;
  const b = prev.count != null ? prev.count : prev.value;
  if (a == null || b == null || a < b) return null;
  return (a - b) / dt;
}

function sumOver(flat, name, field) {
  let total = 0, seen = false;
  for (const s of flat.values()) {
    if (s.name === name && s[field] != null) { total += s[field]; seen = true; }
  }
  return seen ? total : null;
}

/* ---- render ----------------------------------------------------------- */

function renderTiles(flat, dt) {
  const tiles = [];

  let reqRate = 0, sawReq = false;
  for (const [key, s] of flat) {
    if (s.name === "http_requests_total") {
      sawReq = true;
      const r = rateOf(flat, key, dt);
      if (r != null) reqRate += r;
    }
  }
  if (sawReq) tiles.push(["requests", fmtRate(reqRate)]);
  rateHistory.push(reqRate);
  if (rateHistory.length > SPARK_POINTS) rateHistory.shift();

  const inflight = sumOver(flat, "http_requests_in_flight", "value");
  if (inflight != null) tiles.push(["in flight", fmtCount(inflight)]);

  const depth = sumOver(flat, "auditd_queue_depth", "value");
  if (depth != null) {
    const cap = sumOver(flat, "auditd_queue_capacity", "value");
    tiles.push(["queue depth", fmtCount(depth) + (cap ? ` <small>/ ${fmtCount(cap)}</small>` : "")]);
  }

  const watch = sumOver(flat, "monitord_watchlist_size", "value");
  if (watch != null) tiles.push(["watchlist", fmtCount(watch)]);

  const alerts = sumOver(flat, "monitord_alerts_total", "value");
  if (alerts != null) tiles.push(["alerts raised", fmtCount(alerts)]);

  const throttled = sumOver(flat, "ratelimit_throttled_total", "value");
  if (throttled != null && throttled > 0) tiles.push(["throttled", fmtCount(throttled)]);

  /* routing tier: present only when the scrape is a routerd */
  let backendsUp = 0, backendsTotal = 0;
  for (const s of flat.values()) {
    if (s.name === "router_backend_healthy" && s.value != null) {
      backendsTotal++;
      backendsUp += s.value;
    }
  }
  if (backendsTotal > 0) {
    tiles.push(["backends up", `${fmtCount(backendsUp)} <small>/ ${fmtCount(backendsTotal)}</small>`]);
    let hedgeRate = 0;
    for (const [key, s] of flat) {
      if (s.name === "router_hedges_total") {
        const r = rateOf(flat, key, dt);
        if (r != null) hedgeRate += r;
      }
    }
    const hedges = sumOver(flat, "router_hedges_total", "value");
    const hedgeWins = sumOver(flat, "router_hedge_wins_total", "value");
    if (hedges != null) {
      tiles.push(["hedges", fmtRate(hedgeRate) +
        (hedgeWins != null ? ` <small>(${fmtCount(hedgeWins)} won)</small>` : "")]);
    }
    const failovers = sumOver(flat, "router_failovers_total", "value");
    if (failovers != null && failovers > 0) tiles.push(["failovers", fmtCount(failovers)]);
    const ejections = sumOver(flat, "router_ejections_total", "value");
    if (ejections != null && ejections > 0) {
      const readmissions = sumOver(flat, "router_readmissions_total", "value");
      tiles.push(["ejections", fmtCount(ejections) +
        (readmissions != null ? ` <small>(${fmtCount(readmissions)} back)</small>` : "")]);
    }
  }

  /* durability plane: present only when the store runs on a WAL */
  let walRate = 0, walTotal = null;
  for (const [key, s] of flat) {
    if (s.name === "wal_records_total") {
      walTotal = (walTotal || 0) + (s.value || 0);
      const r = rateOf(flat, key, dt);
      if (r != null) walRate += r;
    }
  }
  if (walTotal != null) {
    tiles.push(["wal appends", fmtRate(walRate) + ` <small>(${fmtCount(walTotal)})</small>`]);
    const logBytes = sumOver(flat, "wal_log_bytes", "value");
    const snapBytes = sumOver(flat, "wal_snapshot_bytes", "value");
    if (logBytes != null) {
      tiles.push(["wal on disk", fmtBytes(logBytes) +
        (snapBytes != null ? ` <small>+ ${fmtBytes(snapBytes)} snap</small>` : "")]);
    }
    const compactions = sumOver(flat, "wal_compactions_total", "value");
    if (compactions != null) tiles.push(["compactions", fmtCount(compactions)]);
    const recovered = sumOver(flat, "wal_recovery_records", "value");
    const recSecs = sumOver(flat, "wal_recovery_seconds", "value");
    if (recovered != null) {
      tiles.push(["recovered", fmtCount(recovered) +
        (recSecs != null ? ` <small>in ${fmtDur(recSecs)}</small>` : "")]);
    }
  }

  $("#tiles").innerHTML = tiles.map(([label, value]) =>
    `<div class="tile"><div class="label">${label}</div><div class="value">${value}</div></div>`
  ).join("");
}

function renderSpark() {
  const canvas = $("#spark");
  const ctx = canvas.getContext("2d");
  const w = canvas.width, h = canvas.height;
  ctx.clearRect(0, 0, w, h);
  if (rateHistory.length < 2) return;
  const peak = Math.max(...rateHistory, 1);
  const step = w / (SPARK_POINTS - 1);
  ctx.beginPath();
  rateHistory.forEach((v, i) => {
    const x = i * step, y = h - 4 - (v / peak) * (h - 12);
    i === 0 ? ctx.moveTo(x, y) : ctx.lineTo(x, y);
  });
  ctx.strokeStyle = "#4cc2ff";
  ctx.lineWidth = 1.5;
  ctx.stroke();
  ctx.lineTo((rateHistory.length - 1) * step, h);
  ctx.lineTo(0, h);
  ctx.closePath();
  ctx.fillStyle = "rgba(76,194,255,.12)";
  ctx.fill();
  ctx.fillStyle = "#7d8794";
  ctx.font = "11px monospace";
  ctx.fillText("peak " + fmtRate(peak), 6, 14);
}

const HIST_LABELS = { http_request_duration_seconds: "http", loadgen_request_duration_seconds: "loadgen" };

function renderLatency(flat, dt) {
  const rows = [];
  for (const [key, s] of flat) {
    if (s.type !== "histogram") continue;
    const kind = HIST_LABELS[s.name] || s.name.replace(/_seconds$/, "");
    const plane = s.labels.plane || s.labels.mix || "";
    const endpoint = s.labels.endpoint || "(all)";
    rows.push({
      kind, plane, endpoint,
      count: s.count, rate: rateOf(flat, key, dt),
      p50: s.p50, p90: s.p90, p99: s.p99, max: s.max,
    });
  }
  rows.sort((a, b) => (b.count || 0) - (a.count || 0));
  const body = rows.map(r => `<tr>
    <td>${r.kind}${r.plane ? ` <span class="plane">${r.plane}</span>` : ""}</td>
    <td>${r.endpoint}</td>
    <td class="num">${fmtCount(r.count)}</td>
    <td class="num">${fmtRate(r.rate)}</td>
    <td class="num">${fmtDur(r.p50)}</td>
    <td class="num">${fmtDur(r.p90)}</td>
    <td class="num ${r.p99 > 0.5 ? "hot" : ""}">${fmtDur(r.p99)}</td>
    <td class="num">${fmtDur(r.max)}</td>
  </tr>`).join("");
  $("#latency tbody").innerHTML = body ||
    `<tr><td colspan="8" class="empty">no latency series yet</td></tr>`;
}

function renderShards(flat, dt) {
  const shards = [];
  for (const [key, s] of flat) {
    if (s.name !== "store_shard_ops_total") continue;
    shards.push({ idx: Number(s.labels.shard || 0), total: s.value, rate: rateOf(flat, key, dt) });
  }
  const panel = $("#shard-panel");
  if (!shards.length) { panel.hidden = true; return; }
  panel.hidden = false;
  shards.sort((a, b) => a.idx - b.idx);
  const useRate = shards.some(s => s.rate != null && s.rate > 0);
  const metric = (s) => useRate ? (s.rate || 0) : (s.total || 0);
  const peak = Math.max(...shards.map(metric), 1);
  $("#shards").innerHTML = shards.map(s => {
    const v = metric(s);
    const hot = v > 0.5 * peak && v > 0;
    return `<div class="bar-row ${hot ? "hot" : ""}">
      <span class="name">shard ${s.idx}</span>
      <span class="track"><span class="fill" style="width:${(100 * v / peak).toFixed(1)}%"></span></span>
      <span class="val">${useRate ? fmtRate(v) : fmtCount(v)}</span>
    </div>`;
  }).join("");
}

async function renderAlerts() {
  if (!alertsAvailable) return;
  try {
    const resp = await fetch("/v1/alerts", { cache: "no-store" });
    if (!resp.ok) { alertsAvailable = resp.status !== 404; return; }
    const doc = await resp.json();
    const alerts = (doc.alerts || []).slice(-20).reverse();
    const panel = $("#alert-panel");
    panel.hidden = false;
    $("#alerts").innerHTML = alerts.length ? alerts.map(a => `<li>
      <span class="kind ${a.kind === "follow-purge" ? "purge" : ""}">${a.kind}</span>
      <span class="target">${a.target || ""}</span>
      <span class="msg">${a.message || a.tool || ""}</span>
    </li>`).join("") : `<li class="empty">no alerts yet</li>`;
  } catch {
    /* monitord not mounted here; try again next poll */
  }
}

/* ---- poll loop -------------------------------------------------------- */

async function poll() {
  const conn = $("#conn");
  try {
    const resp = await fetch("/metrics.json", { cache: "no-store" });
    if (!resp.ok) throw new Error("HTTP " + resp.status);
    const doc = await resp.json();
    const now = performance.now();
    const dt = prevAt ? (now - prevAt) / 1000 : 0;
    const flat = flatten(doc);

    renderTiles(flat, dt);
    renderSpark();
    renderLatency(flat, dt);
    renderShards(flat, dt);
    renderAlerts();

    prevFlat = flat;
    prevAt = now;
    conn.textContent = "live · " + new Date().toLocaleTimeString();
    conn.className = "conn ok";
  } catch (err) {
    conn.textContent = "disconnected: " + err.message;
    conn.className = "conn err";
  }
  setTimeout(poll, POLL_MS);
}

poll();
