package experiments

import (
	"math"
	"testing"
	"time"

	"fakeproject/internal/core"
)

// TestIntegration exercises every experiment runner on one shared small
// simulation (a representative testbed subset plus the Deep Dive targets at
// a reduced scale cap). Subtests assert the paper's *shape criteria* as
// listed in DESIGN.md §4.
func TestIntegration(t *testing.T) {
	sim := sharedBigSim(t)

	t.Run("TableIII", func(t *testing.T) {
		rows, err := sim.RunTableIII()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("rows = %d", len(rows))
		}
		byName := map[string]TableIIIRow{}
		for _, r := range rows {
			byName[r.Account.ScreenName] = r
		}

		// FC must recover the paper's FC column (it defines the ground
		// truth) within a few points on every account.
		for name, row := range byName {
			fcRep := row.Measured[ToolFC]
			if d := math.Abs(fcRep.InactivePct - row.Account.FC.Inactive); d > 5 {
				t.Errorf("%s: FC inactive %.1f vs paper %.1f (Δ%.1f)",
					name, fcRep.InactivePct, row.Account.FC.Inactive, d)
			}
			if d := math.Abs(fcRep.GenuinePct - row.Account.FC.Genuine); d > 5 {
				t.Errorf("%s: FC genuine %.1f vs paper %.1f (Δ%.1f)",
					name, fcRep.GenuinePct, row.Account.FC.Genuine, d)
			}
		}

		// Socialbakers sees only the newest 2000, whose mix was calibrated
		// from the paper's SB column: it must land close.
		for name, row := range byName {
			if row.Account.Followers <= 2000 {
				continue
			}
			sbRep := row.Measured[ToolSB]
			if d := math.Abs(sbRep.GenuinePct - row.Account.SB.Genuine); d > 10 {
				t.Errorf("%s: SB genuine %.1f vs paper %.1f", name, sbRep.GenuinePct, row.Account.SB.Genuine)
			}
		}

		// The pathological case: FC sees the abandoned base, every
		// window-limited tool misses most of it.
		pc := byName["PC_Chiambretti"]
		fcRep := pc.Measured[ToolFC]
		if fcRep.InactivePct < 90 {
			t.Errorf("PC_Chiambretti FC inactive = %.1f, want ≈97", fcRep.InactivePct)
		}
		for _, tool := range []string{ToolSP, ToolSB} {
			if got := pc.Measured[tool].InactivePct; got > 60 {
				t.Errorf("PC_Chiambretti %s inactive = %.1f, want far below FC's 97", tool, got)
			}
		}

		// Window-limited tools systematically undercount inactives.
		under := InactiveUndercount(rows)
		for _, tool := range []string{ToolSP, ToolSB} {
			if under[tool] <= 0 {
				t.Errorf("%s inactive undercount = %.1f, want positive", tool, under[tool])
			}
		}

		// Disagreement grows from the low class to the high class.
		byClass := DisagreementByClass(rows)
		if byClass[core.ClassHigh] <= byClass[core.ClassLow] {
			t.Errorf("disagreement low=%.1f high=%.1f, want growth",
				byClass[core.ClassLow], byClass[core.ClassHigh])
		}
	})

	t.Run("TableII", func(t *testing.T) {
		rows, err := sim.RunTableII()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 { // the average-class subset
			t.Fatalf("rows = %d", len(rows))
		}
		for _, row := range rows {
			fcSec := row.FirstSeconds[ToolFC]
			taSec := row.FirstSeconds[ToolTA]
			spSec := row.FirstSeconds[ToolSP]
			sbSec := row.FirstSeconds[ToolSB]
			cached := map[string]bool{}
			for _, tool := range row.CachedTools {
				cached[tool] = true
			}
			// FC is always the slowest: "always greater than 180 seconds".
			if fcSec < 180 {
				t.Errorf("%s: FC first response %.1fs, want > 180s", row.ScreenName, fcSec)
			}
			// The commercial ordering TA > SP > SB holds for uncached runs.
			if !cached[ToolTA] && !cached[ToolSP] {
				if !(fcSec > taSec && taSec > spSec && spSec > sbSec) {
					t.Errorf("%s: ordering FC>TA>SP>SB violated: %.0f/%.0f/%.0f/%.0f",
						row.ScreenName, fcSec, taSec, spSec, sbSec)
				}
			}
			// Cached first requests collapse to seconds.
			if cached[ToolTA] && taSec > 5 {
				t.Errorf("%s: cached TA took %.1fs", row.ScreenName, taSec)
			}
			if cached[ToolSP] && spSec > 5 {
				t.Errorf("%s: cached SP took %.1fs", row.ScreenName, spSec)
			}
			// "for the subsequent requests ... less than 5 seconds".
			for tool, sec := range row.RepeatSeconds {
				if sec >= 5 {
					t.Errorf("%s: repeat %s took %.1fs, want < 5s", row.ScreenName, tool, sec)
				}
			}
		}
		// pinucciotwit must be served from cache by TA and SP.
		for _, row := range rows {
			if row.ScreenName != "pinucciotwit" {
				continue
			}
			cached := map[string]bool{}
			for _, tool := range row.CachedTools {
				cached[tool] = true
			}
			if !cached[ToolTA] || !cached[ToolSP] {
				t.Errorf("pinucciotwit cache state = %v, want TA and SP", row.CachedTools)
			}
		}
	})

	t.Run("FollowerOrder", func(t *testing.T) {
		res, err := sim.RunFollowerOrder(3, 5, 40)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Confirmed() {
			t.Fatalf("order experiment not confirmed: %+v", res)
		}
		if res.NewFollowers != 3*4*40 {
			t.Fatalf("new followers = %d, want %d", res.NewFollowers, 3*4*40)
		}
	})

	t.Run("CrawlCost", func(t *testing.T) {
		// Obama's 41M followers at one token: the paper says ≈27 days.
		est := EstimateFullCrawl(41000000, 1)
		if d := est.Days(); d < 24 || d > 33 {
			t.Fatalf("Obama crawl = %.1f days, want ≈27", d)
		}
		// The analytic model must match the simulated crawl exactly at
		// small scale (latency-free client).
		val, err := sim.ValidateCrawlModel(30000)
		if err != nil {
			t.Fatal(err)
		}
		if val.RelativeErr > 0.02 {
			t.Fatalf("analytic model off by %.1f%% (analytic %v vs simulated %v)",
				val.RelativeErr*100, val.Analytic, val.Simulated)
		}
	})

	t.Run("Anecdote", func(t *testing.T) {
		res, err := sim.RunAnecdote(20000, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if res.TruePct > 21 || res.TruePct < 19 {
			t.Fatalf("true junk = %.1f%%, want 20%%", res.TruePct)
		}
		if res.FakersJunkPct < 90 {
			t.Fatalf("Fakers junk = %.1f%%, want ≈100%% (the window is all bought)", res.FakersJunkPct)
		}
		if math.Abs(res.FCJunkPct-res.TruePct) > 4 {
			t.Fatalf("FC junk = %.1f%%, want ≈ the truth %.1f%%", res.FCJunkPct, res.TruePct)
		}
	})

	t.Run("DeepDive", func(t *testing.T) {
		results, err := sim.RunDeepDive()
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 3 {
			t.Fatalf("results = %d", len(results))
		}
		for _, r := range results {
			if r.Shift() < 10 {
				t.Errorf("%s: deep dive shift = %.1f points, want a double-digit drop (paper: %0.f→%0.f)",
					r.Case.ScreenName, r.Shift(), r.Case.FakersPct, r.Case.DeepDivePct)
			}
			if r.MeasuredFakers < r.Case.FakersPct-18 || r.MeasuredFakers > r.Case.FakersPct+18 {
				t.Errorf("%s: Fakers junk %.1f vs published %.1f", r.Case.ScreenName, r.MeasuredFakers, r.Case.FakersPct)
			}
		}
	})
}

func TestSimulationDeterministic(t *testing.T) {
	build := func() ([]TableIIIRow, error) {
		sim, err := NewSimulation(SimConfig{Only: []string{"davc"}, Seed: 77})
		if err != nil {
			return nil, err
		}
		return sim.RunTableIII()
	}
	a, err := build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range ToolOrder {
		ra, rb := a[0].Measured[tool], b[0].Measured[tool]
		if ra.InactivePct != rb.InactivePct || ra.FakePct != rb.FakePct || ra.Elapsed != rb.Elapsed {
			t.Fatalf("%s: non-deterministic reruns: %+v vs %+v", tool, ra, rb)
		}
	}
}

func TestRunDeepDiveRequiresFlag(t *testing.T) {
	sim := sharedSmallSim(t)
	if _, err := sim.RunDeepDive(); err == nil {
		t.Fatal("deep dive without targets should fail")
	}
}

func TestRunFollowerOrderValidation(t *testing.T) {
	sim := sharedSmallSim(t)
	if _, err := sim.RunFollowerOrder(0, 5, 10); err == nil {
		t.Fatal("zero accounts should fail")
	}
	if _, err := sim.RunFollowerOrder(1, 1, 10); err == nil {
		t.Fatal("single day should fail")
	}
}

func TestEstimateFullCrawlArithmetic(t *testing.T) {
	// 5000 followers: 1 ids call + 50 lookups — everything fits in the
	// first window, zero waiting.
	if est := EstimateFullCrawl(5000, 1); est.Duration != 0 {
		t.Fatalf("small crawl duration = %v, want 0", est.Duration)
	}
	// Doubling tokens must not lengthen a crawl.
	one := EstimateFullCrawl(2000000, 1)
	two := EstimateFullCrawl(2000000, 2)
	if two.Duration > one.Duration {
		t.Fatal("more tokens should not slow the crawl")
	}
	if est := EstimateFullCrawl(41000000, 1); est.IDsCalls != 8200 || est.LookupCalls != 410000 {
		t.Fatalf("Obama call counts = %d/%d", est.IDsCalls, est.LookupCalls)
	}
}

func TestTableIIMeasurementSpacing(t *testing.T) {
	// Repeat measurements must stay within each tool's cache TTL, or
	// "subsequent requests answer in <5s" would silently break.
	sim := sharedSmallSim(t)
	start := sim.Clock.Now()
	if _, err := sim.RunTableII(); err == nil {
		// davc is low-class: Table II covers only average accounts, so an
		// empty run is fine — just ensure the clock moved monotonically.
		if sim.Clock.Now().Before(start) {
			t.Fatal("clock went backwards")
		}
	}
}

func TestDisagreementHelpers(t *testing.T) {
	row := TableIIIRow{Measured: map[string]core.Report{
		"a": {GenuinePct: 10},
		"b": {GenuinePct: 50},
	}}
	if got := row.GenuineSpread(); got != 40 {
		t.Fatalf("spread = %v", got)
	}
	if got := row.GenuineDisagreement(); got != 40 {
		t.Fatalf("disagreement = %v", got)
	}
}

func TestNewSimulationScaleCap(t *testing.T) {
	sim, err := NewSimulation(SimConfig{Only: []string{"BarackObama"}, ScaleCap: 40000})
	if err != nil {
		t.Fatal(err)
	}
	id, err := sim.Store.LookupName("BarackObama")
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.Store.FollowerCount(id)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40000 {
		t.Fatalf("scaled follower count = %d, want 40000", n)
	}
	// The FC report must display the nominal count.
	report, err := sim.FCEngine().Audit("BarackObama")
	if err != nil {
		t.Fatal(err)
	}
	if report.NominalFollowers != 41000000 {
		t.Fatalf("nominal = %d, want 41M", report.NominalFollowers)
	}
	_ = time.Second
}
