package experiments

import "testing"

func TestCoverageNearNominal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 40 FC audits")
	}
	sim := sharedSmallSim(t)
	res, err := sim.RunCoverage(30000, 40)
	if err != nil {
		t.Fatal(err)
	}
	// The classifier is near-perfect on archetypes, so classification
	// error consumes a little of the CI budget: empirical coverage should
	// still sit near (or above, thanks to the conservative p=0.5 sizing)
	// the nominal 95%.
	if rate := res.Rate(); rate < 0.85 {
		t.Fatalf("CI coverage = %.2f over %d trials, want >= 0.85", rate, res.Trials)
	}
	// The ±1% design margin should hold approximately even at the max.
	if res.MaxAbsError > 2.5 {
		t.Fatalf("max |error| = %.2f points, want within ≈ the 1%% margin", res.MaxAbsError)
	}
}

func TestCoverageValidation(t *testing.T) {
	sim := sharedSmallSim(t)
	if _, err := sim.RunCoverage(500, 3); err == nil {
		t.Fatal("tiny population should be rejected")
	}
	if _, err := sim.RunCoverage(20000, 0); err == nil {
		t.Fatal("zero trials should be rejected")
	}
}
