package experiments

import (
	"fmt"
	"math"

	"fakeproject/internal/drand"
	"fakeproject/internal/fc"
	"fakeproject/internal/sampling"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// The ablation studies dissect the paper's finding into its two candidate
// causes — the sampling window and the detection criteria — by varying one
// while holding the other fixed. They answer the question the paper leaves
// implicit: would the commercial tools be accurate if only they sampled
// correctly? (Yes, almost.)

// WindowPoint is one point of the window-size sweep: the junk
// (inactive+fake) estimate obtained when sampling only the newest Window
// followers, against the whole-population truth.
type WindowPoint struct {
	// Window is the newest-followers window (0 = whole list).
	Window int
	// JunkPct is the ground-truth junk share within the sampled window
	// positions (measured on true classes, so the point isolates pure
	// sampling error with a perfect detector).
	JunkPct float64
	// TruthPct is the whole-population junk share.
	TruthPct float64
}

// AbsError returns |JunkPct - TruthPct| in points.
func (p WindowPoint) AbsError() float64 { return math.Abs(p.JunkPct - p.TruthPct) }

// RunWindowSweep sweeps the sampling window over a testbed target using the
// ground-truth classes as a perfect detector: any remaining error is the
// window's fault. This regenerates, as a data series, the paper's
// Section II-D argument that the sample "is not unbiased ... the
// applications get the sample not from the whole list of followers".
func (s *Simulation) RunWindowSweep(screenName string, windows []int, sampleSize int) ([]WindowPoint, error) {
	id, err := s.Store.LookupName(screenName)
	if err != nil {
		return nil, fmt.Errorf("window sweep: %w", err)
	}
	newest, err := s.Store.FollowersNewestFirst(id)
	if err != nil {
		return nil, err
	}
	if len(newest) == 0 {
		return nil, fmt.Errorf("window sweep: %s has no followers", screenName)
	}
	truth := junkShare(s.Store, newest)
	src := drand.New(s.cfg.Seed).Fork("window-sweep")

	out := make([]WindowPoint, 0, len(windows)+1)
	for _, w := range windows {
		strategy := sampling.Strategy(sampling.NewestWindow{Window: w})
		if w <= 0 {
			strategy = sampling.Uniform{}
		}
		idx := strategy.Sample(len(newest), sampleSize, src)
		sample := sampling.Select(newest, idx)
		out = append(out, WindowPoint{
			Window:   w,
			JunkPct:  junkShare(s.Store, sample),
			TruthPct: truth,
		})
	}
	return out, nil
}

// junkShare returns the ground-truth inactive+fake percentage of ids.
func junkShare(store *twitter.Store, ids []twitter.UserID) float64 {
	if len(ids) == 0 {
		return 0
	}
	counts := store.ClassCounts(ids)
	junk := counts[twitter.ClassInactive] + counts[twitter.ClassFake]
	return 100 * float64(junk) / float64(len(ids))
}

// AblationRow is one configuration of the classifier-vs-sampling ablation:
// the FC classifier run behind different sampling windows.
type AblationRow struct {
	// Label describes the configuration.
	Label string
	// Window is the sampling window (0 = whole list, the deployed FC).
	Window int
	// JunkPct is the reported inactive+fake percentage.
	JunkPct float64
	// TruthPct is the ground-truth junk percentage.
	TruthPct float64
	// APICalls spent by the audit.
	APICalls int
}

// AbsError returns |JunkPct - TruthPct|.
func (r AblationRow) AbsError() float64 { return math.Abs(r.JunkPct - r.TruthPct) }

// RunSamplingAblation runs the *same* FC classifier behind the deployed
// whole-list scheme and behind the tools' newest-window schemes. Because
// the detector is held fixed, the error gap between rows is attributable
// purely to sampling — the paper's central causal claim, demonstrated by
// intervention.
func (s *Simulation) RunSamplingAblation(screenName string) ([]AblationRow, error) {
	id, err := s.Store.LookupName(screenName)
	if err != nil {
		return nil, fmt.Errorf("sampling ablation: %w", err)
	}
	newest, err := s.Store.FollowersNewestFirst(id)
	if err != nil {
		return nil, err
	}
	truth := junkShare(s.Store, newest)

	model, set, err := fc.TrainDefault(s.cfg.Seed + 9)
	if err != nil {
		return nil, fmt.Errorf("training ablation classifier: %w", err)
	}
	configs := []struct {
		label  string
		window int
	}{
		{"FC (whole list, deployed)", 0},
		{"FC @ StatusPeople window", 35000},
		{"FC @ Twitteraudit window", 5000},
		{"FC @ Socialbakers window", 2000},
	}
	out := make([]AblationRow, 0, len(configs))
	for _, cfg := range configs {
		client := twitterapi.NewDirectClient(s.Service, s.Clock, twitterapi.ClientConfig{Tokens: 64})
		engine := fc.NewEngine(client, s.Clock, model, set, fc.EngineConfig{
			Seed:   s.cfg.Seed + 10,
			Window: cfg.window,
		})
		report, err := engine.Audit(screenName)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", cfg.label, err)
		}
		out = append(out, AblationRow{
			Label:    cfg.label,
			Window:   cfg.window,
			JunkPct:  report.InactivePct + report.FakePct,
			TruthPct: truth,
			APICalls: report.APICalls,
		})
	}
	return out, nil
}
