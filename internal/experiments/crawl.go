package experiments

import (
	"fmt"
	"math"
	"time"

	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitterapi"
)

// CrawlEstimate is the analytic crawl-cost model behind the paper's
// "collecting data of accounts with a very large numbers of followers can
// be extremely time consuming. For example ... President Obama ... required
// a total time of around 27 days."
type CrawlEstimate struct {
	Followers int
	// IDsCalls and LookupCalls are the API call counts of the two crawl
	// phases (complete follower list + profile of every follower).
	IDsCalls    int
	LookupCalls int
	// Duration is the rate-limit-bound crawl time with one API token.
	Duration time.Duration
}

// EstimateFullCrawl computes the time to fetch the complete follower list
// AND every follower's profile with `tokens` API tokens under the Table I
// budgets. The two phases run sequentially, as the Fake Project crawler
// did.
func EstimateFullCrawl(followers, tokens int) CrawlEstimate {
	if tokens <= 0 {
		tokens = 1
	}
	idsCalls := ceilDiv(followers, twitterapi.FollowerIDsPageSize)
	lookupCalls := ceilDiv(followers, twitterapi.UsersLookupBatchSize)
	// k calls on a budget of r per window finish after ceil(k/r)-1 full
	// window waits (the first window is free).
	idsWindows := ceilDiv(idsCalls, 15*tokens) - 1
	lookupWindows := ceilDiv(lookupCalls, 180*tokens) - 1
	if idsWindows < 0 {
		idsWindows = 0
	}
	if lookupWindows < 0 {
		lookupWindows = 0
	}
	return CrawlEstimate{
		Followers:   followers,
		IDsCalls:    idsCalls,
		LookupCalls: lookupCalls,
		Duration:    time.Duration(idsWindows+lookupWindows) * twitterapi.RateWindow,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Days returns the estimate in days.
func (e CrawlEstimate) Days() float64 { return e.Duration.Hours() / 24 }

// CrawlValidation compares the analytic model against an actual simulated
// crawl at a smaller scale.
type CrawlValidation struct {
	Followers   int
	Analytic    time.Duration
	Simulated   time.Duration
	RelativeErr float64
}

// ValidateCrawlModel builds a fresh target of the given size and actually
// crawls it (ids + all profiles) through the rate-limited client on the
// virtual clock, then compares with the analytic estimate.
func (s *Simulation) ValidateCrawlModel(followers int) (CrawlValidation, error) {
	name := s.nextProbeName("crawl_probe")
	target, err := s.Gen.BuildTarget(population.TargetSpec{
		ScreenName: name,
		Followers:  followers,
		Layout:     population.Layout{{Width: 0, Mix: population.Mix{Genuine: 1}}},
	})
	if err != nil {
		return CrawlValidation{}, fmt.Errorf("building crawl probe: %w", err)
	}
	client := twitterapi.NewDirectClient(s.Service, s.Clock, twitterapi.ClientConfig{Tokens: 1})
	sw := simclock.NewStopwatch(s.Clock)
	ids, err := twitterapi.AllFollowerIDs(client, target)
	if err != nil {
		return CrawlValidation{}, fmt.Errorf("crawling ids: %w", err)
	}
	if _, err := twitterapi.LookupMany(client, ids); err != nil {
		return CrawlValidation{}, fmt.Errorf("crawling profiles: %w", err)
	}
	simulated := sw.Elapsed()
	analytic := EstimateFullCrawl(followers, 1).Duration
	rel := 0.0
	if simulated > 0 {
		rel = math.Abs(float64(analytic-simulated)) / float64(simulated)
	}
	return CrawlValidation{
		Followers:   followers,
		Analytic:    analytic,
		Simulated:   simulated,
		RelativeErr: rel,
	}, nil
}
