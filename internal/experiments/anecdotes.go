package experiments

import (
	"fmt"

	"fakeproject/internal/core"
	"fakeproject/internal/population"
	"fakeproject/internal/tools/statuspeople"
)

// AnecdoteResult is the outcome of the Section II-A bought-followers
// thought experiment, run for real: "if an account with 100K genuine
// followers buys 10K fake followers, the application could show a 100% of
// fake, while the right percentage should be around 9%".
type AnecdoteResult struct {
	GenuineBase int
	Bought      int
	// TruePct is the real junk percentage (bought / total).
	TruePct float64
	// FakersJunkPct is what the Fakers app reports (fake + inactive, i.e.
	// everything it does not consider a good active follower).
	FakersJunkPct float64
	// FCJunkPct is what the whole-list FC engine reports.
	FCJunkPct float64
}

// RunAnecdote builds the anecdote's account — genuineBase organic followers
// followed later by one purchased burst of bought fakes — and audits it
// with both the Fakers app and the FC engine.
func (s *Simulation) RunAnecdote(genuineBase, bought int) (AnecdoteResult, error) {
	if genuineBase <= 0 || bought <= 0 {
		return AnecdoteResult{}, fmt.Errorf("experiments: anecdote needs positive sizes")
	}
	name := s.nextProbeName("anecdote_buyer")
	target, err := s.Gen.BuildTarget(population.TargetSpec{
		ScreenName: name,
		Followers:  genuineBase,
		Layout:     population.Layout{{Width: 0, Mix: population.Mix{Genuine: 1}}},
		Statuses:   5000,
	})
	if err != nil {
		return AnecdoteResult{}, fmt.Errorf("building anecdote base: %w", err)
	}
	if err := s.Gen.BuyFollowers(target, bought); err != nil {
		return AnecdoteResult{}, fmt.Errorf("buying followers: %w", err)
	}

	// The blog anecdote concerns the launch-era app, which assessed a
	// sample from the first API pages only — a window smaller than the
	// purchased batch, which is precisely why it "could show a 100% of
	// fake" for a 9% problem.
	fakers := statuspeople.New(s.NewToolClient(ToolSP), s.Clock,
		statuspeople.Config{Window: 5000, Sample: 1000, Seed: s.cfg.Seed + 5})
	spReport, err := fakers.Audit(name)
	if err != nil {
		return AnecdoteResult{}, fmt.Errorf("fakers audit: %w", err)
	}
	fcReport, err := s.fcEngine.Audit(name)
	if err != nil {
		return AnecdoteResult{}, fmt.Errorf("fc audit: %w", err)
	}
	total := float64(genuineBase + bought)
	return AnecdoteResult{
		GenuineBase:   genuineBase,
		Bought:        bought,
		TruePct:       100 * float64(bought) / total,
		FakersJunkPct: spReport.FakePct + spReport.InactivePct,
		FCJunkPct:     fcReport.FakePct + fcReport.InactivePct,
	}, nil
}

// DeepDiveResult is one row of the Section II-A Deep Dive comparison.
type DeepDiveResult struct {
	Case core.DeepDiveCase
	// MeasuredFakers and MeasuredDeepDive are the junk percentages
	// (fake + inactive) of the two configurations.
	MeasuredFakers   float64
	MeasuredDeepDive float64
}

// Shift returns how many points the Deep Dive lowered the estimate.
func (r DeepDiveResult) Shift() float64 { return r.MeasuredFakers - r.MeasuredDeepDive }

// RunDeepDive reproduces the Fakers-vs-Deep-Dive comparison: the same three
// mega accounts assessed by the public configuration (700 of the newest
// 35K) and by the Deep Dive (33K of the first 1.25M). The simulation must
// have been built WithDeepDive.
func (s *Simulation) RunDeepDive() ([]DeepDiveResult, error) {
	if !s.cfg.WithDeepDive {
		return nil, fmt.Errorf("experiments: simulation built without WithDeepDive")
	}
	var out []DeepDiveResult
	for _, c := range core.DeepDiveCases() {
		public := statuspeople.New(s.NewToolClient(ToolSP), s.Clock, statuspeople.Config{
			Window: 35000, Sample: 700, Seed: s.cfg.Seed + 6,
		})
		publicReport, err := public.Audit(c.ScreenName)
		if err != nil {
			return nil, fmt.Errorf("fakers on %s: %w", c.ScreenName, err)
		}
		deepCfg := statuspeople.DeepDive()
		deepCfg.Seed = s.cfg.Seed + 7
		deep := statuspeople.New(s.NewToolClient(ToolSP), s.Clock, deepCfg)
		deepReport, err := deep.Audit(c.ScreenName)
		if err != nil {
			return nil, fmt.Errorf("deep dive on %s: %w", c.ScreenName, err)
		}
		out = append(out, DeepDiveResult{
			Case:             c,
			MeasuredFakers:   publicReport.FakePct + publicReport.InactivePct,
			MeasuredDeepDive: deepReport.FakePct + deepReport.InactivePct,
		})
	}
	return out, nil
}
