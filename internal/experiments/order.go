package experiments

import (
	"fmt"
	"time"

	"fakeproject/internal/population"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// OrderResult is the outcome of the Section IV-B follower-order experiment:
// daily snapshots of full follower lists, compared day over day.
type OrderResult struct {
	// Accounts is how many targets were monitored.
	Accounts int
	// Days is the number of daily snapshots per target.
	Days int
	// NewFollowers is the total number of arrivals observed.
	NewFollowers int
	// AppendViolations counts new arrivals that did NOT appear at the end
	// of the chronological list (equivalently: not at the head of the
	// API's newest-first output).
	AppendViolations int
	// PrefixViolations counts days where yesterday's list was not a
	// suffix of today's chronological list.
	PrefixViolations int
}

// Confirmed reports whether the experiment confirms the paper's thesis:
// "all the new entries in all the lists of followers were always added at
// the end".
func (r OrderResult) Confirmed() bool {
	return r.NewFollowers > 0 && r.AppendViolations == 0 && r.PrefixViolations == 0
}

// RunFollowerOrder monitors `accounts` fresh targets over `days` daily
// snapshots with `perDay` organic arrivals per target per day, fetching the
// complete follower list through the API each day (as the authors did for
// their average-class testbed) and verifying where new entries appear.
func (s *Simulation) RunFollowerOrder(accounts, days, perDay int) (OrderResult, error) {
	if accounts <= 0 || days <= 1 || perDay <= 0 {
		return OrderResult{}, fmt.Errorf("experiments: follower-order needs accounts>0, days>1, perDay>0")
	}
	client := twitterapi.NewDirectClient(s.Service, s.Clock, twitterapi.ClientConfig{Tokens: 64})

	targets := make([]twitter.UserID, 0, accounts)
	for i := 0; i < accounts; i++ {
		id, err := s.Gen.BuildTarget(population.TargetSpec{
			ScreenName: s.nextProbeName("order_probe"),
			Followers:  500 + 250*i,
			Layout: population.Layout{{Width: 0, Mix: population.Mix{
				Inactive: 0.3, Fake: 0.1, Genuine: 0.6,
			}}},
		})
		if err != nil {
			return OrderResult{}, fmt.Errorf("building probe %d: %w", i, err)
		}
		targets = append(targets, id)
	}

	result := OrderResult{Accounts: accounts, Days: days}
	prev := make(map[twitter.UserID][]twitter.UserID, accounts)
	for day := 0; day < days; day++ {
		for _, target := range targets {
			// The API returns newest first; store chronologically for the
			// suffix comparison ("we saved the whole list of followers,
			// together with their position in the list, once per day").
			newestFirst, err := twitterapi.AllFollowerIDs(client, target)
			if err != nil {
				return OrderResult{}, fmt.Errorf("snapshot day %d: %w", day, err)
			}
			chrono := reverse(newestFirst)
			if yesterday, ok := prev[target]; ok {
				arrived := len(chrono) - len(yesterday)
				result.NewFollowers += arrived
				// Yesterday's list must be an exact prefix of today's.
				for i, id := range yesterday {
					if chrono[i] != id {
						result.PrefixViolations++
						break
					}
				}
				// Every new entry must sit at the end of the list.
				known := make(map[twitter.UserID]struct{}, len(yesterday))
				for _, id := range yesterday {
					known[id] = struct{}{}
				}
				for i := 0; i < len(yesterday); i++ {
					if _, existed := known[chrono[i]]; !existed {
						result.AppendViolations++
					}
				}
			}
			prev[target] = chrono
		}
		if day < days-1 {
			s.Clock.Advance(24 * time.Hour)
			for _, target := range targets {
				if err := s.Gen.GrowFollowers(target, perDay, population.Mix{
					Inactive: 0.05, Fake: 0.1, Genuine: 0.85,
				}); err != nil {
					return OrderResult{}, fmt.Errorf("growing probes: %w", err)
				}
			}
		}
	}
	return result, nil
}

func reverse(ids []twitter.UserID) []twitter.UserID {
	out := make([]twitter.UserID, len(ids))
	for i, id := range ids {
		out[len(ids)-1-i] = id
	}
	return out
}
