package experiments

import (
	"context"
	"fmt"

	"fakeproject/internal/auditd"
	"fakeproject/internal/core"
	"fakeproject/internal/twitterapi"
)

// ToolFactories returns per-worker engine factories over this simulation's
// platform, for the auditd serving layer. Every worker receives its own
// engine instances and API clients (own rate-limit token budgets, own
// sampling streams, seeds offset per worker); the expensive FC classifier
// is shared across workers and with the simulation's own engine, since
// TrainDefault memoises per seed and prediction is read-only.
func (s *Simulation) ToolFactories() map[string]auditd.Factory {
	return auditd.StandardFactories(
		func(tool string, worker int) twitterapi.Client {
			return twitterapi.NewDirectClient(s.Service, s.Clock, clientConfigs[tool])
		},
		auditd.ToolSetConfig{
			Clock:            s.Clock,
			Seed:             s.cfg.Seed,
			NominalFollowers: s.nominal,
		},
	)
}

// NewAuditService starts an auditd service over this simulation. Zero-value
// config fields default to the simulation's tools, tool order and clock.
func (s *Simulation) NewAuditService(cfg auditd.Config) (*auditd.Service, error) {
	if cfg.Tools == nil {
		cfg.Tools = s.ToolFactories()
	}
	if cfg.ToolOrder == nil {
		cfg.ToolOrder = append([]string(nil), ToolOrder...)
	}
	if cfg.Clock == nil {
		cfg.Clock = s.Clock
	}
	return auditd.New(cfg)
}

// RunTableIIIConcurrent reproduces the Table III analyses through the
// auditd scheduler: one job per testbed account, all four tools, spread
// over the worker pool. Results are within the sampling tolerance of the
// serial RunTableIII (per-worker engines draw independent sample streams)
// but arrive with N-way parallelism instead of the serial account×tool
// loop.
func (s *Simulation) RunTableIIIConcurrent(workers int) ([]TableIIIRow, error) {
	svc, err := s.NewAuditService(auditd.Config{
		Workers:  workers,
		QueueCap: 2*len(s.testbed) + 8,
	})
	if err != nil {
		return nil, fmt.Errorf("starting audit service: %w", err)
	}
	defer svc.Shutdown(context.Background())

	ids := make([]auditd.JobID, 0, len(s.testbed))
	for _, acct := range s.testbed {
		snap, err := svc.Submit(auditd.JobSpec{Target: acct.ScreenName})
		if err != nil {
			return nil, fmt.Errorf("submitting %s: %w", acct.ScreenName, err)
		}
		ids = append(ids, snap.ID)
	}

	rows := make([]TableIIIRow, 0, len(s.testbed))
	for i, acct := range s.testbed {
		snap, err := svc.Await(context.Background(), ids[i])
		if err != nil {
			return nil, fmt.Errorf("awaiting %s: %w", acct.ScreenName, err)
		}
		row := TableIIIRow{
			Account:  acct,
			Measured: make(map[string]core.Report, len(snap.Results)),
		}
		for tool, res := range snap.Results {
			if res.Err != "" {
				return nil, fmt.Errorf("table III, %s on %s: %s", tool, acct.ScreenName, res.Err)
			}
			row.Measured[tool] = res.Report
		}
		rows = append(rows, row)
	}
	return rows, nil
}
