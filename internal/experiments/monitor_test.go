package experiments

import (
	"testing"
	"time"

	"fakeproject/internal/monitord"
)

// monitorTestConfig is the scaled-down 27-day replay used across the
// monitoring tests: a 20K-follower target (Obama-scale nominally), organic
// growth, a 3K fake purchase on day 9, a half purge on day 18, and an
// interactive probe injected on day 12.
func monitorTestConfig() MonitorConfig {
	return MonitorConfig{
		Days:             27,
		Followers:        20000,
		NominalFollowers: 39000000,
		Workers:          2,
		DailyGrowth:      150,
		BurstDay:         9,
		BurstSize:        3000,
		PurgeDay:         18,
		PurgeFraction:    0.5,
		ProbeDay:         12,
	}
}

// TestMonitorWatchReplaysChurn is the monitord integration test: ≥27
// simulated days of churn against a watched target, in bounded wall time,
// asserting (a) the injected fake-follower burst raises an alert, (b) the
// per-tool series diverge in the direction Table III predicts and the
// window-driven divergence persists over time, and (c) interactive auditd
// submissions complete ahead of queued background re-audits.
func TestMonitorWatchReplaysChurn(t *testing.T) {
	sim, err := NewSimulation(SimConfig{Only: []string{"davc"}, ScaleCap: 2000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := monitorTestConfig()

	start := time.Now()
	virtualStart := sim.Clock.Now()
	res, err := sim.RunMonitorWatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	virtual := sim.Clock.Now().Sub(virtualStart)

	if wall > 5*time.Second {
		t.Errorf("27-day replay took %v wall time, want < 5s", wall)
	}
	if virtual < 27*24*time.Hour {
		t.Errorf("virtual time advanced %v, want >= 27 days", virtual)
	}
	t.Logf("replayed %v of virtual time in %v wall", virtual, wall)

	for _, tool := range ToolOrder {
		points := res.Series[tool]
		if len(points) != cfg.Days+1 {
			t.Fatalf("%s series has %d points, want %d (baseline + one per day)",
				tool, len(points), cfg.Days+1)
		}
	}
	for _, trail := range res.Trails {
		t.Logf("%-16s baseline %5.1f%%  peak %5.1f%%  delay %dd  meanGap %5.1f  postBurstBias %+6.1f",
			trail.Tool, trail.BaselinePct, trail.PeakPct, trail.DetectionDelayDays,
			trail.MeanAbsGapPct, trail.PostBurstBiasPct)
	}

	// (a) the purchase burst raises an alert within a round of landing.
	burstAlerted := false
	for _, a := range res.Alerts {
		day := alertDay(a, res)
		if (a.Kind == monitord.BurstAlert || a.Kind == monitord.ThresholdAlert || a.Kind == monitord.SpikeAlert) &&
			day >= cfg.BurstDay && day <= cfg.BurstDay+1 {
			burstAlerted = true
		}
	}
	if !burstAlerted {
		t.Errorf("no alert within a round of the day-%d burst; alerts: %+v", cfg.BurstDay, res.Alerts)
	}

	// The purge shows up too: some alert fires at the purge day.
	purgeAlerted := false
	for _, a := range res.Alerts {
		day := alertDay(a, res)
		if (a.Kind == monitord.PurgeAlert || a.Kind == monitord.SpikeAlert) &&
			day >= cfg.PurgeDay && day <= cfg.PurgeDay+1 {
			purgeAlerted = true
		}
	}
	if !purgeAlerted {
		t.Errorf("no alert within a round of the day-%d purge", cfg.PurgeDay)
	}

	// (b) Table III direction: after the burst lands at the newest end of
	// the list, the window-limited tools (Twitteraudit: newest 5K,
	// Socialbakers: newest 2K) report a far higher fake share than the
	// whole-list FC estimate — and the divergence persists day after day
	// until the purge, not just in the landing round.
	fcPoints := res.Series[ToolFC]
	for _, windowTool := range []string{ToolTA, ToolSB} {
		points := res.Series[windowTool]
		for day := cfg.BurstDay + 1; day < cfg.PurgeDay; day++ {
			gap := points[day].FakePct - fcPoints[day].FakePct
			if gap < 5 {
				t.Errorf("day %d: %s fake %.1f%% vs FC %.1f%% — window divergence %.1f < 5 points",
					day, windowTool, points[day].FakePct, fcPoints[day].FakePct, gap)
			}
		}
	}
	// The whole-list estimator trails the truth closely throughout; the
	// window tools carry a persistent post-burst bias.
	trails := make(map[string]ToolTrail, len(res.Trails))
	for _, trail := range res.Trails {
		trails[trail.Tool] = trail
	}
	if fc := trails[ToolFC]; fc.MeanAbsGapPct > 5 {
		t.Errorf("FC mean gap to truth = %.1f points, want <= 5 (whole-list sampling)", fc.MeanAbsGapPct)
	}
	for _, windowTool := range []string{ToolTA, ToolSB} {
		if wt := trails[windowTool]; wt.PostBurstBiasPct < trails[ToolFC].PostBurstBiasPct+10 {
			t.Errorf("%s post-burst bias %.1f not >> FC's %.1f",
				windowTool, wt.PostBurstBiasPct, trails[ToolFC].PostBurstBiasPct)
		}
	}

	// (c) the interactive probe, submitted while the day's background
	// re-audits were queued, ran ahead of at least one of them.
	if res.Probe == nil {
		t.Fatal("probe was never submitted")
	}
	if res.Probe.Job.State != "done" {
		t.Fatalf("probe job state = %s: %+v", res.Probe.Job.State, res.Probe.Job)
	}
	if res.Probe.PreemptedBackground < 1 {
		t.Errorf("probe preempted %d of %d background jobs, want >= 1",
			res.Probe.PreemptedBackground, res.Probe.BackgroundJobs)
	}
	t.Logf("probe preempted %d/%d background re-audits (run seq %d)",
		res.Probe.PreemptedBackground, res.Probe.BackgroundJobs, res.Probe.Job.RunSeq)
}

// alertDay maps an alert timestamp back to a script day via the truth
// series (alerts carry virtual timestamps, not rounds).
func alertDay(a monitord.Alert, res *MonitorResult) int {
	for _, tool := range ToolOrder {
		for _, p := range res.Series[tool] {
			if p.At.Equal(a.At) {
				return p.Round - 1
			}
		}
	}
	return -1
}
