// Package experiments assembles the full reproduction: a simulated Twitter
// platform populated with the paper's 20-account testbed, the four
// analytics engines with their field-observed latency and caching
// behaviour, and one runner per experiment (Tables I-III, the follower-order
// verification, the crawl-cost estimate and the Section II-A anecdotes).
package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/core"
	"fakeproject/internal/fc"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/tools/socialbakers"
	"fakeproject/internal/tools/statuspeople"
	"fakeproject/internal/tools/twitteraudit"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// Tool name keys used across runners and reports (shared with the serving
// layer).
const (
	ToolFC = auditd.ToolFC
	ToolTA = auditd.ToolTA
	ToolSP = auditd.ToolSP
	ToolSB = auditd.ToolSB
)

// ToolOrder is the column order the paper uses.
var ToolOrder = []string{ToolFC, ToolTA, ToolSP, ToolSB}

// SimConfig configures a simulation build.
type SimConfig struct {
	// Seed determines the whole simulation.
	Seed uint64
	// ScaleCap bounds the materialised follower count per account; larger
	// real-world bases are body-scaled (default 120,000; see DESIGN.md).
	ScaleCap int
	// Only, when non-empty, restricts the testbed to these screen names
	// (used by tests and focused benchmarks).
	Only []string
	// WithDeepDive additionally builds the three Section II-A mega
	// accounts for the Deep Dive experiment.
	WithDeepDive bool
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Seed == 0 {
		c.Seed = 20140301
	}
	if c.ScaleCap <= 0 {
		c.ScaleCap = 120000
	}
	return c
}

// Simulation is a fully assembled reproduction environment.
type Simulation struct {
	Clock   *simclock.Virtual
	Store   *twitter.Store
	Service *twitterapi.Service
	Gen     *population.Generator

	cfg     SimConfig
	testbed []core.PaperAccount
	// probeSeq numbers throwaway targets (crawl probes, anecdote buyers)
	// so experiments can be re-run on one simulation.
	probeSeq atomic.Int64

	// The four analytics, cache-wrapped as deployed.
	fcEngine *fc.Engine
	auditors map[string]*core.CachedAuditor

	// nominal maps screen names to real-world follower counts, retained so
	// the serving layer can stamp out additional per-worker FC engines
	// (NewAuditService).
	nominal map[string]int

	// taInner/spInner retained for chart access and Deep Dive runs.
	taInner *twitteraudit.Audit
	spInner *statuspeople.Fakers
}

// Latency models per tool, calibrated once against Table II's shape (see
// DESIGN.md §5 "Response-time model"): a tool's first-request time is its
// API call count times its backend's per-call cost. Commercial tools run
// large token pools (their windows never bind on mid-sized accounts); the
// research prototype FC runs two tokens.
var clientConfigs = map[string]twitterapi.ClientConfig{
	ToolFC: {PerCallLatency: 1850 * time.Millisecond, LatencyJitter: 0.05, Tokens: 2, Seed: 11},
	ToolTA: {PerCallLatency: 900 * time.Millisecond, LatencyJitter: 0.12, Tokens: 50, Seed: 22},
	ToolSP: {PerCallLatency: 1700 * time.Millisecond, LatencyJitter: 0.15, Tokens: 50, Seed: 33},
	ToolSB: {PerCallLatency: 430 * time.Millisecond, LatencyJitter: 0.15, Tokens: 50, Seed: 44},
}

// cacheConfigs model each tool's observed caching behaviour (Section IV-C).
var cacheConfigs = map[string]struct {
	ttl    time.Duration
	render time.Duration
}{
	ToolFC: {ttl: 24 * time.Hour, render: 2 * time.Second},
	// Twitteraudit reports "evaluated 7 months ago": effectively no expiry.
	ToolTA: {ttl: 0, render: 3 * time.Second},
	ToolSP: {ttl: 30 * 24 * time.Hour, render: 2 * time.Second},
	ToolSB: {ttl: 24 * time.Hour, render: 2500 * time.Millisecond},
}

// NewSimulation builds the environment: platform, testbed populations,
// trained FC classifier and the four analytics.
func NewSimulation(cfg SimConfig) (*Simulation, error) {
	cfg = cfg.withDefaults()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, cfg.Seed)
	service := twitterapi.NewService(store)
	gen := population.NewGenerator(store, cfg.Seed)

	sim := &Simulation{
		Clock:    clock,
		Store:    store,
		Service:  service,
		Gen:      gen,
		cfg:      cfg,
		auditors: make(map[string]*core.CachedAuditor, 4),
	}

	only := make(map[string]bool, len(cfg.Only))
	for _, name := range cfg.Only {
		only[name] = true
	}
	nominal := make(map[string]int)
	for _, acct := range core.PaperTestbed() {
		if len(only) > 0 && !only[acct.ScreenName] {
			continue
		}
		sim.testbed = append(sim.testbed, acct)
		n := acct.Followers
		if n > cfg.ScaleCap {
			n = cfg.ScaleCap
		}
		layout := population.DeriveLayout(n, acct.FC.Mix(), acct.SB.Mix(), acct.SP.Mix())
		if _, err := gen.BuildTarget(population.TargetSpec{
			ScreenName:       acct.ScreenName,
			Followers:        n,
			NominalFollowers: acct.Followers,
			Layout:           layout,
			Statuses:         2500,
		}); err != nil {
			return nil, fmt.Errorf("building testbed account %s: %w", acct.ScreenName, err)
		}
		nominal[acct.ScreenName] = acct.Followers
	}

	if cfg.WithDeepDive {
		if err := sim.buildDeepDiveTargets(); err != nil {
			return nil, err
		}
	}

	// Train the FC classifier on its own gold standard (separate store).
	model, set, err := fc.TrainDefault(cfg.Seed + 1)
	if err != nil {
		return nil, fmt.Errorf("training FC classifier: %w", err)
	}
	sim.nominal = nominal
	fcClient := twitterapi.NewDirectClient(service, clock, clientConfigs[ToolFC])
	sim.fcEngine = fc.NewEngine(fcClient, clock, model, set, fc.EngineConfig{
		Seed:             cfg.Seed + 2,
		NominalFollowers: nominal,
	})

	taClient := twitterapi.NewDirectClient(service, clock, clientConfigs[ToolTA])
	sim.taInner = twitteraudit.New(taClient, clock, cfg.Seed+3)
	spClient := twitterapi.NewDirectClient(service, clock, clientConfigs[ToolSP])
	sim.spInner = statuspeople.New(spClient, clock, statuspeople.Config{Seed: cfg.Seed + 4})
	sbClient := twitterapi.NewDirectClient(service, clock, clientConfigs[ToolSB])
	sbInner := socialbakers.New(sbClient, clock)

	wrap := func(name string, inner core.Auditor) {
		cc := cacheConfigs[name]
		sim.auditors[name] = core.NewCachedAuditor(inner, clock, cc.ttl, cc.render)
	}
	wrap(ToolFC, sim.fcEngine)
	wrap(ToolTA, sim.taInner)
	wrap(ToolSP, sim.spInner)
	wrap(ToolSB, sbInner)
	return sim, nil
}

// Auditor returns the cache-wrapped analytics engine by tool key.
func (s *Simulation) Auditor(name string) *core.CachedAuditor { return s.auditors[name] }

// FCEngine returns the unwrapped FC engine.
func (s *Simulation) FCEngine() *fc.Engine { return s.fcEngine }

// Testbed returns the built subset of the paper testbed.
func (s *Simulation) Testbed() []core.PaperAccount { return s.testbed }

// nextProbeName mints a unique screen name for a throwaway target.
func (s *Simulation) nextProbeName(prefix string) string {
	return fmt.Sprintf("%s_%d", prefix, s.probeSeq.Add(1))
}

// NewToolClient creates an extra API client with the named tool's latency
// profile (used by one-off experiment engines such as Deep Dive).
func (s *Simulation) NewToolClient(tool string) *twitterapi.DirectClient {
	return twitterapi.NewDirectClient(s.Service, s.Clock, clientConfigs[tool])
}

// buildDeepDiveTargets materialises the three Section II-A mega accounts.
// Their layouts place the junk the Fakers app saw inside the newest-35K
// window and the cleaner base the Deep Dive saw beyond it.
func (s *Simulation) buildDeepDiveTargets() error {
	for _, c := range core.DeepDiveCases() {
		n := c.Followers
		if n > s.cfg.ScaleCap {
			n = s.cfg.ScaleCap
		}
		window := junkMixFor(c.FakersPct / 100)
		body := bodyMixFor(c.DeepDivePct/100, c.FakersPct/100, n)
		if _, err := s.Gen.BuildTarget(population.TargetSpec{
			ScreenName:       c.ScreenName,
			Followers:        n,
			NominalFollowers: c.Followers,
			Layout: population.Layout{
				{Width: 35000, Mix: window},
				{Width: 0, Mix: body},
			},
			Statuses: 10000,
		}); err != nil {
			return fmt.Errorf("building deep-dive account %s: %w", c.ScreenName, err)
		}
	}
	return nil
}

// junkMixFor builds a ground-truth mix whose StatusPeople verdict is
// approximately the given fake fraction: Fakers counts active spam bots and
// dormant eggs (≈30% of the inactive archetype) as fake.
func junkMixFor(spFake float64) population.Mix {
	const inactive = 0.15
	const eggShare = 0.3
	fake := spFake - eggShare*inactive
	if fake < 0 {
		fake = 0
	}
	genuine := 1 - fake - inactive
	if genuine < 0 {
		genuine = 0
	}
	return population.Mix{Inactive: inactive, Fake: fake, Genuine: genuine}.Normalised()
}

// bodyMixFor solves the older-band mix so that the Deep Dive window
// (everything, at the scaled size) averages to the published Deep Dive fake
// percentage.
func bodyMixFor(ddFake, fakersFake float64, n int) population.Mix {
	rem := float64(n - 35000)
	if rem <= 0 {
		return junkMixFor(ddFake)
	}
	bodyFake := (ddFake*float64(n) - fakersFake*35000) / rem
	return junkMixFor(bodyFake)
}
