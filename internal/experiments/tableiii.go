package experiments

import (
	"fmt"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/stats"
)

// TableIIIRow is one measured row of Table III: the four tools' verdict
// percentages for one target, next to the published values.
type TableIIIRow struct {
	Account core.PaperAccount
	// Measured holds each tool's report, keyed by tool name.
	Measured map[string]core.Report
}

// GenuineSpread returns the max-min spread of the genuine percentage across
// tools — the per-account disagreement the paper discusses ("it seems that
// the more followers a target has, the less the fake followers analytics
// agree").
func (r TableIIIRow) GenuineSpread() float64 {
	var vals []float64
	for _, rep := range r.Measured {
		vals = append(vals, rep.GenuinePct)
	}
	return stats.MaxSpread(vals)
}

// GenuineDisagreement returns the mean absolute pairwise difference of the
// genuine percentage across tools.
func (r TableIIIRow) GenuineDisagreement() float64 {
	var vals []float64
	for _, rep := range r.Measured {
		vals = append(vals, rep.GenuinePct)
	}
	return stats.PairwiseDisagreement(vals)
}

// RunTableIII reproduces the fake-follower analysis results of Section IV-D:
// all four tools over every testbed account, caches bypassed (fresh
// analyses), with rate-limit windows rolled between audits.
func (s *Simulation) RunTableIII() ([]TableIIIRow, error) {
	var rows []TableIIIRow
	for _, acct := range s.testbed {
		row := TableIIIRow{
			Account:  acct,
			Measured: make(map[string]core.Report, 4),
		}
		for _, tool := range ToolOrder {
			auditor := s.auditors[tool]
			auditor.Forget(acct.ScreenName) // Table III wants fresh verdicts
			report, err := auditor.Audit(acct.ScreenName)
			if err != nil {
				return nil, fmt.Errorf("table III, %s on %s: %w", tool, acct.ScreenName, err)
			}
			row.Measured[tool] = report
			s.Clock.Advance(30 * time.Minute)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DisagreementByClass aggregates the genuine-percentage disagreement per
// account size class, the trend statistic behind the paper's "the more
// followers, the less they agree" observation.
func DisagreementByClass(rows []TableIIIRow) map[core.AccountClass]float64 {
	sums := make(map[core.AccountClass]float64)
	counts := make(map[core.AccountClass]int)
	for _, row := range rows {
		sums[row.Account.Class] += row.GenuineDisagreement()
		counts[row.Account.Class]++
	}
	out := make(map[core.AccountClass]float64, len(sums))
	for class, sum := range sums {
		out[class] = sum / float64(counts[class])
	}
	return out
}

// InactiveUndercount reports, per tool, the mean (FC inactive − tool
// inactive) over rows — positive values quantify the paper's finding that
// newest-follower sampling systematically underestimates inactive
// followers.
func InactiveUndercount(rows []TableIIIRow) map[string]float64 {
	sums := make(map[string]float64)
	n := 0
	for _, row := range rows {
		fcRep, ok := row.Measured[ToolFC]
		if !ok {
			continue
		}
		n++
		for tool, rep := range row.Measured {
			if tool == ToolFC || !rep.HasInactiveClass {
				continue
			}
			sums[tool] += fcRep.InactivePct - rep.InactivePct
		}
	}
	out := make(map[string]float64, len(sums))
	for tool, sum := range sums {
		out[tool] = sum / float64(n)
	}
	return out
}
