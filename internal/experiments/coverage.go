package experiments

import (
	"fmt"

	"fakeproject/internal/fc"
	"fakeproject/internal/population"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// CoverageResult is the outcome of the statistical-soundness check behind
// the FC engine's "confidence level of 95%, with a confidence interval of
// 1%" claim (Section IV-C): many independent audits of the same population,
// scored on whether each 95% interval contains the ground truth.
type CoverageResult struct {
	// Trials is the number of independent audits.
	Trials int
	// Covered counts trials whose inactive-share interval contained the
	// true inactive share.
	Covered int
	// TruthInactive is the population's ground-truth inactive share.
	TruthInactive float64
	// MaxAbsError is the largest |estimate - truth| observed, in
	// percentage points (should stay near the ±1 margin).
	MaxAbsError float64
}

// Rate returns the empirical coverage (target: ≈0.95).
func (r CoverageResult) Rate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Trials)
}

// RunCoverage builds one population and audits it `trials` times with
// independently seeded FC engines (same classifier, fresh sample draws),
// then reports how often the 95% interval covered the truth. The classifier
// is near-perfect on archetypes, so coverage failures would indicate a
// broken estimator or sampler — this is the reproduction's self-test of the
// paper's soundness argument.
func (s *Simulation) RunCoverage(followers, trials int) (CoverageResult, error) {
	if followers < 12000 || trials <= 0 {
		return CoverageResult{}, fmt.Errorf("experiments: coverage needs followers >= 12000 (so 9,604 is a real sample) and trials > 0")
	}
	name := s.nextProbeName("coverage_probe")
	target, err := s.Gen.BuildTarget(population.TargetSpec{
		ScreenName: name,
		Followers:  followers,
		Layout: population.Layout{{Width: 0, Mix: population.Mix{
			Inactive: 0.42, Fake: 0.13, Genuine: 0.45,
		}}},
	})
	if err != nil {
		return CoverageResult{}, fmt.Errorf("building coverage probe: %w", err)
	}

	// Ground truth from the store (evaluation-only access).
	chrono, err := s.Store.FollowersChronological(target)
	if err != nil {
		return CoverageResult{}, err
	}
	counts := s.Store.ClassCounts(chrono)
	truth := float64(counts[twitter.ClassInactive]) / float64(len(chrono))

	model, set, err := fc.TrainDefault(s.cfg.Seed + 20)
	if err != nil {
		return CoverageResult{}, fmt.Errorf("training coverage classifier: %w", err)
	}

	result := CoverageResult{Trials: trials, TruthInactive: 100 * truth}
	for trial := 0; trial < trials; trial++ {
		client := twitterapi.NewDirectClient(s.Service, s.Clock, twitterapi.ClientConfig{Tokens: 1 << 16})
		engine := fc.NewEngine(client, s.Clock, model, set, fc.EngineConfig{
			Seed: s.cfg.Seed + 100 + uint64(trial),
		})
		report, err := engine.Audit(name)
		if err != nil {
			return CoverageResult{}, fmt.Errorf("coverage trial %d: %w", trial, err)
		}
		if report.InactiveCI.Contains(truth) {
			result.Covered++
		}
		if e := abs(report.InactivePct - 100*truth); e > result.MaxAbsError {
			result.MaxAbsError = e
		}
	}
	return result, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
