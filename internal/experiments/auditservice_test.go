package experiments

import (
	"context"
	"math"
	"testing"

	"fakeproject/internal/auditd"
)

// TestAuditServiceMatchesPaper routes audits through the auditd scheduler
// over the shared simulation and checks the service-side verdicts land on
// the published Table III values within the same tolerance as the serial
// runner — parallel scheduling must not change what the tools conclude.
func TestAuditServiceMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("audits the full tool set through the scheduler")
	}
	sim := sharedSmallSim(t)
	rows, err := sim.RunTableIIIConcurrent(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if row.Account.ScreenName != "davc" {
		t.Fatalf("account = %s", row.Account.ScreenName)
	}
	for _, tool := range ToolOrder {
		if _, ok := row.Measured[tool]; !ok {
			t.Fatalf("missing %s verdict", tool)
		}
	}
	fcRep := row.Measured[ToolFC]
	if d := math.Abs(fcRep.InactivePct - row.Account.FC.Inactive); d > 5 {
		t.Errorf("FC inactive %.1f vs paper %.1f (Δ%.1f)", fcRep.InactivePct, row.Account.FC.Inactive, d)
	}
	if d := math.Abs(fcRep.GenuinePct - row.Account.FC.Genuine); d > 5 {
		t.Errorf("FC genuine %.1f vs paper %.1f (Δ%.1f)", fcRep.GenuinePct, row.Account.FC.Genuine, d)
	}
}

// TestAuditServiceCacheAcrossSubmissions checks the service-level repeat
// behaviour over a real simulation: the second submission of the same
// target answers inline from the result cache.
func TestAuditServiceCacheAcrossSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a Socialbakers audit over a built population")
	}
	sim := sharedSmallSim(t)
	svc, err := sim.NewAuditService(auditd.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	spec := auditd.JobSpec{Target: "davc", Tools: []string{ToolSB}}
	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Await(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != auditd.StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Err)
	}
	if done.Results[ToolSB].CacheHit {
		t.Fatal("first audit claimed a cache hit")
	}

	repeat, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.State.Terminal() {
		t.Fatalf("repeat not served inline: %s", repeat.State)
	}
	res := repeat.Results[ToolSB]
	if !res.CacheHit || !res.Report.Cached {
		t.Fatalf("repeat result = %+v", res)
	}
	if res.Report.FakePct != done.Results[ToolSB].Report.FakePct {
		t.Fatal("cached verdict differs from the original analysis")
	}
}
