package experiments

import (
	"math"
	"net/http/httptest"
	"testing"

	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/tools/socialbakers"
	"fakeproject/internal/tools/twitteraudit"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// TestAuditsOverHTTP runs two of the analytics engines against the API
// served over a real HTTP connection and checks they reach the same
// verdicts as the in-process transport — the property that makes the
// simulated platform a drop-in stand-in for api.twitter.com.
func TestAuditsOverHTTP(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 31)
	gen := population.NewGenerator(store, 31)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "subject",
		Followers:  6000,
		Layout: population.Layout{
			{Width: 2000, Mix: population.Mix{Inactive: 0.2, Fake: 0.4, Genuine: 0.4}},
			{Width: 0, Mix: population.Mix{Inactive: 0.7, Fake: 0.05, Genuine: 0.25}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	svc := twitterapi.NewService(store)
	srv := httptest.NewServer(twitterapi.NewServer(svc, clock))
	t.Cleanup(srv.Close)

	httpClient := twitterapi.NewHTTPClient(srv.URL, "sb-token", clock)
	directClient := twitterapi.NewDirectClient(svc, clock, twitterapi.ClientConfig{Tokens: 50})

	overHTTP := socialbakers.New(httpClient, clock)
	inProcess := socialbakers.New(directClient, clock)

	httpReport, err := overHTTP.Audit("subject")
	if err != nil {
		t.Fatalf("HTTP audit: %v", err)
	}
	directReport, err := inProcess.Audit("subject")
	if err != nil {
		t.Fatalf("direct audit: %v", err)
	}
	// Socialbakers assesses the full newest-2000 window deterministically,
	// so the two transports must agree exactly.
	if httpReport.InactivePct != directReport.InactivePct ||
		httpReport.FakePct != directReport.FakePct {
		t.Fatalf("transports disagree: HTTP %.1f/%.1f vs direct %.1f/%.1f",
			httpReport.InactivePct, httpReport.FakePct,
			directReport.InactivePct, directReport.FakePct)
	}
	if httpReport.SampleSize != 2000 {
		t.Fatalf("HTTP sample = %d", httpReport.SampleSize)
	}

	// Twitteraudit samples the whole 5000-window here (deterministic
	// identity sample since window < 5000... actually 6000 > 5000, the
	// sample is the full newest-5000 page): verdicts agree within the
	// randomised-sample tolerance.
	taHTTP := twitteraudit.New(twitterapi.NewHTTPClient(srv.URL, "ta-token", clock), clock, 8)
	taDirect := twitteraudit.New(twitterapi.NewDirectClient(svc, clock, twitterapi.ClientConfig{Tokens: 50}), clock, 8)
	a, err := taHTTP.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	b, err := taDirect.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.FakePct-b.FakePct) > 0.01 {
		t.Fatalf("twitteraudit transports disagree: %.2f vs %.2f", a.FakePct, b.FakePct)
	}
}

// TestHTTPAuditRateLimitRecovery drives a tool into the rate limit over
// HTTP and checks it recovers via Retry-After on the shared virtual clock.
func TestHTTPAuditRateLimitRecovery(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 32)
	gen := population.NewGenerator(store, 32)
	// 90K followers → 18 ids pages per crawl: over the 15-page budget.
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "big",
		Followers:  90000,
		Layout:     population.Layout{{Width: 0, Mix: population.Mix{Genuine: 1}}},
	}); err != nil {
		t.Fatal(err)
	}
	svc := twitterapi.NewService(store)
	srv := httptest.NewServer(twitterapi.NewServer(svc, clock))
	t.Cleanup(srv.Close)

	client := twitterapi.NewHTTPClient(srv.URL, "crawler", clock)
	start := clock.Now()
	ids, err := twitterapi.AllFollowerIDs(client, mustID(t, store, "big"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 90000 {
		t.Fatalf("ids = %d", len(ids))
	}
	if elapsed := clock.Now().Sub(start); elapsed < twitterapi.RateWindow {
		t.Fatalf("crawl elapsed %v, want at least one window of back-off", elapsed)
	}
}

func mustID(t *testing.T, store *twitter.Store, name string) twitter.UserID {
	t.Helper()
	id, err := store.LookupName(name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}
