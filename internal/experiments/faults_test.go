package experiments

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/tools/socialbakers"
	"fakeproject/internal/tools/statuspeople"
	"fakeproject/internal/tools/twitteraudit"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// faultyClient wraps a Client and fails every call once armed.
type faultyClient struct {
	inner twitterapi.Client

	mu    sync.Mutex
	calls int
	// failFrom: calls with ordinal >= failFrom error out (0 = never).
	failFrom int
}

var _ twitterapi.Client = (*faultyClient)(nil)

var errInjected = errors.New("injected backend failure")

func (f *faultyClient) trip() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failFrom > 0 && f.calls >= f.failFrom {
		return errInjected
	}
	return nil
}

func (f *faultyClient) UserByScreenName(name string) (twitter.Profile, error) {
	if err := f.trip(); err != nil {
		return twitter.Profile{}, err
	}
	return f.inner.UserByScreenName(name)
}

func (f *faultyClient) FollowerIDs(target twitter.UserID, cursor int64) (twitterapi.IDPage, error) {
	if err := f.trip(); err != nil {
		return twitterapi.IDPage{}, err
	}
	return f.inner.FollowerIDs(target, cursor)
}

func (f *faultyClient) FriendIDs(id twitter.UserID, cursor int64) (twitterapi.IDPage, error) {
	if err := f.trip(); err != nil {
		return twitterapi.IDPage{}, err
	}
	return f.inner.FriendIDs(id, cursor)
}

func (f *faultyClient) UsersLookup(ids []twitter.UserID) ([]twitter.Profile, error) {
	if err := f.trip(); err != nil {
		return nil, err
	}
	return f.inner.UsersLookup(ids)
}

func (f *faultyClient) UserTimeline(id twitter.UserID, count int, maxID twitter.TweetID) ([]twitter.Tweet, error) {
	if err := f.trip(); err != nil {
		return nil, err
	}
	return f.inner.UserTimeline(id, count, maxID)
}

func (f *faultyClient) Calls() int { return f.inner.Calls() }

func (f *faultyClient) CallsByEndpoint() map[string]int { return f.inner.CallsByEndpoint() }

// TestToolsSurviveMidCrawlFailures verifies that every analytics engine
// surfaces mid-crawl API failures as errors (never a fabricated report),
// at every stage of its pipeline: resolution, ids paging, lookups.
func TestToolsSurviveMidCrawlFailures(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 41)
	gen := population.NewGenerator(store, 41)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "subject",
		Followers:  8000,
	}); err != nil {
		t.Fatal(err)
	}
	svc := twitterapi.NewService(store)

	build := func(failFrom int) *faultyClient {
		return &faultyClient{
			inner:    twitterapi.NewDirectClient(svc, clock, twitterapi.ClientConfig{Tokens: 64}),
			failFrom: failFrom,
		}
	}
	// Fail at the 1st, 2nd and 5th API call: resolution, first page,
	// mid-lookup.
	for _, failAt := range []int{1, 2, 5} {
		fc := build(failAt)
		sp := statuspeople.New(fc, clock, statuspeople.Current())
		if _, err := sp.Audit("subject"); !errors.Is(err, errInjected) {
			t.Fatalf("statuspeople failAt=%d: err = %v, want injected", failAt, err)
		}

		sb := socialbakers.New(build(failAt), clock)
		if _, err := sb.Audit("subject"); !errors.Is(err, errInjected) {
			t.Fatalf("socialbakers failAt=%d: err = %v, want injected", failAt, err)
		}

		ta := twitteraudit.New(build(failAt), clock, 1)
		if _, err := ta.Audit("subject"); !errors.Is(err, errInjected) {
			t.Fatalf("twitteraudit failAt=%d: err = %v, want injected", failAt, err)
		}
	}
}

// TestErrorMessagesNameTheStage checks the wrapped errors identify what
// failed (the Uber guide's "handle errors once" with context).
func TestErrorMessagesNameTheStage(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 42)
	gen := population.NewGenerator(store, 42)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "subject", Followers: 3000,
	}); err != nil {
		t.Fatal(err)
	}
	svc := twitterapi.NewService(store)
	faulty := &faultyClient{
		inner:    twitterapi.NewDirectClient(svc, clock, twitterapi.ClientConfig{Tokens: 64}),
		failFrom: 2, // the ids paging stage
	}
	sp := statuspeople.New(faulty, clock, statuspeople.Current())
	_, err := sp.Audit("subject")
	if err == nil || !strings.Contains(err.Error(), "follower window") {
		t.Fatalf("error should name the failed stage: %v", err)
	}
}
