package experiments

import (
	"context"
	"fmt"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/monitord"
	"fakeproject/internal/population"
)

// The monitoring experiment: the paper's numbers are snapshots, but its
// most expensive artefact — the ≈27-day Obama crawl of Section IV-B — is a
// measurement of a *moving* population. RunMonitorWatch replays that
// regime: an Obama-scale account under continuous watch for 27 simulated
// days while the dynamics driver injects organic growth, a fake-follower
// purchase burst and a purge sweep, then scores how each tool's verdict
// trails the injected ground truth. The window-limited tools spike within
// one cadence of the burst (it lands exactly where their windows look)
// while the whole-list FC estimate moves by the burst's true dilution —
// Table III's divergence as a time series.

// MonitorConfig configures RunMonitorWatch. Zero values select the
// Obama-scale defaults noted per field.
type MonitorConfig struct {
	// Days is the watch duration in simulated days (default 27, the
	// Section IV-B crawl span).
	Days int
	// Followers is the materialised follower count of the watched target
	// (default 120,000 — the standard scale cap; the nominal value below
	// is what reports display).
	Followers int
	// NominalFollowers is the real-world count the target represents
	// (default 39,000,000, Obama-scale).
	NominalFollowers int
	// Workers is the audit service pool size (default 2).
	Workers int
	// Cadence is the re-audit interval (default 24h).
	Cadence time.Duration
	// DailyGrowth is organic arrivals per day (default Followers/150).
	DailyGrowth int
	// BurstDay and BurstSize schedule the fake-follower purchase
	// (defaults: day 9, 15% of Followers).
	BurstDay  int
	BurstSize int
	// PurgeDay and PurgeFraction schedule the platform purge
	// (defaults: day 18, 50% of the fakes).
	PurgeDay      int
	PurgeFraction float64
	// ProbeDay, when non-zero, submits an interactive audit of a second
	// small account while that day's background re-audits are queued,
	// verifying the queue discipline (interactive preempts background).
	ProbeDay int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Days <= 0 {
		c.Days = 27
	}
	if c.Followers <= 0 {
		c.Followers = 120000
	}
	if c.NominalFollowers <= 0 {
		c.NominalFollowers = 39000000
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Cadence <= 0 {
		c.Cadence = 24 * time.Hour
	}
	// The churn numbers default to the shared scenario, so the experiment
	// scores exactly the drama the cmd/auditd -churn demo plays out.
	def := population.DefaultChurnScript(c.Followers)
	if c.DailyGrowth <= 0 {
		c.DailyGrowth = def.DailyGrowth
	}
	for _, ev := range def.Events {
		switch ev.Kind {
		case population.ChurnPurchase:
			if c.BurstDay <= 0 {
				c.BurstDay = ev.Day
			}
			if c.BurstSize <= 0 {
				c.BurstSize = ev.Size
			}
		case population.ChurnPurge:
			if c.PurgeDay <= 0 {
				c.PurgeDay = ev.Day
			}
			if c.PurgeFraction <= 0 {
				c.PurgeFraction = ev.Fraction
			}
		}
	}
	return c
}

// TruthPoint is the injected ground truth on one day.
type TruthPoint struct {
	Day       int
	Followers int
	// FakePct is the true fake share of the live follower list (0-100).
	FakePct float64
}

// ToolTrail summarises how one tool's verdict series tracked the injected
// churn.
type ToolTrail struct {
	Tool string
	// BaselinePct is the mean fake verdict before the burst.
	BaselinePct float64
	// PeakPct is the maximum fake verdict from the burst day on.
	PeakPct float64
	// DetectionDelayDays is how many days after the burst the verdict
	// first rose 5 points over baseline (-1 = never).
	DetectionDelayDays int
	// MeanAbsGapPct is the mean |verdict - truth| over the whole watch:
	// how far the tool's fake share trails the live ground truth.
	MeanAbsGapPct float64
	// PostBurstBiasPct is the mean (verdict - truth) between burst and
	// purge: positive for window-limited tools that see the burst
	// concentrated, near zero for whole-list estimators.
	PostBurstBiasPct float64
}

// ProbeOutcome records the interactive-vs-background queue check.
type ProbeOutcome struct {
	Target string
	Job    auditd.JobSnapshot
	// BackgroundJobs is how many background re-audit jobs were submitted
	// in the probe's round.
	BackgroundJobs int
	// PreemptedBackground is how many of them started only after the
	// interactive probe ran (RunSeq order) — > 0 proves preemption.
	PreemptedBackground int
}

// MonitorResult is the full outcome of a monitoring replay.
type MonitorResult struct {
	Target           string
	NominalFollowers int
	Days             int
	Cadence          time.Duration
	// Truth holds one point per day (index 0 = pre-churn baseline).
	Truth []TruthPoint
	// Events is the driver's ground-truth churn log.
	Events []population.AppliedEvent
	// Series maps tool → verdict points, one per re-audit round.
	Series map[string][]monitord.Point
	// Alerts are the alerts raised during the watch.
	Alerts []monitord.Alert
	// Trails summarise per-tool tracking quality, in ToolOrder.
	Trails []ToolTrail
	// Probe is the queue-discipline check (nil unless ProbeDay was set).
	Probe *ProbeOutcome
}

// RunMonitorWatch builds a fresh Obama-scale target inside the simulation,
// watches it with monitord for cfg.Days simulated days of injected churn,
// and scores every tool's series against the ground truth.
func (s *Simulation) RunMonitorWatch(cfg MonitorConfig) (*MonitorResult, error) {
	cfg = cfg.withDefaults()

	watchName := s.nextProbeName("watchtarget")
	probeName := s.nextProbeName("probetarget")
	// Baseline population: a standing celebrity account with the usual
	// dormant tail and a modest pre-existing fake share.
	watchID, err := s.Gen.BuildTarget(population.TargetSpec{
		ScreenName:       watchName,
		Followers:        cfg.Followers,
		NominalFollowers: cfg.NominalFollowers,
		Layout: population.Layout{{Width: 0, Mix: population.Mix{
			Inactive: 0.22, Fake: 0.08, Genuine: 0.70,
		}}},
		Statuses: 9000,
	})
	if err != nil {
		return nil, fmt.Errorf("building watch target: %w", err)
	}
	if _, err := s.Gen.BuildTarget(population.TargetSpec{
		ScreenName: probeName,
		Followers:  2000,
		Statuses:   800,
	}); err != nil {
		return nil, fmt.Errorf("building probe target: %w", err)
	}
	s.nominal[watchName] = cfg.NominalFollowers
	s.nominal[probeName] = 2000

	svc, err := s.NewAuditService(auditd.Config{
		Workers:  cfg.Workers,
		QueueCap: 8 * len(ToolOrder),
	})
	if err != nil {
		return nil, fmt.Errorf("starting audit service: %w", err)
	}
	defer svc.Shutdown(context.Background())

	script := population.DefaultChurnScript(cfg.Followers)
	script.DailyGrowth = cfg.DailyGrowth
	script.Events = []population.ChurnEvent{
		{Day: cfg.BurstDay, Kind: population.ChurnPurchase, Size: cfg.BurstSize},
		{Day: cfg.PurgeDay, Kind: population.ChurnPurge, Fraction: cfg.PurgeFraction},
	}
	driver := population.NewDriver(s.Gen, watchID, script)

	// The probe is injected from the round hook, after the background
	// re-audits are queued and before they are awaited.
	var probe *ProbeOutcome
	var probeBackground []auditd.JobID
	probeArmed := false
	mon, err := monitord.New(monitord.Config{
		Service: svc,
		Clock:   s.Clock,
		OnRound: func(target string, jobs []auditd.JobID) {
			if !probeArmed || target != watchName {
				return
			}
			probeArmed = false
			probeBackground = jobs
			snap, err := svc.Submit(auditd.JobSpec{
				Target: probeName,
				Tools:  []string{ToolSB},
				// Priority 0: a plain interactive request, no boost needed.
			})
			if err == nil {
				probe = &ProbeOutcome{Target: probeName, Job: snap, BackgroundJobs: len(jobs)}
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("starting monitor: %w", err)
	}
	defer mon.Close()

	if err := mon.Watch(monitord.WatchSpec{
		Target:  watchName,
		Cadence: cfg.Cadence,
		Rules: monitord.Rules{
			FakeThresholdPct: 25,
			SpikePct:         8,
			FollowRatePerDay: 5 * float64(cfg.DailyGrowth),
		},
	}); err != nil {
		return nil, fmt.Errorf("registering watch: %w", err)
	}

	truth := make([]TruthPoint, 0, cfg.Days+1)
	recordTruth := func(day int) error {
		mix, n, err := driver.Truth()
		if err != nil {
			return err
		}
		truth = append(truth, TruthPoint{Day: day, Followers: n, FakePct: 100 * mix.Fake})
		return nil
	}

	// Day 0: baseline audit of the un-churned population.
	if err := recordTruth(0); err != nil {
		return nil, err
	}
	if _, err := mon.Tick(context.Background()); err != nil {
		return nil, fmt.Errorf("baseline round: %w", err)
	}

	for day := 1; day <= cfg.Days; day++ {
		s.Clock.Advance(cfg.Cadence)
		if _, err := driver.AdvanceDay(); err != nil {
			return nil, err
		}
		if err := recordTruth(day); err != nil {
			return nil, err
		}
		probeArmed = day == cfg.ProbeDay
		if _, err := mon.Tick(context.Background()); err != nil {
			return nil, fmt.Errorf("day %d round: %w", day, err)
		}
		if probe != nil && probe.PreemptedBackground == 0 && day == cfg.ProbeDay {
			if err := scoreProbe(svc, probe, probeBackground); err != nil {
				return nil, err
			}
		}
	}

	series, _ := mon.Series(watchName)
	result := &MonitorResult{
		Target:           watchName,
		NominalFollowers: cfg.NominalFollowers,
		Days:             cfg.Days,
		Cadence:          cfg.Cadence,
		Truth:            truth,
		Events:           driver.Log(),
		Series:           series,
		Alerts:           mon.Alerts(watchName),
		Probe:            probe,
	}
	for _, tool := range ToolOrder {
		result.Trails = append(result.Trails, scoreTrail(tool, series[tool], truth, cfg))
	}
	return result, nil
}

// scoreProbe resolves the interactive probe against its round's background
// jobs once the round has drained.
func scoreProbe(svc *auditd.Service, probe *ProbeOutcome, background []auditd.JobID) error {
	done, err := svc.Await(context.Background(), probe.Job.ID)
	if err != nil {
		return fmt.Errorf("awaiting probe: %w", err)
	}
	probe.Job = done
	for _, id := range background {
		snap, err := svc.Get(id)
		if err != nil {
			continue
		}
		if snap.RunSeq > done.RunSeq {
			probe.PreemptedBackground++
		}
	}
	return nil
}

// scoreTrail computes one tool's tracking summary. Points are per round:
// round r observed day r-1.
func scoreTrail(tool string, points []monitord.Point, truth []TruthPoint, cfg MonitorConfig) ToolTrail {
	trail := ToolTrail{Tool: tool, DetectionDelayDays: -1}
	if len(points) == 0 {
		return trail
	}
	preBurst, postBurst := 0, 0
	for _, p := range points {
		day := p.Round - 1
		if day >= len(truth) {
			day = len(truth) - 1
		}
		gap := p.FakePct - truth[day].FakePct
		trail.MeanAbsGapPct += abs(gap)
		if day < cfg.BurstDay {
			trail.BaselinePct += p.FakePct
			preBurst++
			continue
		}
		if p.FakePct > trail.PeakPct {
			trail.PeakPct = p.FakePct
		}
		if day < cfg.PurgeDay {
			trail.PostBurstBiasPct += gap
			postBurst++
		}
	}
	trail.MeanAbsGapPct /= float64(len(points))
	if preBurst > 0 {
		trail.BaselinePct /= float64(preBurst)
	}
	if postBurst > 0 {
		trail.PostBurstBiasPct /= float64(postBurst)
	}
	for _, p := range points {
		day := p.Round - 1
		if day >= cfg.BurstDay && p.FakePct >= trail.BaselinePct+5 {
			trail.DetectionDelayDays = day - cfg.BurstDay
			break
		}
	}
	return trail
}
