package experiments

import (
	"fmt"
	"time"

	"fakeproject/internal/core"
)

// TableIIRow is one measured row of Table II: response time to the first
// analysis request per tool, plus the repeat-request time the paper reports
// in prose ("for the subsequent requests ... all the tools output the
// results in less than 5 seconds").
type TableIIRow struct {
	ScreenName string
	Followers  int
	// FirstSeconds is the first-request response time per tool key.
	FirstSeconds map[string]float64
	// RepeatSeconds is the immediately-repeated request time per tool key.
	RepeatSeconds map[string]float64
	// CachedTools lists tools that served the first request from cache.
	CachedTools []string
	// Paper is the published row for side-by-side comparison (nil if the
	// account is not in Table II).
	Paper *core.ResponseTimes
}

// RunTableII reproduces the response-time experiment of Section IV-C over
// the average-class accounts: prewarm the caches the paper caught, then
// issue a first and a repeat request per (account, tool).
//
// Measurements are spaced 30 virtual minutes apart, as the original
// measurements were taken as separate interactive sessions; this also lets
// each tool's rate-limit window roll between accounts, matching the field
// conditions the commercial tools operate under.
func (s *Simulation) RunTableII() ([]TableIIRow, error) {
	if err := s.prewarmCaches(); err != nil {
		return nil, err
	}
	var rows []TableIIRow
	for _, acct := range core.AverageAccounts(s.testbed) {
		row := TableIIRow{
			ScreenName:    acct.ScreenName,
			Followers:     acct.Followers,
			FirstSeconds:  make(map[string]float64, 4),
			RepeatSeconds: make(map[string]float64, 4),
			Paper:         acct.TableII,
		}
		for _, tool := range ToolOrder {
			auditor := s.auditors[tool]
			first, err := auditor.Audit(acct.ScreenName)
			if err != nil {
				return nil, fmt.Errorf("table II, %s on %s: %w", tool, acct.ScreenName, err)
			}
			row.FirstSeconds[tool] = first.Elapsed.Seconds()
			if first.Cached {
				row.CachedTools = append(row.CachedTools, tool)
			}
			repeat, err := auditor.Audit(acct.ScreenName)
			if err != nil {
				return nil, fmt.Errorf("table II repeat, %s on %s: %w", tool, acct.ScreenName, err)
			}
			row.RepeatSeconds[tool] = repeat.Elapsed.Seconds()
			if !repeat.Cached {
				return nil, fmt.Errorf("table II: repeat request of %s on %s was not cached", tool, acct.ScreenName)
			}
			// Separate interactive sessions: let windows roll.
			s.Clock.Advance(30 * time.Minute)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// prewarmCaches resets every tool cache to the paper's field conditions:
// all entries flushed (Table II measures *first* requests), then the
// pre-computed results the paper detected are installed — Twitteraudit had
// assessed @pinucciotwit "7 months ago"; StatusPeople displayed
// @pinucciotwit, @mvbrambilla and @pierofassino "after 2 seconds only".
func (s *Simulation) prewarmCaches() error {
	for _, acct := range s.testbed {
		for _, auditor := range s.auditors {
			auditor.Forget(acct.ScreenName)
		}
	}
	sevenMonthsAgo := s.Clock.Now().AddDate(0, -7, 0)
	monthAgo := s.Clock.Now().AddDate(0, -1, 0)
	for _, acct := range s.testbed {
		for _, tool := range acct.CachedBy {
			auditor, ok := s.auditors[tool]
			if !ok {
				return fmt.Errorf("prewarm: unknown tool %q for %s", tool, acct.ScreenName)
			}
			assessedAt := monthAgo
			if tool == ToolTA {
				assessedAt = sevenMonthsAgo
			}
			if err := auditor.Prewarm(acct.ScreenName, assessedAt); err != nil {
				return err
			}
			s.Clock.Advance(15 * time.Minute)
		}
	}
	return nil
}
