package experiments

import (
	"testing"
)

func TestWindowSweepErrorShrinksWithWindow(t *testing.T) {
	sim := sharedBigSim(t) // PC_Chiambretti is built at the 60K cap
	points, err := sim.RunWindowSweep("PC_Chiambretti", []int{2000, 5000, 35000, 0}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// The whole-list point must be nearly exact.
	last := points[len(points)-1]
	if last.Window != 0 || last.AbsError() > 3 {
		t.Fatalf("whole-list error = %.1f pts, want ≈0", last.AbsError())
	}
	// The smallest window must be the worst on this dormant-heavy account.
	if points[0].AbsError() < 20 {
		t.Fatalf("newest-2000 error = %.1f pts, want large", points[0].AbsError())
	}
	// Error must not increase as the window widens.
	for i := 1; i < len(points); i++ {
		if points[i].AbsError() > points[i-1].AbsError()+3 {
			t.Fatalf("error grew with window: %+v", points)
		}
	}
	// Truth is the same in every point.
	for _, p := range points {
		if p.TruthPct != points[0].TruthPct {
			t.Fatal("truth changed between points")
		}
	}
}

func TestSamplingAblationBlamesTheWindow(t *testing.T) {
	sim := sharedBigSim(t) // PC_Chiambretti is built at the 60K cap
	rows, err := sim.RunSamplingAblation("PC_Chiambretti")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	deployed := rows[0]
	if deployed.Window != 0 {
		t.Fatal("first row must be the deployed engine")
	}
	// Same classifier, whole-list sampling: near-zero error.
	if deployed.AbsError() > 3 {
		t.Fatalf("deployed FC error = %.1f pts", deployed.AbsError())
	}
	// Same classifier, tools' windows: error grows as the window shrinks
	// (the junk on this account hides in the old base). The 35K window
	// still covers most of this 60K population, so only the narrow
	// windows show dramatic errors.
	byWindow := map[int]AblationRow{}
	for _, row := range rows {
		byWindow[row.Window] = row
		if row.Window > 0 && row.AbsError() < deployed.AbsError() {
			t.Fatalf("%s error %.1f below the deployed engine's %.1f",
				row.Label, row.AbsError(), deployed.AbsError())
		}
	}
	if e := byWindow[2000].AbsError(); e < 25 {
		t.Fatalf("Socialbakers-window error = %.1f pts, want > 25", e)
	}
	if e := byWindow[5000].AbsError(); e < 10 {
		t.Fatalf("Twitteraudit-window error = %.1f pts, want > 10", e)
	}
	if byWindow[2000].AbsError() <= byWindow[35000].AbsError() {
		t.Fatal("narrower window should err more")
	}
	// The whole-list crawl costs more API calls than any window.
	for _, row := range rows[1:] {
		if deployed.APICalls <= row.APICalls {
			t.Fatalf("deployed calls %d should exceed %s calls %d",
				deployed.APICalls, row.Label, row.APICalls)
		}
	}
}

func TestWindowSweepUnknownAccount(t *testing.T) {
	sim := sharedSmallSim(t)
	if _, err := sim.RunWindowSweep("ghost", []int{100}, 10); err == nil {
		t.Fatal("unknown account should fail")
	}
}
