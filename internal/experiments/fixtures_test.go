package experiments

import (
	"sync"
	"testing"
)

// Shared test fixtures: building a simulation materialises six-figure
// follower populations and trains a classifier, so the expensive
// configurations are built once per test binary (sync.Once) and shared by
// every test that can tolerate a shared clock and caches. Tests that need
// pristine state (determinism checks) still build their own.

var bigSimFixture struct {
	once sync.Once
	sim  *Simulation
	err  error
}

// sharedBigSim returns the package's one full-size simulation: the
// representative five-account testbed subset plus the Deep Dive targets at
// a 60K scale cap — the configuration TestIntegration asserts against.
// Callers share its virtual clock and tool caches; runners that need fresh
// verdicts already flush the relevant cache entries themselves.
func sharedBigSim(t *testing.T) *Simulation {
	t.Helper()
	if testing.Short() {
		t.Skip("shared fixture builds six-figure populations")
	}
	bigSimFixture.once.Do(func() {
		bigSimFixture.sim, bigSimFixture.err = NewSimulation(SimConfig{
			Only: []string{
				"RobDWaller",     // low class
				"giovanniallevi", // average, uncached
				"pinucciotwit",   // average, cached by TA and SP
				"PC_Chiambretti", // the 97%-inactive pathological case
				"BarackObama",    // high class, scaled
			},
			ScaleCap:     60000,
			WithDeepDive: true,
		})
	})
	if bigSimFixture.err != nil {
		t.Fatal(bigSimFixture.err)
	}
	return bigSimFixture.sim
}

var smallSimFixture struct {
	once sync.Once
	sim  *Simulation
	err  error
}

// sharedSmallSim returns a davc-only simulation shared by tests that only
// exercise validation and error paths (no assertions on verdict values).
func sharedSmallSim(t *testing.T) *Simulation {
	t.Helper()
	smallSimFixture.once.Do(func() {
		smallSimFixture.sim, smallSimFixture.err = NewSimulation(SimConfig{Only: []string{"davc"}})
	})
	if smallSimFixture.err != nil {
		t.Fatal(smallSimFixture.err)
	}
	return smallSimFixture.sim
}
