package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// The standard workload mixes, in canonical order.
//
//   - crawl-heavy: followers/ids page walks (with live cursors) and
//     friends/ids first pages, while mild churn mutates the hottest list —
//     the monitord crawl plane under organic platform motion.
//   - audit-heavy: interactive fakecheck submissions with Zipf-skewed
//     targets plus status polls — the auditd front door, where dedup,
//     caching and queue backpressure live.
//   - churn-storm: purchase bursts and purge sweeps hammering the hottest
//     target while readers page and resolve it — the churn-proof-cursor
//     contract under fire.
//   - celebrity-hotspot: every request aimed at the single hottest account
//     (profile, pages, timeline), concentrating all load on one store
//     shard — the worst case for lock striping.
//   - multinode: the same crawl-shaped traffic through a router fronting a
//     two-node partitioned ring booted inside the harness, with a chaos
//     plan that kills and rejoins one node mid-run (see multinode.go).
const (
	MixCrawlHeavy       = "crawl-heavy"
	MixAuditHeavy       = "audit-heavy"
	MixChurnStorm       = "churn-storm"
	MixCelebrityHotspot = "celebrity-hotspot"
)

// MixNames lists the standard mixes in canonical order.
func MixNames() []string {
	return []string{MixCrawlHeavy, MixAuditHeavy, MixChurnStorm, MixCelebrityHotspot, MixMultiNode}
}

// churnPlan describes the background platform churn a mix runs under.
type churnPlan struct {
	interval      time.Duration
	burst         int
	purgeFraction float64
}

// mixSpec pairs a Mix with its background machinery: platform churn, a
// chaos plan (the multinode kill/rejoin), and any teardown the mix's
// private infrastructure needs after the run.
type mixSpec struct {
	mix     Mix
	churn   *churnPlan
	chaos   func(ctx context.Context, d time.Duration) error
	cleanup func()
}

// buildMix assembles the named mix over this harness.
func (h *Harness) buildMix(name string, seed uint64) (mixSpec, error) {
	rnd := rand.New(rand.NewSource(int64(seed)))
	switch name {
	case MixCrawlHeavy:
		if h.store == nil {
			return mixSpec{mix: newCrawlMix(h, name, rnd, 32, h.Targets)}, nil
		}
		return mixSpec{
			mix:   newCrawlMix(h, name, rnd, 32, h.Targets),
			churn: &churnPlan{interval: 60 * time.Millisecond, burst: 150, purgeFraction: 0.05},
		}, nil
	case MixAuditHeavy:
		if h.AuditBase == "" {
			return mixSpec{}, fmt.Errorf("mix %s needs an audit service (none configured)", name)
		}
		return mixSpec{mix: newAuditMix(h, rnd)}, nil
	case MixChurnStorm:
		if h.store == nil {
			return mixSpec{}, fmt.Errorf("mix %s needs an in-process platform to churn", name)
		}
		return mixSpec{
			mix:   newStormMix(h, rnd),
			churn: &churnPlan{interval: 25 * time.Millisecond, burst: 400, purgeFraction: 0.25},
		}, nil
	case MixCelebrityHotspot:
		mix, err := newHotspotMix(h, rnd)
		if err != nil {
			return mixSpec{}, err
		}
		return mixSpec{mix: mix}, nil
	case MixMultiNode:
		if h.store == nil {
			return mixSpec{}, fmt.Errorf("mix %s needs an in-process platform to partition", name)
		}
		cluster, err := h.newMultiCluster(multinodeNodes)
		if err != nil {
			return mixSpec{}, err
		}
		return mixSpec{
			mix:     newMultiMix(h, rnd, cluster),
			chaos:   cluster.chaosPlan,
			cleanup: cluster.close,
		}, nil
	default:
		return mixSpec{}, fmt.Errorf("unknown mix %q (have %v)", name, MixNames())
	}
}

// RunMix executes one named mix under the pattern, driving any background
// churn the mix calls for concurrently with the load.
func (h *Harness) RunMix(ctx context.Context, name string, p Pattern, d time.Duration, maxInFlight int) (Result, error) {
	return h.RunMixWith(ctx, name, p, d, maxInFlight, nil)
}

// RunMixWith is RunMix recording into a caller-supplied collector (nil for
// a private one) so live progress and metrics publication can observe the
// run as it happens.
func (h *Harness) RunMixWith(ctx context.Context, name string, p Pattern, d time.Duration, maxInFlight int, col *Collector) (Result, error) {
	spec, err := h.buildMix(name, drand.New(h.seed).SeedFor("loadgen/"+name))
	if err != nil {
		return Result{}, err
	}
	if spec.cleanup != nil {
		defer spec.cleanup()
	}
	if col == nil {
		// Allocate the collector here rather than inside RunWith so the
		// churn goroutine's write-probe timings land in the same Result.
		col = NewCollector()
	}

	churnCtx, stopChurn := context.WithCancel(ctx)
	defer stopChurn()
	type churnOutcome struct {
		added, removed int
		err            error
	}
	churnDone := make(chan churnOutcome, 1)
	if spec.churn != nil {
		go func() {
			a, r, err := h.runChurn(churnCtx, col, spec.churn.interval, spec.churn.burst, spec.churn.purgeFraction)
			churnDone <- churnOutcome{a, r, err}
		}()
	}
	chaosDone := make(chan error, 1)
	if spec.chaos != nil {
		go func() { chaosDone <- spec.chaos(churnCtx, d) }()
	}

	res := RunWith(ctx, spec.mix, p, d, maxInFlight, col)

	if spec.chaos != nil {
		stopChurn()
		if err := <-chaosDone; err != nil {
			return res, fmt.Errorf("chaos plan: %w", err)
		}
	}
	if spec.churn != nil {
		stopChurn()
		outcome := <-churnDone
		if outcome.err != nil {
			return res, fmt.Errorf("background churn: %w", outcome.err)
		}
		res.ChurnAdded, res.ChurnRemoved = outcome.added, outcome.removed
	}
	return res, nil
}

// --- crawl-heavy ---

// crawlSlot is one long-running follower crawl: arrivals assigned to the
// slot advance its cursor one page per request, restarting from the top
// when the list is exhausted — exactly the shape of a monitord re-crawl.
type crawlSlot struct {
	mu     sync.Mutex
	target Target
	cursor int64
	token  string
}

type crawlMix struct {
	name  string
	h     *Harness
	slots []*crawlSlot
	rnd   *rand.Rand
}

func newCrawlMix(h *Harness, name string, rnd *rand.Rand, slots int, targets []Target) *crawlMix {
	m := &crawlMix{name: name, h: h, rnd: rnd}
	for i := 0; i < slots; i++ {
		m.slots = append(m.slots, &crawlSlot{
			target: targets[i%len(targets)],
			cursor: twitterapi.CursorFirst,
			token:  fmt.Sprintf("%s-slot%d", name, i),
		})
	}
	return m
}

func (m *crawlMix) Name() string { return m.name }

func (m *crawlMix) Next(i int) Op {
	if i%5 == 4 {
		// A friends/ids first page of a random account: procedural lists
		// exercise the Feistel synthesis path.
		id := m.h.randomUserID(m.rnd)
		token := fmt.Sprintf("%s-friends%d", m.name, i%8)
		return Op{Endpoint: "friends/ids", Do: func(ctx context.Context) error {
			_, err := m.h.get(ctx, m.h.idsURL("/1.1/friends/ids.json", id, twitterapi.CursorFirst), token)
			return err
		}}
	}
	slot := m.slots[i%len(m.slots)]
	return Op{Endpoint: "followers/ids", Do: func(ctx context.Context) error {
		return slot.advance(ctx, m.h)
	}}
}

// advance fetches the slot's next page and moves its cursor.
func (s *crawlSlot) advance(ctx context.Context, h *Harness) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	body, err := h.get(ctx, h.idsURL("/1.1/followers/ids.json", s.target.ID, s.cursor), s.token)
	if err != nil {
		return err
	}
	var page struct {
		NextCursor int64 `json:"next_cursor"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return fmt.Errorf("decoding ids page: %w", err)
	}
	if page.NextCursor == twitterapi.CursorDone {
		s.cursor = twitterapi.CursorFirst
	} else {
		s.cursor = page.NextCursor
	}
	return nil
}

// randomUserID picks an account to probe: any platform account locally,
// a known target remotely.
func (h *Harness) randomUserID(rnd *rand.Rand) twitter.UserID {
	if h.store != nil {
		return twitter.UserID(rnd.Int63n(int64(h.store.UserCount())) + 1)
	}
	return h.Targets[rnd.Intn(len(h.Targets))].ID
}

// --- audit-heavy ---

type auditMix struct {
	h     *Harness
	zipf  *rand.Zipf
	rnd   *rand.Rand
	tools []string
	// lastJob remembers the most recent submission's id for status polls.
	lastJob atomic.Value // string
}

func newAuditMix(h *Harness, rnd *rand.Rand) *auditMix {
	return &auditMix{
		h: h,
		// Zipf exponent 1.2 over the target family: the hottest target
		// draws the bulk of the submissions, so dedup and the result
		// cache carry realistic skew.
		zipf:  rand.NewZipf(rnd, 1.2, 1, uint64(len(h.Targets)-1)),
		rnd:   rnd,
		tools: h.tools,
	}
}

func (m *auditMix) Name() string { return MixAuditHeavy }

func (m *auditMix) Next(i int) Op {
	switch {
	case i%8 == 7:
		return Op{Endpoint: "audits/stats", Do: func(ctx context.Context) error {
			_, err := m.h.get(ctx, m.h.AuditBase+"/v1/stats", "loadd")
			return err
		}}
	case i%8 == 3:
		if id, _ := m.lastJob.Load().(string); id != "" {
			return Op{Endpoint: "audits/status", Do: func(ctx context.Context) error {
				_, err := m.h.get(ctx, m.h.AuditBase+"/v1/audits/"+url.PathEscape(id), "loadd")
				return err
			}}
		}
		fallthrough
	default:
		target := m.h.Targets[m.zipf.Uint64()].Name
		spec := struct {
			Target string   `json:"target"`
			Tools  []string `json:"tools,omitempty"`
		}{Target: target, Tools: m.tools}
		body, _ := json.Marshal(spec)
		return Op{Endpoint: "audits/submit", Do: func(ctx context.Context) error {
			resp, err := m.h.post(ctx, m.h.AuditBase+"/v1/audits", body)
			if err != nil {
				return err
			}
			var snap struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(resp, &snap); err != nil {
				return fmt.Errorf("decoding submit response: %w", err)
			}
			if snap.ID != "" {
				m.lastJob.Store(snap.ID)
			}
			return nil
		}}
	}
}

// --- churn-storm ---

// stormMix reads the one target the churn loop is simultaneously growing
// and purging: continuing page walks (live cursors racing removals below
// their anchors), fresh first pages, and profile reads whose follower
// counters move between calls.
type stormMix struct {
	h     *Harness
	crawl *crawlMix
	// slotSeq selects crawl slots round-robin independently of the
	// arrival index: slot = i%N with the branch on i%4 would alias and
	// leave the slots whose residues never coincide permanently unused.
	slotSeq int
}

func newStormMix(h *Harness, rnd *rand.Rand) *stormMix {
	hot := []Target{h.Targets[0]}
	return &stormMix{h: h, crawl: newCrawlMix(h, MixChurnStorm, rnd, 16, hot)}
}

func (m *stormMix) Name() string { return MixChurnStorm }

func (m *stormMix) Next(i int) Op {
	hot := m.h.Targets[0]
	switch i % 4 {
	case 0, 1:
		slot := m.crawl.slots[m.slotSeq%len(m.crawl.slots)]
		m.slotSeq++
		return Op{Endpoint: "followers/ids", Do: func(ctx context.Context) error {
			return slot.advance(ctx, m.h)
		}}
	case 2:
		token := fmt.Sprintf("storm-first%d", i%8)
		return Op{Endpoint: "followers/ids:first", Do: func(ctx context.Context) error {
			_, err := m.h.get(ctx, m.h.idsURL("/1.1/followers/ids.json", hot.ID, twitterapi.CursorFirst), token)
			return err
		}}
	default:
		return Op{Endpoint: "users/show", Do: func(ctx context.Context) error {
			params := url.Values{"screen_name": {hot.Name}}
			_, err := m.h.get(ctx, m.h.APIBase+"/1.1/users/show.json?"+params.Encode(), "storm-show")
			return err
		}}
	}
}

// --- celebrity-hotspot ---

// hotspotMix aims every request at the single hottest account. Account
// state is sharded by ID, so profile reads, follower pages and timeline
// pages here all serialise on one shard's lock — the adversarial case for
// the striped store that uniform load never exhibits.
type hotspotMix struct {
	h       *Harness
	crawl   *crawlMix
	slotSeq int // see stormMix.slotSeq
}

func newHotspotMix(h *Harness, rnd *rand.Rand) (*hotspotMix, error) {
	hot := []Target{h.Targets[0]}
	return &hotspotMix{h: h, crawl: newCrawlMix(h, MixCelebrityHotspot, rnd, 16, hot)}, nil
}

func (m *hotspotMix) Name() string { return MixCelebrityHotspot }

func (m *hotspotMix) Next(i int) Op {
	hot := m.h.Targets[0]
	switch i % 4 {
	case 0:
		return Op{Endpoint: "users/show", Do: func(ctx context.Context) error {
			params := url.Values{"screen_name": {hot.Name}}
			_, err := m.h.get(ctx, m.h.APIBase+"/1.1/users/show.json?"+params.Encode(), "hotspot-show")
			return err
		}}
	case 1:
		token := fmt.Sprintf("hotspot-tl%d", i%8)
		return Op{Endpoint: "statuses/user_timeline", Do: func(ctx context.Context) error {
			u := m.h.APIBase + "/1.1/statuses/user_timeline.json?user_id=" +
				strconv.FormatInt(int64(hot.ID), 10) + "&count=200"
			_, err := m.h.get(ctx, u, token)
			return err
		}}
	default:
		slot := m.crawl.slots[m.slotSeq%len(m.crawl.slots)]
		m.slotSeq++
		return Op{Endpoint: "followers/ids", Do: func(ctx context.Context) error {
			return slot.advance(ctx, m.h)
		}}
	}
}
