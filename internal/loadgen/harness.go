package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"fakeproject/internal/auditd"
	"fakeproject/internal/metrics"
	"fakeproject/internal/population"
	"fakeproject/internal/ratelimit"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
	"fakeproject/internal/wal"
)

// Config shapes a local harness platform.
type Config struct {
	// Seed drives the synthetic population and every sampling stream.
	Seed uint64
	// Targets is how many audit targets to build (default 8). Target
	// sizes follow a 1/k harmonic series of Followers, so the population
	// is heavy-tailed like the paper's testbed.
	Targets int
	// Followers is the materialised follower count of the largest target
	// (default 20,000).
	Followers int
	// Statuses is the timeline depth per target (default 400).
	Statuses int
	// AuditWorkers sizes the auditd pool (default 4); AuditQueue bounds
	// its pending queue (default 256 — exceeding it is backpressure, a
	// 429 the harness counts as throttled, not as an error).
	AuditWorkers, AuditQueue int
	// AuditTools selects the analytics engines audit jobs run (default:
	// the three commercial engines; add auditd.ToolFC to pay classifier
	// training once at startup).
	AuditTools []string
	// TableILimits applies the paper's Table I budgets on the API server.
	// Default off: the harness measures the serving hot path, and an
	// open-loop generator against 1-per-minute budgets measures only the
	// limiter. With limits on, 429s are expected and counted.
	TableILimits bool
	// Metrics, when non-nil, builds the platform observed: both HTTP planes
	// get the shared per-endpoint instrumentation and the store/audit
	// internals are exported into this registry (see also Harness.Observe).
	Metrics *metrics.Registry
	// WALDir, when set, backs the in-process store with a write-ahead log in
	// that directory, so every churn mutation pays the real durability cost.
	// The directory must be fresh: the harness builds its own population and
	// refuses to run on top of recovered state.
	WALDir string
	// WALFsync is the log's fsync policy ("always", "interval", "off";
	// default interval). Only meaningful with WALDir.
	WALFsync string
	// WALCompactEvery compacts the log once that many records accumulate
	// past the newest snapshot (0 = no automatic compaction).
	WALCompactEvery uint64
}

func (c Config) withDefaults() Config {
	if c.Targets <= 0 {
		c.Targets = 8
	}
	if c.Followers <= 0 {
		c.Followers = 20000
	}
	if c.Statuses <= 0 {
		c.Statuses = 400
	}
	if c.AuditWorkers <= 0 {
		c.AuditWorkers = 4
	}
	if c.AuditQueue <= 0 {
		c.AuditQueue = 256
	}
	if len(c.AuditTools) == 0 {
		c.AuditTools = []string{auditd.ToolTA, auditd.ToolSP, auditd.ToolSB}
	}
	return c
}

// newLoadClient builds the keep-alive HTTP client a harness issues load
// on: the idle pool must comfortably exceed the in-flight cap or the
// generator measures TCP handshakes instead of the server.
func newLoadClient() *http.Client {
	return &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// Target is one audit target the mixes aim at.
type Target struct {
	ID        twitter.UserID
	Name      string
	Followers int
}

// Harness holds an assembled HTTP plane: the simulated Twitter API and the
// audit service listening on TCP loopback, plus the platform handles the
// churn-driving mixes mutate. A remote harness (NewRemote) has no platform
// handles and supports the read-only mixes.
type Harness struct {
	// APIBase is the twitterd-equivalent base URL ("http://127.0.0.1:PORT").
	APIBase string
	// AuditBase is the auditd base URL; empty when the harness fronts a
	// remote platform without an audit service.
	AuditBase string
	// Targets are the built (or resolved) audit targets, largest first.
	Targets []Target

	// HTTP is the shared keep-alive client every mix issues requests on.
	HTTP *http.Client

	seed  uint64
	store *twitter.Store // nil for remote harnesses
	wal   *wal.Log       // non-nil when Config.WALDir backs the store
	gen   *population.Generator
	churn *population.Driver // purge machinery for the hottest target

	svc     *auditd.Service
	servers []*http.Server
	tools   []string
}

// NewLocal builds the full in-process platform: population, API server and
// audit service, each listening on its own loopback TCP port, so the load
// path exercises the real wire stack end to end.
func NewLocal(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	clock := simclock.Real{}
	var store *twitter.Store
	var wlog *wal.Log
	if cfg.WALDir != "" {
		policy, err := wal.ParsePolicy(cfg.WALFsync)
		if err != nil {
			return nil, err
		}
		var stats wal.RecoveryStats
		store, wlog, stats, err = wal.Open(wal.Config{
			Dir:          cfg.WALDir,
			Policy:       policy,
			CompactEvery: cfg.WALCompactEvery,
			Clock:        clock,
			Seed:         cfg.Seed,
			Metrics:      cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		if stats.Users > 0 {
			_ = wlog.Close()
			return nil, fmt.Errorf("loadgen: WAL dir %s already holds %d accounts; the harness builds its own population and needs a fresh directory", cfg.WALDir, stats.Users)
		}
	} else {
		store = twitter.NewStore(clock, cfg.Seed)
	}
	gen := population.NewGenerator(store, cfg.Seed)

	h := &Harness{
		seed:  cfg.Seed,
		store: store,
		wal:   wlog,
		gen:   gen,
		tools: cfg.AuditTools,
		HTTP:  newLoadClient(),
	}

	// A heavy-tailed target family: target k carries Followers/(k+1)
	// followers, with a healthy share of fakes so purge sweeps have
	// victims.
	layout := population.Layout{{Width: 0, Mix: population.FromPercentages(25, 15, 60)}}
	for i := 0; i < cfg.Targets; i++ {
		n := cfg.Followers / (i + 1)
		if n < 500 {
			n = 500
		}
		name := fmt.Sprintf("load_t%d", i)
		id, err := gen.BuildTarget(population.TargetSpec{
			ScreenName: name,
			Followers:  n,
			Layout:     layout,
			Statuses:   cfg.Statuses,
			FollowSpan: 2 * 365 * 24 * time.Hour,
		})
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("building target %s: %w", name, err)
		}
		h.Targets = append(h.Targets, Target{ID: id, Name: name, Followers: n})
	}
	h.churn = population.NewDriver(gen, h.Targets[0].ID, population.ChurnScript{})

	// The API plane.
	apiSvc := twitterapi.NewService(store)
	var limits map[string]ratelimit.Limit
	if cfg.TableILimits {
		limits = twitterapi.DefaultLimits()
	}
	apiServer := twitterapi.NewServerLimits(apiSvc, clock, limits)
	if cfg.Metrics != nil {
		apiServer = twitterapi.NewServerObserved(apiSvc, clock, limits, cfg.Metrics)
	}
	apiBase, err := h.listen(apiServer)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.APIBase = apiBase

	// The audit plane: engines crawl the store through in-process clients
	// with a wide token pool (the measured surface is auditd's HTTP plane:
	// queueing, scheduling and engine compute, not Table I sleeps).
	newClient := func(tool string, worker int) twitterapi.Client {
		return twitterapi.NewDirectClient(apiSvc, clock, twitterapi.ClientConfig{
			Tokens: 1000,
			Seed:   cfg.Seed + uint64(worker)*31,
		})
	}
	factories := auditd.StandardFactories(newClient, auditd.ToolSetConfig{Clock: clock, Seed: cfg.Seed})
	tools := make(map[string]auditd.Factory, len(cfg.AuditTools))
	for _, tool := range cfg.AuditTools {
		f, ok := factories[tool]
		if !ok {
			h.Close()
			return nil, fmt.Errorf("unknown audit tool %q", tool)
		}
		tools[tool] = f
	}
	svc, err := auditd.New(auditd.Config{
		Workers:   cfg.AuditWorkers,
		QueueCap:  cfg.AuditQueue,
		CacheTTL:  time.Minute,
		Clock:     clock,
		Tools:     tools,
		ToolOrder: cfg.AuditTools,
	})
	if err != nil {
		h.Close()
		return nil, fmt.Errorf("building audit service: %w", err)
	}
	h.svc = svc
	auditHandler := http.Handler(auditd.NewHandler(svc))
	if cfg.Metrics != nil {
		auditHandler = auditd.NewHandlerObserved(svc, cfg.Metrics)
		twitterapi.ObserveStore(cfg.Metrics, store)
	}
	auditBase, err := h.listen(auditHandler)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.AuditBase = auditBase
	return h, nil
}

// NewRemote fronts externally running daemons: api is a twitterd base URL
// (required), audit an auditd base URL (optional — without it the
// audit-heavy mix is unavailable, and without an in-process store the
// churn-driving mixes are too). Target accounts are resolved over the API.
func NewRemote(api, audit string, accounts []string) (*Harness, error) {
	h := &Harness{
		APIBase:   strings.TrimSuffix(api, "/"),
		AuditBase: strings.TrimSuffix(audit, "/"),
		tools:     nil, // default tool set of the remote auditd
		HTTP:      newLoadClient(),
	}
	if len(accounts) == 0 {
		return nil, fmt.Errorf("remote harness needs at least one target account")
	}
	for _, name := range accounts {
		var u struct {
			ID        int64 `json:"id"`
			Followers int   `json:"followers_count"`
		}
		params := url.Values{"screen_name": {name}}
		body, err := h.get(context.Background(), h.APIBase+"/1.1/users/show.json?"+params.Encode(), "resolve")
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", name, err)
		}
		if err := json.Unmarshal(body, &u); err != nil {
			return nil, fmt.Errorf("resolving %s: %w", name, err)
		}
		h.Targets = append(h.Targets, Target{ID: twitter.UserID(u.ID), Name: name, Followers: u.Followers})
	}
	return h, nil
}

// listen starts an HTTP server for handler on an ephemeral loopback port.
func (h *Harness) listen(handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("listening: %w", err)
	}
	srv := &http.Server{Handler: handler}
	h.servers = append(h.servers, srv)
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// Close tears the harness down: HTTP servers first, then the audit pool,
// then the WAL (sealing its final segment) once nothing can mutate the store.
func (h *Harness) Close() {
	for _, srv := range h.servers {
		_ = srv.Close()
	}
	if h.svc != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = h.svc.Shutdown(ctx)
	}
	if h.wal != nil {
		_ = h.wal.Close()
	}
	h.HTTP.CloseIdleConnections()
}

// get issues one GET with the harness token and classifies the outcome:
// body on 200, ErrThrottled on 429, a descriptive error otherwise.
func (h *Harness) get(ctx context.Context, rawURL, token string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	return h.do(req)
}

// post issues one POST of a JSON body, classified like get.
func (h *Harness) post(ctx context.Context, rawURL string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rawURL, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return h.do(req)
}

func (h *Harness) do(req *http.Request) ([]byte, error) {
	resp, err := h.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	closeErr := resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("closing body: %w", closeErr)
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, ErrThrottled
	case resp.StatusCode >= 400:
		snippet := string(body)
		if len(snippet) > 120 {
			snippet = snippet[:120]
		}
		return nil, fmt.Errorf("HTTP %d from %s: %s", resp.StatusCode, req.URL.Path, snippet)
	}
	return body, nil
}

// idsURL builds a followers/ids or friends/ids request URL.
func (h *Harness) idsURL(path string, id twitter.UserID, cursor int64) string {
	return h.APIBase + path + "?user_id=" + strconv.FormatInt(int64(id), 10) +
		"&cursor=" + strconv.FormatInt(cursor, 10)
}

// Observe exports the local platform's internal signals into reg: store
// shard heat and the audit service's queue/cache counters. Remote
// harnesses have neither and Observe is a no-op for them.
func (h *Harness) Observe(reg *metrics.Registry) {
	if h.store != nil {
		twitterapi.ObserveStore(reg, h.store)
	}
	if h.svc != nil {
		h.svc.Observe(reg)
	}
}

// churnStep applies one step of background churn to the hottest target:
// alternating purchase bursts at the newest end of the list and purge
// sweeps over the ground-truth fakes — the storm the crawl mixes race.
// When col is non-nil, the step's writes are timed into it: the burst as one
// "write/follow-burst" sample plus individually timed "write/follow" and
// "write/tweet" probe ops, and purge sweeps as "write/purge". The probes run
// with and without a WAL, so the durability-tax comparison reads like for
// like.
func (h *Harness) churnStep(col *Collector, step, burst int, purgeFraction float64) (added, removed int, err error) {
	if h.store == nil {
		return 0, 0, fmt.Errorf("remote harness cannot churn the platform")
	}
	record := func(endpoint string, start time.Time, err error) {
		if col != nil {
			col.Record(endpoint, time.Since(start), err)
		}
	}
	hot := h.Targets[0].ID
	if step%2 == 0 {
		start := time.Now()
		err := h.gen.BuyFollowers(hot, burst)
		record("write/follow-burst", start, err)
		if err != nil {
			return 0, 0, err
		}
		added = burst
		for i := 0; i < 4; i++ {
			start := time.Now()
			err := h.gen.BuyFollowers(hot, 1)
			record("write/follow", start, err)
			if err != nil {
				return added, 0, err
			}
			added++
		}
		for i := 0; i < 2; i++ {
			start := time.Now()
			_, err := h.store.AppendTweet(hot, twitter.Tweet{
				CreatedAt: h.store.Now(),
				Text:      "churn probe",
				Source:    "loadgen",
			})
			record("write/tweet", start, err)
			if err != nil {
				return added, 0, err
			}
		}
		return added, 0, nil
	}
	start := time.Now()
	removed, err = h.churn.PurgeFakes(purgeFraction)
	record("write/purge", start, err)
	return 0, removed, err
}

// runChurn drives churnStep every interval until ctx is cancelled,
// reporting the applied totals.
func (h *Harness) runChurn(ctx context.Context, col *Collector, interval time.Duration, burst int, purgeFraction float64) (added, removed int, err error) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for step := 0; ; step++ {
		select {
		case <-ctx.Done():
			return added, removed, err
		case <-ticker.C:
			a, r, stepErr := h.churnStep(col, step, burst, purgeFraction)
			added += a
			removed += r
			if stepErr != nil && err == nil {
				err = stepErr
			}
		}
	}
}
