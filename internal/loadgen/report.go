package loadgen

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"fakeproject/internal/benchjson"
)

// BenchResults renders one mix run into benchjson rows: a row per endpoint
// ("<mix>/<endpoint>", latency percentiles and throughput in Metrics) plus
// a "<mix>/run" summary row (offered/shed arrivals, churn totals).
func (r Result) BenchResults() []benchjson.Result {
	out := make([]benchjson.Result, 0, len(r.Endpoints)+1)
	for _, e := range r.Endpoints {
		out = append(out, benchjson.Result{
			Name:    r.Mix + "/" + e.Endpoint,
			N:       int(e.Count),
			NsPerOp: float64(e.Mean.Nanoseconds()),
			Metrics: map[string]float64{
				"p50_ns":         float64(e.P50.Nanoseconds()),
				"p90_ns":         float64(e.P90.Nanoseconds()),
				"p99_ns":         float64(e.P99.Nanoseconds()),
				"p999_ns":        float64(e.P999.Nanoseconds()),
				"max_ns":         float64(e.Max.Nanoseconds()),
				"throughput_rps": e.Throughput,
				"errors":         float64(e.Errors),
				"throttled_429":  float64(e.Throttled),
			},
		})
	}
	out = append(out, benchjson.Result{
		Name: r.Mix + "/run",
		N:    int(r.TotalCount()),
		Metrics: map[string]float64{
			"duration_s":    r.Duration.Seconds(),
			"offered":       float64(r.Offered),
			"shed":          float64(r.Shed),
			"errors":        float64(r.TotalErrors()),
			"churn_added":   float64(r.ChurnAdded),
			"churn_removed": float64(r.ChurnRemoved),
		},
	})
	return out
}

// BenchFile folds several mix runs into the BENCH_e2e document. config, when
// non-nil, is stamped into the artifact so a stored BENCH_e2e.json says
// exactly what produced it.
func BenchFile(results []Result, config map[string]any) benchjson.File {
	var rows []benchjson.Result
	for _, r := range results {
		rows = append(rows, r.BenchResults()...)
	}
	return benchjson.File{
		Component:   "e2e",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Results:     rows,
		Config:      config,
	}
}

// Format writes a human-readable summary of one mix run.
func (r Result) Format(w io.Writer) {
	fmt.Fprintf(w, "mix %s: %d requests in %v (%d offered, %d shed",
		r.Mix, r.TotalCount(), r.Duration.Round(time.Millisecond), r.Offered, r.Shed)
	if r.ChurnAdded > 0 || r.ChurnRemoved > 0 {
		fmt.Fprintf(w, "; churn +%d/-%d followers", r.ChurnAdded, r.ChurnRemoved)
	}
	fmt.Fprintln(w, ")")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  endpoint\trps\tp50\tp90\tp99\tp999\tmax\terr\t429")
	for _, e := range r.Endpoints {
		fmt.Fprintf(tw, "  %s\t%.0f\t%v\t%v\t%v\t%v\t%v\t%d\t%d\n",
			e.Endpoint, e.Throughput,
			round(e.P50), round(e.P90), round(e.P99), round(e.P999), round(e.Max),
			e.Errors, e.Throttled)
	}
	tw.Flush()
	for _, e := range r.Endpoints {
		for _, msg := range e.ErrorSamples {
			fmt.Fprintf(w, "  ! %s: %s\n", e.Endpoint, msg)
		}
	}
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
