// Package loadgen is the end-to-end load-generation and latency harness for
// the HTTP plane: it drives the real twitterd and auditd endpoints — over
// TCP loopback against an in-process platform, or against external daemons
// — with composable workload mixes, using an open-loop (fixed-arrival-rate)
// schedule so that server slowdowns show up as latency instead of silently
// throttling the generator.
//
// Per-endpoint latencies land in fixed-bucket log-linear histograms (no
// per-request allocation), together with throughput, error and throttle
// counters, and the whole run is emitted through internal/benchjson as
// BENCH_e2e.json — the regression-tracked answer to "how fast is the
// assembled system, as a whole, under realistic mixed load".
//
// The four standard mixes (see scenarios.go): crawl-heavy, audit-heavy,
// churn-storm and celebrity-hotspot. cmd/loadd is the CLI front end.
package loadgen

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fakeproject/internal/metrics"
)

// ErrThrottled classifies an HTTP 429 — an expected outcome under rate
// limits and queue backpressure, counted separately from real errors.
var ErrThrottled = errors.New("loadgen: throttled (429)")

// Op is one scheduled request: an endpoint label for the metrics and the
// call that performs it.
type Op struct {
	// Endpoint is the metrics key, e.g. "followers/ids" or "audits/submit".
	Endpoint string
	// Do performs the request. Return nil on success, ErrThrottled (or a
	// wrapper of it) on 429, anything else on failure.
	Do func(ctx context.Context) error
}

// Mix produces the operation for each arrival. Next is called from the
// scheduler goroutine only (serially, in arrival order), so a mix may keep
// unsynchronised state there; the returned Op.Do runs on a worker
// goroutine and must be safe to run concurrently with other ops.
type Mix interface {
	Name() string
	Next(i int) Op
}

// EndpointStats is the aggregated outcome for one endpoint label.
type EndpointStats struct {
	Endpoint  string
	Count     uint64 // completed requests, including throttled ones
	Errors    uint64 // non-429 failures
	Throttled uint64 // 429s
	Mean      time.Duration
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
	P999      time.Duration
	Max       time.Duration
	// Throughput is completed requests per second of run duration.
	Throughput float64
	// ErrorSamples holds the first few distinct failure messages.
	ErrorSamples []string
}

// Result is the outcome of one mix run.
type Result struct {
	Mix      string
	Duration time.Duration
	// Offered is how many arrivals the schedule contained; Shed counts
	// arrivals dropped because the in-flight cap was reached (overload
	// protection for the generator itself, reported, never silent).
	Offered, Shed int
	// ChurnAdded/ChurnRemoved report the background platform churn that
	// ran concurrently with the load, when the mix drives any.
	ChurnAdded, ChurnRemoved int
	Endpoints                []EndpointStats
}

// TotalErrors sums non-429 failures across endpoints.
func (r Result) TotalErrors() uint64 {
	var n uint64
	for _, e := range r.Endpoints {
		n += e.Errors
	}
	return n
}

// TotalCount sums completed requests across endpoints.
func (r Result) TotalCount() uint64 {
	var n uint64
	for _, e := range r.Endpoints {
		n += e.Count
	}
	return n
}

// errorSampleCap bounds how many failure messages are retained per endpoint.
const errorSampleCap = 5

// endpointRec is the live recording state for one endpoint label.
type endpointRec struct {
	hist      Histogram
	errors    atomic.Uint64
	throttled atomic.Uint64

	mu      sync.Mutex
	samples []string
}

func (e *endpointRec) record(d time.Duration, err error) {
	e.hist.Record(d)
	switch {
	case err == nil:
	case errors.Is(err, ErrThrottled):
		e.throttled.Add(1)
	default:
		e.errors.Add(1)
		e.mu.Lock()
		if len(e.samples) < errorSampleCap {
			e.samples = append(e.samples, err.Error())
		}
		e.mu.Unlock()
	}
}

// Collector aggregates per-endpoint recordings for one run.
type Collector struct {
	mu   sync.RWMutex
	recs map[string]*endpointRec

	// publish, when set, exports each new endpoint's series into a metrics
	// registry the moment the endpoint first records (see Publish).
	publish func(endpoint string, r *endpointRec)
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{recs: make(map[string]*endpointRec)}
}

// Publish exports the collector into reg under the given extra labels
// (typically the mix name): every endpoint — current and future — gets a
// loadgen_request_duration_seconds histogram plus error and throttle
// counters. The histograms are registered by reference, so the live
// dashboard and the end-of-run report read the same buckets.
func (c *Collector) Publish(reg *metrics.Registry, labels ...metrics.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publish = func(endpoint string, r *endpointRec) {
		ls := append(append([]metrics.Label(nil), labels...), metrics.L("endpoint", endpoint))
		reg.RegisterHistogram("loadgen_request_duration_seconds",
			"Client-observed latency from scheduled arrival to completion.", &r.hist, ls...)
		reg.CounterFunc("loadgen_errors_total", "Non-429 request failures.",
			func() float64 { return float64(r.errors.Load()) }, ls...)
		reg.CounterFunc("loadgen_throttled_total", "Requests answered 429.",
			func() float64 { return float64(r.throttled.Load()) }, ls...)
	}
	for name, r := range c.recs {
		c.publish(name, r)
	}
}

func (c *Collector) rec(endpoint string) *endpointRec {
	c.mu.RLock()
	r := c.recs[endpoint]
	c.mu.RUnlock()
	if r != nil {
		return r
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r = c.recs[endpoint]; r == nil {
		r = &endpointRec{}
		c.recs[endpoint] = r
		if c.publish != nil {
			c.publish(endpoint, r)
		}
	}
	return r
}

// Record files one completed request.
func (c *Collector) Record(endpoint string, d time.Duration, err error) {
	c.rec(endpoint).record(d, err)
}

// Stats snapshots every endpoint, sorted by label.
func (c *Collector) Stats(runDuration time.Duration) []EndpointStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]EndpointStats, 0, len(c.recs))
	for name, r := range c.recs {
		s := EndpointStats{
			Endpoint:  name,
			Count:     r.hist.Count(),
			Errors:    r.errors.Load(),
			Throttled: r.throttled.Load(),
			Mean:      r.hist.Mean(),
			P50:       r.hist.Quantile(0.50),
			P90:       r.hist.Quantile(0.90),
			P99:       r.hist.Quantile(0.99),
			P999:      r.hist.Quantile(0.999),
			Max:       r.hist.Max(),
		}
		if runDuration > 0 {
			s.Throughput = float64(s.Count) / runDuration.Seconds()
		}
		r.mu.Lock()
		s.ErrorSamples = append([]string(nil), r.samples...)
		r.mu.Unlock()
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// Run executes the mix under the pattern for the given duration, with at
// most maxInFlight requests outstanding. Latency is measured from each
// request's *scheduled* arrival instant, not its dispatch instant, so any
// delay the generator itself accumulates counts against the server — the
// open-loop discipline that avoids coordinated omission.
func Run(ctx context.Context, mix Mix, p Pattern, d time.Duration, maxInFlight int) Result {
	return RunWith(ctx, mix, p, d, maxInFlight, NewCollector())
}

// RunWith is Run recording into a caller-supplied collector, so a progress
// reporter or a published metrics registry can watch the run live.
func RunWith(ctx context.Context, mix Mix, p Pattern, d time.Duration, maxInFlight int, col *Collector) Result {
	if maxInFlight <= 0 {
		maxInFlight = 256
	}
	offsets := p.Schedule(d)
	if col == nil {
		col = NewCollector()
	}
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	shed := 0

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C

loop:
	for i, off := range offsets {
		if wait := time.Until(start.Add(off)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break loop
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break loop
		}
		op := mix.Next(i)
		select {
		case sem <- struct{}{}:
		default:
			shed++
			continue
		}
		wg.Add(1)
		scheduled := start.Add(off)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			err := op.Do(ctx)
			if err != nil && errors.Is(err, context.Canceled) {
				// An interrupted run (Ctrl-C) cancels every in-flight
				// request; those are casualties of the interrupt, not
				// server failures, and must not pollute the artifact.
				return
			}
			col.Record(op.Endpoint, time.Since(scheduled), err)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	return Result{
		Mix:       mix.Name(),
		Duration:  elapsed,
		Offered:   len(offsets),
		Shed:      shed,
		Endpoints: col.Stats(elapsed),
	}
}
