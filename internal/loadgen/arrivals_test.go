package loadgen

import (
	"testing"
	"time"
)

func TestScheduleSteadyRate(t *testing.T) {
	p := Pattern{Rate: 100}
	offs := p.Schedule(time.Second)
	if len(offs) != 100 {
		t.Fatalf("100/s over 1s = %d arrivals, want 100", len(offs))
	}
	if offs[0] != 0 {
		t.Fatalf("first arrival at %v, want 0", offs[0])
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("offsets not strictly increasing at %d", i)
		}
		if offs[i] >= time.Second {
			t.Fatalf("offset %v beyond the run duration", offs[i])
		}
	}
}

func TestScheduleBurst(t *testing.T) {
	// 50/s steady, 500/s during the first 100ms of every 500ms period.
	p := Pattern{Rate: 50, BurstRate: 500, BurstEvery: 500 * time.Millisecond, BurstLen: 100 * time.Millisecond}
	offs := p.Schedule(time.Second)
	inBurst, outside := 0, 0
	for _, off := range offs {
		if off%p.BurstEvery < p.BurstLen {
			inBurst++
		} else {
			outside++
		}
	}
	// Two burst windows of 100ms at 500/s ≈ 100 arrivals; 800ms of steady
	// 50/s ≈ 40. The exact counts depend on phase, so assert the shape.
	if inBurst < 80 || inBurst > 120 {
		t.Fatalf("burst arrivals = %d, want ≈100", inBurst)
	}
	if outside < 30 || outside > 50 {
		t.Fatalf("steady arrivals = %d, want ≈40", outside)
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if got := (Pattern{}).Schedule(time.Second); got != nil {
		t.Fatalf("zero rate scheduled %d arrivals", len(got))
	}
	if got := (Pattern{Rate: 100}).Schedule(0); got != nil {
		t.Fatalf("zero duration scheduled %d arrivals", len(got))
	}
	// An absurd rate is capped, not an OOM.
	got := (Pattern{Rate: 1e12}).Schedule(time.Second)
	if len(got) != maxArrivals {
		t.Fatalf("runaway rate scheduled %d arrivals, want the %d cap", len(got), maxArrivals)
	}
}

func TestScheduleDeterminism(t *testing.T) {
	p := Pattern{Rate: 333, BurstRate: 999, BurstEvery: 300 * time.Millisecond, BurstLen: 50 * time.Millisecond}
	a, b := p.Schedule(time.Second), p.Schedule(time.Second)
	if len(a) != len(b) {
		t.Fatal("schedule is not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverges at %d", i)
		}
	}
}
