package loadgen

import "time"

// Pattern describes an open-loop arrival process: requests are issued at
// scheduled instants regardless of whether earlier requests have completed.
// This is the load shape that exposes queueing collapse — a closed loop
// (issue, wait, issue) self-throttles exactly when the server slows down,
// hiding the latencies users would actually see.
//
// The base process is a fixed rate; an optional square-wave burst overlays
// the spiky arrival patterns the social-explosion literature motivates:
// every BurstEvery, the rate switches to BurstRate for BurstLen.
type Pattern struct {
	// Rate is the steady arrival rate in requests per second. Must be > 0
	// for any arrivals to be scheduled.
	Rate float64
	// BurstRate, when > 0, replaces Rate during burst windows.
	BurstRate float64
	// BurstEvery is the burst period (start-to-start). Zero disables bursts.
	BurstEvery time.Duration
	// BurstLen is how long each burst lasts. Zero disables bursts.
	BurstLen time.Duration
}

// maxArrivals caps a schedule so a misconfigured rate cannot exhaust
// memory; 2M arrivals is ~16MB of offsets and far beyond what a single
// harness process can issue anyway.
const maxArrivals = 2 << 20

// rateAt reports the arrival rate in effect at offset t.
func (p Pattern) rateAt(t time.Duration) float64 {
	if p.BurstRate > 0 && p.BurstEvery > 0 && p.BurstLen > 0 && t%p.BurstEvery < p.BurstLen {
		return p.BurstRate
	}
	return p.Rate
}

// Schedule returns the arrival offsets for a run of the given duration,
// in increasing order starting at 0. The schedule is a pure function of
// (pattern, duration), so a run is reproducible arrival-for-arrival.
func (p Pattern) Schedule(d time.Duration) []time.Duration {
	if p.Rate <= 0 || d <= 0 {
		return nil
	}
	var out []time.Duration
	t := time.Duration(0)
	for t < d && len(out) < maxArrivals {
		out = append(out, t)
		gap := time.Duration(float64(time.Second) / p.rateAt(t))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
	}
	return out
}
