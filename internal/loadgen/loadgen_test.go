package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubMix issues in-memory ops so the runner can be tested without a
// platform.
type stubMix struct {
	name    string
	mu      sync.Mutex
	started int
	delay   time.Duration
	err     error
}

func (m *stubMix) Name() string { return m.name }
func (m *stubMix) Next(i int) Op {
	return Op{Endpoint: "stub", Do: func(ctx context.Context) error {
		m.mu.Lock()
		m.started++
		m.mu.Unlock()
		if m.delay > 0 {
			time.Sleep(m.delay)
		}
		return m.err
	}}
}

func TestRunExecutesSchedule(t *testing.T) {
	mix := &stubMix{name: "stub"}
	res := Run(context.Background(), mix, Pattern{Rate: 2000}, 100*time.Millisecond, 64)
	if res.Mix != "stub" {
		t.Fatalf("mix name = %q", res.Mix)
	}
	if res.Offered != 200 {
		t.Fatalf("offered = %d, want 200", res.Offered)
	}
	if got := res.TotalCount(); got+uint64(res.Shed) != 200 {
		t.Fatalf("completed %d + shed %d != offered 200", got, res.Shed)
	}
	if res.TotalErrors() != 0 {
		t.Fatalf("errors = %d", res.TotalErrors())
	}
}

// TestRunShedsInsteadOfQueueing pins the open-loop discipline: when every
// in-flight slot is stuck, later arrivals are shed and reported, never
// silently queued behind the stall.
func TestRunShedsInsteadOfQueueing(t *testing.T) {
	mix := &stubMix{name: "slow", delay: 300 * time.Millisecond}
	res := Run(context.Background(), mix, Pattern{Rate: 1000}, 100*time.Millisecond, 4)
	if res.Shed == 0 {
		t.Fatal("no arrivals shed with 4 slots stuck for the whole run")
	}
	if res.TotalCount() != 4 {
		t.Fatalf("completed = %d, want exactly the 4 in-flight slots", res.TotalCount())
	}
	if res.TotalCount()+uint64(res.Shed) != uint64(res.Offered) {
		t.Fatalf("completed %d + shed %d != offered %d", res.TotalCount(), res.Shed, res.Offered)
	}
}

func TestRunClassifiesErrors(t *testing.T) {
	throttled := Run(context.Background(),
		&stubMix{name: "t", err: fmt.Errorf("wrapped: %w", ErrThrottled)},
		Pattern{Rate: 500}, 50*time.Millisecond, 64)
	for _, e := range throttled.Endpoints {
		if e.Errors != 0 || e.Throttled == 0 {
			t.Fatalf("429s misclassified: %+v", e)
		}
	}
	failed := Run(context.Background(),
		&stubMix{name: "f", err: errors.New("boom")},
		Pattern{Rate: 500}, 50*time.Millisecond, 64)
	if failed.TotalErrors() == 0 {
		t.Fatal("hard failures not counted")
	}
	for _, e := range failed.Endpoints {
		if len(e.ErrorSamples) == 0 || !strings.Contains(e.ErrorSamples[0], "boom") {
			t.Fatalf("error samples lost: %+v", e.ErrorSamples)
		}
	}
}

// testHarness builds one small shared platform for the mix tests; building
// the population dominates the cost, so every mix runs over the same one.
var (
	harnessOnce sync.Once
	harness     *Harness
	harnessErr  error
)

func sharedHarness(t *testing.T) *Harness {
	t.Helper()
	harnessOnce.Do(func() {
		harness, harnessErr = NewLocal(Config{
			Seed:         7,
			Targets:      3,
			Followers:    6000,
			Statuses:     250,
			AuditWorkers: 2,
			AuditQueue:   64,
		})
	})
	if harnessErr != nil {
		t.Fatalf("building harness: %v", harnessErr)
	}
	return harness
}

// TestAllMixesCleanUnderChurn is the acceptance gate: every standard mix
// runs against the in-process HTTP plane — with background churn racing
// the reads where the mix calls for it — and completes with zero
// unexpected (non-429) errors.
func TestAllMixesCleanUnderChurn(t *testing.T) {
	h := sharedHarness(t)
	for _, name := range MixNames() {
		t.Run(name, func(t *testing.T) {
			res, err := h.RunMix(context.Background(), name,
				Pattern{Rate: 300, BurstRate: 900, BurstEvery: 200 * time.Millisecond, BurstLen: 50 * time.Millisecond},
				400*time.Millisecond, 128)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalCount() == 0 {
				t.Fatal("mix completed zero requests")
			}
			for _, e := range res.Endpoints {
				if e.Errors > 0 {
					t.Errorf("%s: %d unexpected errors (samples: %v)", e.Endpoint, e.Errors, e.ErrorSamples)
				}
				if e.Count > 0 && e.P50 <= 0 {
					t.Errorf("%s: p50 = %v with %d samples", e.Endpoint, e.P50, e.Count)
				}
			}
			switch name {
			case MixCrawlHeavy, MixChurnStorm:
				if res.ChurnAdded == 0 && res.ChurnRemoved == 0 {
					t.Error("churn mix ran without any platform churn being applied")
				}
			}
		})
	}
}

// TestBenchResultsShape checks the emitted rows carry the per-endpoint
// percentiles and the run summary the CI artifact step archives.
func TestBenchResultsShape(t *testing.T) {
	h := sharedHarness(t)
	res, err := h.RunMix(context.Background(), MixCelebrityHotspot,
		Pattern{Rate: 200}, 200*time.Millisecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.BenchResults()
	if len(rows) < 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	summary := rows[len(rows)-1]
	if summary.Name != MixCelebrityHotspot+"/run" {
		t.Fatalf("last row = %q, want the run summary", summary.Name)
	}
	if summary.Metrics["offered"] <= 0 {
		t.Fatal("summary missing offered count")
	}
	for _, row := range rows[:len(rows)-1] {
		for _, key := range []string{"p50_ns", "p99_ns", "p999_ns", "throughput_rps", "errors", "throttled_429"} {
			if _, ok := row.Metrics[key]; !ok {
				t.Fatalf("row %s missing metric %s", row.Name, key)
			}
		}
		if row.Metrics["p99_ns"] < row.Metrics["p50_ns"] {
			t.Fatalf("row %s: p99 < p50", row.Name)
		}
	}
	doc := BenchFile([]Result{res}, map[string]any{"rate": 500.0})
	if doc.Component != "e2e" || len(doc.Results) != len(rows) {
		t.Fatalf("BenchFile = %+v", doc)
	}
	if doc.Config["rate"] != 500.0 {
		t.Fatalf("BenchFile dropped the run config: %+v", doc.Config)
	}
}

// TestRemoteHarnessResolvesTargets drives NewRemote against the local
// harness's own API server, the same path an external -api run takes.
func TestRemoteHarnessResolvesTargets(t *testing.T) {
	local := sharedHarness(t)
	remote, err := NewRemote(local.APIBase, "", []string{local.Targets[0].Name})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Targets[0].ID != local.Targets[0].ID {
		t.Fatalf("resolved id %d, want %d", remote.Targets[0].ID, local.Targets[0].ID)
	}
	// Read-only mixes work; platform-mutating and audit mixes refuse.
	res, err := remote.RunMix(context.Background(), MixCelebrityHotspot,
		Pattern{Rate: 100}, 150*time.Millisecond, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalErrors() != 0 || res.TotalCount() == 0 {
		t.Fatalf("remote hotspot run: %d reqs, %d errors", res.TotalCount(), res.TotalErrors())
	}
	if _, err := remote.RunMix(context.Background(), MixChurnStorm, Pattern{Rate: 10}, 50*time.Millisecond, 8); err == nil {
		t.Fatal("churn-storm must refuse to run against a remote platform")
	}
	if _, err := remote.RunMix(context.Background(), MixAuditHeavy, Pattern{Rate: 10}, 50*time.Millisecond, 8); err == nil {
		t.Fatal("audit-heavy must refuse without an audit service")
	}
}
