package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/router"
)

// idsPage mirrors the wire shape of followers/ids for the cursor walks.
type idsPage struct {
	IDs        []int64 `json:"ids"`
	NextCursor int64   `json:"next_cursor"`
}

// walkFollowers pages through base's followers/ids for id and returns every
// follower in order. Any non-200 page is a test failure: the router's
// contract is that clients never see a backend die.
func walkFollowers(t *testing.T, client *http.Client, base string, id int64) []int64 {
	t.Helper()
	var all []int64
	cursor := int64(-1)
	for pages := 0; ; pages++ {
		if pages > 1000 {
			t.Fatal("cursor walk did not terminate")
		}
		u := fmt.Sprintf("%s/1.1/followers/ids.json?user_id=%d&cursor=%d", base, id, cursor)
		resp, err := client.Get(u)
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: HTTP %d: %s", pages, resp.StatusCode, body)
		}
		var page idsPage
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		all = append(all, page.IDs...)
		if page.NextCursor == 0 {
			return all
		}
		cursor = page.NextCursor
	}
}

// counterValue reads one labelled counter/gauge sample out of a registry
// scrape, using the repo's own text parser — the same path the smoke
// script asserts through.
func counterValue(t *testing.T, reg *metrics.Registry, family string, backend int) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := strconv.Itoa(backend)
	for _, f := range fams {
		if f.Name != family {
			continue
		}
		for _, s := range f.Samples {
			if s.Labels["backend"] == want {
				return s.Value
			}
		}
	}
	t.Fatalf("no sample %s{backend=%q} in scrape", family, want)
	return 0
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMultiNodeChaos is the kill/rejoin integration test, driving the
// cluster by hand so every phase can be asserted: follower walks through
// the router are byte-order identical to the single-node store before,
// during and after one ring member dies; requests owned by the dead node
// keep answering 200 off the replica; the router records the ejection and
// the probe loop records the readmission.
func TestMultiNodeChaos(t *testing.T) {
	h := sharedHarness(t)
	c, err := h.newMultiCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	target := h.Targets[0]
	direct := walkFollowers(t, h.HTTP, h.APIBase, int64(target.ID))
	if len(direct) == 0 {
		t.Fatal("target has no followers to walk")
	}
	routed := walkFollowers(t, h.HTTP, c.base, int64(target.ID))
	if !sameIDs(direct, routed) {
		t.Fatalf("routed walk diverged before chaos: %d ids vs %d direct", len(routed), len(direct))
	}

	// Collect follower ids whose slot node 1 owns: killing node 1 makes
	// these the interesting requests — their primary is gone, so only the
	// failover path keeps them invisible to the client.
	ring := router.NewRing(router.DefaultSlots, 2)
	var owned1 []int64
	for _, id := range direct {
		if ring.Owner(ring.Slot(id)) == 1 {
			owned1 = append(owned1, id)
		}
	}
	if len(owned1) < 3 {
		t.Fatalf("only %d followers owned by node 1; population too small for the chaos plan", len(owned1))
	}

	c.nodes[1].kill()

	// Enough node-1-owned reads to cross the ejection threshold, every one
	// still 200 off the replica.
	for i := 0; i < 5; i++ {
		u := fmt.Sprintf("%s/1.1/friends/ids.json?user_id=%d&cursor=-1", c.base, owned1[i%len(owned1)])
		resp, err := h.HTTP.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kill window leaked to the client: HTTP %d: %s", resp.StatusCode, body)
		}
	}
	if got := c.router.Healthy(); got != 1 {
		t.Fatalf("Healthy() = %d after the kill window, want the dead node ejected", got)
	}
	if got := counterValue(t, c.reg, "router_ejections_total", 1); got < 1 {
		t.Fatalf("router_ejections_total{backend=1} = %v, want >= 1", got)
	}
	if got := counterValue(t, c.reg, "router_backend_healthy", 1); got != 0 {
		t.Fatalf("router_backend_healthy{backend=1} = %v while dead", got)
	}

	// Mid-kill cursor walk: no duplicate, no skipped follower id.
	if mid := walkFollowers(t, h.HTTP, c.base, int64(target.ID)); !sameIDs(direct, mid) {
		t.Fatalf("mid-kill walk diverged: %d ids vs %d direct", len(mid), len(direct))
	}

	if err := c.nodes[1].rejoin(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.router.Healthy() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never readmitted the rejoined node")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := counterValue(t, c.reg, "router_readmissions_total", 1); got < 1 {
		t.Fatalf("router_readmissions_total{backend=1} = %v, want >= 1", got)
	}
	if got := counterValue(t, c.reg, "router_backend_healthy", 1); got != 1 {
		t.Fatalf("router_backend_healthy{backend=1} = %v after readmission", got)
	}

	if after := walkFollowers(t, h.HTTP, c.base, int64(target.ID)); !sameIDs(direct, after) {
		t.Fatalf("post-rejoin walk diverged: %d ids vs %d direct", len(after), len(direct))
	}
}

// TestMultiNodeMixRuns exercises the public path the loadd binary takes:
// RunMix boots the cluster, runs the mix with the kill/rejoin chaos plan
// racing it, and the run must finish with zero client-visible non-429
// errors. Long enough that the dead window (middle third) sees real
// traffic, short enough for the suite.
func TestMultiNodeMixRuns(t *testing.T) {
	h := sharedHarness(t)
	res, err := h.RunMix(context.Background(), MixMultiNode,
		Pattern{Rate: 250}, 1200*time.Millisecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCount() == 0 {
		t.Fatal("multinode mix completed zero requests")
	}
	if got := res.TotalErrors(); got != 0 {
		for _, e := range res.Endpoints {
			if e.Errors > 0 {
				t.Errorf("%s: %d errors (samples: %v)", e.Endpoint, e.Errors, e.ErrorSamples)
			}
		}
		t.Fatalf("chaos leaked %d non-429 errors to clients", got)
	}
}
