package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/router"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// The multinode mix boots a partitioned deployment inside the harness — a
// ring of twitterd-equivalent nodes, each range-loaded from a snapshot of
// the harness population, behind a real routerd-equivalent router on its
// own TCP port — and drives crawl traffic through the router while a chaos
// plan kills one node a third of the way in and rejoins it at two thirds.
// The run's contract is the router's: zero client-visible errors that are
// not 429s, because every killed-node attempt fails over to the range's
// replica holder and the probe loop readmits the node once it is back.

// multinodeNodes is the ring size the mix boots. Two nodes is the smallest
// ring where kill/rejoin is survivable (every range keeps one live holder).
const multinodeNodes = 2

// multiCluster is the in-harness multi-node deployment.
type multiCluster struct {
	nodes  []*clusterNode
	router *router.Router
	rtSrv  *http.Server
	base   string
	reg    *metrics.Registry // the router's registry, for chaos assertions
}

// clusterNode is one ring member: its partial store's handler, the
// listener address it must come back on after a kill, and the live server.
type clusterNode struct {
	addr    string
	handler http.Handler

	mu  sync.Mutex
	srv *http.Server
}

// newMultiCluster snapshots the harness store, range-loads one partial
// store per ring member, and boots the node servers plus the router.
func (h *Harness) newMultiCluster(nodes int) (*multiCluster, error) {
	if h.store == nil {
		return nil, fmt.Errorf("multinode needs an in-process platform to snapshot")
	}
	clock := simclock.Real{}
	var snap bytes.Buffer
	if err := h.store.WriteSnapshot(&snap); err != nil {
		return nil, fmt.Errorf("snapshotting harness population: %w", err)
	}
	ring := router.NewRing(router.DefaultSlots, nodes)

	c := &multiCluster{reg: metrics.NewRegistry()}
	fail := func(err error) (*multiCluster, error) {
		c.close()
		return nil, err
	}
	for i := 0; i < nodes; i++ {
		node := i
		store, err := twitter.ReadSnapshotRange(bytes.NewReader(snap.Bytes()), clock,
			func(id twitter.UserID) bool { return ring.Keep(node, int64(id)) })
		if err != nil {
			return fail(fmt.Errorf("range-loading node %d: %w", node, err))
		}
		mux := http.NewServeMux()
		mux.Handle("/", twitterapi.NewServerLimits(twitterapi.NewService(store), clock, nil))
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("ok\n"))
		})
		cn := &clusterNode{handler: mux}
		if err := cn.start("127.0.0.1:0"); err != nil {
			return fail(fmt.Errorf("starting node %d: %w", node, err))
		}
		c.nodes = append(c.nodes, cn)
	}

	bases := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		bases[i] = "http://" + n.addr
	}
	rt, err := router.New(router.Config{
		Backends:      bases,
		Registry:      c.reg,
		Clock:         clock,
		ProbeInterval: 50 * time.Millisecond, // readmit quickly: the run is short
	})
	if err != nil {
		return fail(fmt.Errorf("building router: %w", err))
	}
	c.router = rt

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(fmt.Errorf("router listener: %w", err))
	}
	c.rtSrv = &http.Server{Handler: rt}
	go func() { _ = c.rtSrv.Serve(ln) }()
	c.base = "http://" + ln.Addr().String()
	return c, nil
}

// start (re)binds the node's server. The first call takes an ephemeral
// port and pins it; rejoins must come back on the same address or the
// router would never find the node again.
func (n *clusterNode) start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.addr = ln.Addr().String()
	n.srv = &http.Server{Handler: n.handler}
	srv := n.srv
	n.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// kill drops the node hard: listener gone, in-flight connections cut —
// the closest an in-process harness gets to SIGKILL.
func (n *clusterNode) kill() {
	n.mu.Lock()
	srv := n.srv
	n.srv = nil
	n.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// rejoin brings the node back on its original address.
func (n *clusterNode) rejoin() error {
	n.mu.Lock()
	addr := n.addr
	running := n.srv != nil
	n.mu.Unlock()
	if running {
		return nil
	}
	return n.start(addr)
}

func (c *multiCluster) close() {
	if c.rtSrv != nil {
		_ = c.rtSrv.Close()
	}
	if c.router != nil {
		c.router.Close()
	}
	for _, n := range c.nodes {
		n.kill()
	}
}

// chaosPlan kills node 1 a third of the way through the run and rejoins it
// at two thirds, then lets the run finish. Node 1 rather than 0 so the
// deterministic "first healthy backend" of unrouted requests stays up.
func (c *multiCluster) chaosPlan(ctx context.Context, d time.Duration) error {
	victim := c.nodes[1%len(c.nodes)]
	if !sleepCtx(ctx, d/3) {
		return nil
	}
	victim.kill()
	if !sleepCtx(ctx, d/3) {
		return nil
	}
	return victim.rejoin()
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// --- the mix ---

// MixMultiNode is the partitioned-deployment mix (see the package comment
// at the top of this file).
const MixMultiNode = "multinode"

// multiMix drives the cluster through its router: follower page walks and
// friends first pages (ownership-routed, the failover path under chaos),
// plus scattered users/lookup batches, spread users/show and routed
// timelines. Strictly read-only: the node stores are snapshots, and churn
// would need lockstep mutation of every ring member.
type multiMix struct {
	h     *Harness // APIBase rewritten to the cluster's router
	crawl *crawlMix
	rnd   *rand.Rand
}

func newMultiMix(h *Harness, rnd *rand.Rand, c *multiCluster) *multiMix {
	ch := *h
	ch.APIBase = c.base
	cluster := &ch
	return &multiMix{
		h:     cluster,
		crawl: newCrawlMix(cluster, MixMultiNode, rnd, 32, h.Targets),
		rnd:   rnd,
	}
}

func (m *multiMix) Name() string { return MixMultiNode }

func (m *multiMix) Next(i int) Op {
	switch i % 8 {
	case 5:
		// A scattered users/lookup: 20 random IDs span both ring ranges
		// with near certainty, so the batch exercises split + merge.
		ids := make([]string, 20)
		for j := range ids {
			ids[j] = strconv.FormatInt(int64(m.h.randomUserID(m.rnd)), 10)
		}
		u := m.h.APIBase + "/1.1/users/lookup.json?user_id=" + strings.Join(ids, ",")
		return Op{Endpoint: "users/lookup", Do: func(ctx context.Context) error {
			_, err := m.h.get(ctx, u, "multi-lookup")
			return err
		}}
	case 6:
		name := m.h.Targets[m.rnd.Intn(len(m.h.Targets))].Name
		return Op{Endpoint: "users/show", Do: func(ctx context.Context) error {
			params := url.Values{"screen_name": {name}}
			_, err := m.h.get(ctx, m.h.APIBase+"/1.1/users/show.json?"+params.Encode(), "multi-show")
			return err
		}}
	case 7:
		id := m.h.Targets[m.rnd.Intn(len(m.h.Targets))].ID
		u := m.h.APIBase + "/1.1/statuses/user_timeline.json?user_id=" +
			strconv.FormatInt(int64(id), 10) + "&count=200"
		token := fmt.Sprintf("multi-tl%d", i%8)
		return Op{Endpoint: "statuses/user_timeline", Do: func(ctx context.Context) error {
			_, err := m.h.get(ctx, u, token)
			return err
		}}
	default:
		return m.crawl.Next(i)
	}
}
