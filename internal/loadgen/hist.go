package loadgen

import "fakeproject/internal/metrics"

// Histogram is the shared log-linear latency histogram, promoted to
// internal/metrics so the daemons' HTTP instrumentation and this harness
// quantise latencies identically. The alias keeps the harness API (and its
// callers) unchanged.
type Histogram = metrics.Histogram
