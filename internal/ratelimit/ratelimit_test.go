package ratelimit

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"fakeproject/internal/simclock"
)

func newLimiter(requests int, win time.Duration) (*Limiter, *simclock.Virtual) {
	clock := simclock.NewVirtualAtEpoch()
	l := New(clock, map[string]Limit{"ep": {Requests: requests, Window: win}})
	return l, clock
}

func TestBurstWithinWindow(t *testing.T) {
	l, _ := newLimiter(15, 15*time.Minute)
	for i := 0; i < 15; i++ {
		if wait := l.Reserve("ep"); wait != 0 {
			t.Fatalf("call %d should be immediate, wait = %v", i, wait)
		}
	}
	if wait := l.Reserve("ep"); wait != 15*time.Minute {
		t.Fatalf("16th call wait = %v, want 15m", wait)
	}
}

func TestWindowRolls(t *testing.T) {
	l, clock := newLimiter(2, time.Minute)
	l.Reserve("ep")
	l.Reserve("ep")
	clock.Advance(time.Minute)
	if wait := l.Reserve("ep"); wait != 0 {
		t.Fatalf("after window expiry wait = %v, want 0", wait)
	}
}

func TestReserveSequenceMatchesRate(t *testing.T) {
	// Booking 45 calls on a 15-per-15-minute limit must span exactly two
	// extra windows: calls 16-30 wait to window 2, calls 31-45 to window 3.
	l, clock := newLimiter(15, 15*time.Minute)
	var total time.Duration
	for i := 0; i < 45; i++ {
		wait := l.Reserve("ep")
		clock.Sleep(wait)
		total += wait
	}
	if total != 30*time.Minute {
		t.Fatalf("total wait = %v, want 30m", total)
	}
}

func TestUnlimitedKey(t *testing.T) {
	l, _ := newLimiter(1, time.Minute)
	for i := 0; i < 100; i++ {
		if wait := l.Reserve("other"); wait != 0 {
			t.Fatalf("unlimited key waited %v", wait)
		}
	}
}

func TestAllowDoesNotBookWhenRejected(t *testing.T) {
	l, clock := newLimiter(1, time.Minute)
	ok, _ := l.Allow("ep")
	if !ok {
		t.Fatal("first call should be allowed")
	}
	ok, retry := l.Allow("ep")
	if ok {
		t.Fatal("second call should be rejected")
	}
	if retry != time.Minute {
		t.Fatalf("retry = %v, want 1m", retry)
	}
	// After the advertised retry, the call must succeed.
	clock.Advance(retry)
	if ok, _ := l.Allow("ep"); !ok {
		t.Fatal("call after retry-after should be allowed")
	}
}

func TestRemaining(t *testing.T) {
	l, clock := newLimiter(3, time.Minute)
	if got := l.Remaining("ep"); got != 3 {
		t.Fatalf("Remaining = %d, want 3", got)
	}
	l.Reserve("ep")
	l.Reserve("ep")
	if got := l.Remaining("ep"); got != 1 {
		t.Fatalf("Remaining = %d, want 1", got)
	}
	clock.Advance(time.Minute)
	if got := l.Remaining("ep"); got != 3 {
		t.Fatalf("Remaining after roll = %d, want 3", got)
	}
	if got := l.Remaining("nolimit"); got != -1 {
		t.Fatalf("Remaining unlimited = %d, want -1", got)
	}
}

func TestPerMinute(t *testing.T) {
	lim := Limit{Requests: 15, Window: 15 * time.Minute}
	if got := lim.PerMinute(); got != 1 {
		t.Fatalf("PerMinute = %v, want 1", got)
	}
	lim = Limit{Requests: 180, Window: 15 * time.Minute}
	if got := lim.PerMinute(); got != 12 {
		t.Fatalf("PerMinute = %v, want 12", got)
	}
	if (Limit{}).PerMinute() != 0 {
		t.Fatal("zero limit PerMinute should be 0")
	}
}

func TestSetLimitResetsState(t *testing.T) {
	l, _ := newLimiter(1, time.Minute)
	l.Reserve("ep")
	l.SetLimit("ep", Limit{Requests: 2, Window: time.Minute})
	if wait := l.Reserve("ep"); wait != 0 {
		t.Fatalf("after SetLimit wait = %v, want 0 (state reset)", wait)
	}
	lim, ok := l.LimitFor("ep")
	if !ok || lim.Requests != 2 {
		t.Fatalf("LimitFor = %+v, %v", lim, ok)
	}
}

func TestNeverExceedsBudgetProperty(t *testing.T) {
	// Property: for any sequence of reserves with sleeps honoured, the
	// number of calls that land inside any single window never exceeds
	// the budget.
	f := func(nCalls uint8, budgetRaw uint8) bool {
		budget := int(budgetRaw%10) + 1
		clock := simclock.NewVirtualAtEpoch()
		l := New(clock, map[string]Limit{"k": {Requests: budget, Window: time.Hour}})
		times := make([]time.Time, 0, nCalls)
		for i := 0; i < int(nCalls); i++ {
			clock.Sleep(l.Reserve("k"))
			times = append(times, clock.Now())
		}
		// Count calls in each aligned window [t, t+1h) starting at each call.
		for i := range times {
			cutoff := times[i].Add(time.Hour)
			in := 0
			for j := i; j < len(times) && times[j].Before(cutoff); j++ {
				in++
			}
			if in > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrawlTimeMatchesAnalyticModel(t *testing.T) {
	// The paper's 27-day Obama crawl rests on this arithmetic: k calls on a
	// (r per window) budget take ceil(k/r - 1) windows of waiting.
	l, clock := newLimiter(15, 15*time.Minute)
	start := clock.Now()
	const calls = 150
	for i := 0; i < calls; i++ {
		clock.Sleep(l.Reserve("ep"))
	}
	elapsed := clock.Now().Sub(start)
	wantWindows := math.Ceil(float64(calls)/15) - 1
	want := time.Duration(wantWindows) * 15 * time.Minute
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

// TestConcurrentReservationsWaitForBookedWindow pins the regression where
// Reserve rolled the window into the future for the caller that exhausted
// the budget, but then handed 0-wait slots in that *unopened* window to
// every subsequent caller — concurrent reservers would blast through the
// budget immediately instead of queueing behind the roll.
func TestConcurrentReservationsWaitForBookedWindow(t *testing.T) {
	const win = 15 * time.Minute
	l, clock := newLimiter(15, win)
	// Burn the current window without sleeping — the concurrent-reserver
	// pattern (several goroutines booking before any of them sleeps).
	for i := 0; i < 15; i++ {
		if wait := l.Reserve("ep"); wait != 0 {
			t.Fatalf("call %d waited %v in a fresh window", i, wait)
		}
	}
	// The 16th reservation rolls the window forward and waits for it.
	if wait := l.Reserve("ep"); wait != win {
		t.Fatalf("16th reservation waited %v, want %v", wait, win)
	}
	// Reservations 17..30 book slots in the same future window: every one
	// must wait until it opens, not proceed immediately.
	for i := 0; i < 14; i++ {
		if wait := l.Reserve("ep"); wait != win {
			t.Fatalf("reservation %d in booked window waited %v, want %v", 17+i, wait, win)
		}
	}
	// The 31st rolls one more window out.
	if wait := l.Reserve("ep"); wait != 2*win {
		t.Fatalf("31st reservation waited %v, want %v", wait, 2*win)
	}
	// Once the furthest booked window opens (the 31st call's slot was its
	// first), the remaining 14 slots are free without waiting.
	clock.Sleep(2 * win)
	for i := 0; i < 14; i++ {
		if wait := l.Reserve("ep"); wait != 0 {
			t.Fatalf("open-window reservation %d waited %v", i, wait)
		}
	}
	if wait := l.Reserve("ep"); wait != win {
		t.Fatalf("re-exhausted window waited %v, want %v", wait, win)
	}
}

// TestReserveMidWindowPartialWait: a reservation landing mid-way through a
// booked future window waits only the remainder.
func TestReserveMidWindowPartialWait(t *testing.T) {
	const win = 15 * time.Minute
	l, clock := newLimiter(1, win)
	if wait := l.Reserve("ep"); wait != 0 {
		t.Fatal("first call should be free")
	}
	if wait := l.Reserve("ep"); wait != win {
		t.Fatalf("second call waited %v, want %v", wait, win)
	}
	// A third caller arrives 5 minutes later, while the booked window is
	// still 10 minutes away: it books the window after it.
	clock.Advance(5 * time.Minute)
	if wait := l.Reserve("ep"); wait != 2*win-5*time.Minute {
		t.Fatalf("third call waited %v, want %v", wait, 2*win-5*time.Minute)
	}
}

func TestZeroRequestsLimitIsUnlimited(t *testing.T) {
	// A non-positive budget is treated as "no limit" rather than deadlock.
	l, _ := newLimiter(0, time.Minute)
	if wait := l.Reserve("ep"); wait != 0 {
		t.Fatalf("zero-budget reserve waited %v", wait)
	}
}
