// Package ratelimit implements the windowed per-endpoint rate limiting that
// Twitter API v1.1 applies and that Table I of the paper summarises as
// requests-per-minute averages.
//
// Twitter's actual enforcement is per 15-minute window: an endpoint with a
// "1 per minute" average allows a burst of 15 calls and then blocks until
// the window rolls. This burst-within-window semantics is load-bearing for
// the reproduction of Table II: the analytics answer mid-sized accounts in
// tens of seconds because their few dozen calls fit inside one window, while
// the 41M-follower crawls of Section IV-B take weeks because they span
// thousands of windows.
package ratelimit

import (
	"fmt"
	"sync"
	"time"

	"fakeproject/internal/simclock"
)

// Limit is a request budget per rolling window.
type Limit struct {
	// Requests is the number of calls allowed per window.
	Requests int
	// Window is the length of the budget window.
	Window time.Duration
}

// PerMinute reports the average request rate per minute this limit allows.
func (l Limit) PerMinute() float64 {
	if l.Window <= 0 {
		return 0
	}
	return float64(l.Requests) * float64(time.Minute) / float64(l.Window)
}

// Limiter tracks window budgets per key (an endpoint, or "endpoint|token"
// when multiple API tokens are in play). It is safe for concurrent use.
//
// The zero value is not usable; construct with New.
type Limiter struct {
	mu     sync.Mutex
	clock  simclock.Clock
	limits map[string]Limit
	state  map[string]*window
	stats  Stats
}

// Stats summarises limiter activity since construction.
type Stats struct {
	// Rejections counts Allow calls answered false — each one is an HTTP
	// 429 on a serving plane.
	Rejections uint64
	// Backoffs counts Reserve calls that returned a positive wait, and
	// BackoffTotal sums the waits handed out — the time clients spent (or
	// will spend) sleeping on budget windows.
	Backoffs     uint64
	BackoffTotal time.Duration
}

type window struct {
	start time.Time
	used  int
}

// New creates a limiter on the given clock with the given per-key limits.
// Keys without a limit are unlimited.
func New(clock simclock.Clock, limits map[string]Limit) *Limiter {
	cp := make(map[string]Limit, len(limits))
	for k, v := range limits {
		cp[k] = v
	}
	return &Limiter{clock: clock, limits: cp, state: make(map[string]*window)}
}

// SetLimit installs or replaces the limit for key.
func (l *Limiter) SetLimit(key string, lim Limit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.limits[key] = lim
	delete(l.state, key)
}

// LimitFor returns the limit configured for key, if any.
func (l *Limiter) LimitFor(key string) (Limit, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lim, ok := l.limits[key]
	return lim, ok
}

// Reserve books one call slot for key and returns how long the caller must
// wait before performing it. A zero wait means the call may proceed now.
// The reservation is unconditional: callers are expected to sleep the
// returned duration (on the same clock) and then make the call.
func (l *Limiter) Reserve(key string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	lim, limited := l.limits[key]
	if !limited || lim.Requests <= 0 || lim.Window <= 0 {
		return 0
	}
	now := l.clock.Now()
	w := l.state[key]
	if w == nil {
		l.state[key] = &window{start: now, used: 1}
		return 0
	}
	// Roll the window forward if it has fully expired.
	if !now.Before(w.start.Add(lim.Window)) {
		w.start = now
		w.used = 1
		return 0
	}
	if w.used < lim.Requests {
		w.used++
		// The window may have been rolled forward by an earlier
		// reservation and not be open yet; a slot booked in a future
		// window must wait for it, not fire immediately alongside the
		// caller that paid for the roll.
		if now.Before(w.start) {
			wait := w.start.Sub(now)
			l.stats.Backoffs++
			l.stats.BackoffTotal += wait
			return wait
		}
		return 0
	}
	// Current window exhausted: the call runs at the start of the next
	// window, which is also booked as that window's first slot.
	w.start = w.start.Add(lim.Window)
	w.used = 1
	wait := w.start.Sub(now)
	l.stats.Backoffs++
	l.stats.BackoffTotal += wait
	return wait
}

// Allow reports whether a call for key may proceed right now. Unlike
// Reserve, a rejected call books nothing; the second return value is how
// long until a slot frees (the Retry-After a server should advertise).
func (l *Limiter) Allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lim, limited := l.limits[key]
	if !limited || lim.Requests <= 0 || lim.Window <= 0 {
		return true, 0
	}
	now := l.clock.Now()
	w := l.state[key]
	if w == nil {
		l.state[key] = &window{start: now, used: 1}
		return true, 0
	}
	if !now.Before(w.start.Add(lim.Window)) {
		w.start = now
		w.used = 1
		return true, 0
	}
	if w.used < lim.Requests {
		w.used++
		return true, 0
	}
	l.stats.Rejections++
	return false, w.start.Add(lim.Window).Sub(now)
}

// Stats reports limiter activity since construction.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Remaining reports how many calls are left in the current window for key.
// Unlimited keys report -1.
func (l *Limiter) Remaining(key string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	lim, limited := l.limits[key]
	if !limited {
		return -1
	}
	w := l.state[key]
	now := l.clock.Now()
	if w == nil || !now.Before(w.start.Add(lim.Window)) {
		return lim.Requests
	}
	rem := lim.Requests - w.used
	if rem < 0 {
		rem = 0
	}
	return rem
}

// String describes the limiter's configuration.
func (l *Limiter) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("ratelimit.Limiter(%d keys)", len(l.limits))
}
