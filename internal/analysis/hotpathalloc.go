package analysis

import (
	"go/ast"
	"go/types"
)

// hotpathalloc: files annotated //fp:hotpath are serving hot paths — the
// hand-encoded twitterapi response writers and the metrics HTTP middleware —
// where PR 5/6 established a zero-allocation budget (13 allocs/request on
// followers/ids, observed == plain). In those files the analyzer bans the
// three regressions that historically creep back in: reflective formatting
// (fmt.Sprintf and friends), encoding/json reflection, and []int64
// materialisation (make/append/copy of ID slices — the exact copy PR 5
// removed from the 5,000-ID followers page).

// NewHotpathAlloc builds the hotpathalloc analyzer.
func NewHotpathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "no fmt formatting, encoding/json reflection or []int64 copies in //fp:hotpath files",
	}
	fmtFormatters := map[string]bool{
		"Sprintf": true, "Sprint": true, "Sprintln": true, "Fprintf": true,
		"Fprint": true, "Fprintln": true, "Errorf": true, "Appendf": true,
		"Printf": true, "Println": true, "Print": true,
	}
	a.Run = func(pass *Pass) {
		hot := hotpathFiles(pass.Program)
		if len(hot) == 0 {
			return
		}
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				if !hot[pass.Program.Fset.Position(f.Pos()).Filename] {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeOf(pkg.Info, call); fn != nil && fn.Pkg() != nil {
						switch fn.Pkg().Path() {
						case "fmt":
							if fmtFormatters[fn.Name()] {
								pass.Reportf(call.Pos(),
									"fmt.%s in a //fp:hotpath file: reflective formatting allocates; hand-encode (strconv.Append*, pooled buffers)",
									fn.Name())
							}
						case "encoding/json":
							pass.Reportf(call.Pos(),
								"encoding/json.%s in a //fp:hotpath file: reflection marshal allocates; hand-encode the response",
								fn.Name())
						}
						return true
					}
					// Builtins: make/append/copy materialising []int64.
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok {
						return true
					}
					if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
						switch b.Name() {
						case "make", "append":
							if tv, ok := pkg.Info.Types[call]; ok && isInt64Slice(tv.Type) {
								pass.Reportf(call.Pos(),
									"%s of []int64 in a //fp:hotpath file: ID pages must be streamed, not copied",
									b.Name())
							}
						case "copy":
							if len(call.Args) > 0 {
								if tv, ok := pkg.Info.Types[call.Args[0]]; ok && isInt64Slice(tv.Type) {
									pass.Reportf(call.Pos(),
										"copy of []int64 in a //fp:hotpath file: ID pages must be streamed, not copied")
								}
							}
						}
					}
					return true
				})
			}
		}
	}
	return a
}

// isInt64Slice reports whether t is a slice whose element's underlying type
// is int64/uint64 (covers named ID types like twitter.UserID).
func isInt64Slice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && is64Bit(s.Elem())
}
