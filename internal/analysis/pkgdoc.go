package analysis

import "strings"

// pkgdoc: every package in the configured subtrees opens with a package
// comment ("Package xyz ..."), because docs/ARCHITECTURE.md leans on the
// godoc synopses as the per-subsystem source of truth. This analyzer
// replaces scripts/check-pkgdoc.sh (PR 5), folding the check into fpvet so
// it shares the loader, the suppression mechanism and the CI job.

// PkgdocConfig parameterises the pkgdoc analyzer.
type PkgdocConfig struct {
	// IncludePrefixes are import-path prefixes whose packages must carry a
	// package comment (e.g. "fakeproject/internal", "fakeproject/cmd").
	IncludePrefixes []string
}

// NewPkgdoc builds the pkgdoc analyzer.
func NewPkgdoc(cfg PkgdocConfig) *Analyzer {
	a := &Analyzer{
		Name: "pkgdoc",
		Doc:  "every internal/ and cmd/ package has a package-level godoc comment",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Program.Packages {
			included := false
			for _, pre := range cfg.IncludePrefixes {
				if hasPrefixPath(pkg.Path, strings.TrimSuffix(pre, "/")) {
					included = true
					break
				}
			}
			if !included || len(pkg.Files) == 0 {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				// Report at the package clause of the first (name-sorted)
				// file, the conventional home for the doc comment.
				pass.Reportf(pkg.Files[0].Package,
					"package %s has no package comment; add a \"// Package %s ...\" doc comment (docs/ARCHITECTURE.md links to the synopses)",
					pkg.Path, pkg.Types.Name())
			}
		}
	}
	return a
}
