package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// The golden harness: each testdata/src/<case> package annotates the lines
// where diagnostics must appear with
//
//	code() // want "regexp matching the message"
//
// or, for diagnostics reported at a comment's own position (directive
// hygiene), with a marker on the line above:
//
//	// want-next "regexp"
//	//fp:allow walltime oops
//
// The case fails on any unmatched diagnostic and any unsatisfied want, so
// the goldens pin each analyzer's exact finding set — including what the
// suppression directives silence (asserted via the Suppressed count).

const testModule = "example.test"

var wantRe = regexp.MustCompile(`want(-next)? "([^"]*)"`)

type wantExp struct {
	re   *regexp.Regexp
	used bool
}

type posKey struct {
	file string
	line int
}

func collectWants(t *testing.T, prog *Program) map[posKey][]*wantExp {
	t.Helper()
	wants := make(map[posKey][]*wantExp)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[2])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[2], err)
						}
						pos := prog.Fset.Position(c.Pos())
						line := pos.Line
						if m[1] == "-next" {
							line++
						}
						key := posKey{pos.Filename, line}
						wants[key] = append(wants[key], &wantExp{re: re})
					}
				}
			}
		}
	}
	return wants
}

// runCase loads the given testdata packages, runs the analyzers, and checks
// the diagnostics against the // want annotations.
func runCase(t *testing.T, patterns []string, analyzers []*Analyzer, minSuppressed int) {
	t.Helper()
	prog, err := Load(filepath.Join("testdata", "src"), testModule, patterns)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(prog, analyzers)
	wants := collectWants(t, prog)
	for _, d := range res.Diagnostics {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
	if res.Suppressed < minSuppressed {
		t.Errorf("suppressed %d diagnostics, want at least %d (a suppression golden stopped working)",
			res.Suppressed, minSuppressed)
	}
}

func TestWalltime(t *testing.T) {
	runCase(t,
		[]string{"./walltime", "./walltime/clock", "./walltime/allowed"},
		[]*Analyzer{NewWalltime(WalltimeConfig{
			ExemptPackages: []string{testModule + "/walltime/clock"},
			AllowPackages:  []string{testModule + "/walltime/allowed"},
		})},
		2) // one //fp:allow line, one //fp:allow-file file
}

func TestLayering(t *testing.T) {
	runCase(t,
		[]string{
			"./layering/core", "./layering/strict", "./layering/usr",
			"./layering/allowedusr", "./layering/suppressedusr", "./layering/cmd/a",
		},
		[]*Analyzer{NewLayering(LayeringConfig{
			ModulePath: testModule,
			CmdPrefix:  testModule + "/layering/cmd",
			Rules: []LayeringRule{
				{Package: testModule + "/layering/core", OnlyImports: []string{testModule + "/layering/leaf"}},
				{Package: testModule + "/layering/strict", OnlyImports: []string{}},
				{Package: testModule + "/layering/secret", RestrictedTo: []string{testModule + "/layering/allowedusr"}},
			},
		})},
		1)
}

func TestAtomicField(t *testing.T) {
	runCase(t, []string{"./atomicfield"}, []*Analyzer{NewAtomicField()}, 1)
}

func TestLockhold(t *testing.T) {
	runCase(t, []string{"./lockhold"}, []*Analyzer{NewLockhold(LockholdConfig{
		LockPackages:   []string{testModule + "/lockhold"},
		AcquireHelpers: []string{"(*" + testModule + "/lockhold.store).lockAll"},
		ReleaseHelpers: []string{"(*" + testModule + "/lockhold.store).unlockAll"},
	})}, 1)
}

func TestHotpathAlloc(t *testing.T) {
	runCase(t, []string{"./hotpathalloc"}, []*Analyzer{NewHotpathAlloc()}, 1)
}

func TestMetricnames(t *testing.T) {
	runCase(t, []string{"./metricnames"}, []*Analyzer{NewMetricnames(MetricnamesConfig{
		RegistryTypes: []string{testModule + "/metricnames/reg.Registry"},
	})}, 1)
}

func TestPkgdoc(t *testing.T) {
	runCase(t,
		[]string{"./pkgdoc/documented", "./pkgdoc/undocumented", "./pkgdoc/suppressed"},
		[]*Analyzer{NewPkgdoc(PkgdocConfig{IncludePrefixes: []string{testModule + "/pkgdoc"}})},
		1)
}

func TestNoclone(t *testing.T) {
	runCase(t, []string{"./noclone", "./noclone/types"}, []*Analyzer{NewNoclone(NocloneConfig{
		Types: []string{testModule + "/noclone/types.Tracker"},
	})}, 1)
}

// TestDirectiveHygiene pins the fpallow pseudo-analyzer: malformed
// suppressions are diagnostics and cannot themselves be suppressed.
func TestDirectiveHygiene(t *testing.T) {
	runCase(t, []string{"./fpallow"}, []*Analyzer{NewWalltime(WalltimeConfig{})}, 0)
}

// TestSmokePackage pins the CI negative step's fixture: fpvet over the smoke
// package must produce at least one walltime diagnostic.
func TestSmokePackage(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src"), testModule, []string{"./smoke"})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(prog, []*Analyzer{NewWalltime(WalltimeConfig{})})
	if len(res.Diagnostics) == 0 {
		t.Fatal("the smoke package must trip the walltime analyzer; CI's negative step depends on it")
	}
}
