package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the type-checker's output for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded file set: every requested module package parsed and
// type-checked against one shared token.FileSet, with imports outside the
// module resolved through the stdlib source importer. It implements
// types.ImporterFrom so the type-checker calls back into it for
// intra-module imports, keeping a single *types.Package identity per path.
type Program struct {
	Fset *token.FileSet
	// Packages holds the requested module packages in load (dependency
	// before dependent) order.
	Packages []*Package

	root       string // module root directory (absolute)
	modulePath string

	byPath   map[string]*Package
	loading  map[string]bool
	fallback types.ImporterFrom
	ctxt     build.Context
}

// Load parses and type-checks the module packages matched by patterns.
// root is the module root directory, modulePath its module path (the go.mod
// module line). Patterns are interpreted relative to root: "./..." loads
// every buildable package under root (skipping testdata, vendor and hidden
// directories), any other pattern names one package directory — explicitly
// naming a testdata directory is allowed, which is how the CI negative
// smoke points fpvet at a deliberately violating package.
func Load(root, modulePath string, patterns []string) (*Program, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:       fset,
		root:       absRoot,
		modulePath: modulePath,
		byPath:     make(map[string]*Package),
		loading:    make(map[string]bool),
		ctxt:       build.Default,
	}
	prog.fallback = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)

	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := prog.walk(absRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		default:
			d := filepath.Join(absRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if fi, err := os.Stat(d); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("pattern %q: not a package directory under %s", pat, root)
			}
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		path, err := prog.dirToPath(dir)
		if err != nil {
			return nil, err
		}
		if _, err := prog.load(path); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// walk enumerates buildable package directories under root, applying the go
// tool's conventions: testdata, vendor, and directories whose name starts
// with "." or "_" are skipped (along with everything beneath them).
func (p *Program) walk(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		if p.buildable(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// buildable reports whether dir contains at least one non-test Go file that
// passes the default build constraints.
func (p *Program) buildable(dir string) bool {
	bp, err := p.ctxt.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// dirToPath maps a directory under the module root to its import path.
func (p *Program) dirToPath(dir string) (string, error) {
	rel, err := filepath.Rel(p.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module root %s", dir, p.root)
	}
	if rel == "." {
		return p.modulePath, nil
	}
	return p.modulePath + "/" + filepath.ToSlash(rel), nil
}

// pathToDir maps a module import path to its directory.
func (p *Program) pathToDir(path string) string {
	if path == p.modulePath {
		return p.root
	}
	rel := strings.TrimPrefix(path, p.modulePath+"/")
	return filepath.Join(p.root, filepath.FromSlash(rel))
}

// inModule reports whether path names a package of the loaded module.
func (p *Program) inModule(path string) bool {
	return path == p.modulePath || strings.HasPrefix(path, p.modulePath+"/")
}

// load parses and type-checks one module package (memoised).
func (p *Program) load(path string) (*Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	dir := p.pathToDir(path)
	bp, err := p.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &importerFrom{prog: p, dir: dir},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	p.byPath[path] = pkg
	p.Packages = append(p.Packages, pkg)
	return pkg, nil
}

// importerFrom routes the type-checker's import requests: module packages go
// through the program's own loader (so their syntax and types.Info are
// retained for analysis), everything else — the stdlib — through the source
// importer.
type importerFrom struct {
	prog *Program
	dir  string
}

func (i *importerFrom) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, i.dir, 0)
}

func (i *importerFrom) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if i.prog.inModule(path) {
		pkg, err := i.prog.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return i.prog.fallback.ImportFrom(path, dir, mode)
}

// Package returns the loaded module package for path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }
