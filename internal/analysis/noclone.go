package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// noclone: the store, the metrics registry and the histograms are identity
// objects — they hold mutexes, atomics and published pointers, and a
// by-value copy silently forks their state (and, for the histogram's atomic
// bucket array, races with concurrent recorders). go vet's copylocks covers
// the lock-bearing subset; this rule is the -copylocks-adjacent gap check
// the roadmap's RCU work will lean on, because it also covers types whose
// copies are wrong without containing a lock. Flagged: value parameters,
// results and receivers of the configured types, and copy-shaped
// expressions (x := *p, x := y, f(v), composite elements) outside the
// declaring package's New* constructors.

// NocloneConfig parameterises the noclone analyzer.
type NocloneConfig struct {
	// Types are fully qualified named types ("pkgpath.Name") that must not
	// be copied by value.
	Types []string
}

// NewNoclone builds the noclone analyzer.
func NewNoclone(cfg NocloneConfig) *Analyzer {
	deny := toSet(cfg.Types)
	a := &Analyzer{
		Name: "noclone",
		Doc:  "no by-value copies of the store, registry and histogram types outside their constructors",
	}
	nameOf := func(t types.Type) string {
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name()
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					// Constructors may build and hand out the value.
					if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new") {
						if anyParamOrBodyInPkg(pkg, deny, nameOf) {
							continue
						}
					}
					checkSignature(pass, pkg, fd, deny, nameOf)
					if fd.Body != nil {
						checkCopies(pass, pkg, fd.Body, deny, nameOf)
					}
				}
			}
		}
	}
	return a
}

// anyParamOrBodyInPkg reports whether the constructor exemption applies:
// the function lives in the package declaring one of the denied types.
func anyParamOrBodyInPkg(pkg *Package, deny map[string]bool, nameOf func(types.Type) string) bool {
	for key := range deny {
		if path, _, ok := strings.Cut(key, "."); ok && pkgPathOfKey(key) == pkg.Path {
			_ = path
			return true
		}
	}
	return false
}

// pkgPathOfKey splits "pkgpath.Name" at the final dot.
func pkgPathOfKey(key string) string {
	i := strings.LastIndex(key, ".")
	if i < 0 {
		return key
	}
	return key[:i]
}

// checkSignature flags value parameters, results and receivers of denied
// types.
func checkSignature(pass *Pass, pkg *Package, fd *ast.FuncDecl, deny map[string]bool, nameOf func(types.Type) string) {
	flagField := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if key := nameOf(tv.Type); key != "" && deny[key] {
				pass.Reportf(field.Type.Pos(),
					"%s of type %s is a by-value copy; pass a pointer (copying forks its state)", what, key)
			}
		}
	}
	flagField(fd.Recv, "receiver")
	if fd.Type.Params != nil {
		flagField(fd.Type.Params, "parameter")
	}
	if fd.Type.Results != nil {
		flagField(fd.Type.Results, "result")
	}
}

// checkCopies flags copy-shaped expressions of denied types inside a body.
func checkCopies(pass *Pass, pkg *Package, body *ast.BlockStmt, deny map[string]bool, nameOf func(types.Type) string) {
	copyable := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			return true
		}
		return false
	}
	flag := func(e ast.Expr) {
		if !copyable(e) {
			return
		}
		tv, ok := pkg.Info.Types[ast.Unparen(e)]
		if !ok || !tv.IsValue() {
			return
		}
		if key := nameOf(tv.Type); key != "" && deny[key] {
			pass.Reportf(e.Pos(),
				"by-value copy of %s; take a pointer instead (copying forks its state)", key)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				flag(rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				flag(v)
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				flag(arg)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					flag(kv.Value)
				} else {
					flag(elt)
				}
			}
		case *ast.SendStmt:
			flag(n.Value)
		}
		return true
	})
}
