package analysis

import (
	"sort"
	"strconv"
	"strings"
)

// layering: the import DAG is an architectural decision, so it is encoded
// here as data, not prose. Three rule shapes cover everything the repo has
// needed so far:
//
//   - OnlyImports: a package may import the stdlib plus an explicit list.
//     This is how "internal/twitter stays WAL-free behind the op-sink hook"
//     (PR 7) and "internal/metrics is dependency-free" (PR 6) are enforced.
//   - RestrictedTo: a package may only be imported by the listed importers
//     (prefix patterns ending in /* match subtrees). This keeps
//     internal/core on the facade side of the DAG: foundation packages must
//     never grow an upward dependency on it.
//   - NoCmdToCmd: cmd/* binaries never import each other; shared behaviour
//     belongs in internal/.

// LayeringRule constrains one package's imports (OnlyImports) or importers
// (RestrictedTo). Exactly one of the two fields is meaningful per rule.
type LayeringRule struct {
	// Package is the import path the rule is about.
	Package string
	// OnlyImports, when non-nil, lists the module-internal packages Package
	// may import; stdlib imports are always allowed. An empty (non-nil)
	// list means stdlib-only.
	OnlyImports []string
	// RestrictedTo, when non-nil, lists who may import Package. Entries
	// ending in "/*" match the subtree under the prefix.
	RestrictedTo []string
}

// LayeringConfig parameterises the layering analyzer.
type LayeringConfig struct {
	// ModulePath distinguishes module-internal imports from stdlib ones.
	ModulePath string
	// CmdPrefix, when set, enables the "no cmd imports another cmd" rule
	// for packages under this prefix (e.g. "fakeproject/cmd").
	CmdPrefix string
	Rules     []LayeringRule
}

// NewLayering builds the layering analyzer.
func NewLayering(cfg LayeringConfig) *Analyzer {
	only := map[string]map[string]bool{}
	restricted := map[string][]string{}
	for _, r := range cfg.Rules {
		if r.OnlyImports != nil {
			only[r.Package] = toSet(r.OnlyImports)
		}
		if r.RestrictedTo != nil {
			restricted[r.Package] = r.RestrictedTo
		}
	}
	matches := func(importer string, pats []string) bool {
		for _, pat := range pats {
			if sub, ok := strings.CutSuffix(pat, "/*"); ok {
				if hasPrefixPath(importer, sub) {
					return true
				}
			} else if importer == pat {
				return true
			}
		}
		return false
	}
	a := &Analyzer{
		Name: "layering",
		Doc:  "import-DAG rules: allowed imports, restricted importers, no cmd-to-cmd imports",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if !hasPrefixPath(path, cfg.ModulePath) {
						continue // stdlib (the module has no third-party deps)
					}
					if allowed, ok := only[pkg.Path]; ok && !allowed[path] {
						pass.Reportf(imp.Pos(),
							"%s must not import %s (allowed beyond stdlib: %s)",
							pkg.Path, path, orNone(only[pkg.Path]))
					}
					if pats, ok := restricted[path]; ok && !matches(pkg.Path, pats) {
						pass.Reportf(imp.Pos(),
							"%s may only be imported by %s; %s is on the wrong side of the layering",
							path, strings.Join(pats, ", "), pkg.Path)
					}
					if cfg.CmdPrefix != "" &&
						hasPrefixPath(pkg.Path, cfg.CmdPrefix) && hasPrefixPath(path, cfg.CmdPrefix) &&
						path != pkg.Path {
						pass.Reportf(imp.Pos(),
							"%s imports %s: cmd binaries must not import each other; lift shared code into internal/",
							pkg.Path, path)
					}
				}
			}
		}
	}
	return a
}

func orNone(set map[string]bool) string {
	if len(set) == 0 {
		return "none"
	}
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return strings.Join(paths, ", ")
}
