package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// Suppression directives. A diagnostic is an invariant violation; sometimes
// the violation is the design (loadd measures wall time on purpose, the
// snapshot serialises under the store's locks on purpose). Those sites carry
//
//	//fp:allow <analyzer> <reason>       — this line and the next
//	//fp:allow-file <analyzer> <reason>  — the whole file
//
// The reason is mandatory and must be at least two words: an unexplained
// exception is indistinguishable from a silenced bug, so fpvet reports
// malformed directives (missing/one-word reason, unknown analyzer, unknown
// //fp: verb) as diagnostics of the pseudo-analyzer "fpallow" — which cannot
// itself be suppressed.
//
// //fp:hotpath is the third directive: it marks a file as a serving hot
// path, opting it into the hotpathalloc analyzer's rules.

// DirectiveAnalyzerName is the pseudo-analyzer that owns directive-hygiene
// diagnostics.
const DirectiveAnalyzerName = "fpallow"

// HotpathDirective marks a file as hot-path; see the hotpathalloc analyzer.
const HotpathDirective = "//fp:hotpath"

// directives indexes the well-formed suppressions of a program.
type directives struct {
	// line maps filename -> line -> analyzers suppressed on that line.
	line map[string]map[int]map[string]bool
	// file maps filename -> analyzers suppressed file-wide.
	file map[string]map[string]bool
}

func (d *directives) suppresses(diag Diagnostic) bool {
	if set := d.file[diag.Pos.Filename]; set[diag.Analyzer] {
		return true
	}
	if lines := d.line[diag.Pos.Filename]; lines != nil {
		if lines[diag.Pos.Line][diag.Analyzer] {
			return true
		}
	}
	return false
}

// scanDirectives collects every //fp: directive in the program. known names
// the valid analyzer targets; malformed directives come back as diagnostics.
func scanDirectives(prog *Program, known map[string]bool) (*directives, []Diagnostic) {
	d := &directives{
		line: make(map[string]map[int]map[string]bool),
		file: make(map[string]map[string]bool),
	}
	var bad []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Pos:      prog.Fset.Position(c.Pos()),
			Analyzer: DirectiveAnalyzerName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//fp:")
					if !ok {
						continue
					}
					verb, rest, _ := strings.Cut(text, " ")
					switch verb {
					case "hotpath":
						// Scanned by the hotpathalloc analyzer; no arguments.
					case "allow", "allow-file":
						analyzer, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
						if analyzer == "" {
							report(c, "//fp:%s needs an analyzer name and a reason", verb)
							continue
						}
						if !known[analyzer] {
							report(c, "//fp:%s names unknown analyzer %q", verb, analyzer)
							continue
						}
						if len(strings.Fields(reason)) < 2 {
							report(c, "//fp:%s %s needs a reason (at least two words): every suppression must say why the invariant does not apply", verb, analyzer)
							continue
						}
						pos := prog.Fset.Position(c.Pos())
						if verb == "allow-file" {
							set := d.file[pos.Filename]
							if set == nil {
								set = make(map[string]bool)
								d.file[pos.Filename] = set
							}
							set[analyzer] = true
						} else {
							lines := d.line[pos.Filename]
							if lines == nil {
								lines = make(map[int]map[string]bool)
								d.line[pos.Filename] = lines
							}
							for _, ln := range []int{pos.Line, pos.Line + 1} {
								if lines[ln] == nil {
									lines[ln] = make(map[string]bool)
								}
								lines[ln][analyzer] = true
							}
						}
					default:
						report(c, "unknown directive //fp:%s (known: allow, allow-file, hotpath)", verb)
					}
				}
			}
		}
	}
	return d, bad
}

// hotpathFiles returns the set of filenames carrying //fp:hotpath.
func hotpathFiles(prog *Program) map[string]bool {
	hot := make(map[string]bool)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
						hot[prog.Fset.Position(f.Pos()).Filename] = true
					}
				}
			}
		}
	}
	return hot
}
