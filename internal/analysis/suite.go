package analysis

// suite.go pins the repo's rulebook: the concrete configuration of every
// analyzer for this module. docs/INVARIANTS.md is the prose twin of this
// file — change one, change the other.

// ModulePath is the import path of this module; the default suite's rules
// are expressed against it.
const ModulePath = "fakeproject"

// DefaultSuite returns the fpvet analyzers configured for this repository.
func DefaultSuite() []*Analyzer {
	return []*Analyzer{
		NewWalltime(WalltimeConfig{
			// simclock is the one place allowed to touch the wall clock: it
			// wraps it behind the Clock interface every daemon consumes.
			ExemptPackages: []string{ModulePath + "/internal/simclock"},
			// Legitimate wall-time consumers, allowlisted as packages:
			// loadgen measures real client-perceived latency, and the WAL
			// times real fsyncs (durability happens in wall time even when
			// the simulation does not).
			AllowPackages: []string{
				ModulePath + "/internal/loadgen",
				ModulePath + "/internal/wal",
			},
		}),
		NewLayering(LayeringConfig{
			ModulePath: ModulePath,
			CmdPrefix:  ModulePath + "/cmd",
			Rules: []LayeringRule{
				// The domain core stays storage- and telemetry-free: WAL
				// attachment happens through the OpLog hook (PR 7), metrics
				// through the daemons that own them (PR 6).
				{Package: ModulePath + "/internal/twitter", OnlyImports: []string{
					ModulePath + "/internal/drand",
					ModulePath + "/internal/simclock",
				}},
				// The observability plane is stdlib-only so every subsystem
				// can depend on it without cycles.
				{Package: ModulePath + "/internal/metrics", OnlyImports: []string{}},
				// The routing tier speaks plain HTTP to its backends and
				// must never grow store or API-implementation knowledge:
				// everything it routes by is wire-visible contract. Keeping
				// it a stdlib + metrics + simclock leaf is what lets it
				// front any conforming deployment (PR 10).
				{Package: ModulePath + "/internal/router", OnlyImports: []string{
					ModulePath + "/internal/metrics",
					ModulePath + "/internal/simclock",
				}},
				// Leaf utility packages stay leaves.
				{Package: ModulePath + "/internal/simclock", OnlyImports: []string{}},
				{Package: ModulePath + "/internal/drand", OnlyImports: []string{}},
				{Package: ModulePath + "/internal/stats", OnlyImports: []string{}},
				{Package: ModulePath + "/internal/analysis", OnlyImports: []string{}},
				// The experiment engine is for batch drivers, not serving
				// daemons: core types flow into cmd/* and the offline tools
				// only.
				{Package: ModulePath + "/internal/core", RestrictedTo: []string{
					ModulePath,
					ModulePath + "/cmd/*",
					ModulePath + "/examples/*",
					ModulePath + "/internal/auditd",
					ModulePath + "/internal/experiments",
					ModulePath + "/internal/fc",
					ModulePath + "/internal/tools/*",
				}},
			},
		}),
		NewAtomicField(),
		NewLockhold(LockholdConfig{
			// The store's shard and name-stripe mutexes plus createMu: no
			// blocking syscall is reachable while one is held (PR 4's
			// lock-striping contract). The WAL's writer mutex is exempt by
			// scope: its group-commit design syncs under w.mu on rotation
			// deliberately.
			LockPackages: []string{ModulePath + "/internal/twitter"},
			AcquireHelpers: []string{
				"(*" + ModulePath + "/internal/twitter.Store).rlockAll",
			},
			ReleaseHelpers: []string{
				"(*" + ModulePath + "/internal/twitter.Store).runlockAll",
			},
		}),
		NewHotpathAlloc(),
		NewMetricnames(MetricnamesConfig{
			RegistryTypes: []string{ModulePath + "/internal/metrics.Registry"},
		}),
		NewPkgdoc(PkgdocConfig{
			IncludePrefixes: []string{
				ModulePath + "/internal",
				ModulePath + "/cmd",
			},
		}),
		NewNoclone(NocloneConfig{
			Types: []string{
				ModulePath + "/internal/twitter.Store",
				ModulePath + "/internal/metrics.Registry",
				ModulePath + "/internal/metrics.Histogram",
			},
		}),
	}
}
