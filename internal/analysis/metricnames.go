package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// metricnames: every metric family the platform exports (PR 6) is declared
// with a literal snake_case name, a real HELP sentence, a kind-appropriate
// unit suffix (counters end _total, histograms _seconds), and exactly one
// registration call site per family name — the registry deduplicates at
// runtime, but two call sites with the same name and different help/kind
// would race for the family's identity and confuse every dashboard query.
// Names must be literals so this analyzer (and grep) can see the full
// metric vocabulary; docs/OPERATIONS.md's metric table is built from it.

// MetricnamesConfig parameterises the metricnames analyzer.
type MetricnamesConfig struct {
	// RegistryTypes are the fully qualified registry types ("pkgpath.Name")
	// whose registration methods are checked.
	RegistryTypes []string
}

// registrationKinds maps registration method names to the family kind they
// declare.
var registrationKinds = map[string]string{
	"Counter": "counter", "CounterFunc": "counter",
	"Gauge": "gauge", "IntGauge": "gauge", "GaugeFunc": "gauge",
	"Histogram": "histogram", "RegisterHistogram": "histogram",
}

// NewMetricnames builds the metricnames analyzer.
func NewMetricnames(cfg MetricnamesConfig) *Analyzer {
	registries := toSet(cfg.RegistryTypes)
	a := &Analyzer{
		Name: "metricnames",
		Doc:  "metric names are literal, snake_case, unit-suffixed, helped, and registered at one site",
	}
	a.Run = func(pass *Pass) {
		sites := make(map[string][]ast.Node) // family name -> registration call sites
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeOf(pkg.Info, call)
					if fn == nil {
						return true
					}
					kind, ok := registrationKinds[fn.Name()]
					if !ok || !isRegistryMethod(fn, registries) || len(call.Args) < 2 {
						return true
					}
					nameLit, nameOK := stringLit(call.Args[0])
					if !nameOK {
						pass.Reportf(call.Args[0].Pos(),
							"metric name must be a string literal so the exported vocabulary is statically known")
						return true
					}
					if !snakeCase(nameLit) {
						pass.Reportf(call.Args[0].Pos(),
							"metric name %q is not snake_case ([a-z][a-z0-9_]*)", nameLit)
					}
					switch kind {
					case "counter":
						if !strings.HasSuffix(nameLit, "_total") {
							pass.Reportf(call.Args[0].Pos(),
								"counter %q must end in _total (Prometheus naming conventions)", nameLit)
						}
					case "histogram":
						if !strings.HasSuffix(nameLit, "_seconds") {
							pass.Reportf(call.Args[0].Pos(),
								"histogram %q must end in _seconds (durations are exposed in seconds)", nameLit)
						}
					}
					helpIdx := 1
					help, helpOK := stringLit(call.Args[helpIdx])
					if !helpOK {
						pass.Reportf(call.Args[helpIdx].Pos(),
							"metric %q: HELP text must be a string literal", nameLit)
					} else if strings.TrimSpace(help) == "" {
						pass.Reportf(call.Args[helpIdx].Pos(),
							"metric %q: HELP text must not be empty", nameLit)
					} else if !strings.HasSuffix(strings.TrimSpace(help), ".") {
						pass.Reportf(call.Args[helpIdx].Pos(),
							"metric %q: HELP text should be a sentence ending in a period", nameLit)
					}
					if nameOK {
						sites[nameLit] = append(sites[nameLit], call.Args[0])
					}
					return true
				})
			}
		}
		var dup []string
		for name, at := range sites {
			if len(at) > 1 {
				dup = append(dup, name)
			}
		}
		sort.Strings(dup)
		for _, name := range dup {
			at := sites[name]
			sort.Slice(at, func(i, j int) bool { return at[i].Pos() < at[j].Pos() })
			for _, n := range at[1:] {
				pass.Reportf(n.Pos(),
					"metric %q is registered at %d call sites; a family is declared exactly once (first at %s)",
					name, len(at), pass.Program.Fset.Position(at[0].Pos()))
			}
		}
	}
	return a
}

// isRegistryMethod reports whether fn is a method on one of the configured
// registry types.
func isRegistryMethod(fn *types.Func, registries map[string]bool) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return registries[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

// snakeCase reports whether s matches [a-z][a-z0-9_]*.
func snakeCase(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
