// Package analysis is the repo's static-analysis framework: a dependency-free
// loader (go/ast + go/types, source-importer based) plus the fpvet analyzers
// that machine-check the platform's cross-PR invariants — virtual-clock
// discipline, import layering, atomic-field hygiene, lock-hold I/O bans,
// hot-path allocation rules, metric naming, package docs and no-clone types.
//
// Each analyzer states one rule that previously lived only in CHANGES.md or a
// reviewer's head; docs/INVARIANTS.md catalogues them. Diagnostics carry exact
// positions and are suppressible site-by-site with
//
//	//fp:allow <analyzer> <reason — at least two words>
//
// (same line or the line above), or file-wide with //fp:allow-file. A
// suppression without a reason is itself a diagnostic: every exception to an
// invariant must say why it is one.
//
// cmd/fpvet is the driver; internal/analysis/testdata holds the golden-file
// packages (with // want "…" expectations) that pin each analyzer's exact
// diagnostic set.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: an invariant violation at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives the whole loaded program,
// so analyzers are free to reason across packages (layering, atomic-field
// cross-references, metric-name uniqueness); per-package analyzers simply
// iterate pass.Packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //fp:allow directives.
	Name string
	// Doc is a one-line description shown by fpvet -list.
	Doc string
	// Run inspects the program and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of the loaded program and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Program  *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Program.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is what a suite run produces: the surviving diagnostics (position
// sorted) and the count of suppressed ones.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  int
}

// Run executes the analyzers over the program, applies //fp:allow
// suppressions, appends the directive-hygiene diagnostics (analyzer
// "fpallow": malformed or unknown suppressions, which cannot themselves be
// suppressed) and returns the surviving findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) Result {
	known := map[string]bool{DirectiveAnalyzerName: true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs, bad := scanDirectives(prog, known)

	var res Result
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Program: prog}
		a.Run(pass)
		for _, d := range pass.diags {
			if dirs.suppresses(d) {
				res.Suppressed++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	res.Diagnostics = append(res.Diagnostics, bad...)
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}
