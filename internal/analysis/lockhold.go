package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockhold: no file I/O, fsync, network call or channel send while a store
// or shard mutex is held (PR 4's striping argument collapses if one writer
// parks a shard lock on a disk flush — every reader of that shard stalls
// for the device's latency, not the critical section's). The analyzer is
// intra-procedural over critical sections and inter-procedural over what
// blocks: a module function containing a blocking operation marks every
// static caller transitively, so hiding an fsync behind a helper does not
// hide it from fpvet. Interface calls (the store's OpLog hook) are invisible
// by design — that hook's contract ("append is buffered; Sync runs after
// the locks are released") is exactly the boundary this analyzer patrols.
//
// Critical sections are tracked syntactically in statement order: from a
// .Lock()/.RLock() on a monitored mutex (a sync.Mutex/RWMutex field of a
// struct declared in a configured package, or a configured acquire helper
// like (*Store).rlockAll) to the matching release, or to function end when
// the release is deferred. The one audited exception in the tree is the
// snapshot cut: WriteSnapshotWith serialises under every shard lock because
// consistency demands it, and says so in its //fp:allow reason.

// LockholdConfig parameterises the lockhold analyzer.
type LockholdConfig struct {
	// LockPackages are import paths whose struct mutex fields define
	// monitored critical sections.
	LockPackages []string
	// AcquireHelpers / ReleaseHelpers are full function names (as printed
	// by types.Func.FullName, e.g. "(*path/to/pkg.Store).rlockAll") that
	// acquire/release monitored locks on behalf of callers.
	AcquireHelpers []string
	ReleaseHelpers []string
}

// blockReason describes why a function or call site is considered blocking.
type blockReason struct {
	desc string // e.g. "calls (*os.File).Sync"
}

// NewLockhold builds the lockhold analyzer.
func NewLockhold(cfg LockholdConfig) *Analyzer {
	lockPkgs := toSet(cfg.LockPackages)
	acquire := toSet(cfg.AcquireHelpers)
	release := toSet(cfg.ReleaseHelpers)
	a := &Analyzer{
		Name: "lockhold",
		Doc:  "no file I/O, fsync, network call or channel send while a store/shard mutex is held",
	}
	a.Run = func(pass *Pass) {
		// Pass 1 over every module function: direct blocking ops and static
		// call edges, for the transitive closure.
		facts := make(map[*types.Func]*fnFacts)
		decls := make(map[*types.Func]*declCtx)
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					ff := &fnFacts{}
					collectOps(pkg.Info, fd.Body, ff.appendDirect, ff.appendCall)
					facts[fn] = ff
					decls[fn] = &declCtx{pkg: pkg, decl: fd}
				}
			}
		}

		// Transitive closure: a function that calls a blocking function is
		// blocking, with the chain recorded for the diagnostic.
		blocking := make(map[*types.Func]blockReason)
		for fn, ff := range facts {
			if len(ff.direct) > 0 {
				blocking[fn] = blockReason{desc: ff.direct[0].desc}
			}
		}
		for changed := true; changed; {
			changed = false
			for fn, ff := range facts {
				if _, done := blocking[fn]; done {
					continue
				}
				for _, cs := range ff.calls {
					if br, ok := blocking[cs.callee]; ok {
						blocking[fn] = blockReason{
							desc: fmt.Sprintf("calls %s, which %s", cs.callee.Name(), br.desc),
						}
						changed = true
						break
					}
				}
			}
		}

		// Pass 2: inside each function, overlay the blocking sites (direct
		// ops, calls to blocking module functions, channel sends) onto the
		// monitored-lock intervals.
		for fn, ff := range facts {
			dc := decls[fn]
			intervals := lockIntervals(dc.pkg.Info, dc.decl.Body, lockPkgs, acquire, release)
			if len(intervals) == 0 {
				continue
			}
			flag := func(pos token.Pos, desc string) {
				for _, iv := range intervals {
					if pos > iv.from && pos < iv.to {
						pass.Reportf(pos,
							"%s while a %s lock is held; move it outside the critical section (or //fp:allow lockhold <why it must run under the lock>)",
							desc, iv.what)
						return
					}
				}
			}
			for _, op := range ff.direct {
				flag(op.pos, op.desc)
			}
			for _, cs := range ff.calls {
				if br, ok := blocking[cs.callee]; ok {
					flag(cs.pos, fmt.Sprintf("call to %s, which %s", cs.callee.Name(), br.desc))
				}
			}
		}
	}
	return a
}

type opSite struct {
	pos  token.Pos
	desc string
}

type callSite struct {
	pos    token.Pos
	callee *types.Func
}

type declCtx struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// fnFacts are one function's blocking-relevant facts: its direct blocking
// operations and its static calls into module code.
type fnFacts struct {
	direct []opSite
	calls  []callSite
}

func (ff *fnFacts) appendDirect(pos token.Pos, desc string) { ff.direct = append(ff.direct, opSite{pos, desc}) }
func (ff *fnFacts) appendCall(pos token.Pos, callee *types.Func) {
	ff.calls = append(ff.calls, callSite{pos, callee})
}

// collectOps walks a function body recording direct blocking operations and
// static calls to module functions.
func collectOps(info *types.Info, body *ast.BlockStmt, direct func(token.Pos, string), call func(token.Pos, *types.Func)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			direct(n.Arrow, "channel send")
		case *ast.CallExpr:
			fn := calleeOf(info, n)
			if fn == nil {
				return true
			}
			if desc := blockingCall(fn); desc != "" {
				direct(n.Pos(), desc)
			} else if fn.Pkg() != nil && !isStdlib(fn.Pkg().Path()) {
				call(n.Pos(), fn)
			}
		}
		return true
	})
}

// interval is one monitored critical section within a function body.
type interval struct {
	from, to token.Pos
	what     string // which mutex, for the diagnostic
}

// lockIntervals computes the source spans of a body during which a
// monitored mutex is held, in statement order. Deferred releases extend the
// section to the end of the function, matching their runtime behaviour.
func lockIntervals(info *types.Info, body *ast.BlockStmt, lockPkgs, acquire, release map[string]bool) []interval {
	type event struct {
		pos   token.Pos
		delta int
		what  string
	}
	var events []event
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.FuncLit:
				return false // separate analysis scope
			case *ast.CallExpr:
				what, delta := classifyLockCall(info, m, lockPkgs, acquire, release)
				if delta == 0 {
					return true
				}
				if inDefer {
					// A deferred release keeps the lock to function end; a
					// deferred acquire (pathological) is ignored.
					return true
				}
				events = append(events, event{m.Pos(), delta, what})
			}
			return true
		})
	}
	walk(body, false)
	if len(events) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var out []interval
	depth := 0
	var openAt token.Pos
	var what string
	for _, ev := range events {
		before := depth
		depth += ev.delta
		if depth < 0 {
			depth = 0
		}
		if before == 0 && depth > 0 {
			openAt, what = ev.pos, ev.what
		}
		if before > 0 && depth == 0 {
			out = append(out, interval{from: openAt, to: ev.pos, what: what})
		}
	}
	if depth > 0 {
		out = append(out, interval{from: openAt, to: body.End(), what: what})
	}
	return out
}

// classifyLockCall decides whether call acquires (+1) or releases (-1) a
// monitored mutex, returning a human name for it.
func classifyLockCall(info *types.Info, call *ast.CallExpr, lockPkgs, acquire, release map[string]bool) (string, int) {
	fn := calleeOf(info, call)
	if fn == nil {
		return "", 0
	}
	full := fn.FullName()
	if acquire[full] {
		return full, 1
	}
	if release[full] {
		return full, -1
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	var delta int
	switch fn.Name() {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0
	}
	if !isSyncMutex(fn) {
		return "", 0
	}
	// The mutex itself must be a struct field declared in a monitored
	// package: s.createMu.Lock(), sh.mu.RLock(), ...
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fld := fieldOf(info, inner)
	if fld == nil || fld.Pkg() == nil || !lockPkgs[fld.Pkg().Path()] {
		return "", 0
	}
	return fld.Pkg().Name() + "." + fld.Name(), delta
}

// isSyncMutex reports whether fn is a method of sync.Mutex or sync.RWMutex.
func isSyncMutex(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// calleeOf resolves a call's static callee, or nil (interface calls,
// function values, conversions).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isStdlib reports whether an import path is standard-library shaped (no
// dot in the first path element — the module has no third-party deps, so
// everything else is module-internal).
func isStdlib(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

// nonBlockingOS are package os functions that only touch the process's own
// state, not the filesystem.
var nonBlockingOS = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "Getpid": true, "Getppid": true, "Getuid": true,
	"Geteuid": true, "Getgid": true, "Getegid": true, "IsNotExist": true,
	"IsExist": true, "IsPermission": true, "IsTimeout": true,
	"NewSyscallError": true, "TempDir": true, "Exit": true,
}

// nonBlockingNet are pure parsing/formatting helpers in package net.
var nonBlockingNet = map[string]bool{
	"JoinHostPort": true, "SplitHostPort": true, "ParseIP": true,
	"ParseCIDR": true, "CIDRMask": true, "IPv4": true, "ParseMAC": true,
}

// nonBlockingHTTP are package net/http helpers that build values without
// touching the network or a ResponseWriter.
var nonBlockingHTTP = map[string]bool{
	"StatusText": true, "CanonicalHeaderKey": true, "DetectContentType": true,
	"NewServeMux": true, "NewRequest": true, "NewRequestWithContext": true,
}

// blockingRecvTypes are concrete/interface receiver types whose methods
// perform I/O (or hand bytes to something that does).
var blockingRecvTypes = map[string]map[string]bool{
	"os.File":       nil, // nil = every method
	"net.Conn":      nil,
	"net.TCPConn":   nil,
	"net.UDPConn":   nil,
	"net.Listener":  nil,
	"net.TCPListener": nil,
	"net/http.Client":         nil,
	"net/http.Transport":      nil,
	"net/http.ResponseWriter": nil,
	"encoding/gob.Encoder":    {"Encode": true, "EncodeValue": true},
	"encoding/gob.Decoder":    {"Decode": true, "DecodeValue": true},
	"encoding/json.Encoder":   {"Encode": true},
	"encoding/json.Decoder":   {"Decode": true},
	"bufio.Writer":            {"Flush": true, "ReadFrom": true},
}

// blockingCall classifies fn: non-empty means calling it blocks on I/O,
// the network, the disk or the wall clock.
func blockingCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		methods, ok := blockingRecvTypes[key]
		if !ok {
			return ""
		}
		if methods == nil || methods[fn.Name()] {
			return fmt.Sprintf("calls (*%s).%s", key, fn.Name())
		}
		return ""
	}
	switch pkg.Path() {
	case "os":
		if !nonBlockingOS[fn.Name()] {
			return "calls os." + fn.Name()
		}
	case "net":
		if !nonBlockingNet[fn.Name()] {
			return "calls net." + fn.Name()
		}
	case "net/http":
		if !nonBlockingHTTP[fn.Name()] {
			return "calls http." + fn.Name()
		}
	case "syscall":
		return "calls syscall." + fn.Name()
	case "os/exec":
		return "calls exec." + fn.Name()
	case "time":
		if fn.Name() == "Sleep" {
			return "calls time.Sleep"
		}
	case "io":
		switch fn.Name() {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll":
			return "calls io." + fn.Name()
		}
	}
	return ""
}
