package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// walltime: all daemon time flows through the virtual clock (PR 2). A stray
// time.Now or time.Sleep in platform code silently decouples a component
// from simclock, breaking the "27 virtual days replay in under a second"
// property and making timing-sensitive tests flaky. The rule: no wall-clock
// time.* calls outside internal/simclock (the facade over real time) and an
// explicit allowlist of packages whose business IS wall time — the load
// generator's open-loop arrival scheduler and the WAL's fsync/compaction
// timing measure the physical world, not the simulation.

// WalltimeConfig parameterises the walltime analyzer.
type WalltimeConfig struct {
	// ExemptPackages are import paths checked not at all: the clock facade
	// itself.
	ExemptPackages []string
	// AllowPackages are import paths where wall-clock use is the designed
	// behaviour (real-time load scheduling, disk-latency measurement).
	AllowPackages []string
}

// wallFuncs are the package time functions that read or wait on the wall
// clock. Formatting/arithmetic helpers (time.Date, time.Unix, d.Seconds)
// are fine anywhere — they don't observe the clock.
var wallFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Since": true, "Until": true, "Tick": true, "NewTimer": true,
	"NewTicker": true,
}

// NewWalltime builds the walltime analyzer.
func NewWalltime(cfg WalltimeConfig) *Analyzer {
	exempt := toSet(cfg.ExemptPackages)
	allow := toSet(cfg.AllowPackages)
	a := &Analyzer{
		Name: "walltime",
		Doc:  "wall-clock time.* calls outside internal/simclock and the real-time allowlist",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Program.Packages {
			if exempt[pkg.Path] || allow[pkg.Path] {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj, ok := pkg.Info.Uses[sel.Sel]
					if !ok {
						return true
					}
					fn, ok := obj.(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
						return true
					}
					if !wallFuncs[fn.Name()] {
						return true
					}
					// Methods like time.Time.After/Sub share names with the
					// package-level clock readers but only do arithmetic.
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						return true
					}
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; route time through simclock.Clock (or //fp:allow walltime <why this is real time>)",
						fn.Name())
					return true
				})
			}
		}
	}
	return a
}

func toSet(paths []string) map[string]bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return set
}

// hasPrefixPath reports whether path is pre or lies under pre + "/".
func hasPrefixPath(path, pre string) bool {
	return path == pre || strings.HasPrefix(path, pre+"/")
}
