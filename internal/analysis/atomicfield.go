package analysis

import (
	"go/ast"
	"go/types"
)

// atomicfield: a struct field whose address is ever passed to a sync/atomic
// function is an atomic field, everywhere and forever — one plain read
// elsewhere is a data race the race detector only catches if a test happens
// to interleave it. The analyzer cross-references the whole program: phase
// one collects every field reaching sync/atomic by address, phase two flags
// every plain (non-atomic) read or write of those fields. Composite-literal
// keys are exempt (construction before publication); anything else needs an
// //fp:allow with a reason arguing the happens-before edge.
//
// It also enforces the 64-bit alignment rule: an atomically accessed
// int64/uint64 field must sit at an 8-byte-aligned offset under GOARCH=386
// sizes, or the first atomic access will fault on 32-bit platforms. (The
// typed atomic.Int64/Uint64 wrappers carry their own align64 marker and are
// immune — preferring them is the real fix.)

// NewAtomicField builds the atomicfield analyzer.
func NewAtomicField() *Analyzer {
	a := &Analyzer{
		Name: "atomicfield",
		Doc:  "fields accessed via sync/atomic must never be accessed plainly, and 64-bit ones must be alignment-safe",
	}
	a.Run = func(pass *Pass) {
		// Phase 1: every field object whose address flows into sync/atomic.
		atomicFields := make(map[*types.Var][]ast.Expr) // field -> atomic-access sites (the &x.f operands)
		atomicOperands := make(map[ast.Expr]bool)       // selector exprs used *inside* atomic calls
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isAtomicCall(pkg.Info, call) {
						return true
					}
					for _, arg := range call.Args {
						un, ok := arg.(*ast.UnaryExpr)
						if !ok || un.Op.String() != "&" {
							continue
						}
						sel, ok := un.X.(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if fld := fieldOf(pkg.Info, sel); fld != nil {
							atomicFields[fld] = append(atomicFields[fld], sel)
							atomicOperands[sel] = true
						}
					}
					return true
				})
			}
		}
		if len(atomicFields) == 0 {
			return
		}

		// Phase 2: plain accesses of those fields anywhere in the program.
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				// Composite-literal keys are plain *ast.Ident keys, not
				// selectors, so construction sites never reach fieldOf and
				// need no explicit exemption.
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || atomicOperands[sel] {
						return true
					}
					fld := fieldOf(pkg.Info, sel)
					if fld == nil {
						return true
					}
					if _, isAtomic := atomicFields[fld]; !isAtomic {
						return true
					}
					pass.Reportf(sel.Pos(),
						"plain access of %s.%s, which is accessed via sync/atomic elsewhere; use the atomic helpers (or //fp:allow atomicfield <happens-before argument>)",
						fld.Pkg().Name(), fld.Name())
					return true
				})
			}
		}

		// Alignment: atomically accessed 64-bit fields must be 8-aligned
		// under 32-bit layout rules.
		sizes := types.SizesFor("gc", "386")
		for _, pkg := range pass.Program.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					st, ok := n.(*ast.StructType)
					if !ok {
						return true
					}
					tv, ok := pkg.Info.Types[st]
					if !ok {
						return true
					}
					str, ok := tv.Type.(*types.Struct)
					if !ok {
						return true
					}
					var fields []*types.Var
					for i := 0; i < str.NumFields(); i++ {
						fields = append(fields, str.Field(i))
					}
					offsets := sizes.Offsetsof(fields)
					for i, fld := range fields {
						if _, isAtomic := atomicFields[fld]; !isAtomic {
							continue
						}
						if !is64Bit(fld.Type()) {
							continue
						}
						if offsets[i]%8 != 0 {
							pass.Reportf(fld.Pos(),
								"64-bit atomic field %s is at offset %d under GOARCH=386 layout; move it to the front of the struct or pad to 8-byte alignment (or use atomic.Int64/Uint64, which self-align)",
								fld.Name(), offsets[i])
						}
					}
					return true
				})
			}
		}
	}
	return a
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldOf resolves sel to a struct-field object, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// is64Bit reports whether t's underlying type is int64 or uint64.
func is64Bit(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64)
}
