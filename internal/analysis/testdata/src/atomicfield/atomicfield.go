// Package atomicfield exercises the atomicfield analyzer: fields reaching
// sync/atomic by address must never be read or written plainly, and 64-bit
// atomic fields must sit 8-aligned under GOARCH=386 layout.
package atomicfield

import "sync/atomic"

type counter struct {
	pad bool
	n   int64 // want "64-bit atomic field n is at offset 4"
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) plainRead() int64 {
	return c.n // want "plain access of atomicfield.n"
}

func (c *counter) plainWrite() {
	c.n = 0 // want "plain access of atomicfield.n"
}

func (c *counter) audited() int64 {
	//fp:allow atomicfield read happens before any goroutine starts
	return c.n
}

// aligned has its atomic field first, so the 386 layout check passes.
type aligned struct {
	n   int64
	pad bool
}

func (a *aligned) inc() { atomic.AddInt64(&a.n, 1) }
