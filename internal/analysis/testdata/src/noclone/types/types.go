// Package types declares the guarded identity type for the noclone golden.
package types

// Tracker stands in for the store/registry/histogram types: an identity
// object that must never be copied by value.
type Tracker struct{ N int }

// NewTracker is the constructor: New* functions in the declaring package are
// exempt from the copy rules.
func NewTracker() Tracker { return Tracker{} }

func clone(t *Tracker) Tracker { // want "result of type example.test/noclone/types.Tracker is a by-value copy"
	return *t
}
