// Package noclone exercises the noclone analyzer: value parameters, derefs,
// call arguments and composite elements copying the guarded type are flagged;
// pointer plumbing is not.
package noclone

import "example.test/noclone/types"

func byValueParam(t types.Tracker) {} // want "parameter of type example.test/noclone/types.Tracker is a by-value copy"

func deref(p *types.Tracker) *int {
	t := *p // want "by-value copy of example.test/noclone/types.Tracker"
	return &t.N
}

func arg(p *types.Tracker) {
	byValueParam(*p) // want "by-value copy of example.test/noclone/types.Tracker"
}

type holder struct{ t types.Tracker }

func composite(p *types.Tracker) holder {
	return holder{t: *p} // want "by-value copy of example.test/noclone/types.Tracker"
}

func pointersAreFine(p *types.Tracker) *types.Tracker {
	q := p
	return q
}

func suppressedCopy(p *types.Tracker) *int {
	//fp:allow noclone the copy feeds a throwaway fixture on purpose
	t := *p
	return &t.N
}
