// Package lockhold exercises the lockhold analyzer: blocking I/O and channel
// sends inside monitored critical sections, directly, through deferred
// releases, through helper acquires and transitively through module calls.
package lockhold

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	f  *os.File
}

func (s *store) direct() {
	s.mu.Lock()
	_ = s.f.Sync() // want "calls ..os.File..Sync while a lockhold.mu lock is held"
	s.mu.Unlock()
}

func (s *store) deferred(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 // want "channel send while a lockhold.mu lock is held"
}

func (s *store) transitive() {
	s.mu.Lock()
	s.flush() // want "call to flush, which calls ..os.File..Sync"
	s.mu.Unlock()
}

func (s *store) flush() { _ = s.f.Sync() }

func (s *store) lockAll()   { s.mu.Lock() }
func (s *store) unlockAll() { s.mu.Unlock() }

func (s *store) viaHelper() {
	s.lockAll()
	_ = s.f.Sync() // want "calls ..os.File..Sync while a .*lockAll lock is held"
	s.unlockAll()
}

// clean moves the I/O outside the critical section; nothing is flagged.
func (s *store) clean() {
	s.mu.Lock()
	n := 1
	_ = n
	s.mu.Unlock()
	_ = s.f.Sync()
}

func (s *store) audited() {
	s.mu.Lock()
	//fp:allow lockhold this golden serialises under the lock on purpose
	_ = s.f.Sync()
	s.mu.Unlock()
}
