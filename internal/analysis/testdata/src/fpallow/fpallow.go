// Package fpallow exercises directive hygiene: malformed //fp: directives
// are diagnostics of the unsuppressible fpallow pseudo-analyzer.
package fpallow

// want-next "needs a reason"
//fp:allow walltime oops

// want-next "names unknown analyzer"
//fp:allow nosuchanalyzer reason has two words

// want-next "unknown directive"
//fp:bogus

// want-next "needs an analyzer name and a reason"
//fp:allow

func f() {}
