// Package smoke deliberately violates the walltime invariant. CI's negative
// step runs fpvet against this package and asserts a non-zero exit, proving
// the suite actually fails builds (a lint job that cannot fail checks
// nothing).
package smoke

import "time"

// Boom reads the wall clock outside the clock facade.
func Boom() int64 { return time.Now().UnixNano() }
