// Package strict is stdlib-only by rule.
package strict

import (
	"strings"

	_ "example.test/layering/extra" // want "allowed beyond stdlib: none"
)

func Upper(s string) string { return strings.ToUpper(s) }
