// Package extra is not on anyone's allowed-imports list.
package extra

func Extra() int { return 2 }
