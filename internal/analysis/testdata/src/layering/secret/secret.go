// Package secret may only be imported by allowedusr.
package secret

func Secret() int { return 42 }
