// Package suppressedusr imports secret illegally but carries an audited
// suppression.
package suppressedusr

import (
	//fp:allow layering this golden exercises the layering suppression path
	_ "example.test/layering/secret"
)
