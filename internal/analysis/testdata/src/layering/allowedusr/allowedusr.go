// Package allowedusr is on secret's importer allowlist.
package allowedusr

import _ "example.test/layering/secret"
