// Package core may import leaf and the stdlib, nothing else.
package core

import (
	_ "example.test/layering/extra" // want "example.test/layering/core must not import example.test/layering/extra"
	_ "example.test/layering/leaf"
)
