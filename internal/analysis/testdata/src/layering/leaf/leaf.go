// Package leaf is an allowed dependency of core.
package leaf

func Leaf() int { return 1 }
