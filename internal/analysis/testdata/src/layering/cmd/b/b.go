// Package b is the imported sibling.
package b

func B() int { return 3 }
