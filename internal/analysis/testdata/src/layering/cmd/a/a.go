// Package a is a cmd-shaped package that illegally imports its sibling.
package a

import _ "example.test/layering/cmd/b" // want "cmd binaries must not import each other"
