// Package usr imports secret from the wrong side of the layering.
package usr

import _ "example.test/layering/secret" // want "example.test/layering/secret may only be imported by"
