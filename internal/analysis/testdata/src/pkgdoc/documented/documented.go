// Package documented carries a package comment, as every package must.
package documented
