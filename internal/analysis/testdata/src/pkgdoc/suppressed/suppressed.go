//fp:allow pkgdoc this golden package is deliberately undocumented
package suppressed
