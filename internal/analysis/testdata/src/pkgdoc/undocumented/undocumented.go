package undocumented // want "has no package comment"

func F() {}
