// Package hotpathalloc exercises the hotpathalloc analyzer inside a marked
// file; cold.go shows the same calls are fine without the marker.
package hotpathalloc

//fp:hotpath

import (
	"encoding/json"
	"fmt"
)

func hot(ids []int64) string {
	s := fmt.Sprintf("%d", len(ids)) // want "fmt.Sprintf in a //fp:hotpath file"
	b, _ := json.Marshal(ids)       // want "encoding/json.Marshal in a //fp:hotpath file"
	out := make([]int64, len(ids))  // want "make of ..int64 in a //fp:hotpath file"
	copy(out, ids)                  // want "copy of ..int64 in a //fp:hotpath file"
	_ = b
	return s
}

func suppressedHot(n int) string {
	//fp:allow hotpathalloc this error path is cold despite the file marker
	return fmt.Sprintf("%d", n)
}
