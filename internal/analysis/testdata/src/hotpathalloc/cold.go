package hotpathalloc

import "fmt"

// cold lives in an unmarked file: reflective formatting is fine here.
func cold(n int) string { return fmt.Sprintf("%d", n) }
