// Package reg is a minimal registry shape for the metricnames golden.
package reg

// Label is a name/value pair.
type Label struct{ Key, Value string }

// Registry mimics the metrics registry's registration surface.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) int   { return 0 }
func (r *Registry) Gauge(name, help string, labels ...Label) int     { return 0 }
func (r *Registry) Histogram(name, help string, labels ...Label) int { return 0 }
