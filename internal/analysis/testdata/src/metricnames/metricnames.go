// Package metricnames exercises the metricnames analyzer: literal names,
// snake_case, unit suffixes, HELP hygiene and one-registration-per-family.
package metricnames

import "example.test/metricnames/reg"

func register(r *reg.Registry, dynamic string) {
	r.Counter(dynamic, "Good help.")          // want "metric name must be a string literal"
	r.Counter("Bad-Name_total", "Good help.") // want "is not snake_case"
	r.Counter("requests", "Good help.")       // want "must end in _total"
	r.Histogram("latency_total", "Good help.") // want "must end in _seconds"
	r.Gauge("queue_depth", "no period")        // want "should be a sentence ending in a period"
	r.Gauge("empty_help", "")                  // want "HELP text must not be empty"
	r.Counter("dup_total", "Good help.")
	r.Counter("dup_total", "Good help.") // want "registered at 2 call sites"
	//fp:allow metricnames this wrapper forwards literal names from its callers
	r.Counter(dynamic, "Good help.")
	r.Counter("good_total", "A well-formed counter family.")
}
