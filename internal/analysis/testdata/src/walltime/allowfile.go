//fp:allow-file walltime this golden exercises the file suppression path

package walltime

import "time"

func wholeFileAllowed() time.Time { return time.Now() }
