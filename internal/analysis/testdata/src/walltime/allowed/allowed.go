// Package allowed stands in for the real-time allowlist (loadgen, wal):
// wall-clock reads here are the designed behaviour.
package allowed

import "time"

func Elapsed(since time.Time) time.Duration { return time.Since(since) }
