// Package walltime exercises the walltime analyzer: wall-clock reads are
// flagged, time.Time arithmetic methods are not, and //fp:allow silences an
// audited site.
package walltime

import "time"

func violations() time.Time {
	now := time.Now()            // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return now
}

func methodsAreFine(a, b time.Time) bool {
	// time.Time.After shares a name with the package function but only does
	// arithmetic; it must not be flagged.
	return a.After(b)
}

func suppressed() time.Time {
	//fp:allow walltime this golden exercises the line suppression path
	return time.Now()
}
