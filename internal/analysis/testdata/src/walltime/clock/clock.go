// Package clock stands in for internal/simclock: the exempt clock facade may
// read the wall clock freely.
package clock

import "time"

func Now() time.Time { return time.Now() }
