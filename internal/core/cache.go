package core

import (
	"fmt"
	"sync"
	"time"

	"fakeproject/internal/simclock"
)

// CachedAuditor wraps an Auditor with the result caching the paper observed
// in the field (Section IV-C): repeated requests answer in seconds, some
// tools pre-compute popular targets, and Twitteraudit serves reports
// "assessed 7 months ago".
type CachedAuditor struct {
	inner Auditor
	clock simclock.Clock
	// ttl is how long a cached report stays served; zero means forever
	// (Twitteraudit-style).
	ttl time.Duration
	// renderLatency is the time to serve a cached report (the "2 seconds"
	// rows of Table II).
	renderLatency time.Duration

	mu    sync.Mutex
	cache map[string]Report
}

var _ Auditor = (*CachedAuditor)(nil)

// NewCachedAuditor wraps inner with a cache.
func NewCachedAuditor(inner Auditor, clock simclock.Clock, ttl, renderLatency time.Duration) *CachedAuditor {
	return &CachedAuditor{
		inner:         inner,
		clock:         clock,
		ttl:           ttl,
		renderLatency: renderLatency,
		cache:         make(map[string]Report),
	}
}

// Name implements Auditor.
func (c *CachedAuditor) Name() string { return c.inner.Name() }

// Audit implements Auditor: cached reports are served after only the render
// latency; misses run the inner tool and populate the cache.
func (c *CachedAuditor) Audit(screenName string) (Report, error) {
	c.mu.Lock()
	cached, ok := c.cache[screenName]
	c.mu.Unlock()
	now := c.clock.Now()
	if ok && (c.ttl <= 0 || now.Sub(cached.AssessedAt) <= c.ttl) {
		c.clock.Sleep(c.renderLatency)
		cached.Cached = true
		cached.Elapsed = c.renderLatency
		cached.APICalls = 0
		return cached, nil
	}
	report, err := c.inner.Audit(screenName)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", c.inner.Name(), err)
	}
	c.mu.Lock()
	c.cache[screenName] = report
	c.mu.Unlock()
	return report, nil
}

// Prewarm installs a ready result for screenName, as the tools do for
// popular accounts ("it appears clear that some of the analytics have some
// results already computed"). assessedAt backdates the analysis.
func (c *CachedAuditor) Prewarm(screenName string, assessedAt time.Time) error {
	report, err := c.inner.Audit(screenName)
	if err != nil {
		return fmt.Errorf("prewarming %s: %w", screenName, err)
	}
	report.AssessedAt = assessedAt
	c.mu.Lock()
	c.cache[screenName] = report
	c.mu.Unlock()
	return nil
}

// Forget drops the cache entry for screenName.
func (c *CachedAuditor) Forget(screenName string) {
	c.mu.Lock()
	delete(c.cache, screenName)
	c.mu.Unlock()
}

// Inner exposes the wrapped auditor (for tool-specific inspection).
func (c *CachedAuditor) Inner() Auditor { return c.inner }
