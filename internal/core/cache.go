package core

import (
	"fmt"
	"sync"
	"time"

	"fakeproject/internal/simclock"
)

// ResultCache is a TTL'd report cache keyed by an arbitrary string. It is
// the one cache implementation shared by the cache-wrapped auditors of the
// experiments (Table II's "cached" column) and the auditd serving layer's
// result cache, so both exhibit the same expiry semantics the paper
// observed in the field (Section IV-C).
//
// A zero ttl means entries never expire (Twitteraudit's "assessed 7 months
// ago" behaviour). The cache is safe for concurrent use.
type ResultCache struct {
	clock simclock.Clock
	ttl   time.Duration

	mu      sync.Mutex
	entries map[string]Report
	hits    uint64
	misses  uint64
}

// NewResultCache creates a cache on the given clock. Entries older than ttl
// (by their AssessedAt stamp) are treated as absent; ttl <= 0 disables
// expiry.
func NewResultCache(clock simclock.Clock, ttl time.Duration) *ResultCache {
	return &ResultCache{
		clock:   clock,
		ttl:     ttl,
		entries: make(map[string]Report),
	}
}

// Get returns the cached report for key if present and fresh. The returned
// report is the stored analysis verbatim (Cached flag unset); callers decide
// how a hit is presented.
func (rc *ResultCache) Get(key string) (Report, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	report, ok := rc.entries[key]
	if ok && (rc.ttl <= 0 || rc.clock.Now().Sub(report.AssessedAt) <= rc.ttl) {
		rc.hits++
		return report, true
	}
	rc.misses++
	return Report{}, false
}

// Put stores a report under key, replacing any previous entry.
func (rc *ResultCache) Put(key string, report Report) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.entries[key] = report
}

// Forget drops the entry for key.
func (rc *ResultCache) Forget(key string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	delete(rc.entries, key)
}

// Len reports the number of stored entries (including expired ones not yet
// overwritten).
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries)
}

// Stats reports cumulative hit/miss counts.
func (rc *ResultCache) Stats() (hits, misses uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.hits, rc.misses
}

// CachedAuditor wraps an Auditor with the result caching the paper observed
// in the field (Section IV-C): repeated requests answer in seconds, some
// tools pre-compute popular targets, and Twitteraudit serves reports
// "assessed 7 months ago".
type CachedAuditor struct {
	inner Auditor
	clock simclock.Clock
	// renderLatency is the time to serve a cached report (the "2 seconds"
	// rows of Table II).
	renderLatency time.Duration
	cache         *ResultCache
}

var _ Auditor = (*CachedAuditor)(nil)

// NewCachedAuditor wraps inner with a cache; zero ttl means entries never
// expire (Twitteraudit-style).
func NewCachedAuditor(inner Auditor, clock simclock.Clock, ttl, renderLatency time.Duration) *CachedAuditor {
	return &CachedAuditor{
		inner:         inner,
		clock:         clock,
		renderLatency: renderLatency,
		cache:         NewResultCache(clock, ttl),
	}
}

// Name implements Auditor.
func (c *CachedAuditor) Name() string { return c.inner.Name() }

// Audit implements Auditor: cached reports are served after only the render
// latency; misses run the inner tool and populate the cache.
func (c *CachedAuditor) Audit(screenName string) (Report, error) {
	if cached, ok := c.cache.Get(screenName); ok {
		c.clock.Sleep(c.renderLatency)
		cached.Cached = true
		cached.Elapsed = c.renderLatency
		cached.APICalls = 0
		return cached, nil
	}
	report, err := c.inner.Audit(screenName)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", c.inner.Name(), err)
	}
	c.cache.Put(screenName, report)
	return report, nil
}

// Prewarm installs a ready result for screenName, as the tools do for
// popular accounts ("it appears clear that some of the analytics have some
// results already computed"). assessedAt backdates the analysis.
func (c *CachedAuditor) Prewarm(screenName string, assessedAt time.Time) error {
	report, err := c.inner.Audit(screenName)
	if err != nil {
		return fmt.Errorf("prewarming %s: %w", screenName, err)
	}
	report.AssessedAt = assessedAt
	c.cache.Put(screenName, report)
	return nil
}

// Forget drops the cache entry for screenName.
func (c *CachedAuditor) Forget(screenName string) { c.cache.Forget(screenName) }

// Cache exposes the underlying result cache (hit/miss inspection).
func (c *CachedAuditor) Cache() *ResultCache { return c.cache }

// Inner exposes the wrapped auditor (for tool-specific inspection).
func (c *CachedAuditor) Inner() Auditor { return c.inner }
