package core

import (
	"errors"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

func TestVerdictCountsPercentages(t *testing.T) {
	v := VerdictCounts{Inactive: 25, Fake: 25, Genuine: 50}
	i, f, g := v.Percentages()
	if i != 25 || f != 25 || g != 50 {
		t.Fatalf("percentages = %v %v %v", i, f, g)
	}
	var zero VerdictCounts
	i, f, g = zero.Percentages()
	if i != 0 || f != 0 || g != 0 {
		t.Fatal("zero counts must yield zero percentages")
	}
}

func TestIsDormant(t *testing.T) {
	now := simclock.Epoch
	never := twitter.Profile{}
	if !IsDormant(never, now) {
		t.Fatal("never-tweeted account must be dormant")
	}
	old := twitter.Profile{LastTweetAt: now.AddDate(0, 0, -91)}
	old.StatusesCount = 10
	if !IsDormant(old, now) {
		t.Fatal("91-day-old last tweet must be dormant")
	}
	fresh := twitter.Profile{LastTweetAt: now.AddDate(0, 0, -89)}
	fresh.StatusesCount = 10
	if IsDormant(fresh, now) {
		t.Fatal("89-day-old last tweet must not be dormant")
	}
}

func TestPaperTestbedShape(t *testing.T) {
	testbed := PaperTestbed()
	if len(testbed) != 20 {
		t.Fatalf("testbed has %d accounts, want 20", len(testbed))
	}
	classes := map[AccountClass]int{}
	names := map[string]bool{}
	tableII := 0
	for _, a := range testbed {
		if names[a.ScreenName] {
			t.Fatalf("duplicate account %s", a.ScreenName)
		}
		names[a.ScreenName] = true
		classes[a.Class]++
		if a.TableII != nil {
			tableII++
			if a.Class != ClassAverage {
				t.Fatalf("%s: Table II row on non-average account", a.ScreenName)
			}
		}
		// Percentage columns must roughly sum to 100.
		for col, m := range map[string]MixPct{"FC": a.FC, "SP": a.SP, "SB": a.SB} {
			sum := m.Inactive + m.Fake + m.Genuine
			if sum < 99 || sum > 101 {
				t.Fatalf("%s %s column sums to %v", a.ScreenName, col, sum)
			}
		}
		if a.TA.Inactive != -1 {
			t.Fatalf("%s: TA column should have no inactive class", a.ScreenName)
		}
		if sum := a.TA.Fake + a.TA.Genuine; sum < 99 || sum > 101 {
			t.Fatalf("%s TA column sums to %v", a.ScreenName, sum)
		}
	}
	if classes[ClassLow] != 4 || classes[ClassAverage] != 13 || classes[ClassHigh] != 3 {
		t.Fatalf("class sizes = %v, want 4/13/3", classes)
	}
	if tableII != 13 {
		t.Fatalf("Table II rows = %d, want 13", tableII)
	}
}

func TestPaperTestbedKnownCells(t *testing.T) {
	testbed := PaperTestbed()
	byName := map[string]PaperAccount{}
	for _, a := range testbed {
		byName[a.ScreenName] = a
	}
	pc := byName["PC_Chiambretti"]
	if pc.FC.Inactive != 97 || pc.Followers != 70900 {
		t.Fatalf("PC_Chiambretti row corrupted: %+v", pc)
	}
	obama := byName["BarackObama"]
	if obama.Followers != 41000000 || obama.FC.Inactive != 57.1 {
		t.Fatalf("BarackObama row corrupted: %+v", obama)
	}
	pinuccio := byName["pinucciotwit"]
	if len(pinuccio.CachedBy) != 2 || pinuccio.TableII.TA != 3 || pinuccio.TableII.SP != 2 {
		t.Fatalf("pinucciotwit caching row corrupted: %+v", pinuccio)
	}
}

func TestAverageAccounts(t *testing.T) {
	avg := AverageAccounts(PaperTestbed())
	if len(avg) != 13 {
		t.Fatalf("average accounts = %d, want 13", len(avg))
	}
	if avg[0].ScreenName != "giovanniallevi" || avg[12].ScreenName != "RudyZerbi" {
		t.Fatal("paper order not preserved")
	}
}

func TestDeepDiveCases(t *testing.T) {
	cases := DeepDiveCases()
	if len(cases) != 3 {
		t.Fatalf("deep dive cases = %d", len(cases))
	}
	for _, c := range cases {
		if c.DeepDivePct >= c.FakersPct {
			t.Fatalf("%s: deep dive must lower the estimate (%v vs %v)",
				c.ScreenName, c.DeepDivePct, c.FakersPct)
		}
	}
}

// fakeAuditor counts invocations and burns virtual time.
type fakeAuditor struct {
	clock   simclock.Clock
	latency time.Duration
	calls   int
	fail    bool
}

func (f *fakeAuditor) Name() string { return "fake-tool" }

func (f *fakeAuditor) Audit(screenName string) (Report, error) {
	if f.fail {
		return Report{}, errors.New("backend down")
	}
	f.calls++
	f.clock.Sleep(f.latency)
	return Report{
		Tool:       f.Name(),
		FakePct:    42,
		GenuinePct: 58,
		Elapsed:    f.latency,
		AssessedAt: f.clock.Now(),
	}, nil
}

func TestCachedAuditorMissThenHit(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	inner := &fakeAuditor{clock: clock, latency: 40 * time.Second}
	cached := NewCachedAuditor(inner, clock, time.Hour, 2*time.Second)

	first, err := cached.Audit("someone")
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Elapsed != 40*time.Second {
		t.Fatalf("first = %+v", first)
	}
	second, err := cached.Audit("someone")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Elapsed != 2*time.Second || second.APICalls != 0 {
		t.Fatalf("second = %+v", second)
	}
	if second.FakePct != 42 {
		t.Fatal("cached verdict lost")
	}
	if inner.calls != 1 {
		t.Fatalf("inner called %d times, want 1", inner.calls)
	}
}

func TestCachedAuditorTTLExpiry(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	inner := &fakeAuditor{clock: clock, latency: time.Second}
	cached := NewCachedAuditor(inner, clock, time.Hour, time.Second)
	if _, err := cached.Audit("x"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	r, err := cached.Audit("x")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("expired entry served from cache")
	}
	if inner.calls != 2 {
		t.Fatalf("inner calls = %d, want 2", inner.calls)
	}
}

func TestCachedAuditorZeroTTLNeverExpires(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	inner := &fakeAuditor{clock: clock, latency: time.Second}
	cached := NewCachedAuditor(inner, clock, 0, 3*time.Second)
	if _, err := cached.Audit("x"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(7 * 30 * 24 * time.Hour) // seven months later
	r, err := cached.Audit("x")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Fatal("zero-TTL cache should serve forever (twitteraudit behaviour)")
	}
}

func TestCachedAuditorPrewarmAndForget(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	inner := &fakeAuditor{clock: clock, latency: 30 * time.Second}
	cached := NewCachedAuditor(inner, clock, 0, 2*time.Second)
	backdate := clock.Now().AddDate(0, -7, 0)
	if err := cached.Prewarm("vip", backdate); err != nil {
		t.Fatal(err)
	}
	r, err := cached.Audit("vip")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cached || !r.AssessedAt.Equal(backdate) {
		t.Fatalf("prewarmed report = %+v", r)
	}
	cached.Forget("vip")
	r, err = cached.Audit("vip")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("Forget did not evict")
	}
}

func TestCachedAuditorPropagatesErrors(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	inner := &fakeAuditor{clock: clock, fail: true}
	cached := NewCachedAuditor(inner, clock, 0, time.Second)
	if _, err := cached.Audit("x"); err == nil {
		t.Fatal("error swallowed")
	}
	if err := cached.Prewarm("x", clock.Now()); err == nil {
		t.Fatal("prewarm error swallowed")
	}
}

func TestMixPctConversion(t *testing.T) {
	m := MixPct{Inactive: -1, Fake: 55, Genuine: 45}.Mix()
	if m.Inactive > 0.01 {
		t.Fatalf("TA-style column inactive = %v, want ≈0", m.Inactive)
	}
}
