package core

import "fakeproject/internal/population"

// MixPct is a Table III cell triple in percent. Twitteraudit rows have
// Inactive < 0 (the tool has no inactive class).
type MixPct struct {
	Inactive, Fake, Genuine float64
}

// Mix converts the percentages to a population mix.
func (m MixPct) Mix() population.Mix {
	inactive := m.Inactive
	if inactive < 0 {
		inactive = 0
	}
	return population.FromPercentages(inactive, m.Fake, m.Genuine)
}

// AccountClass is the paper's size classification of targets (Section IV-A).
type AccountClass string

// The three size classes: "low (10K or less), average (>20K and <100K),
// and high (>100K)".
const (
	ClassLow     AccountClass = "low"
	ClassAverage AccountClass = "average"
	ClassHigh    AccountClass = "high"
)

// ResponseTimes is one row of Table II, in seconds per tool.
type ResponseTimes struct {
	FC, TA, SP, SB float64
}

// PaperAccount is one account of the paper's testbed, carrying everything
// the paper reports about it: the follower count, the Table III columns of
// all four tools, and (for the 13 average-class accounts) the Table II
// response times with the caching the authors detected.
type PaperAccount struct {
	ScreenName string
	// Followers is the real-world follower count.
	Followers int
	Class     AccountClass

	// Table III columns (percentages).
	FC MixPct
	TA MixPct // Inactive = -1: no inactive class
	SP MixPct
	SB MixPct

	// TableII carries the response-time row for average-class accounts
	// (nil for the low and high classes, which Table II does not cover).
	TableII *ResponseTimes
	// CachedBy lists the tools the paper caught serving pre-computed
	// results for this account ("the reports of three accounts were
	// displayed after 2 seconds only").
	CachedBy []string
}

// rt is a ResponseTimes literal helper.
func rt(fc, ta, sp, sb float64) *ResponseTimes {
	return &ResponseTimes{FC: fc, TA: ta, SP: sp, SB: sb}
}

// PaperTestbed returns the paper's 20-account testbed with every number
// Tables II and III report. This data is simultaneously (a) the calibration
// input for the synthetic populations (via population.DeriveLayout) and
// (b) the reference the measured outputs are compared against in
// EXPERIMENTS.md.
func PaperTestbed() []PaperAccount {
	return []PaperAccount{
		// Low class: the analytics developers' own accounts.
		{ScreenName: "RobDWaller", Followers: 929, Class: ClassLow,
			FC: MixPct{25, 1.4, 73.6}, TA: MixPct{-1, 7, 93},
			SP: MixPct{28, 0, 72}, SB: MixPct{0, 0, 100}},
		{ScreenName: "davc", Followers: 2971, Class: ClassLow,
			FC: MixPct{13.5, 4.1, 82.4}, TA: MixPct{-1, 14, 86},
			SP: MixPct{26, 3, 71}, SB: MixPct{0, 4, 96}},
		{ScreenName: "grossnasty", Followers: 3344, Class: ClassLow,
			FC: MixPct{12.9, 4, 83.1}, TA: MixPct{-1, 4, 96},
			SP: MixPct{26, 3, 71}, SB: MixPct{0, 2, 98}},
		{ScreenName: "janrezab", Followers: 10800, Class: ClassLow,
			FC: MixPct{18.4, 2.2, 79.4}, TA: MixPct{-1, 11, 89},
			SP: MixPct{27, 3, 70}, SB: MixPct{2, 2, 96}},

		// Average class: thirteen individuals quite popular in Italy.
		{ScreenName: "giovanniallevi", Followers: 13900, Class: ClassAverage,
			FC: MixPct{44.3, 9.9, 45.8}, TA: MixPct{-1, 34, 66},
			SP: MixPct{58, 18, 24}, SB: MixPct{5, 27, 68},
			TableII: rt(187, 55, 27, 12)},
		{ScreenName: "StefanoBollani", Followers: 22300, Class: ClassAverage,
			FC: MixPct{27.8, 12.8, 59.4}, TA: MixPct{-1, 29, 71},
			SP: MixPct{49, 11, 40}, SB: MixPct{12, 11, 77},
			TableII: rt(188, 52, 22, 11)},
		{ScreenName: "Federugby", Followers: 30300, Class: ClassAverage,
			FC: MixPct{46.5, 15.5, 38}, TA: MixPct{-1, 42, 58},
			SP: MixPct{51, 33, 16}, SB: MixPct{9, 33, 58},
			TableII: rt(193, 40, 31, 13)},
		{ScreenName: "Zerolandia", Followers: 33500, Class: ClassAverage,
			FC: MixPct{69.2, 7.3, 23.5}, TA: MixPct{-1, 63, 37},
			SP: MixPct{55, 35, 10}, SB: MixPct{24, 25, 51},
			TableII: rt(193, 51, 32, 9)},
		{ScreenName: "pinucciotwit", Followers: 35500, Class: ClassAverage,
			FC: MixPct{30, 6.3, 63.7}, TA: MixPct{-1, 28, 72},
			SP: MixPct{25, 13, 62}, SB: MixPct{7, 15, 78},
			TableII: rt(192, 3, 2, 13), CachedBy: []string{"twitteraudit", "statuspeople"}},
		{ScreenName: "mvbrambilla", Followers: 36900, Class: ClassAverage,
			FC: MixPct{75.7, 6.5, 17.8}, TA: MixPct{-1, 47, 53},
			SP: MixPct{42, 30, 28}, SB: MixPct{9, 34, 57},
			TableII: rt(188, 45, 2, 8), CachedBy: []string{"statuspeople"}},
		{ScreenName: "PChiambretti", Followers: 40500, Class: ClassAverage,
			FC: MixPct{31.6, 21.7, 46.7}, TA: MixPct{-1, 36, 64},
			SP: MixPct{56, 22, 22}, SB: MixPct{13, 19, 68},
			TableII: rt(198, 45, 23, 9)},
		{ScreenName: "pierofassino", Followers: 61500, Class: ClassAverage,
			FC: MixPct{77.9, 4.6, 17.5}, TA: MixPct{-1, 46, 54},
			SP: MixPct{39, 39, 22}, SB: MixPct{14, 31, 55},
			TableII: rt(203, 52, 3, 10), CachedBy: []string{"statuspeople"}},
		{ScreenName: "Lbarriales", Followers: 69900, Class: ClassAverage,
			FC: MixPct{49.5, 20.6, 29.9}, TA: MixPct{-1, 48, 52},
			SP: MixPct{57, 32, 11}, SB: MixPct{13, 21, 66},
			TableII: rt(212, 50, 27, 9)},
		{ScreenName: "PC_Chiambretti", Followers: 70900, Class: ClassAverage,
			FC: MixPct{97, 1.2, 1.8}, TA: MixPct{-1, 55, 45},
			SP: MixPct{48, 44, 8}, SB: MixPct{17, 35, 48},
			TableII: rt(214, 43, 31, 9)},
		{ScreenName: "herbertballeri", Followers: 72300, Class: ClassAverage,
			FC: MixPct{46, 10.4, 43.6}, TA: MixPct{-1, 48, 52},
			SP: MixPct{56, 22, 22}, SB: MixPct{14, 20, 66},
			TableII: rt(217, 54, 24, 10)},
		{ScreenName: "Flaviaventosole", Followers: 75400, Class: ClassAverage,
			FC: MixPct{46.4, 12.8, 40.8}, TA: MixPct{-1, 39, 61},
			SP: MixPct{46, 33, 21}, SB: MixPct{12, 29, 59},
			TableII: rt(210, 49, 27, 9)},
		{ScreenName: "RudyZerbi", Followers: 79700, Class: ClassAverage,
			FC: MixPct{83.8, 5.9, 10.3}, TA: MixPct{-1, 35, 65},
			SP: MixPct{44, 33, 23}, SB: MixPct{8, 26, 66},
			TableII: rt(216, 49, 26, 10)},

		// High class: three well-known politicians.
		{ScreenName: "David_Cameron", Followers: 595000, Class: ClassHigh,
			FC: MixPct{24, 11.7, 64.3}, TA: MixPct{-1, 19.5, 80.5},
			SP: MixPct{17, 48, 35}, SB: MixPct{10, 14, 76}},
		{ScreenName: "fhollande", Followers: 608000, Class: ClassHigh,
			FC: MixPct{63.6, 5.3, 31.1}, TA: MixPct{-1, 64.3, 35.7},
			SP: MixPct{35, 44, 21}, SB: MixPct{44, 14, 42}},
		{ScreenName: "BarackObama", Followers: 41000000, Class: ClassHigh,
			FC: MixPct{57.1, 8.5, 34.4}, TA: MixPct{-1, 51.2, 48.8},
			SP: MixPct{40, 41, 19}, SB: MixPct{43, 12, 45}},
	}
}

// DeepDiveCase is one account of the Section II-A Deep Dive anecdote: the
// fake percentage reported by the public Fakers app versus the internal
// Deep Dive re-assessment.
type DeepDiveCase struct {
	ScreenName string
	Followers  int
	// FakersPct and DeepDivePct are the published fake percentages.
	FakersPct   float64
	DeepDivePct float64
}

// DeepDiveCases returns the three accounts the StatusPeople blog re-scored:
// "Barack Obama shifted from 70% fake to 45% fake, Lady Gaga from 71% to
// 39%, Shakira from 79% to 49%".
func DeepDiveCases() []DeepDiveCase {
	return []DeepDiveCase{
		{ScreenName: "BarackObama_dd", Followers: 41000000, FakersPct: 70, DeepDivePct: 45},
		{ScreenName: "ladygaga_dd", Followers: 40500000, FakersPct: 71, DeepDivePct: 39},
		{ScreenName: "shakira_dd", Followers: 23000000, FakersPct: 79, DeepDivePct: 49},
	}
}

// AverageAccounts filters the testbed to the Table II rows, preserving the
// paper's order.
func AverageAccounts(testbed []PaperAccount) []PaperAccount {
	var out []PaperAccount
	for _, a := range testbed {
		if a.Class == ClassAverage {
			out = append(out, a)
		}
	}
	return out
}
