// Package core contains the paper's primary contribution: the audit
// framework that runs fake-follower analytics over target accounts,
// measures their response times (Table II), collects their verdicts
// (Table III), quantifies their disagreement, and verifies the API-ordering
// hypothesis (Section IV-B) and the crawl-cost arithmetic behind them.
package core

import (
	"time"

	"fakeproject/internal/stats"
	"fakeproject/internal/twitter"
)

// Report is the outcome of one fake-follower analysis of one target,
// the row format underlying Tables II and III.
type Report struct {
	// Tool is the analytics engine that produced the report.
	Tool string
	// Target is the audited account's profile at analysis time.
	Target twitter.Profile
	// NominalFollowers is the real-world follower count the target
	// represents (equals Target.FollowersCount unless the population was
	// scaled; reports display this value, as the paper does).
	NominalFollowers int

	// SampleSize is the number of followers actually assessed.
	SampleSize int
	// Window is the number of newest followers that were candidates for
	// sampling (0 = the whole list).
	Window int

	// InactivePct, FakePct and GenuinePct are the verdict percentages
	// (0-100). Tools without an inactive class (Twitteraudit) leave
	// InactivePct at 0 and split everything between fake and genuine.
	InactivePct float64
	FakePct     float64
	GenuinePct  float64

	// HasInactiveClass reports whether the tool distinguishes inactive
	// followers at all ("twitteraudit does not consider inactive
	// followers", Table III footnote).
	HasInactiveClass bool

	// Elapsed is the (virtual) wall-clock time the analysis took — the
	// quantity of Table II.
	Elapsed time.Duration
	// APICalls is the number of Twitter API calls spent.
	APICalls int
	// Cached reports whether the result was served from the tool's cache.
	Cached bool
	// AssessedAt is when the underlying analysis was actually performed
	// (older than the request time for cached reports — Twitteraudit's
	// "7 months ago").
	AssessedAt time.Time

	// CILevel and the *CI bounds carry the statistical guarantees, when
	// the tool provides any (only the FC engine does).
	CILevel    float64
	InactiveCI stats.Interval
	FakeCI     stats.Interval
	GenuineCI  stats.Interval
}

// Auditor is a fake-follower analytics engine: given a screen name it
// produces a Report, spending API calls and (virtual) time.
type Auditor interface {
	// Name identifies the tool ("fakeproject-fc", "statuspeople", ...).
	Name() string
	// Audit analyses the target account.
	Audit(screenName string) (Report, error)
}

// VerdictCounts tallies one analysis run; helper shared by all tools.
type VerdictCounts struct {
	Inactive, Fake, Genuine int
}

// Total returns the number of assessed accounts.
func (v VerdictCounts) Total() int { return v.Inactive + v.Fake + v.Genuine }

// Percentages converts counts to the report's percentage fields.
func (v VerdictCounts) Percentages() (inactive, fake, genuine float64) {
	total := v.Total()
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(v.Inactive) / float64(total),
		100 * float64(v.Fake) / float64(total),
		100 * float64(v.Genuine) / float64(total)
}

// IsDormant applies the shared inactivity definition of the FC engine and
// Socialbakers: never tweeted, or last tweet older than 90 days at
// observation time.
func IsDormant(p twitter.Profile, now time.Time) bool {
	if p.HasNeverTweeted() {
		return true
	}
	return now.Sub(p.LastTweetAt) > 90*24*time.Hour
}
