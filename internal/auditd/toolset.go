package auditd

import (
	"fmt"
	"sync"

	"fakeproject/internal/core"
	"fakeproject/internal/fc"
	"fakeproject/internal/features"
	"fakeproject/internal/ml"
	"fakeproject/internal/simclock"
	"fakeproject/internal/tools/socialbakers"
	"fakeproject/internal/tools/statuspeople"
	"fakeproject/internal/tools/twitteraudit"
	"fakeproject/internal/twitterapi"
)

// Canonical tool keys, matching each engine's Name().
const (
	ToolFC = "fakeproject-fc"
	ToolTA = "twitteraudit"
	ToolSP = "statuspeople"
	ToolSB = "socialbakers"
)

// StandardToolOrder is the column order the paper uses.
var StandardToolOrder = []string{ToolFC, ToolTA, ToolSP, ToolSB}

// ClientFunc supplies the API client for one tool on one worker. Each
// (tool, worker) pair should get its own client so rate-limit token budgets
// are per worker, as real deployments spread crawls over token pools.
type ClientFunc func(tool string, worker int) twitterapi.Client

// ToolSetConfig configures StandardFactories.
type ToolSetConfig struct {
	// Clock drives the engines' latency accounting.
	Clock simclock.Clock
	// Seed derives per-worker sampling seeds.
	Seed uint64
	// NominalFollowers optionally maps screen names to real-world follower
	// counts for scaled populations (FC report display).
	NominalFollowers map[string]int
}

// StandardFactories builds per-worker factories for the four analytics
// engines of the paper over the given client source. The FC classifier is
// trained once, on first use, and shared by every worker (prediction is
// read-only).
func StandardFactories(newClient ClientFunc, cfg ToolSetConfig) map[string]Factory {
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}

	var (
		trainOnce sync.Once
		model     ml.Classifier
		set       features.Set
		trainErr  error
	)
	trainedModel := func() (ml.Classifier, features.Set, error) {
		trainOnce.Do(func() {
			model, set, trainErr = fc.TrainDefault(cfg.Seed + 1)
		})
		return model, set, trainErr
	}

	return map[string]Factory{
		ToolFC: func(worker int) (core.Auditor, error) {
			m, s, err := trainedModel()
			if err != nil {
				return nil, fmt.Errorf("training FC classifier: %w", err)
			}
			return fc.NewEngine(newClient(ToolFC, worker), clock, m, s, fc.EngineConfig{
				Seed:             cfg.Seed + 2 + uint64(worker)*101,
				NominalFollowers: cfg.NominalFollowers,
			}), nil
		},
		ToolTA: func(worker int) (core.Auditor, error) {
			return twitteraudit.New(newClient(ToolTA, worker), clock, cfg.Seed+3+uint64(worker)*101), nil
		},
		ToolSP: func(worker int) (core.Auditor, error) {
			spCfg := statuspeople.Current()
			spCfg.Seed = cfg.Seed + 4 + uint64(worker)*101
			return statuspeople.New(newClient(ToolSP, worker), clock, spCfg), nil
		},
		ToolSB: func(worker int) (core.Auditor, error) {
			return socialbakers.New(newClient(ToolSB, worker), clock), nil
		},
	}
}
