package auditd

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func testJob(target string, priority int, tools ...string) *job {
	if len(tools) == 0 {
		tools = []string{"alpha"}
	}
	return &job{
		id:   JobID("j-" + target),
		spec: JobSpec{Target: target, Tools: tools, Priority: priority},
		done: make(chan struct{}),
	}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := newJobQueue(16)
	for i, spec := range []struct {
		target   string
		priority int
	}{
		{"a", 0}, {"b", 5}, {"c", 0}, {"d", 5}, {"e", 9},
	} {
		if _, ok, err := q.push(testJob(spec.target, spec.priority)); err != nil || !ok {
			t.Fatalf("push %d: ok=%v err=%v", i, ok, err)
		}
	}
	want := []string{"e", "b", "d", "a", "c"} // priority desc, FIFO within
	for _, target := range want {
		j, ok := q.pop(context.Background())
		if !ok {
			t.Fatal("queue closed early")
		}
		if j.spec.Target != target {
			t.Fatalf("popped %s, want %s", j.spec.Target, target)
		}
		q.release(j)
	}
}

func TestQueueCapacity(t *testing.T) {
	q := newJobQueue(2)
	for i := 0; i < 2; i++ {
		if _, ok, err := q.push(testJob(fmt.Sprintf("t%d", i), 0)); err != nil || !ok {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if _, _, err := q.push(testJob("overflow", 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d", q.depth())
	}
}

func TestQueueDedup(t *testing.T) {
	q := newJobQueue(8)
	original := testJob("davc", 1)
	if _, ok, _ := q.push(original); !ok {
		t.Fatal("first push not enqueued")
	}
	dup := testJob("davc", 0)
	winner, enqueued, err := q.push(dup)
	if err != nil || enqueued {
		t.Fatalf("duplicate enqueued=%v err=%v", enqueued, err)
	}
	if winner != original {
		t.Fatal("dedup returned a different job")
	}
	// A more urgent duplicate raises the original's effective priority:
	// it must now pop ahead of a mid-priority job, without the job's own
	// spec being mutated (that field belongs to the service mutex).
	mid := testJob("mid", 5)
	if _, _, err := q.push(mid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.push(testJob("davc", 7)); err != nil {
		t.Fatal(err)
	}
	if original.spec.Priority != 1 {
		t.Fatalf("spec priority mutated to %d", original.spec.Priority)
	}
	// Different tool set for the same target is a distinct request.
	other := testJob("davc", 0, "beta")
	if _, enqueued, _ := q.push(other); !enqueued {
		t.Fatal("different tool set was deduped")
	}
	// The running job keeps coalescing until released.
	j, _ := q.pop(context.Background())
	if j != original {
		t.Fatalf("popped %s first", j.spec.Target)
	}
	if _, enqueued, _ := q.push(testJob("davc", 0)); enqueued {
		t.Fatal("running job no longer dedups")
	}
	q.release(original)
	if _, enqueued, _ := q.push(testJob("davc", 0)); !enqueued {
		t.Fatal("released job still dedups")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newJobQueue(4)
	got := make(chan *job, 1)
	go func() {
		j, _ := q.pop(context.Background())
		got <- j
	}()
	time.Sleep(5 * time.Millisecond)
	want := testJob("late", 0)
	if _, _, err := q.push(want); err != nil {
		t.Fatal(err)
	}
	select {
	case j := <-got:
		if j != want {
			t.Fatal("popped wrong job")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke")
	}
}

func TestQueueCloseDrainsThenStops(t *testing.T) {
	q := newJobQueue(4)
	if _, _, err := q.push(testJob("pending", 0)); err != nil {
		t.Fatal(err)
	}
	q.close()
	if _, _, err := q.push(testJob("late", 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if j, ok := q.pop(context.Background()); !ok || j.spec.Target != "pending" {
		t.Fatalf("drain pop = %v/%v", j, ok)
	}
	if _, ok := q.pop(context.Background()); ok {
		t.Fatal("pop after drain should report closed")
	}
}

func TestQueuePopContextCancel(t *testing.T) {
	q := newJobQueue(4)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := q.pop(ctx); ok {
		t.Fatal("pop returned a job from an empty queue")
	}
	if time.Since(start) > time.Second {
		t.Fatal("pop ignored context cancellation")
	}
}
