package auditd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/metrics"
	"fakeproject/internal/simclock"
)

// Factory builds one tool-engine instance for one worker. Every worker gets
// its own instance (and therefore its own API token state and sampling
// stream), so engines need not be safe for concurrent Audit calls.
type Factory func(worker int) (core.Auditor, error)

// Config configures a Service.
type Config struct {
	// Workers is the pool size (default 4).
	Workers int
	// QueueCap bounds the pending queue; submissions beyond it fail with
	// ErrQueueFull (backpressure). Default 256.
	QueueCap int
	// CacheTTL is the result cache expiry: 0 means entries never expire
	// (Twitteraudit-style), negative disables the cache entirely.
	CacheTTL time.Duration
	// RetainJobs bounds how many terminal jobs stay queryable (default
	// 1024); the oldest are evicted first.
	RetainJobs int
	// Clock drives timestamps and cache expiry (default the real clock).
	Clock simclock.Clock
	// StallAfter is how long the pool may go without making progress (a
	// job starting or finishing) while jobs are queued before Health
	// reports degraded (default 30s).
	StallAfter time.Duration
	// Tools maps tool name → per-worker engine factory. Required.
	Tools map[string]Factory
	// ToolOrder is the canonical order used when a job requests "all
	// tools" (default: sorted tool names).
	ToolOrder []string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 30 * time.Second
	}
	return c
}

// Stats is a point-in-time operational summary of the service.
type Stats struct {
	Workers     int    `json:"workers"`
	QueueDepth  int    `json:"queue_depth"`
	QueueCap    int    `json:"queue_cap"`
	Submitted   uint64 `json:"submitted"`
	Deduped     uint64 `json:"deduped"`
	Rejected    uint64 `json:"rejected"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
	InlineCache uint64 `json:"inline_cache_serves"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Service is a running audit service: a worker pool draining a priority
// queue of audit jobs, sharing one TTL'd result cache.
type Service struct {
	cfg   Config
	clock simclock.Clock
	queue *jobQueue
	cache *core.ResultCache // nil when caching is disabled

	known     map[string]bool
	toolOrder []string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[JobID]*job
	order  []JobID
	seq    uint64
	runSeq uint64
	closed bool
	stats  Stats

	// progressNs is the clock instant (UnixNano) of the pool's last sign of
	// life — a job starting or finishing. Health compares it against
	// StallAfter when jobs are queued.
	progressNs atomic.Int64

	// flightMu guards flights, the per-(tool,target) singleflight map that
	// prevents two workers from running the same analysis concurrently.
	flightMu sync.Mutex
	flights  map[string]chan struct{}
}

// New starts a service with the given configuration; callers must Shutdown
// it when done.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Tools) == 0 {
		return nil, fmt.Errorf("auditd: no tools configured")
	}
	known := make(map[string]bool, len(cfg.Tools))
	for name := range cfg.Tools {
		known[name] = true
	}
	order := cfg.ToolOrder
	if len(order) == 0 {
		for name := range cfg.Tools {
			order = append(order, name)
		}
	} else {
		for _, name := range order {
			if !known[name] {
				return nil, fmt.Errorf("auditd: tool order names unknown tool %q", name)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		clock:     cfg.Clock,
		queue:     newJobQueue(cfg.QueueCap),
		known:     known,
		toolOrder: append([]string(nil), order...),
		ctx:       ctx,
		cancel:    cancel,
		jobs:      make(map[JobID]*job),
		flights:   make(map[string]chan struct{}),
	}
	if cfg.CacheTTL >= 0 {
		s.cache = core.NewResultCache(cfg.Clock, cfg.CacheTTL)
	}
	s.stats.Workers = cfg.Workers
	s.stats.QueueCap = cfg.QueueCap
	s.progressNs.Store(cfg.Clock.Now().UnixNano())
	// Workers are numbered from 1 so a JobSnapshot's zero Worker always
	// means "not yet assigned".
	for w := 1; w <= cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

func cacheKey(tool, target string) string { return tool + "\x00" + target }

// Submit validates and enqueues a job, returning its snapshot immediately.
//
// Two fast paths mirror the field behaviour of the paper's subjects: a
// request equivalent to one already queued or running coalesces onto it
// (Deduped true), and a request answerable entirely from the result cache
// completes inline without ever touching the queue — the O(µs) repeat
// request of Table II.
func (s *Service) Submit(spec JobSpec) (JobSnapshot, error) {
	spec, err := spec.normalise(s.known, s.toolOrder)
	if err != nil {
		return JobSnapshot{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobSnapshot{}, ErrClosed
	}
	s.seq++
	j := &job{
		id:        JobID(fmt.Sprintf("j%08d", s.seq)),
		spec:      spec,
		state:     StateQueued,
		submitted: s.clock.Now(),
		done:      make(chan struct{}),
	}
	s.stats.Submitted++
	s.mu.Unlock()

	// Cache fast path: answer fully-cached requests inline.
	if results, ok := s.tryCacheOnly(spec); ok {
		now := s.clock.Now()
		s.mu.Lock()
		j.state = StateDone
		j.results = results
		j.started, j.finished = now, now
		s.stats.InlineCache++
		s.stats.Completed++
		s.recordLocked(j)
		s.mu.Unlock()
		close(j.done)
		return j.snapshot(), nil
	}

	winner, enqueued, err := s.queue.push(j)
	if err != nil {
		s.mu.Lock()
		if err == ErrQueueFull {
			s.stats.Rejected++
		}
		s.mu.Unlock()
		return JobSnapshot{}, err
	}
	s.mu.Lock()
	if !enqueued {
		s.stats.Deduped++
		winner.deduped = true
		snap := winner.snapshot()
		s.mu.Unlock()
		return snap, nil
	}
	s.recordLocked(j)
	snap := j.snapshot()
	s.mu.Unlock()
	return snap, nil
}

// tryCacheOnly serves spec entirely from the cache, if possible.
func (s *Service) tryCacheOnly(spec JobSpec) (map[string]ToolResult, bool) {
	if s.cache == nil {
		return nil, false
	}
	results := make(map[string]ToolResult, len(spec.Tools))
	for _, tool := range spec.Tools {
		report, ok := s.cache.Get(cacheKey(tool, spec.Target))
		if !ok {
			return nil, false
		}
		report.Cached = true
		report.Elapsed = 0
		report.APICalls = 0
		results[tool] = ToolResult{Report: report, CacheHit: true}
	}
	return results, true
}

// recordLocked stores j in the job table and evicts the oldest terminal
// jobs beyond the retention bound. Callers hold s.mu.
func (s *Service) recordLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	excess := len(s.order) - s.cfg.RetainJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		old := s.jobs[id]
		if excess > 0 && old != nil && old.state.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get returns the current snapshot of a job.
func (s *Service) Get(id JobID) (JobSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobSnapshot{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.snapshot(), nil
}

// Await blocks until the job reaches a terminal state or ctx expires.
func (s *Service) Await(ctx context.Context, id JobID) (JobSnapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobSnapshot{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobSnapshot{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.snapshot(), nil
}

// Cancel marks a queued job canceled; it is a no-op for running or terminal
// jobs (an in-flight analysis cannot be interrupted mid-crawl). The job's
// dedup entry is dropped immediately so a fresh equivalent submission runs
// instead of coalescing onto the canceled job.
func (s *Service) Cancel(id JobID) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	canceled := j.state == StateQueued
	if canceled {
		j.canceled = true
	}
	s.mu.Unlock()
	if canceled {
		s.queue.release(j)
	}
	return nil
}

// List returns snapshots of every retained job, oldest first.
func (s *Service) List() []JobSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobSnapshot, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// Tools returns the configured tool names in canonical order.
func (s *Service) Tools() []string { return append([]string(nil), s.toolOrder...) }

// Stats returns current operational counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.QueueDepth = s.queue.depth()
	if s.cache != nil {
		st.CacheHits, st.CacheMisses = s.cache.Stats()
	}
	return st
}

// Health is the readiness assessment behind GET /healthz.
type Health struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Detail explains a degraded status.
	Detail     string   `json:"detail,omitempty"`
	QueueDepth int      `json:"queue_depth"`
	QueueCap   int      `json:"queue_cap"`
	Tools      []string `json:"tools"`
}

// Health assesses readiness: degraded when the job queue is at capacity
// (submissions are bouncing) or when jobs are queued but the worker pool
// has shown no sign of life for StallAfter.
func (s *Service) Health() Health {
	h := Health{
		Status:     "ok",
		QueueDepth: s.queue.depth(),
		QueueCap:   s.cfg.QueueCap,
		Tools:      s.Tools(),
	}
	switch idle := s.clock.Now().Sub(time.Unix(0, s.progressNs.Load())); {
	case h.QueueDepth >= h.QueueCap:
		h.Status = "degraded"
		h.Detail = fmt.Sprintf("job queue at capacity (%d/%d): submissions are being rejected",
			h.QueueDepth, h.QueueCap)
	case h.QueueDepth > 0 && idle > s.cfg.StallAfter:
		h.Status = "degraded"
		h.Detail = fmt.Sprintf("workers stalled: %d jobs queued, no progress for %s",
			h.QueueDepth, idle.Round(time.Second))
	}
	return h
}

// Observe exports the service's operational counters into reg, evaluated
// from Stats at scrape time so nothing is double-tracked.
func (s *Service) Observe(reg *metrics.Registry) {
	gauge := func(name, help string, pick func(Stats) float64) {
		//fp:allow metricnames names are literal at the wrapper call sites below
		reg.GaugeFunc(name, help, func() float64 { return pick(s.Stats()) })
	}
	counter := func(name, help string, pick func(Stats) float64, labels ...metrics.Label) {
		//fp:allow metricnames names are literal at the wrapper call sites below
		reg.CounterFunc(name, help, func() float64 { return pick(s.Stats()) }, labels...)
	}
	gauge("auditd_queue_depth", "Audit jobs waiting in the queue.",
		func(st Stats) float64 { return float64(st.QueueDepth) })
	gauge("auditd_queue_capacity", "Configured queue bound.",
		func(st Stats) float64 { return float64(st.QueueCap) })
	gauge("auditd_workers", "Configured worker pool size.",
		func(st Stats) float64 { return float64(st.Workers) })
	counter("auditd_jobs_total", "Jobs submitted, by outcome so far.",
		func(st Stats) float64 { return float64(st.Submitted) }, metrics.L("event", "submitted"))
	counter("auditd_jobs_total", "Jobs submitted, by outcome so far.",
		func(st Stats) float64 { return float64(st.Completed) }, metrics.L("event", "completed"))
	counter("auditd_jobs_total", "Jobs submitted, by outcome so far.",
		func(st Stats) float64 { return float64(st.Failed) }, metrics.L("event", "failed"))
	counter("auditd_jobs_total", "Jobs submitted, by outcome so far.",
		func(st Stats) float64 { return float64(st.Canceled) }, metrics.L("event", "canceled"))
	counter("auditd_jobs_total", "Jobs submitted, by outcome so far.",
		func(st Stats) float64 { return float64(st.Rejected) }, metrics.L("event", "rejected"))
	counter("auditd_jobs_total", "Jobs submitted, by outcome so far.",
		func(st Stats) float64 { return float64(st.Deduped) }, metrics.L("event", "deduped"))
	counter("auditd_cache_total", "Result-cache lookups, by outcome.",
		func(st Stats) float64 { return float64(st.CacheHits) }, metrics.L("outcome", "hit"))
	counter("auditd_cache_total", "Result-cache lookups, by outcome.",
		func(st Stats) float64 { return float64(st.CacheMisses) }, metrics.L("outcome", "miss"))
	counter("auditd_inline_cache_serves_total",
		"Submissions answered entirely from cache without queueing.",
		func(st Stats) float64 { return float64(st.InlineCache) })
}

// Cache exposes the shared result cache (nil when disabled).
func (s *Service) Cache() *core.ResultCache { return s.cache }

// Invalidate drops the cached results for target under the given tools
// (every configured tool when none are named), forcing the next audit to
// run fresh. Continuous monitors call this before each re-audit round so a
// cadence shorter than the cache TTL still observes the live platform.
func (s *Service) Invalidate(target string, tools ...string) {
	if s.cache == nil {
		return
	}
	if len(tools) == 0 {
		tools = s.toolOrder
	}
	for _, tool := range tools {
		s.cache.Forget(cacheKey(tool, target))
	}
}

// Shutdown stops intake and waits for the workers to drain the queue. If
// ctx expires first, in-flight work is cancelled and Shutdown returns
// ctx.Err() after the workers exit.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !alreadyClosed {
		s.queue.close()
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-drained
		// Workers bailed out with jobs still queued: finalise them so
		// every Await unblocks rather than hanging on a job that will
		// never run.
		abandoned := s.queue.drain()
		now := s.clock.Now()
		s.mu.Lock()
		for _, j := range abandoned {
			if j.state.Terminal() {
				continue
			}
			j.state = StateCanceled
			j.errMsg = "service shut down before execution"
			j.finished = now
			s.stats.Canceled++
			close(j.done)
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// worker is one pool goroutine: it owns lazily built per-tool engines and
// drains the queue until shutdown.
func (s *Service) worker(id int) {
	defer s.wg.Done()
	engines := make(map[string]core.Auditor, len(s.known))
	for {
		j, ok := s.queue.pop(s.ctx)
		if !ok {
			return
		}
		s.runJob(id, engines, j)
	}
}

// runJob executes one job on one worker.
func (s *Service) runJob(worker int, engines map[string]core.Auditor, j *job) {
	defer s.queue.release(j)

	s.mu.Lock()
	if j.canceled {
		j.state = StateCanceled
		j.errMsg = "canceled before execution"
		j.finished = s.clock.Now()
		s.stats.Canceled++
		s.mu.Unlock()
		close(j.done)
		return
	}
	j.state = StateRunning
	j.worker = worker
	j.started = s.clock.Now()
	s.runSeq++
	j.runSeq = s.runSeq
	s.mu.Unlock()
	s.progressNs.Store(j.started.UnixNano())

	results := make(map[string]ToolResult, len(j.spec.Tools))
	failed := false
	for _, tool := range j.spec.Tools {
		if s.ctx.Err() != nil {
			results[tool] = ToolResult{Err: "shutdown before analysis"}
			failed = true
			continue
		}
		res := s.auditOne(worker, engines, tool, j.spec.Target)
		if res.Err != "" {
			failed = true
		}
		results[tool] = res
	}

	s.mu.Lock()
	j.results = results
	j.finished = s.clock.Now()
	if failed {
		j.state = StateFailed
		j.errMsg = "one or more tools failed"
		s.stats.Failed++
	} else {
		j.state = StateDone
		s.stats.Completed++
	}
	s.mu.Unlock()
	s.progressNs.Store(j.finished.UnixNano())
	close(j.done)
}

// auditOne produces one tool's result for one target: cache hit, or a fresh
// analysis deduplicated across workers by a singleflight per (tool, target).
func (s *Service) auditOne(worker int, engines map[string]core.Auditor, tool, target string) ToolResult {
	key := cacheKey(tool, target)
	for {
		if s.cache != nil {
			if report, ok := s.cache.Get(key); ok {
				report.Cached = true
				report.Elapsed = 0
				report.APICalls = 0
				return ToolResult{Report: report, CacheHit: true}
			}
		}

		s.flightMu.Lock()
		if wait, inflight := s.flights[key]; inflight {
			s.flightMu.Unlock()
			select {
			case <-wait:
				if s.cache != nil {
					continue // leader finished; re-read the cache
				}
				// Without a cache there is nothing to share: fall through
				// to a fresh analysis.
			case <-s.ctx.Done():
				return ToolResult{Err: "shutdown while awaiting in-flight analysis"}
			}
		} else {
			done := make(chan struct{})
			s.flights[key] = done
			s.flightMu.Unlock()
			res := s.freshAudit(worker, engines, tool, target)
			s.flightMu.Lock()
			delete(s.flights, key)
			s.flightMu.Unlock()
			close(done)
			return res
		}

		res := s.freshAudit(worker, engines, tool, target)
		return res
	}
}

// freshAudit runs the worker's own engine instance and populates the cache.
func (s *Service) freshAudit(worker int, engines map[string]core.Auditor, tool, target string) ToolResult {
	engine, ok := engines[tool]
	if !ok {
		built, err := s.cfg.Tools[tool](worker)
		if err != nil {
			return ToolResult{Err: fmt.Sprintf("building %s engine: %v", tool, err)}
		}
		engines[tool] = built
		engine = built
	}
	report, err := engine.Audit(target)
	if err != nil {
		return ToolResult{Err: err.Error()}
	}
	if report.AssessedAt.IsZero() {
		report.AssessedAt = s.clock.Now()
	}
	if s.cache != nil {
		s.cache.Put(cacheKey(tool, target), report)
	}
	return ToolResult{Report: report}
}
