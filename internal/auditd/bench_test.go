package auditd

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fakeproject/internal/benchjson"
	"fakeproject/internal/core"
)

// benchService builds a service over a single stub tool with the given
// worker count.
func benchService(b *testing.B, workers int, stub *stubAuditor) *Service {
	b.Helper()
	svc, err := New(Config{
		Workers:  workers,
		QueueCap: 4096,
		Tools:    map[string]Factory{stub.name: func(int) (core.Auditor, error) { return stub, nil }},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = svc.Shutdown(context.Background()) })
	return svc
}

// BenchmarkAuditThroughput measures end-to-end job throughput for batches
// of 8 distinct targets whose audits cost 5ms of (real) crawl latency each,
// comparing the serial loop with worker pools — the Table II workload as a
// service. On any box the pooled runs land ≥4× the serial rate, because
// the audits are latency-bound and overlap.
func BenchmarkAuditThroughput(b *testing.B) {
	const (
		targets = 8
		delay   = 5 * time.Millisecond
	)
	b.Run("serial", func(b *testing.B) {
		stub := newStub("alpha", delay)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for t := 0; t < targets; t++ {
				if _, err := stub.Audit(fmt.Sprintf("b%d-t%d", i, t)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			stub := newStub("alpha", delay)
			svc := benchService(b, workers, stub)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]JobID, 0, targets)
				for t := 0; t < targets; t++ {
					snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("b%d-t%d", i, t)})
					if err != nil {
						b.Fatal(err)
					}
					ids = append(ids, snap.ID)
				}
				for _, id := range ids {
					if _, err := svc.Await(context.Background(), id); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// TestBenchJSON emits BENCH_auditd.json with the suite's representative
// numbers when BENCH_JSON=<dir> is set (the CI bench step):
//
//	BENCH_JSON=. go test ./internal/auditd -run BenchJSON
func TestBenchJSON(t *testing.T) {
	if !benchjson.Enabled() {
		t.Skipf("set %s=<dir> to emit benchmark JSON", benchjson.EnvVar)
	}
	results := []benchjson.Result{
		benchjson.Measure("AuditThroughput/serial", func(b *testing.B) {
			stub := newStub("alpha", 5*time.Millisecond)
			for i := 0; i < b.N; i++ {
				for tgt := 0; tgt < 8; tgt++ {
					if _, err := stub.Audit(fmt.Sprintf("b%d-t%d", i, tgt)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
		benchjson.Measure("AuditThroughput/workers=8", func(b *testing.B) {
			stub := newStub("alpha", 5*time.Millisecond)
			svc := benchService(b, 8, stub)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]JobID, 0, 8)
				for tgt := 0; tgt < 8; tgt++ {
					snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("b%d-t%d", i, tgt)})
					if err != nil {
						b.Fatal(err)
					}
					ids = append(ids, snap.ID)
				}
				for _, id := range ids {
					if _, err := svc.Await(context.Background(), id); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
		benchjson.Measure("CachedRepeat", func(b *testing.B) {
			stub := newStub("alpha", 0)
			svc := benchService(b, 1, stub)
			snap, err := svc.Submit(JobSpec{Target: "davc"})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Await(context.Background(), snap.ID); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Submit(JobSpec{Target: "davc"}); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
	path, err := benchjson.Write("auditd", results)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// BenchmarkCachedRepeat measures the repeat-request fast path: a fully
// cached submission completes inline in microseconds, mirroring the
// "subsequent requests answer in seconds" observation scaled to an
// in-process cache.
func BenchmarkCachedRepeat(b *testing.B) {
	stub := newStub("alpha", 0)
	svc := benchService(b, 1, stub)
	snap, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Await(context.Background(), snap.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repeat, err := svc.Submit(JobSpec{Target: "davc"})
		if err != nil {
			b.Fatal(err)
		}
		if repeat.State != StateDone {
			b.Fatal("repeat missed the cache fast path")
		}
	}
}
