package auditd

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/simclock"
)

// announcingAuditor blocks inside Audit until released, signalling entry, so
// a test knows the single worker is pinned before it stages the queue.
type announcingAuditor struct {
	inner   core.Auditor
	started chan string
	release chan struct{}
}

func (a *announcingAuditor) Name() string { return a.inner.Name() }

func (a *announcingAuditor) Audit(target string) (core.Report, error) {
	a.started <- target
	<-a.release
	return a.inner.Audit(target)
}

// probeHealthz hits GET /healthz on a fresh handler and returns the status
// code and decoded body.
func probeHealthz(t *testing.T, svc *Service) (int, Health) {
	t.Helper()
	rec := httptest.NewRecorder()
	NewHandler(svc).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decoding /healthz body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, h
}

// TestHealthQueueAtCapacity: a full queue means submissions are bouncing, so
// /healthz must flip to 503/degraded — and recover once the queue drains.
func TestHealthQueueAtCapacity(t *testing.T) {
	gate := &announcingAuditor{
		inner:   newStub("alpha", 0),
		started: make(chan string, 8),
		release: make(chan struct{}),
	}
	svc := stubService(t, Config{
		Workers:  1,
		QueueCap: 2,
		CacheTTL: -1,
		Tools:    map[string]Factory{"alpha": func(int) (core.Auditor, error) { return gate, nil }},
	})

	if code, h := probeHealthz(t, svc); code != 200 || h.Status != "ok" {
		t.Fatalf("idle service: healthz = %d %+v", code, h)
	}

	head, err := svc.Submit(JobSpec{Target: "head"})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.started // the worker is now pinned on "head"
	var queued []JobID
	for _, target := range []string{"q0", "q1"} {
		snap, err := svc.Submit(JobSpec{Target: target})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, snap.ID)
	}

	code, h := probeHealthz(t, svc)
	if code != 503 || h.Status != "degraded" {
		t.Fatalf("full queue: healthz = %d %+v", code, h)
	}
	if !strings.Contains(h.Detail, "at capacity") {
		t.Fatalf("degraded detail %q does not name the cause", h.Detail)
	}
	if h.QueueDepth != 2 || h.QueueCap != 2 {
		t.Fatalf("depth/cap = %d/%d, want 2/2", h.QueueDepth, h.QueueCap)
	}

	close(gate.release)
	for range queued {
		<-gate.started // drain the announcements of the queued jobs
	}
	for _, id := range append([]JobID{head.ID}, queued...) {
		if _, err := svc.Await(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if code, h := probeHealthz(t, svc); code != 200 || h.Status != "ok" {
		t.Fatalf("drained service: healthz = %d %+v", code, h)
	}
}

// TestHealthStalledWorkers: jobs queued with no pool progress for longer
// than StallAfter is a stall, not a backlog — degraded with the idle time in
// the detail. Virtual clock, so "no progress for 10 minutes" takes no time.
func TestHealthStalledWorkers(t *testing.T) {
	vc := simclock.NewVirtualAtEpoch()
	gate := &announcingAuditor{
		inner:   newStub("alpha", 0),
		started: make(chan string, 8),
		release: make(chan struct{}),
	}
	svc := stubService(t, Config{
		Workers:    1,
		CacheTTL:   -1,
		Clock:      vc,
		StallAfter: time.Minute,
		Tools:      map[string]Factory{"alpha": func(int) (core.Auditor, error) { return gate, nil }},
	})

	head, err := svc.Submit(JobSpec{Target: "head"})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.started
	queued, err := svc.Submit(JobSpec{Target: "queued"})
	if err != nil {
		t.Fatal(err)
	}

	// A short lull is a backlog, not a stall.
	vc.Advance(30 * time.Second)
	if h := svc.Health(); h.Status != "ok" {
		t.Fatalf("30s backlog reported %+v", h)
	}

	vc.Advance(10 * time.Minute)
	code, h := probeHealthz(t, svc)
	if code != 503 || h.Status != "degraded" {
		t.Fatalf("stalled pool: healthz = %d %+v", code, h)
	}
	if !strings.Contains(h.Detail, "stalled") {
		t.Fatalf("degraded detail %q does not name the cause", h.Detail)
	}

	close(gate.release)
	<-gate.started // the queued job reaches the worker
	for _, id := range []JobID{head.ID, queued.ID} {
		if _, err := svc.Await(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	// An empty queue is healthy no matter how long the pool has been idle.
	vc.Advance(24 * time.Hour)
	if code, h := probeHealthz(t, svc); code != 200 || h.Status != "ok" {
		t.Fatalf("idle-but-empty service: healthz = %d %+v", code, h)
	}
}
