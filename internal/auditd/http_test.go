package auditd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func httpFixture(t *testing.T, cfg Config, stubs ...*stubAuditor) (*Service, *httptest.Server) {
	t.Helper()
	svc := stubService(t, cfg, stubs...)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return svc, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPSubmitWaitAndPoll(t *testing.T) {
	alpha := newStub("alpha", 10*time.Millisecond)
	_, srv := httpFixture(t, Config{Workers: 2}, alpha)

	// Submit with ?wait: one round trip to a finished verdict.
	resp := postJSON(t, srv.URL+"/v1/audits?wait=10s", JobSpec{Target: "davc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	snap := decode[JobSnapshot](t, resp)
	if snap.State != StateDone || snap.Results["alpha"].Report.GenuinePct != 100 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Submit without wait: 202 then poll to completion.
	resp = postJSON(t, srv.URL+"/v1/audits", JobSpec{Target: "grossnasty"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	accepted := decode[JobSnapshot](t, resp)
	pollResp, err := http.Get(srv.URL + "/v1/audits/" + string(accepted.ID) + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	polled := decode[JobSnapshot](t, pollResp)
	if polled.State != StateDone {
		t.Fatalf("polled state = %s", polled.State)
	}

	// The repeat request is the cached fast path: 200 inline.
	resp = postJSON(t, srv.URL+"/v1/audits", JobSpec{Target: "davc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp.StatusCode)
	}
	repeat := decode[JobSnapshot](t, resp)
	if !repeat.Results["alpha"].CacheHit {
		t.Fatalf("repeat not served from cache: %+v", repeat)
	}
}

func TestHTTPValidationAndNotFound(t *testing.T) {
	_, srv := httpFixture(t, Config{Workers: 1}, newStub("alpha", 0))

	resp := postJSON(t, srv.URL+"/v1/audits", JobSpec{Target: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty target status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/v1/audits", JobSpec{Target: "x", Tools: []string{"nosuch"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tool status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	getResp, err := http.Get(srv.URL + "/v1/audits/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", getResp.StatusCode)
	}
	getResp.Body.Close()

	resp = postJSON(t, srv.URL+"/v1/audits?wait=bogus", JobSpec{Target: "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPBackpressure429(t *testing.T) {
	alpha := newStub("alpha", 100*time.Millisecond)
	_, srv := httpFixture(t, Config{Workers: 1, QueueCap: 1}, alpha)

	saw429 := false
	for i := 0; i < 6; i++ {
		resp := postJSON(t, srv.URL+"/v1/audits", JobSpec{Target: fmt.Sprintf("t%d", i)})
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			saw429 = true
			resp.Body.Close()
			break
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("server never answered 429 under load")
	}
}

func TestHTTPListStatsHealth(t *testing.T) {
	svc, srv := httpFixture(t, Config{Workers: 1, ToolOrder: []string{"alpha"}}, newStub("alpha", 0))
	for _, target := range []string{"davc", "davc", "janrezab"} {
		resp := postJSON(t, srv.URL+"/v1/audits?wait=10s", JobSpec{Target: target})
		resp.Body.Close()
	}

	listResp, err := http.Get(srv.URL + "/v1/audits?target=davc")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[struct {
		Jobs []JobSnapshot `json:"jobs"`
	}](t, listResp)
	if len(list.Jobs) != 2 {
		t.Fatalf("filtered jobs = %d, want 2", len(list.Jobs))
	}
	for _, j := range list.Jobs {
		if j.Spec.Target != "davc" {
			t.Fatalf("filter leaked %s", j.Spec.Target)
		}
	}

	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[Stats](t, statsResp)
	if st.Submitted != 3 || st.Workers != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := svc.Stats().Submitted; st.Submitted != want {
		t.Fatalf("stats endpoint disagrees with service: %d vs %d", st.Submitted, want)
	}

	healthResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[struct {
		Status string   `json:"status"`
		Tools  []string `json:"tools"`
	}](t, healthResp)
	if health.Status != "ok" || len(health.Tools) != 1 || health.Tools[0] != "alpha" {
		t.Fatalf("health = %+v", health)
	}
}
