package auditd

import (
	"bytes"
	"context"
	"testing"

	"fakeproject/internal/core"
	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/tools/socialbakers"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// storeBackedService builds an audit service over a twitter.Store with the
// deterministic Socialbakers engine (full newest-2000 window, no sampling
// randomness), the configuration used to compare audit outcomes across
// store transports.
func storeBackedService(t *testing.T, store *twitter.Store, clock simclock.Clock) *Service {
	t.Helper()
	apiSvc := twitterapi.NewService(store)
	svc, err := New(Config{
		Workers: 2,
		Clock:   clock,
		Tools: map[string]Factory{
			ToolSB: func(worker int) (core.Auditor, error) {
				client := twitterapi.NewDirectClient(apiSvc, clock, twitterapi.ClientConfig{Tokens: 50})
				return socialbakers.New(client, clock), nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Shutdown(context.Background()) })
	return svc
}

// TestSnapshotRoundTripThroughService drives the persist.go snapshot
// round-trip through the serving path: a genpop-style population is
// snapshotted, reloaded into a second store, and both stores are audited
// through auditd — the verdicts must match exactly, the property that makes
// `genpop -out` + `auditd -load` equivalent to building in-process.
func TestSnapshotRoundTripThroughService(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 71)
	gen := population.NewGenerator(store, 71)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "snapshot_subject",
		Followers:  6000,
		Layout: population.Layout{
			{Width: 2000, Mix: population.Mix{Inactive: 0.25, Fake: 0.35, Genuine: 0.40}},
			{Width: 0, Mix: population.Mix{Inactive: 0.60, Fake: 0.05, Genuine: 0.35}},
		},
		Statuses: 500,
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loadedClock := simclock.NewVirtualAtEpoch()
	loaded, err := twitter.ReadSnapshot(&buf, loadedClock)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.UserCount() != store.UserCount() {
		t.Fatalf("loaded %d users, want %d", loaded.UserCount(), store.UserCount())
	}

	audit := func(svc *Service) core.Report {
		t.Helper()
		snap, err := svc.Submit(JobSpec{Target: "snapshot_subject"})
		if err != nil {
			t.Fatal(err)
		}
		done, err := svc.Await(context.Background(), snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone {
			t.Fatalf("job state = %s (%s)", done.State, done.Err)
		}
		res := done.Results[ToolSB]
		if res.Err != "" {
			t.Fatal(res.Err)
		}
		return res.Report
	}

	inMemory := audit(storeBackedService(t, store, clock))
	fromSnapshot := audit(storeBackedService(t, loaded, loadedClock))

	if inMemory.InactivePct != fromSnapshot.InactivePct ||
		inMemory.FakePct != fromSnapshot.FakePct ||
		inMemory.GenuinePct != fromSnapshot.GenuinePct {
		t.Fatalf("verdicts diverge across the snapshot round-trip:\n  in-memory %.2f/%.2f/%.2f\n  snapshot  %.2f/%.2f/%.2f",
			inMemory.InactivePct, inMemory.FakePct, inMemory.GenuinePct,
			fromSnapshot.InactivePct, fromSnapshot.FakePct, fromSnapshot.GenuinePct)
	}
	if inMemory.SampleSize != fromSnapshot.SampleSize {
		t.Fatalf("sample sizes diverge: %d vs %d", inMemory.SampleSize, fromSnapshot.SampleSize)
	}
	if fromSnapshot.SampleSize != 2000 {
		t.Fatalf("SB sample = %d, want the newest-2000 window", fromSnapshot.SampleSize)
	}
}
