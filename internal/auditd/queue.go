package auditd

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// Queue errors.
var (
	// ErrQueueFull reports backpressure: the pending queue is at capacity.
	ErrQueueFull = errors.New("auditd: queue full")
	// ErrClosed reports a submission to a service that is shutting down.
	ErrClosed = errors.New("auditd: service closed")
	// ErrBadSpec reports an invalid job specification.
	ErrBadSpec = errors.New("auditd: invalid job spec")
	// ErrUnknownJob reports a lookup of a job ID the service never issued
	// (or has evicted).
	ErrUnknownJob = errors.New("auditd: unknown job")
)

// queueItem orders jobs by (priority desc, arrival seq asc). priority is
// copied out of the spec at push time (and bumped by urgent duplicates) so
// the heap never mutates the job itself — job fields are guarded by the
// service mutex, not the queue's.
type queueItem struct {
	job      *job
	seq      uint64
	priority int
}

type jobHeap []queueItem

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(queueItem)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = queueItem{}
	*h = old[:n-1]
	return item
}

// jobQueue is a bounded priority queue with deduplication of equivalent
// pending/running requests. It is safe for concurrent use.
type jobQueue struct {
	mu     sync.Mutex
	heap   jobHeap
	cap    int
	seq    uint64
	closed bool
	// inflight maps dedupKey → job for every job that is queued or
	// running, so equivalent submissions coalesce onto one analysis.
	inflight map[string]*job
	// wake signals waiting workers that an item arrived or the queue
	// closed.
	wake chan struct{}
}

func newJobQueue(capacity int) *jobQueue {
	return &jobQueue{
		cap:      capacity,
		inflight: make(map[string]*job),
		wake:     make(chan struct{}, 1),
	}
}

func (q *jobQueue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// push enqueues j, or returns the already-inflight equivalent job (dedup).
// The boolean reports whether j was actually enqueued.
func (q *jobQueue) push(j *job) (*job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false, ErrClosed
	}
	key := j.spec.dedupKey()
	if existing, ok := q.inflight[key]; ok {
		// Coalesce, and let an urgent duplicate raise the original's
		// effective priority (tracked on the heap item, never on the job).
		for i := range q.heap {
			if q.heap[i].job == existing {
				if j.spec.Priority > q.heap[i].priority {
					q.heap[i].priority = j.spec.Priority
					heap.Fix(&q.heap, i)
				}
				break
			}
		}
		return existing, false, nil
	}
	if q.cap > 0 && len(q.heap) >= q.cap {
		return nil, false, ErrQueueFull
	}
	q.seq++
	heap.Push(&q.heap, queueItem{job: j, seq: q.seq, priority: j.spec.Priority})
	q.inflight[key] = j
	q.signal()
	return j, true, nil
}

// pop removes the highest-priority job, blocking until one is available,
// the queue closes (nil, false), or ctx is cancelled (nil, false).
func (q *jobQueue) pop(ctx context.Context) (*job, bool) {
	for {
		q.mu.Lock()
		if len(q.heap) > 0 {
			item := heap.Pop(&q.heap).(queueItem)
			// Leave the dedup entry: the job is now running and
			// equivalent submissions should still coalesce. The worker
			// releases it on completion via release().
			q.mu.Unlock()
			q.signal() // other workers may still have items to take
			return item.job, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			q.signal() // cascade shutdown to the next blocked worker
			return nil, false
		}
		select {
		case <-q.wake:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// release drops j's dedup entry once it reaches a terminal state.
func (q *jobQueue) release(j *job) {
	q.mu.Lock()
	if q.inflight[j.spec.dedupKey()] == j {
		delete(q.inflight, j.spec.dedupKey())
	}
	q.mu.Unlock()
}

// drain empties the heap, returning the jobs that never ran (used by a
// forced shutdown to finalise them so their waiters unblock).
func (q *jobQueue) drain() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	abandoned := make([]*job, 0, len(q.heap))
	for len(q.heap) > 0 {
		item := heap.Pop(&q.heap).(queueItem)
		abandoned = append(abandoned, item.job)
		if q.inflight[item.job.spec.dedupKey()] == item.job {
			delete(q.inflight, item.job.spec.dedupKey())
		}
	}
	return abandoned
}

// close stops intake; queued jobs remain poppable so workers can drain.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	// Wake every blocked worker; each pop re-signals, cascading the
	// shutdown through the pool.
	q.signal()
}

func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}
