// Package auditd is the serving layer of the reproduction: an
// audit-as-a-service subsystem modelled after the web deployments the paper
// studies (StatusPeople, Socialbakers, Twitteraudit), which field audit
// requests from many users concurrently and answer repeated requests from
// caches (the "cached" column of Table II).
//
// The package is transport- and engine-agnostic: it schedules audit jobs
// (target screen name × set of tools) on a bounded worker pool fed by a
// priority queue with request deduplication, shares a TTL'd result cache
// across workers, and exposes the whole lifecycle over an HTTP JSON API
// (see Handler). Each worker owns its own per-tool engine instances — and
// therefore its own rate-limit token state — so workers never contend on an
// engine's sampling stream and token budgets scale with the pool, exactly
// as the commercial tools run "large token pools".
package auditd

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fakeproject/internal/core"
)

// JobID identifies a submitted audit job.
type JobID string

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec describes one audit request.
type JobSpec struct {
	// Target is the screen name to audit.
	Target string `json:"target"`
	// Tools lists the analytics engines to run; empty means every tool the
	// service was configured with ("all four tools").
	Tools []string `json:"tools,omitempty"`
	// Priority orders the queue: higher runs first; equal priorities run
	// FIFO.
	Priority int `json:"priority,omitempty"`
}

// normalise validates the spec against the configured tool set and puts
// Tools in canonical order.
func (s JobSpec) normalise(known map[string]bool, order []string) (JobSpec, error) {
	if strings.TrimSpace(s.Target) == "" {
		return JobSpec{}, fmt.Errorf("%w: empty target", ErrBadSpec)
	}
	if len(s.Tools) == 0 {
		s.Tools = append([]string(nil), order...)
		return s, nil
	}
	seen := make(map[string]bool, len(s.Tools))
	tools := make([]string, 0, len(s.Tools))
	for _, tool := range s.Tools {
		if !known[tool] {
			return JobSpec{}, fmt.Errorf("%w: unknown tool %q", ErrBadSpec, tool)
		}
		if seen[tool] {
			continue
		}
		seen[tool] = true
		tools = append(tools, tool)
	}
	sort.Strings(tools)
	s.Tools = tools
	return s, nil
}

// dedupKey identifies equivalent requests: same target, same tool set.
func (s JobSpec) dedupKey() string {
	return s.Target + "\x00" + strings.Join(s.Tools, "\x00")
}

// ToolResult is one tool's outcome within a job.
type ToolResult struct {
	// Report is the tool's verdict (zero if Err is set).
	Report core.Report `json:"report"`
	// Err is the failure message, empty on success.
	Err string `json:"error,omitempty"`
	// CacheHit reports whether the result was served from the service's
	// result cache rather than a fresh analysis.
	CacheHit bool `json:"cache_hit"`
}

// JobSnapshot is a point-in-time public view of a job.
type JobSnapshot struct {
	ID      JobID    `json:"id"`
	Spec    JobSpec  `json:"spec"`
	State   JobState `json:"state"`
	Deduped bool     `json:"deduped,omitempty"`
	// Worker is the 1-based pool index that ran the job; 0 while
	// unassigned.
	Worker int `json:"worker,omitempty"`
	// RunSeq is the service-wide execution order: job k was the k-th to
	// start running (0 = never started). Priority tests and monitors use it
	// to prove interactive jobs preempt queued background work regardless
	// of how virtual timestamps interleave.
	RunSeq uint64 `json:"run_seq,omitempty"`
	Err    string `json:"error,omitempty"`
	Results  map[string]ToolResult `json:"results,omitempty"`
	Submitted time.Time `json:"submitted_at"`
	Started   time.Time `json:"started_at,omitzero"`
	Finished  time.Time `json:"finished_at,omitzero"`
}

// Elapsed is the queue-to-finish latency for terminal jobs, zero otherwise.
func (s JobSnapshot) Elapsed() time.Duration {
	if !s.State.Terminal() || s.Finished.IsZero() {
		return 0
	}
	return s.Finished.Sub(s.Submitted)
}

// job is the internal mutable record; all fields are guarded by the
// service's jobs mutex except done, which is closed exactly once on
// reaching a terminal state.
type job struct {
	id       JobID
	spec     JobSpec
	state    JobState
	deduped  bool
	worker   int
	runSeq   uint64
	errMsg   string
	results  map[string]ToolResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	canceled  bool
	done      chan struct{}
}

func (j *job) snapshot() JobSnapshot {
	snap := JobSnapshot{
		ID:        j.id,
		Spec:      j.spec,
		State:     j.state,
		Deduped:   j.deduped,
		Worker:    j.worker,
		RunSeq:    j.runSeq,
		Err:       j.errMsg,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if len(j.results) > 0 {
		snap.Results = make(map[string]ToolResult, len(j.results))
		for tool, res := range j.results {
			snap.Results[tool] = res
		}
	}
	return snap
}
