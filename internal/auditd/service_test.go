package auditd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/twitter"
)

// stubAuditor is a deterministic engine with a configurable real-time cost,
// standing in for the latency-bound crawls of the real tools.
type stubAuditor struct {
	name  string
	delay time.Duration

	mu    sync.Mutex
	calls map[string]int
}

func newStub(name string, delay time.Duration) *stubAuditor {
	return &stubAuditor{name: name, delay: delay, calls: make(map[string]int)}
}

func (a *stubAuditor) Name() string { return a.name }

func (a *stubAuditor) Audit(target string) (core.Report, error) {
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.mu.Lock()
	a.calls[target]++
	a.mu.Unlock()
	if strings.HasPrefix(target, "missing") {
		return core.Report{}, fmt.Errorf("user %q not found", target)
	}
	return core.Report{
		Tool:       a.name,
		Target:     twitter.Profile{User: twitter.User{ScreenName: target}},
		GenuinePct: 100,
		Elapsed:    a.delay,
	}, nil
}

func (a *stubAuditor) totalCalls() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, n := range a.calls {
		total += n
	}
	return total
}

// stubService builds a service whose tools all share the given stub
// auditors (engines are stateless here, so sharing across workers is fine).
func stubService(t *testing.T, cfg Config, stubs ...*stubAuditor) *Service {
	t.Helper()
	if cfg.Tools == nil {
		cfg.Tools = make(map[string]Factory, len(stubs))
		for _, stub := range stubs {
			stub := stub
			cfg.Tools[stub.name] = func(worker int) (core.Auditor, error) { return stub, nil }
		}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc
}

func TestSubmitAwaitAllTools(t *testing.T) {
	alpha, beta := newStub("alpha", 0), newStub("beta", 0)
	svc := stubService(t, Config{Workers: 2, ToolOrder: []string{"alpha", "beta"}}, alpha, beta)

	snap, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Spec.Tools; len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("empty tool list should expand to all tools, got %v", got)
	}
	done, err := svc.Await(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Err)
	}
	for _, tool := range []string{"alpha", "beta"} {
		res, ok := done.Results[tool]
		if !ok || res.Err != "" || res.CacheHit {
			t.Fatalf("%s result = %+v", tool, res)
		}
		if res.Report.GenuinePct != 100 {
			t.Fatalf("%s verdict = %+v", tool, res.Report)
		}
	}
	if done.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := stubService(t, Config{Workers: 1}, newStub("alpha", 0))
	if _, err := svc.Submit(JobSpec{Target: "  "}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty target: %v", err)
	}
	if _, err := svc.Submit(JobSpec{Target: "x", Tools: []string{"nosuch"}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown tool: %v", err)
	}
	if _, err := svc.Get(JobID("j99999999")); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
}

func TestToolFailureMarksJobFailed(t *testing.T) {
	svc := stubService(t, Config{Workers: 1}, newStub("alpha", 0))
	snap, err := svc.Submit(JobSpec{Target: "missing_user"})
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Await(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateFailed {
		t.Fatalf("state = %s", done.State)
	}
	if res := done.Results["alpha"]; !strings.Contains(res.Err, "not found") {
		t.Fatalf("result = %+v", res)
	}
	// Failures must not be cached: a retry re-runs the analysis.
	if hits, _ := svc.Cache().Stats(); hits != 0 {
		t.Fatalf("cache hits after failure = %d", hits)
	}
}

// TestCacheFastPath is the Table II "cached" behaviour: the first audit runs
// the engine, every repeat completes inline from the result cache in
// microseconds-to-sub-millisecond real time without touching the queue.
func TestCacheFastPath(t *testing.T) {
	alpha := newStub("alpha", 20*time.Millisecond)
	svc := stubService(t, Config{Workers: 1}, alpha)

	first, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Await(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}

	const repeats = 200
	start := time.Now()
	for i := 0; i < repeats; i++ {
		snap, err := svc.Submit(JobSpec{Target: "davc"})
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone {
			t.Fatalf("repeat %d not served inline: %s", i, snap.State)
		}
		res := snap.Results["alpha"]
		if !res.CacheHit || !res.Report.Cached {
			t.Fatalf("repeat %d not a cache hit: %+v", i, res)
		}
		if res.Report.Elapsed != 0 || res.Report.APICalls != 0 {
			t.Fatalf("cached report should cost nothing: %+v", res.Report)
		}
	}
	perRepeat := time.Since(start) / repeats
	// O(µs) target; allow generous slack for noisy CI boxes.
	if perRepeat > 2*time.Millisecond {
		t.Fatalf("cached repeat took %v each, want microseconds", perRepeat)
	}
	if alpha.totalCalls() != 1 {
		t.Fatalf("engine ran %d times, want 1", alpha.totalCalls())
	}
	st := svc.Stats()
	if st.InlineCache != repeats {
		t.Fatalf("inline cache serves = %d, want %d", st.InlineCache, repeats)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	alpha := newStub("alpha", 0)
	svc := stubService(t, Config{Workers: 1, CacheTTL: time.Nanosecond}, alpha)
	snap, _ := svc.Submit(JobSpec{Target: "davc"})
	if _, err := svc.Await(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	again, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Await(context.Background(), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Results["alpha"].CacheHit {
		t.Fatal("expired entry served from cache")
	}
	if alpha.totalCalls() != 2 {
		t.Fatalf("engine ran %d times, want 2", alpha.totalCalls())
	}
}

func TestDisabledCache(t *testing.T) {
	alpha := newStub("alpha", 0)
	svc := stubService(t, Config{Workers: 1, CacheTTL: -1}, alpha)
	if svc.Cache() != nil {
		t.Fatal("cache should be disabled")
	}
	for i := 0; i < 2; i++ {
		snap, err := svc.Submit(JobSpec{Target: "davc"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Await(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
	}
	if alpha.totalCalls() != 2 {
		t.Fatalf("engine ran %d times, want 2", alpha.totalCalls())
	}
}

// TestDedupCoalescing: identical requests while one is queued or running
// coalesce onto a single job and a single analysis.
func TestDedupCoalescing(t *testing.T) {
	alpha := newStub("alpha", 30*time.Millisecond)
	svc := stubService(t, Config{Workers: 1}, alpha)

	first, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	var dupID JobID
	for i := 0; i < 5; i++ {
		dup, err := svc.Submit(JobSpec{Target: "davc"})
		if err != nil {
			t.Fatal(err)
		}
		if dup.State.Terminal() {
			break // raced past completion; coalescing window closed
		}
		if dup.ID != first.ID || !dup.Deduped {
			t.Fatalf("duplicate got id %s (deduped=%v), want %s", dup.ID, dup.Deduped, first.ID)
		}
		dupID = dup.ID
	}
	if _, err := svc.Await(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	if dupID != "" && alpha.totalCalls() != 1 {
		t.Fatalf("engine ran %d times, want 1", alpha.totalCalls())
	}
	if st := svc.Stats(); dupID != "" && st.Deduped == 0 {
		t.Fatal("dedup counter not incremented")
	}
}

// TestSingleflightAcrossJobs: two non-identical jobs needing the same
// (tool, target) analysis share one engine run through the in-flight map.
func TestSingleflightAcrossJobs(t *testing.T) {
	alpha := newStub("alpha", 40*time.Millisecond)
	beta := newStub("beta", 0)
	svc := stubService(t, Config{Workers: 2, ToolOrder: []string{"alpha", "beta"}}, alpha, beta)

	a, err := svc.Submit(JobSpec{Target: "davc", Tools: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Submit(JobSpec{Target: "davc", Tools: []string{"alpha", "beta"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("different tool sets must not dedup onto one job")
	}
	for _, id := range []JobID{a.ID, b.ID} {
		done, err := svc.Await(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, done.State, done.Err)
		}
	}
	if calls := alpha.totalCalls(); calls != 1 {
		t.Fatalf("alpha ran %d times for one target, want 1 (singleflight)", calls)
	}
}

func TestPriorityOrdering(t *testing.T) {
	alpha := newStub("alpha", 10*time.Millisecond)
	svc := stubService(t, Config{Workers: 1}, alpha)

	// Occupy the single worker so subsequent submissions queue up.
	gate, err := svc.Submit(JobSpec{Target: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	low, err := svc.Submit(JobSpec{Target: "low", Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := svc.Submit(JobSpec{Target: "high", Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []JobID{gate.ID, low.ID, high.ID} {
		if _, err := svc.Await(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	lowDone, _ := svc.Get(low.ID)
	highDone, _ := svc.Get(high.ID)
	if highDone.Started.After(lowDone.Started) {
		t.Fatalf("high-priority job ran after low: high %v low %v",
			highDone.Started, lowDone.Started)
	}
}

func TestBackpressure(t *testing.T) {
	alpha := newStub("alpha", 50*time.Millisecond)
	svc := stubService(t, Config{Workers: 1, QueueCap: 2}, alpha)

	// Keep submitting distinct targets until the bounded queue pushes
	// back: with one slow worker and capacity 2, at most a handful are
	// accepted before ErrQueueFull.
	var (
		ids     []JobID
		sawFull bool
	)
	for i := 0; i < 8; i++ {
		snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("t%d", i)})
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	if !sawFull {
		t.Fatal("queue never pushed back")
	}
	if st := svc.Stats(); st.Rejected == 0 {
		t.Fatal("rejected counter not incremented")
	}
	for _, id := range ids {
		if _, err := svc.Await(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	alpha := newStub("alpha", 50*time.Millisecond)
	svc := stubService(t, Config{Workers: 1}, alpha)
	if _, err := svc.Submit(JobSpec{Target: "running"}); err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(JobSpec{Target: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	done, err := svc.Await(context.Background(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateCanceled {
		t.Fatalf("state = %s", done.State)
	}
	if alpha.calls["queued"] != 0 {
		t.Fatal("canceled job still ran")
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	alpha := newStub("alpha", 5*time.Millisecond)
	svc, err := New(Config{
		Workers: 2,
		Tools:   map[string]Factory{"alpha": func(int) (core.Auditor, error) { return alpha, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]JobID, 0, 8)
	for i := 0; i < 8; i++ {
		snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("t%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		snap, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !snap.State.Terminal() {
			t.Fatalf("job %s left in state %s after drain", id, snap.State)
		}
	}
	if _, err := svc.Submit(JobSpec{Target: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown: %v", err)
	}
}

// TestForcedShutdownFinalisesQueuedJobs: when the drain deadline expires
// with jobs still queued, those jobs must reach a terminal state so every
// waiter unblocks instead of hanging on work that will never run.
func TestForcedShutdownFinalisesQueuedJobs(t *testing.T) {
	alpha := newStub("alpha", 300*time.Millisecond)
	svc, err := New(Config{
		Workers: 1,
		Tools:   map[string]Factory{"alpha": func(int) (core.Auditor, error) { return alpha, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]JobID, 0, 4)
	for i := 0; i < 4; i++ {
		snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("t%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown err = %v", err)
	}
	for _, id := range ids {
		awaitCtx, awaitCancel := context.WithTimeout(context.Background(), 2*time.Second)
		snap, err := svc.Await(awaitCtx, id)
		awaitCancel()
		if err != nil {
			t.Fatalf("await %s after forced shutdown: %v", id, err)
		}
		if !snap.State.Terminal() {
			t.Fatalf("job %s left non-terminal: %s", id, snap.State)
		}
	}
}

// TestCancelReleasesDedup: a fresh submission after Cancel must not
// coalesce onto the canceled job.
func TestCancelReleasesDedup(t *testing.T) {
	alpha := newStub("alpha", 50*time.Millisecond)
	svc := stubService(t, Config{Workers: 1}, alpha)
	if _, err := svc.Submit(JobSpec{Target: "running"}); err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(JobSpec{Target: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	fresh, err := svc.Submit(JobSpec{Target: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == queued.ID {
		t.Fatal("fresh submission coalesced onto the canceled job")
	}
	done, err := svc.Await(context.Background(), fresh.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("fresh job state = %s", done.State)
	}
}

func TestAwaitContextCancellation(t *testing.T) {
	alpha := newStub("alpha", 200*time.Millisecond)
	svc := stubService(t, Config{Workers: 1}, alpha)
	snap, err := svc.Submit(JobSpec{Target: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := svc.Await(ctx, snap.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("await err = %v", err)
	}
	if _, err := svc.Await(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
}

func TestJobRetentionEviction(t *testing.T) {
	alpha := newStub("alpha", 0)
	svc := stubService(t, Config{Workers: 1, RetainJobs: 4, CacheTTL: -1}, alpha)
	var last JobID
	for i := 0; i < 12; i++ {
		snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("t%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Await(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
		last = snap.ID
	}
	if got := len(svc.List()); got > 5 { // retention bound plus one in flight
		t.Fatalf("retained %d jobs, want <= 5", got)
	}
	if _, err := svc.Get(last); err != nil {
		t.Fatal("most recent job evicted")
	}
}

// TestThroughputScaling is the headline concurrency property: N latency-
// bound audits through the worker pool complete ≥4× faster than the serial
// loop. The stub engines sleep on the real clock, modelling the
// crawl-bound workloads the service fronts, so the speedup holds on any
// box regardless of core count.
func TestThroughputScaling(t *testing.T) {
	const (
		targets = 16
		delay   = 10 * time.Millisecond
	)
	serialStub := newStub("alpha", delay)
	serialStart := time.Now()
	for i := 0; i < targets; i++ {
		if _, err := serialStub.Audit(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	serial := time.Since(serialStart)

	poolStub := newStub("alpha", delay)
	svc := stubService(t, Config{Workers: 8, QueueCap: targets + 4}, poolStub)
	poolStart := time.Now()
	ids := make([]JobID, 0, targets)
	for i := 0; i < targets; i++ {
		snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("t%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		done, err := svc.Await(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone {
			t.Fatalf("job %s: %s", id, done.State)
		}
	}
	concurrent := time.Since(poolStart)

	if speedup := float64(serial) / float64(concurrent); speedup < 4 {
		t.Fatalf("speedup = %.1fx (serial %v vs pooled %v), want >= 4x",
			speedup, serial, concurrent)
	}
}

// TestInvalidateForcesFreshAnalysis: dropping a cached result makes the next
// submission run the engine again instead of answering inline.
func TestInvalidateForcesFreshAnalysis(t *testing.T) {
	stub := newStub("alpha", 0)
	svc := stubService(t, Config{Workers: 1}, stub)

	first, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Await(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	repeat, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	if repeat.State != StateDone {
		t.Fatalf("repeat state = %s, want inline cache serve", repeat.State)
	}
	if stub.totalCalls() != 1 {
		t.Fatalf("engine ran %d times before invalidation, want 1", stub.totalCalls())
	}

	svc.Invalidate("davc")
	fresh, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Await(context.Background(), fresh.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Results["alpha"].CacheHit {
		t.Fatal("post-invalidation result still served from cache")
	}
	if stub.totalCalls() != 2 {
		t.Fatalf("engine ran %d times after invalidation, want 2", stub.totalCalls())
	}
}

// TestInvalidateSelectedTools only drops the named tools' entries.
func TestInvalidateSelectedTools(t *testing.T) {
	alpha, beta := newStub("alpha", 0), newStub("beta", 0)
	svc := stubService(t, Config{Workers: 1}, alpha, beta)

	first, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Await(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	svc.Invalidate("davc", "alpha")
	again, err := svc.Submit(JobSpec{Target: "davc"})
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Await(context.Background(), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Results["alpha"].CacheHit {
		t.Fatal("invalidated tool served from cache")
	}
	if !done.Results["beta"].CacheHit {
		t.Fatal("untouched tool missed the cache")
	}
}

// gatedAuditor blocks audits of one target until its gate opens, pinning
// the single worker deterministically while a test stages the queue.
type gatedAuditor struct {
	inner       core.Auditor
	gate        chan struct{}
	blockTarget string
}

func (g *gatedAuditor) Name() string { return g.inner.Name() }

func (g *gatedAuditor) Audit(target string) (core.Report, error) {
	if target == g.blockTarget {
		<-g.gate
	}
	return g.inner.Audit(target)
}

// TestRunSeqReflectsPriorityOrder: with one worker pinned on a gated job,
// a later high-priority submission must start before earlier queued
// low-priority ones — and RunSeq records exactly that execution order.
func TestRunSeqReflectsPriorityOrder(t *testing.T) {
	gate := make(chan struct{})
	gated := &gatedAuditor{inner: newStub("alpha", 0), gate: gate, blockTarget: "head"}
	svc := stubService(t, Config{
		Workers:  1,
		CacheTTL: -1,
		Tools:    map[string]Factory{"alpha": func(int) (core.Auditor, error) { return gated, nil }},
	})

	head, err := svc.Submit(JobSpec{Target: "head"})
	if err != nil {
		t.Fatal(err)
	}
	background := make([]JobID, 0, 3)
	for i := 0; i < 3; i++ {
		snap, err := svc.Submit(JobSpec{Target: fmt.Sprintf("bg%d", i), Priority: -10})
		if err != nil {
			t.Fatal(err)
		}
		background = append(background, snap.ID)
	}
	urgent, err := svc.Submit(JobSpec{Target: "urgent", Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Everything below the head job is queued; release the worker.
	close(gate)

	if _, err := svc.Await(context.Background(), head.ID); err != nil {
		t.Fatal(err)
	}
	urgentDone, err := svc.Await(context.Background(), urgent.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range background {
		bgDone, err := svc.Await(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if bgDone.RunSeq <= urgentDone.RunSeq {
			t.Fatalf("background job %s ran at seq %d, before urgent seq %d",
				id, bgDone.RunSeq, urgentDone.RunSeq)
		}
	}
}
