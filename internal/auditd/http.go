package auditd

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"fakeproject/internal/metrics"
)

// Handler exposes a Service over an HTTP JSON API:
//
//	POST /v1/audits            submit a job; body {"target","tools","priority"}.
//	                           Optional ?wait=5s blocks for the result.
//	GET  /v1/audits            list retained jobs (?target= filters).
//	GET  /v1/audits/{id}       one job; optional ?wait=5s blocks until done.
//	GET  /v1/stats             operational counters.
//	GET  /healthz              liveness probe.
//
// Submissions answer 200 when complete (cache fast path or wait), 202 when
// accepted and pending, 429 on queue backpressure, and 400 on bad specs.
type Handler struct {
	svc *Service
	mux *http.ServeMux
	// maxWait bounds the ?wait parameter so clients cannot pin handler
	// goroutines forever.
	maxWait time.Duration
}

// NewHandler builds the HTTP API for svc.
func NewHandler(svc *Service) *Handler {
	h := &Handler{svc: svc, mux: http.NewServeMux(), maxWait: 5 * time.Minute}
	for _, rt := range h.routes() {
		h.mux.HandleFunc(rt.pattern, rt.handler)
	}
	return h
}

// NewHandlerObserved is NewHandler with every route wrapped in the shared
// HTTP instrumentation (plane "audit") and the service's operational
// counters exported into reg.
func NewHandlerObserved(svc *Service, reg *metrics.Registry) *Handler {
	h := &Handler{svc: svc, mux: http.NewServeMux(), maxWait: 5 * time.Minute}
	plane := metrics.NewHTTPPlane(reg, "audit", svc.clock)
	for _, rt := range h.routes() {
		h.mux.Handle(rt.pattern, plane.WrapFunc(rt.endpoint, rt.handler))
	}
	svc.Observe(reg)
	return h
}

// handlerRoute binds one mux pattern to its metrics endpoint label.
type handlerRoute struct {
	pattern  string
	endpoint string
	handler  http.HandlerFunc
}

func (h *Handler) routes() []handlerRoute {
	return []handlerRoute{
		{"POST /v1/audits", "audits/submit", h.submit},
		{"GET /v1/audits", "audits/list", h.list},
		{"GET /v1/audits/{id}", "audits/get", h.get},
		{"GET /v1/stats", "stats", h.stats},
		{"GET /healthz", "healthz", h.health},
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Handler) fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// parseWait reads the optional ?wait=DURATION query parameter.
func (h *Handler) parseWait(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, errors.New("invalid wait duration " + raw)
	}
	if d < 0 {
		d = 0
	}
	if d > h.maxWait {
		d = h.maxWait
	}
	return d, nil
}

func (h *Handler) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		h.fail(w, http.StatusBadRequest, errors.New("decoding job spec: "+err.Error()))
		return
	}
	wait, err := h.parseWait(r)
	if err != nil {
		h.fail(w, http.StatusBadRequest, err)
		return
	}
	snap, err := h.svc.Submit(spec)
	switch {
	case errors.Is(err, ErrBadSpec):
		h.fail(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		h.fail(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		h.fail(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		h.fail(w, http.StatusInternalServerError, err)
		return
	}
	if wait > 0 && !snap.State.Terminal() {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		if done, err := h.svc.Await(ctx, snap.ID); err == nil {
			snap = done
		}
	}
	status := http.StatusAccepted
	if snap.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, snap)
}

func (h *Handler) get(w http.ResponseWriter, r *http.Request) {
	id := JobID(r.PathValue("id"))
	wait, err := h.parseWait(r)
	if err != nil {
		h.fail(w, http.StatusBadRequest, err)
		return
	}
	var snap JobSnapshot
	if wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		snap, err = h.svc.Await(ctx, id)
		if errors.Is(err, context.DeadlineExceeded) {
			snap, err = h.svc.Get(id)
		}
	} else {
		snap, err = h.svc.Get(id)
	}
	if errors.Is(err, ErrUnknownJob) {
		h.fail(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		h.fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (h *Handler) list(w http.ResponseWriter, r *http.Request) {
	target := strings.TrimSpace(r.URL.Query().Get("target"))
	jobs := h.svc.List()
	if target != "" {
		filtered := jobs[:0]
		for _, j := range jobs {
			if j.Spec.Target == target {
				filtered = append(filtered, j)
			}
		}
		jobs = filtered
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobSnapshot `json:"jobs"`
	}{Jobs: jobs})
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.Stats())
}

// health answers the readiness probe. A degraded service (queue at
// capacity, or workers stalled with jobs waiting) answers 503 so load
// balancers and orchestrators actually take it out of rotation — the
// probe is a real signal, not a static "ok".
func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	health := h.svc.Health()
	status := http.StatusOK
	if health.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, health)
}
