package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram layout: one underflow bucket, then 2^histSubBits linear
// sub-buckets per power-of-two octave between 2^histMinExp and
// 2^histMaxExp nanoseconds, then one overflow bucket. With 5 sub-bits the
// worst-case relative error of a reported quantile is 1/32 ≈ 3%, and the
// whole histogram is a flat array of 834 atomic counters — recording a
// sample is a couple of bit operations and one atomic add, no allocation,
// no lock.
//
// (Promoted from internal/loadgen, where it was the load harness's latency
// store; the harness now consumes it from here, and the HTTP middleware
// records into the same layout, so loadd-measured and server-measured
// latencies quantise identically.)
const (
	histMinExp  = 10 // 2^10 ns = 1.024µs: everything below lands in bucket 0
	histMaxExp  = 36 // 2^36 ns ≈ 68.7s: everything above is overflow
	histSubBits = 5
	histSubMask = 1<<histSubBits - 1

	histBuckets = (histMaxExp-histMinExp)<<histSubBits + 2
)

// Histogram is a fixed-bucket log-linear latency histogram safe for
// concurrent recording. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Uint64
	maxNs  atomic.Int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < 1<<histMinExp {
		return 0
	}
	exp := bits.Len64(uint64(ns)) - 1 // position of the highest set bit
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(ns>>(exp-histSubBits)) & histSubMask
	return 1 + (exp-histMinExp)<<histSubBits + sub
}

// bucketUpper is the inclusive upper edge of a bucket in nanoseconds.
// Quantiles report this edge, so a percentile is never under-stated by
// more than the bucket's ~3% width.
func bucketUpper(idx int) int64 {
	switch {
	case idx <= 0:
		return 1<<histMinExp - 1
	case idx >= histBuckets-1:
		return 1 << 62
	}
	idx--
	exp := idx>>histSubBits + histMinExp
	sub := int64(idx&histSubMask) + 1
	return 1<<exp + sub<<(exp-histSubBits) - 1
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(ns))
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total of the recorded samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Mean reports the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Max reports the largest recorded sample exactly (tracked outside the
// buckets, so the tail's headline number carries no quantisation error).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile reports the latency at quantile q in [0, 1]. Concurrent Record
// calls may or may not be included; call after recording has stopped for
// exact results.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the q-th sample, 1-based: ceil(q*n), clamped to [1, n].
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			upper := bucketUpper(i)
			if max := h.maxNs.Load(); upper > max {
				// The top occupied bucket's edge can overshoot the true
				// maximum; the exact max is the tighter bound.
				upper = max
			}
			return time.Duration(upper)
		}
	}
	return h.Max()
}

// Merge folds other's samples into h (max is kept exact; the merged mean
// and quantiles are as exact as the shared bucket layout allows).
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < histBuckets; i++ {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sumNs.Add(other.sumNs.Load())
	for {
		cur, oth := h.maxNs.Load(), other.maxNs.Load()
		if oth <= cur || h.maxNs.CompareAndSwap(cur, oth) {
			return
		}
	}
}

// Exposition downsampling: the 834 internal buckets are ~3%-resolution
// for quantile math, but 834 `_bucket` lines per series would drown a
// Prometheus scrape. Exposition coalesces each power-of-two octave into
// one cumulative bucket: le edges at 2^e nanoseconds for e in
// (histMinExp, histMaxExp], 26 buckets spanning ~2µs to ~69s, plus +Inf.
// Cumulative counts stay exact because octave edges are internal bucket
// boundaries.

// expoBuckets is the number of finite le edges exposition emits.
const expoBuckets = histMaxExp - histMinExp

// expoEdgeNs reports the i-th (0-based) finite le edge in nanoseconds.
func expoEdgeNs(i int) int64 { return 1 << (histMinExp + 1 + i) }

// cumulative fills cum with the running sample totals at each exposition
// edge (cum[i] counts samples <= expoEdgeNs(i)) and returns the total
// count actually summed from the buckets. cum must have expoBuckets
// elements. Under concurrent recording the per-bucket loads are not one
// snapshot; the caller reconciles totals so the invariant "count >= top
// bucket" holds in what it writes out.
func (h *Histogram) cumulative(cum []uint64) uint64 {
	var running uint64
	// Bucket 0 (underflow, <= 2^histMinExp-1 ns) belongs under the first
	// edge, as do the first octave's sub-buckets.
	idx := 0
	for e := 0; e < expoBuckets; e++ {
		hi := 1 + (e+1)<<histSubBits // first internal bucket past this edge
		for ; idx < hi; idx++ {
			running += h.counts[idx].Load()
		}
		cum[e] = running
	}
	running += h.counts[histBuckets-1].Load() // overflow
	return running
}
