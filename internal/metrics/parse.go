package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A minimal parser for the Prometheus text format this package writes.
// It exists so tests (and the CI smoke step) can validate a scrape
// structurally — names well-formed, TYPE lines consistent, histogram
// buckets cumulative — rather than by string comparison alone.

// ParsedSample is one sample line from a text-format scrape.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family from a text-format scrape. Histogram
// samples keep their full sample names (name_bucket, name_sum, name_count).
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseText parses Prometheus text format 0.0.4 and validates it as it
// goes: label syntax, sample values, TYPE vocabulary, histogram bucket
// cumulativity, and that every sample belongs to a declared family when a
// TYPE line precedes it. It returns families in the order first seen.
func ParseText(r io.Reader) ([]ParsedFamily, error) {
	var (
		fams  []ParsedFamily
		index = map[string]int{} // family name -> fams index
	)
	fam := func(name string) *ParsedFamily {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		index[name] = len(fams)
		fams = append(fams, ParsedFamily{Name: name})
		return &fams[len(fams)-1]
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment
			}
			switch kind {
			case "HELP":
				fam(name).Help = rest
			case "TYPE":
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				f := fam(name)
				if f.Type != "" && f.Type != rest {
					return nil, fmt.Errorf("line %d: %s re-typed %s -> %s", lineNo, name, f.Type, rest)
				}
				f.Type = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := familyNameOf(s.Name, index)
		f := fam(base)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if err := checkFamily(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// familyNameOf maps a sample name to its family: histogram samples carry
// _bucket/_sum/_count suffixes on the declared family name.
func familyNameOf(sample string, index map[string]int) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base != sample {
			if _, ok := index[base]; ok {
				return base
			}
		}
	}
	return sample
}

// parseComment splits "# HELP name rest" / "# TYPE name rest".
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 4 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	return fields[1], fields[2], fields[3], true
}

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp is legal in the format; this writer never emits
	// one, so any second field is rejected to keep the golden contract tight.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing field in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil && rest != "+Inf" && rest != "-Inf" && rest != "NaN" {
		return s, fmt.Errorf("bad sample value %q", rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {...} label set, un-escaping values.
func parseLabels(in string, out map[string]string) error {
	for in != "" {
		eq := strings.Index(in, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", in)
		}
		key := in[:eq]
		if !validName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		in = in[eq+1:]
		if len(in) == 0 || in[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		in = in[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(in); i++ {
			c := in[i]
			if c == '\\' {
				if i+1 >= len(in) {
					return fmt.Errorf("dangling escape in value of %q", key)
				}
				i++
				switch in[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in value of %q", in[i], key)
				}
				continue
			}
			if c == '"' {
				closed = true
				in = in[i+1:]
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated value for %q", key)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		out[key] = b.String()
		if in != "" {
			if in[0] != ',' {
				return fmt.Errorf("expected ',' after label %q", key)
			}
			in = in[1:]
		}
	}
	return nil
}

// checkFamily enforces the per-family invariants: histogram bucket counts
// non-decreasing in le order per series, +Inf bucket present and equal to
// the series count sample.
func checkFamily(f *ParsedFamily) error {
	if f.Type != "histogram" {
		return nil
	}
	type hseries struct {
		buckets map[float64]float64 // le -> cumulative count
		hasInf  bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	bySig := map[string]*hseries{}
	get := func(labels map[string]string) *hseries {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte(1)
			b.WriteString(labels[k])
			b.WriteByte(2)
		}
		sig := b.String()
		h := bySig[sig]
		if h == nil {
			h = &hseries{buckets: map[float64]float64{}}
			bySig[sig] = h
		}
		return h
	}
	for _, s := range f.Samples {
		h := get(s.Labels)
		switch {
		case s.Name == f.Name+"_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le", f.Name)
			}
			if le == "+Inf" {
				h.hasInf, h.inf = true, s.Value
				break
			}
			edge, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			h.buckets[edge] = s.Value
		case s.Name == f.Name+"_count":
			h.hasCnt, h.count = true, s.Value
		}
	}
	for _, h := range bySig {
		if !h.hasInf {
			return fmt.Errorf("%s: histogram series missing +Inf bucket", f.Name)
		}
		edges := make([]float64, 0, len(h.buckets))
		for e := range h.buckets {
			edges = append(edges, e)
		}
		sort.Float64s(edges)
		prev := 0.0
		for _, e := range edges {
			if h.buckets[e] < prev {
				return fmt.Errorf("%s: bucket le=%g count %g < previous %g (not cumulative)", f.Name, e, h.buckets[e], prev)
			}
			prev = h.buckets[e]
		}
		if h.inf < prev {
			return fmt.Errorf("%s: +Inf bucket %g < last finite bucket %g", f.Name, h.inf, prev)
		}
		if h.hasCnt && h.count != h.inf {
			return fmt.Errorf("%s: _count %g != +Inf bucket %g", f.Name, h.count, h.inf)
		}
	}
	return nil
}
