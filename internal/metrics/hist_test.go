package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketEdgesCoverTheRange(t *testing.T) {
	// Every nanosecond value maps to a bucket whose upper edge is >= the
	// value, and bucket indexes are monotone in the value.
	prev := 0
	for _, ns := range []int64{0, 1, 1023, 1024, 1025, 5000, 1e6, 1e9, 17e9, 1 << 40} {
		idx := bucketOf(ns)
		if idx < prev {
			t.Fatalf("bucketOf(%d) = %d, below previous %d (not monotone)", ns, idx, prev)
		}
		prev = idx
		if idx > 0 && idx < histBuckets-1 && bucketUpper(idx) < ns {
			t.Fatalf("bucketUpper(%d) = %d < value %d", idx, bucketUpper(idx), ns)
		}
	}
	if bucketOf(0) != 0 || bucketOf(1<<histMinExp-1) != 0 {
		t.Fatal("sub-resolution values must land in the underflow bucket")
	}
	if bucketOf(1<<62) != histBuckets-1 {
		t.Fatal("huge values must land in the overflow bucket")
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 10,000 samples spread uniformly over [1ms, 100ms]: quantiles must
	// come back within the bucket resolution (~3%) of the true values.
	n := 10000
	for i := 1; i <= n; i++ {
		h.Record(time.Millisecond + time.Duration(i)*99*time.Millisecond/time.Duration(n))
	}
	if h.Count() != uint64(n) {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		rel := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if rel > 0.05 {
			t.Errorf("Quantile(%.2f) = %v, want ~%v (rel err %.3f)", tc.q, got, tc.want, rel)
		}
		if got < tc.want {
			t.Errorf("Quantile(%.2f) = %v under-reports %v (edges must round up)", tc.q, got, tc.want)
		}
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("Quantile(1) = %v, want the exact max %v", got, h.Max())
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Record(7 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 7*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want exactly the one sample", q, got)
		}
	}
	if h.Mean() != 7*time.Millisecond || h.Max() != 7*time.Millisecond {
		t.Fatalf("Mean/Max = %v/%v", h.Mean(), h.Max())
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	a.Record(2 * time.Millisecond)
	b.Record(100 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 100*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	if got := a.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("merged p100 = %v", got)
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d (lost samples under concurrency)", h.Count(), goroutines*per)
	}
	want := time.Duration(goroutines*per-1) * time.Microsecond
	if h.Max() != want {
		t.Fatalf("Max = %v, want %v", h.Max(), want)
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}
