package metrics

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof mounts the net/http/pprof handlers under /debug/pprof/ on mux.
// Every daemon gates this behind its -pprof flag: the handlers expose stack
// traces and heap contents, so they are opt-in, never ambient.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
