package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// famView is a scrape-time snapshot of one family: the slice header is
// copied under the registry lock so exposition never races a concurrent
// registration's append, and callback series are evaluated after the lock
// is dropped.
type famView struct {
	name, help string
	kind       Kind
	series     []*series
}

func (r *Registry) snapshotFamilies() []famView {
	r.mu.RLock()
	out := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, famView{name: f.name, help: f.help, kind: f.kind, series: f.series})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus writes the registry in Prometheus text format 0.0.4:
// a # HELP and # TYPE line per family, one sample line per series, and
// histograms expanded into cumulative _bucket{le=...} lines plus _sum and
// _count. Families are ordered by name, series by registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.kind))
		bw.WriteByte('\n')
		for _, s := range f.series {
			if f.kind == KindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			bw.WriteString(f.name)
			writeLabels(bw, s.labels, "")
			bw.WriteByte(' ')
			if s.counter != nil {
				bw.WriteString(strconv.FormatUint(s.counter.Value(), 10))
			} else {
				bw.WriteString(formatFloat(s.value()))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram emits one histogram series: cumulative buckets at the
// downsampled octave edges (seconds), then _sum and _count. The written
// count is clamped up to the bucket total so the exposition invariant
// "count >= every bucket" holds even when the scrape races recorders.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	var cum [expoBuckets]uint64
	total := s.hist.cumulative(cum[:])
	sumNs := s.hist.Sum()
	if c := s.hist.Count(); c > total {
		total = c
	}
	for i := 0; i < expoBuckets; i++ {
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.labels, formatFloat(float64(expoEdgeNs(i))/1e9))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum[i], 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writeLabels(bw, s.labels, "+Inf")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(total, 10))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, s.labels, "")
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(sumNs.Seconds()))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, s.labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(total, 10))
	bw.WriteByte('\n')
}

// writeLabels emits `{k="v",...}` (nothing for an empty set), appending an
// le label last when le is non-empty.
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients expect.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// The JSON exposition: same registry contents, shaped for a polling
// dashboard — histogram series carry precomputed quantiles (in seconds)
// instead of raw buckets, so the consumer needs no histogram math.

// SeriesJSON is one series in the JSON exposition.
type SeriesJSON struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram summary fields (histogram kind only), durations in seconds.
	Count *uint64  `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
	Mean  *float64 `json:"mean,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P90   *float64 `json:"p90,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
	P999  *float64 `json:"p999,omitempty"`
	Max   *float64 `json:"max,omitempty"`
}

// FamilyJSON is one metric family in the JSON exposition.
type FamilyJSON struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Type   Kind         `json:"type"`
	Series []SeriesJSON `json:"series"`
}

// SnapshotJSON is the document served at /metrics.json.
type SnapshotJSON struct {
	Families []FamilyJSON `json:"families"`
}

// Snapshot captures the registry's current state in the JSON shape.
func (r *Registry) Snapshot() SnapshotJSON {
	fams := r.snapshotFamilies()
	doc := SnapshotJSON{Families: make([]FamilyJSON, 0, len(fams))}
	for _, f := range fams {
		fj := FamilyJSON{Name: f.name, Help: f.help, Type: f.kind}
		for _, s := range f.series {
			sj := SeriesJSON{}
			if len(s.labels) > 0 {
				sj.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					sj.Labels[l.Key] = l.Value
				}
			}
			if f.kind == KindHistogram {
				h := s.hist
				count := h.Count()
				sj.Count = &count
				sj.Sum = secs(h.Sum())
				sj.Mean = secs(h.Mean())
				sj.P50 = secs(h.Quantile(0.50))
				sj.P90 = secs(h.Quantile(0.90))
				sj.P99 = secs(h.Quantile(0.99))
				sj.P999 = secs(h.Quantile(0.999))
				sj.Max = secs(h.Max())
			} else {
				v := s.value()
				sj.Value = &v
			}
			fj.Series = append(fj.Series, sj)
		}
		doc.Families = append(doc.Families, fj)
	}
	return doc
}

func secs(d time.Duration) *float64 {
	v := d.Seconds()
	return &v
}

// ServeHTTP makes the registry mountable directly: Prometheus text format
// by default, the JSON form when the request path ends in ".json" — mount
// the same registry at GET /metrics and GET /metrics.json.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if strings.HasSuffix(req.URL.Path, ".json") {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(r.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
