package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGoldenExposition pins the exact text-format output for one of each
// metric shape: HELP/TYPE lines, label ordering and escaping, counter and
// gauge value formatting, and the full histogram expansion.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.", L("queue", "audit"))
	c.Add(42)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(3)
	r.Counter("odd_labels_total", `Help with backslash \ and
newline.`, L("path", `a\b"c`+"\n"))
	h := r.Histogram("req_seconds", "Request latency.", L("ep", "x"))
	h.Record(3 * time.Microsecond)   // octave edge 2^12ns=4.096µs (bucket 1)
	h.Record(100 * time.Microsecond) // <= 2^17ns=131.072µs (bucket 7)
	h.Record(90 * time.Second)       // overflow -> +Inf only

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := strings.Join([]string{
		`# HELP jobs_total Jobs processed.`,
		`# TYPE jobs_total counter`,
		`jobs_total{queue="audit"} 42`,
		`# HELP odd_labels_total Help with backslash \\ and\nnewline.`,
		`# TYPE odd_labels_total counter`,
		`odd_labels_total{path="a\\b\"c\n"} 0`,
		`# HELP queue_depth Jobs waiting.`,
		`# TYPE queue_depth gauge`,
		`queue_depth 3`,
		`# HELP req_seconds Request latency.`,
		`# TYPE req_seconds histogram`,
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}

	// Histogram lines: 26 finite buckets + +Inf + _sum + _count.
	histLines := strings.Split(strings.TrimSuffix(got[len(want):], "\n"), "\n")
	if len(histLines) != expoBuckets+3 {
		t.Fatalf("histogram emitted %d lines, want %d", len(histLines), expoBuckets+3)
	}
	for _, pin := range []string{
		`req_seconds_bucket{ep="x",le="2.048e-06"} 0`,   // first edge: 2^11ns
		`req_seconds_bucket{ep="x",le="4.096e-06"} 1`,   // 3µs sample inside
		`req_seconds_bucket{ep="x",le="0.000131072"} 2`, // 100µs sample inside
		`req_seconds_bucket{ep="x",le="+Inf"} 3`,
		`req_seconds_count{ep="x"} 3`,
	} {
		if !strings.Contains(got, pin+"\n") {
			t.Errorf("exposition missing pinned line %q\nfull output:\n%s", pin, got)
		}
	}

	// The output must round-trip through the parser with all invariants
	// (cumulativity, +Inf == _count, label syntax) intact.
	fams, err := ParseText(strings.NewReader(got))
	if err != nil {
		t.Fatalf("ParseText rejected our own output: %v", err)
	}
	byName := map[string]ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["odd_labels_total"]; len(f.Samples) != 1 || f.Samples[0].Labels["path"] != "a\\b\"c\n" {
		t.Errorf("label escaping did not round-trip: %#v", f.Samples)
	}
	if f := byName["req_seconds"]; f.Type != "histogram" {
		t.Errorf("req_seconds parsed as %q", f.Type)
	}
}

// TestRegistryReuseAndPanics covers get-or-create semantics and the
// assembly-time misuse panics.
func TestRegistryReuseAndPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("k", "v"))
	b := r.Counter("x_total", "", L("k", "v"))
	if a != b {
		t.Fatal("re-registering the same series must return the same counter")
	}
	if r.Counter("x_total", "", L("k", "w")) == a {
		t.Fatal("different label value must be a different series")
	}
	for name, fn := range map[string]func(){
		"bad name":   func() { r.Counter("bad-name", "") },
		"kind clash": func() { r.Gauge("x_total", "") },
		"le label":   func() { r.Histogram("h_seconds", "", L("le", "1")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestScrapeUnderConcurrentLoad hammers one registry from recorder
// goroutines (counters, gauges, histograms, plus ongoing registrations)
// while scraping both expositions — the -race proof that recording is
// lock-free safe and scraping snapshots correctly.
func TestScrapeUnderConcurrentLoad(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat_seconds", "")
	r.GaugeFunc("derived", "", func() float64 { return g.Value() * 2 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(n))
				h.Record(time.Duration(n) * time.Microsecond)
				if n%100 == 0 {
					// Concurrent registration against in-progress scrapes.
					r.Counter("dyn_total", "", L("worker", string(rune('a'+i))), L("n", "x"))
				}
			}
		}(i)
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			if _, err := ParseText(strings.NewReader(b.String())); err != nil {
				t.Fatalf("mid-load scrape invalid: %v\n%s", err, b.String())
			}
			r.Snapshot()
		}
	}
	close(stop)
	wg.Wait()
	if c.Value() == 0 {
		t.Fatal("recorders did not run")
	}
}

// TestServeHTTPContentNegotiation checks the two mount points.
func TestServeHTTPContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "The one.").Inc()

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("text Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1") {
		t.Errorf("text body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"one_total"`) {
		t.Errorf("json body:\n%s", rec.Body.String())
	}
}

// TestHistogramSumAndCumulative pins the exposition downsampling math.
func TestHistogramSumAndCumulative(t *testing.T) {
	var h Histogram
	h.Record(500 * time.Nanosecond) // underflow bucket -> first edge
	h.Record(3 * time.Microsecond)
	h.Record(time.Minute + 30*time.Second) // overflow (> 2^36ns)
	if h.Sum() != 500*time.Nanosecond+3*time.Microsecond+90*time.Second {
		t.Fatalf("Sum = %v", h.Sum())
	}
	var cum [expoBuckets]uint64
	total := h.cumulative(cum[:])
	if total != 3 {
		t.Fatalf("cumulative total = %d", total)
	}
	if cum[0] != 1 { // 500ns underflow <= 2.048µs edge
		t.Fatalf("cum[0] = %d, want 1", cum[0])
	}
	if cum[expoBuckets-1] != 2 { // overflow excluded from finite edges
		t.Fatalf("top finite edge = %d, want 2", cum[expoBuckets-1])
	}
	for i := 1; i < expoBuckets; i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative not monotone at %d", i)
		}
	}
}
