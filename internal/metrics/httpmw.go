package metrics

import (
	"net/http"
	"sync"
	"time"
)

//fp:hotpath

// HTTP plane middleware: one HTTPPlane per daemon surface (plane label),
// one Wrap per route (endpoint label). All series are created at Wrap
// time, so the per-request path is two clock reads, a histogram record
// and one counter increment — no locks, no maps, no allocations (a pooled
// writer captures the status code).
//
// Families:
//
//	http_requests_total{plane,endpoint,code}     counter, code = 1xx..5xx
//	http_request_duration_seconds{plane,endpoint} histogram
//	http_requests_in_flight{plane}                gauge

// Clock is the one clock operation the middleware needs. It is satisfied by
// simclock.Clock (any larger interface assigns to it), declared locally so
// metrics stays a stdlib-only leaf package.
type Clock interface {
	Now() time.Time
}

// HTTPPlane instruments the routes of one HTTP surface.
type HTTPPlane struct {
	reg      *Registry
	plane    string
	clock    Clock
	inFlight *IntGauge
}

// NewHTTPPlane returns a plane-scoped instrumenter. Latencies are measured
// on the given clock so virtual-time tests see virtual durations.
func NewHTTPPlane(reg *Registry, plane string, clock Clock) *HTTPPlane {
	return &HTTPPlane{
		reg:   reg,
		plane: plane,
		clock: clock,
		inFlight: reg.IntGauge("http_requests_in_flight",
			"Requests currently being served.", L("plane", plane)),
	}
}

// statusClasses pre-creates the five status-class counters per endpoint so
// the request path indexes an array instead of formatting a label.
var statusClassNames = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

type endpointSeries struct {
	hist    *Histogram
	classes [5]*Counter
}

// Wrap instruments h as the named endpoint. Call once per route at mux
// assembly time.
func (p *HTTPPlane) Wrap(endpoint string, h http.Handler) http.Handler {
	es := &endpointSeries{
		hist: p.reg.Histogram("http_request_duration_seconds",
			"Time to serve a request, by plane and endpoint.",
			L("plane", p.plane), L("endpoint", endpoint)),
	}
	for i, class := range statusClassNames {
		es.classes[i] = p.reg.Counter("http_requests_total",
			"Requests served, by plane, endpoint and status class.",
			L("plane", p.plane), L("endpoint", endpoint), L("code", class))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := statusWriters.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, http.StatusOK
		p.inFlight.Inc()
		start := p.clock.Now()
		h.ServeHTTP(sw, r)
		es.hist.Record(p.clock.Now().Sub(start))
		p.inFlight.Dec()
		class := sw.status/100 - 1
		sw.ResponseWriter = nil
		statusWriters.Put(sw)
		if class < 0 || class > 4 {
			class = 4
		}
		es.classes[class].Inc()
	})
}

// WrapFunc is Wrap for a HandlerFunc.
func (p *HTTPPlane) WrapFunc(endpoint string, h http.HandlerFunc) http.Handler {
	return p.Wrap(endpoint, h)
}

// statusWriter captures the response status code. Pooled: one Get/Put pair
// per request keeps the middleware allocation-free at steady state.
type statusWriter struct {
	http.ResponseWriter
	status int
}

var statusWriters = sync.Pool{New: func() any { return &statusWriter{} }}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports flushing, so
// streaming handlers behave the same instrumented or not.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
