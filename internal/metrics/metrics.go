// Package metrics is the dependency-free observability registry of the
// reproduction: named counters, gauges and log-linear latency histograms,
// collected in a Registry and exposed in Prometheus text format 0.0.4
// (GET /metrics) and a machine-friendly JSON form (GET /metrics.json) that
// the embedded ops dashboard polls.
//
// The design splits the cost asymmetrically. Registration (Counter,
// Gauge, Histogram, ...) happens at daemon assembly time, takes locks and
// allocates freely, and hands back a pointer. Recording through that
// pointer — the serving hot path — is a couple of atomic operations: no
// lock, no map lookup, no allocation, safe from any goroutine. Scraping
// walks the registry under a read lock and evaluates callback metrics at
// that moment, so exporting a subsystem's internal state is one closure,
// not a new counter to thread through its code.
//
// Metric and label naming follows the Prometheus conventions: snake_case
// names with a unit suffix (_seconds, _total), label values free-form
// (escaped on exposition). The same family name may carry many label
// combinations; a family's kind and help are fixed by the first
// registration and re-registering an identical (name, labels) series
// returns the existing instance.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family, with the Prometheus TYPE vocabulary.
type Kind string

// Family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Key, Value string
}

// L builds a Label; registration call sites read better with it.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is usable,
// but counters obtained from a Registry are what exposition sees.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add adjusts the gauge by delta (CAS loop; fine off the hot path, and for
// hot in-flight tracking IntGauge is the cheaper shape).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// IntGauge is an integer gauge with single-atomic-op Inc/Dec — the shape
// for in-flight request tracking on the hot path.
type IntGauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *IntGauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *IntGauge) Dec() { g.v.Add(-1) }

// Set stores v.
func (g *IntGauge) Set(v int64) { g.v.Store(v) }

// Value reports the current value.
func (g *IntGauge) Value() int64 { return g.v.Load() }

// series is one labelled instance within a family. Exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels []Label // sorted by key

	counter *Counter
	gauge   *Gauge
	intg    *IntGauge
	fn      func() float64 // CounterFunc / GaugeFunc callback
	hist    *Histogram
}

// value evaluates the series' scalar at scrape time (not for histograms).
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	case s.intg != nil:
		return float64(s.intg.Value())
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// family groups every series sharing one metric name.
type family struct {
	name string
	help string
	kind Kind

	series []*series
	bySig  map[string]*series
}

// Registry holds metric families and exposes them; see the package comment
// for the registration/recording split. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, KindCounter, labels, func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// Gauge registers (or finds) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, KindGauge, labels, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// IntGauge registers (or finds) an integer gauge series.
func (r *Registry) IntGauge(name, help string, labels ...Label) *IntGauge {
	s := r.register(name, help, KindGauge, labels, func(s *series) { s.intg = &IntGauge{} })
	return s.intg
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the shape for exporting counters a subsystem already tracks
// internally (auditd job totals, store shard ops) without double counting.
// fn must be safe to call from any goroutine and monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindCounter, labels, func(s *series) { s.fn = fn })
}

// GaugeFunc registers a gauge evaluated from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, labels, func(s *series) { s.fn = fn })
}

// Histogram registers (or finds) a histogram series. Samples are recorded
// as durations; exposition reports seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.register(name, help, KindHistogram, labels, func(s *series) { s.hist = &Histogram{} })
	return s.hist
}

// RegisterHistogram exposes an existing histogram instance under the given
// series — the bridge for recorders that embed their histogram (the load
// generator's per-endpoint collector) rather than obtaining it here.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, KindHistogram, labels, func(s *series) { s.hist = h })
}

// register is the single get-or-create path behind every registration.
// It panics on misuse (invalid name, kind clash, re-registering an existing
// series as a different instance kind): registration happens at assembly
// time with static arguments, where a panic is a build-time bug report,
// not a runtime hazard.
func (r *Registry) register(name, help string, kind Kind, labels []Label, init func(*series)) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) || l.Key == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Key, name))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	sig := signature(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bySig: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (is %s)", name, kind, f.kind))
	}
	if s, ok := f.bySig[sig]; ok {
		return s
	}
	s := &series{labels: sorted}
	init(s)
	f.series = append(f.series, s)
	f.bySig[sig] = s
	return s
}

// signature canonicalises a sorted label set into a map key.
func signature(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
