package metrics

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// nopResponseWriter is a reusable ResponseWriter so the allocation test
// measures the middleware, not a fresh recorder per request.
type nopResponseWriter struct {
	h      http.Header
	status int
}

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(code int)        { w.status = code }

// TestWrapRecordsStatusAndLatency drives wrapped handlers through each
// status class and checks the series land where they should.
func TestWrapRecordsStatusAndLatency(t *testing.T) {
	reg := NewRegistry()
	clock := simclock.NewVirtualAtEpoch()
	plane := NewHTTPPlane(reg, "api", clock)

	ok := plane.Wrap("users/show", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		clock.Advance(5 * time.Millisecond)
	}))
	notFound := plane.Wrap("users/show", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	boom := plane.Wrap("boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))

	for i := 0; i < 3; i++ {
		ok.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}
	notFound.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	boom.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))

	want := map[string]uint64{"2xx": 3, "4xx": 1}
	got := map[string]uint64{}
	for _, s := range reg.Snapshot().Families {
		if s.Name != "http_requests_total" {
			continue
		}
		for _, ser := range s.Series {
			if ser.Labels["endpoint"] == "users/show" && *ser.Value > 0 {
				got[ser.Labels["code"]] = uint64(*ser.Value)
			}
		}
	}
	for class, n := range want {
		if got[class] != n {
			t.Errorf("users/show %s = %d, want %d (all: %v)", class, got[class], n, got)
		}
	}

	h := reg.Histogram("http_request_duration_seconds", "",
		L("plane", "api"), L("endpoint", "users/show"))
	if h.Count() != 4 {
		t.Fatalf("duration samples = %d, want 4", h.Count())
	}
	if h.Max() != 5*time.Millisecond {
		t.Fatalf("virtual-clock latency = %v, want 5ms", h.Max())
	}
	if g := reg.IntGauge("http_requests_in_flight", "", L("plane", "api")); g.Value() != 0 {
		t.Fatalf("in-flight after quiesce = %d", g.Value())
	}
}

// TestWrapZeroAllocs is the hot-path contract from the issue: the
// instrumentation layer itself must not allocate per request. It wraps a
// no-op handler so every allocation observed is the middleware's.
func TestWrapZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	plane := NewHTTPPlane(reg, "api", simclock.Real{})
	h := plane.Wrap("followers/ids", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))

	w := &nopResponseWriter{h: http.Header{}}
	r := &http.Request{Method: "GET", URL: &url.URL{Path: "/"}}
	// Warm the pool outside the measured runs.
	h.ServeHTTP(w, r)
	if n := testing.AllocsPerRun(1000, func() { h.ServeHTTP(w, r) }); n != 0 {
		t.Fatalf("middleware allocates %.1f times per request, want 0", n)
	}
}

func BenchmarkWrapOverhead(b *testing.B) {
	reg := NewRegistry()
	plane := NewHTTPPlane(reg, "api", simclock.Real{})
	h := plane.Wrap("followers/ids", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	w := &nopResponseWriter{h: http.Header{}}
	r := &http.Request{Method: "GET", URL: &url.URL{Path: "/"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, r)
	}
}
