// Package ml implements the from-scratch machine-learning stack the Fake
// Project classifier is built on (Section III): CART decision trees, bagged
// random forests, logistic regression, stratified cross-validation and the
// usual binary classification metrics. Only the standard library is used.
//
// Labels are binary: 1 = fake, 0 = human (genuine). Inactivity is not
// learned — it is a deterministic rule (never tweeted / last tweet older
// than 90 days) applied before classification, as in the paper.
package ml

import (
	"errors"
	"fmt"
	"math"

	"fakeproject/internal/drand"
)

// LabelFake and LabelHuman are the two classes.
const (
	LabelHuman = 0
	LabelFake  = 1
)

// Dataset is a design matrix with labels.
type Dataset struct {
	// X is the feature matrix, one row per example.
	X [][]float64
	// Y holds the binary labels, parallel to X.
	Y []int
	// FeatureNames documents the columns (optional but used in reports).
	FeatureNames []string
}

// ErrEmptyDataset reports training on no data.
var ErrEmptyDataset = errors.New("ml: empty dataset")

// ErrRaggedDataset reports rows of inconsistent width or X/Y length skew.
var ErrRaggedDataset = errors.New("ml: ragged dataset")

// Validate checks structural invariants.
func (d Dataset) Validate() error {
	if len(d.X) == 0 {
		return ErrEmptyDataset
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("%w: %d rows vs %d labels", ErrRaggedDataset, len(d.X), len(d.Y))
	}
	width := len(d.X[0])
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrRaggedDataset, i, len(row), width)
		}
	}
	for i, y := range d.Y {
		if y != LabelHuman && y != LabelFake {
			return fmt.Errorf("%w: label %d at row %d", ErrRaggedDataset, y, i)
		}
	}
	return nil
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// Subset returns the dataset restricted to the given row indices (rows are
// shared, not copied — treat subsets as read-only views).
func (d Dataset) Subset(idx []int) Dataset {
	out := Dataset{
		X:            make([][]float64, len(idx)),
		Y:            make([]int, len(idx)),
		FeatureNames: d.FeatureNames,
	}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Positives counts fake-labelled rows.
func (d Dataset) Positives() int {
	n := 0
	for _, y := range d.Y {
		if y == LabelFake {
			n++
		}
	}
	return n
}

// Classifier is a trained binary model.
type Classifier interface {
	// Name identifies the model in reports.
	Name() string
	// PredictProba returns P(fake) for the feature vector.
	PredictProba(x []float64) float64
	// Predict returns the hard label at the 0.5 threshold.
	Predict(x []float64) int
}

// PredictAt applies a custom probability threshold.
func PredictAt(c Classifier, x []float64, threshold float64) int {
	if c.PredictProba(x) >= threshold {
		return LabelFake
	}
	return LabelHuman
}

// ConfusionMatrix tallies binary outcomes (positive class = fake).
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) pair.
func (m *ConfusionMatrix) Add(predicted, actual int) {
	switch {
	case predicted == LabelFake && actual == LabelFake:
		m.TP++
	case predicted == LabelFake && actual == LabelHuman:
		m.FP++
	case predicted == LabelHuman && actual == LabelHuman:
		m.TN++
	default:
		m.FN++
	}
}

// Total returns the number of recorded pairs.
func (m ConfusionMatrix) Total() int { return m.TP + m.FP + m.TN + m.FN }

// Accuracy is (TP+TN)/total.
func (m ConfusionMatrix) Accuracy() float64 {
	if m.Total() == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(m.Total())
}

// Precision is TP/(TP+FP).
func (m ConfusionMatrix) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall is TP/(TP+FN).
func (m ConfusionMatrix) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 is the harmonic mean of precision and recall.
func (m ConfusionMatrix) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MCC is the Matthews correlation coefficient, the metric the Fake Project
// papers favour for imbalanced classes.
func (m ConfusionMatrix) MCC() float64 {
	tp, fp, tn, fn := float64(m.TP), float64(m.FP), float64(m.TN), float64(m.FN)
	den := (tp + fp) * (tp + fn) * (tn + fp) * (tn + fn)
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / math.Sqrt(den)
}

// Evaluate runs the classifier over a dataset and tallies the confusion
// matrix.
func Evaluate(c Classifier, d Dataset) ConfusionMatrix {
	var m ConfusionMatrix
	for i, row := range d.X {
		m.Add(c.Predict(row), d.Y[i])
	}
	return m
}

// Trainer builds a classifier from data (the unit of cross-validation).
type Trainer func(Dataset) (Classifier, error)

// CVResult aggregates per-fold metrics.
type CVResult struct {
	Folds []ConfusionMatrix
}

// MeanAccuracy averages fold accuracies.
func (r CVResult) MeanAccuracy() float64 { return r.mean(ConfusionMatrix.Accuracy) }

// MeanF1 averages fold F1 scores.
func (r CVResult) MeanF1() float64 { return r.mean(ConfusionMatrix.F1) }

// MeanMCC averages fold MCCs.
func (r CVResult) MeanMCC() float64 { return r.mean(ConfusionMatrix.MCC) }

func (r CVResult) mean(f func(ConfusionMatrix) float64) float64 {
	if len(r.Folds) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range r.Folds {
		s += f(m)
	}
	return s / float64(len(r.Folds))
}

// Pooled merges all folds into one confusion matrix.
func (r CVResult) Pooled() ConfusionMatrix {
	var out ConfusionMatrix
	for _, m := range r.Folds {
		out.TP += m.TP
		out.FP += m.FP
		out.TN += m.TN
		out.FN += m.FN
	}
	return out
}

// CrossValidate runs stratified k-fold cross-validation: folds preserve the
// class ratio, each fold serves once as the held-out test set.
func CrossValidate(k int, train Trainer, d Dataset, seed uint64) (CVResult, error) {
	if err := d.Validate(); err != nil {
		return CVResult{}, err
	}
	if k < 2 || k > d.Len() {
		return CVResult{}, fmt.Errorf("ml: invalid fold count %d for %d rows", k, d.Len())
	}
	folds := stratifiedFolds(d, k, seed)
	var result CVResult
	for f := 0; f < k; f++ {
		var trainIdx, testIdx []int
		for g := 0; g < k; g++ {
			if g == f {
				testIdx = append(testIdx, folds[g]...)
			} else {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		model, err := train(d.Subset(trainIdx))
		if err != nil {
			return CVResult{}, fmt.Errorf("fold %d: %w", f, err)
		}
		result.Folds = append(result.Folds, Evaluate(model, d.Subset(testIdx)))
	}
	return result, nil
}

// stratifiedFolds partitions row indices into k folds preserving class
// balance.
func stratifiedFolds(d Dataset, k int, seed uint64) [][]int {
	src := drand.New(seed).Fork("cv")
	var pos, neg []int
	for i, y := range d.Y {
		if y == LabelFake {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	src.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	src.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}
