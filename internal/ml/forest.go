package ml

import (
	"fmt"
	"math"

	"fakeproject/internal/drand"
)

// ForestConfig tunes random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size; 0 means 31.
	Trees int
	// Tree configures the member trees. Tree.FeatureSubset of 0 defaults
	// to sqrt(#features), the standard forest heuristic.
	Tree TreeConfig
	// Seed drives bootstrapping and per-tree randomness.
	Seed uint64
}

func (c ForestConfig) withDefaults(nFeatures int) ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 31
	}
	if c.Tree.FeatureSubset <= 0 {
		c.Tree.FeatureSubset = int(math.Sqrt(float64(nFeatures)))
		if c.Tree.FeatureSubset < 1 {
			c.Tree.FeatureSubset = 1
		}
	}
	return c
}

// RandomForest is a bagged ensemble of CART trees; P(fake) is the mean of
// the member probabilities.
type RandomForest struct {
	trees []*DecisionTree
}

var _ Classifier = (*RandomForest)(nil)

// TrainForest fits a random forest with bootstrap resampling.
func TrainForest(d Dataset, cfg ForestConfig) (*RandomForest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(len(d.X[0]))
	root := drand.New(cfg.Seed)
	forest := &RandomForest{trees: make([]*DecisionTree, 0, cfg.Trees)}
	n := d.Len()
	for b := 0; b < cfg.Trees; b++ {
		src := root.ForkN("bootstrap", int64(b))
		idx := make([]int, n)
		for i := range idx {
			idx[i] = src.Intn(n)
		}
		treeCfg := cfg.Tree
		treeCfg.Seed = src.Fork("tree").Seed()
		tree, err := TrainTree(d.Subset(idx), treeCfg)
		if err != nil {
			return nil, fmt.Errorf("training tree %d: %w", b, err)
		}
		forest.trees = append(forest.trees, tree)
	}
	return forest, nil
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "random-forest" }

// Size reports the number of member trees.
func (f *RandomForest) Size() int { return len(f.trees) }

// PredictProba implements Classifier.
func (f *RandomForest) PredictProba(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.PredictProba(x)
	}
	return s / float64(len(f.trees))
}

// Predict implements Classifier.
func (f *RandomForest) Predict(x []float64) int {
	if f.PredictProba(x) >= 0.5 {
		return LabelFake
	}
	return LabelHuman
}
