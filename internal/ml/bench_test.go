package ml

import "testing"

// BenchmarkTrainTree measures CART training on a 600-row, 3-feature
// dataset (one fold of the Section III cross-validation).
func BenchmarkTrainTree(b *testing.B) {
	d := syntheticDataset(600, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainTree(d, TreeConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainForest measures 21-tree forest training (the deployed FC
// configuration).
func BenchmarkTrainForest(b *testing.B) {
	d := syntheticDataset(600, 0.3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainForest(d, ForestConfig{Trees: 21, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestPredict measures the per-account classification cost
// inside an FC audit (9,604 predictions per audit).
func BenchmarkForestPredict(b *testing.B) {
	d := syntheticDataset(600, 0.3, 3)
	f, err := TrainForest(d, ForestConfig{Trees: 21, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.4, 800, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(x)
	}
}

// BenchmarkLogRegTrain measures SGD logistic-regression training.
func BenchmarkLogRegTrain(b *testing.B) {
	d := syntheticDataset(600, 0.3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainLogReg(d, LogRegConfig{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossValidate measures the 5-fold CV loop of the methodology
// evaluation.
func BenchmarkCrossValidate(b *testing.B) {
	d := syntheticDataset(400, 0.3, 6)
	trainer := func(td Dataset) (Classifier, error) {
		return TrainTree(td, TreeConfig{MaxDepth: 8})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(5, trainer, d, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
