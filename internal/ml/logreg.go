package ml

import (
	"math"

	"fakeproject/internal/drand"
)

// LogRegConfig tunes logistic-regression training.
type LogRegConfig struct {
	// Epochs is the number of SGD passes; 0 means 60.
	Epochs int
	// LearningRate is the SGD step size; 0 means 0.1.
	LearningRate float64
	// L2 is the ridge penalty; 0 means 1e-4.
	L2 float64
	// Seed drives example shuffling.
	Seed uint64
}

func (c LogRegConfig) withDefaults() LogRegConfig {
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 <= 0 {
		c.L2 = 1e-4
	}
	return c
}

// LogisticRegression is an L2-regularised logistic model trained with SGD
// on standardised features (the scaler is stored with the model).
type LogisticRegression struct {
	weights []float64
	bias    float64
	mean    []float64
	scale   []float64
}

var _ Classifier = (*LogisticRegression)(nil)

// TrainLogReg fits the model.
func TrainLogReg(d Dataset, cfg LogRegConfig) (*LogisticRegression, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n, dim := d.Len(), len(d.X[0])

	m := &LogisticRegression{
		weights: make([]float64, dim),
		mean:    make([]float64, dim),
		scale:   make([]float64, dim),
	}
	// Standardise: z = (x - mean) / std.
	for j := 0; j < dim; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += d.X[i][j]
		}
		m.mean[j] = s / float64(n)
		v := 0.0
		for i := 0; i < n; i++ {
			diff := d.X[i][j] - m.mean[j]
			v += diff * diff
		}
		std := math.Sqrt(v / float64(n))
		if std < 1e-12 {
			std = 1
		}
		m.scale[j] = std
	}

	src := drand.New(cfg.Seed).Fork("logreg")
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	z := make([]float64, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.05*float64(epoch))
		for _, i := range order {
			for j := 0; j < dim; j++ {
				z[j] = (d.X[i][j] - m.mean[j]) / m.scale[j]
			}
			p := sigmoid(m.raw(z))
			grad := p - float64(d.Y[i])
			for j := 0; j < dim; j++ {
				m.weights[j] -= lr * (grad*z[j] + cfg.L2*m.weights[j])
			}
			m.bias -= lr * grad
		}
	}
	return m, nil
}

// zClamp bounds standardised features so that pathological inputs (±Inf or
// astronomically large raw values) cannot produce Inf-Inf = NaN in the
// linear term; anything beyond ±1e8 standard deviations is saturated.
const zClamp = 1e8

func (m *LogisticRegression) raw(z []float64) float64 {
	s := m.bias
	for j, w := range m.weights {
		v := z[j]
		if v > zClamp {
			v = zClamp
		} else if v < -zClamp {
			v = -zClamp
		}
		s += w * v
	}
	return s
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "logistic-regression" }

// PredictProba implements Classifier.
func (m *LogisticRegression) PredictProba(x []float64) float64 {
	z := make([]float64, len(m.weights))
	for j := range z {
		z[j] = (x[j] - m.mean[j]) / m.scale[j]
	}
	return sigmoid(m.raw(z))
}

// Predict implements Classifier.
func (m *LogisticRegression) Predict(x []float64) int {
	if m.PredictProba(x) >= 0.5 {
		return LabelFake
	}
	return LabelHuman
}

// Weights returns a copy of the learned weights (standardised space), for
// inspection and feature-importance reporting.
func (m *LogisticRegression) Weights() []float64 {
	return append([]float64(nil), m.weights...)
}
