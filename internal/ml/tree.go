package ml

import (
	"fmt"
	"sort"

	"fakeproject/internal/drand"
)

// TreeConfig tunes CART training.
type TreeConfig struct {
	// MaxDepth bounds the tree height; 0 means a sensible default (12).
	MaxDepth int
	// MinLeaf is the minimum number of examples a leaf may hold; 0 means 3.
	MinLeaf int
	// FeatureSubset, when > 0, examines only that many randomly chosen
	// features at each split (the random-forest trick). 0 means all.
	FeatureSubset int
	// Seed drives feature subsetting.
	Seed uint64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 3
	}
	return c
}

// DecisionTree is a trained CART classifier (Gini impurity splits).
type DecisionTree struct {
	root   *treeNode
	cfg    TreeConfig
	nNodes int
}

var _ Classifier = (*DecisionTree)(nil)

type treeNode struct {
	// leaf fields
	leaf bool
	prob float64 // P(fake) among training rows at this node
	// split fields
	feature   int
	threshold float64
	left      *treeNode // rows with x[feature] <= threshold
	right     *treeNode
}

// TrainTree fits a CART decision tree.
func TrainTree(d Dataset, cfg TreeConfig) (*DecisionTree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t := &DecisionTree{cfg: cfg}
	src := drand.New(cfg.Seed).Fork("tree")
	t.root = t.grow(d, idx, 0, src)
	return t, nil
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "decision-tree" }

// Nodes reports the number of nodes in the trained tree.
func (t *DecisionTree) Nodes() int { return t.nNodes }

// Depth reports the height of the trained tree.
func (t *DecisionTree) Depth() int { return depth(t.root) }

func depth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// PredictProba implements Classifier.
func (t *DecisionTree) PredictProba(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	if t.PredictProba(x) >= 0.5 {
		return LabelFake
	}
	return LabelHuman
}

func (t *DecisionTree) grow(d Dataset, idx []int, level int, src *drand.Source) *treeNode {
	t.nNodes++
	pos := 0
	for _, i := range idx {
		if d.Y[i] == LabelFake {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	// Stop when pure, too deep, or too small to split.
	if pos == 0 || pos == len(idx) || level >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf {
		return &treeNode{leaf: true, prob: prob}
	}
	feature, threshold, ok := t.bestSplit(d, idx, src)
	if !ok {
		return &treeNode{leaf: true, prob: prob}
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return &treeNode{leaf: true, prob: prob}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      t.grow(d, left, level+1, src),
		right:     t.grow(d, right, level+1, src),
	}
}

// bestSplit scans (a possibly random subset of) features for the split with
// the highest Gini gain.
func (t *DecisionTree) bestSplit(d Dataset, idx []int, src *drand.Source) (int, float64, bool) {
	nFeatures := len(d.X[0])
	candidates := make([]int, nFeatures)
	for i := range candidates {
		candidates[i] = i
	}
	if k := t.cfg.FeatureSubset; k > 0 && k < nFeatures {
		src.Shuffle(nFeatures, func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		candidates = candidates[:k]
	}

	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	total := len(idx)
	totalPos := 0
	for _, i := range idx {
		if d.Y[i] == LabelFake {
			totalPos++
		}
	}
	parentGini := gini(totalPos, total)

	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, total)
	for _, f := range candidates {
		for j, i := range idx {
			pairs[j] = pair{v: d.X[i][f], y: d.Y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		leftPos, leftN := 0, 0
		for j := 0; j < total-1; j++ {
			if pairs[j].y == LabelFake {
				leftPos++
			}
			leftN++
			if pairs[j].v == pairs[j+1].v {
				continue // can only split between distinct values
			}
			rightPos := totalPos - leftPos
			rightN := total - leftN
			wGini := (float64(leftN)*gini(leftPos, leftN) + float64(rightN)*gini(rightPos, rightN)) / float64(total)
			if gain := parentGini - wGini; gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (pairs[j].v + pairs[j+1].v) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, false
	}
	return bestFeature, bestThreshold, true
}

// gini returns the Gini impurity of a node with pos positives out of n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// String summarises the tree.
func (t *DecisionTree) String() string {
	return fmt.Sprintf("DecisionTree(nodes=%d, depth=%d)", t.Nodes(), t.Depth())
}
