package ml

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fakeproject/internal/drand"
)

// syntheticDataset builds a separable-but-noisy two-class problem shaped
// like the fake-follower domain: class 1 concentrates at low x0 (follower/
// friend ratio) and low x1 (statuses), class 0 at high values; x2 is noise.
func syntheticDataset(n int, noise float64, seed uint64) Dataset {
	src := drand.New(seed)
	d := Dataset{FeatureNames: []string{"ratio", "statuses", "noise"}}
	for i := 0; i < n; i++ {
		y := i % 2
		var ratio, statuses float64
		if y == LabelFake {
			ratio = src.NormClamped(0.05, 0.05+noise, 0, 10)
			statuses = src.NormClamped(10, 20+100*noise, 0, 100000)
		} else {
			ratio = src.NormClamped(1.5, 0.8+noise, 0, 10)
			statuses = src.NormClamped(2000, 1500+1000*noise, 0, 100000)
		}
		d.X = append(d.X, []float64{ratio, statuses, src.Float64()})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	if err := (Dataset{}).Validate(); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("err = %v", err)
	}
	bad := Dataset{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 1}}
	if err := bad.Validate(); !errors.Is(err, ErrRaggedDataset) {
		t.Fatalf("err = %v", err)
	}
	skew := Dataset{X: [][]float64{{1}}, Y: []int{0, 1}}
	if err := skew.Validate(); !errors.Is(err, ErrRaggedDataset) {
		t.Fatalf("err = %v", err)
	}
	badLabel := Dataset{X: [][]float64{{1}}, Y: []int{7}}
	if err := badLabel.Validate(); !errors.Is(err, ErrRaggedDataset) {
		t.Fatalf("err = %v", err)
	}
	ok := syntheticDataset(10, 0, 1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestTreeLearnsSeparableData(t *testing.T) {
	d := syntheticDataset(600, 0, 2)
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(tree, d)
	if acc := m.Accuracy(); acc < 0.98 {
		t.Fatalf("tree training accuracy = %.3f, want >= 0.98 on separable data", acc)
	}
	if tree.Depth() < 1 {
		t.Fatal("tree did not split at all")
	}
}

func TestTreeGeneralises(t *testing.T) {
	train := syntheticDataset(800, 0.3, 3)
	test := syntheticDataset(400, 0.3, 99)
	tree, err := TrainTree(train, TreeConfig{MaxDepth: 6, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(tree, test)
	if acc := m.Accuracy(); acc < 0.9 {
		t.Fatalf("tree test accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestTreePredictionDeterministic(t *testing.T) {
	d := syntheticDataset(300, 0.2, 4)
	a, _ := TrainTree(d, TreeConfig{Seed: 7})
	b, _ := TrainTree(d, TreeConfig{Seed: 7})
	f := func(r, s, n float64) bool {
		x := []float64{math.Abs(r), math.Abs(s), math.Abs(n)}
		return a.Predict(x) == b.Predict(x) && a.PredictProba(x) == b.PredictProba(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeProbaBounds(t *testing.T) {
	d := syntheticDataset(300, 0.5, 5)
	tree, _ := TrainTree(d, TreeConfig{})
	f := func(r, s, n float64) bool {
		p := tree.PredictProba([]float64{r, s, n})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	// All-one-class data must yield a single leaf.
	d := Dataset{X: [][]float64{{1}, {2}, {3}, {4}}, Y: []int{0, 0, 0, 0}}
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 1 {
		t.Fatalf("pure dataset grew %d nodes, want 1", tree.Nodes())
	}
	if tree.Predict([]float64{2.5}) != LabelHuman {
		t.Fatal("pure-human tree predicted fake")
	}
}

func TestForestBeatsOrMatchesTreeOnNoisyData(t *testing.T) {
	train := syntheticDataset(800, 0.6, 6)
	test := syntheticDataset(400, 0.6, 77)
	tree, err := TrainTree(train, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(train, ForestConfig{Trees: 21, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	treeAcc := Evaluate(tree, test).Accuracy()
	forestAcc := Evaluate(forest, test).Accuracy()
	if forestAcc < treeAcc-0.03 {
		t.Fatalf("forest (%.3f) much worse than single tree (%.3f)", forestAcc, treeAcc)
	}
	if forestAcc < 0.85 {
		t.Fatalf("forest accuracy = %.3f, want >= 0.85", forestAcc)
	}
	if forest.Size() != 21 {
		t.Fatalf("forest size = %d", forest.Size())
	}
}

func TestForestProbaIsMeanOfTrees(t *testing.T) {
	d := syntheticDataset(200, 0.3, 9)
	forest, _ := TrainForest(d, ForestConfig{Trees: 5, Seed: 10})
	x := []float64{0.5, 500, 0.5}
	p := forest.PredictProba(x)
	if p < 0 || p > 1 {
		t.Fatalf("forest proba out of bounds: %v", p)
	}
	s := 0.0
	for _, tr := range forest.trees {
		s += tr.PredictProba(x)
	}
	if math.Abs(p-s/5) > 1e-12 {
		t.Fatalf("proba %v != mean of members %v", p, s/5)
	}
}

func TestLogRegLearns(t *testing.T) {
	train := syntheticDataset(800, 0.3, 11)
	test := syntheticDataset(400, 0.3, 55)
	lr, err := TrainLogReg(train, LogRegConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(lr, test).Accuracy(); acc < 0.9 {
		t.Fatalf("logreg accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestLogRegProbaBounds(t *testing.T) {
	d := syntheticDataset(200, 0.4, 12)
	lr, _ := TrainLogReg(d, LogRegConfig{})
	f := func(a, b, c float64) bool {
		p := lr.PredictProba([]float64{a, b, c})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); s != 0.5 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	m := ConfusionMatrix{TP: 40, FP: 10, TN: 45, FN: 5}
	if got := m.Accuracy(); got != 0.85 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := m.Precision(); got != 0.8 {
		t.Fatalf("Precision = %v", got)
	}
	if got := m.Recall(); math.Abs(got-8.0/9.0) > 1e-12 {
		t.Fatalf("Recall = %v", got)
	}
	if got := m.F1(); math.Abs(got-2*0.8*(8.0/9.0)/(0.8+8.0/9.0)) > 1e-12 {
		t.Fatalf("F1 = %v", got)
	}
	if mcc := m.MCC(); mcc <= 0.6 || mcc >= 0.8 {
		t.Fatalf("MCC = %v, want ≈0.70", mcc)
	}
}

func TestConfusionMatrixDegenerate(t *testing.T) {
	var m ConfusionMatrix
	if m.Accuracy() != 0 || m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.MCC() != 0 {
		t.Fatal("zero matrix should yield zero metrics")
	}
}

func TestPredictAt(t *testing.T) {
	d := syntheticDataset(400, 0.2, 13)
	lr, _ := TrainLogReg(d, LogRegConfig{})
	x := []float64{0.05, 5, 0.5} // strongly fake-looking
	if PredictAt(lr, x, 0.99) == LabelFake && lr.PredictProba(x) < 0.99 {
		t.Fatal("threshold not honoured")
	}
	if PredictAt(lr, x, 0.0) != LabelFake {
		t.Fatal("zero threshold must always predict fake")
	}
}

func TestCrossValidate(t *testing.T) {
	d := syntheticDataset(500, 0.4, 14)
	trainer := func(td Dataset) (Classifier, error) {
		return TrainTree(td, TreeConfig{MaxDepth: 6})
	}
	res, err := CrossValidate(5, trainer, d, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	if res.Pooled().Total() != d.Len() {
		t.Fatalf("pooled total = %d, want %d (each row tested once)", res.Pooled().Total(), d.Len())
	}
	if acc := res.MeanAccuracy(); acc < 0.85 {
		t.Fatalf("CV accuracy = %.3f", acc)
	}
	if res.MeanF1() <= 0 || res.MeanMCC() <= 0 {
		t.Fatalf("degenerate CV metrics: F1=%v MCC=%v", res.MeanF1(), res.MeanMCC())
	}
}

func TestCrossValidateStratification(t *testing.T) {
	// Highly imbalanced data: every fold must still contain positives.
	src := drand.New(16)
	d := Dataset{}
	for i := 0; i < 300; i++ {
		y := 0
		if i%10 == 0 {
			y = 1
		}
		d.X = append(d.X, []float64{src.Float64()})
		d.Y = append(d.Y, y)
	}
	folds := stratifiedFolds(d, 5, 17)
	for f, idx := range folds {
		pos := 0
		for _, i := range idx {
			if d.Y[i] == LabelFake {
				pos++
			}
		}
		if pos != 6 {
			t.Fatalf("fold %d has %d positives, want 6 (stratified)", f, pos)
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := syntheticDataset(10, 0, 18)
	trainer := func(td Dataset) (Classifier, error) { return TrainTree(td, TreeConfig{}) }
	if _, err := CrossValidate(1, trainer, d, 1); err == nil {
		t.Fatal("k=1 should error")
	}
	if _, err := CrossValidate(11, trainer, d, 1); err == nil {
		t.Fatal("k>n should error")
	}
	if _, err := CrossValidate(2, trainer, Dataset{}, 1); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestSubsetSharesRows(t *testing.T) {
	d := syntheticDataset(10, 0, 19)
	s := d.Subset([]int{0, 2, 4})
	if s.Len() != 3 {
		t.Fatalf("subset len = %d", s.Len())
	}
	if &s.X[0][0] != &d.X[0][0] {
		t.Fatal("subset should share row storage")
	}
}

func TestPositives(t *testing.T) {
	d := syntheticDataset(10, 0, 20)
	if got := d.Positives(); got != 5 {
		t.Fatalf("Positives = %d, want 5", got)
	}
}
