// Package statuspeople simulates the StatusPeople "Fakers" app as surveyed
// in Section II-A: a sample of follower records drawn from only the newest
// portion of the follower base, "assessed against a number of simple spam
// criteria" ("on a very basic level spam accounts tend to have few or no
// followers and few or no tweets. But in contrast they tend to follow a lot
// of other accounts").
//
// Three historical configurations are provided:
//
//   - Legacy (launch, Jul 2012): assesses 1,000 records across a follower
//     base of up to 100K.
//   - Current (post Oct 2012 API change): 700 records across up to 35K —
//     the configuration the paper measured.
//   - DeepDive (Nov 2013, internal-only): 33K records across the first
//     1.25M — the re-assessment that moved Obama from 70% to 45% fake.
package statuspeople

import (
	"fmt"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/drand"
	"fakeproject/internal/sampling"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// Config selects a Fakers sampling configuration.
type Config struct {
	// Window is how many newest followers are fetched as candidates.
	Window int
	// Sample is how many of the fetched candidates are assessed.
	Sample int
	// Seed drives the sample draw.
	Seed uint64
}

// Legacy returns the launch configuration (1,000 across 100K).
func Legacy() Config { return Config{Window: 100000, Sample: 1000} }

// Current returns the post-October-2012 configuration (700 across 35K).
func Current() Config { return Config{Window: 35000, Sample: 700} }

// DeepDive returns the November-2013 internal configuration (33K across
// 1.25M).
func DeepDive() Config { return Config{Window: 1250000, Sample: 33000} }

// Fakers is the StatusPeople analytics engine. It implements core.Auditor.
type Fakers struct {
	client twitterapi.Client
	clock  simclock.Clock
	cfg    Config
	src    *drand.Source
}

var _ core.Auditor = (*Fakers)(nil)

// New creates the engine. A zero Window selects the Current sampling
// configuration while preserving the caller's Seed.
func New(client twitterapi.Client, clock simclock.Clock, cfg Config) *Fakers {
	if cfg.Window <= 0 {
		seed := cfg.Seed
		cfg = Current()
		cfg.Seed = seed
	}
	return &Fakers{
		client: client,
		clock:  clock,
		cfg:    cfg,
		src:    drand.New(cfg.Seed).Fork("statuspeople"),
	}
}

// Name implements core.Auditor.
func (f *Fakers) Name() string { return "statuspeople" }

// Verdict is the engine's per-account decision, exported for evaluation.
type Verdict int

// Fakers verdicts. StatusPeople checks the spam criteria *first*: an
// account that looks purchased is "fake" even if it is also dormant, which
// is why Fakers reports far more fakes than FC on abandoned follower bases
// (Table III) — while an account failing the spam check but not "engaging
// with the platform - producing and sharing content" is "inactive".
const (
	VerdictGood Verdict = iota + 1
	VerdictInactive
	VerdictFake
)

// Classify applies the simple spam criteria to one profile.
func (f *Fakers) Classify(p twitter.Profile, now time.Time) Verdict {
	score := 0.0
	// "few or no followers"
	if p.FollowersCount <= 30 {
		score++
	}
	// "few or no tweets"
	if p.StatusesCount <= 20 {
		score++
	}
	// "they tend to follow a lot of other accounts"
	if p.FriendsCount >= 250 {
		score++
	}
	// "the relationship between followers and friends ... the most
	// meaningful one" (Rob Waller).
	if p.FriendsCount > 0 && p.FollowerFriendRatio() < 0.05 {
		score++
	}
	if p.DefaultProfileImage {
		score += 0.5
	}
	if p.Bio == "" {
		score += 0.5
	}
	if score >= 2.5 {
		return VerdictFake
	}
	if core.IsDormant(p, now) {
		return VerdictInactive
	}
	return VerdictGood
}

// Audit implements core.Auditor.
func (f *Fakers) Audit(screenName string) (core.Report, error) {
	sw := simclock.NewStopwatch(f.clock)
	callsBefore := f.client.Calls()

	target, err := f.client.UserByScreenName(screenName)
	if err != nil {
		return core.Report{}, fmt.Errorf("resolving %q: %w", screenName, err)
	}
	candidates, err := twitterapi.FollowerIDsUpTo(f.client, target.ID, f.cfg.Window)
	if err != nil {
		return core.Report{}, fmt.Errorf("fetching follower window of %q: %w", screenName, err)
	}
	idx := sampling.Uniform{}.Sample(len(candidates), f.cfg.Sample, f.src)
	sample := sampling.Select(candidates, idx)
	profiles, err := twitterapi.LookupMany(f.client, sample)
	if err != nil {
		return core.Report{}, fmt.Errorf("looking up sample of %q: %w", screenName, err)
	}

	now := f.clock.Now()
	var counts core.VerdictCounts
	for _, p := range profiles {
		switch f.Classify(p, now) {
		case VerdictFake:
			counts.Fake++
		case VerdictInactive:
			counts.Inactive++
		default:
			counts.Genuine++
		}
	}
	report := core.Report{
		Tool:             f.Name(),
		Target:           target,
		NominalFollowers: target.FollowersCount,
		SampleSize:       len(profiles),
		Window:           f.cfg.Window,
		HasInactiveClass: true,
		Elapsed:          sw.Elapsed(),
		APICalls:         f.client.Calls() - callsBefore,
		AssessedAt:       now,
	}
	report.InactivePct, report.FakePct, report.GenuinePct = counts.Percentages()
	return report, nil
}
