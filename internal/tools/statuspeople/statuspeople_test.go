package statuspeople

import (
	"testing"
	"time"

	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// fixture builds a target whose newest 3,000 followers are junk-heavy and
// whose older base is genuine — the purchased-followers shape.
func fixture(t *testing.T) (*Fakers, *simclock.Virtual, string) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 3)
	gen := population.NewGenerator(store, 3)
	_, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "buyer",
		Followers:  10000,
		Layout: population.Layout{
			{Width: 3000, Mix: population.Mix{Inactive: 0.2, Fake: 0.7, Genuine: 0.1}},
			{Width: 0, Mix: population.Mix{Genuine: 0.9, Inactive: 0.1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := twitterapi.NewDirectClient(twitterapi.NewService(store), clock,
		twitterapi.ClientConfig{PerCallLatency: 1700 * time.Millisecond, Tokens: 50})
	return New(client, clock, Current()), clock, "buyer"
}

func TestConfigs(t *testing.T) {
	if c := Legacy(); c.Window != 100000 || c.Sample != 1000 {
		t.Fatalf("Legacy = %+v", c)
	}
	if c := Current(); c.Window != 35000 || c.Sample != 700 {
		t.Fatalf("Current = %+v", c)
	}
	if c := DeepDive(); c.Window != 1250000 || c.Sample != 33000 {
		t.Fatalf("DeepDive = %+v", c)
	}
}

func TestZeroConfigDefaultsToCurrent(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	f := New(nil, clock, Config{})
	if f.cfg.Window != 35000 || f.cfg.Sample != 700 {
		t.Fatalf("zero config = %+v, want Current", f.cfg)
	}
}

func TestClassifyArchetypes(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	f := New(nil, clock, Current())
	now := clock.Now()

	bought := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(0, -4, 0), DefaultProfileImage: true},
		FollowersCount: 2, FriendsCount: 1800, StatusesCount: 0,
	}
	if got := f.Classify(bought, now); got != VerdictFake {
		t.Fatalf("bought fake = %v, want fake (spam criteria win over dormancy)", got)
	}

	dormant := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(-3, 0, 0), Bio: "hello"},
		FollowersCount: 200, FriendsCount: 150, StatusesCount: 500,
		LastTweetAt: now.AddDate(-1, 0, 0),
	}
	if got := f.Classify(dormant, now); got != VerdictInactive {
		t.Fatalf("dormant genuine = %v, want inactive", got)
	}

	active := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(-2, 0, 0), Bio: "hi"},
		FollowersCount: 900, FriendsCount: 400, StatusesCount: 3000,
		LastTweetAt: now.AddDate(0, 0, -1),
	}
	if got := f.Classify(active, now); got != VerdictGood {
		t.Fatalf("active genuine = %v, want good", got)
	}
}

func TestAuditSamplesOnlyNewestWindow(t *testing.T) {
	fakers, _, name := fixture(t)
	report, err := fakers.Audit(name)
	if err != nil {
		t.Fatal(err)
	}
	if report.SampleSize != 700 {
		t.Fatalf("sample = %d, want 700", report.SampleSize)
	}
	if report.Window != 35000 {
		t.Fatalf("window = %d", report.Window)
	}
	// The newest 3,000 of 10,000 are ~90% junk but the whole base is ~66%
	// genuine; since the window (35K) covers the whole list here, Fakers
	// sees the true blend — on this small account it is roughly unbiased.
	junk := report.FakePct + report.InactivePct
	if junk < 20 || junk > 50 {
		t.Fatalf("junk = %.1f%%, want the whole-list blend (≈33%%)", junk)
	}
	if !report.HasInactiveClass {
		t.Fatal("Fakers reports inactive accounts")
	}
}

func TestAuditResponseTimeShape(t *testing.T) {
	fakers, clock, name := fixture(t)
	start := clock.Now()
	if _, err := fakers.Audit(name); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start)
	// 1 users/show + 2 ids pages + 7 lookups = 10 calls at 1.7s ≈ 17s;
	// Table II's StatusPeople column is 22-32s for bigger windows.
	if elapsed < 10*time.Second || elapsed > 40*time.Second {
		t.Fatalf("elapsed = %v, want tens of seconds", elapsed)
	}
}

func TestAuditUnknownAccount(t *testing.T) {
	fakers, _, _ := fixture(t)
	if _, err := fakers.Audit("ghost"); err == nil {
		t.Fatal("unknown account should fail")
	}
}

func TestDeepDiveSeesMoreThanCurrent(t *testing.T) {
	// On a target whose junk sits beyond the newest 35K, the Deep Dive
	// configuration must report more junk than the public one.
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 9)
	gen := population.NewGenerator(store, 9)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "deep",
		Followers:  80000,
		Layout: population.Layout{
			{Width: 35000, Mix: population.Mix{Genuine: 1}},
			{Width: 0, Mix: population.Mix{Inactive: 0.9, Fake: 0.1}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	svc := twitterapi.NewService(store)
	mk := func(cfg Config) *Fakers {
		return New(twitterapi.NewDirectClient(svc, clock, twitterapi.ClientConfig{Tokens: 64}), clock, cfg)
	}
	pub, err := mk(Current()).Audit("deep")
	if err != nil {
		t.Fatal(err)
	}
	deep, err := mk(DeepDive()).Audit("deep")
	if err != nil {
		t.Fatal(err)
	}
	pubJunk := pub.FakePct + pub.InactivePct
	deepJunk := deep.FakePct + deep.InactivePct
	if deepJunk <= pubJunk+20 {
		t.Fatalf("deep dive junk %.1f%% should far exceed window junk %.1f%%", deepJunk, pubJunk)
	}
}
