// Package twitteraudit simulates Twitteraudit.com as surveyed in
// Section II-C: "taking a random sample of 5K Twitter followers", each
// follower receives a score based on i) the number of its tweets, ii) the
// date of the last tweet, and iii) the ratio of followers to friends, on a
// five-point scale ("the three criteria used to evaluate the score can sum
// up to five"). The tool has no inactive class; followers are either fake
// or real. It also produces the audit's three chart series (target verdict,
// quality score per follower, real points per follower).
package twitteraudit

import (
	"fmt"
	"math"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/drand"
	"fakeproject/internal/sampling"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// SampleSize is the audit's sample: "a random sample of 5K Twitter
// followers". Because the API serves 5,000 IDs per page, the candidates are
// necessarily the newest 5,000 — the bias the paper demonstrates.
const SampleSize = 5000

// MaxScore is the five-point scale ceiling.
const MaxScore = 5.0

// realThreshold is the score below which a follower is ruled fake. The
// vendor never published the computation ("there are no details on how the
// score is computed"); this threshold and the component weights below are
// calibrated once so that the engine's verdicts on the archetype population
// track the paper's Table III Twitteraudit column.
const realThreshold = 1.45

// massFollowRatio is the followers/friends ratio under which an account is
// treated as a mass-follower: its ratio points vanish and its recency credit
// is capped (bots tweet constantly, so raw recency would whitewash them).
const massFollowRatio = 0.03

// Audit is the Twitteraudit engine. It implements core.Auditor.
type Audit struct {
	client twitterapi.Client
	clock  simclock.Clock
	src    *drand.Source

	// lastCharts holds the chart series of the most recent audit.
	lastCharts Charts
}

var _ core.Auditor = (*Audit)(nil)

// Charts is the audit's graphical output: the overall verdict plus the two
// per-follower distributions.
type Charts struct {
	// TargetVerdict is "real", "not sure" or "fake" for the audited
	// account itself.
	TargetVerdict string
	// QualityScores is the per-follower quality score histogram
	// (10 buckets over [0, 5]).
	QualityScores [10]int
	// RealPoints is the per-follower real-points histogram (6 buckets for
	// 0..5 points).
	RealPoints [6]int
}

// New creates the engine.
func New(client twitterapi.Client, clock simclock.Clock, seed uint64) *Audit {
	return &Audit{
		client: client,
		clock:  clock,
		src:    drand.New(seed).Fork("twitteraudit"),
	}
}

// Name implements core.Auditor.
func (a *Audit) Name() string { return "twitteraudit" }

// Score computes the follower's 0-5 quality score from the three published
// criteria.
func Score(p twitter.Profile, now time.Time) float64 {
	// i) number of tweets: log-scaled, 1.0 at 1,000+ tweets.
	tweets := math.Log10(float64(p.StatusesCount)+1) / 3
	if tweets > 1 {
		tweets = 1
	}
	// ii) date of the last tweet: up to 2 points, decaying with dormancy.
	var recency float64
	if !p.LastTweetAt.IsZero() {
		ageDays := now.Sub(p.LastTweetAt).Hours() / 24
		switch {
		case ageDays <= 30:
			recency = 2
		case ageDays <= 90:
			recency = 1.5
		case ageDays <= 180:
			recency = 0.75
		case ageDays <= 365:
			recency = 0.25
		}
	}
	// iii) ratio of followers to friends: up to 2 points, saturating at
	// parity. Mass-followers forfeit the ratio points and most of the
	// recency credit.
	ratio := p.FollowerFriendRatio()
	if ratio > 1 {
		ratio = 1
	}
	ratioPts := 2 * ratio
	if p.FriendsCount > 0 && p.FollowerFriendRatio() < massFollowRatio {
		ratioPts = 0
		if recency > 0.5 {
			recency = 0.5
		}
	}
	return tweets + recency + ratioPts
}

// IsFake applies the real/fake threshold to a follower's score.
func IsFake(p twitter.Profile, now time.Time) bool {
	return Score(p, now) < realThreshold
}

// LastCharts returns the chart series of the most recent audit.
func (a *Audit) LastCharts() Charts { return a.lastCharts }

// Audit implements core.Auditor.
func (a *Audit) Audit(screenName string) (core.Report, error) {
	sw := simclock.NewStopwatch(a.clock)
	callsBefore := a.client.Calls()

	target, err := a.client.UserByScreenName(screenName)
	if err != nil {
		return core.Report{}, fmt.Errorf("resolving %q: %w", screenName, err)
	}
	candidates, err := twitterapi.FollowerIDsUpTo(a.client, target.ID, SampleSize)
	if err != nil {
		return core.Report{}, fmt.Errorf("fetching followers of %q: %w", screenName, err)
	}
	idx := sampling.Uniform{}.Sample(len(candidates), SampleSize, a.src)
	sample := sampling.Select(candidates, idx)
	profiles, err := twitterapi.LookupMany(a.client, sample)
	if err != nil {
		return core.Report{}, fmt.Errorf("looking up sample of %q: %w", screenName, err)
	}

	now := a.clock.Now()
	var charts Charts
	fake, real := 0, 0
	for _, p := range profiles {
		score := Score(p, now)
		bucket := int(score / MaxScore * 10)
		if bucket > 9 {
			bucket = 9
		}
		charts.QualityScores[bucket]++
		points := int(score + 0.5)
		if points > 5 {
			points = 5
		}
		charts.RealPoints[points]++
		if score < realThreshold {
			fake++
		} else {
			real++
		}
	}
	total := fake + real
	fakePct := 0.0
	if total > 0 {
		fakePct = 100 * float64(fake) / float64(total)
	}
	switch {
	case fakePct >= 50:
		charts.TargetVerdict = "fake"
	case fakePct >= 25:
		charts.TargetVerdict = "not sure"
	default:
		charts.TargetVerdict = "real"
	}
	a.lastCharts = charts

	return core.Report{
		Tool:             a.Name(),
		Target:           target,
		NominalFollowers: target.FollowersCount,
		SampleSize:       total,
		Window:           SampleSize,
		HasInactiveClass: false,
		FakePct:          fakePct,
		GenuinePct:       100 - fakePct,
		Elapsed:          sw.Elapsed(),
		APICalls:         a.client.Calls() - callsBefore,
		AssessedAt:       now,
	}, nil
}
