package twitteraudit

import (
	"testing"
	"time"

	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

func fixture(t *testing.T, followers int, layout population.Layout) (*Audit, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 6)
	gen := population.NewGenerator(store, 6)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "subject",
		Followers:  followers,
		Layout:     layout,
	}); err != nil {
		t.Fatal(err)
	}
	client := twitterapi.NewDirectClient(twitterapi.NewService(store), clock,
		twitterapi.ClientConfig{PerCallLatency: 900 * time.Millisecond, Tokens: 50})
	return New(client, clock, 6), clock
}

func TestScoreArchetypes(t *testing.T) {
	now := simclock.Epoch
	genuine := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(-2, 0, 0)},
		FollowersCount: 800, FriendsCount: 400, StatusesCount: 4000,
		LastTweetAt: now.AddDate(0, 0, -2),
	}
	if s := Score(genuine, now); s < 4 {
		t.Fatalf("genuine score = %.2f, want >= 4", s)
	}
	if IsFake(genuine, now) {
		t.Fatal("genuine flagged fake")
	}

	egg := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(0, -3, 0)},
		FollowersCount: 2, FriendsCount: 1500, StatusesCount: 0,
	}
	if s := Score(egg, now); s > 0.5 {
		t.Fatalf("egg score = %.2f, want ≈0", s)
	}
	if !IsFake(egg, now) {
		t.Fatal("egg not flagged fake")
	}

	// Mass-following spam bot: active and tweeting, but the lopsided
	// ratio forfeits recency credit.
	bot := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(0, -6, 0)},
		FollowersCount: 10, FriendsCount: 3000, StatusesCount: 200,
		LastTweetAt: now.AddDate(0, 0, -1),
	}
	if !IsFake(bot, now) {
		t.Fatalf("spam bot not flagged fake (score %.2f)", Score(bot, now))
	}
}

func TestScoreBounds(t *testing.T) {
	now := simclock.Epoch
	best := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(-5, 0, 0)},
		FollowersCount: 100000, FriendsCount: 100, StatusesCount: 100000,
		LastTweetAt: now.Add(-time.Hour),
	}
	if s := Score(best, now); s > MaxScore {
		t.Fatalf("score %.2f exceeds the five-point scale", s)
	}
	if s := Score(twitter.Profile{}, now); s < 0 {
		t.Fatalf("score %.2f below zero", s)
	}
}

func TestAuditNoInactiveClass(t *testing.T) {
	audit, _ := fixture(t, 3000, population.Layout{
		{Width: 0, Mix: population.Mix{Inactive: 0.5, Genuine: 0.5}},
	})
	report, err := audit.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	if report.HasInactiveClass || report.InactivePct != 0 {
		t.Fatalf("twitteraudit must not report inactive: %+v", report)
	}
	if report.FakePct+report.GenuinePct < 99.9 {
		t.Fatalf("percentages must cover everything: %+v", report)
	}
	// Roughly half the base is dormant; a majority of those score low, so
	// the fake percentage must land well above zero but below the dormant
	// share (the conflation the paper notes).
	if report.FakePct < 15 || report.FakePct > 55 {
		t.Fatalf("fake = %.1f%%, want the dormant-driven band", report.FakePct)
	}
}

func TestAuditWindowIsNewest5000(t *testing.T) {
	audit, _ := fixture(t, 20000, population.Layout{
		{Width: 5000, Mix: population.Mix{Genuine: 1}},
		{Width: 0, Mix: population.Mix{Inactive: 1}},
	})
	report, err := audit.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	if report.SampleSize != SampleSize {
		t.Fatalf("sample = %d, want %d", report.SampleSize, SampleSize)
	}
	// Window = newest 5000 = all genuine: fake ≈ 0 despite 15,000 dormant
	// accounts right beyond the window.
	if report.FakePct > 10 {
		t.Fatalf("fake = %.1f%%, want ≈0 (dormant base is outside the window)", report.FakePct)
	}
}

func TestChartsPopulated(t *testing.T) {
	audit, _ := fixture(t, 4000, population.Layout{
		{Width: 0, Mix: population.Mix{Inactive: 0.6, Fake: 0.2, Genuine: 0.2}},
	})
	report, err := audit.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	charts := audit.LastCharts()
	totalQ := 0
	for _, n := range charts.QualityScores {
		totalQ += n
	}
	totalP := 0
	for _, n := range charts.RealPoints {
		totalP += n
	}
	if totalQ != report.SampleSize || totalP != report.SampleSize {
		t.Fatalf("chart totals %d/%d, want %d", totalQ, totalP, report.SampleSize)
	}
	if charts.TargetVerdict != "fake" {
		t.Fatalf("verdict = %q, want fake for a 80%%-junk base", charts.TargetVerdict)
	}
}

func TestAuditResponseTimeShape(t *testing.T) {
	audit, clock := fixture(t, 30000, nil)
	start := clock.Now()
	if _, err := audit.Audit("subject"); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start)
	// 1 show + 1 ids + 50 lookups = 52 calls at 0.9s ≈ 47s — Table II's
	// Twitteraudit column is 40-55s.
	if elapsed < 35*time.Second || elapsed > 60*time.Second {
		t.Fatalf("elapsed = %v, want ≈47s", elapsed)
	}
}
