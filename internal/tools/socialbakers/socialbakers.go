// Package socialbakers simulates the Socialbakers "Fake Follower Check
// (BETA)" as surveyed in Section II-B: the newest "up to 2000 followers per
// account" are assessed against eight published criteria with undisclosed
// point weights; accounts exceeding the point threshold are suspicious
// (fake), accounts matching the inactivity rules ("the account has posted
// less than 3 tweets; the last tweet is more than 90 days old") are
// inactive, and "accounts that are neither suspicious, nor inactive, are
// considered genuine".
package socialbakers

import (
	"fmt"
	"time"

	"fakeproject/internal/core"
	"fakeproject/internal/features"
	"fakeproject/internal/rules"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

// Window is the tool's assessment window: "up to 2000 followers per
// account".
const Window = 2000

// DeclaredErrorMargin is the accuracy the vendor itself claims: "a small
// error margin of roughly 10-15%".
const DeclaredErrorMargin = 0.15

// DailyLimit is the vendor's usage cap: "the tool can be used ten times a
// day".
const DailyLimit = 10

// ErrDailyLimit reports the eleventh use within a day.
var ErrDailyLimit = fmt.Errorf("socialbakers: daily limit of %d checks reached", DailyLimit)

// Checker is the Socialbakers engine. It implements core.Auditor.
type Checker struct {
	client twitterapi.Client
	clock  simclock.Clock
	ruleSt rules.Set

	// daily usage accounting
	dayStart  time.Time
	usedToday int
	// EnforceDailyLimit turns the ten-a-day cap on (off by default so the
	// experiment harness can sweep 20 accounts; the paper worked around
	// the cap by spreading runs over days).
	EnforceDailyLimit bool
}

var _ core.Auditor = (*Checker)(nil)

// New creates the engine.
func New(client twitterapi.Client, clock simclock.Clock) *Checker {
	return &Checker{
		client:   client,
		clock:    clock,
		ruleSt:   rules.Socialbakers(),
		dayStart: clock.Now(),
	}
}

// Name implements core.Auditor.
func (c *Checker) Name() string { return "socialbakers" }

// Verdict is the engine's per-account decision.
type Verdict int

// Checker verdicts.
const (
	VerdictGenuine Verdict = iota + 1
	VerdictInactive
	VerdictSuspicious
)

// IsInactive applies the published inactivity rules: fewer than 3 tweets,
// or a last tweet older than 90 days.
func IsInactive(p twitter.Profile, now time.Time) bool {
	if p.StatusesCount < 3 {
		return true
	}
	return !p.LastTweetAt.IsZero() && now.Sub(p.LastTweetAt) > 90*24*time.Hour
}

// Classify applies the criteria points and inactivity rules to one profile.
func (c *Checker) Classify(p twitter.Profile, now time.Time) Verdict {
	ctx := features.Context{Profile: p, Now: now}
	suspicious := c.ruleSt.Fake(&ctx)
	inactive := IsInactive(p, now)
	switch {
	case inactive:
		return VerdictInactive
	case suspicious:
		return VerdictSuspicious
	default:
		return VerdictGenuine
	}
}

// Audit implements core.Auditor.
func (c *Checker) Audit(screenName string) (core.Report, error) {
	if c.EnforceDailyLimit {
		now := c.clock.Now()
		if now.Sub(c.dayStart) >= 24*time.Hour {
			c.dayStart = now
			c.usedToday = 0
		}
		if c.usedToday >= DailyLimit {
			return core.Report{}, ErrDailyLimit
		}
		c.usedToday++
	}

	sw := simclock.NewStopwatch(c.clock)
	callsBefore := c.client.Calls()

	target, err := c.client.UserByScreenName(screenName)
	if err != nil {
		return core.Report{}, fmt.Errorf("resolving %q: %w", screenName, err)
	}
	// The newest up-to-2000 followers, assessed in full (no sub-sampling).
	candidates, err := twitterapi.FollowerIDsUpTo(c.client, target.ID, Window)
	if err != nil {
		return core.Report{}, fmt.Errorf("fetching follower window of %q: %w", screenName, err)
	}
	profiles, err := twitterapi.LookupMany(c.client, candidates)
	if err != nil {
		return core.Report{}, fmt.Errorf("looking up followers of %q: %w", screenName, err)
	}

	now := c.clock.Now()
	var counts core.VerdictCounts
	for _, p := range profiles {
		switch c.Classify(p, now) {
		case VerdictSuspicious:
			counts.Fake++
		case VerdictInactive:
			counts.Inactive++
		default:
			counts.Genuine++
		}
	}
	report := core.Report{
		Tool:             c.Name(),
		Target:           target,
		NominalFollowers: target.FollowersCount,
		SampleSize:       len(profiles),
		Window:           Window,
		HasInactiveClass: true,
		Elapsed:          sw.Elapsed(),
		APICalls:         c.client.Calls() - callsBefore,
		AssessedAt:       now,
	}
	report.InactivePct, report.FakePct, report.GenuinePct = counts.Percentages()
	return report, nil
}
