package socialbakers

import (
	"errors"
	"testing"
	"time"

	"fakeproject/internal/population"
	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitterapi"
)

func fixture(t *testing.T, followers int, layout population.Layout) (*Checker, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 5)
	gen := population.NewGenerator(store, 5)
	if _, err := gen.BuildTarget(population.TargetSpec{
		ScreenName: "subject",
		Followers:  followers,
		Layout:     layout,
	}); err != nil {
		t.Fatal(err)
	}
	client := twitterapi.NewDirectClient(twitterapi.NewService(store), clock,
		twitterapi.ClientConfig{PerCallLatency: 430 * time.Millisecond, Tokens: 50})
	return New(client, clock), clock
}

func TestClassifyVerdictPrecedence(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	c := New(nil, clock)
	now := clock.Now()

	// An active spam bot: suspicious, not inactive.
	spamBot := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(0, -8, 0)},
		FollowersCount: 20, FriendsCount: 2000, StatusesCount: 400,
		LastTweetAt: now.AddDate(0, 0, -2),
		Behavior:    twitter.Behavior{SpamRatio: 0.6, LinkRatio: 0.95, DuplicateRatio: 0.5},
	}
	if got := c.Classify(spamBot, now); got != VerdictSuspicious {
		t.Fatalf("spam bot = %v, want suspicious", got)
	}

	// A dormant egg: matches fake criteria AND inactivity rules; the
	// published flow tests suspicious accounts against the inactivity
	// rules, so inactive wins.
	egg := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(-1, 0, 0), DefaultProfileImage: true},
		FollowersCount: 1, FriendsCount: 900, StatusesCount: 0,
	}
	if got := c.Classify(egg, now); got != VerdictInactive {
		t.Fatalf("dormant egg = %v, want inactive", got)
	}

	// "the account has posted less than 3 tweets" → inactive even if the
	// last tweet is recent.
	sparse := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(-1, 0, 0), Bio: "x", Location: "y"},
		FollowersCount: 50, FriendsCount: 60, StatusesCount: 2,
		LastTweetAt: now.AddDate(0, 0, -1),
	}
	if got := c.Classify(sparse, now); got != VerdictInactive {
		t.Fatalf("two-tweet account = %v, want inactive", got)
	}

	genuine := twitter.Profile{
		User:           twitter.User{CreatedAt: now.AddDate(-2, 0, 0), Bio: "hi", Location: "Pisa"},
		FollowersCount: 500, FriendsCount: 300, StatusesCount: 2500,
		LastTweetAt: now.AddDate(0, 0, -3),
		Behavior:    twitter.Behavior{RetweetRatio: 0.2, LinkRatio: 0.3},
	}
	if got := c.Classify(genuine, now); got != VerdictGenuine {
		t.Fatalf("genuine = %v, want genuine", got)
	}
}

func TestAuditWindowIs2000(t *testing.T) {
	checker, _ := fixture(t, 10000, population.Layout{
		{Width: 2000, Mix: population.Mix{Fake: 0.5, Genuine: 0.5}},
		{Width: 0, Mix: population.Mix{Inactive: 1}},
	})
	report, err := checker.Audit("subject")
	if err != nil {
		t.Fatal(err)
	}
	if report.SampleSize != Window {
		t.Fatalf("sample = %d, want %d (the newest window, assessed in full)", report.SampleSize, Window)
	}
	// The tool must see ONLY the newest 2000 (half fake, half genuine) and
	// none of the 8000 dormant accounts beyond its window.
	if report.InactivePct > 8 {
		t.Fatalf("inactive = %.1f%%, want ≈0 (dormant base is outside the window)", report.InactivePct)
	}
	if report.FakePct < 35 || report.FakePct > 60 {
		t.Fatalf("fake = %.1f%%, want ≈50", report.FakePct)
	}
}

func TestAuditResponseTimeShape(t *testing.T) {
	checker, clock := fixture(t, 30000, nil)
	start := clock.Now()
	if _, err := checker.Audit("subject"); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start)
	// 1 show + 1 ids page + 20 lookups = 22 calls at 0.43s ≈ 9.5s —
	// Table II's Socialbakers column is 7-13s.
	if elapsed < 5*time.Second || elapsed > 16*time.Second {
		t.Fatalf("elapsed = %v, want ≈10s", elapsed)
	}
}

func TestDailyLimit(t *testing.T) {
	checker, clock := fixture(t, 100, nil)
	checker.EnforceDailyLimit = true
	for i := 0; i < DailyLimit; i++ {
		if _, err := checker.Audit("subject"); err != nil {
			t.Fatalf("audit %d: %v", i, err)
		}
	}
	if _, err := checker.Audit("subject"); !errors.Is(err, ErrDailyLimit) {
		t.Fatalf("11th audit err = %v, want ErrDailyLimit", err)
	}
	// A day later the budget resets.
	clock.Advance(24 * time.Hour)
	if _, err := checker.Audit("subject"); err != nil {
		t.Fatalf("audit after reset: %v", err)
	}
}

func TestIsInactiveRules(t *testing.T) {
	now := simclock.Epoch
	cases := []struct {
		name string
		p    twitter.Profile
		want bool
	}{
		{"never tweeted", twitter.Profile{}, true},
		{"two tweets", twitter.Profile{StatusesCount: 2, LastTweetAt: now.AddDate(0, 0, -1)}, true},
		{"old last tweet", twitter.Profile{StatusesCount: 100, LastTweetAt: now.AddDate(0, 0, -91)}, true},
		{"active", twitter.Profile{StatusesCount: 100, LastTweetAt: now.AddDate(0, 0, -5)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsInactive(tc.p, now); got != tc.want {
				t.Fatalf("IsInactive = %v, want %v", got, tc.want)
			}
		})
	}
}
