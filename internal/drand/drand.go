// Package drand provides deterministic random sources and the distribution
// helpers used by every synthetic generator in the reproduction.
//
// Determinism policy: a single root seed fully determines a simulation.
// Components derive child sources via Fork(label) so that adding a new
// consumer never perturbs the streams of existing ones — the property that
// keeps regression tests stable as the system grows.
package drand

import (
	"math"
	"math/rand"
	"sort"
)

// Source is a deterministic random source with distribution helpers.
// It is NOT safe for concurrent use; fork one per goroutine instead.
type Source struct {
	r *rand.Rand
	// seed is retained so children can be derived stably.
	seed uint64
}

// New returns a Source seeded with the given root seed.
func New(seed uint64) *Source {
	return &Source{r: rand.New(rand.NewSource(int64(seed))), seed: seed}
}

// Fork derives an independent child source from this source's seed and a
// label. Forking is a pure function of (seed, label): it does not consume
// randomness from the parent, so the set of consumers can grow without
// shifting existing streams.
func (s *Source) Fork(label string) *Source { return New(s.SeedFor(label)) }

// ForkN derives a child source from an integer label, convenient when
// generating per-entity streams (one per user ID).
func (s *Source) ForkN(label string, n int64) *Source { return New(s.SeedForN(label, n)) }

// Seed reports the seed this source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// FNV-64a, inlined. hash/fnv returns its state behind a hash.Hash64
// interface, which costs a heap allocation per call — too much for the
// account-creation hot path, which derives one seed per account (~1.5M
// calls for the full testbed). The fold below is bit-identical to
// fnv.New64a().Write(...).Sum64().
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v >> (8 * i) & 0xff)) * fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// HashString returns the FNV-64a hash of s without allocating — the shared
// string-hashing primitive for allocation-sensitive index striping.
func HashString(s string) uint64 {
	return fnvString(fnvOffset64, s)
}

// SeedFor returns the seed Fork(label) would give its child, without
// constructing the child's generator. Hot paths that only need a derived
// seed value (not a stream) use this: building a math/rand generator costs
// a 607-word state initialisation, ~10µs per call. It does not allocate.
func (s *Source) SeedFor(label string) uint64 {
	return fnvString(fnvUint64(fnvOffset64, s.seed), label)
}

// SeedForN returns the seed ForkN(label, n) would give its child, without
// constructing the child's generator. It does not allocate.
func (s *Source) SeedForN(label string, n int64) uint64 {
	return fnvString(fnvUint64(fnvUint64(fnvOffset64, s.seed), uint64(n)), label)
}

// Rand exposes the underlying *rand.Rand for callers that need the raw API
// (e.g. sort shuffles). The returned value shares state with the Source.
func (s *Source) Rand() *rand.Rand { return s.r }

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63n returns a uniform int64 in [0,n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 { return s.r.Int63n(n) }

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// IntBetween returns a uniform int in [lo, hi] inclusive.
// It panics if hi < lo.
func (s *Source) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("drand: IntBetween with hi < lo")
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Norm returns a normal sample with the given mean and standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// NormClamped returns a normal sample clamped to [lo, hi].
func (s *Source) NormClamped(mean, stddev, lo, hi float64) float64 {
	v := s.Norm(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogNormal returns exp(N(mu, sigma)), the classic heavy-tailed shape of
// social-network count distributions (followers, statuses).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) sample: xm * U^(-1/alpha).
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm * math.Pow(u, -1/alpha)
}

// Exp returns an exponential sample with the given mean. Mean must be > 0.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Zipf returns a Zipf-distributed value in [0, n) with exponent sHape > 1.
func (s *Source) Zipf(shape float64, n uint64) uint64 {
	z := rand.NewZipf(s.r, shape, 1, n-1)
	return z.Uint64()
}

// WeightedChoice returns an index in [0, len(weights)) chosen proportionally
// to weights. Non-positive weights are treated as zero. It panics if the
// total weight is not positive.
func (s *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("drand: WeightedChoice with non-positive total weight")
	}
	x := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if x < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("drand: unreachable")
}

// Shuffle permutes the n elements using swap, uniformly at random.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// SampleInts returns k distinct integers drawn uniformly from [0,n),
// in sorted order. It panics if k > n or k < 0.
//
// For small k relative to n it uses Floyd's algorithm (O(k) memory,
// no O(n) allocation); otherwise it partially shuffles an index slice.
func (s *Source) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("drand: SampleInts with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 < n {
		// Floyd's algorithm.
		chosen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for j := n - k; j < n; j++ {
			t := s.r.Intn(j + 1)
			if _, dup := chosen[t]; dup {
				t = j
			}
			chosen[t] = struct{}{}
			out = append(out, t)
		}
		sort.Ints(out)
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher-Yates: fix the first k positions.
	for i := 0; i < k; i++ {
		j := i + s.r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := idx[:k]
	sort.Ints(out)
	return out
}

// Letters used by name synthesis; kept lowercase-alphanumeric to resemble
// Twitter screen-name conventions.
const nameAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789_"

// ScreenName synthesises a plausible Twitter screen name of length in
// [6, 14] from this source.
func (s *Source) ScreenName() string {
	n := s.IntBetween(6, 14)
	b := make([]byte, n)
	// First character alphabetic for readability.
	b[0] = nameAlphabet[s.Intn(26)]
	for i := 1; i < n; i++ {
		b[i] = nameAlphabet[s.Intn(len(nameAlphabet))]
	}
	return string(b)
}
