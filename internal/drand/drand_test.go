package drand

import (
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestForkIsStableAndIndependent(t *testing.T) {
	root := New(7)
	c1 := root.Fork("users")
	// Consuming randomness from the parent must not change children.
	for i := 0; i < 100; i++ {
		root.Float64()
	}
	c2 := New(7).Fork("users")
	for i := 0; i < 100; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("fork stream not stable at draw %d", i)
		}
	}
}

func TestForkDifferentLabelsDiffer(t *testing.T) {
	root := New(7)
	a := root.Fork("alpha")
	b := root.Fork("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct labels produced %d/100 identical draws", same)
	}
}

func TestForkNDistinctPerEntity(t *testing.T) {
	root := New(99)
	seen := make(map[uint64]bool)
	for i := int64(0); i < 1000; i++ {
		s := root.ForkN("user", i)
		if seen[s.Seed()] {
			t.Fatalf("duplicate child seed for entity %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(5)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f, want ≈0.3", got)
	}
}

func TestIntBetweenBoundsProperty(t *testing.T) {
	s := New(11)
	f := func(lo int8, span uint8) bool {
		l, h := int(lo), int(lo)+int(span)
		v := s.IntBetween(l, h)
		return v >= l && v <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntBetweenPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on hi < lo")
		}
	}()
	New(1).IntBetween(3, 2)
}

func TestNormClamped(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.NormClamped(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("NormClamped out of bounds: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(2, 1.5); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
	}
}

func TestParetoAtLeastXm(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		if v := s.Pareto(5, 1.2); v < 5 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(12)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(7)
	}
	mean := sum / n
	if math.Abs(mean-7) > 0.2 {
		t.Fatalf("Exp(7) sample mean = %.3f, want ≈7", mean)
	}
}

func TestWeightedChoiceRespectsZeros(t *testing.T) {
	s := New(6)
	w := []float64{0, 3, 0, 1}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedChoice(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight index chosen: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[3])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weight ratio = %.2f, want ≈3", ratio)
	}
}

func TestWeightedChoicePanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on zero total weight")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestWeightedChoiceNegativeTreatedAsZero(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		if got := s.WeightedChoice([]float64{-5, 1}); got != 1 {
			t.Fatalf("negative weight chosen, got index %d", got)
		}
	}
}

func TestSampleIntsProperties(t *testing.T) {
	s := New(10)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		out := s.SampleInts(n, k)
		if len(out) != k {
			return false
		}
		seen := make(map[int]bool, k)
		prev := -1
		for _, v := range out {
			if v < 0 || v >= n || seen[v] || v <= prev {
				return false
			}
			seen[v] = true
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsFullRange(t *testing.T) {
	s := New(10)
	out := s.SampleInts(10, 10)
	for i, v := range out {
		if v != i {
			t.Fatalf("SampleInts(10,10) = %v, want identity", out)
		}
	}
}

func TestSampleIntsUniformity(t *testing.T) {
	// Each element of [0,20) should appear in a 5-element sample with
	// probability 1/4.
	s := New(21)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleInts(20, 5) {
			counts[v]++
		}
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.25) > 0.02 {
			t.Fatalf("element %d inclusion freq %.3f, want ≈0.25", i, got)
		}
	}
}

func TestSampleIntsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for k > n")
		}
	}()
	New(1).SampleInts(3, 4)
}

func TestScreenNameShape(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		name := s.ScreenName()
		if len(name) < 6 || len(name) > 14 {
			t.Fatalf("screen name length %d out of [6,14]: %q", len(name), name)
		}
		for j := 0; j < len(name); j++ {
			c := name[j]
			ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("invalid character %q in screen name %q", c, name)
			}
		}
		if name[0] >= '0' && name[0] <= '9' {
			t.Fatalf("screen name starts with digit: %q", name)
		}
	}
}

func TestZipfInRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		if v := s.Zipf(1.5, 100); v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// TestSeedForMatchesFNV pins the inlined FNV-64a fold to the stdlib
// implementation: derived seeds are persisted (every account record stores
// one), so the fold must stay bit-identical across refactors.
func TestSeedForMatchesFNV(t *testing.T) {
	ref := func(seed uint64, n *int64, label string) uint64 {
		h := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(seed >> (8 * i))
		}
		_, _ = h.Write(buf[:])
		if n != nil {
			for i := 0; i < 8; i++ {
				buf[i] = byte(uint64(*n) >> (8 * i))
			}
			_, _ = h.Write(buf[:])
		}
		_, _ = h.Write([]byte(label))
		return h.Sum64()
	}
	seeds := []uint64{0, 1, 42, 1<<63 + 12345, ^uint64(0)}
	ns := []int64{0, 1, -1, 999999, 1 << 40}
	labels := []string{"", "user", "timeline", "a much longer label with spaces"}
	for _, seed := range seeds {
		src := New(seed)
		for _, label := range labels {
			if got, want := src.SeedFor(label), ref(seed, nil, label); got != want {
				t.Errorf("SeedFor(%d, %q) = %d, want %d", seed, label, got, want)
			}
			for _, n := range ns {
				n := n
				if got, want := src.SeedForN(label, n), ref(seed, &n, label); got != want {
					t.Errorf("SeedForN(%d, %q, %d) = %d, want %d", seed, label, n, got, want)
				}
			}
		}
	}
}

// TestSeedForDoesNotAllocate guards the account-creation hot path: one
// derived seed per created account must not mean one heap allocation per
// created account.
func TestSeedForDoesNotAllocate(t *testing.T) {
	src := New(7)
	if avg := testing.AllocsPerRun(1000, func() {
		_ = src.SeedFor("user")
		_ = src.SeedForN("user", 12345)
	}); avg != 0 {
		t.Fatalf("SeedFor/SeedForN allocate %.1f times per call, want 0", avg)
	}
}

// TestHashStringMatchesFNV pins the exported string hash to the stdlib.
func TestHashStringMatchesFNV(t *testing.T) {
	for _, s := range []string{"", "a", "genpop_target", "une assez longue chaîne"} {
		h := fnv.New64a()
		_, _ = h.Write([]byte(s))
		if got, want := HashString(s), h.Sum64(); got != want {
			t.Errorf("HashString(%q) = %d, want %d", s, got, want)
		}
	}
}
