// Package benchjson emits machine-readable benchmark results. The bench
// suites of the serving subsystems expose a guarded test (run with
// BENCH_JSON=<dir> go test -run BenchJSON <pkg>) that executes their
// representative benchmarks through testing.Benchmark and writes a
// BENCH_<component>.json file CI can archive and diff across commits —
// regressions in the hot paths become data, not anecdotes.
//
// Two result shapes share the format: micro-benchmarks (Measure, filling
// the ns/op and alloc columns) and end-to-end measurements (cmd/loadd,
// filling Metrics with latency percentiles and throughput). Read loads an
// emitted file back, and Merge folds several component files into one
// artifact with stable ordering, so CI can diff a single combined document
// across commits.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// EnvVar names the environment variable that enables emission; its value
// is the output directory ("." works).
const EnvVar = "BENCH_JSON"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries free-form named measurements that do not fit the
	// ns/op columns — latency percentiles, throughput, error counts.
	// encoding/json marshals map keys in sorted order, so emitted files
	// diff cleanly across commits regardless of insertion order.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted document.
type File struct {
	Component   string   `json:"component"`
	GeneratedAt string   `json:"generated_at"`
	Results     []Result `json:"results"`
	// Config records the exact run configuration that produced the results
	// (flags, mixes, store shape), so an archived artifact is reproducible
	// and two artifacts are comparable or provably not.
	Config map[string]any `json:"config,omitempty"`
}

// Enabled reports whether emission was requested via the environment.
func Enabled() bool { return os.Getenv(EnvVar) != "" }

// Measure runs fn through testing.Benchmark and records it under name.
func Measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// Write stores results as BENCH_<component>.json in the directory named by
// the environment variable and returns the path.
func Write(component string, results []Result) (string, error) {
	dir := os.Getenv(EnvVar)
	if dir == "" {
		return "", fmt.Errorf("benchjson: %s not set", EnvVar)
	}
	path := filepath.Join(dir, "BENCH_"+component+".json")
	doc := File{
		Component: component,
		//fp:allow walltime report files are stamped with real generation time
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Results:     results,
	}
	return path, WriteFile(path, doc)
}

// WriteFile stores a document at an explicit path, for emitters that are
// not gated on the environment variable (cmd/loadd's -out flag).
func WriteFile(path string, doc File) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads a previously emitted document.
func Read(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return File{}, fmt.Errorf("benchjson: decoding %s: %w", path, err)
	}
	return doc, nil
}

// Merge folds several component documents into one artifact under the given
// component name. Every result is prefixed with its source component
// ("auditd/BenchmarkCached...") and the combined list is sorted by name, so
// the merged file's ordering is independent of the input file order and
// diffs cleanly in CI. GeneratedAt is the newest stamp among the inputs,
// keeping Merge itself deterministic.
func Merge(component string, files ...File) File {
	out := File{Component: component}
	for _, f := range files {
		if f.GeneratedAt > out.GeneratedAt {
			out.GeneratedAt = f.GeneratedAt
		}
		for _, r := range f.Results {
			if f.Component != "" {
				r.Name = f.Component + "/" + r.Name
			}
			out.Results = append(out.Results, r)
		}
		if f.Config != nil {
			if out.Config == nil {
				out.Config = make(map[string]any)
			}
			out.Config[f.Component] = f.Config
		}
	}
	sort.SliceStable(out.Results, func(i, j int) bool {
		return out.Results[i].Name < out.Results[j].Name
	})
	return out
}
