// Package benchjson emits machine-readable benchmark results. The bench
// suites of the serving subsystems expose a guarded test (run with
// BENCH_JSON=<dir> go test -run BenchJSON <pkg>) that executes their
// representative benchmarks through testing.Benchmark and writes a
// BENCH_<component>.json file CI can archive and diff across commits —
// regressions in the hot paths become data, not anecdotes.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// EnvVar names the environment variable that enables emission; its value
// is the output directory ("." works).
const EnvVar = "BENCH_JSON"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the emitted document.
type File struct {
	Component   string   `json:"component"`
	GeneratedAt string   `json:"generated_at"`
	Results     []Result `json:"results"`
}

// Enabled reports whether emission was requested via the environment.
func Enabled() bool { return os.Getenv(EnvVar) != "" }

// Measure runs fn through testing.Benchmark and records it under name.
func Measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// Write stores results as BENCH_<component>.json in the directory named by
// the environment variable and returns the path.
func Write(component string, results []Result) (string, error) {
	dir := os.Getenv(EnvVar)
	if dir == "" {
		return "", fmt.Errorf("benchjson: %s not set", EnvVar)
	}
	path := filepath.Join(dir, "BENCH_"+component+".json")
	doc := File{
		Component:   component,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Results:     results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
