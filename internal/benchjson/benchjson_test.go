package benchjson

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleFile(component string) File {
	return File{
		Component:   component,
		GeneratedAt: "2026-07-29T12:00:00Z",
		Results: []Result{
			{Name: "BenchmarkB", N: 100, NsPerOp: 1234.5, AllocsPerOp: 3, BytesPerOp: 64},
			{Name: "BenchmarkA", N: 10, NsPerOp: 9.5,
				Metrics: map[string]float64{"p99_ns": 1500, "errors": 0, "throughput_rps": 812.5}},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(EnvVar, dir)
	if !Enabled() {
		t.Fatal("Enabled() = false with env set")
	}
	want := sampleFile("roundtrip")
	path, err := Write("roundtrip", want.Results)
	if err != nil {
		t.Fatal(err)
	}
	if path != filepath.Join(dir, "BENCH_roundtrip.json") {
		t.Fatalf("unexpected path %q", path)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Component != "roundtrip" || got.GeneratedAt == "" {
		t.Fatalf("header lost in transit: %+v", got)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("results lost in transit:\n got %+v\nwant %+v", got.Results, want.Results)
	}
}

func TestWriteFileExplicitPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if err := WriteFile(path, sampleFile("e2e")); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Component != "e2e" || len(got.Results) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted garbage")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Read accepted a missing file")
	}
}

// TestMerge folds two emitters into one artifact: results are prefixed with
// their source component and sorted by name regardless of input order.
func TestMerge(t *testing.T) {
	a, b := sampleFile("auditd"), sampleFile("twitterapi")
	b.GeneratedAt = "2026-07-29T13:00:00Z"

	merged := Merge("all", a, b)
	if merged.Component != "all" {
		t.Fatalf("component = %q", merged.Component)
	}
	if merged.GeneratedAt != "2026-07-29T13:00:00Z" {
		t.Fatalf("GeneratedAt = %q, want the newest input stamp", merged.GeneratedAt)
	}
	var names []string
	for _, r := range merged.Results {
		names = append(names, r.Name)
	}
	want := []string{
		"auditd/BenchmarkA", "auditd/BenchmarkB",
		"twitterapi/BenchmarkA", "twitterapi/BenchmarkB",
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("merged names = %v, want %v", names, want)
	}

	// Input order must not matter beyond the per-component prefix sort.
	flipped := Merge("all", b, a)
	if !reflect.DeepEqual(merged.Results, flipped.Results) {
		t.Fatal("merge result depends on input file order")
	}
}

// TestStableKeyOrdering pins the property CI diffs rely on: the Metrics map
// marshals with sorted keys, so two semantically equal documents produce
// byte-identical JSON no matter the map's insertion order.
func TestStableKeyOrdering(t *testing.T) {
	r1 := Result{Name: "x", Metrics: map[string]float64{}}
	r2 := Result{Name: "x", Metrics: map[string]float64{}}
	keys := []string{"p50_ns", "p999_ns", "errors", "throughput_rps", "p90_ns", "max_ns"}
	for i, k := range keys {
		r1.Metrics[k] = float64(i)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		r2.Metrics[keys[i]] = float64(i)
	}
	b1, err := json.Marshal(File{Component: "c", Results: []Result{r1}})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(File{Component: "c", Results: []Result{r2}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("marshalled bytes depend on insertion order:\n%s\n%s", b1, b2)
	}
}
