package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// users/lookup scatter-gather. A batch lookup names accounts across the
// whole ring, so the router splits the ID list by slot owner, fans the
// subsets out in parallel (each subset with the usual failover/hedge
// machinery), and merges the answers back into the exact byte shape a
// single node would have produced: input order preserved, duplicates
// preserved, unknown IDs silently dropped. The merge is a pure function
// (mergeLookup) so fuzzing can hammer it without sockets.

// lookupBatchCap mirrors twitterapi.UsersLookupBatchSize. Duplicated by
// value, not import: the router is deliberately a leaf that speaks only
// the wire protocol, and the batch size is wire-visible contract (the
// "too many ids" error), not implementation detail.
const lookupBatchCap = 100

// serveLookup routes users/lookup: single-owner batches forward whole,
// multi-owner batches scatter-gather.
func (rt *Router) serveLookup(w http.ResponseWriter, r *http.Request) {
	ids, ok := parseIDList(r.URL.Query().Get("user_id"))
	if !ok {
		// Missing, malformed or oversized list: every node emits the
		// identical error, so let one say it.
		rt.serveAny(w, r)
		return
	}

	// Group positions by owning backend, first-appearance order.
	groupOf := make([]int, len(ids))
	var owners []int
	ownerGroup := make(map[int]int, len(rt.backends))
	for i, id := range ids {
		o := rt.ring.Owner(rt.ring.Slot(id))
		g, seen := ownerGroup[o]
		if !seen {
			g = len(owners)
			ownerGroup[o] = g
			owners = append(owners, o)
		}
		groupOf[i] = g
	}

	if len(owners) == 1 {
		primary, secondary := rt.holders(rt.ring.Slot(ids[0]))
		resp, err := rt.do(r.Context(), r, primary, secondary, true)
		rt.reply(w, resp, err)
		return
	}
	incr(rt.m.scatter)

	// Build one sub-request per owner carrying its subset of the ID list
	// (subset order = input order, duplicates kept — the backend's own
	// order/duplicate handling then lines up with the merge).
	subIDs := make([][]string, len(owners))
	for i, id := range ids {
		subIDs[groupOf[i]] = append(subIDs[groupOf[i]], strconv.FormatInt(id, 10))
	}
	type part struct {
		resp *upstreamResponse
		err  error
	}
	parts := make([]part, len(owners))
	var wg sync.WaitGroup
	for g, owner := range owners {
		q := r.URL.Query()
		q.Set("user_id", strings.Join(subIDs[g], ","))
		sub, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			pathUsersLookup+"?"+q.Encode(), nil)
		if err != nil {
			parts[g] = part{nil, err}
			continue
		}
		sub.Header = r.Header.Clone()
		primary := rt.backends[owner]
		var secondary *backend
		if s := (owner + len(rt.backends) - 1) % len(rt.backends); s != owner {
			secondary = rt.backends[s]
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := rt.do(sub.Context(), sub, primary, secondary, true)
			parts[g] = part{resp, err}
		}(g)
	}
	wg.Wait()

	bodies := make([][]byte, len(owners))
	for g := range parts {
		if parts[g].err != nil || parts[g].resp == nil {
			rt.overCapacity(w)
			return
		}
		if parts[g].resp.status != http.StatusOK {
			// A 429 (or any backend-spoken refusal) on any shard refuses
			// the whole batch, exactly as a single node would have.
			rt.reply(w, parts[g].resp, nil)
			return
		}
		bodies[g] = parts[g].resp.body
	}

	merged, err := mergeLookup(ids, groupOf, bodies)
	if err != nil {
		rt.overCapacity(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(merged)
}

// parseIDList mirrors the backend's user_id list parsing (split on comma,
// trim space, base-10) plus its size gate. ok=false means the backend
// would reject the request — the router then forwards it untouched so the
// client sees the backend's canonical error bytes.
func parseIDList(raw string) ([]int64, bool) {
	if raw == "" {
		return nil, false
	}
	parts := strings.Split(raw, ",")
	if len(parts) > lookupBatchCap {
		return nil, false
	}
	ids := make([]int64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, false
		}
		ids = append(ids, v)
	}
	return ids, true
}

// mergeLookup reassembles scattered users/lookup responses. ids is the
// client's full list in order, groupOf[i] the body index serving ids[i],
// bodies the per-group JSON arrays. Each backend returns, for its subset,
// an in-order subsequence (unknown IDs dropped), so the merge walks the
// client's list and pops a group's head element exactly when its id
// matches — preserving order and duplicates, never duplicating an element,
// and dropping IDs no backend answered for. The output is byte-compatible
// with a single node's encoder: compact elements, "[]" when empty,
// trailing newline.
func mergeLookup(ids []int64, groupOf []int, bodies [][]byte) ([]byte, error) {
	if len(groupOf) != len(ids) {
		return nil, errMergeShape
	}
	elems := make([][]json.RawMessage, len(bodies))
	heads := make([][]int64, len(bodies))
	for g, body := range bodies {
		var raw []json.RawMessage
		if err := json.Unmarshal(body, &raw); err != nil {
			return nil, err
		}
		hs := make([]int64, len(raw))
		for i, e := range raw {
			var u struct {
				ID int64 `json:"id"`
			}
			if err := json.Unmarshal(e, &u); err != nil {
				return nil, err
			}
			hs[i] = u.ID
		}
		elems[g] = raw
		heads[g] = hs
	}
	next := make([]int, len(bodies))
	var out bytes.Buffer
	out.WriteByte('[')
	n := 0
	for i, id := range ids {
		g := groupOf[i]
		if g < 0 || g >= len(bodies) {
			return nil, errMergeShape
		}
		if next[g] < len(elems[g]) && heads[g][next[g]] == id {
			if n > 0 {
				out.WriteByte(',')
			}
			out.Write(bytes.TrimSpace(elems[g][next[g]]))
			next[g]++
			n++
		}
	}
	out.WriteString("]\n")
	return out.Bytes(), nil
}

var errMergeShape = errors.New("router: merge shape mismatch")
