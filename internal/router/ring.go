package router

// The ring maps account IDs to backends in two steps: an ID hashes to one
// of a fixed number of slots ((id-1) mod Slots — the same round-robin the
// store's own shards use, so dense IDs spread uniformly), and the slots are
// partitioned into contiguous ranges, one per backend. Node i owns slots
// [i*Slots/N, (i+1)*Slots/N) and additionally replicates its successor's
// range, so every slot has a primary and (for N > 1) a distinct secondary
// holder. Fixing the slot count independently of the node count is what
// keeps lookups stable: growing the ring slides range boundaries
// monotonically instead of rehashing the whole ID space.

// DefaultSlots is the default ring slot count. It bounds the maximum node
// count and the granularity of range ownership.
const DefaultSlots = 64

// Ring is the pure slot-assignment math: total (every ID maps to a slot,
// every slot to a node), deterministic, and allocation-free after New.
type Ring struct {
	slots int
	nodes int
	// owner[s] is the primary node of slot s; precomputed so lookups are a
	// table read and arbitrary configurations cannot divide by surprise.
	owner []int
}

// NewRing builds the slot table for nodes backends over the given slot
// count. Out-of-range inputs are clamped (at least one slot, at least one
// node, never more nodes than slots), so any configuration yields a total
// lookup instead of a panic.
func NewRing(slots, nodes int) Ring {
	if slots < 1 {
		slots = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	if nodes > slots {
		nodes = slots
	}
	r := Ring{slots: slots, nodes: nodes, owner: make([]int, slots)}
	for i := 0; i < nodes; i++ {
		lo, hi := i*slots/nodes, (i+1)*slots/nodes
		for s := lo; s < hi; s++ {
			r.owner[s] = i
		}
	}
	return r
}

// Slots returns the ring's slot count.
func (r Ring) Slots() int { return r.slots }

// Nodes returns the ring's node count.
func (r Ring) Nodes() int { return r.nodes }

// Slot maps an account ID to its slot. IDs below 1 never occur for real
// accounts but still map totally (into slot 0's congruence class) so a
// malformed request routes deterministically instead of panicking.
func (r Ring) Slot(id int64) int {
	s := (id - 1) % int64(r.slots)
	if s < 0 {
		s += int64(r.slots)
	}
	return int(s)
}

// Owner returns the primary node of a slot (clamped into range, total).
func (r Ring) Owner(slot int) int {
	if slot < 0 || slot >= r.slots {
		slot = ((slot % r.slots) + r.slots) % r.slots
	}
	return r.owner[slot]
}

// Secondary returns the replica holder of a slot: node i replicates its
// successor's primary range, so the range owned by node j is also held by
// node j-1. With one node, primary and secondary coincide and callers must
// skip hedging and failover.
func (r Ring) Secondary(slot int) int {
	return (r.Owner(slot) + r.nodes - 1) % r.nodes
}

// OwnedRange returns node i's primary slot range [lo, hi).
func (r Ring) OwnedRange(node int) (lo, hi int) {
	node = ((node % r.nodes) + r.nodes) % r.nodes
	return node * r.slots / r.nodes, (node + 1) * r.slots / r.nodes
}

// ReplicatedRange returns the slot range [lo, hi) node i holds as a
// replica: its successor's primary range.
func (r Ring) ReplicatedRange(node int) (lo, hi int) {
	return r.OwnedRange(node + 1)
}

// Keep reports whether node holds an ID's heavy state — its own primary
// range plus the range it replicates. This is the predicate twitterd's
// ring flags feed to the range-snapshot loader.
func (r Ring) Keep(node int, id int64) bool {
	s := r.Slot(id)
	if lo, hi := r.OwnedRange(node); s >= lo && s < hi {
		return true
	}
	lo, hi := r.ReplicatedRange(node)
	return s >= lo && s < hi
}
