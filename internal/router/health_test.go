package router

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"fakeproject/internal/metrics"
)

// flakyBackend serves fastPage-style answers when up and 500s everything
// (the health probe included) when down.
type flakyBackend struct {
	down atomic.Bool
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, "boom", http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/healthz" {
		_, _ = io.WriteString(w, "ok\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, fastPage)
}

func TestEjectionFailoverReadmission(t *testing.T) {
	flaky := &flakyBackend{}
	flaky.down.Store(true)
	primary := httptest.NewServer(flaky)
	defer primary.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, fastPage)
	}))
	defer good.Close()

	rt, err := New(Config{
		Backends:      []string{primary.URL, good.URL},
		Registry:      metrics.NewRegistry(),
		HedgeDelay:    -1, // isolate the failover path
		ProbeInterval: -1, // probes driven by hand below
		FailThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	// Every request while the primary 500s must still answer 200 off the
	// replica — the client never sees the failure.
	get := func() {
		t.Helper()
		resp, err := front.Client().Get(front.URL + "/1.1/followers/ids.json?user_id=1&cursor=-1")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != fastPage {
			t.Fatalf("client saw the failure: HTTP %d %q", resp.StatusCode, body)
		}
	}
	for i := 0; i < 3; i++ {
		get()
	}
	if got := rt.Healthy(); got != 1 {
		t.Fatalf("Healthy() = %d after %d consecutive failures, want ejection", got, 3)
	}
	if got := rt.m.ejections[0].Value(); got != 1 {
		t.Errorf("router_ejections_total{backend=0} = %d, want 1", got)
	}
	if got := rt.m.failovers.Value(); got != 3 {
		t.Errorf("router_failovers_total = %d, want 3", got)
	}

	// Ejected: requests route straight to the replica, no more failovers.
	get()
	if got := rt.m.failovers.Value(); got != 3 {
		t.Errorf("ejected backend still being tried: failovers = %d", got)
	}

	// Probe against a still-down backend: no readmission.
	rt.probeOnce(context.Background())
	if rt.Healthy() != 1 {
		t.Fatal("probe readmitted a backend whose /healthz still fails")
	}

	// Recovery: one successful probe readmits.
	flaky.down.Store(false)
	rt.probeOnce(context.Background())
	if got := rt.Healthy(); got != 2 {
		t.Fatalf("Healthy() = %d after successful probe, want 2", got)
	}
	if got := rt.m.readmissions[0].Value(); got != 1 {
		t.Errorf("router_readmissions_total{backend=0} = %d, want 1", got)
	}
	get()
}

func TestRateLimit429IsNotAFailure(t *testing.T) {
	limited := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "42")
		w.Header().Set("X-Rate-Limit-Reset", "12345")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = io.WriteString(w, `{"errors":[{"code":88,"message":"Rate limit exceeded"}]}`+"\n")
	}))
	defer limited.Close()

	rt, err := New(Config{
		Backends:      []string{limited.URL, limited.URL},
		Registry:      metrics.NewRegistry(),
		HedgeDelay:    -1,
		ProbeInterval: -1,
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	for i := 0; i < 5; i++ {
		resp, err := front.Client().Get(front.URL + "/1.1/followers/ids.json?user_id=1&cursor=-1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("HTTP %d, want the backend's 429 relayed", resp.StatusCode)
		}
		// The rate-limit vocabulary must survive the relay: clients
		// schedule their backoff off these headers.
		if resp.Header.Get("Retry-After") != "42" || resp.Header.Get("X-Rate-Limit-Reset") != "12345" {
			t.Fatalf("rate-limit headers lost in relay: %v", resp.Header)
		}
	}
	if got := rt.Healthy(); got != 2 {
		t.Fatalf("429s ejected a healthy backend: Healthy() = %d", got)
	}
	if got := rt.m.failovers.Value(); got != 0 {
		t.Errorf("429 triggered failover: %d", got)
	}
}
