// Package router is the routing tier of the partitioned multi-node
// deployment: a thin HTTP front that maps each request of the simulated
// Twitter API onto the ring of twitterd backends that actually hold the
// account's state. Ownership endpoints (followers/ids, friends/ids,
// statuses/user_timeline) route by the account ID's ring slot — a
// non-holder would silently serve a synthetic view, so these are never
// load-balanced; users/lookup scatter-gathers across the slot owners and
// merges the responses back into input order; users/show spreads by screen
// name (any node resolves profiles identically — see the range-snapshot
// count folding in internal/twitter).
//
// The tier's whole job is to be invisible: the cross-topology differential
// tests assert that every byte a client observes through the router —
// pages, cursors, profiles, errors — is identical to a single-node
// deployment. On top of that it buys graceful degradation: per-backend
// consecutive-failure ejection with probe-based readmission, transparent
// failover of a failed attempt to the range's replica holder, and hedged
// reads that race a slow primary against the replica after a p99-derived
// delay.
//
// The package stays a stdlib + metrics + simclock leaf (enforced by the
// fpvet layering rule): it speaks to backends over plain HTTP and knows
// nothing about stores, so it fronts any conforming deployment.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/simclock"
)

// The API routes the router understands. Everything else forwards to a
// deterministic healthy backend (all backends answer uniformly for paths
// outside the ownership surface, including 404s).
const (
	pathFollowerIDs  = "/1.1/followers/ids.json"
	pathFriendIDs    = "/1.1/friends/ids.json"
	pathUsersLookup  = "/1.1/users/lookup.json"
	pathUsersShow    = "/1.1/users/show.json"
	pathUserTimeline = "/1.1/statuses/user_timeline.json"
)

// Config shapes a Router.
type Config struct {
	// Backends are the twitterd base URLs in ring order ("http://host:port",
	// no trailing slash required). Backend i owns ring range i.
	Backends []string
	// Slots is the ring slot count (default DefaultSlots). It must match
	// the -ring-slots the backends were brought up with.
	Slots int
	// Clock drives hedge timers, probe pacing and latency measurement
	// (default the real clock).
	Clock simclock.Clock
	// Registry, when non-nil, receives the router metric families.
	Registry *metrics.Registry
	// HedgeDelay fixes the hedge delay; 0 derives it from the observed
	// backend p99 (clamped to [HedgeMin, HedgeMax]); negative disables
	// hedging entirely (failover on hard failure still applies).
	HedgeDelay time.Duration
	// HedgeMin/HedgeMax clamp the adaptive hedge delay (defaults 2ms and
	// 100ms).
	HedgeMin, HedgeMax time.Duration
	// FailThreshold is how many consecutive failures eject a backend
	// (default 3).
	FailThreshold int
	// ProbeInterval paces the readmission probe loop (default 1s; negative
	// disables the loop — tests drive probes directly).
	ProbeInterval time.Duration
	// Transport overrides the upstream transport (tests).
	Transport http.RoundTripper
}

// backend is one ring member and its health state.
type backend struct {
	index int
	base  string // normalised base URL, no trailing slash

	healthy  boolFlag
	fails    intCounter
	healthyG *metrics.IntGauge
}

// Router fronts a ring of twitterd backends. Safe for concurrent use;
// Close stops the probe loop and waits for hedge bookkeeping goroutines.
type Router struct {
	cfg      Config
	ring     Ring
	backends []*backend
	client   *http.Client
	clock    simclock.Clock
	handler  http.Handler

	// names caches screen-name resolutions. Names are immutable and
	// accounts are never deleted, so positive entries never go stale; the
	// cache is dropped wholesale at nameCacheCap to bound memory.
	namesMu sync.RWMutex
	names   map[string]int64

	inflight sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once

	m routerMetrics
}

// routerMetrics bundles the router's metric families; all fields are nil
// when no registry was configured (recorded through nil-safe helpers).
type routerMetrics struct {
	hedges       *metrics.Counter
	hedgeWins    *metrics.Counter
	failovers    *metrics.Counter
	scatter      *metrics.Counter
	ejections    []*metrics.Counter
	readmissions []*metrics.Counter
	upstream     *metrics.Histogram
}

const nameCacheCap = 1 << 16

// New builds a Router over the configured backends and starts its
// readmission probe loop. Callers must Close it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Slots < len(cfg.Backends) {
		return nil, fmt.Errorf("router: %d backends need at least as many ring slots (have %d)", len(cfg.Backends), cfg.Slots)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 2 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 100 * time.Millisecond
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.Slots, len(cfg.Backends)),
		client: &http.Client{Transport: transport},
		clock:  cfg.Clock,
		names:  make(map[string]int64),
		stop:   make(chan struct{}),
	}
	// The upstream latency histogram exists regardless of observability:
	// the adaptive hedge delay reads its p99.
	rt.m.upstream = new(metrics.Histogram)
	for i, base := range cfg.Backends {
		for len(base) > 0 && base[len(base)-1] == '/' {
			base = base[:len(base)-1]
		}
		b := &backend{index: i, base: base}
		b.healthy.set(true)
		rt.backends = append(rt.backends, b)
	}
	rt.observe(cfg.Registry)
	rt.handler = rt.buildHandler(cfg.Registry)
	if cfg.ProbeInterval > 0 {
		rt.inflight.Add(1)
		go rt.probeLoop()
	}
	return rt, nil
}

// observe registers the router metric families into reg (nil = unobserved).
func (rt *Router) observe(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	rt.m.hedges = reg.Counter("router_hedges_total",
		"Hedged duplicate reads issued to a range's replica holder.")
	rt.m.hedgeWins = reg.Counter("router_hedge_wins_total",
		"Hedged reads where the replica answered before the primary.")
	rt.m.failovers = reg.Counter("router_failovers_total",
		"Attempts retried on another holder after a hard backend failure.")
	rt.m.scatter = reg.Counter("router_scatter_requests_total",
		"users/lookup batches split across more than one backend.")
	reg.RegisterHistogram("router_upstream_seconds",
		"Latency of individual upstream backend attempts.", rt.m.upstream)
	for _, b := range rt.backends {
		label := metrics.L("backend", strconv.Itoa(b.index))
		rt.m.ejections = append(rt.m.ejections, reg.Counter("router_ejections_total",
			"Backends ejected after consecutive failures.", label))
		rt.m.readmissions = append(rt.m.readmissions, reg.Counter("router_readmissions_total",
			"Ejected backends readmitted by a successful health probe.", label))
		b.healthyG = reg.IntGauge("router_backend_healthy",
			"Whether the backend is currently routable (1) or ejected (0).", label)
		b.healthyG.Set(1)
	}
}

// buildHandler assembles the routing mux, wrapped in the shared HTTP
// instrumentation when a registry is configured.
func (rt *Router) buildHandler(reg *metrics.Registry) http.Handler {
	type rtRoute struct {
		path     string
		endpoint string
		h        http.HandlerFunc
	}
	routes := []rtRoute{
		{pathFollowerIDs, "followers/ids", rt.serveOwned},
		{pathFriendIDs, "friends/ids", rt.serveOwned},
		{pathUserTimeline, "statuses/user_timeline", rt.serveOwned},
		{pathUsersShow, "users/show", rt.serveShow},
		{pathUsersLookup, "users/lookup", rt.serveLookup},
	}
	mux := http.NewServeMux()
	var plane *metrics.HTTPPlane
	if reg != nil {
		plane = metrics.NewHTTPPlane(reg, "router", rt.clock)
	}
	for _, r := range routes {
		if plane != nil {
			mux.Handle(r.path, plane.WrapFunc(r.endpoint, r.h))
		} else {
			mux.HandleFunc(r.path, r.h)
		}
	}
	// Everything else — unknown paths included — forwards to a
	// deterministic healthy backend so the router stays invisible.
	if plane != nil {
		mux.Handle("/", plane.WrapFunc("other", rt.serveAny))
	} else {
		mux.HandleFunc("/", rt.serveAny)
	}
	return mux
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.handler.ServeHTTP(w, r)
}

// Close stops the probe loop and waits for in-flight hedge and probe
// bookkeeping goroutines (an abandoned real-clock sleep finishes first, so
// Close can take up to one probe interval or hedge delay).
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.inflight.Wait()
	rt.client.CloseIdleConnections()
}

// Healthy counts currently routable backends.
func (rt *Router) Healthy() int {
	n := 0
	for _, b := range rt.backends {
		if b.healthy.get() {
			n++
		}
	}
	return n
}

// Ring exposes the router's slot math (twitterd bring-up shares it).
func (rt *Router) Ring() Ring { return rt.ring }

// holders returns the primary and secondary holder of a slot, with the
// secondary nil when the ring has a single node (nothing to hedge or fail
// over to).
func (rt *Router) holders(slot int) (primary, secondary *backend) {
	primary = rt.backends[rt.ring.Owner(slot)]
	if s := rt.ring.Secondary(slot); s != primary.index {
		secondary = rt.backends[s]
	}
	return primary, secondary
}

// pickAny returns the lowest-indexed healthy backend, or the lowest-indexed
// backend when all are ejected (a last-resort attempt beats a synthesised
// error: the backend may have just recovered).
func (rt *Router) pickAny() *backend {
	for _, b := range rt.backends {
		if b.healthy.get() {
			return b
		}
	}
	return rt.backends[0]
}

// pickAnyExcept is pickAny skipping one backend; it returns nil when no
// other healthy backend exists.
func (rt *Router) pickAnyExcept(not *backend) *backend {
	for _, b := range rt.backends {
		if b != not && b.healthy.get() {
			return b
		}
	}
	return nil
}

// serveAny forwards the request unmodified to a deterministic healthy
// backend — the path for requests whose response is identical on every
// node (malformed parameters, unknown paths).
func (rt *Router) serveAny(w http.ResponseWriter, r *http.Request) {
	b := rt.pickAny()
	resp, err := rt.do(r.Context(), r, b, rt.pickAnyExcept(b), false)
	rt.reply(w, resp, err)
}

// serveOwned routes an ownership endpoint (followers/ids, friends/ids,
// statuses/user_timeline) to the holders of the account's slot. These
// endpoints are never load-balanced: a non-holder would serve a silently
// wrong synthetic view, so a request only ever reaches the range's primary
// or its replica.
func (rt *Router) serveOwned(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if raw := q.Get("user_id"); raw != "" {
		if id, err := strconv.ParseInt(raw, 10, 64); err == nil {
			rt.forwardOwned(w, r, rt.ring.Slot(id))
			return
		}
		// Unparseable user_id: every node produces the identical error.
		rt.serveAny(w, r)
		return
	}
	if name := q.Get("screen_name"); name != "" {
		id, res := rt.resolveName(r.Context(), r, name)
		switch res {
		case resolveOK:
			rt.forwardOwned(w, r, rt.ring.Slot(id))
		case resolveUnknown:
			// The backend emits this endpoint's canonical unknown-name
			// error; names are global, so any node agrees.
			rt.serveAny(w, r)
		default:
			rt.overCapacity(w)
		}
		return
	}
	// Neither parameter: canonical error from any node.
	rt.serveAny(w, r)
}

// forwardOwned sends the request to a slot's primary with failover and
// hedging against the secondary holder.
func (rt *Router) forwardOwned(w http.ResponseWriter, r *http.Request, slot int) {
	primary, secondary := rt.holders(slot)
	if !primary.healthy.get() {
		if secondary != nil && secondary.healthy.get() {
			primary, secondary = secondary, nil
		} else if secondary == nil {
			// Single-node ring: the primary is all there is — try it.
			secondary = nil
		}
	}
	resp, err := rt.do(r.Context(), r, primary, secondary, true)
	rt.reply(w, resp, err)
}

// serveShow spreads users/show by screen name. Profiles are a pure
// function of record and name on every node (see the range-snapshot count
// folding), so any backend is correct; hashing the name keeps the spread
// deterministic and cache-friendly.
func (rt *Router) serveShow(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("screen_name")
	if name == "" {
		rt.serveAny(w, r)
		return
	}
	primary, secondary := rt.holders(rt.nameSlot(name))
	if !primary.healthy.get() {
		if alt := rt.pickAnyExcept(primary); alt != nil {
			primary, secondary = alt, nil
		}
	} else if secondary == nil || !secondary.healthy.get() {
		secondary = rt.pickAnyExcept(primary)
	}
	resp, err := rt.do(r.Context(), r, primary, secondary, true)
	rt.reply(w, resp, err)
}

// nameSlot maps a screen name onto the ring (FNV-1a; any deterministic
// spread works — correctness never depends on where a name lands).
func (rt *Router) nameSlot(name string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum64() % uint64(rt.ring.Slots()))
}

// resolution outcomes of resolveName.
type resolveResult int

const (
	resolveOK      resolveResult = iota // id is valid
	resolveUnknown                      // the name does not exist
	resolveFailed                       // no backend could answer
)

// resolveName turns a screen name into an account ID so an ownership
// endpoint can route by slot. Positive results are cached forever (names
// are immutable and accounts are never deleted). The lookup reuses the
// client's bearer token: on a rate-limited deployment the resolution
// debits the same tenant that asked for it.
func (rt *Router) resolveName(ctx context.Context, orig *http.Request, name string) (int64, resolveResult) {
	rt.namesMu.RLock()
	id, ok := rt.names[name]
	rt.namesMu.RUnlock()
	if ok {
		return id, resolveOK
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		pathUsersShow+"?screen_name="+queryEscape(name), nil)
	if err != nil {
		return 0, resolveFailed
	}
	if auth := orig.Header.Get("Authorization"); auth != "" {
		req.Header.Set("Authorization", auth)
	}
	primary, secondary := rt.holders(rt.nameSlot(name))
	if !primary.healthy.get() {
		if alt := rt.pickAnyExcept(primary); alt != nil {
			primary, secondary = alt, nil
		}
	}
	resp, err := rt.do(ctx, req, primary, secondary, true)
	if err != nil || resp == nil {
		return 0, resolveFailed
	}
	switch {
	case resp.status == http.StatusOK:
		var u struct {
			ID int64 `json:"id"`
		}
		if json.Unmarshal(resp.body, &u) != nil || u.ID < 1 {
			return 0, resolveFailed
		}
		rt.namesMu.Lock()
		if len(rt.names) >= nameCacheCap {
			rt.names = make(map[string]int64)
		}
		rt.names[name] = u.ID
		rt.namesMu.Unlock()
		return u.ID, resolveOK
	case resp.status == http.StatusNotFound:
		return 0, resolveUnknown
	default:
		return 0, resolveFailed
	}
}

// reply writes an upstream response (or the router's own failure) back to
// the client, preserving the status and the headers clients key off.
func (rt *Router) reply(w http.ResponseWriter, resp *upstreamResponse, err error) {
	if err != nil || resp == nil {
		rt.overCapacity(w)
		return
	}
	copyHeader(w.Header(), resp.header)
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// forwardedHeaders are the response headers the router relays: the content
// type plus the rate-limit vocabulary clients schedule around.
var forwardedHeaders = []string{
	"Content-Type",
	"Retry-After",
	"X-Rate-Limit-Remaining",
	"X-Rate-Limit-Reset",
}

func copyHeader(dst, src http.Header) {
	for _, k := range forwardedHeaders {
		if vs := src[k]; len(vs) > 0 {
			dst[k] = vs
		}
	}
}

// overCapacity is the router's own failure answer, shaped like the API's
// error body (code 130 is the platform's "over capacity").
func (rt *Router) overCapacity(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte(`{"errors":[{"code":130,"message":"Over capacity"}]}` + "\n"))
}

// queryEscape escapes a screen name for a query string. Screen names are
// alphanumeric-plus-underscore in the simulated platform, but the router
// must not corrupt arbitrary client input, so escape fully.
func queryEscape(s string) string {
	const hexdigits = "0123456789ABCDEF"
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == '~':
			out = append(out, c)
		default:
			out = append(out, '%', hexdigits[c>>4], hexdigits[c&0xF])
		}
	}
	return string(out)
}
