package router

// The cross-topology differential test: the router's contract is to be
// byte-invisible. One canonical population (a difftest op stream applied
// to a store, snapshotted) is deployed three ways — behind a 1-node, a
// 2-node and a 4-node ring — and every observable a client can reach
// through the router is byte-diffed against a plain single-node server
// over the same snapshot: profiles by name, scattered batch lookups with
// duplicates and unknowns, full follower cursor walks, friends pages,
// timelines, and each endpoint's error bytes. On top of the HTTP surface,
// the range-snapshot exports of every range are compared across all of the
// range's holders (primary, replica, and a node that loaded everything):
// ownership transfer must be verifiable with a plain byte compare.
//
// These are test-only imports of the store and API packages; the router's
// non-test sources stay a stdlib+metrics+simclock leaf (fpvet layering).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitter/difftest"
	"fakeproject/internal/twitterapi"
)

// buildCanonicalSnapshot replays a difftest op stream into a store and
// returns its canonical v5 snapshot bytes.
func buildCanonicalSnapshot(t *testing.T, seed uint64, nops int) []byte {
	t.Helper()
	applier := difftest.NewStoreApplier(seed)
	for _, op := range difftest.Generate(seed, nops) {
		difftest.Apply(applier, op)
	}
	snap, err := applier.Snapshot()
	if err != nil {
		t.Fatalf("snapshotting canonical state: %v", err)
	}
	return snap
}

// newAPIServer boots a twitterd-equivalent node over a store: the API
// plane without rate limits, plus /healthz for the router's probes.
func newAPIServer(store *twitter.Store, clock simclock.Clock) *httptest.Server {
	mux := http.NewServeMux()
	mux.Handle("/", twitterapi.NewServerLimits(twitterapi.NewService(store), clock, nil))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	return httptest.NewServer(mux)
}

type topology struct {
	stores []*twitter.Store
	nodes  []*httptest.Server
	front  *httptest.Server
	rt     *Router
}

func (tp *topology) close() {
	if tp.front != nil {
		tp.front.Close()
	}
	if tp.rt != nil {
		tp.rt.Close()
	}
	for _, n := range tp.nodes {
		n.Close()
	}
}

// bootTopology range-loads one partial store per ring member from snap and
// fronts them with a router.
func bootTopology(t *testing.T, snap []byte, nodes int) *topology {
	t.Helper()
	ring := NewRing(DefaultSlots, nodes)
	tp := &topology{}
	var bases []string
	for i := 0; i < nodes; i++ {
		node := i
		store, err := twitter.ReadSnapshotRange(bytes.NewReader(snap), simclock.NewVirtualAtEpoch(),
			func(id twitter.UserID) bool { return ring.Keep(node, int64(id)) })
		if err != nil {
			tp.close()
			t.Fatalf("range-loading node %d/%d: %v", node, nodes, err)
		}
		srv := newAPIServer(store, simclock.NewVirtualAtEpoch())
		tp.stores = append(tp.stores, store)
		tp.nodes = append(tp.nodes, srv)
		bases = append(bases, srv.URL)
	}
	rt, err := New(Config{
		Backends:      bases,
		HedgeDelay:    -1, // determinism: no duplicate requests
		ProbeInterval: -1,
	})
	if err != nil {
		tp.close()
		t.Fatal(err)
	}
	tp.rt = rt
	tp.front = httptest.NewServer(rt)
	return tp
}

type reply struct {
	status int
	body   []byte
}

func fetch(t *testing.T, client *http.Client, base, path string) reply {
	t.Helper()
	resp, err := client.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return reply{resp.StatusCode, body}
}

func TestCrossTopologyDifferential(t *testing.T) {
	const seed, nops = 20140301, 400
	snap := buildCanonicalSnapshot(t, seed, nops)

	// The single-node truth: a plain server over the full snapshot, no
	// router anywhere near it.
	baseStore, err := twitter.ReadSnapshot(bytes.NewReader(snap), simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}
	baseline := newAPIServer(baseStore, simclock.NewVirtualAtEpoch())
	defer baseline.Close()

	n := baseStore.UserCount()
	if n < 16 {
		t.Fatalf("canonical population has only %d users; op stream too small", n)
	}
	names := make([]string, n+1) // 1-indexed
	for id := 1; id <= n; id++ {
		p, err := baseStore.Profile(twitter.UserID(id))
		if err != nil {
			t.Fatalf("profile %d: %v", id, err)
		}
		names[id] = p.ScreenName
	}

	paths := observablePaths(n, names)
	t.Logf("%d users, %d observable request paths", n, len(paths))

	for _, nodes := range []int{1, 2, 4} {
		nodes := nodes
		t.Run(fmt.Sprintf("ring-%d", nodes), func(t *testing.T) {
			tp := bootTopology(t, snap, nodes)
			defer tp.close()
			client := tp.front.Client()
			mismatches := 0
			for _, path := range paths {
				want := fetch(t, client, baseline.URL, path)
				got := fetch(t, client, tp.front.URL, path)
				if got.status != want.status || !bytes.Equal(got.body, want.body) {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("divergence on %s:\n  single-node: %d %q\n  ring-%d:     %d %q",
							path, want.status, truncate(want.body), nodes, got.status, truncate(got.body))
					}
				}
			}
			if mismatches > 5 {
				t.Errorf("... and %d more divergences", mismatches-5)
			}
			checkRangeExports(t, snap, tp, nodes)
		})
	}
}

// observablePaths enumerates the request surface to byte-diff: every
// account's profile, batch lookups (split across ranges, with duplicates
// and unknowns), full follower walks, friends and timeline pages, and the
// canonical error bytes of each endpoint.
func observablePaths(n int, names []string) []string {
	var paths []string
	add := func(p string) { paths = append(paths, p) }

	// users/show by every name, plus the unknown-name and missing-param
	// error bytes.
	for id := 1; id <= n; id++ {
		add("/1.1/users/show.json?screen_name=" + names[id])
	}
	add("/1.1/users/show.json?screen_name=nosuchuser")
	add("/1.1/users/show.json")

	// users/lookup: all accounts in ring-crossing batches, a batch with
	// duplicates and unknowns, and the three error shapes.
	for lo := 1; lo <= n; lo += 100 {
		hi := lo + 100
		if hi > n+1 {
			hi = n + 1
		}
		ids := make([]string, 0, hi-lo)
		for id := lo; id < hi; id++ {
			ids = append(ids, strconv.Itoa(id))
		}
		add("/1.1/users/lookup.json?user_id=" + strings.Join(ids, ","))
	}
	add(fmt.Sprintf("/1.1/users/lookup.json?user_id=2,2,%d,1,2,%d,1", n+7, n+200))
	add("/1.1/users/lookup.json?user_id=0,-1,1")
	add("/1.1/users/lookup.json")
	add("/1.1/users/lookup.json?user_id=1,x")
	{
		big := make([]string, 101)
		for i := range big {
			big[i] = strconv.Itoa(i + 1)
		}
		add("/1.1/users/lookup.json?user_id=" + strings.Join(big, ","))
	}

	// followers/ids: first page for everyone (non-targets answer the empty
	// page — silently wrong if misrouted, which is the point), by id and by
	// name, plus error bytes.
	for id := 1; id <= n; id++ {
		add(fmt.Sprintf("/1.1/followers/ids.json?user_id=%d&cursor=-1", id))
	}
	for id := 1; id <= n; id += 3 {
		add("/1.1/followers/ids.json?screen_name=" + names[id] + "&cursor=-1")
	}
	add(fmt.Sprintf("/1.1/followers/ids.json?user_id=%d&cursor=-1", n+50)) // unknown id
	add("/1.1/followers/ids.json?screen_name=nosuchuser&cursor=-1")
	add("/1.1/followers/ids.json?user_id=1&cursor=abc")
	add("/1.1/followers/ids.json")

	// friends/ids (the synthetic-permutation path) and timelines.
	for id := 1; id <= n; id += 2 {
		add(fmt.Sprintf("/1.1/friends/ids.json?user_id=%d&cursor=-1", id))
	}
	for id := 1; id <= n; id++ {
		add(fmt.Sprintf("/1.1/statuses/user_timeline.json?user_id=%d&count=200", id))
	}
	add(fmt.Sprintf("/1.1/statuses/user_timeline.json?user_id=%d&count=5", 1))

	// Unrouted paths forward deterministically too.
	add("/1.1/no/such/endpoint.json")
	return paths
}

// walkFollowers follows a full cursor walk through base and returns every
// page's body in order.
func walkFollowers(t *testing.T, client *http.Client, base string, id int) []reply {
	t.Helper()
	var pages []reply
	cursor := int64(-1)
	for {
		r := fetch(t, client, base, fmt.Sprintf("/1.1/followers/ids.json?user_id=%d&cursor=%d", id, cursor))
		pages = append(pages, r)
		if r.status != http.StatusOK {
			return pages
		}
		var page struct {
			NextCursor int64 `json:"next_cursor"`
		}
		if err := json.Unmarshal(r.body, &page); err != nil {
			t.Fatalf("decoding page: %v", err)
		}
		if page.NextCursor == 0 {
			return pages
		}
		cursor = page.NextCursor
		if len(pages) > 10000 {
			t.Fatal("cursor walk did not terminate")
		}
	}
}

// TestCrossTopologyCursorWalks byte-diffs complete multi-page follower
// walks (the hot accounts) through each ring against the single node.
func TestCrossTopologyCursorWalks(t *testing.T) {
	const seed, nops = 77, 400
	snap := buildCanonicalSnapshot(t, seed, nops)
	baseStore, err := twitter.ReadSnapshot(bytes.NewReader(snap), simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}
	baseline := newAPIServer(baseStore, simclock.NewVirtualAtEpoch())
	defer baseline.Close()

	// The generator concentrates follows on the head IDs: walk those.
	hot := []int{1, 2, 3, 4}
	for _, nodes := range []int{1, 2, 4} {
		tp := bootTopology(t, snap, nodes)
		client := tp.front.Client()
		for _, id := range hot {
			want := walkFollowers(t, client, baseline.URL, id)
			got := walkFollowers(t, client, tp.front.URL, id)
			if len(got) != len(want) {
				t.Errorf("ring-%d: id %d walk has %d pages, single-node %d", nodes, id, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i].status != want[i].status || !bytes.Equal(got[i].body, want[i].body) {
					t.Errorf("ring-%d: id %d page %d diverged:\n  want %d %q\n  got  %d %q",
						nodes, id, i, want[i].status, truncate(want[i].body), got[i].status, truncate(got[i].body))
				}
			}
		}
		tp.close()
	}
}

// checkRangeExports verifies ownership transfer: for every ring range, the
// range snapshot exported by its primary holder, its replica holder and a
// keep-everything store are byte-identical.
func checkRangeExports(t *testing.T, snap []byte, tp *topology, nodes int) {
	t.Helper()
	// A keep-all range-load (folded like the nodes, holding every target).
	full, err := twitter.ReadSnapshotRange(bytes.NewReader(snap), simclock.NewVirtualAtEpoch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(DefaultSlots, nodes)
	export := func(s *twitter.Store, owner int) []byte {
		lo, hi := ring.OwnedRange(owner)
		var buf bytes.Buffer
		err := s.WriteSnapshotRange(&buf, func(id twitter.UserID) bool {
			slot := ring.Slot(int64(id))
			return slot >= lo && slot < hi
		})
		if err != nil {
			t.Fatalf("range export: %v", err)
		}
		return buf.Bytes()
	}
	for owner := 0; owner < nodes; owner++ {
		fromPrimary := export(tp.stores[owner], owner)
		fromFull := export(full, owner)
		if !bytes.Equal(fromPrimary, fromFull) {
			t.Errorf("ring-%d: range %d export differs between its primary and a full store (%d vs %d bytes)",
				nodes, owner, len(fromPrimary), len(fromFull))
		}
		if nodes > 1 {
			replica := (owner + nodes - 1) % nodes
			fromReplica := export(tp.stores[replica], owner)
			if !bytes.Equal(fromPrimary, fromReplica) {
				t.Errorf("ring-%d: range %d export differs between primary %d and replica %d (%d vs %d bytes)",
					nodes, owner, owner, replica, len(fromPrimary), len(fromReplica))
			}
		}
	}
}

func truncate(b []byte) string {
	if len(b) > 160 {
		return string(b[:160]) + "..."
	}
	return string(b)
}
