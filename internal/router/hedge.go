package router

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"

	"fakeproject/internal/metrics"
)

// Request execution: every routed request runs through do(), which knows
// three tricks for hiding a sick backend from the client:
//
//   - failover — a hard failure (transport error or 5xx) retries once on
//     the secondary holder before anything reaches the client;
//   - hedging — if the primary is merely slow, a duplicate fires at the
//     secondary after the hedge delay and the first good answer wins;
//   - pass-through otherwise — a 2xx/3xx/4xx (429 included) is the backend
//     speaking and is relayed verbatim.
//
// The hedge delay tracks the fleet: with no explicit override it is the
// observed p99 of upstream attempts, clamped to [HedgeMin, HedgeMax], so
// roughly 1% of reads hedge — the classic tail-at-scale dial.

// upstreamResponse is one backend's buffered answer. Bodies are small
// (bounded pages) so buffering is what makes racing two attempts safe: the
// loser's connection can be torn down without corrupting the winner.
type upstreamResponse struct {
	status int
	header http.Header
	body   []byte
}

// hedgeDefault is the hedge delay used before enough samples accumulate.
const hedgeDefault = 10 * time.Millisecond

// hedgeWarmup is how many upstream samples the p99 needs before it drives
// the hedge delay.
const hedgeWarmup = 100

// do executes orig against primary, failing over and (when canHedge)
// hedging to secondary. It returns the winning upstream response; a nil
// response with an error means no backend produced an HTTP answer at all.
func (rt *Router) do(ctx context.Context, orig *http.Request, primary, secondary *backend, canHedge bool) (*upstreamResponse, error) {
	var body []byte
	if orig.Body != nil {
		body, _ = io.ReadAll(orig.Body)
		orig.Body.Close()
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	type result struct {
		resp *upstreamResponse
		err  error
		from *backend
	}
	// Buffered to the maximum attempt count so abandoned attempts never
	// block on send and the inflight WaitGroup always drains.
	resCh := make(chan result, 2)
	launch := func(b *backend) {
		rt.inflight.Add(1)
		go func() {
			defer rt.inflight.Done()
			resp, err := rt.attempt(ctx, orig, b, body)
			resCh <- result{resp, err, b}
		}()
	}

	launch(primary)
	pending := 1
	triedSecondary := secondary == nil

	var hedgeCh chan struct{}
	if canHedge && !triedSecondary && rt.cfg.HedgeDelay >= 0 {
		hedgeCh = make(chan struct{}, 1)
		delay := rt.hedgeDelay()
		rt.inflight.Add(1)
		go func() {
			defer rt.inflight.Done()
			rt.clock.Sleep(delay)
			hedgeCh <- struct{}{}
		}()
	}
	hedged := false

	var fallback *upstreamResponse // best bad answer, relayed if nothing wins
	var lastErr error
	for pending > 0 {
		select {
		case <-hedgeCh:
			hedgeCh = nil
			if !triedSecondary && secondary.healthy.get() {
				triedSecondary, hedged = true, true
				incr(rt.m.hedges)
				launch(secondary)
				pending++
			}
		case r := <-resCh:
			pending--
			if r.err == nil && r.resp.status < http.StatusInternalServerError {
				if hedged && r.from == secondary {
					incr(rt.m.hedgeWins)
				}
				return r.resp, nil
			}
			if r.err != nil {
				lastErr = r.err
			} else if fallback == nil {
				fallback = r.resp
			}
			if !triedSecondary {
				triedSecondary = true
				incr(rt.m.failovers)
				launch(secondary)
				pending++
			}
		}
	}
	if fallback != nil {
		// Both attempts answered 5xx: relay the backend's words rather than
		// inventing our own.
		return fallback, nil
	}
	return nil, lastErr
}

// attempt runs one upstream request against b, buffering the body and
// feeding latency and health bookkeeping.
func (rt *Router) attempt(ctx context.Context, orig *http.Request, b *backend, body []byte) (*upstreamResponse, error) {
	var br io.Reader
	if body != nil {
		br = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, orig.Method, b.base+orig.URL.RequestURI(), br)
	if err != nil {
		return nil, err
	}
	req.Header = orig.Header.Clone()
	req.Header.Del("Connection")
	start := rt.clock.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		// A loser torn down after the race is decided arrives here with a
		// cancelled context; that is the router's doing, not the backend's
		// — only count failures the backend earned.
		if ctx.Err() == nil {
			rt.onResult(b, 0, err)
		}
		return nil, err
	}
	rb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		if ctx.Err() == nil {
			rt.onResult(b, 0, err)
		}
		return nil, err
	}
	rt.m.upstream.Record(rt.clock.Now().Sub(start))
	rt.onResult(b, resp.StatusCode, nil)
	return &upstreamResponse{status: resp.StatusCode, header: resp.Header, body: rb}, nil
}

// hedgeDelay picks the current hedge delay: the configured override when
// set, else the upstream p99 clamped to [HedgeMin, HedgeMax] once enough
// samples exist, else a conservative default.
func (rt *Router) hedgeDelay() time.Duration {
	if d := rt.cfg.HedgeDelay; d > 0 {
		return d
	}
	h := rt.m.upstream
	if h.Count() < hedgeWarmup {
		return clampDur(hedgeDefault, rt.cfg.HedgeMin, rt.cfg.HedgeMax)
	}
	return clampDur(h.Quantile(0.99), rt.cfg.HedgeMin, rt.cfg.HedgeMax)
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// incr bumps a counter that may be nil (no registry configured).
func incr(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// drainClose discards and closes a response body so the connection can be
// reused.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
