package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestParseIDListMirrorsBackend(t *testing.T) {
	cases := []struct {
		raw  string
		want []int64
		ok   bool
	}{
		{"", nil, false},
		{"1", []int64{1}, true},
		{"1,2,3", []int64{1, 2, 3}, true},
		{" 1 , 2 ", []int64{1, 2}, true},
		{"1,,2", nil, false},
		{"1,x", nil, false},
		{"5,5,5", []int64{5, 5, 5}, true},
		{"-3", []int64{-3}, true},
	}
	for _, c := range cases {
		got, ok := parseIDList(c.raw)
		if ok != c.ok {
			t.Errorf("parseIDList(%q) ok=%v, want %v", c.raw, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseIDList(%q) = %v, want %v", c.raw, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIDList(%q)[%d] = %d, want %d", c.raw, i, got[i], c.want[i])
			}
		}
	}
	// The 100-ID cap is part of the wire contract.
	big := "1"
	for i := 2; i <= 101; i++ {
		big += fmt.Sprintf(",%d", i)
	}
	if _, ok := parseIDList(big); ok {
		t.Error("parseIDList accepted 101 ids; the backend would reject them")
	}
}

// fakeLookupBody renders what a backend returns for a subset: the known
// IDs, in subset order, unknowns dropped, compact elements.
func fakeLookupBody(sub []int64, known func(int64) bool) []byte {
	var b bytes.Buffer
	b.WriteByte('[')
	n := 0
	for _, id := range sub {
		if !known(id) {
			continue
		}
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":%d,"id_str":"%d"}`, id, id)
		n++
	}
	b.WriteString("]\n")
	return b.Bytes()
}

func TestMergeLookupMatchesSingleNode(t *testing.T) {
	known := func(id int64) bool { return id%7 != 0 }
	ids := []int64{1, 40, 2, 2, 14, 41, 3, 77, 40}
	// Two groups split like serveLookup would: ring(64, 2) owners.
	r := NewRing(64, 2)
	groupOf := make([]int, len(ids))
	var subs [2][]int64
	for i, id := range ids {
		g := r.Owner(r.Slot(id))
		groupOf[i] = g
		subs[g] = append(subs[g], id)
	}
	bodies := [][]byte{
		fakeLookupBody(subs[0], known),
		fakeLookupBody(subs[1], known),
	}
	got, err := mergeLookup(ids, groupOf, bodies)
	if err != nil {
		t.Fatal(err)
	}
	want := fakeLookupBody(ids, known) // what one node holding everything says
	if !bytes.Equal(got, want) {
		t.Fatalf("merge mismatch:\n got %s\nwant %s", got, want)
	}
}

// FuzzScatterMerge checks the merge invariants two ways. With well-formed
// per-group bodies derived from the fuzzed ID list, the merge must
// byte-match the single-node rendering (order preserved, duplicates
// preserved, unknowns dropped). With the raw fuzz bytes as bodies, it must
// never panic, and any successful merge must be a valid JSON array that
// uses no source element twice.
func FuzzScatterMerge(f *testing.F) {
	f.Add("1,2,3", uint64(0), []byte(`[{"id":1}]`))
	f.Add("14,7,21,7", uint64(3), []byte(`not json`))
	f.Add("5,5,5,9", uint64(1), []byte(`[{"id":5},{"id":5}]`))
	f.Fuzz(func(t *testing.T, raw string, seed uint64, rawBody []byte) {
		ids, ok := parseIDList(raw)
		if !ok || len(ids) == 0 {
			return
		}
		nodes := int(seed%4) + 1
		r := NewRing(64, nodes)
		known := func(id int64) bool { return (uint64(id)+seed)%3 != 0 }

		// Group exactly like serveLookup: by owner, first appearance order.
		ownerGroup := map[int]int{}
		groupOf := make([]int, len(ids))
		var subs [][]int64
		for i, id := range ids {
			o := r.Owner(r.Slot(id))
			g, seen := ownerGroup[o]
			if !seen {
				g = len(subs)
				ownerGroup[o] = g
				subs = append(subs, nil)
			}
			groupOf[i] = g
			subs[g] = append(subs[g], id)
		}
		bodies := make([][]byte, len(subs))
		for g := range subs {
			bodies[g] = fakeLookupBody(subs[g], known)
		}
		got, err := mergeLookup(ids, groupOf, bodies)
		if err != nil {
			t.Fatalf("well-formed merge failed: %v", err)
		}
		if want := fakeLookupBody(ids, known); !bytes.Equal(got, want) {
			t.Fatalf("merge diverged from single node:\n got %s\nwant %s", got, want)
		}

		// Hostile bodies: same grouping, arbitrary bytes in group 0.
		bodies[0] = rawBody
		out, err := mergeLookup(ids, groupOf, bodies)
		if err != nil {
			return // rejected, fine
		}
		var arr []json.RawMessage
		if jsonErr := json.Unmarshal(out, &arr); jsonErr != nil {
			t.Fatalf("merge of hostile body produced invalid JSON: %v\n%s", jsonErr, out)
		}
		total := 0
		for _, b := range bodies {
			var src []json.RawMessage
			if json.Unmarshal(b, &src) == nil {
				total += len(src)
			}
		}
		if len(arr) > total {
			t.Fatalf("merge emitted %d elements from %d available — duplicated", len(arr), total)
		}
	})
}
