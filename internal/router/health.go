package router

import (
	"context"
	"net/http"
	"sync/atomic"
)

// Backend health: a backend is routable until it fails FailThreshold
// attempts in a row, where a failure is a transport error or a 5xx — a 429
// or any other 4xx is the backend doing its job and never counts. Ejected
// backends are readmitted by the probe loop the moment a GET /healthz
// succeeds; ejection only steers new attempts, it never cancels in-flight
// ones, so a blip costs at most the attempts already racing.

// boolFlag and intCounter are thin atomics named for what they mean here.
type boolFlag struct{ v atomic.Bool }

func (f *boolFlag) get() bool        { return f.v.Load() }
func (f *boolFlag) set(b bool)       { f.v.Store(b) }
func (f *boolFlag) swap(b bool) bool { return f.v.Swap(b) }

type intCounter struct{ v atomic.Int32 }

func (c *intCounter) add() int32 { return c.v.Add(1) }
func (c *intCounter) reset()     { c.v.Store(0) }

// onResult feeds one upstream attempt's outcome into b's health state.
func (rt *Router) onResult(b *backend, status int, err error) {
	if err == nil && status < http.StatusInternalServerError {
		b.fails.reset()
		return
	}
	if int(b.fails.add()) < rt.cfg.FailThreshold {
		return
	}
	if b.healthy.swap(false) {
		// First observer of the threshold crossing records the ejection.
		if rt.m.ejections != nil {
			rt.m.ejections[b.index].Inc()
		}
		if b.healthyG != nil {
			b.healthyG.Set(0)
		}
	}
}

// probeOnce health-checks every ejected backend and readmits the ones that
// answer. Exposed to in-package tests so virtual-clock suites can drive
// readmission without a running probe loop.
func (rt *Router) probeOnce(ctx context.Context) {
	for _, b := range rt.backends {
		if b.healthy.get() {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		drainClose(resp)
		if resp.StatusCode != http.StatusOK {
			continue
		}
		b.fails.reset()
		if !b.healthy.swap(true) {
			if rt.m.readmissions != nil {
				rt.m.readmissions[b.index].Inc()
			}
			if b.healthyG != nil {
				b.healthyG.Set(1)
			}
		}
	}
}

// probeLoop paces probeOnce at ProbeInterval until Close. It runs only on
// a real clock (a virtual clock's Sleep returns immediately and would spin;
// virtual-time tests disable the loop and call probeOnce directly).
func (rt *Router) probeLoop() {
	defer rt.inflight.Done()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-rt.stop
		cancel()
	}()
	for {
		rt.clock.Sleep(rt.cfg.ProbeInterval)
		select {
		case <-rt.stop:
			return
		default:
		}
		rt.probeOnce(ctx)
	}
}
