package router

import "testing"

func TestRingPartition(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 4, 5, 64} {
		r := NewRing(64, nodes)
		// Ranges tile the slot space exactly.
		covered := 0
		for i := 0; i < nodes; i++ {
			lo, hi := r.OwnedRange(i)
			if hi < lo {
				t.Fatalf("nodes=%d: node %d range [%d,%d) inverted", nodes, i, lo, hi)
			}
			covered += hi - lo
			for s := lo; s < hi; s++ {
				if got := r.Owner(s); got != i {
					t.Fatalf("nodes=%d: slot %d owner %d, want %d", nodes, s, got, i)
				}
			}
		}
		if covered != 64 {
			t.Fatalf("nodes=%d: ranges cover %d slots, want 64", nodes, covered)
		}
	}
}

func TestRingSecondaryDistinct(t *testing.T) {
	r := NewRing(64, 4)
	for s := 0; s < 64; s++ {
		if r.Secondary(s) == r.Owner(s) {
			t.Fatalf("slot %d: secondary == owner %d with 4 nodes", s, r.Owner(s))
		}
	}
	// A replica holds exactly its successor's range.
	for i := 0; i < 4; i++ {
		lo, hi := r.OwnedRange((i + 1) % 4)
		for s := lo; s < hi; s++ {
			if r.Secondary(s) != i {
				t.Fatalf("slot %d owned by node %d: secondary %d, want replica %d", s, r.Owner(s), r.Secondary(s), i)
			}
		}
	}
	one := NewRing(64, 1)
	if one.Secondary(7) != one.Owner(7) {
		t.Fatal("single-node ring must collapse secondary onto the owner")
	}
}

func TestRingKeep(t *testing.T) {
	r := NewRing(64, 4)
	for id := int64(1); id <= 256; id++ {
		s := r.Slot(id)
		holders := 0
		for node := 0; node < 4; node++ {
			if r.Keep(node, id) {
				holders++
				if node != r.Owner(s) && node != r.Secondary(s) {
					t.Fatalf("id %d (slot %d) kept by non-holder node %d", id, s, node)
				}
			}
		}
		if holders != 2 {
			t.Fatalf("id %d held by %d nodes, want primary + replica", id, holders)
		}
	}
}

// FuzzRingLookup drives arbitrary ring configurations: construction never
// panics, every lookup is total (slot, owner and secondary in range), and
// growing the ring by one node only slides range boundaries forward —
// owners move monotonically, so a slot never migrates backward past ranges
// the resize did not touch.
func FuzzRingLookup(f *testing.F) {
	f.Add(64, 4, int64(17))
	f.Add(0, 0, int64(-5))
	f.Add(1, 9, int64(1))
	f.Add(1<<16, 1000, int64(1<<40))
	f.Fuzz(func(t *testing.T, slots, nodes int, id int64) {
		if slots > 1<<20 {
			slots = 1 << 20 // keep the owner table allocatable
		}
		r := NewRing(slots, nodes)
		s := r.Slot(id)
		if s < 0 || s >= r.Slots() {
			t.Fatalf("Slot(%d) = %d out of [0,%d)", id, s, r.Slots())
		}
		o := r.Owner(s)
		if o < 0 || o >= r.Nodes() {
			t.Fatalf("Owner(%d) = %d out of [0,%d)", s, o, r.Nodes())
		}
		if sec := r.Secondary(s); sec < 0 || sec >= r.Nodes() {
			t.Fatalf("Secondary(%d) = %d out of [0,%d)", s, sec, r.Nodes())
		}
		if !r.Keep(o, id) {
			t.Fatalf("owner %d does not Keep id %d", o, id)
		}
		if sec := r.Secondary(s); !r.Keep(sec, id) {
			t.Fatalf("secondary %d does not Keep id %d", sec, id)
		}
		// Owner is monotone over slots (contiguous ranges in ring order).
		if s+1 < r.Slots() && r.Owner(s+1) < o {
			t.Fatalf("owner not monotone: slot %d -> %d, slot %d -> %d", s, o, s+1, r.Owner(s+1))
		}
		// Adding one node moves ownership only forward: every slot's owner
		// index grows or stays, and by at most one.
		if r.Nodes() < r.Slots() {
			grown := NewRing(r.Slots(), r.Nodes()+1)
			og := grown.Owner(s)
			if og < o || og > o+1 {
				t.Fatalf("slot %d: owner %d with %d nodes, %d with %d — moved beyond the slid boundary",
					s, o, r.Nodes(), og, grown.Nodes())
			}
		}
	})
}
