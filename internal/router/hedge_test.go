package router

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fakeproject/internal/metrics"
	"fakeproject/internal/simclock"
)

const fastPage = `{"ids":[7],"next_cursor":0,"next_cursor_str":"0","previous_cursor":0,"previous_cursor_str":"0"}` + "\n"

// TestHedgedReadStalledPrimary is the hedged-read regression on a virtual
// clock: the primary holder stalls, so after the configured delay exactly
// one hedge fires at the replica, the replica's answer wins and is relayed
// byte-for-byte, and the stalled loser is torn down without being charged
// a health failure. Close afterwards proves the bookkeeping goroutines all
// drained (the -race leg doubles as the leak check).
func TestHedgedReadStalledPrimary(t *testing.T) {
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // torn down by the router after the race
		case <-time.After(30 * time.Second): // safety net only
		}
	}))
	defer stalled.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, fastPage)
	}))
	defer fast.Close()

	vclock := simclock.NewVirtualAtEpoch()
	reg := metrics.NewRegistry()
	rt, err := New(Config{
		// user_id=1 lands in slot 0: backend 0 (stalled) owns it, backend 1
		// (fast) replicates it.
		Backends:      []string{stalled.URL, fast.URL},
		Clock:         vclock,
		Registry:      reg,
		HedgeDelay:    5 * time.Millisecond,
		ProbeInterval: -1, // a virtual clock would spin the probe loop
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	resp, err := front.Client().Get(front.URL + "/1.1/followers/ids.json?user_id=1&cursor=-1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if string(body) != fastPage {
		t.Fatalf("hedged response not relayed byte-for-byte:\n got %q\nwant %q", body, fastPage)
	}

	if got := rt.m.hedges.Value(); got != 1 {
		t.Errorf("router_hedges_total = %d, want exactly 1", got)
	}
	if got := rt.m.hedgeWins.Value(); got != 1 {
		t.Errorf("router_hedge_wins_total = %d, want 1", got)
	}
	// The hedge timer is the only Sleep in the request path: it must have
	// waited the configured delay, once.
	if got := vclock.Sleeps(); got != 1 {
		t.Errorf("clock saw %d sleeps, want 1 (the hedge timer)", got)
	}
	if got := vclock.Slept(); got != 5*time.Millisecond {
		t.Errorf("clock slept %v, want the configured 5ms hedge delay", got)
	}
	// Losing a hedge is not a health failure: the stalled backend was
	// cancelled by us, not broken.
	if got := rt.Healthy(); got != 2 {
		t.Errorf("Healthy() = %d after hedge, want 2", got)
	}

	// Close waits out the inflight WaitGroup: if the loser's goroutine or
	// the timer leaked, this hangs and the test times out.
	rt.Close()
	if got := rt.backends[0].fails.v.Load(); got != 0 {
		t.Errorf("stalled backend charged %d failures for losing a hedge", got)
	}
}

// TestHedgeDisabled: a negative HedgeDelay must never arm the timer.
func TestHedgeDisabled(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, fastPage)
	}))
	defer fast.Close()

	vclock := simclock.NewVirtualAtEpoch()
	rt, err := New(Config{
		Backends:      []string{fast.URL, fast.URL},
		Clock:         vclock,
		HedgeDelay:    -1,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	resp, err := front.Client().Get(front.URL + "/1.1/followers/ids.json?user_id=1&cursor=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vclock.Sleeps() != 0 {
		t.Errorf("hedging disabled but the timer slept %d times", vclock.Sleeps())
	}
}

// TestAdaptiveHedgeDelay: the delay follows the upstream p99 once warm,
// clamped into [HedgeMin, HedgeMax].
func TestAdaptiveHedgeDelay(t *testing.T) {
	rt, err := New(Config{
		Backends:      []string{"http://127.0.0.1:0"},
		HedgeMin:      2 * time.Millisecond,
		HedgeMax:      50 * time.Millisecond,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if got := rt.hedgeDelay(); got != hedgeDefault {
		t.Errorf("cold hedge delay = %v, want default %v", got, hedgeDefault)
	}
	for i := 0; i < 200; i++ {
		rt.m.upstream.Record(20 * time.Millisecond)
	}
	got := rt.hedgeDelay()
	if got < 2*time.Millisecond || got > 50*time.Millisecond {
		t.Errorf("warm hedge delay %v escaped the clamp", got)
	}
	if got < 15*time.Millisecond {
		t.Errorf("warm hedge delay %v, want ~p99 of the 20ms samples", got)
	}
	for i := 0; i < 2000; i++ {
		rt.m.upstream.Record(500 * time.Millisecond)
	}
	if got := rt.hedgeDelay(); got != 50*time.Millisecond {
		t.Errorf("slow-fleet hedge delay %v, want clamped to HedgeMax", got)
	}
}
