// Package sampling implements the sampling schemes the paper contrasts in
// Section II-D: the statistically sound uniform sample over the whole
// follower list (the Fake Project engine) versus the commercial tools'
// window-limited schemes that only ever consider the newest followers, plus
// the diagnostics that quantify the resulting bias.
//
// All strategies operate on a *newest-first* follower list, because that is
// the order the Twitter API hands out (Section IV-B) and therefore the only
// order any consumer ever observes. Strategies return *indices* into that
// list so that callers can both select the IDs and analyse the positional
// distribution of the sample.
package sampling

import (
	"fmt"

	"fakeproject/internal/drand"
	"fakeproject/internal/stats"
	"fakeproject/internal/twitter"
)

// Strategy draws a sample of positions from a newest-first follower list.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Sample returns up to n distinct indices into a list of the given
	// length, in ascending index order (index 0 = newest follower).
	Sample(listLen, n int, src *drand.Source) []int
}

// Uniform samples uniformly at random over the entire list — the scheme the
// estimator theory of Section II-D assumes ("our engine uses the whole list
// of followers to perform the sampling").
type Uniform struct{}

var _ Strategy = Uniform{}

// Name implements Strategy.
func (Uniform) Name() string { return "uniform" }

// Sample implements Strategy.
func (Uniform) Sample(listLen, n int, src *drand.Source) []int {
	if n >= listLen {
		return identity(listLen)
	}
	return src.SampleInts(listLen, n)
}

// NewestWindow samples uniformly from only the newest Window entries — the
// commercial tools' scheme ("a sample of your follower data, up to 1,000
// records", drawn from the first pages the API returns). When Window >=
// listLen it degenerates to Uniform over the whole list, which is why the
// tools look accurate on small accounts and break on large ones.
type NewestWindow struct {
	// Window is the number of newest followers that are candidates.
	Window int
}

var _ Strategy = NewestWindow{}

// Name implements Strategy.
func (w NewestWindow) Name() string { return fmt.Sprintf("newest-%d", w.Window) }

// Sample implements Strategy.
func (w NewestWindow) Sample(listLen, n int, src *drand.Source) []int {
	window := w.Window
	if window <= 0 || window > listLen {
		window = listLen
	}
	if n >= window {
		return identity(window)
	}
	return src.SampleInts(window, n)
}

// FirstN takes the newest n followers outright (no randomisation at all):
// the degenerate scheme of tools that simply assess the first API pages.
type FirstN struct{}

var _ Strategy = FirstN{}

// Name implements Strategy.
func (FirstN) Name() string { return "first-n" }

// Sample implements Strategy.
func (FirstN) Sample(listLen, n int, _ *drand.Source) []int {
	if n > listLen {
		n = listLen
	}
	return identity(n)
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Select maps sampled indices back to follower IDs.
func Select(newestFirst []twitter.UserID, indices []int) []twitter.UserID {
	out := make([]twitter.UserID, len(indices))
	for i, idx := range indices {
		out[i] = newestFirst[idx]
	}
	return out
}

// Reservoir performs one-pass uniform reservoir sampling (algorithm R) over
// a stream of follower IDs, for pipelines that cannot hold the full list.
type Reservoir struct {
	k    int
	seen int
	buf  []twitter.UserID
	src  *drand.Source
}

// NewReservoir creates a reservoir of capacity k. It panics if k <= 0.
func NewReservoir(k int, src *drand.Source) *Reservoir {
	if k <= 0 {
		panic("sampling: reservoir capacity must be positive")
	}
	return &Reservoir{k: k, buf: make([]twitter.UserID, 0, k), src: src}
}

// Add offers one element to the reservoir.
func (r *Reservoir) Add(id twitter.UserID) {
	r.seen++
	if len(r.buf) < r.k {
		r.buf = append(r.buf, id)
		return
	}
	if j := r.src.Intn(r.seen); j < r.k {
		r.buf[j] = id
	}
}

// Seen reports how many elements have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Sample returns a copy of the current reservoir contents.
func (r *Reservoir) Sample() []twitter.UserID {
	return append([]twitter.UserID(nil), r.buf...)
}

// Bias quantifies how positionally skewed a sample is.
type Bias struct {
	// MeanNormRank is the mean of index/(listLen-1) over the sample:
	// 0.5 for an unbiased sample, ≈0 for a sample of only the newest
	// followers.
	MeanNormRank float64
	// KS is the Kolmogorov-Smirnov distance between the sample's
	// normalised ranks and the Uniform(0,1) distribution: ≈0 when
	// unbiased, →1 as the sample concentrates.
	KS float64
	// Coverage is the fraction of the list's positional range the sample
	// spans: (max-min)/(listLen-1).
	Coverage float64
}

// Diagnose computes bias diagnostics for sampled indices over a list of the
// given length.
func Diagnose(indices []int, listLen int) Bias {
	if len(indices) == 0 || listLen <= 1 {
		return Bias{}
	}
	ranks := make([]float64, len(indices))
	lo, hi := indices[0], indices[0]
	denom := float64(listLen - 1)
	for i, idx := range indices {
		ranks[i] = float64(idx) / denom
		if idx < lo {
			lo = idx
		}
		if idx > hi {
			hi = idx
		}
	}
	return Bias{
		MeanNormRank: stats.Mean(ranks),
		KS:           stats.KSUniform(ranks),
		Coverage:     float64(hi-lo) / denom,
	}
}
