package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"fakeproject/internal/drand"
	"fakeproject/internal/twitter"
)

func TestUniformCoversWholeList(t *testing.T) {
	src := drand.New(1)
	idx := Uniform{}.Sample(100000, 9604, src)
	if len(idx) != 9604 {
		t.Fatalf("sample size = %d", len(idx))
	}
	b := Diagnose(idx, 100000)
	if math.Abs(b.MeanNormRank-0.5) > 0.02 {
		t.Fatalf("uniform MeanNormRank = %.4f, want ≈0.5", b.MeanNormRank)
	}
	if b.KS > 0.02 {
		t.Fatalf("uniform KS = %.4f, want ≈0", b.KS)
	}
	if b.Coverage < 0.99 {
		t.Fatalf("uniform coverage = %.4f, want ≈1", b.Coverage)
	}
}

func TestNewestWindowIsBiased(t *testing.T) {
	// The paper's core argument: a 700-sample from the newest 35,000 of a
	// 500,000-follower list never sees 93% of the population.
	src := drand.New(2)
	idx := NewestWindow{Window: 35000}.Sample(500000, 700, src)
	if len(idx) != 700 {
		t.Fatalf("sample size = %d", len(idx))
	}
	for _, i := range idx {
		if i >= 35000 {
			t.Fatalf("index %d escaped the window", i)
		}
	}
	b := Diagnose(idx, 500000)
	if b.MeanNormRank > 0.05 {
		t.Fatalf("newest-window MeanNormRank = %.4f, want ≈0.035", b.MeanNormRank)
	}
	if b.KS < 0.9 {
		t.Fatalf("newest-window KS = %.4f, want ≈0.93", b.KS)
	}
	if b.Coverage > 0.08 {
		t.Fatalf("newest-window coverage = %.4f, want tiny", b.Coverage)
	}
}

func TestNewestWindowDegeneratesToUniformOnSmallLists(t *testing.T) {
	// "...since 97% of Twitter accounts have less than 5K followers, the
	// analysis of the application should consider a sound sample": when the
	// window exceeds the list, the scheme is unbiased.
	src := drand.New(3)
	idx := NewestWindow{Window: 35000}.Sample(3000, 700, src)
	b := Diagnose(idx, 3000)
	if math.Abs(b.MeanNormRank-0.5) > 0.05 {
		t.Fatalf("MeanNormRank = %.4f, want ≈0.5 on small list", b.MeanNormRank)
	}
}

func TestFirstN(t *testing.T) {
	idx := FirstN{}.Sample(1000, 10, nil)
	for i, v := range idx {
		if v != i {
			t.Fatalf("FirstN must return the newest prefix, got %v", idx)
		}
	}
	idx = FirstN{}.Sample(5, 10, nil)
	if len(idx) != 5 {
		t.Fatalf("FirstN over short list = %d, want 5", len(idx))
	}
}

func TestSampleLargerThanList(t *testing.T) {
	src := drand.New(4)
	for _, s := range []Strategy{Uniform{}, NewestWindow{Window: 50}, FirstN{}} {
		idx := s.Sample(10, 100, src)
		if len(idx) != 10 {
			t.Fatalf("%s over-sampled: %d", s.Name(), len(idx))
		}
	}
}

func TestStrategyProperties(t *testing.T) {
	src := drand.New(5)
	strategies := []Strategy{Uniform{}, NewestWindow{Window: 500}, FirstN{}}
	f := func(lenRaw, nRaw uint16) bool {
		listLen := int(lenRaw%2000) + 1
		n := int(nRaw % 1500)
		for _, s := range strategies {
			idx := s.Sample(listLen, n, src)
			if len(idx) > listLen || (n <= listLen && s.Name() == "uniform" && len(idx) != n) {
				return false
			}
			prev := -1
			for _, v := range idx {
				if v <= prev || v < 0 || v >= listLen {
					return false
				}
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelect(t *testing.T) {
	list := []twitter.UserID{10, 20, 30, 40}
	got := Select(list, []int{0, 2})
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("Select = %v", got)
	}
}

func TestReservoirExactWhenUnderCapacity(t *testing.T) {
	r := NewReservoir(10, drand.New(6))
	for i := twitter.UserID(1); i <= 5; i++ {
		r.Add(i)
	}
	s := r.Sample()
	if len(s) != 5 || r.Seen() != 5 {
		t.Fatalf("reservoir = %v seen %d", s, r.Seen())
	}
}

func TestReservoirUniformInclusion(t *testing.T) {
	// Each of 100 elements should be included in a 10-slot reservoir with
	// probability 0.1.
	counts := make(map[twitter.UserID]int)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(10, drand.New(uint64(trial+1)))
		for i := twitter.UserID(1); i <= 100; i++ {
			r.Add(i)
		}
		for _, id := range r.Sample() {
			counts[id]++
		}
	}
	for id := twitter.UserID(1); id <= 100; id++ {
		freq := float64(counts[id]) / trials
		if math.Abs(freq-0.1) > 0.015 {
			t.Fatalf("element %d inclusion %.4f, want ≈0.1", id, freq)
		}
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewReservoir(0, drand.New(1))
}

func TestDiagnoseEdgeCases(t *testing.T) {
	if b := Diagnose(nil, 100); b != (Bias{}) {
		t.Fatalf("empty diagnose = %+v", b)
	}
	if b := Diagnose([]int{0}, 1); b != (Bias{}) {
		t.Fatalf("single-element list diagnose = %+v", b)
	}
}

func TestSamplesAreDistinct(t *testing.T) {
	src := drand.New(7)
	idx := Uniform{}.Sample(10000, 9604, src)
	seen := make(map[int]bool, len(idx))
	for _, v := range idx {
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
}
