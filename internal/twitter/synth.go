package twitter

import (
	"fmt"
	"hash/fnv"
	"time"

	"fakeproject/internal/drand"
)

// Deterministic content synthesis for procedurally stored accounts. The
// generated artefacts only need to be *feature-faithful*: classifiers look at
// spam phrases, duplicates, retweets, links, mention/hashtag counts and
// timestamps, so the synthesiser guarantees those match the account's stored
// behaviour ratios while the prose itself is boilerplate.

// SpamPhrases are the indicative phrases Socialbakers lists in its public
// methodology ("like diet, make money, work from home").
var SpamPhrases = []string{
	"diet", "make money", "work from home", "earn cash fast",
	"free followers", "lose weight now",
}

var firstNames = []string{
	"alessandro", "giulia", "marco", "francesca", "luca", "sara", "andrea",
	"elena", "davide", "chiara", "john", "mary", "james", "linda", "robert",
	"susan", "pierre", "amelie", "hans", "ingrid",
}

var lastNames = []string{
	"rossi", "bianchi", "ferrari", "russo", "romano", "gallo", "costa",
	"smith", "johnson", "brown", "wilson", "moore", "taylor", "martin",
	"bernard", "dubois", "muller", "schmidt", "novak", "kovacs",
}

var locations = []string{
	"Pisa, Italy", "Roma", "Milano", "London", "New York", "Paris",
	"Berlin", "Madrid", "Tokyo", "Somewhere", "Internet", "Earth",
}

var bioTemplates = []string{
	"love music and football",
	"living the dream, one day at a time",
	"official account. all opinions my own",
	"coffee addict | runner | dreamer",
	"student of life",
	"digital marketing enthusiast",
	"proud parent. amateur cook.",
	"tweets about tech and cats",
}

var genuineTexts = []string{
	"just watched the match, what a game",
	"monday again... need coffee",
	"great dinner with friends tonight",
	"reading a fantastic book, recommendations welcome",
	"this weather is unbelievable",
	"happy birthday to my best friend!",
	"new blog post is up, feedback welcome",
	"can't believe the news today",
	"finally finished that project",
	"weekend plans: absolutely nothing, and it's great",
}

var spamTexts = []string{
	"amazing diet trick doctors hate, click here",
	"make money from home, ask me how",
	"work from home and earn cash fast, limited spots",
	"get free followers instantly, visit now",
	"lose weight now with this one weird tip",
}

// Profile string synthesis runs on the users/lookup hot path (a single FC
// audit materialises ~9,600 profiles), so it must not construct PRNGs:
// seeding one math/rand generator costs a 607-word state initialisation,
// and the old Fork-per-field scheme paid that four times per profile. The
// classifiers only ever read these strings for emptiness — emptiness is
// flag-driven — so the draws below use a cheap hash finaliser instead of a
// rand stream. Content changes cosmetically; no feature or verdict moves.

// synthDraw hashes (seed, salt) into a uniform uint64.
func synthDraw(seed uint64, salt string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(salt))
	// splitmix64 finaliser: fnv alone avalanches poorly in the high bits.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// synthScreenName fabricates a handle (lowercase letters, trailing digits)
// from an account seed.
func synthScreenName(seed uint64) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	x := synthDraw(seed, "name")
	n := 7 + int(x%5)
	b := make([]byte, 0, n+2)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		b = append(b, letters[(x>>33)%26])
	}
	if x&3 == 0 {
		b = append(b, '0'+byte((x>>40)%10), '0'+byte((x>>45)%10))
	}
	return string(b)
}

func humanName(seed uint64) string {
	x := synthDraw(seed, "fullname")
	return firstNames[x%uint64(len(firstNames))] + " " +
		lastNames[(x>>24)%uint64(len(lastNames))]
}

func synthBio(seed uint64) string {
	return bioTemplates[synthDraw(seed, "bio")%uint64(len(bioTemplates))]
}

func synthLocation(seed uint64) string {
	return locations[synthDraw(seed, "loc")%uint64(len(locations))]
}

var tweetSources = []string{"web", "mobile", "api"}

// synthTimeline deterministically generates up to max most-recent-first
// tweets for a compact record. The same (record, max) always yields the same
// tweets. Feature guarantees:
//
//   - the newest tweet is at rec.lastTweetAt;
//   - inter-tweet gaps are exponential with a mean derived from the account's
//     lifetime and status count, so "tweets per day" features are coherent;
//   - retweet/link/spam/duplicate flags appear with the stored ratios;
//   - tweet IDs are unique per author and stable.
func synthTimeline(id UserID, rec *record, max int) []Tweet {
	total := int(rec.statuses)
	if total == 0 || rec.lastTweetAt == 0 {
		return nil
	}
	if max > total {
		max = total
	}
	src := drand.New(uint64(rec.seed)).Fork("timeline")

	// Mean gap spreads the account's statuses over its active life span.
	lifeSeconds := float64(rec.lastTweetAt - rec.createdAt)
	if lifeSeconds < 3600 {
		lifeSeconds = 3600
	}
	meanGap := lifeSeconds / float64(total)
	if meanGap < 30 {
		meanGap = 30
	}

	dupText := spamTexts[src.Intn(len(spamTexts))]
	retweetP := float64(rec.retweetPct) / 100
	linkP := float64(rec.linkPct) / 100
	spamP := float64(rec.spamPct) / 100
	dupP := float64(rec.dupPct) / 100

	out := make([]Tweet, 0, max)
	at := rec.lastTweetAt
	for i := 0; i < max; i++ {
		var text string
		isDup := src.Bool(dupP)
		isSpam := src.Bool(spamP)
		switch {
		case isDup:
			// Intentional duplicates repeat the exact same text — the
			// signal the "same tweets are repeated" criterion looks for.
			text = dupText
		case isSpam:
			// Non-duplicate tweets get a unique suffix so that template
			// reuse never masquerades as the duplication signal.
			text = fmt.Sprintf("%s %d", spamTexts[src.Intn(len(spamTexts))], total-i)
		default:
			text = fmt.Sprintf("%s %d", genuineTexts[src.Intn(len(genuineTexts))], total-i)
		}
		tw := Tweet{
			// Per-author unique, stable ID: author in the high bits, the
			// age index in the low 32. statuses is an int32, so the index
			// can never overflow into the author bits — 20 bits used to,
			// for any account past 1,048,576 statuses (Katy Perry scale),
			// silently colliding with the next author's ID space.
			ID:        TweetID(int64(id)<<32 | int64(total-i)),
			Author:    id,
			CreatedAt: time.Unix(at, 0).UTC(),
			Text:      text,
			IsRetweet: src.Bool(retweetP),
			HasLink:   isSpam || src.Bool(linkP),
			IsReply:   src.Bool(0.15),
			Mentions:  src.Intn(3),
			Hashtags:  src.Intn(3),
			Source:    tweetSources[src.Intn(len(tweetSources))],
		}
		if tw.IsRetweet {
			tw.Text = "RT @" + src.ScreenName() + ": " + tw.Text
		}
		if tw.HasLink {
			tw.Text += fmt.Sprintf(" http://t.co/%08x", src.Intn(1<<30))
		}
		out = append(out, tw)
		gap := int64(src.Exp(meanGap))
		if gap < 1 {
			gap = 1
		}
		// Cap the gap so the tweets still to come share the span left
		// above the account's creation instant, instead of the old clamp
		// that piled every overflowing tweet onto createdAt+1 — a
		// timestamp spike no real timeline exhibits. The budget counts
		// the *full* status count, not the requested max: Timeline(id, k)
		// must stay a timestamp-identical prefix of any deeper read, so
		// the cap cannot depend on how far this caller pages. It may
		// reach 0 (more tweets than seconds of life): timestamps then
		// repeat, which the chronology invariant permits.
		if remaining := int64(total - 1 - i); remaining > 0 {
			if maxGap := (at - (rec.createdAt + 1)) / remaining; gap > maxGap {
				gap = maxGap
				if gap < 0 {
					gap = 0
				}
			}
		}
		at -= gap
		if at <= rec.createdAt {
			at = rec.createdAt + 1
		}
	}
	return out
}
