package twitter

import (
	"errors"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// churnStore builds a target with n followers, one per second.
func churnStore(t *testing.T, n int) (*Store, UserID, []UserID) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	s := NewStore(clock, 1)
	target := s.MustCreateUser(UserParams{ScreenName: "t"})
	at := simclock.Epoch.Add(-time.Duration(n) * time.Second)
	followers := make([]UserID, 0, n)
	for i := 0; i < n; i++ {
		id := s.MustCreateUser(UserParams{})
		if err := s.AddFollower(target, id, at); err != nil {
			t.Fatal(err)
		}
		followers = append(followers, id)
		at = at.Add(time.Second)
	}
	return s, target, followers
}

func TestFollowersPage(t *testing.T) {
	s, target, followers := churnStore(t, 10)
	newest, err := s.FollowersNewestFirst(target)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh target assigns seqs 1..10 in follow order, so anchor seq k
	// serves the k oldest edges newest-first.
	cases := []struct {
		fromSeq  uint64
		limit    int
		want     []UserID
		wantNext uint64
	}{
		{SeqNewest, 3, newest[:3], 7},
		{7, 4, newest[3:7], 3},
		{3, 100, newest[7:], 0},
		{10, 10, newest, 0},
		{0, 5, nil, 0},
		{SeqNewest, 0, nil, 0},
		{SeqNewest, -2, nil, 0},
	}
	for _, c := range cases {
		page, err := s.FollowersPage(target, c.fromSeq, c.limit)
		if err != nil {
			t.Fatalf("FollowersPage(%d, %d): %v", c.fromSeq, c.limit, err)
		}
		if page.Total != 10 {
			t.Fatalf("FollowersPage(%d, %d) total = %d, want 10", c.fromSeq, c.limit, page.Total)
		}
		if page.NextSeq != c.wantNext {
			t.Fatalf("FollowersPage(%d, %d) next = %d, want %d", c.fromSeq, c.limit, page.NextSeq, c.wantNext)
		}
		if len(page.IDs) != len(c.want) {
			t.Fatalf("FollowersPage(%d, %d) = %v, want %v", c.fromSeq, c.limit, page.IDs, c.want)
		}
		for i := range page.IDs {
			if page.IDs[i] != c.want[i] {
				t.Fatalf("FollowersPage(%d, %d)[%d] = %d, want %d", c.fromSeq, c.limit, i, page.IDs[i], c.want[i])
			}
		}
	}
	if _, err := s.FollowersPage(999, SeqNewest, 5); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown target err = %v, want ErrUnknownUser", err)
	}
	// Non-target accounts yield empty pages, matching FollowersNewestFirst.
	if page, err := s.FollowersPage(followers[0], SeqNewest, 5); err != nil || len(page.IDs) != 0 || page.Total != 0 {
		t.Fatalf("non-target page = %+v, %v; want empty", page, err)
	}
}

// TestFollowersPageMatchesFullView cross-checks paged assembly against the
// full-copy accessor on a larger list.
func TestFollowersPageMatchesFullView(t *testing.T) {
	s, target, _ := churnStore(t, 2357)
	newest, err := s.FollowersNewestFirst(target)
	if err != nil {
		t.Fatal(err)
	}
	var paged []UserID
	for from := SeqNewest; ; {
		page, err := s.FollowersPage(target, from, 500)
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != len(newest) {
			t.Fatalf("total = %d, want %d", page.Total, len(newest))
		}
		paged = append(paged, page.IDs...)
		if page.NextSeq == 0 {
			break
		}
		from = page.NextSeq
	}
	if len(paged) != len(newest) {
		t.Fatalf("paged %d followers, want %d", len(paged), len(newest))
	}
	for i := range paged {
		if paged[i] != newest[i] {
			t.Fatalf("paged[%d] = %d, want %d", i, paged[i], newest[i])
		}
	}
}

// TestFollowersPageAnchorsSurviveChurn is the store-level heart of the
// churn-proof contract: an anchor held across arrivals and purges neither
// duplicates nor skips surviving edges, and an anchor whose own edge was
// purged resolves to the next older survivor.
func TestFollowersPageAnchorsSurviveChurn(t *testing.T) {
	s, target, followers := churnStore(t, 9)

	// Read the newest 3 (seqs 9, 8, 7), holding an anchor at seq 6.
	first, err := s.FollowersPage(target, SeqNewest, 3)
	if err != nil || len(first.IDs) != 3 || first.NextSeq != 6 {
		t.Fatalf("first page = %+v, %v", first, err)
	}

	// A purchase burst lands 5 new followers (seqs 10..14)...
	now := s.Now()
	for i := 0; i < 5; i++ {
		id := s.MustCreateUser(UserParams{})
		if err := s.AddFollower(target, id, now); err != nil {
			t.Fatal(err)
		}
	}
	// ...and a purge removes the anchored edge (seq 6) plus one deeper
	// survivor-to-be-skipped check candidate (seq 4).
	if _, err := s.RemoveFollowers(target, []UserID{followers[5], followers[3]}, now); err != nil {
		t.Fatal(err)
	}

	// Resuming at seq 6 serves seq 5 next: no re-serving of the burst
	// (seqs > 6), no skipping of survivors.
	rest, err := s.FollowersPage(target, first.NextSeq, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []UserID{followers[4], followers[2], followers[1], followers[0]}
	if len(rest.IDs) != len(want) {
		t.Fatalf("resumed page = %v, want %v", rest.IDs, want)
	}
	for i := range want {
		if rest.IDs[i] != want[i] {
			t.Fatalf("resumed[%d] = %d, want %d", i, rest.IDs[i], want[i])
		}
	}
	if rest.NextSeq != 0 {
		t.Fatalf("NextSeq = %d, want 0", rest.NextSeq)
	}

	// An anchor below every survivor (everything older purged) is an empty
	// final page, not an error.
	if _, err := s.RemoveFollowers(target, followers[:3], now); err != nil {
		t.Fatal(err)
	}
	empty, err := s.FollowersPage(target, 3, 100)
	if err != nil || len(empty.IDs) != 0 || empty.NextSeq != 0 {
		t.Fatalf("purged-out anchor page = %+v, %v; want empty", empty, err)
	}

	// Seqs are never reused: a refollow gets a fresh anchor above the burst.
	if err := s.AddFollower(target, followers[5], now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	edges, _ := s.FollowEdges(target)
	if got := edges[len(edges)-1].Seq; got != 15 {
		t.Fatalf("refollow seq = %d, want 15", got)
	}
}

func TestRemoveFollowers(t *testing.T) {
	s, target, followers := churnStore(t, 8)
	now := s.Now()

	gone := []UserID{followers[1], followers[4], followers[7], 9999}
	n, err := s.RemoveFollowers(target, gone, now)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("removed %d edges, want 3", n)
	}
	count, _ := s.FollowerCount(target)
	if count != 5 {
		t.Fatalf("FollowerCount = %d, want 5", count)
	}
	// Survivors keep their chronological order.
	chrono, _ := s.FollowersChronological(target)
	want := []UserID{followers[0], followers[2], followers[3], followers[5], followers[6]}
	for i := range chrono {
		if chrono[i] != want[i] {
			t.Fatalf("chrono[%d] = %d, want %d", i, chrono[i], want[i])
		}
	}
	// Profile view follows the live edge list.
	p, _ := s.Profile(target)
	if p.FollowersCount != 5 {
		t.Fatalf("profile followers = %d, want 5", p.FollowersCount)
	}
	// The removal log retains ground truth.
	removed, _ := s.RemovedEdges(target)
	if len(removed) != 3 {
		t.Fatalf("removal log has %d entries, want 3", len(removed))
	}
	for _, r := range removed {
		if !r.At.Equal(now) {
			t.Fatalf("removal at %v, want %v", r.At, now)
		}
	}
	rc, _ := s.RemovedCount(target)
	if rc != 3 {
		t.Fatalf("RemovedCount = %d, want 3", rc)
	}
}

func TestRemoveFollowersMonotonicRemovalTimes(t *testing.T) {
	s, target, followers := churnStore(t, 4)
	now := s.Now()
	if _, err := s.RemoveFollowers(target, followers[:1], now); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveFollowers(target, followers[1:2], now.Add(-time.Hour)); !errors.Is(err, ErrNotMonotonic) {
		t.Fatalf("backwards removal err = %v, want ErrNotMonotonic", err)
	}
	// Equal times are fine (a purge removes a batch in one instant).
	if _, err := s.RemoveFollowers(target, followers[1:2], now); err != nil {
		t.Fatal(err)
	}
}

func TestUnfollowThenRefollow(t *testing.T) {
	s, target, followers := churnStore(t, 3)
	now := s.Now()
	ok, err := s.Unfollow(target, followers[1], now)
	if err != nil || !ok {
		t.Fatalf("Unfollow = %v, %v; want true", ok, err)
	}
	ok, err = s.Unfollow(target, followers[1], now)
	if err != nil || ok {
		t.Fatalf("second Unfollow = %v, %v; want false", ok, err)
	}
	// The account can follow again; the new edge lands at the newest end.
	if err := s.AddFollower(target, followers[1], now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	newest, _ := s.FollowersNewestFirst(target)
	if newest[0] != followers[1] {
		t.Fatalf("newest follower = %d, want refollowed %d", newest[0], followers[1])
	}
}
