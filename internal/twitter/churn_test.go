package twitter

import (
	"errors"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// churnStore builds a target with n followers, one per second.
func churnStore(t *testing.T, n int) (*Store, UserID, []UserID) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	s := NewStore(clock, 1)
	target := s.MustCreateUser(UserParams{ScreenName: "t"})
	at := simclock.Epoch.Add(-time.Duration(n) * time.Second)
	followers := make([]UserID, 0, n)
	for i := 0; i < n; i++ {
		id := s.MustCreateUser(UserParams{})
		if err := s.AddFollower(target, id, at); err != nil {
			t.Fatal(err)
		}
		followers = append(followers, id)
		at = at.Add(time.Second)
	}
	return s, target, followers
}

func TestFollowersPage(t *testing.T) {
	s, target, followers := churnStore(t, 10)
	newest, err := s.FollowersNewestFirst(target)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		offset, limit int
		want          []UserID
	}{
		{0, 3, newest[:3]},
		{3, 4, newest[3:7]},
		{7, 100, newest[7:]},
		{10, 5, nil},
		{42, 5, nil},
		{-1, 5, nil},
		{0, 0, nil},
		{0, -2, nil},
	}
	for _, c := range cases {
		got, total, err := s.FollowersPage(target, c.offset, c.limit)
		if err != nil {
			t.Fatalf("FollowersPage(%d, %d): %v", c.offset, c.limit, err)
		}
		if total != 10 {
			t.Fatalf("FollowersPage(%d, %d) total = %d, want 10", c.offset, c.limit, total)
		}
		if len(got) != len(c.want) {
			t.Fatalf("FollowersPage(%d, %d) = %v, want %v", c.offset, c.limit, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("FollowersPage(%d, %d)[%d] = %d, want %d", c.offset, c.limit, i, got[i], c.want[i])
			}
		}
	}
	if _, _, err := s.FollowersPage(999, 0, 5); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown target err = %v, want ErrUnknownUser", err)
	}
	// Non-target accounts yield empty pages, matching FollowersNewestFirst.
	if page, total, err := s.FollowersPage(followers[0], 0, 5); err != nil || len(page) != 0 || total != 0 {
		t.Fatalf("non-target page = %v, %d, %v; want empty", page, total, err)
	}
}

// TestFollowersPageMatchesFullView cross-checks paged assembly against the
// full-copy accessor on a larger list.
func TestFollowersPageMatchesFullView(t *testing.T) {
	s, target, _ := churnStore(t, 2357)
	newest, err := s.FollowersNewestFirst(target)
	if err != nil {
		t.Fatal(err)
	}
	var paged []UserID
	for off := 0; ; off += 500 {
		page, total, err := s.FollowersPage(target, off, 500)
		if err != nil {
			t.Fatal(err)
		}
		if total != len(newest) {
			t.Fatalf("total = %d, want %d", total, len(newest))
		}
		if len(page) == 0 {
			break
		}
		paged = append(paged, page...)
	}
	if len(paged) != len(newest) {
		t.Fatalf("paged %d followers, want %d", len(paged), len(newest))
	}
	for i := range paged {
		if paged[i] != newest[i] {
			t.Fatalf("paged[%d] = %d, want %d", i, paged[i], newest[i])
		}
	}
}

func TestRemoveFollowers(t *testing.T) {
	s, target, followers := churnStore(t, 8)
	now := s.Now()

	gone := []UserID{followers[1], followers[4], followers[7], 9999}
	n, err := s.RemoveFollowers(target, gone, now)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("removed %d edges, want 3", n)
	}
	count, _ := s.FollowerCount(target)
	if count != 5 {
		t.Fatalf("FollowerCount = %d, want 5", count)
	}
	// Survivors keep their chronological order.
	chrono, _ := s.FollowersChronological(target)
	want := []UserID{followers[0], followers[2], followers[3], followers[5], followers[6]}
	for i := range chrono {
		if chrono[i] != want[i] {
			t.Fatalf("chrono[%d] = %d, want %d", i, chrono[i], want[i])
		}
	}
	// Profile view follows the live edge list.
	p, _ := s.Profile(target)
	if p.FollowersCount != 5 {
		t.Fatalf("profile followers = %d, want 5", p.FollowersCount)
	}
	// The removal log retains ground truth.
	removed, _ := s.RemovedEdges(target)
	if len(removed) != 3 {
		t.Fatalf("removal log has %d entries, want 3", len(removed))
	}
	for _, r := range removed {
		if !r.At.Equal(now) {
			t.Fatalf("removal at %v, want %v", r.At, now)
		}
	}
	rc, _ := s.RemovedCount(target)
	if rc != 3 {
		t.Fatalf("RemovedCount = %d, want 3", rc)
	}
}

func TestRemoveFollowersMonotonicRemovalTimes(t *testing.T) {
	s, target, followers := churnStore(t, 4)
	now := s.Now()
	if _, err := s.RemoveFollowers(target, followers[:1], now); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveFollowers(target, followers[1:2], now.Add(-time.Hour)); !errors.Is(err, ErrNotMonotonic) {
		t.Fatalf("backwards removal err = %v, want ErrNotMonotonic", err)
	}
	// Equal times are fine (a purge removes a batch in one instant).
	if _, err := s.RemoveFollowers(target, followers[1:2], now); err != nil {
		t.Fatal(err)
	}
}

func TestUnfollowThenRefollow(t *testing.T) {
	s, target, followers := churnStore(t, 3)
	now := s.Now()
	ok, err := s.Unfollow(target, followers[1], now)
	if err != nil || !ok {
		t.Fatalf("Unfollow = %v, %v; want true", ok, err)
	}
	ok, err = s.Unfollow(target, followers[1], now)
	if err != nil || ok {
		t.Fatalf("second Unfollow = %v, %v; want false", ok, err)
	}
	// The account can follow again; the new edge lands at the newest end.
	if err := s.AddFollower(target, followers[1], now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	newest, _ := s.FollowersNewestFirst(target)
	if newest[0] != followers[1] {
		t.Fatalf("newest follower = %d, want refollowed %d", newest[0], followers[1])
	}
}
