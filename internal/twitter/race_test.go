package twitter

import (
	"io"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// TestSimclockSleepersRaceShardWriters pits virtual-clock sleepers (the
// pacing loops of monitord/auditd all sleep on the shared clock) against
// shard writers that stamp edges with clock.Now() while creates, per-shard
// follower appends and an all-shard snapshot run concurrently. Run under
// -race in CI. The virtual clock only moves forward, so per-target edge
// times stay monotonic no matter how the sleepers interleave with the
// writers — every AddFollower must succeed.
func TestSimclockSleepersRaceShardWriters(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 11, WithShards(8))

	const (
		writers     = 8
		sleepers    = 4
		perWriter   = 300
		followerSet = 64
	)
	store.Grow(writers + followerSet + writers*perWriter)
	targets := make([]UserID, writers)
	for i := range targets {
		targets[i] = store.MustCreateUser(UserParams{CreatedAt: simclock.Epoch.AddDate(-1, 0, 0)})
	}
	followers := make([]UserID, followerSet)
	for i := range followers {
		followers[i] = store.MustCreateUser(UserParams{CreatedAt: simclock.Epoch.AddDate(-1, 0, 0)})
	}

	errs := make(chan error, writers)
	stop := make(chan struct{})

	// Sleepers: advance the shared clock the way paced daemons do.
	var sleeperWG sync.WaitGroup
	for s := 0; s < sleepers; s++ {
		sleeperWG.Add(1)
		go func() {
			defer sleeperWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					clock.Sleep(time.Second)
				}
			}
		}()
	}

	// Writers: one target each (per-target monotonicity is the writer's own
	// responsibility; the clock's forward-only guarantee must be enough).
	// Half the appended followers are fresh creates, so the allocator plane
	// races the sleepers too, and periodic snapshots take every shard lock
	// mid-storm.
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				follower := followers[(w+i)%followerSet]
				if i%2 == 0 {
					follower = store.MustCreateUser(UserParams{})
				}
				if err := store.AddFollower(targets[w], follower, clock.Now()); err != nil {
					errs <- err
					return
				}
				if i%64 == 0 {
					if err := store.WriteSnapshot(io.Discard); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}

	writersDone := make(chan struct{})
	go func() {
		writerWG.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case err := <-errs:
		close(stop)
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		close(stop)
		t.Fatal("writers stalled")
	}
	close(stop)
	sleeperWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Edge times must be non-decreasing per target, dense in seq, and
	// within the clock's final position.
	end := clock.Now()
	for _, target := range targets {
		edges, err := store.FollowEdges(target)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != perWriter {
			t.Fatalf("target %d has %d edges, want %d", target, len(edges), perWriter)
		}
		for i := 1; i < len(edges); i++ {
			if edges[i].At.Before(edges[i-1].At) {
				t.Fatalf("target %d: edge %d time regressed", target, i)
			}
			if edges[i].Seq != edges[i-1].Seq+1 {
				t.Fatalf("target %d: seq gap at %d", target, i)
			}
		}
		if edges[len(edges)-1].At.After(end) {
			t.Fatalf("target %d: edge stamped after the clock's final position", target)
		}
	}
	if want := writers + followerSet + writers*perWriter/2; store.UserCount() != want {
		t.Fatalf("user count %d, want %d", store.UserCount(), want)
	}
}
