package twitter

import (
	"sync"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// TestStoreConcurrentReadersAndWriters hammers the store with parallel
// profile reads, timeline synthesis and follower appends; run with -race it
// proves the locking discipline (several analytics engines share one store
// in every simulation).
func TestStoreConcurrentReadersAndWriters(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 77)
	target := store.MustCreateUser(UserParams{ScreenName: "hub"})
	for i := 0; i < 2000; i++ {
		id := store.MustCreateUser(UserParams{
			CreatedAt: simclock.Epoch.AddDate(-1, 0, 0),
			LastTweet: simclock.Epoch.AddDate(0, 0, -1),
			Statuses:  40,
		})
		if err := store.AddFollower(target, id, simclock.Epoch.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)

	// Readers: profiles, timelines, follower views.
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := UserID(2 + (i+r*7)%2000)
				if _, err := store.Profile(id); err != nil {
					fail <- err
					return
				}
				if _, err := store.Timeline(id, 20); err != nil {
					fail <- err
					return
				}
				if _, err := store.FollowersNewestFirst(target); err != nil {
					fail <- err
					return
				}
			}
		}(r)
	}
	// One writer appending followers (the growth generator's pattern).
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := simclock.Epoch.Add(3000 * time.Second)
		for i := 0; i < 500; i++ {
			id, err := store.CreateUser(UserParams{})
			if err != nil {
				fail <- err
				return
			}
			if err := store.AddFollower(target, id, at); err != nil {
				fail <- err
				return
			}
			at = at.Add(time.Second)
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let readers spin until the writer finishes, then stop them.
	timer := time.NewTimer(5 * time.Second)
	defer timer.Stop()
	for {
		select {
		case err := <-fail:
			close(stop)
			t.Fatal(err)
		case <-timer.C:
			close(stop)
			t.Fatal("writer did not finish in time")
		default:
		}
		if n, _ := store.FollowerCount(target); n == 2500 {
			close(stop)
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
}
