package twitter

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fakeproject/internal/simclock"
)

func unixUTC(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// Snapshot persistence: a Store can be serialised and reloaded so that
// expensive populations (the full testbed is ~1.5M accounts) can be built
// once and reused across processes — e.g. `genpop -out pop.gob` feeding
// `twitterd -load pop.gob`. The format is versioned gob.

// snapshotVersion guards against loading snapshots from incompatible
// builds. Version history:
//
//	1: initial format (records, names, targets with follows/tweets/friends)
//	2: adds per-target removal logs (Removed) and the clock position
//	   (ClockUnix), the churn state introduced with the dynamics driver
//	3: adds per-edge sequence numbers (persistFollow.Seq) and the
//	   per-target seq counter (persistTarget.SeqCounter), the anchors
//	   churn-proof pagination resumes from
//	4: canonical encoding, introduced with the lock-striped store. Explicit
//	   names move from a gob map (iteration-order dependent bytes) to a
//	   slice sorted by ID, and targets are emitted sorted by ID instead of
//	   in map order. Two stores holding the same logical state produce
//	   byte-identical snapshots regardless of their shard counts — the
//	   property the differential harness asserts.
//	5: streamed, segment-framed encoding, introduced with compact edge
//	   segments. The stream opens with a header value (the snapshot struct
//	   carrying counts instead of payload slices), followed by records in
//	   fixed-size chunks and then one value per target; edges and removal
//	   logs ride as delta-varint byte streams (EdgeStream/RemovedStream)
//	   instead of 40-byte-per-edge struct slices. Writer and reader hold
//	   one chunk/target in memory at a time, so a 10M-account snapshot
//	   costs bounded memory beyond the store itself, and the canonicality
//	   guarantee of v4 (chunk cuts are fixed, targets sorted by ID) holds.
//
// Writers always emit the current version; readers accept every version
// back to 1 — gob leaves fields absent from old streams at their zero
// values, so a pre-churn snapshot simply loads with empty removal logs,
// a pre-seq snapshot gets dense seqs (1..n) reassigned to its live edges
// on load, and a pre-canonical snapshot carries its names in the legacy
// map field. The on-disk layout never encodes the shard count: any
// snapshot loads into a store with any shard count, and the reader
// redistributes records, names and targets into the configured shards.
const snapshotVersion = 5

// minSnapshotVersion is the oldest version ReadSnapshot still understands.
const minSnapshotVersion = 1

// recordChunkLen is the fixed record-chunk size of v5 streams. Fixed so the
// chunk cuts — and therefore the bytes — never depend on anything but the
// logical state; sized to hold writer memory at a few MB per chunk.
const recordChunkLen = 1 << 16

// ErrBadSnapshot reports a snapshot that cannot be loaded.
var ErrBadSnapshot = errors.New("twitter: invalid snapshot")

// persistRecord mirrors the unexported record struct with exported fields
// for gob.
type persistRecord struct {
	CreatedAt   int64
	LastTweetAt int64
	Statuses    int32
	Friends     int32
	Followers   int32
	Seed        uint32
	Flags       uint8
	Class       uint8
	RetweetPct  uint8
	LinkPct     uint8
	SpamPct     uint8
	DupPct      uint8
}

type persistFollow struct {
	Follower int64
	At       int64
	// Seq is the edge's pagination anchor (version >= 3; 0 in older
	// streams, in which case the reader reassigns dense seqs).
	Seq uint64
}

type persistTweet struct {
	ID        int64
	CreatedAt int64
	Text      string
	IsRetweet bool
	HasLink   bool
	IsReply   bool
	Mentions  int32
	Hashtags  int32
	Source    string
}

type persistTarget struct {
	ID int64
	// Follows carries the live edges as structs in streams up to version 4;
	// v5 streams leave it nil and use EdgeStream.
	Follows []persistFollow
	Tweets  []persistTweet
	Friends []int64
	// FriendsSet marks a materialised friend list (version >= 5). gob drops
	// empty slices, so without it a list set to empty would load back as
	// "never materialised" and the friends count would snap back to the
	// synthetic counter.
	FriendsSet bool
	// Removed is the churn removal log (version >= 2; nil in v1 streams).
	// v5 streams leave it nil and use RemovedStream.
	Removed []persistFollow
	// SeqCounter is the last edge seq handed out (version >= 3; 0 in
	// older streams). Loading must resume the counter above every seq
	// ever assigned so post-load follows keep seqs unique and increasing.
	SeqCounter uint64
	// EdgeN/EdgeStream carry the live edges as one chained delta-varint
	// stream (version >= 5; see edgeseg.go for the codec).
	EdgeN      int64
	EdgeStream []byte
	// RemovedN/RemovedStream carry the removal log in the same form
	// (version >= 5).
	RemovedN      int64
	RemovedStream []byte
}

// persistName is one explicit screen-name registration (version >= 4).
type persistName struct {
	ID   int64
	Name string
}

type snapshot struct {
	Version  int
	NameSeed uint64
	TweetSeq int64
	// Records carries every account in streams up to version 4; v5 streams
	// leave it nil and follow the header with RecordN records in chunks of
	// recordChunkLen.
	Records []persistRecord
	// Names carries explicit screen names in streams up to version 3.
	// gob encodes maps in iteration order, so this field made snapshot
	// bytes nondeterministic; v4 streams leave it nil.
	Names map[int64]string
	// NameList carries explicit screen names sorted by ID (version >= 4).
	NameList []persistName
	// Targets is sorted by ID in version >= 4 streams; older streams may
	// carry any order and the reader accepts both. v5 streams leave it nil
	// and follow the record chunks with TargetN per-target values.
	Targets []persistTarget
	// ClockUnix is the store clock's position at snapshot time (version
	// >= 2; 0 in v1 streams). An evolved population's edge timestamps run
	// up to this instant, so a reader must resume at or after it for
	// further growth/churn to stay monotonic.
	ClockUnix int64
	// RecordN/TargetN are the v5 stream framing counts: how many records
	// (in chunks) and target values follow the header.
	RecordN int64
	TargetN int64
}

// WriteSnapshot serialises the full store state. Creation is quiesced and
// every shard is read-locked (in index order) for the duration, so the
// snapshot is a consistent cut. The encoding is canonical: records, names
// and targets are emitted in ascending ID order, never in shard or map
// order, with fixed chunk cuts, so equal logical state yields equal bytes
// for any shard count.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return s.WriteSnapshotWith(w, nil)
}

// WriteSnapshotWith is WriteSnapshot with a cut hook: atCut runs once
// creation is quiesced and every shard is locked — the exact logical
// instant the snapshot captures — before any state is serialised. WAL
// compaction rotates its log segment there, so the snapshot and the
// post-cut segments partition the op history with no overlap and no gap.
// An atCut error aborts the snapshot before anything is written.
//
// The write streams: header, then records in fixed chunks, then one value
// per target, holding one chunk/target in encoded form at a time. All
// routing uses the non-counting shard accessor, so a snapshot leaves the
// operator-facing shard-heat counters exactly where platform traffic put
// them.
func (s *Store) WriteSnapshotWith(w io.Writer, atCut func() error) error {
	return s.writeSnapshot(w, atCut, nil)
}

// writeSnapshot is the shared writer behind WriteSnapshotWith and
// WriteSnapshotRange: keep, when non-nil, filters which targets' heavy
// state is emitted (records and names always cover the full account space,
// so the stream stays a loadable v5 snapshot).
func (s *Store) writeSnapshot(w io.Writer, atCut func() error, keep func(UserID) bool) error {
	s.createMu.Lock()
	defer s.createMu.Unlock()
	s.rlockAll()
	defer s.runlockAll()
	if atCut != nil {
		if err := atCut(); err != nil {
			return fmt.Errorf("snapshot cut: %w", err)
		}
	}

	n := int(s.users.Load())
	var targetIDs []int64
	for si := range s.shards {
		for id := range *s.shards[si].targets.Load() {
			if keep != nil && !keep(id) {
				continue
			}
			targetIDs = append(targetIDs, int64(id))
		}
	}
	sort.Slice(targetIDs, func(i, j int) bool { return targetIDs[i] < targetIDs[j] })
	hdr := snapshot{
		Version:   snapshotVersion,
		NameSeed:  s.nameSeed.Seed(),
		TweetSeq:  s.tweetSeq.Load(),
		ClockUnix: s.clock.Now().Unix(),
		RecordN:   int64(n),
		TargetN:   int64(len(targetIDs)),
	}
	for si := range s.shards {
		for id, name := range s.shards[si].names {
			hdr.NameList = append(hdr.NameList, persistName{ID: int64(id), Name: name})
		}
	}
	sort.Slice(hdr.NameList, func(i, j int) bool { return hdr.NameList[i].ID < hdr.NameList[j].ID })

	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	//fp:allow lockhold the snapshot must serialise a consistent cut, so encoding runs under the store locks by design (audited: readers stay live, writers stall for the dump)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("encoding snapshot header: %w", err)
	}
	chunk := make([]persistRecord, 0, min(n, recordChunkLen))
	flushChunk := func() error {
		if len(chunk) == 0 {
			return nil
		}
		//fp:allow lockhold record chunks stream out under the same consistent-cut locks as the header
		err := enc.Encode(chunk)
		chunk = chunk[:0]
		return err
	}
	for i := 0; i < n; i++ {
		id := UserID(i + 1)
		r := &s.shardOf(id).recs[s.slotFor(id)]
		chunk = append(chunk, persistRecord{
			CreatedAt:   r.createdAt,
			LastTweetAt: r.lastTweetAt,
			Statuses:    r.statuses,
			Friends:     r.friends,
			Followers:   r.followers,
			Seed:        r.seed,
			Flags:       r.flags,
			Class:       r.class,
			RetweetPct:  r.retweetPct,
			LinkPct:     r.linkPct,
			SpamPct:     r.spamPct,
			DupPct:      r.dupPct,
		})
		if len(chunk) == recordChunkLen {
			if err := flushChunk(); err != nil {
				return fmt.Errorf("encoding snapshot records: %w", err)
			}
		}
	}
	if err := flushChunk(); err != nil {
		return fmt.Errorf("encoding snapshot records: %w", err)
	}
	for _, tid := range targetIDs {
		id := UserID(tid)
		td := s.shardOf(id).targetOf(id)
		v := td.edges.view()
		pt := persistTarget{ID: tid, SeqCounter: td.seq, EdgeN: int64(v.total)}
		if v.total > 0 {
			pt.EdgeStream = appendEdgeStream(make([]byte, 0, v.memBytes()), v)
		}
		pt.Tweets = make([]persistTweet, len(td.tweets))
		for i, tw := range td.tweets {
			pt.Tweets[i] = persistTweet{
				ID:        int64(tw.ID),
				CreatedAt: tw.CreatedAt.Unix(),
				Text:      tw.Text,
				IsRetweet: tw.IsRetweet,
				HasLink:   tw.HasLink,
				IsReply:   tw.IsReply,
				Mentions:  int32(tw.Mentions),
				Hashtags:  int32(tw.Hashtags),
				Source:    tw.Source,
			}
		}
		if fl := td.friends.Load(); fl != nil {
			pt.FriendsSet = true
			pt.Friends = make([]int64, len(*fl))
			for i, f := range *fl {
				pt.Friends[i] = int64(f)
			}
		}
		if len(td.removed) > 0 {
			pt.RemovedN = int64(len(td.removed))
			pt.RemovedStream = appendFollowStream(nil, td.removed)
		}
		//fp:allow lockhold per-target values stream out under the same consistent-cut locks as the header
		if err := enc.Encode(pt); err != nil {
			return fmt.Errorf("encoding snapshot target %d: %w", tid, err)
		}
	}
	//fp:allow lockhold flush completes the consistent-cut write begun under the same locks
	return bw.Flush()
}

// SnapshotVersions reports the snapshot format versions this build reads
// (oldest..newest); writers always emit the newest.
func SnapshotVersions() (oldest, newest int) {
	return minSnapshotVersion, snapshotVersion
}

// LoadSnapshotFile opens and loads a snapshot file, translating the two
// failure modes an operator actually hits — wrong path, wrong/corrupt file —
// into errors that name the path and the version range this build supports
// instead of surfacing a raw gob decode error.
func LoadSnapshotFile(path string, clock simclock.Clock, opts ...Option) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("twitter: opening snapshot: %w", err)
	}
	defer f.Close()
	store, err := ReadSnapshot(f, clock, opts...)
	if err != nil {
		return nil, fmt.Errorf(
			"twitter: snapshot %s is not loadable: %w (this build writes snapshot v%d and reads v%d through v%d; regenerate with genpop if the file predates v%d or is truncated)",
			path, err, snapshotVersion, minSnapshotVersion, snapshotVersion, minSnapshotVersion)
	}
	return store, nil
}

// ReadSnapshot reconstructs a Store from a snapshot, bound to the given
// clock. A virtual clock lagging behind the snapshot's recorded position
// is advanced to it, so an evolved population resumes where it left off
// instead of rejecting further growth/churn as non-monotonic.
//
// Options configure the reconstructed store exactly as for NewStore; the
// snapshot itself is shard-layout free, so a population written by a store
// with one shard count loads into a store with any other. The load routes
// through the non-counting shard accessor, so a boot-from-snapshot starts
// with all shard-heat counters at zero.
func ReadSnapshot(r io.Reader, clock simclock.Clock, opts ...Option) (*Store, error) {
	return readSnapshot(r, clock, nil, opts...)
}

// readSnapshot is the shared reader behind ReadSnapshot and
// ReadSnapshotRange: keep, when non-nil, selects which targets' heavy state
// is installed, with every target's observable override counts folded into
// its record first (see persist_range.go).
func readSnapshot(r io.Reader, clock simclock.Clock, keep func(UserID) bool, opts ...Option) (*Store, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if snap.Version < minSnapshotVersion || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("%w: version %d, want %d..%d",
			ErrBadSnapshot, snap.Version, minSnapshotVersion, snapshotVersion)
	}
	if snap.ClockUnix > 0 {
		if v, ok := clock.(*simclock.Virtual); ok {
			if at := unixUTC(snap.ClockUnix); at.After(v.Now()) {
				v.SetNow(at)
			}
		}
	}
	store := NewStore(clock, snap.NameSeed, opts...)
	store.tweetSeq.Store(snap.TweetSeq)

	var n int
	if snap.Version >= 5 {
		if snap.RecordN < 0 {
			return nil, fmt.Errorf("%w: negative record count", ErrBadSnapshot)
		}
		n = int(snap.RecordN)
		store.Grow(n)
		for got := 0; got < n; {
			var chunk []persistRecord
			if err := dec.Decode(&chunk); err != nil {
				return nil, fmt.Errorf("%w: record chunk: %v", ErrBadSnapshot, err)
			}
			if len(chunk) == 0 || got+len(chunk) > n {
				return nil, fmt.Errorf("%w: record chunk framing", ErrBadSnapshot)
			}
			for i, pr := range chunk {
				installRecord(store, UserID(got+i+1), pr)
			}
			got += len(chunk)
		}
	} else {
		n = len(snap.Records)
		for i, pr := range snap.Records {
			installRecord(store, UserID(i+1), pr)
		}
	}
	// Publish each shard's backing and only then commit the count, the same
	// order creation uses.
	for si := range store.shards {
		if store.shards[si].recs != nil {
			store.shards[si].publishRecs()
		}
	}
	store.users.Store(int64(n))

	names := snap.NameList
	if snap.Version < 4 {
		names = names[:0]
		for id, name := range snap.Names {
			names = append(names, persistName{ID: id, Name: name})
		}
	}
	for _, pn := range names {
		id := UserID(pn.ID)
		if pn.ID < 1 || int(pn.ID) > n {
			return nil, fmt.Errorf("%w: name %q for unknown user %d", ErrBadSnapshot, pn.Name, pn.ID)
		}
		sh := store.shardOf(id)
		if _, dup := sh.names[id]; dup {
			// Impossible in legacy map streams (map keys are unique) but a
			// real corruption class for the v4 list encoding.
			return nil, fmt.Errorf("%w: user %d named twice", ErrBadSnapshot, pn.ID)
		}
		stripe := store.stripeFor(pn.Name)
		if _, dup := stripe.byName[pn.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrBadSnapshot, pn.Name)
		}
		sh.names[id] = pn.Name
		stripe.byName[pn.Name] = id
	}

	if snap.Version >= 5 {
		if snap.TargetN < 0 {
			return nil, fmt.Errorf("%w: negative target count", ErrBadSnapshot)
		}
		for i := int64(0); i < snap.TargetN; i++ {
			var pt persistTarget
			if err := dec.Decode(&pt); err != nil {
				return nil, fmt.Errorf("%w: target value: %v", ErrBadSnapshot, err)
			}
			if keep != nil {
				if err := foldTargetCounts(store, &pt, snap.Version, n); err != nil {
					return nil, err
				}
				if !keep(UserID(pt.ID)) {
					continue
				}
			}
			if err := installTarget(store, &pt, snap.Version, n); err != nil {
				return nil, err
			}
		}
	} else {
		for i := range snap.Targets {
			if keep != nil {
				if err := foldTargetCounts(store, &snap.Targets[i], snap.Version, n); err != nil {
					return nil, err
				}
				if !keep(UserID(snap.Targets[i].ID)) {
					continue
				}
			}
			if err := installTarget(store, &snap.Targets[i], snap.Version, n); err != nil {
				return nil, err
			}
		}
	}
	return store, nil
}

// installRecord appends pr as id's record into its owning shard. IDs ascend
// across calls, so each shard's segment is filled in slot order by plain
// appends.
func installRecord(store *Store, id UserID, pr persistRecord) {
	sh := store.shardOf(id)
	sh.recs = append(sh.recs, record{
		createdAt:   pr.CreatedAt,
		lastTweetAt: pr.LastTweetAt,
		statuses:    pr.Statuses,
		friends:     pr.Friends,
		followers:   pr.Followers,
		seed:        pr.Seed,
		flags:       pr.Flags,
		class:       pr.Class,
		retweetPct:  pr.RetweetPct,
		linkPct:     pr.LinkPct,
		spamPct:     pr.SpamPct,
		dupPct:      pr.DupPct,
	})
}

// installTarget validates pt and installs it as a materialised target.
// n is the committed record count (follower range bound).
func installTarget(store *Store, pt *persistTarget, version, n int) error {
	if pt.ID < 1 || int(pt.ID) > n {
		return fmt.Errorf("%w: target %d out of range", ErrBadSnapshot, pt.ID)
	}
	td := &targetData{}
	var sealer edgeSealer
	var prevAt int64
	var prevSeq uint64
	if version >= 5 {
		if pt.EdgeN < 0 || pt.RemovedN < 0 {
			return fmt.Errorf("%w: negative edge counts for target %d", ErrBadSnapshot, pt.ID)
		}
		err := decodeEdgeStream(pt.EdgeStream, int(pt.EdgeN), func(e segEdge) error {
			if e.follower < 1 || int64(e.follower) > int64(n) {
				return fmt.Errorf("%w: follower %d out of range", ErrBadSnapshot, e.follower)
			}
			if e.at < prevAt {
				return fmt.Errorf("%w: follow times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			if e.seq <= prevSeq {
				return fmt.Errorf("%w: edge seqs not increasing for target %d", ErrBadSnapshot, pt.ID)
			}
			prevAt, prevSeq = e.at, e.seq
			sealer.add(e)
			return nil
		})
		if err != nil {
			if errors.Is(err, errEdgeStream) {
				return fmt.Errorf("%w: edge stream of target %d: %v", ErrBadSnapshot, pt.ID, err)
			}
			return err
		}
	} else {
		for i, pf := range pt.Follows {
			if pf.Follower < 1 || int(pf.Follower) > n {
				return fmt.Errorf("%w: follower %d out of range", ErrBadSnapshot, pf.Follower)
			}
			if pf.At < prevAt {
				return fmt.Errorf("%w: follow times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			prevAt = pf.At
			seq := pf.Seq
			if version < 3 {
				// Pre-seq stream: reassign dense anchors in stored order.
				seq = uint64(i + 1)
			} else if seq <= prevSeq {
				return fmt.Errorf("%w: edge seqs not increasing for target %d", ErrBadSnapshot, pt.ID)
			}
			prevSeq = seq
			sealer.add(segEdge{follower: pf.Follower, at: pf.At, seq: seq})
		}
	}
	td.seq = pt.SeqCounter
	if td.seq < prevSeq {
		// Older streams (or a counter that lost a race with the log):
		// resume above every seq actually present.
		td.seq = prevSeq
	}
	for _, ptw := range pt.Tweets {
		td.tweets = append(td.tweets, Tweet{
			ID:        TweetID(ptw.ID),
			Author:    UserID(pt.ID),
			CreatedAt: unixUTC(ptw.CreatedAt),
			Text:      ptw.Text,
			IsRetweet: ptw.IsRetweet,
			HasLink:   ptw.HasLink,
			IsReply:   ptw.IsReply,
			Mentions:  int(ptw.Mentions),
			Hashtags:  int(ptw.Hashtags),
			Source:    ptw.Source,
		})
	}
	if pt.FriendsSet || pt.Friends != nil {
		fl := make([]UserID, len(pt.Friends))
		for i, f := range pt.Friends {
			fl[i] = UserID(f)
		}
		if len(fl) == 0 {
			fl = nil
		}
		td.friends.Store(&fl)
	}
	var prevRemoved int64
	if version >= 5 {
		td.removed = make([]Follow, 0, min(int(pt.RemovedN), recordChunkLen))
		err := decodeEdgeStream(pt.RemovedStream, int(pt.RemovedN), func(e segEdge) error {
			if e.follower < 1 || int64(e.follower) > int64(n) {
				return fmt.Errorf("%w: removed follower %d out of range", ErrBadSnapshot, e.follower)
			}
			if e.at < prevRemoved {
				return fmt.Errorf("%w: removal times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			prevRemoved = e.at
			if e.seq > td.seq {
				td.seq = e.seq
			}
			td.removed = append(td.removed, Follow{Follower: UserID(e.follower), At: unixUTC(e.at), Seq: e.seq})
			return nil
		})
		if err != nil {
			if errors.Is(err, errEdgeStream) {
				return fmt.Errorf("%w: removal stream of target %d: %v", ErrBadSnapshot, pt.ID, err)
			}
			return err
		}
	} else {
		for _, pf := range pt.Removed {
			if pf.Follower < 1 || int(pf.Follower) > n {
				return fmt.Errorf("%w: removed follower %d out of range", ErrBadSnapshot, pf.Follower)
			}
			if pf.At < prevRemoved {
				return fmt.Errorf("%w: removal times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			prevRemoved = pf.At
			if pf.Seq > td.seq {
				td.seq = pf.Seq
			}
			td.removed = append(td.removed, Follow{
				Follower: UserID(pf.Follower),
				At:       unixUTC(pf.At),
				Seq:      pf.Seq,
			})
		}
	}
	// A target that ever held an edge (live now or since removed) keeps the
	// materialised count authoritative; one promoted by tweets/friends alone
	// keeps its synthetic counter.
	if ever := sealer.total > 0 || len(td.removed) > 0; ever {
		td.edges.v.Store(sealer.finish(ever))
	}
	sh := store.shardOf(UserID(pt.ID))
	if sh.targetOf(UserID(pt.ID)) != nil {
		return fmt.Errorf("%w: target %d appears twice", ErrBadSnapshot, pt.ID)
	}
	sh.putTarget(UserID(pt.ID), td)
	return nil
}
