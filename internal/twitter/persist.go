package twitter

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fakeproject/internal/simclock"
)

func unixUTC(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// Snapshot persistence: a Store can be serialised and reloaded so that
// expensive populations (the full testbed is ~1.5M accounts) can be built
// once and reused across processes — e.g. `genpop -out pop.gob` feeding
// `twitterd -load pop.gob`. The format is versioned gob.

// snapshotVersion guards against loading snapshots from incompatible
// builds. Version history:
//
//	1: initial format (records, names, targets with follows/tweets/friends)
//	2: adds per-target removal logs (Removed) and the clock position
//	   (ClockUnix), the churn state introduced with the dynamics driver
//	3: adds per-edge sequence numbers (persistFollow.Seq) and the
//	   per-target seq counter (persistTarget.SeqCounter), the anchors
//	   churn-proof pagination resumes from
//	4: canonical encoding, introduced with the lock-striped store. Explicit
//	   names move from a gob map (iteration-order dependent bytes) to a
//	   slice sorted by ID, and targets are emitted sorted by ID instead of
//	   in map order. Two stores holding the same logical state produce
//	   byte-identical snapshots regardless of their shard counts — the
//	   property the differential harness asserts.
//
// Writers always emit the current version; readers accept every version
// back to 1 — gob leaves fields absent from old streams at their zero
// values, so a pre-churn snapshot simply loads with empty removal logs,
// a pre-seq snapshot gets dense seqs (1..n) reassigned to its live edges
// on load, and a pre-canonical snapshot carries its names in the legacy
// map field. The on-disk layout never encodes the shard count: any
// snapshot loads into a store with any shard count, and the reader
// redistributes records, names and targets into the configured shards.
const snapshotVersion = 4

// minSnapshotVersion is the oldest version ReadSnapshot still understands.
const minSnapshotVersion = 1

// ErrBadSnapshot reports a snapshot that cannot be loaded.
var ErrBadSnapshot = errors.New("twitter: invalid snapshot")

// persistRecord mirrors the unexported record struct with exported fields
// for gob.
type persistRecord struct {
	CreatedAt   int64
	LastTweetAt int64
	Statuses    int32
	Friends     int32
	Followers   int32
	Seed        uint32
	Flags       uint8
	Class       uint8
	RetweetPct  uint8
	LinkPct     uint8
	SpamPct     uint8
	DupPct      uint8
}

type persistFollow struct {
	Follower int64
	At       int64
	// Seq is the edge's pagination anchor (version >= 3; 0 in older
	// streams, in which case the reader reassigns dense seqs).
	Seq uint64
}

type persistTweet struct {
	ID        int64
	CreatedAt int64
	Text      string
	IsRetweet bool
	HasLink   bool
	IsReply   bool
	Mentions  int32
	Hashtags  int32
	Source    string
}

type persistTarget struct {
	ID      int64
	Follows []persistFollow
	Tweets  []persistTweet
	Friends []int64
	// Removed is the churn removal log (version >= 2; nil in v1 streams).
	Removed []persistFollow
	// SeqCounter is the last edge seq handed out (version >= 3; 0 in
	// older streams). Loading must resume the counter above every seq
	// ever assigned so post-load follows keep seqs unique and increasing.
	SeqCounter uint64
}

// persistName is one explicit screen-name registration (version >= 4).
type persistName struct {
	ID   int64
	Name string
}

type snapshot struct {
	Version  int
	NameSeed uint64
	TweetSeq int64
	Records  []persistRecord
	// Names carries explicit screen names in streams up to version 3.
	// gob encodes maps in iteration order, so this field made snapshot
	// bytes nondeterministic; v4 streams leave it nil.
	Names map[int64]string
	// NameList carries explicit screen names sorted by ID (version >= 4).
	NameList []persistName
	// Targets is sorted by ID in version >= 4 streams; older streams may
	// carry any order and the reader accepts both.
	Targets []persistTarget
	// ClockUnix is the store clock's position at snapshot time (version
	// >= 2; 0 in v1 streams). An evolved population's edge timestamps run
	// up to this instant, so a reader must resume at or after it for
	// further growth/churn to stay monotonic.
	ClockUnix int64
}

// WriteSnapshot serialises the full store state. Creation is quiesced and
// every shard is read-locked (in index order) for the duration, so the
// snapshot is a consistent cut. The encoding is canonical: records, names
// and targets are emitted in ascending ID order, never in shard or map
// order, so equal logical state yields equal bytes for any shard count.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return s.WriteSnapshotWith(w, nil)
}

// WriteSnapshotWith is WriteSnapshot with a cut hook: atCut runs once
// creation is quiesced and every shard is locked — the exact logical
// instant the snapshot captures — before any state is serialised. WAL
// compaction rotates its log segment there, so the snapshot and the
// post-cut segments partition the op history with no overlap and no gap.
// An atCut error aborts the snapshot before anything is written.
func (s *Store) WriteSnapshotWith(w io.Writer, atCut func() error) error {
	s.createMu.Lock()
	defer s.createMu.Unlock()
	s.rlockAll()
	defer s.runlockAll()
	if atCut != nil {
		if err := atCut(); err != nil {
			return fmt.Errorf("snapshot cut: %w", err)
		}
	}

	n := int(s.users.Load())
	snap := snapshot{
		Version:   snapshotVersion,
		NameSeed:  s.nameSeed.Seed(),
		TweetSeq:  s.tweetSeq.Load(),
		Records:   make([]persistRecord, n),
		ClockUnix: s.clock.Now().Unix(),
	}
	for i := 0; i < n; i++ {
		id := UserID(i + 1)
		r := &s.shardFor(id).recs[s.slotFor(id)]
		snap.Records[i] = persistRecord{
			CreatedAt:   r.createdAt,
			LastTweetAt: r.lastTweetAt,
			Statuses:    r.statuses,
			Friends:     r.friends,
			Followers:   r.followers,
			Seed:        r.seed,
			Flags:       r.flags,
			Class:       r.class,
			RetweetPct:  r.retweetPct,
			LinkPct:     r.linkPct,
			SpamPct:     r.spamPct,
			DupPct:      r.dupPct,
		}
	}
	for si := range s.shards {
		for id, name := range s.shards[si].names {
			snap.NameList = append(snap.NameList, persistName{ID: int64(id), Name: name})
		}
	}
	sort.Slice(snap.NameList, func(i, j int) bool { return snap.NameList[i].ID < snap.NameList[j].ID })
	for si := range s.shards {
		for id, td := range s.shards[si].targets {
			pt := persistTarget{ID: int64(id), SeqCounter: td.seq}
			pt.Follows = make([]persistFollow, len(td.follows))
			for i, f := range td.follows {
				pt.Follows[i] = persistFollow{Follower: int64(f.Follower), At: f.At.Unix(), Seq: f.Seq}
			}
			pt.Tweets = make([]persistTweet, len(td.tweets))
			for i, tw := range td.tweets {
				pt.Tweets[i] = persistTweet{
					ID:        int64(tw.ID),
					CreatedAt: tw.CreatedAt.Unix(),
					Text:      tw.Text,
					IsRetweet: tw.IsRetweet,
					HasLink:   tw.HasLink,
					IsReply:   tw.IsReply,
					Mentions:  int32(tw.Mentions),
					Hashtags:  int32(tw.Hashtags),
					Source:    tw.Source,
				}
			}
			if td.friends != nil {
				pt.Friends = make([]int64, len(td.friends))
				for i, f := range td.friends {
					pt.Friends[i] = int64(f)
				}
			}
			if len(td.removed) > 0 {
				pt.Removed = make([]persistFollow, len(td.removed))
				for i, f := range td.removed {
					pt.Removed[i] = persistFollow{Follower: int64(f.Follower), At: f.At.Unix(), Seq: f.Seq}
				}
			}
			snap.Targets = append(snap.Targets, pt)
		}
	}
	sort.Slice(snap.Targets, func(i, j int) bool { return snap.Targets[i].ID < snap.Targets[j].ID })

	bw := bufio.NewWriter(w)
	//fp:allow lockhold the snapshot must serialise a consistent cut, so encoding runs under the store locks by design (audited: readers stay live, writers stall for the dump)
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("encoding snapshot: %w", err)
	}
	//fp:allow lockhold flush completes the consistent-cut write begun under the same locks
	return bw.Flush()
}

// SnapshotVersions reports the snapshot format versions this build reads
// (oldest..newest); writers always emit the newest.
func SnapshotVersions() (oldest, newest int) {
	return minSnapshotVersion, snapshotVersion
}

// LoadSnapshotFile opens and loads a snapshot file, translating the two
// failure modes an operator actually hits — wrong path, wrong/corrupt file —
// into errors that name the path and the version range this build supports
// instead of surfacing a raw gob decode error.
func LoadSnapshotFile(path string, clock simclock.Clock, opts ...Option) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("twitter: opening snapshot: %w", err)
	}
	defer f.Close()
	store, err := ReadSnapshot(f, clock, opts...)
	if err != nil {
		return nil, fmt.Errorf(
			"twitter: snapshot %s is not loadable: %w (this build writes snapshot v%d and reads v%d through v%d; regenerate with genpop if the file predates v%d or is truncated)",
			path, err, snapshotVersion, minSnapshotVersion, snapshotVersion, minSnapshotVersion)
	}
	return store, nil
}

// ReadSnapshot reconstructs a Store from a snapshot, bound to the given
// clock. A virtual clock lagging behind the snapshot's recorded position
// is advanced to it, so an evolved population resumes where it left off
// instead of rejecting further growth/churn as non-monotonic.
//
// Options configure the reconstructed store exactly as for NewStore; the
// snapshot itself is shard-layout free, so a population written by a store
// with one shard count loads into a store with any other.
func ReadSnapshot(r io.Reader, clock simclock.Clock, opts ...Option) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if snap.Version < minSnapshotVersion || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("%w: version %d, want %d..%d",
			ErrBadSnapshot, snap.Version, minSnapshotVersion, snapshotVersion)
	}
	if snap.ClockUnix > 0 {
		if v, ok := clock.(*simclock.Virtual); ok {
			if at := unixUTC(snap.ClockUnix); at.After(v.Now()) {
				v.SetNow(at)
			}
		}
	}
	store := NewStore(clock, snap.NameSeed, opts...)
	store.tweetSeq.Store(snap.TweetSeq)
	// Redistribute records into the configured shards. IDs ascend, so each
	// shard's segment is filled in slot order by plain appends.
	for i, pr := range snap.Records {
		id := UserID(i + 1)
		sh := store.shardFor(id)
		sh.recs = append(sh.recs, record{
			createdAt:   pr.CreatedAt,
			lastTweetAt: pr.LastTweetAt,
			statuses:    pr.Statuses,
			friends:     pr.Friends,
			followers:   pr.Followers,
			seed:        pr.Seed,
			flags:       pr.Flags,
			class:       pr.Class,
			retweetPct:  pr.RetweetPct,
			linkPct:     pr.LinkPct,
			spamPct:     pr.SpamPct,
			dupPct:      pr.DupPct,
		})
	}
	store.users.Store(int64(len(snap.Records)))
	names := snap.NameList
	if snap.Version < 4 {
		names = names[:0]
		for id, name := range snap.Names {
			names = append(names, persistName{ID: id, Name: name})
		}
	}
	for _, pn := range names {
		id := UserID(pn.ID)
		if pn.ID < 1 || int(pn.ID) > len(snap.Records) {
			return nil, fmt.Errorf("%w: name %q for unknown user %d", ErrBadSnapshot, pn.Name, pn.ID)
		}
		sh := store.shardFor(id)
		if _, dup := sh.names[id]; dup {
			// Impossible in legacy map streams (map keys are unique) but a
			// real corruption class for the v4 list encoding.
			return nil, fmt.Errorf("%w: user %d named twice", ErrBadSnapshot, pn.ID)
		}
		stripe := store.stripeFor(pn.Name)
		if _, dup := stripe.byName[pn.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrBadSnapshot, pn.Name)
		}
		sh.names[id] = pn.Name
		stripe.byName[pn.Name] = id
	}
	for _, pt := range snap.Targets {
		if pt.ID < 1 || int(pt.ID) > len(snap.Records) {
			return nil, fmt.Errorf("%w: target %d out of range", ErrBadSnapshot, pt.ID)
		}
		td := &targetData{}
		var prev int64
		var prevSeq uint64
		for i, pf := range pt.Follows {
			if pf.Follower < 1 || int(pf.Follower) > len(snap.Records) {
				return nil, fmt.Errorf("%w: follower %d out of range", ErrBadSnapshot, pf.Follower)
			}
			if pf.At < prev {
				return nil, fmt.Errorf("%w: follow times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			prev = pf.At
			seq := pf.Seq
			if snap.Version < 3 {
				// Pre-seq stream: reassign dense anchors in stored order.
				seq = uint64(i + 1)
			} else if seq <= prevSeq {
				return nil, fmt.Errorf("%w: edge seqs not increasing for target %d", ErrBadSnapshot, pt.ID)
			}
			prevSeq = seq
			td.follows = append(td.follows, Follow{
				Follower: UserID(pf.Follower),
				At:       unixUTC(pf.At),
				Seq:      seq,
			})
		}
		td.seq = pt.SeqCounter
		if td.seq < prevSeq {
			// Older streams (or a counter that lost a race with the log):
			// resume above every seq actually present.
			td.seq = prevSeq
		}
		for _, ptw := range pt.Tweets {
			td.tweets = append(td.tweets, Tweet{
				ID:        TweetID(ptw.ID),
				Author:    UserID(pt.ID),
				CreatedAt: unixUTC(ptw.CreatedAt),
				Text:      ptw.Text,
				IsRetweet: ptw.IsRetweet,
				HasLink:   ptw.HasLink,
				IsReply:   ptw.IsReply,
				Mentions:  int(ptw.Mentions),
				Hashtags:  int(ptw.Hashtags),
				Source:    ptw.Source,
			})
		}
		if pt.Friends != nil {
			td.friends = make([]UserID, len(pt.Friends))
			for i, f := range pt.Friends {
				td.friends[i] = UserID(f)
			}
		}
		var prevRemoved int64
		for _, pf := range pt.Removed {
			if pf.Follower < 1 || int(pf.Follower) > len(snap.Records) {
				return nil, fmt.Errorf("%w: removed follower %d out of range", ErrBadSnapshot, pf.Follower)
			}
			if pf.At < prevRemoved {
				return nil, fmt.Errorf("%w: removal times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			prevRemoved = pf.At
			if pf.Seq > td.seq {
				td.seq = pf.Seq
			}
			td.removed = append(td.removed, Follow{
				Follower: UserID(pf.Follower),
				At:       unixUTC(pf.At),
				Seq:      pf.Seq,
			})
		}
		store.shardFor(UserID(pt.ID)).targets[UserID(pt.ID)] = td
	}
	return store, nil
}
