package twitter

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"fakeproject/internal/drand"
	"fakeproject/internal/simclock"
)

func unixUTC(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// Snapshot persistence: a Store can be serialised and reloaded so that
// expensive populations (the full testbed is ~1.5M accounts) can be built
// once and reused across processes — e.g. `genpop -out pop.gob` feeding
// `twitterd -load pop.gob`. The format is versioned gob.

// snapshotVersion guards against loading snapshots from incompatible
// builds. Version history:
//
//	1: initial format (records, names, targets with follows/tweets/friends)
//	2: adds per-target removal logs (Removed) and the clock position
//	   (ClockUnix), the churn state introduced with the dynamics driver
//	3: adds per-edge sequence numbers (persistFollow.Seq) and the
//	   per-target seq counter (persistTarget.SeqCounter), the anchors
//	   churn-proof pagination resumes from
//
// Writers always emit the current version; readers accept every version
// back to 1 — gob leaves fields absent from old streams at their zero
// values, so a pre-churn snapshot simply loads with empty removal logs,
// and a pre-seq snapshot gets dense seqs (1..n) reassigned to its live
// edges on load.
const snapshotVersion = 3

// minSnapshotVersion is the oldest version ReadSnapshot still understands.
const minSnapshotVersion = 1

// ErrBadSnapshot reports a snapshot that cannot be loaded.
var ErrBadSnapshot = errors.New("twitter: invalid snapshot")

// persistRecord mirrors the unexported record struct with exported fields
// for gob.
type persistRecord struct {
	CreatedAt   int64
	LastTweetAt int64
	Statuses    int32
	Friends     int32
	Followers   int32
	Seed        uint32
	Flags       uint8
	Class       uint8
	RetweetPct  uint8
	LinkPct     uint8
	SpamPct     uint8
	DupPct      uint8
}

type persistFollow struct {
	Follower int64
	At       int64
	// Seq is the edge's pagination anchor (version >= 3; 0 in older
	// streams, in which case the reader reassigns dense seqs).
	Seq uint64
}

type persistTweet struct {
	ID        int64
	CreatedAt int64
	Text      string
	IsRetweet bool
	HasLink   bool
	IsReply   bool
	Mentions  int32
	Hashtags  int32
	Source    string
}

type persistTarget struct {
	ID      int64
	Follows []persistFollow
	Tweets  []persistTweet
	Friends []int64
	// Removed is the churn removal log (version >= 2; nil in v1 streams).
	Removed []persistFollow
	// SeqCounter is the last edge seq handed out (version >= 3; 0 in
	// older streams). Loading must resume the counter above every seq
	// ever assigned so post-load follows keep seqs unique and increasing.
	SeqCounter uint64
}

type snapshot struct {
	Version  int
	NameSeed uint64
	TweetSeq int64
	Records  []persistRecord
	Names    map[int64]string
	Targets  []persistTarget
	// ClockUnix is the store clock's position at snapshot time (version
	// >= 2; 0 in v1 streams). An evolved population's edge timestamps run
	// up to this instant, so a reader must resume at or after it for
	// further growth/churn to stay monotonic.
	ClockUnix int64
}

// WriteSnapshot serialises the full store state.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	snap := snapshot{
		Version:   snapshotVersion,
		NameSeed:  s.nameSeed.Seed(),
		TweetSeq:  int64(s.tweetSeq),
		Records:   make([]persistRecord, len(s.recs)),
		Names:     make(map[int64]string, len(s.names)),
		ClockUnix: s.clock.Now().Unix(),
	}
	for i, r := range s.recs {
		snap.Records[i] = persistRecord{
			CreatedAt:   r.createdAt,
			LastTweetAt: r.lastTweetAt,
			Statuses:    r.statuses,
			Friends:     r.friends,
			Followers:   r.followers,
			Seed:        r.seed,
			Flags:       r.flags,
			Class:       r.class,
			RetweetPct:  r.retweetPct,
			LinkPct:     r.linkPct,
			SpamPct:     r.spamPct,
			DupPct:      r.dupPct,
		}
	}
	for id, name := range s.names {
		snap.Names[int64(id)] = name
	}
	for id, td := range s.targets {
		pt := persistTarget{ID: int64(id), SeqCounter: td.seq}
		pt.Follows = make([]persistFollow, len(td.follows))
		for i, f := range td.follows {
			pt.Follows[i] = persistFollow{Follower: int64(f.Follower), At: f.At.Unix(), Seq: f.Seq}
		}
		pt.Tweets = make([]persistTweet, len(td.tweets))
		for i, tw := range td.tweets {
			pt.Tweets[i] = persistTweet{
				ID:        int64(tw.ID),
				CreatedAt: tw.CreatedAt.Unix(),
				Text:      tw.Text,
				IsRetweet: tw.IsRetweet,
				HasLink:   tw.HasLink,
				IsReply:   tw.IsReply,
				Mentions:  int32(tw.Mentions),
				Hashtags:  int32(tw.Hashtags),
				Source:    tw.Source,
			}
		}
		if td.friends != nil {
			pt.Friends = make([]int64, len(td.friends))
			for i, f := range td.friends {
				pt.Friends[i] = int64(f)
			}
		}
		if len(td.removed) > 0 {
			pt.Removed = make([]persistFollow, len(td.removed))
			for i, f := range td.removed {
				pt.Removed[i] = persistFollow{Follower: int64(f.Follower), At: f.At.Unix(), Seq: f.Seq}
			}
		}
		snap.Targets = append(snap.Targets, pt)
	}

	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a Store from a snapshot, bound to the given
// clock. A virtual clock lagging behind the snapshot's recorded position
// is advanced to it, so an evolved population resumes where it left off
// instead of rejecting further growth/churn as non-monotonic.
func ReadSnapshot(r io.Reader, clock simclock.Clock) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if snap.Version < minSnapshotVersion || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("%w: version %d, want %d..%d",
			ErrBadSnapshot, snap.Version, minSnapshotVersion, snapshotVersion)
	}
	if snap.ClockUnix > 0 {
		if v, ok := clock.(*simclock.Virtual); ok {
			if at := unixUTC(snap.ClockUnix); at.After(v.Now()) {
				v.SetNow(at)
			}
		}
	}
	store := &Store{
		clock:    clock,
		nameSeed: drand.New(snap.NameSeed),
		recs:     make([]record, len(snap.Records)),
		names:    make(map[UserID]string, len(snap.Names)),
		byName:   make(map[string]UserID, len(snap.Names)),
		targets:  make(map[UserID]*targetData, len(snap.Targets)),
		tweetSeq: TweetID(snap.TweetSeq),
	}
	for i, pr := range snap.Records {
		store.recs[i] = record{
			createdAt:   pr.CreatedAt,
			lastTweetAt: pr.LastTweetAt,
			statuses:    pr.Statuses,
			friends:     pr.Friends,
			followers:   pr.Followers,
			seed:        pr.Seed,
			flags:       pr.Flags,
			class:       pr.Class,
			retweetPct:  pr.RetweetPct,
			linkPct:     pr.LinkPct,
			spamPct:     pr.SpamPct,
			dupPct:      pr.DupPct,
		}
	}
	for id, name := range snap.Names {
		uid := UserID(id)
		if id < 1 || int(id) > len(store.recs) {
			return nil, fmt.Errorf("%w: name %q for unknown user %d", ErrBadSnapshot, name, id)
		}
		if _, dup := store.byName[name]; dup {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrBadSnapshot, name)
		}
		store.names[uid] = name
		store.byName[name] = uid
	}
	for _, pt := range snap.Targets {
		if pt.ID < 1 || int(pt.ID) > len(store.recs) {
			return nil, fmt.Errorf("%w: target %d out of range", ErrBadSnapshot, pt.ID)
		}
		td := &targetData{}
		var prev int64
		var prevSeq uint64
		for i, pf := range pt.Follows {
			if pf.Follower < 1 || int(pf.Follower) > len(store.recs) {
				return nil, fmt.Errorf("%w: follower %d out of range", ErrBadSnapshot, pf.Follower)
			}
			if pf.At < prev {
				return nil, fmt.Errorf("%w: follow times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			prev = pf.At
			seq := pf.Seq
			if snap.Version < 3 {
				// Pre-seq stream: reassign dense anchors in stored order.
				seq = uint64(i + 1)
			} else if seq <= prevSeq {
				return nil, fmt.Errorf("%w: edge seqs not increasing for target %d", ErrBadSnapshot, pt.ID)
			}
			prevSeq = seq
			td.follows = append(td.follows, Follow{
				Follower: UserID(pf.Follower),
				At:       unixUTC(pf.At),
				Seq:      seq,
			})
		}
		td.seq = pt.SeqCounter
		if td.seq < prevSeq {
			// Older streams (or a counter that lost a race with the log):
			// resume above every seq actually present.
			td.seq = prevSeq
		}
		for _, ptw := range pt.Tweets {
			td.tweets = append(td.tweets, Tweet{
				ID:        TweetID(ptw.ID),
				Author:    UserID(pt.ID),
				CreatedAt: unixUTC(ptw.CreatedAt),
				Text:      ptw.Text,
				IsRetweet: ptw.IsRetweet,
				HasLink:   ptw.HasLink,
				IsReply:   ptw.IsReply,
				Mentions:  int(ptw.Mentions),
				Hashtags:  int(ptw.Hashtags),
				Source:    ptw.Source,
			})
		}
		if pt.Friends != nil {
			td.friends = make([]UserID, len(pt.Friends))
			for i, f := range pt.Friends {
				td.friends[i] = UserID(f)
			}
		}
		var prevRemoved int64
		for _, pf := range pt.Removed {
			if pf.Follower < 1 || int(pf.Follower) > len(store.recs) {
				return nil, fmt.Errorf("%w: removed follower %d out of range", ErrBadSnapshot, pf.Follower)
			}
			if pf.At < prevRemoved {
				return nil, fmt.Errorf("%w: removal times not monotonic for target %d", ErrBadSnapshot, pt.ID)
			}
			prevRemoved = pf.At
			if pf.Seq > td.seq {
				td.seq = pf.Seq
			}
			td.removed = append(td.removed, Follow{
				Follower: UserID(pf.Follower),
				At:       unixUTC(pf.At),
				Seq:      pf.Seq,
			})
		}
		store.targets[UserID(pt.ID)] = td
	}
	return store, nil
}
