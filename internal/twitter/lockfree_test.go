package twitter

import (
	"bytes"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// TestLockFreeReadsUnderWriteLock is the direct form of the lock-free
// contract: with every shard's write lock held, the segment read paths must
// still complete. Any accidental RLock on these paths deadlocks the probe
// goroutine and fails the watchdog.
func TestLockFreeReadsUnderWriteLock(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 1, WithShards(4))
	target := store.MustCreateUser(UserParams{Followers: 77})
	quiet := store.MustCreateUser(UserParams{Followers: 12345, Friends: 9})
	at := simclock.Epoch
	for i := 0; i < 2*edgeBlockLen+30; i++ {
		id := store.MustCreateUser(UserParams{})
		at = at.Add(time.Second)
		if err := store.AddFollower(target, id, at); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.SetFriends(target, []UserID{quiet, 3, 4}); err != nil {
		t.Fatal(err)
	}

	for i := range store.shards {
		store.shards[i].mu.Lock()
	}
	defer func() {
		for i := range store.shards {
			store.shards[i].mu.Unlock()
		}
	}()

	done := make(chan error, 1)
	go func() {
		page, err := store.FollowersPage(target, SeqNewest, 50)
		if err != nil || len(page.IDs) != 50 || page.Total != 2*edgeBlockLen+30 {
			done <- err
			return
		}
		for _, id := range []UserID{target, quiet} {
			if _, err := store.FollowerCount(id); err != nil {
				done <- err
				return
			}
			if _, err := store.FriendsCount(id); err != nil {
				done <- err
				return
			}
			store.Friends(id)
			store.IsTarget(id)
		}
		if _, err := store.FollowEdges(target); err != nil {
			done <- err
			return
		}
		if _, err := store.FollowersChronological(target); err != nil {
			done <- err
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("segment read path blocked on a held shard write lock")
	}
}

// TestShardOpsInvariantUnderSnapshot is the shard-heat bugfix regression:
// persistence is internal bookkeeping, so writing a snapshot must leave the
// per-shard ops counters exactly where platform traffic put them, and a
// store booted from a snapshot starts with zero heat.
func TestShardOpsInvariantUnderSnapshot(t *testing.T) {
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 9, WithShards(4))
	target := store.MustCreateUser(UserParams{ScreenName: "hot"})
	at := simclock.Epoch
	for i := 0; i < 300; i++ {
		id := store.MustCreateUser(UserParams{})
		at = at.Add(time.Second)
		if err := store.AddFollower(target, id, at); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.RemoveFollowers(target, []UserID{5, 9}, at.Add(time.Second)); err != nil {
		t.Fatal(err)
	}

	before := store.ShardOps()
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	after := store.ShardOps()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("shard %d heat moved across WriteSnapshot: %d -> %d", i, before[i], after[i])
		}
	}

	loaded, err := ReadSnapshot(&buf, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}
	for i, ops := range loaded.ShardOps() {
		if ops != 0 {
			t.Fatalf("shard %d of a freshly loaded store has %d fake ops", i, ops)
		}
	}
}

// TestFollowerCountSurvivesSetFriends and ...SurvivesAppendTweet pin the
// promotion bugfix: materialising a friend list or an explicit timeline
// promotes the account to a target, but only actual edge history may
// override the synthetic follower counter.
func TestFollowerCountSurvivesSetFriends(t *testing.T) {
	store := NewStore(simclock.NewVirtualAtEpoch(), 1)
	id := store.MustCreateUser(UserParams{Followers: 12345, Friends: 40})
	if err := store.SetFriends(id, []UserID{id}); err != nil {
		t.Fatal(err)
	}
	if !store.IsTarget(id) {
		t.Fatal("SetFriends did not promote to target")
	}
	if n, _ := store.FollowerCount(id); n != 12345 {
		t.Fatalf("FollowerCount after SetFriends = %d, want 12345", n)
	}
	p, err := store.Profile(id)
	if err != nil || p.FollowersCount != 12345 {
		t.Fatalf("Profile.FollowersCount after SetFriends = %d (%v), want 12345", p.FollowersCount, err)
	}
	if p.FriendsCount != 1 {
		t.Fatalf("FriendsCount = %d, want the materialised 1", p.FriendsCount)
	}
	// An actual edge flips authority to the materialised list — for good:
	// after the edge is purged again the count is the true 0, not 12345.
	f := store.MustCreateUser(UserParams{})
	if err := store.AddFollower(id, f, store.Now()); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.FollowerCount(id); n != 1 {
		t.Fatalf("FollowerCount after real follow = %d, want 1", n)
	}
	if _, err := store.RemoveFollowers(id, []UserID{f}, store.Now()); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.FollowerCount(id); n != 0 {
		t.Fatalf("FollowerCount after purge = %d, want 0", n)
	}
}

func TestFollowerCountSurvivesAppendTweet(t *testing.T) {
	store := NewStore(simclock.NewVirtualAtEpoch(), 1)
	id := store.MustCreateUser(UserParams{Followers: 4321})
	if _, err := store.AppendTweet(id, Tweet{CreatedAt: store.Now(), Text: "hi", Source: "web"}); err != nil {
		t.Fatal(err)
	}
	if !store.IsTarget(id) {
		t.Fatal("AppendTweet did not promote to target")
	}
	if n, _ := store.FollowerCount(id); n != 4321 {
		t.Fatalf("FollowerCount after AppendTweet = %d, want 4321", n)
	}
	p, err := store.Profile(id)
	if err != nil || p.FollowersCount != 4321 {
		t.Fatalf("Profile.FollowersCount after AppendTweet = %d (%v), want 4321", p.FollowersCount, err)
	}
	// The synthetic count also survives a snapshot round trip of the
	// promoted-but-never-followed target.
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf, simclock.NewVirtualAtEpoch())
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := loaded.FollowerCount(id); n != 4321 {
		t.Fatalf("FollowerCount after roundtrip = %d, want 4321", n)
	}
}
