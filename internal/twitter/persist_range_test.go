package twitter

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fakeproject/internal/simclock"
)

// buildRangeStore creates a store with three targets exercising each
// folding rule: one with live edges plus removals, one promoted by tweets
// and a materialised friends list alone (its synthetic follower counter
// must survive folding), one with edges only.
func buildRangeStore(t *testing.T) (*Store, [3]UserID) {
	t.Helper()
	clock := simclock.NewVirtualAtEpoch()
	store := NewStore(clock, 7)
	var targets [3]UserID
	for i := range targets {
		targets[i] = store.MustCreateUser(UserParams{
			ScreenName: "target" + string(rune('a'+i)),
			CreatedAt:  simclock.Epoch.AddDate(-2, 0, 0),
			Followers:  1000 + i, Friends: 77, Statuses: 5,
		})
	}
	for i := 0; i < 40; i++ {
		id := store.MustCreateUser(UserParams{
			CreatedAt: simclock.Epoch.AddDate(-3, 0, 0),
			Followers: 10, Friends: 20, Statuses: 3,
			Class: ClassGenuine,
		})
		at := simclock.Epoch.AddDate(-1, 0, i)
		if err := store.AddFollower(targets[0], id, at); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := store.AddFollower(targets[2], id, at.Add(time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := store.Unfollow(targets[0], 4, simclock.Epoch); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendTweet(targets[1], Tweet{
		CreatedAt: simclock.Epoch.AddDate(0, 0, -1), Text: "hi", Source: "web",
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.SetFriends(targets[1], []UserID{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	return store, targets
}

// TestRangeSnapshotFoldsProfiles: a node that loads only part of the
// target space must still serve every profile byte-identical to a node
// holding everything — the folding invariant the router's users/show
// routing depends on.
func TestRangeSnapshotFoldsProfiles(t *testing.T) {
	store, targets := buildRangeStore(t)
	var snap bytes.Buffer
	if err := store.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	full, err := ReadSnapshotRange(bytes.NewReader(snap.Bytes()), simclock.NewVirtualAtEpoch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	keepA := func(id UserID) bool { return id == targets[0] }
	partial, err := ReadSnapshotRange(bytes.NewReader(snap.Bytes()), simclock.NewVirtualAtEpoch(), keepA)
	if err != nil {
		t.Fatal(err)
	}

	n := full.UserCount()
	if partial.UserCount() != n {
		t.Fatalf("partial store has %d users, full has %d — record space must be global", partial.UserCount(), n)
	}
	for id := UserID(1); int(id) <= n; id++ {
		fp, err := full.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := partial.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fp, pp) {
			t.Fatalf("profile %d diverges on the partial node:\n full    %+v\n partial %+v", id, fp, pp)
		}
	}

	// The kept target carries full heavy state; the dropped ones none.
	if !partial.IsTarget(targets[0]) {
		t.Fatal("kept target lost its materialised state")
	}
	fullIDs, err := full.FollowersChronological(targets[0])
	if err != nil {
		t.Fatal(err)
	}
	partIDs, err := partial.FollowersChronological(targets[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fullIDs, partIDs) {
		t.Fatalf("kept target's edges diverge: %d vs %d followers", len(partIDs), len(fullIDs))
	}
	for _, dropped := range targets[1:] {
		if partial.IsTarget(dropped) {
			t.Fatalf("target %d outside the range still has heavy state installed", dropped)
		}
	}
	// But the dropped targets' profiles still reflect the folded counts.
	bp, err := partial.Profile(targets[1])
	if err != nil {
		t.Fatal(err)
	}
	if bp.FriendsCount != 4 {
		t.Fatalf("dropped target's friends counter = %d, want the folded list length 4", bp.FriendsCount)
	}
	if bp.FollowersCount != 1001 {
		t.Fatalf("dropped target's followers counter = %d, want the synthetic 1001 (never materialised an edge)", bp.FollowersCount)
	}
}

// TestWriteSnapshotRangeCanonical: the export of a range must not depend on
// which holder produced it — that byte-equality is what lets a rejoining
// node stream its range from either the primary or the replica.
func TestWriteSnapshotRangeCanonical(t *testing.T) {
	store, targets := buildRangeStore(t)
	var snap bytes.Buffer
	if err := store.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	keepA := func(id UserID) bool { return id == targets[0] }
	keepAB := func(id UserID) bool { return id == targets[0] || id == targets[1] }
	holders := make([]*Store, 2)
	for i, keep := range []func(UserID) bool{keepA, keepAB} {
		s, err := ReadSnapshotRange(bytes.NewReader(snap.Bytes()), simclock.NewVirtualAtEpoch(), keep)
		if err != nil {
			t.Fatal(err)
		}
		holders[i] = s
	}
	fullLoad, err := ReadSnapshotRange(bytes.NewReader(snap.Bytes()), simclock.NewVirtualAtEpoch(), nil)
	if err != nil {
		t.Fatal(err)
	}

	exports := make([][]byte, 0, 3)
	for _, s := range append(holders, fullLoad) {
		var buf bytes.Buffer
		if err := s.WriteSnapshotRange(&buf, keepA); err != nil {
			t.Fatal(err)
		}
		exports = append(exports, buf.Bytes())
	}
	if !bytes.Equal(exports[0], exports[1]) || !bytes.Equal(exports[0], exports[2]) {
		t.Fatal("range export differs between holders of the same range")
	}

	// And the export is itself a loadable v5 snapshot.
	reloaded, err := ReadSnapshotRange(bytes.NewReader(exports[0]), simclock.NewVirtualAtEpoch(), nil)
	if err != nil {
		t.Fatalf("range export not loadable: %v", err)
	}
	if !reloaded.IsTarget(targets[0]) || reloaded.IsTarget(targets[1]) {
		t.Fatal("reloaded range export holds the wrong target set")
	}
	if reloaded.UserCount() != store.UserCount() {
		t.Fatalf("reloaded export has %d users, want the full record space %d", reloaded.UserCount(), store.UserCount())
	}
}

// TestWriteSnapshotRangeNilKeep: a nil keep is the full snapshot.
func TestWriteSnapshotRangeNilKeep(t *testing.T) {
	store, _ := buildRangeStore(t)
	var full, ranged bytes.Buffer
	if err := store.WriteSnapshot(&full); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshotRange(&ranged, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), ranged.Bytes()) {
		t.Fatal("WriteSnapshotRange(nil) differs from WriteSnapshot")
	}
}

func TestLoadSnapshotRangeFile(t *testing.T) {
	store, targets := buildRangeStore(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "pop.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadSnapshotRangeFile(path, simclock.NewVirtualAtEpoch(),
		func(id UserID) bool { return id == targets[0] })
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.IsTarget(targets[0]) || loaded.IsTarget(targets[1]) {
		t.Fatal("loaded file holds the wrong target set")
	}

	if _, err := LoadSnapshotRangeFile(filepath.Join(dir, "absent.snap"), simclock.NewVirtualAtEpoch(), nil); err == nil {
		t.Fatal("missing file must fail")
	}
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadSnapshotRangeFile(bad, simclock.NewVirtualAtEpoch(), nil)
	if err == nil || !strings.Contains(err.Error(), "regenerate with genpop") {
		t.Fatalf("corrupt file error lacks the operator guidance: %v", err)
	}
}
