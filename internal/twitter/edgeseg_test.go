package twitter

import (
	"bytes"
	"math/rand"
	"testing"
)

// randEdges builds a plausible edge history: ascending follower-ish IDs with
// jitter (including backward jumps), second-granular times that mostly
// advance, and strictly increasing seqs with occasional gaps (purged edges).
func randEdges(rng *rand.Rand, n int) []segEdge {
	out := make([]segEdge, n)
	var follower, at int64 = 0, 1_300_000_000
	var seq uint64
	for i := range out {
		follower += int64(rng.Intn(2000)) - 700 // may go backward
		at += int64(rng.Intn(300))
		seq += 1 + uint64(rng.Intn(3))
		out[i] = segEdge{follower: follower, at: at, seq: seq}
	}
	return out
}

func TestSegEdgeCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := randEdges(rng, 2000)
	// Extremes: zero edge, negative follower delta, large values.
	edges = append(edges,
		segEdge{},
		segEdge{follower: -5, at: -100, seq: 1},
		segEdge{follower: 1 << 60, at: 1 << 59, seq: 1 << 62},
	)
	var data []byte
	var prev segEdge
	for _, e := range edges {
		data = appendSegEdge(data, prev, e)
		prev = e
	}
	prev = segEdge{}
	rest := data
	for i, want := range edges {
		got, n, ok := readSegEdge(rest, prev)
		if !ok {
			t.Fatalf("edge %d failed to decode", i)
		}
		if got != want {
			t.Fatalf("edge %d round-tripped to %+v, want %+v", i, got, want)
		}
		rest = rest[n:]
		prev = got
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

// TestEdgeListAppendAndNavigate drives the RCU append path across several
// block seals and checks every navigation primitive against the plain slice.
func TestEdgeListAppendAndNavigate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	edges := randEdges(rng, 3*edgeBlockLen+137)
	var l edgeList
	for _, e := range edges {
		l.append(e)
	}
	v := l.view()
	if v.total != len(edges) || !v.ever {
		t.Fatalf("view total=%d ever=%v, want %d true", v.total, v.ever, len(edges))
	}
	if len(v.blocks) != 3 || len(v.tail) != 137 {
		t.Fatalf("blocks=%d tail=%d, want 3 and 137", len(v.blocks), len(v.tail))
	}
	// forEach yields the exact sequence.
	i := 0
	v.forEach(func(e segEdge) bool {
		if e != edges[i] {
			t.Fatalf("forEach edge %d = %+v, want %+v", i, e, edges[i])
		}
		i++
		return true
	})
	if i != len(edges) {
		t.Fatalf("forEach stopped at %d", i)
	}
	// newestAt matches the last edge.
	if at, ok := v.newestAt(); !ok || at != edges[len(edges)-1].at {
		t.Fatalf("newestAt = %d,%v", at, ok)
	}
	// seqAt and locate agree with the slice at every index, including both
	// sides of each block boundary.
	for _, idx := range []int{0, 1, edgeBlockLen - 1, edgeBlockLen, 2*edgeBlockLen - 1, 2 * edgeBlockLen, 3*edgeBlockLen - 1, 3 * edgeBlockLen, len(edges) - 1} {
		if got := v.seqAt(idx); got != edges[idx].seq {
			t.Fatalf("seqAt(%d) = %d, want %d", idx, got, edges[idx].seq)
		}
		if got := v.locate(edges[idx].seq); got != idx {
			t.Fatalf("locate(%d) = %d, want %d", edges[idx].seq, got, idx)
		}
		// An anchor between this seq and the next still resolves here (seqs
		// in randEdges may skip values).
		if got := v.locate(edges[idx].seq + 1); idx+1 < len(edges) && edges[idx+1].seq > edges[idx].seq+1 && got != idx {
			t.Fatalf("locate(%d) = %d, want %d", edges[idx].seq+1, got, idx)
		}
	}
	if got := v.locate(edges[0].seq - 1); got != -1 {
		t.Fatalf("locate below oldest = %d, want -1", got)
	}
	// fillNewestFirst spans tail and multiple sealed blocks.
	for _, span := range []struct{ newest, n int }{
		{len(edges) - 1, len(edges)},            // everything
		{len(edges) - 1, 140},                   // tail into last block
		{2*edgeBlockLen + 3, edgeBlockLen + 10}, // across a block boundary
		{5, 6},                                  // oldest edges only
	} {
		dst := make([]UserID, span.n)
		v.fillNewestFirst(span.newest, dst)
		for k := range dst {
			want := UserID(edges[span.newest-k].follower)
			if dst[k] != want {
				t.Fatalf("fill(newest=%d)[%d] = %d, want %d", span.newest, k, dst[k], want)
			}
		}
	}
}

// TestEdgeSealerMatchesAppendPath pins block-cut canonicality: a list built
// edge-by-edge and one rebuilt through the sealer (the purge/snapshot-load
// path) publish views with identical blocks, stream bytes and navigation.
func TestEdgeSealerMatchesAppendPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := randEdges(rng, 2*edgeBlockLen+41)
	var l edgeList
	var sealer edgeSealer
	for _, e := range edges {
		l.append(e)
		sealer.add(e)
	}
	a, b := l.view(), sealer.finish(true)
	if a.total != b.total || len(a.blocks) != len(b.blocks) || len(a.tail) != len(b.tail) {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			a.total, len(a.blocks), len(a.tail), b.total, len(b.blocks), len(b.tail))
	}
	for i := range a.blocks {
		if !bytes.Equal(a.blocks[i].data, b.blocks[i].data) {
			t.Fatalf("block %d bytes differ", i)
		}
	}
	if !bytes.Equal(appendEdgeStream(nil, a), appendEdgeStream(nil, b)) {
		t.Fatal("stream bytes differ")
	}
}

// TestEdgeStreamRoundTrip covers the snapshot v5 wire form, including the
// removal-log variant whose seqs are not increasing.
func TestEdgeStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	edges := randEdges(rng, edgeBlockLen+57)
	var sealer edgeSealer
	for _, e := range edges {
		sealer.add(e)
	}
	data := appendEdgeStream(nil, sealer.finish(true))
	var got []segEdge
	if err := decodeEdgeStream(data, len(edges), func(e segEdge) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], edges[i])
		}
	}
	// Short and trailing inputs error instead of panicking or succeeding.
	if err := decodeEdgeStream(data[:len(data)-1], len(edges), func(segEdge) error { return nil }); err == nil {
		t.Fatal("truncated stream decoded")
	}
	if err := decodeEdgeStream(data, len(edges)-1, func(segEdge) error { return nil }); err == nil {
		t.Fatal("trailing bytes accepted")
	}

	// Removal logs: seqs jump backward (edges are purged out of order), so
	// the seq delta must be signed.
	removed := []Follow{
		{Follower: 9, At: unixUTC(1000), Seq: 40},
		{Follower: 3, At: unixUTC(1000), Seq: 7},
		{Follower: 800, At: unixUTC(2000), Seq: 12},
	}
	rdata := appendFollowStream(nil, removed)
	i := 0
	if err := decodeEdgeStream(rdata, len(removed), func(e segEdge) error {
		want := removed[i]
		if UserID(e.follower) != want.Follower || e.at != want.At.Unix() || e.seq != want.Seq {
			t.Fatalf("removal %d = %+v, want %+v", i, e, want)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeMemoryStatsBudget is the compactness acceptance: a realistic
// follower list (ascending IDs, advancing times, dense seqs) must cost at
// most 12 bytes per edge in memory — the benchmark row in BENCH_twitter.json
// tracks the real figure, typically ~4-6.
func TestEdgeMemoryStatsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var l edgeList
	n := 20 * edgeBlockLen
	var at int64 = 1_300_000_000
	for i := 0; i < n; i++ {
		at += int64(rng.Intn(120))
		l.append(segEdge{follower: int64(2 + i + rng.Intn(50)), at: at, seq: uint64(i + 1)})
	}
	per := float64(l.view().memBytes()) / float64(n)
	if per > 12 {
		t.Fatalf("%.2f bytes/edge, budget is 12", per)
	}
	t.Logf("%.2f bytes/edge over %d edges", per, n)
}

// FuzzEdgeSegmentDecode pins the two decoder properties snapshot loading
// depends on: arbitrary bytes never panic (they decode or return
// errEdgeStream), and anything that decodes re-encodes and re-decodes to the
// same edges (decode ∘ encode is the identity on decoded streams).
func FuzzEdgeSegmentDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	edges := randEdges(rng, 50)
	var sealer edgeSealer
	for _, e := range edges {
		sealer.add(e)
	}
	f.Add(appendEdgeStream(nil, sealer.finish(true)), 50)
	f.Add([]byte{}, 0)
	f.Add([]byte{0x80}, 1)                   // unterminated varint
	f.Add([]byte{0, 0, 0, 7}, 1)             // trailing byte
	f.Add(bytes.Repeat([]byte{0xff}, 40), 2) // overlong varints
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		var got []segEdge
		err := decodeEdgeStream(data, count, func(e segEdge) error {
			got = append(got, e)
			return nil
		})
		if err != nil {
			return // malformed input rejected without panicking: the property
		}
		if len(got) != count {
			t.Fatalf("decoded %d edges, want %d", len(got), count)
		}
		var again []byte
		var prev segEdge
		for _, e := range got {
			again = appendSegEdge(again, prev, e)
			prev = e
		}
		var got2 []segEdge
		if err := decodeEdgeStream(again, count, func(e segEdge) error {
			got2 = append(got2, e)
			return nil
		}); err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		for i := range got {
			if got[i] != got2[i] {
				t.Fatalf("edge %d changed across re-encode: %+v vs %+v", i, got[i], got2[i])
			}
		}
	})
}
