package difftest

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// TestShardedStoreMatchesReference is the core differential proof: randomized
// op streams replayed against the lock-striped store and the single-lock
// reference model must agree on every op result and every observation. Each
// fixed seed pairs with a different shard count so striping itself varies.
func TestShardedStoreMatchesReference(t *testing.T) {
	cases := []struct {
		seed   uint64
		shards int
	}{
		{seed: 1, shards: 1},
		{seed: 2, shards: 2},
		{seed: 3, shards: 8},
		{seed: 4, shards: 16},
		{seed: 5, shards: 7}, // non-power-of-two
	}
	if testing.Short() {
		// The CI race job runs short mode; three seeds at full stream
		// length keep the 10k-ops-per-seed guarantee within its budget.
		cases = cases[:3]
	}
	const n = 10_000
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/shards=%d", tc.seed, tc.shards), func(t *testing.T) {
			RunDiff(t, RunConfig{
				Seed: tc.seed,
				MakeA: func() Applier {
					return NewStoreApplier(99, twitter.WithShards(tc.shards))
				},
				MakeB: func() Applier {
					return NewRef(simclock.NewVirtualAtEpoch())
				},
				Logical: true,
			}, n)
		})
	}
}

// TestShardCountTransparency replays the same streams against two sharded
// stores with different shard counts and compares FULL observations:
// synthesised screen names, bios, synthetic timelines — and snapshot bytes,
// which must be identical regardless of shard layout (the v4 canonical-
// encoding guarantee).
func TestShardCountTransparency(t *testing.T) {
	cases := []struct {
		seed uint64
		a, b int
	}{
		{seed: 11, a: 1, b: 16},
		{seed: 12, a: 2, b: 5},
		{seed: 13, a: 8, b: 3},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	const n = 10_000
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/%dv%d", tc.seed, tc.a, tc.b), func(t *testing.T) {
			RunDiff(t, RunConfig{
				Seed: tc.seed,
				// Identical store seed on both sides: synthesis must match.
				MakeA: func() Applier { return NewStoreApplier(42, twitter.WithShards(tc.a)) },
				MakeB: func() Applier { return NewStoreApplier(42, twitter.WithShards(tc.b)) },
			}, n)
		})
	}
}

// buggyPager corrupts pagination anchors — an injected bug the harness must
// catch and shrink, proving the differential loop actually has teeth.
type buggyPager struct {
	*StoreApplier
}

func (b buggyPager) FollowersPage(target twitter.UserID, fromSeq uint64, limit int) (twitter.FollowerPage, error) {
	page, err := b.StoreApplier.FollowersPage(target, fromSeq, limit)
	if err == nil && page.NextSeq > 1 {
		page.NextSeq-- // skew every non-final anchor
	}
	return page, err
}

func TestHarnessCatchesInjectedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("harness self-test with full shrink; run in the long tier")
	}
	cfg := RunConfig{
		Seed:  77,
		Ops:   Generate(77, 4000),
		MakeA: func() Applier { return NewStoreApplier(1, twitter.WithShards(8)) },
		MakeB: func() Applier { return buggyPager{NewStoreApplier(1, twitter.WithShards(8))} },
	}
	mis := RunOnce(cfg)
	if mis == nil {
		t.Fatal("harness did not catch a corrupted pagination anchor")
	}
	shrunk := Shrink(cfg.Ops, func(ops []Op) bool {
		c := cfg
		c.Ops = ops
		return RunOnce(c) != nil
	})
	if len(shrunk) == 0 || len(shrunk) >= len(cfg.Ops)/10 {
		t.Fatalf("shrink ineffective: %d ops from %d", len(shrunk), len(cfg.Ops))
	}
	c := cfg
	c.Ops = shrunk
	if RunOnce(c) == nil {
		t.Fatal("shrunk stream no longer reproduces the mismatch")
	}
	t.Logf("injected bug caught (%s) and shrunk %d -> %d ops", mis, len(cfg.Ops), len(shrunk))
}

// genTargetStream builds a per-target op stream (no creates, no tweets —
// ops whose results stay deterministic when streams for different targets
// interleave) with per-target monotone event times.
func genTargetStream(seed int64, target twitter.UserID, users, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	now := simclock.Epoch
	advance := func() time.Time {
		now = now.Add(time.Duration(1+rng.Intn(120)) * time.Second)
		return now
	}
	follower := func() twitter.UserID { return twitter.UserID(1 + rng.Intn(users)) }
	ops := make([]Op, 0, n)
	for len(ops) < n {
		switch roll := rng.Intn(100); {
		case roll < 55:
			ops = append(ops, Op{Kind: OpFollow, Target: target, Follower: follower(), At: advance()})
		case roll < 65:
			ops = append(ops, Op{Kind: OpUnfollow, Target: target, Follower: follower(), At: advance()})
		case roll < 75:
			batch := make([]twitter.UserID, 1+rng.Intn(8))
			for i := range batch {
				batch[i] = follower()
			}
			ops = append(ops, Op{Kind: OpPurge, Target: target, Purge: batch, At: advance()})
		default:
			op := Op{Kind: OpPage, Target: target, FromSeq: twitter.SeqNewest, Limit: 1 + rng.Intn(30)}
			if rng.Intn(4) == 0 {
				op.FromSeq = rng.Uint64() % 500
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// TestConcurrentPerShardWriters is the -race leg of the differential proof:
// 8 goroutines drive disjoint target sets on ONE sharded store (targets
// spread across all shards, followers read cross-shard) while a chaos
// reader hammers batch profiles and snapshots. Per-target streams commute,
// so every op result and the final observable state must match a sequential
// replay into the reference model.
func TestConcurrentPerShardWriters(t *testing.T) {
	const (
		users      = 160
		numTargets = 16
		shards     = 8
		workers    = 8
	)
	perTarget := 400
	if testing.Short() {
		perTarget = 150
	}
	store := NewStoreApplier(21, twitter.WithShards(shards))
	ref := NewRef(simclock.NewVirtualAtEpoch())
	for i := 0; i < users; i++ {
		p := twitter.UserParams{
			CreatedAt: simclock.Epoch.AddDate(0, 0, -2-i%90),
			Statuses:  i % 40,
			Followers: i * 3 % 97,
			Bio:       i%2 == 0,
			Class:     twitter.Class(1 + i%3),
		}
		ida, errA := store.CreateUser(p)
		idb, errB := ref.CreateUser(p)
		if errA != nil || errB != nil || ida != idb {
			t.Fatalf("create %d: %v/%v %d/%d", i, errA, errB, ida, idb)
		}
	}
	streams := make([][]Op, numTargets)
	for ti := range streams {
		streams[ti] = genTargetStream(int64(1000+ti), twitter.UserID(ti+1), users, perTarget)
	}

	results := make([][]Result, numTargets)
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for ti := w; ti < numTargets; ti += workers {
				res := make([]Result, len(streams[ti]))
				for j, op := range streams[ti] {
					res[j] = Apply(store, op)
				}
				results[ti] = res
			}
		}(w)
	}
	// Chaos reader: cross-shard batch reads and full-store snapshots racing
	// the writers. Results are not compared (they depend on interleaving);
	// the point is that they are race-free and never error.
	done := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		probe := make([]twitter.UserID, 0, users)
		for id := twitter.UserID(1); int(id) <= users; id++ {
			probe = append(probe, id)
		}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if got := store.Profiles(probe); len(got) != users {
				t.Errorf("batch profiles: %d of %d", len(got), users)
				return
			}
			if i%8 == 0 {
				if err := store.Store().WriteSnapshot(io.Discard); err != nil {
					t.Errorf("snapshot under load: %v", err)
					return
				}
			}
		}
	}()
	writersDone := make(chan struct{})
	go func() {
		writers.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case <-time.After(120 * time.Second):
		t.Fatal("concurrent writers did not finish")
	}
	close(done)
	chaos.Wait()
	if t.Failed() {
		return
	}

	// Sequential replay into the reference model must reproduce every
	// result the concurrent run observed.
	for ti := range streams {
		for j, op := range streams[ti] {
			rb := Apply(ref, op)
			if !reflect.DeepEqual(results[ti][j], rb) {
				t.Fatalf("target %d op %d (%s): concurrent %+v vs sequential %+v", ti+1, j, op, results[ti][j], rb)
			}
		}
	}
	ocfg := ObserveConfig{}
	oa, errA := Observe(store, ocfg)
	ob, errB := Observe(ref, ocfg)
	if errA != nil || errB != nil {
		t.Fatalf("observe: %v / %v", errA, errB)
	}
	Normalize(&oa, nil)
	Normalize(&ob, nil)
	if d := DiffObservations(oa, ob); d != "" {
		t.Fatalf("final state diverged: %s", d)
	}
}
