package difftest

import (
	"fmt"
	"math"
	"sync"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// Ref is the trivially-correct reference model the sharded store is diffed
// against: one mutex, plain slices, linear scans, no sharding, no binary
// search, no compact records. It re-implements the observable semantics of
// twitter.Store from the documentation — including the deliberate quirks
// (a failed non-monotonic follow still materialises the target, a failed
// duplicate-name create burns no ID, RemoveFollowers drops at most one
// edge per distinct follower) — without sharing any code with it, so a bug
// in the store's locking or slot arithmetic cannot cancel out.
//
// The model is logical-state only: it does not synthesise screen names,
// bios or timelines (that machinery is exactly what it must stay
// independent of). Profile strings are reported in the harness's logical
// normal form — explicit screen name or empty, and "set"/"" markers for
// bio, location and URL — which is what observations are normalised to
// before a store-vs-reference comparison.
type Ref struct {
	mu       sync.Mutex
	clock    simclock.Clock
	users    []refUser
	byName   map[string]twitter.UserID
	tweetSeq int64
}

type refUser struct {
	name         string
	createdAt    int64 // unix seconds, truncated exactly like the store
	lastTweetAt  int64
	statuses     int32
	friends      int32
	followers    int32
	bio          bool
	location     bool
	url          bool
	defaultImage bool
	protected    bool
	verified     bool
	class        twitter.Class
	retweetPct   uint8
	linkPct      uint8
	spamPct      uint8
	dupPct       uint8
	td           *refTarget
}

type refTarget struct {
	follows []twitter.Follow
	removed []twitter.Follow
	tweets  []twitter.Tweet
	// friends is the materialised friend list; friendsSet records that
	// SetFriends ran at all (an empty materialised list still overrides the
	// synthetic friends counter, but Friends only reports non-empty lists).
	friends    []twitter.UserID
	friendsSet bool
	seq        uint64
}

// everFollowed reports whether any follow edge was ever accepted — live
// now or since removed. Only then does the materialised edge state
// override the synthetic follower counter; a target created by tweets or
// friend lists alone keeps its create-time count.
func (td *refTarget) everFollowed() bool {
	return td != nil && (len(td.follows) > 0 || len(td.removed) > 0)
}

// NewRef returns an empty reference model on the given clock.
func NewRef(clock simclock.Clock) *Ref {
	return &Ref{clock: clock, byName: make(map[string]twitter.UserID)}
}

// refPct mirrors the store's behaviour-ratio quantisation (independently
// implemented; the rule is part of the documented observable contract).
func refPct(f float64) uint8 {
	if math.IsNaN(f) || f <= 0 {
		return 0
	}
	if f >= 1 {
		return 100
	}
	return uint8(f*100 + 0.5)
}

func (r *Ref) user(id twitter.UserID) (*refUser, error) {
	if id < 1 || int(id) > len(r.users) {
		return nil, fmt.Errorf("%w: %d", twitter.ErrUnknownUser, id)
	}
	return &r.users[id-1], nil
}

func (u *refUser) ensureTarget() *refTarget {
	if u.td == nil {
		u.td = &refTarget{}
	}
	return u.td
}

// Roundtrip implements Applier; the reference model has no serialised form,
// so a snapshot round trip is the identity.
func (r *Ref) Roundtrip() error { return nil }

// Snapshot implements Applier; the reference model has no snapshot bytes.
func (r *Ref) Snapshot() ([]byte, error) { return nil, nil }

func (r *Ref) CreateUser(p twitter.UserParams) (twitter.UserID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.ScreenName != "" {
		if _, dup := r.byName[p.ScreenName]; dup {
			return 0, fmt.Errorf("%w: %q", twitter.ErrDuplicateName, p.ScreenName)
		}
	}
	created := p.CreatedAt
	if created.IsZero() {
		created = r.clock.Now()
	}
	var lastTweet int64
	if !p.LastTweet.IsZero() {
		lastTweet = p.LastTweet.Unix()
	}
	r.users = append(r.users, refUser{
		name:         p.ScreenName,
		createdAt:    created.Unix(),
		lastTweetAt:  lastTweet,
		statuses:     int32(p.Statuses),
		friends:      int32(p.Friends),
		followers:    int32(p.Followers),
		bio:          p.Bio,
		location:     p.Location,
		url:          p.URL,
		defaultImage: p.DefaultProfileImage,
		protected:    p.Protected,
		verified:     p.Verified,
		class:        p.Class,
		retweetPct:   refPct(p.Behavior.RetweetRatio),
		linkPct:      refPct(p.Behavior.LinkRatio),
		spamPct:      refPct(p.Behavior.SpamRatio),
		dupPct:       refPct(p.Behavior.DuplicateRatio),
	})
	id := twitter.UserID(len(r.users))
	if p.ScreenName != "" {
		r.byName[p.ScreenName] = id
	}
	return id, nil
}

func (r *Ref) UserCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.users)
}

func (r *Ref) AddFollower(target, follower twitter.UserID, at time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ut, err := r.user(target)
	if err != nil {
		return err
	}
	if _, err := r.user(follower); err != nil {
		return err
	}
	// The store materialises the target before the monotonicity check, so a
	// rejected edge still flips the account to "target" (though the follower
	// count stays synthetic until an edge actually lands). Edge times are
	// compared at second resolution, the precision the segment encoding
	// keeps.
	td := ut.ensureTarget()
	if n := len(td.follows); n > 0 && at.Unix() < td.follows[n-1].At.Unix() {
		return fmt.Errorf("%w: %v before %v", twitter.ErrNotMonotonic, at, td.follows[n-1].At)
	}
	td.seq++
	td.follows = append(td.follows, twitter.Follow{Follower: follower, At: at, Seq: td.seq})
	return nil
}

func (r *Ref) RemoveFollowers(target twitter.UserID, followers []twitter.UserID, at time.Time) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ut, err := r.user(target)
	if err != nil {
		return 0, err
	}
	td := ut.td
	if td == nil || len(td.follows) == 0 || len(followers) == 0 {
		return 0, nil
	}
	if n := len(td.removed); n > 0 && at.Before(td.removed[n-1].At) {
		return 0, fmt.Errorf("%w: removal at %v before %v", twitter.ErrNotMonotonic, at, td.removed[n-1].At)
	}
	drop := make(map[twitter.UserID]bool, len(followers))
	for _, f := range followers {
		drop[f] = true
	}
	var kept []twitter.Follow
	removed := 0
	for _, edge := range td.follows {
		if drop[edge.Follower] {
			// At most one edge per distinct follower is removed.
			delete(drop, edge.Follower)
			td.removed = append(td.removed, twitter.Follow{Follower: edge.Follower, At: at, Seq: edge.Seq})
			removed++
			continue
		}
		kept = append(kept, edge)
	}
	td.follows = kept
	return removed, nil
}

func (r *Ref) Unfollow(target, follower twitter.UserID, at time.Time) (bool, error) {
	n, err := r.RemoveFollowers(target, []twitter.UserID{follower}, at)
	return n > 0, err
}

func (r *Ref) AppendTweet(author twitter.UserID, tw twitter.Tweet) (twitter.Tweet, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(author)
	if err != nil {
		return twitter.Tweet{}, err
	}
	td := u.ensureTarget()
	if n := len(td.tweets); n > 0 && tw.CreatedAt.Before(td.tweets[n-1].CreatedAt) {
		return twitter.Tweet{}, fmt.Errorf("%w: tweet at %v before %v", twitter.ErrNotMonotonic, tw.CreatedAt, td.tweets[n-1].CreatedAt)
	}
	r.tweetSeq++
	tw.ID = twitter.TweetID(r.tweetSeq)
	tw.Author = author
	td.tweets = append(td.tweets, tw)
	u.statuses++
	if tw.CreatedAt.Unix() > u.lastTweetAt {
		u.lastTweetAt = tw.CreatedAt.Unix()
	}
	return tw, nil
}

// FollowersPage re-implements edge-anchored pagination as a newest-first
// linear scan — deliberately not the store's binary search.
func (r *Ref) FollowersPage(target twitter.UserID, fromSeq uint64, limit int) (twitter.FollowerPage, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ut, err := r.user(target)
	if err != nil {
		return twitter.FollowerPage{}, err
	}
	if ut.td == nil {
		return twitter.FollowerPage{}, nil
	}
	follows := ut.td.follows
	page := twitter.FollowerPage{Total: len(follows)}
	if limit <= 0 {
		return page, nil
	}
	for i := len(follows) - 1; i >= 0; i-- {
		edge := follows[i]
		if edge.Seq > fromSeq {
			continue
		}
		if len(page.IDs) == limit {
			page.NextSeq = edge.Seq
			break
		}
		page.IDs = append(page.IDs, edge.Follower)
	}
	return page, nil
}

func (r *Ref) FollowerCount(id twitter.UserID) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil {
		return 0, err
	}
	if u.td.everFollowed() {
		return len(u.td.follows), nil
	}
	return int(u.followers), nil
}

func (r *Ref) RemovedCount(id twitter.UserID) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil {
		return 0, err
	}
	if u.td == nil {
		return 0, nil
	}
	return len(u.td.removed), nil
}

func (r *Ref) FollowEdges(id twitter.UserID) ([]twitter.Follow, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil {
		return nil, err
	}
	if u.td == nil {
		return nil, nil
	}
	return append([]twitter.Follow(nil), u.td.follows...), nil
}

func (r *Ref) RemovedEdges(id twitter.UserID) ([]twitter.Follow, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil {
		return nil, err
	}
	if u.td == nil {
		return nil, nil
	}
	return append([]twitter.Follow(nil), u.td.removed...), nil
}

// SetFriends materialises id's friend list, replacing any previous one.
// Like the store, a successful call always switches the friends counter to
// the materialised list — even an empty one — and promotes the account to
// a target.
func (r *Ref) SetFriends(id twitter.UserID, friends []twitter.UserID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil {
		return err
	}
	td := u.ensureTarget()
	td.friends = append([]twitter.UserID(nil), friends...)
	td.friendsSet = true
	return nil
}

// Friends mirrors the store's quirk: a list set to empty overrides the
// counter but does not report as materialised.
func (r *Ref) Friends(id twitter.UserID) ([]twitter.UserID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil || u.td == nil || !u.td.friendsSet || len(u.td.friends) == 0 {
		return nil, false
	}
	return append([]twitter.UserID(nil), u.td.friends...), true
}

func (r *Ref) IsTarget(id twitter.UserID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	return err == nil && u.td != nil
}

// Timeline returns the explicit timeline of id, newest first. The reference
// model has no synthetic timelines: accounts without explicit tweets yield
// nil, and the harness only compares timelines of accounts it tweeted to.
func (r *Ref) Timeline(id twitter.UserID, max int) ([]twitter.Tweet, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil {
		return nil, err
	}
	if max <= 0 || u.td == nil || len(u.td.tweets) == 0 {
		return nil, nil
	}
	n := len(u.td.tweets)
	if max > n {
		max = n
	}
	out := make([]twitter.Tweet, max)
	for i := 0; i < max; i++ {
		out[i] = u.td.tweets[n-1-i]
	}
	return out, nil
}

func (r *Ref) Profile(id twitter.UserID) (twitter.Profile, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.profileLocked(id)
}

func (r *Ref) profileLocked(id twitter.UserID) (twitter.Profile, error) {
	u, err := r.user(id)
	if err != nil {
		return twitter.Profile{}, err
	}
	followers := int(u.followers)
	if u.td.everFollowed() {
		followers = len(u.td.follows)
	}
	friends := int(u.friends)
	if u.td != nil && u.td.friendsSet {
		friends = len(u.td.friends)
	}
	var lastTweet time.Time
	if u.lastTweetAt != 0 {
		lastTweet = time.Unix(u.lastTweetAt, 0).UTC()
	}
	p := twitter.Profile{
		User: twitter.User{
			ID:                  id,
			ScreenName:          u.name,
			CreatedAt:           time.Unix(u.createdAt, 0).UTC(),
			DefaultProfileImage: u.defaultImage,
			Protected:           u.protected,
			Verified:            u.verified,
		},
		FollowersCount: followers,
		FriendsCount:   friends,
		StatusesCount:  int(u.statuses),
		LastTweetAt:    lastTweet,
		Behavior: twitter.Behavior{
			RetweetRatio:   float64(u.retweetPct) / 100,
			LinkRatio:      float64(u.linkPct) / 100,
			SpamRatio:      float64(u.spamPct) / 100,
			DuplicateRatio: float64(u.dupPct) / 100,
		},
	}
	// Logical normal form for synthesised strings: presence markers only.
	if u.bio {
		p.Bio = "set"
	}
	if u.location {
		p.Location = "set"
	}
	if u.url {
		p.URL = "set"
	}
	return p, nil
}

func (r *Ref) Profiles(ids []twitter.UserID) []twitter.Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]twitter.Profile, 0, len(ids))
	for _, id := range ids {
		p, err := r.profileLocked(id)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

func (r *Ref) LookupName(name string) (twitter.UserID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", twitter.ErrUnknownName, name)
	}
	return id, nil
}

func (r *Ref) TrueClass(id twitter.UserID) (twitter.Class, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, err := r.user(id)
	if err != nil {
		return 0, err
	}
	return u.class, nil
}

func (r *Ref) ClassCounts(ids []twitter.UserID) map[twitter.Class]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[twitter.Class]int, 4)
	for _, id := range ids {
		u, err := r.user(id)
		if err != nil {
			continue
		}
		out[u.class]++
	}
	return out
}
