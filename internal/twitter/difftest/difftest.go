// Package difftest is a differential test harness for the platform store.
//
// It generates seeded, randomized streams over the full Store op vocabulary
// (create / follow / unfollow / purge / tweet / setfriends / page /
// snapshot-roundtrip),
// replays each stream against two implementations of the same observable
// contract, and asserts that every op result and every periodic observation
// of full platform state is identical. On divergence the failing stream is
// shrunk (delta debugging) to a minimal reproduction before reporting.
//
// Two pairings matter:
//
//   - sharded store vs Ref, the trivially-correct single-lock reference
//     model (ref.go): proves the lock-striped store's op semantics against
//     an implementation that shares no code with it. Observations are
//     compared in logical normal form (synthesised strings reduced to
//     presence markers), since the reference deliberately has no synthesis
//     machinery.
//   - sharded store vs sharded store with a different shard count: proves
//     shard-count transparency on *every* observable — synthesised screen
//     names, bios, synthetic timelines, and byte-identical snapshots.
//
// The package is reusable from any test: build op streams with Generate (or
// by hand), appliers with NewStoreApplier / NewRef, and drive them with
// RunDiff.
package difftest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
)

// OpKind enumerates the generated op vocabulary.
type OpKind uint8

const (
	OpCreate OpKind = iota + 1
	OpFollow
	OpUnfollow
	OpPurge
	OpTweet
	OpPage
	OpSnapshot
	OpSetFriends
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpFollow:
		return "follow"
	case OpUnfollow:
		return "unfollow"
	case OpPurge:
		return "purge"
	case OpTweet:
		return "tweet"
	case OpPage:
		return "page"
	case OpSnapshot:
		return "snapshot"
	case OpSetFriends:
		return "setfriends"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one operation of a differential stream.
type Op struct {
	Kind     OpKind
	Params   twitter.UserParams // OpCreate
	Target   twitter.UserID     // OpFollow/OpUnfollow/OpPurge/OpPage; author for OpTweet
	Follower twitter.UserID     // OpFollow/OpUnfollow
	Purge    []twitter.UserID   // OpPurge
	Friends  []twitter.UserID   // OpSetFriends list (may be empty)
	At       time.Time          // event time for mutations
	FromSeq  uint64             // OpPage anchor
	Limit    int                // OpPage limit
	Tweet    twitter.Tweet      // OpTweet payload (ID/Author assigned by the store)
}

func (op Op) String() string {
	switch op.Kind {
	case OpCreate:
		return fmt.Sprintf("create{name:%q statuses:%d followers:%d}", op.Params.ScreenName, op.Params.Statuses, op.Params.Followers)
	case OpFollow:
		return fmt.Sprintf("follow{target:%d follower:%d at:%d}", op.Target, op.Follower, op.At.Unix())
	case OpUnfollow:
		return fmt.Sprintf("unfollow{target:%d follower:%d}", op.Target, op.Follower)
	case OpPurge:
		return fmt.Sprintf("purge{target:%d followers:%v}", op.Target, op.Purge)
	case OpTweet:
		return fmt.Sprintf("tweet{author:%d at:%d}", op.Target, op.Tweet.CreatedAt.Unix())
	case OpPage:
		return fmt.Sprintf("page{target:%d from:%d limit:%d}", op.Target, op.FromSeq, op.Limit)
	case OpSnapshot:
		return "snapshot{}"
	case OpSetFriends:
		return fmt.Sprintf("setfriends{target:%d friends:%v}", op.Target, op.Friends)
	default:
		return op.Kind.String()
	}
}

// System is the observable store surface the harness drives and probes.
// *twitter.Store implements it; so does *Ref.
type System interface {
	CreateUser(p twitter.UserParams) (twitter.UserID, error)
	AddFollower(target, follower twitter.UserID, at time.Time) error
	Unfollow(target, follower twitter.UserID, at time.Time) (bool, error)
	RemoveFollowers(target twitter.UserID, followers []twitter.UserID, at time.Time) (int, error)
	AppendTweet(author twitter.UserID, tw twitter.Tweet) (twitter.Tweet, error)
	SetFriends(id twitter.UserID, friends []twitter.UserID) error
	Friends(id twitter.UserID) ([]twitter.UserID, bool)
	FollowersPage(target twitter.UserID, fromSeq uint64, limit int) (twitter.FollowerPage, error)
	UserCount() int
	FollowerCount(id twitter.UserID) (int, error)
	RemovedCount(id twitter.UserID) (int, error)
	FollowEdges(id twitter.UserID) ([]twitter.Follow, error)
	RemovedEdges(id twitter.UserID) ([]twitter.Follow, error)
	IsTarget(id twitter.UserID) bool
	Timeline(id twitter.UserID, max int) ([]twitter.Tweet, error)
	Profile(id twitter.UserID) (twitter.Profile, error)
	Profiles(ids []twitter.UserID) []twitter.Profile
	LookupName(name string) (twitter.UserID, error)
	TrueClass(id twitter.UserID) (twitter.Class, error)
	ClassCounts(ids []twitter.UserID) map[twitter.Class]int
}

var _ System = (*twitter.Store)(nil)
var _ System = (*Ref)(nil)

// Applier is a System that additionally supports the snapshot-roundtrip op
// and snapshot byte capture.
type Applier interface {
	System
	// Roundtrip serialises and reloads the full state in place (identity
	// for systems without a serialised form).
	Roundtrip() error
	// Snapshot returns the canonical snapshot bytes, or nil for systems
	// without a serialised form.
	Snapshot() ([]byte, error)
}

// StoreApplier wraps *twitter.Store as an Applier; Roundtrip swaps the
// store for one reloaded from its own snapshot, preserving the configured
// shard count.
type StoreApplier struct {
	System
	clock *simclock.Virtual
	opts  []twitter.Option
}

// NewStoreApplier builds a fresh store on a virtual clock at the epoch.
func NewStoreApplier(seed uint64, opts ...twitter.Option) *StoreApplier {
	clock := simclock.NewVirtualAtEpoch()
	return &StoreApplier{
		System: twitter.NewStore(clock, seed, opts...),
		clock:  clock,
		opts:   opts,
	}
}

// Store returns the current underlying store (it changes across Roundtrip).
func (a *StoreApplier) Store() *twitter.Store { return a.System.(*twitter.Store) }

func (a *StoreApplier) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := a.Store().WriteSnapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (a *StoreApplier) Roundtrip() error {
	raw, err := a.Snapshot()
	if err != nil {
		return err
	}
	loaded, err := twitter.ReadSnapshot(bytes.NewReader(raw), a.clock, a.opts...)
	if err != nil {
		return err
	}
	a.System = loaded
	return nil
}

// wrappedStore adapts an externally constructed store — e.g. one recovered
// from a write-ahead log — as an Applier, so Observe and Apply can drive
// it. Roundtrip is unsupported: op streams applied through a wrapped store
// must not contain OpSnapshot (the WAL harnesses filter it out).
type wrappedStore struct{ *twitter.Store }

// WrapStore adapts st as an Applier.
func WrapStore(st *twitter.Store) Applier { return wrappedStore{st} }

func (w wrappedStore) Roundtrip() error {
	return errors.New("difftest: wrapped store does not support snapshot roundtrip")
}

func (w wrappedStore) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := w.Store.WriteSnapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// obsTweet is a Tweet with its timestamp canonicalised to unix seconds, so
// comparisons never depend on time.Time's internal representation.
type obsTweet struct {
	ID        twitter.TweetID
	Author    twitter.UserID
	At        int64
	Text      string
	IsRetweet bool
	HasLink   bool
	IsReply   bool
	Mentions  int
	Hashtags  int
	Source    string
}

func canonTweet(tw twitter.Tweet) obsTweet {
	return obsTweet{
		ID: tw.ID, Author: tw.Author, At: tw.CreatedAt.Unix(),
		Text: tw.Text, IsRetweet: tw.IsRetweet, HasLink: tw.HasLink,
		IsReply: tw.IsReply, Mentions: tw.Mentions, Hashtags: tw.Hashtags,
		Source: tw.Source,
	}
}

// obsFollow is a Follow with its timestamp canonicalised to unix seconds.
type obsFollow struct {
	Follower twitter.UserID
	At       int64
	Seq      uint64
}

func canonFollows(edges []twitter.Follow) []obsFollow {
	if edges == nil {
		return nil
	}
	out := make([]obsFollow, len(edges))
	for i, e := range edges {
		out[i] = obsFollow{Follower: e.Follower, At: e.At.Unix(), Seq: e.Seq}
	}
	return out
}

// Result is the canonicalised outcome of one applied op. Errors are
// reduced to their sentinel class so the two systems' message wording
// never has to match.
type Result struct {
	Kind  OpKind
	Err   string
	ID    twitter.UserID       // OpCreate
	OK    bool                 // OpUnfollow
	N     int                  // OpPurge; observed FollowersCount for OpTweet/OpSetFriends
	Tweet obsTweet             // OpTweet
	Page  twitter.FollowerPage // OpPage
}

func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, twitter.ErrUnknownUser):
		return "unknown-user"
	case errors.Is(err, twitter.ErrUnknownName):
		return "unknown-name"
	case errors.Is(err, twitter.ErrNotMonotonic):
		return "not-monotonic"
	case errors.Is(err, twitter.ErrDuplicateName):
		return "duplicate-name"
	case errors.Is(err, twitter.ErrBadSnapshot):
		return "bad-snapshot"
	default:
		return "error: " + err.Error()
	}
}

// Apply executes op against sys and canonicalises the outcome.
func Apply(sys Applier, op Op) Result {
	res := Result{Kind: op.Kind}
	switch op.Kind {
	case OpCreate:
		id, err := sys.CreateUser(op.Params)
		res.ID, res.Err = id, errClass(err)
	case OpFollow:
		res.Err = errClass(sys.AddFollower(op.Target, op.Follower, op.At))
	case OpUnfollow:
		ok, err := sys.Unfollow(op.Target, op.Follower, op.At)
		res.OK, res.Err = ok, errClass(err)
	case OpPurge:
		n, err := sys.RemoveFollowers(op.Target, op.Purge, op.At)
		res.N, res.Err = n, errClass(err)
	case OpTweet:
		tw, err := sys.AppendTweet(op.Target, op.Tweet)
		res.Tweet, res.Err = canonTweet(tw), errClass(err)
		// Tweeting promotes the author to a target; the synthetic follower
		// count must survive that promotion (the count-zeroing regression),
		// so the profile is probed in the same result.
		if p, perr := sys.Profile(op.Target); perr == nil {
			res.N = p.FollowersCount
		}
	case OpSetFriends:
		res.Err = errClass(sys.SetFriends(op.Target, op.Friends))
		// Same promotion hazard as OpTweet.
		if p, perr := sys.Profile(op.Target); perr == nil {
			res.N = p.FollowersCount
		}
	case OpPage:
		page, err := sys.FollowersPage(op.Target, op.FromSeq, op.Limit)
		res.Page, res.Err = page, errClass(err)
	case OpSnapshot:
		res.Err = errClass(sys.Roundtrip())
	default:
		panic(fmt.Sprintf("difftest: unknown op kind %d", op.Kind))
	}
	return res
}

// Generate produces a deterministic op stream of length n from seed,
// covering the full vocabulary: account creation (explicit, synthetic and
// duplicate names; occasional zero CreatedAt exercising the clock path),
// follows with a hot-head/long-tail target skew and occasional unknown
// users and stale timestamps (error paths), unfollows, multi-follower
// purges, explicit tweets, friend-list materialisations (including empty
// lists, the counter-override quirk), follower pages with mixed anchors
// and limits, and snapshot round trips.
func Generate(seed uint64, n int) []Op {
	rng := rand.New(rand.NewSource(int64(seed)))
	now := simclock.Epoch
	advance := func() time.Time {
		now = now.Add(time.Duration(1+rng.Intn(180)) * time.Second)
		return now
	}
	users := 0
	var names []string
	serial := 0
	targetOf := func() twitter.UserID {
		if users == 0 {
			return 1
		}
		switch k := rng.Intn(100); {
		case k < 50:
			return twitter.UserID(1 + rng.Intn(min(users, 4))) // hot head
		case k < 90:
			return twitter.UserID(1 + rng.Intn(min(users, 32))) // warm middle
		default:
			return twitter.UserID(1 + rng.Intn(users+2)) // tail, maybe unknown
		}
	}
	anyUser := func() twitter.UserID {
		if users == 0 || rng.Intn(25) == 0 {
			return twitter.UserID(users + 1 + rng.Intn(4)) // unknown
		}
		return twitter.UserID(1 + rng.Intn(users))
	}
	ops := make([]Op, 0, n)
	for len(ops) < n {
		roll := rng.Intn(100)
		switch {
		case users < 8 || roll < 20: // create
			p := twitter.UserParams{
				Statuses:            rng.Intn(300),
				Friends:             rng.Intn(500),
				Followers:           rng.Intn(1000),
				Bio:                 rng.Intn(2) == 0,
				Location:            rng.Intn(3) == 0,
				URL:                 rng.Intn(4) == 0,
				DefaultProfileImage: rng.Intn(3) == 0,
				Protected:           rng.Intn(20) == 0,
				Verified:            rng.Intn(30) == 0,
				Class:               twitter.Class(rng.Intn(4)), // includes unclassified 0
				Behavior: twitter.Behavior{
					RetweetRatio:   rng.Float64() * 1.2,  // may exceed 1: clamp path
					LinkRatio:      rng.Float64() - 0.05, // may go negative: floor path
					SpamRatio:      rng.Float64(),
					DuplicateRatio: rng.Float64(),
				},
			}
			if rng.Intn(10) > 0 { // 10% leave CreatedAt zero: clock-default path
				p.CreatedAt = simclock.Epoch.AddDate(0, 0, -1-rng.Intn(2000))
			}
			if rng.Intn(3) == 0 {
				p.LastTweet = simclock.Epoch.AddDate(0, 0, -rng.Intn(200))
			}
			dup := false
			if rng.Intn(100) < 18 {
				if len(names) > 0 && rng.Intn(100) < 15 {
					p.ScreenName = names[rng.Intn(len(names))] // duplicate: must fail
					dup = true
				} else {
					serial++
					p.ScreenName = fmt.Sprintf("u%05d", serial)
					names = append(names, p.ScreenName)
				}
			}
			ops = append(ops, Op{Kind: OpCreate, Params: p})
			if !dup {
				users++
			}
		case roll < 50: // follow
			at := advance()
			if rng.Intn(100) < 5 {
				at = simclock.Epoch.Add(-time.Duration(1+rng.Intn(3600)) * time.Second) // stale
			}
			ops = append(ops, Op{Kind: OpFollow, Target: targetOf(), Follower: anyUser(), At: at})
		case roll < 58: // unfollow
			ops = append(ops, Op{Kind: OpUnfollow, Target: targetOf(), Follower: anyUser(), At: advance()})
		case roll < 65: // purge
			batch := make([]twitter.UserID, 1+rng.Intn(16))
			for i := range batch {
				batch[i] = anyUser()
			}
			at := advance()
			if rng.Intn(100) < 4 {
				at = simclock.Epoch.Add(-time.Hour)
			}
			ops = append(ops, Op{Kind: OpPurge, Target: targetOf(), Purge: batch, At: at})
		case roll < 76: // tweet
			at := advance()
			if rng.Intn(100) < 5 {
				at = simclock.Epoch.Add(-time.Duration(1+rng.Intn(3600)) * time.Second)
			}
			ops = append(ops, Op{Kind: OpTweet, Target: targetOf(), Tweet: twitter.Tweet{
				CreatedAt: at,
				Text:      fmt.Sprintf("status %d", len(ops)),
				IsRetweet: rng.Intn(5) == 0,
				HasLink:   rng.Intn(4) == 0,
				IsReply:   rng.Intn(6) == 0,
				Mentions:  rng.Intn(3),
				Hashtags:  rng.Intn(3),
				Source:    [...]string{"web", "mobile", "api"}[rng.Intn(3)],
			}})
		case roll < 81: // setfriends
			fl := make([]twitter.UserID, rng.Intn(9))
			for i := range fl {
				fl[i] = anyUser()
			}
			ops = append(ops, Op{Kind: OpSetFriends, Target: targetOf(), Friends: fl})
		case roll < 96: // page
			op := Op{Kind: OpPage, Target: targetOf(), FromSeq: twitter.SeqNewest, Limit: 1 + rng.Intn(40)}
			switch rng.Intn(10) {
			case 0:
				op.Limit = -1 + rng.Intn(2) // 0 or -1: empty-page path
			case 1:
				op.FromSeq = rng.Uint64() % 400 // arbitrary anchor incl. purged seqs
			case 2:
				op.FromSeq = 1 + rng.Uint64()%4 // oldest edges
			}
			ops = append(ops, op)
		default: // snapshot round trip (~4%)
			ops = append(ops, Op{Kind: OpSnapshot})
		}
	}
	return ops
}

// ObserveConfig controls how much observable state an observation captures.
type ObserveConfig struct {
	// Full compares synthesised content too: profile strings as-is,
	// synthetic timelines for a sample of accounts, and snapshot bytes.
	// Off, observations are reduced to logical normal form (the reference
	// model's vocabulary).
	Full bool
	// PageLimit is the page size used for full pagination walks.
	PageLimit int
	// TweetUsers are accounts with explicit tweets; their timelines are
	// compared in every mode.
	TweetUsers []twitter.UserID
	// Names are explicit screen names to probe through LookupName.
	Names []string
}

// Observation is a canonicalised dump of all observable platform state.
type Observation struct {
	Users         int
	Profiles      []obsProfile
	Classes       []twitter.Class
	FollowerCount []int
	RemovedCount  []int
	Targets       map[twitter.UserID]targetObs
	Timelines     map[twitter.UserID][]obsTweet
	Lookups       map[string]int64
	BatchProfiles []obsProfile
	ClassCounts   map[twitter.Class]int
	SnapshotBytes []byte
}

type obsProfile struct {
	ID                  twitter.UserID
	ScreenName          string
	Name                string
	Bio                 string
	Location            string
	URL                 string
	CreatedAt           int64
	DefaultProfileImage bool
	Protected           bool
	Verified            bool
	Followers           int
	Friends             int
	Statuses            int
	LastTweetAt         int64
	Behavior            twitter.Behavior
}

func canonProfile(p twitter.Profile) obsProfile {
	var last int64
	if !p.LastTweetAt.IsZero() {
		last = p.LastTweetAt.Unix()
	}
	return obsProfile{
		ID: p.ID, ScreenName: p.ScreenName, Name: p.Name, Bio: p.Bio,
		Location: p.Location, URL: p.URL, CreatedAt: p.CreatedAt.Unix(),
		DefaultProfileImage: p.DefaultProfileImage, Protected: p.Protected,
		Verified: p.Verified, Followers: p.FollowersCount,
		Friends: p.FriendsCount, Statuses: p.StatusesCount,
		LastTweetAt: last, Behavior: p.Behavior,
	}
}

// targetObs captures everything observable about one materialised target.
type targetObs struct {
	Edges   []obsFollow
	Removed []obsFollow
	// FriendsList/FriendsSet mirror the Friends accessor: the materialised
	// friend list and whether one is reported at all.
	FriendsList []twitter.UserID
	FriendsSet  bool
	// Walk is the full pagination walk: every ID served, newest first,
	// plus the anchor trail and the Total reported by each page.
	Walk       []twitter.UserID
	WalkSeqs   []uint64
	WalkTotals []int
}

// Observe captures a full canonicalised observation of sys.
func Observe(sys Applier, cfg ObserveConfig) (Observation, error) {
	limit := cfg.PageLimit
	if limit <= 0 {
		limit = 7
	}
	n := sys.UserCount()
	obs := Observation{
		Users:         n,
		Profiles:      make([]obsProfile, 0, n),
		Classes:       make([]twitter.Class, 0, n),
		FollowerCount: make([]int, 0, n),
		RemovedCount:  make([]int, 0, n),
		Targets:       make(map[twitter.UserID]targetObs),
		Timelines:     make(map[twitter.UserID][]obsTweet),
		Lookups:       make(map[string]int64),
	}
	for id := twitter.UserID(1); int(id) <= n; id++ {
		p, err := sys.Profile(id)
		if err != nil {
			return obs, fmt.Errorf("profile %d: %w", id, err)
		}
		obs.Profiles = append(obs.Profiles, canonProfile(p))
		class, err := sys.TrueClass(id)
		if err != nil {
			return obs, err
		}
		obs.Classes = append(obs.Classes, class)
		fc, err := sys.FollowerCount(id)
		if err != nil {
			return obs, err
		}
		obs.FollowerCount = append(obs.FollowerCount, fc)
		rc, err := sys.RemovedCount(id)
		if err != nil {
			return obs, err
		}
		obs.RemovedCount = append(obs.RemovedCount, rc)
		if !sys.IsTarget(id) {
			continue
		}
		edges, err := sys.FollowEdges(id)
		if err != nil {
			return obs, err
		}
		removed, err := sys.RemovedEdges(id)
		if err != nil {
			return obs, err
		}
		tobs := targetObs{Edges: canonFollows(edges), Removed: canonFollows(removed)}
		tobs.FriendsList, tobs.FriendsSet = sys.Friends(id)
		fromSeq := twitter.SeqNewest
		for steps := 0; ; steps++ {
			if steps > len(edges)/limit+2 {
				return obs, fmt.Errorf("pagination walk of %d did not terminate", id)
			}
			page, err := sys.FollowersPage(id, fromSeq, limit)
			if err != nil {
				return obs, err
			}
			tobs.Walk = append(tobs.Walk, page.IDs...)
			tobs.WalkSeqs = append(tobs.WalkSeqs, page.NextSeq)
			tobs.WalkTotals = append(tobs.WalkTotals, page.Total)
			if page.NextSeq == 0 {
				break
			}
			fromSeq = page.NextSeq
		}
		obs.Targets[id] = tobs
	}
	for _, id := range cfg.TweetUsers {
		tl, err := sys.Timeline(id, 1<<20)
		if err != nil {
			return obs, fmt.Errorf("timeline %d: %w", id, err)
		}
		canon := make([]obsTweet, len(tl))
		for i, tw := range tl {
			canon[i] = canonTweet(tw)
		}
		obs.Timelines[id] = canon
	}
	if cfg.Full {
		// Synthetic timelines: a deterministic sample of every 7th account.
		for id := twitter.UserID(1); int(id) <= n; id += 7 {
			tl, err := sys.Timeline(id, 25)
			if err != nil {
				return obs, err
			}
			canon := make([]obsTweet, len(tl))
			for i, tw := range tl {
				canon[i] = canonTweet(tw)
			}
			obs.Timelines[id] = canon
		}
	}
	for _, name := range append(append([]string(nil), cfg.Names...), "zz-no-such-name") {
		id, err := sys.LookupName(name)
		if err != nil {
			id = -1
		}
		obs.Lookups[name] = int64(id)
	}
	// Batch paths: a probe list spanning every shard of any layout, plus
	// unknown IDs that must be silently skipped.
	probe := []twitter.UserID{0, -5, twitter.UserID(n + 3)}
	step := max(1, n/64)
	for id := 1; id <= n; id += step {
		probe = append(probe, twitter.UserID(id))
	}
	for _, p := range sys.Profiles(probe) {
		obs.BatchProfiles = append(obs.BatchProfiles, canonProfile(p))
	}
	obs.ClassCounts = sys.ClassCounts(probe)
	if cfg.Full {
		snap, err := sys.Snapshot()
		if err != nil {
			return obs, err
		}
		obs.SnapshotBytes = snap
	}
	return obs, nil
}

// Normalize reduces an observation to logical normal form: synthesised
// strings become presence markers, synthetic screen names are blanked
// (explicit ones, listed in explicit, are kept verbatim), and snapshot
// bytes are dropped. Idempotent; the reference model's observations are
// already in this form.
func Normalize(obs *Observation, explicit map[twitter.UserID]string) {
	mark := func(s string) string {
		if s != "" {
			return "set"
		}
		return ""
	}
	norm := func(p *obsProfile) {
		p.Name = ""
		if _, ok := explicit[p.ID]; !ok {
			p.ScreenName = ""
		}
		p.Bio = mark(p.Bio)
		p.Location = mark(p.Location)
		p.URL = mark(p.URL)
	}
	for i := range obs.Profiles {
		norm(&obs.Profiles[i])
	}
	for i := range obs.BatchProfiles {
		norm(&obs.BatchProfiles[i])
	}
	obs.SnapshotBytes = nil
}

// DiffObservations compares two observations and describes the first
// difference found, or returns "".
func DiffObservations(a, b Observation) string {
	if a.Users != b.Users {
		return fmt.Sprintf("user count: %d vs %d", a.Users, b.Users)
	}
	for i := range a.Profiles {
		if a.Profiles[i] != b.Profiles[i] {
			return fmt.Sprintf("profile %d:\n  %+v\n  %+v", i+1, a.Profiles[i], b.Profiles[i])
		}
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] || a.FollowerCount[i] != b.FollowerCount[i] || a.RemovedCount[i] != b.RemovedCount[i] {
			return fmt.Sprintf("counts/class of user %d: (%v,%d,%d) vs (%v,%d,%d)", i+1,
				a.Classes[i], a.FollowerCount[i], a.RemovedCount[i],
				b.Classes[i], b.FollowerCount[i], b.RemovedCount[i])
		}
	}
	if len(a.Targets) != len(b.Targets) {
		return fmt.Sprintf("target count: %d vs %d", len(a.Targets), len(b.Targets))
	}
	for id, ta := range a.Targets {
		tb, ok := b.Targets[id]
		if !ok {
			return fmt.Sprintf("target %d materialised in A only", id)
		}
		if !reflect.DeepEqual(ta.Edges, tb.Edges) {
			return fmt.Sprintf("edges of target %d:\n  %v\n  %v", id, ta.Edges, tb.Edges)
		}
		if !reflect.DeepEqual(ta.Removed, tb.Removed) {
			return fmt.Sprintf("removal log of target %d:\n  %v\n  %v", id, ta.Removed, tb.Removed)
		}
		if ta.FriendsSet != tb.FriendsSet || !reflect.DeepEqual(ta.FriendsList, tb.FriendsList) {
			return fmt.Sprintf("friends of target %d:\n  %v (set=%v)\n  %v (set=%v)", id,
				ta.FriendsList, ta.FriendsSet, tb.FriendsList, tb.FriendsSet)
		}
		if !reflect.DeepEqual(ta.Walk, tb.Walk) || !reflect.DeepEqual(ta.WalkSeqs, tb.WalkSeqs) || !reflect.DeepEqual(ta.WalkTotals, tb.WalkTotals) {
			return fmt.Sprintf("pagination walk of target %d:\n  %v %v %v\n  %v %v %v", id,
				ta.Walk, ta.WalkSeqs, ta.WalkTotals, tb.Walk, tb.WalkSeqs, tb.WalkTotals)
		}
	}
	if !reflect.DeepEqual(a.Timelines, b.Timelines) {
		return fmt.Sprintf("timelines differ: %v vs %v", a.Timelines, b.Timelines)
	}
	if !reflect.DeepEqual(a.Lookups, b.Lookups) {
		return fmt.Sprintf("name lookups: %v vs %v", a.Lookups, b.Lookups)
	}
	if !reflect.DeepEqual(a.BatchProfiles, b.BatchProfiles) {
		return fmt.Sprintf("batch profiles differ (%d vs %d entries)", len(a.BatchProfiles), len(b.BatchProfiles))
	}
	if !reflect.DeepEqual(a.ClassCounts, b.ClassCounts) {
		return fmt.Sprintf("class counts: %v vs %v", a.ClassCounts, b.ClassCounts)
	}
	if !bytes.Equal(a.SnapshotBytes, b.SnapshotBytes) {
		return fmt.Sprintf("snapshot bytes differ (%d vs %d bytes)", len(a.SnapshotBytes), len(b.SnapshotBytes))
	}
	return ""
}

// Mismatch describes the first divergence of a differential run.
type Mismatch struct {
	Index  int // op index the divergence surfaced at
	Op     Op
	Detail string
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("op %d (%s): %s", m.Index, m.Op, m.Detail)
}

// RunConfig configures one differential run.
type RunConfig struct {
	Seed       uint64
	Ops        []Op
	MakeA      func() Applier
	MakeB      func() Applier
	Logical    bool // normalise observations (required when one side is Ref)
	CheckEvery int  // full-observation cadence in ops; 0 = 1000
	PageLimit  int
}

// RunOnce replays the stream against fresh instances of both systems and
// returns the first divergence, or nil.
func RunOnce(cfg RunConfig) *Mismatch {
	a, b := cfg.MakeA(), cfg.MakeB()
	checkEvery := cfg.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 1000
	}
	explicit := make(map[twitter.UserID]string)
	var names []string
	var tweetUsers []twitter.UserID
	tweeted := make(map[twitter.UserID]bool)
	check := func(i int, op Op) *Mismatch {
		ocfg := ObserveConfig{
			Full:       !cfg.Logical,
			PageLimit:  cfg.PageLimit,
			TweetUsers: tweetUsers,
			Names:      names,
		}
		oa, errA := Observe(a, ocfg)
		ob, errB := Observe(b, ocfg)
		if errA != nil || errB != nil {
			return &Mismatch{Index: i, Op: op, Detail: fmt.Sprintf("observation errors: %v vs %v", errA, errB)}
		}
		if cfg.Logical {
			Normalize(&oa, explicit)
			Normalize(&ob, explicit)
		}
		if d := DiffObservations(oa, ob); d != "" {
			return &Mismatch{Index: i, Op: op, Detail: "observation: " + d}
		}
		return nil
	}
	for i, op := range cfg.Ops {
		ra := Apply(a, op)
		rb := Apply(b, op)
		if !reflect.DeepEqual(ra, rb) {
			return &Mismatch{Index: i, Op: op, Detail: fmt.Sprintf("result: %+v vs %+v", ra, rb)}
		}
		if op.Kind == OpCreate && ra.Err == "" && op.Params.ScreenName != "" {
			explicit[ra.ID] = op.Params.ScreenName
			names = append(names, op.Params.ScreenName)
		}
		if op.Kind == OpTweet && ra.Err == "" && !tweeted[op.Target] {
			tweeted[op.Target] = true
			tweetUsers = append(tweetUsers, op.Target)
		}
		if (i+1)%checkEvery == 0 {
			if m := check(i, op); m != nil {
				return m
			}
		}
	}
	last := len(cfg.Ops) - 1
	var lastOp Op
	if last >= 0 {
		lastOp = cfg.Ops[last]
	}
	return check(last, lastOp)
}

// Shrink reduces a failing op stream to a (locally) minimal one that still
// satisfies the failing predicate, using delta debugging: progressively
// smaller chunks are removed as long as the failure persists. The attempt
// budget bounds shrink time on very long streams.
func Shrink(ops []Op, failing func([]Op) bool) []Op {
	cur := append([]Op(nil), ops...)
	const maxAttempts = 800
	attempts := 0
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(cur) && attempts < maxAttempts; {
			cand := make([]Op, 0, len(cur)-chunk)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+chunk:]...)
			attempts++
			if failing(cand) {
				cur = cand
			} else {
				i += chunk
			}
		}
		if attempts >= maxAttempts {
			break
		}
	}
	return cur
}

// TB is the subset of *testing.T the harness reports through.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
}

// RunDiff generates a stream from cfg.Seed (unless cfg.Ops is preset),
// replays it differentially, and fails t with a shrunk minimal
// reproduction on any divergence.
func RunDiff(t TB, cfg RunConfig, n int) {
	t.Helper()
	if cfg.Ops == nil {
		cfg.Ops = Generate(cfg.Seed, n)
	}
	mis := RunOnce(cfg)
	if mis == nil {
		return
	}
	shrunk := Shrink(cfg.Ops, func(ops []Op) bool {
		c := cfg
		c.Ops = ops
		return RunOnce(c) != nil
	})
	c := cfg
	c.Ops = shrunk
	final := RunOnce(c)
	var buf bytes.Buffer
	for i, op := range shrunk {
		if i >= 50 {
			fmt.Fprintf(&buf, "  ... %d more ops\n", len(shrunk)-i)
			break
		}
		fmt.Fprintf(&buf, "  %3d: %s\n", i, op)
	}
	t.Fatalf("differential mismatch (seed %d): %s\nshrunk to %d ops (from %d):\n%son shrunk stream: %s",
		cfg.Seed, mis, len(shrunk), len(cfg.Ops), buf.String(), final)
}
