package difftest_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fakeproject/internal/simclock"
	"fakeproject/internal/twitter"
	"fakeproject/internal/twitter/difftest"
)

// TestLockFreeReadersRaceWriters pins the RCU read path under the race
// detector: writer goroutines (each owning one target, so per-target op
// order is deterministic) churn edges and friend lists through the shard
// mutex while reader goroutines hammer the lock-free surface — pages,
// counts, edge dumps, profiles — with no synchronisation against the
// writers at all. Afterwards the store must match a reference model that
// applied the same per-target scripts sequentially: the race neither
// corrupted state nor (with -race) touched memory unsafely.
func TestLockFreeReadersRaceWriters(t *testing.T) {
	const nTargets = 4
	followersPer := 900
	if testing.Short() {
		followersPer = 250
	}

	clock := simclock.NewVirtualAtEpoch()
	store := twitter.NewStore(clock, 1, twitter.WithShards(4))
	ref := difftest.NewRef(simclock.NewVirtualAtEpoch())
	created := simclock.Epoch.AddDate(-1, 0, 0)
	total := nTargets + nTargets*followersPer
	for i := 0; i < total; i++ {
		p := twitter.UserParams{CreatedAt: created, Followers: 1000 + i, Friends: 10 + i%50}
		a := store.MustCreateUser(p)
		b, err := ref.CreateUser(p)
		if err != nil || a != b {
			t.Fatalf("create %d: %d vs %d (%v)", i, a, b, err)
		}
	}

	// Per-target scripts: strictly advancing times, periodic purges, friend
	// list rewrites. Deterministic, so the sequential reference replay below
	// reaches the exact same per-target state.
	type step struct {
		follower twitter.UserID
		at       time.Time
		purge    []twitter.UserID
		friends  []twitter.UserID
	}
	scripts := make([][]step, nTargets)
	for ti := range scripts {
		target := twitter.UserID(ti + 1)
		at := simclock.Epoch
		var steps []step
		for i := 0; i < followersPer; i++ {
			f := twitter.UserID(nTargets + ti*followersPer + i + 1)
			at = at.Add(time.Duration(1+i%7) * time.Second)
			steps = append(steps, step{follower: f, at: at})
			if i%97 == 96 {
				at = at.Add(time.Second)
				steps = append(steps, step{at: at, purge: []twitter.UserID{f - 1, f - 3, f - 90}})
			}
			if i%61 == 60 {
				steps = append(steps, step{friends: []twitter.UserID{target, f, f - 2}})
			}
		}
		_ = target
		scripts[ti] = steps
	}

	apply := func(sys difftest.System, target twitter.UserID, s step) error {
		switch {
		case s.purge != nil:
			_, err := sys.RemoveFollowers(target, s.purge, s.at)
			return err
		case s.friends != nil:
			return sys.SetFriends(target, s.friends)
		default:
			return sys.AddFollower(target, s.follower, s.at)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Readers: no locks, no coordination with the writers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for ti := 0; ti < nTargets; ti++ {
					target := twitter.UserID(ti + 1)
					page, err := store.FollowersPage(target, twitter.SeqNewest, 64)
					if err != nil || len(page.IDs) > 64 {
						t.Errorf("racing page: %v (%d ids)", err, len(page.IDs))
						return
					}
					if page.NextSeq != 0 {
						if _, err := store.FollowersPage(target, page.NextSeq, 64); err != nil {
							t.Errorf("racing anchored page: %v", err)
							return
						}
					}
					if _, err := store.FollowerCount(target); err != nil {
						t.Errorf("racing count: %v", err)
						return
					}
					if _, err := store.FriendsCount(target); err != nil {
						t.Errorf("racing friends count: %v", err)
						return
					}
					store.Friends(target)
					store.IsTarget(target)
					if _, err := store.FollowEdges(target); err != nil {
						t.Errorf("racing edge dump: %v", err)
						return
					}
					if _, err := store.Profile(target); err != nil {
						t.Errorf("racing profile: %v", err)
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for ti := range scripts {
		writers.Add(1)
		go func(ti int) {
			defer writers.Done()
			target := twitter.UserID(ti + 1)
			for _, s := range scripts[ti] {
				if err := apply(store, target, s); err != nil {
					t.Errorf("writer %d: %v", ti, err)
					return
				}
			}
		}(ti)
	}
	writers.Wait()
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	for ti := range scripts {
		target := twitter.UserID(ti + 1)
		for _, s := range scripts[ti] {
			if err := apply(ref, target, s); err != nil {
				t.Fatalf("reference writer %d: %v", ti, err)
			}
		}
	}
	got, err := difftest.Observe(difftest.WrapStore(store), difftest.ObserveConfig{PageLimit: 33})
	if err != nil {
		t.Fatal(err)
	}
	want, err := difftest.Observe(ref, difftest.ObserveConfig{PageLimit: 33})
	if err != nil {
		t.Fatal(err)
	}
	difftest.Normalize(&got, nil)
	difftest.Normalize(&want, nil)
	if d := difftest.DiffObservations(got, want); d != "" {
		t.Fatalf("state after racing writers diverges from sequential reference: %s", d)
	}
}
