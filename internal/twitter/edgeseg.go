package twitter

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync/atomic"
)

//fp:hotpath

// Compact follower-edge segments. A target's follower list is the store's
// only unbounded per-account structure: the paper's populations go to
// hundreds of thousands of followers and the ROADMAP's scaling item to 10M+
// accounts, so each edge must cost bytes, not a 40-byte Follow struct. Edges
// arrive strictly append-ordered (the Section IV-B invariant), which makes
// them ideal delta-coding material:
//
//   - sealed blocks of exactly edgeBlockLen edges, each block a byte string
//     of zigzag-delta varints chained from the previous edge (follower ID,
//     unix-second timestamp, seq — all three monotone-ish, so deltas are
//     tiny: ~4-6 bytes per edge against ~40 for the struct form);
//   - a small mutable tail of decoded edges awaiting their block's seal.
//
// Reads never take the shard lock. The whole list is published RCU-style
// through one atomic.Pointer[edgeView]: writers (serialised by the shard
// mutex) build a new view and Store it; readers Load a frozen view and
// navigate it without coordination. Appends reuse the previous view's
// blocks slice and tail backing (the appended slot was never visible to any
// published view, so old readers cannot observe it), which keeps the common
// append allocation-light; removals rewrite the list into freshly sealed
// canonical blocks.
//
// Block boundaries are canonical: every sealed block holds exactly
// edgeBlockLen edges, so live index i lives in block i/edgeBlockLen at
// offset i%edgeBlockLen, and a rewrite after a purge re-cuts the survivors
// at the same multiples. Navigation needs no per-block counts and snapshot
// bytes stay shard-count independent.
//
// This file is fpvet //fp:hotpath territory: no fmt, no reflection, and no
// construction of ID slices — page buffers are allocated by the caller
// (twitter.go) and filled here by index.

// edgeBlockLen is the number of edges per sealed block. 512 keeps a block's
// decode scratch (512 * 24B = 12KB) comfortably on the stack while making
// per-block header overhead (~56B) negligible against ~2-3KB of payload.
const edgeBlockLen = 512

// segEdge is one decoded follow edge in segment form: unix-second time
// resolution, 24 bytes. The storage twin of Follow.
type segEdge struct {
	follower int64
	at       int64 // unix seconds
	seq      uint64
}

// edgeBlock is one sealed, immutable block of exactly edgeBlockLen edges,
// delta-varint encoded. firstSeq/lastSeq bound the block's seq range for
// binary search; lastAt carries the block's newest timestamp so the
// monotonicity check never decodes a block.
type edgeBlock struct {
	data     []byte
	firstSeq uint64
	lastSeq  uint64
	lastAt   int64
}

// edgeView is one immutable published state of a target's live edge list.
// Readers navigate a view with no lock and no coordination; every mutation
// publishes a fresh view.
type edgeView struct {
	blocks []edgeBlock
	tail   []segEdge // decoded edges not yet sealed; len < edgeBlockLen
	total  int       // live edge count: len(blocks)*edgeBlockLen + len(tail)
	// ever reports whether an edge was ever materialised for this target
	// (live now, or alive once and since removed). Targets promoted by
	// SetFriends/AppendTweet alone have ever == false, and their synthetic
	// follower counter stays authoritative — the follower-count-zeroing
	// bugfix.
	ever bool
}

// emptyEdgeView backs lists that have never published a view.
var emptyEdgeView edgeView

// edgeList is the per-target handle: one atomic pointer to the current view.
type edgeList struct {
	v atomic.Pointer[edgeView]
}

// view returns the current published view (never nil).
func (l *edgeList) view() *edgeView {
	if v := l.v.Load(); v != nil {
		return v
	}
	return &emptyEdgeView
}

// append publishes old state + one edge. Caller must hold the owning
// shard's write lock (the single-writer guarantee the reuse below relies
// on). The new tail may share backing with the previous view's tail: the
// appended slot sits past every published length, so no reader of an older
// view can reach it, and Go's append either writes that invisible slot or
// reallocates — both safe under RCU.
func (l *edgeList) append(e segEdge) {
	old := l.view()
	nv := &edgeView{blocks: old.blocks, total: old.total + 1, ever: true}
	nv.tail = append(old.tail, e)
	if len(nv.tail) == edgeBlockLen {
		nv.blocks = sealAppend(old.blocks, nv.tail)
		nv.tail = nil
	}
	l.v.Store(nv)
}

// sealAppend appends the sealed form of tail to blocks, reusing spare block
// capacity when present — again invisible to published views, whose block
// slices stop short of the appended slot.
func sealAppend(blocks []edgeBlock, tail []segEdge) []edgeBlock {
	return append(blocks, sealBlock(tail))
}

// sealBlock encodes exactly edgeBlockLen edges into an immutable block.
func sealBlock(tail []segEdge) edgeBlock {
	data := make([]byte, 0, 6*edgeBlockLen)
	var prev segEdge
	for _, e := range tail {
		data = appendSegEdge(data, prev, e)
		prev = e
	}
	last := tail[len(tail)-1]
	return edgeBlock{data: data, firstSeq: tail[0].seq, lastSeq: last.seq, lastAt: last.at}
}

// edgeSealer accumulates edges in order and cuts canonical blocks — the
// shared builder behind purge rewrites and snapshot loads.
type edgeSealer struct {
	blocks []edgeBlock
	tail   []segEdge
	total  int
}

func (b *edgeSealer) add(e segEdge) {
	b.tail = append(b.tail, e)
	b.total++
	if len(b.tail) == edgeBlockLen {
		b.blocks = append(b.blocks, sealBlock(b.tail))
		b.tail = b.tail[:0]
	}
}

// finish freezes the accumulated edges as a view. The tail is copied to
// exact length so a later in-place append can never alias the builder's
// scratch buffer.
func (b *edgeSealer) finish(ever bool) *edgeView {
	nv := &edgeView{blocks: b.blocks, total: b.total, ever: ever}
	if len(b.tail) > 0 {
		nv.tail = make([]segEdge, len(b.tail))
		copy(nv.tail, b.tail)
	}
	return nv
}

// newestAt returns the newest live edge's unix time, if any edge is live.
func (v *edgeView) newestAt() (int64, bool) {
	if n := len(v.tail); n > 0 {
		return v.tail[n-1].at, true
	}
	if n := len(v.blocks); n > 0 {
		return v.blocks[n-1].lastAt, true
	}
	return 0, false
}

// decodeInto decodes a sealed block into dst. A failure is impossible for
// blocks this package sealed; it indicates memory corruption, so the one
// caller-visible response is to panic rather than serve wrong edges.
func (b *edgeBlock) decodeInto(dst *[edgeBlockLen]segEdge) {
	data := b.data
	var prev segEdge
	for i := 0; i < edgeBlockLen; i++ {
		e, n, ok := readSegEdge(data, prev)
		if !ok {
			panic("twitter: corrupt edge segment block")
		}
		data = data[n:]
		dst[i] = e
		prev = e
	}
	if len(data) != 0 {
		panic("twitter: trailing bytes in edge segment block")
	}
}

// locate returns the live index of the newest edge whose seq is <= fromSeq,
// or -1 if every live edge is newer (anchor below the oldest survivor).
// O(log blocks) on sealed data plus one block decode.
func (v *edgeView) locate(fromSeq uint64) int {
	sealed := len(v.blocks) * edgeBlockLen
	if n := len(v.tail); n > 0 && fromSeq >= v.tail[0].seq {
		i := sort.Search(n, func(k int) bool { return v.tail[k].seq > fromSeq }) - 1
		return sealed + i
	}
	if len(v.blocks) == 0 || fromSeq < v.blocks[0].firstSeq {
		return -1
	}
	bi := sort.Search(len(v.blocks), func(k int) bool { return v.blocks[k].firstSeq > fromSeq }) - 1
	var buf [edgeBlockLen]segEdge
	v.blocks[bi].decodeInto(&buf)
	j := sort.Search(edgeBlockLen, func(k int) bool { return buf[k].seq > fromSeq }) - 1
	return bi*edgeBlockLen + j
}

// seqAt returns the seq of the edge at live index i (0 <= i < total).
func (v *edgeView) seqAt(i int) uint64 {
	sealed := len(v.blocks) * edgeBlockLen
	if i >= sealed {
		return v.tail[i-sealed].seq
	}
	var buf [edgeBlockLen]segEdge
	v.blocks[i/edgeBlockLen].decodeInto(&buf)
	return buf[i%edgeBlockLen].seq
}

// fillNewestFirst writes the followers at live indices newest, newest-1, ...
// into dst (len(dst) <= newest+1). The page buffer is allocated by the
// caller; this fill stays within the hotpath allocation budget by writing
// into it by index, one block decode per 512 edges.
func (v *edgeView) fillNewestFirst(newest int, dst []UserID) {
	sealed := len(v.blocks) * edgeBlockLen
	k, i := 0, newest
	for ; k < len(dst) && i >= sealed; i, k = i-1, k+1 {
		dst[k] = UserID(v.tail[i-sealed].follower)
	}
	var buf [edgeBlockLen]segEdge
	bi := -1
	for ; k < len(dst) && i >= 0; i, k = i-1, k+1 {
		if nb := i / edgeBlockLen; nb != bi {
			bi = nb
			v.blocks[bi].decodeInto(&buf)
		}
		dst[k] = UserID(buf[i%edgeBlockLen].follower)
	}
}

// forEach decodes the live edges oldest-first and calls fn for each until
// it returns false.
func (v *edgeView) forEach(fn func(segEdge) bool) {
	var buf [edgeBlockLen]segEdge
	for bi := range v.blocks {
		v.blocks[bi].decodeInto(&buf)
		for i := range buf {
			if !fn(buf[i]) {
				return
			}
		}
	}
	for _, e := range v.tail {
		if !fn(e) {
			return
		}
	}
}

// memBytes reports the in-memory footprint of the view's edge storage:
// sealed payload bytes, tail entries, and per-block headers.
func (v *edgeView) memBytes() int {
	n := 0
	for i := range v.blocks {
		n += len(v.blocks[i].data)
	}
	const blockHeader = 56 // slice header + 2 seqs + lastAt
	const tailEntry = 24   // sizeof(segEdge)
	return n + len(v.blocks)*blockHeader + len(v.tail)*tailEntry
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendSegEdge encodes e relative to prev: three chained zigzag deltas
// (follower, at, seq), each a uvarint.
func appendSegEdge(dst []byte, prev, e segEdge) []byte {
	dst = binary.AppendUvarint(dst, zigzag(e.follower-prev.follower))
	dst = binary.AppendUvarint(dst, zigzag(e.at-prev.at))
	dst = binary.AppendUvarint(dst, zigzag(int64(e.seq)-int64(prev.seq)))
	return dst
}

// readSegEdge decodes one edge relative to prev, returning the edge, the
// bytes consumed, and whether the bytes were well-formed.
func readSegEdge(data []byte, prev segEdge) (segEdge, int, bool) {
	df, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		return segEdge{}, 0, false
	}
	da, n2 := binary.Uvarint(data[n1:])
	if n2 <= 0 {
		return segEdge{}, 0, false
	}
	ds, n3 := binary.Uvarint(data[n1+n2:])
	if n3 <= 0 {
		return segEdge{}, 0, false
	}
	return segEdge{
		follower: prev.follower + unzigzag(df),
		at:       prev.at + unzigzag(da),
		seq:      uint64(int64(prev.seq) + unzigzag(ds)),
	}, n1 + n2 + n3, true
}

// errEdgeStream reports a malformed whole-list edge stream (snapshot reads).
var errEdgeStream = errors.New("twitter: malformed edge stream")

// appendEdgeStream encodes the view's live edges as one chained delta
// stream — the snapshot v5 wire form. The stream restarts its delta chain
// from the zero edge, so it is self-contained and byte-identical for equal
// logical state regardless of how blocks happen to be cut in memory.
func appendEdgeStream(dst []byte, v *edgeView) []byte {
	prev := segEdge{}
	v.forEach(func(e segEdge) bool {
		dst = appendSegEdge(dst, prev, e)
		prev = e
		return true
	})
	return dst
}

// appendFollowStream encodes a []Follow (removal logs) in the same chained
// delta form.
func appendFollowStream(dst []byte, edges []Follow) []byte {
	prev := segEdge{}
	for _, f := range edges {
		e := segEdge{follower: int64(f.Follower), at: f.At.Unix(), seq: f.Seq}
		dst = appendSegEdge(dst, prev, e)
		prev = e
	}
	return dst
}

// decodeEdgeStream decodes exactly count edges from data, calling fn for
// each, and errors on malformed input, a short stream, or trailing bytes.
// fn may return an error to abort (validation failures during snapshot
// loads). Arbitrary inputs never panic: every decode failure surfaces as
// errEdgeStream, the property FuzzEdgeSegmentDecode pins.
func decodeEdgeStream(data []byte, count int, fn func(segEdge) error) error {
	prev := segEdge{}
	for i := 0; i < count; i++ {
		e, n, ok := readSegEdge(data, prev)
		if !ok {
			return errEdgeStream
		}
		data = data[n:]
		if err := fn(e); err != nil {
			return err
		}
		prev = e
	}
	if len(data) != 0 {
		return errEdgeStream
	}
	return nil
}
